package eigenmaps

import (
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/noise"
	"repro/internal/track"
)

// This file exposes the repository's extensions beyond the paper:
// temporal (Kalman) tracking of the subspace coefficients, a realistic
// sensor error model, and the hot-spot analyses a dynamic thermal manager
// consumes.

// TrackerOptions tune NewTracker.
type TrackerOptions struct {
	// Rho is the AR(1) state dynamics coefficient in (0,1]; 1 (default) is a
	// random walk.
	Rho float64
	// ProcessScale is the per-step process variance as a fraction of each
	// coefficient's stationary variance. Default 0.05.
	ProcessScale float64
	// MeasurementVarC2 is the per-sensor measurement noise variance [°C²].
	// Default 0.25.
	MeasurementVarC2 float64
}

// Tracker is a temporal estimator: unlike Monitor's memoryless least
// squares, it fuses each new reading vector with the filtered history,
// suppressing sensor noise on slowly varying thermal scenes. It also works
// with fewer sensors than subspace dimensions (M < K), where plain least
// squares is undefined.
type Tracker struct {
	kf *track.Kalman
}

// NewTracker builds a Kalman tracker over the first k basis vectors
// observed at the given sensor cells.
func (m *Model) NewTracker(k int, sensors []int, opt TrackerOptions) (*Tracker, error) {
	kf, err := track.NewKalman(m.m.Basis, k, sensors, track.Config{
		Rho:            opt.Rho,
		ProcessScale:   opt.ProcessScale,
		MeasurementVar: opt.MeasurementVarC2,
	})
	if err != nil {
		return nil, err
	}
	return &Tracker{kf: kf}, nil
}

// Step fuses one reading vector (°C) and returns the current full-map
// estimate. The tracker serializes concurrent callers internally, so one
// tracker can sit behind a multi-goroutine request loop.
func (t *Tracker) Step(readings []float64) ([]float64, error) { return t.kf.Step(readings) }

// StepBatch smooths a streamed batch of reading vectors in arrival order
// under one lock acquisition, returning the full-map estimate after each
// step. This is the temporal (Kalman) counterpart of Monitor.EstimateBatch:
// batches from different trackers can be processed concurrently while each
// tracker's own snapshots stay strictly ordered.
func (t *Tracker) StepBatch(readings [][]float64) ([][]float64, error) {
	return t.kf.StepBatch(readings)
}

// Sample extracts the tracker's sensor readings from a full map.
func (t *Tracker) Sample(x []float64) []float64 { return t.kf.Sample(x) }

// Reset returns the tracker to its training prior.
func (t *Tracker) Reset() { t.kf.Reset() }

// Sensors returns the monitored cells.
func (t *Tracker) Sensors() []int { return t.kf.Sensors() }

// Uncertainty returns the trace of the state covariance — shrinks as
// measurements accumulate.
func (t *Tracker) Uncertainty() float64 { return t.kf.CovarianceTrace() }

// SensorModel describes a realistic on-chip temperature sensor error budget
// (read noise, ADC quantization, frozen per-sensor calibration offset/gain).
type SensorModel struct {
	ReadNoiseC    float64 // per-sample Gaussian noise σ [°C]
	QuantizationC float64 // ADC step [°C], 0 = none
	OffsetSigmaC  float64 // per-sensor fixed offset σ [°C]
	GainSigma     float64 // per-sensor relative gain error σ
}

// TypicalSensorModel returns a representative error budget: 0.3 °C read
// noise, 0.5 °C quantization, 1 °C offset spread, 1% gain spread.
func TypicalSensorModel() SensorModel {
	m := noise.TypicalSensor()
	return SensorModel{
		ReadNoiseC:    m.ReadNoiseC,
		QuantizationC: m.QuantizationC,
		OffsetSigmaC:  m.OffsetSigmaC,
		GainSigma:     m.GainSigma,
	}
}

// SensorBank is a set of manufactured sensors with frozen calibration
// errors.
type SensorBank struct {
	s *noise.Sensors
}

// Manufacture draws n sensors' calibration errors once from seed.
func (m SensorModel) Manufacture(n int, seed int64) *SensorBank {
	im := noise.SensorModel{
		ReadNoiseC:    m.ReadNoiseC,
		QuantizationC: m.QuantizationC,
		OffsetSigmaC:  m.OffsetSigmaC,
		GainSigma:     m.GainSigma,
		ReferenceC:    45,
	}
	return &SensorBank{s: im.NewSensors(n, rand.New(rand.NewSource(seed)))}
}

// Read converts true temperatures into what the sensors report.
func (b *SensorBank) Read(trueC []float64) []float64 { return b.s.Read(trueC) }

// Count returns the number of sensors in the bank.
func (b *SensorBank) Count() int { return b.s.Count() }

// ThermalReport summarizes one (reconstructed) thermal map for a dynamic
// thermal manager.
type ThermalReport struct {
	MaxC        float64  // hottest cell temperature
	MaxCell     int      // its index
	MinC        float64  // coldest cell
	MeanC       float64  // die average
	MaxGradC    float64  // largest spatial gradient [°C per cell pitch]
	MaxGradCell int      // where it occurs
	HotBlocks   []string // T1 blocks whose max exceeds the threshold, sorted
}

// AnalyzeT1 summarizes map x on the bundled T1 floorplan with the given
// hot-block threshold (°C).
func AnalyzeT1(g Grid, x []float64, hotThresholdC float64) ThermalReport {
	raster := floorplan.UltraSparcT1().Rasterize(g.internal())
	rep := hotspot.Summarize(raster, x, hotThresholdC)
	return ThermalReport{
		MaxC:        rep.MaxC,
		MaxCell:     rep.MaxCell,
		MinC:        rep.MinC,
		MeanC:       rep.MeanC,
		MaxGradC:    rep.MaxGradC,
		MaxGradCell: rep.MaxGradCell,
		HotBlocks:   rep.HotBlocks,
	}
}

// ThermalAlarm is a hysteresis threshold detector for reconstructed maximum
// temperatures.
type ThermalAlarm struct {
	a hotspot.Alarm
}

// NewThermalAlarm creates an alarm tripping at setC and releasing below
// clearC (setC must exceed clearC).
func NewThermalAlarm(setC, clearC float64) *ThermalAlarm {
	return &ThermalAlarm{a: hotspot.Alarm{Set: setC, Clear: clearC}}
}

// Update feeds the current maximum temperature; reports whether the alarm
// is active.
func (t *ThermalAlarm) Update(maxC float64) bool { return t.a.Update(maxC) }

// Active reports the alarm state.
func (t *ThermalAlarm) Active() bool { return t.a.Active() }

// Trips returns the number of trip events so far.
func (t *ThermalAlarm) Trips() int { return t.a.Trips() }
