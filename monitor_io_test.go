package eigenmaps

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// trainedMonitor builds a small monitor through the public pipeline.
func trainedMonitor(t testing.TB) *Monitor {
	t.Helper()
	ens, err := SimulateT1(SimOptions{Grid: Grid{W: 12, H: 10}, Snapshots: 60, Seed: 5, LoadCoupling: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	model, err := Train(ens, TrainOptions{KMax: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := model.PlaceSensors(8, PlaceOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(4, sensors)
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// TestMonitorSaveLoadBitIdentity pins the facade round-trip guarantee: a
// loaded monitor produces bit-identical EstimateInto output, with none of
// the training pipeline re-run.
func TestMonitorSaveLoadBitIdentity(t *testing.T) {
	mon := trainedMonitor(t)
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadMonitor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.K() != mon.K() || len(loaded.Sensors()) != len(mon.Sensors()) {
		t.Fatalf("shape changed: K %d→%d M %d→%d", mon.K(), loaded.K(), len(mon.Sensors()), len(loaded.Sensors()))
	}
	want := make([]float64, mon.N())
	got := make([]float64, loaded.N())
	readings := make([]float64, len(mon.Sensors()))
	for trial := 0; trial < 5; trial++ {
		for i := range readings {
			readings[i] = 48 + 7*math.Sin(float64(trial*len(readings)+i))
		}
		if err := mon.EstimateInto(want, readings); err != nil {
			t.Fatal(err)
		}
		if err := loaded.EstimateInto(got, readings); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d cell %d: loaded estimate differs: %x != %x",
					trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
	// Conditioning survives too (recomputed from the basis, same bits).
	cw, err := mon.ConditionNumber()
	if err != nil {
		t.Fatal(err)
	}
	cg, err := loaded.ConditionNumber()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cw) != math.Float64bits(cg) {
		t.Fatalf("condition number changed: %v != %v", cg, cw)
	}
}

func TestMonitorSaveFileRoundTrip(t *testing.T) {
	mon := trainedMonitor(t)
	path := t.TempDir() + "/monitor.emon"
	if err := mon.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMonitorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]float64, len(mon.Sensors()))
	for i := range readings {
		readings[i] = 52.5
	}
	a, err := mon.Estimate(readings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Estimate(readings)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("cell %d differs after file round-trip", i)
		}
	}
}

// TestLoadMonitorTypedErrors pins the public decode-failure surface: each
// corruption class yields the matching errors.Is sentinel and an
// errors.As-able *StoreError — never a panic.
func TestLoadMonitorTypedErrors(t *testing.T) {
	mon := trainedMonitor(t)
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		wantIs error
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/3] }, ErrStoreTruncated},
		{"flipped byte", func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[len(c)/2] ^= 0x10
			return c
		}, ErrStoreChecksum},
		{"future version", func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[4], c[5], c[6], c[7] = 0x63, 0, 0, 0 // version 99
			return c
		}, ErrStoreVersion},
		{"bad magic", func(d []byte) []byte {
			c := append([]byte(nil), d...)
			copy(c, "EMBS") // a basis file, not a monitor store
			return c
		}, ErrStoreBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadMonitor(bytes.NewReader(tc.mutate(data)))
			if err == nil {
				t.Fatal("load succeeded on corrupt bytes")
			}
			if !errors.Is(err, tc.wantIs) {
				t.Fatalf("error %v, want errors.Is %v", err, tc.wantIs)
			}
			var se *StoreError
			if !errors.As(err, &se) {
				t.Fatalf("error %T does not unwrap to *StoreError", err)
			}
		})
	}
}
