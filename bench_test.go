// Benchmarks regenerating every figure of the paper's evaluation section
// (one benchmark per figure/table row, per DESIGN.md's experiment index) at
// the reduced quick scale, plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks of the run-time path.
//
// Full-scale numbers come from `go run ./cmd/experiments`; these benches
// exist so `go test -bench=.` exercises every experiment end to end and
// tracks their cost over time.
package eigenmaps_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	eigenmaps "repro"
	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/recon"
	"repro/internal/thermal"
	"repro/internal/track"
	"repro/internal/workload"
)

// benchEnv is shared across figure benches (building it is itself measured
// by BenchmarkEnvSetup).
var (
	benchOnce sync.Once
	benchVal  *experiments.Env
	benchErr  error
)

func benchEnvGet(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchVal, benchErr = experiments.NewEnv(experiments.QuickConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// BenchmarkEnvSetup measures the full design-time pipeline: thermal
// simulation of the ensemble plus training both bases.
func BenchmarkEnvSetup(b *testing.B) {
	cfg := experiments.QuickConfig()
	cfg.Snapshots = 120 // keep per-iteration cost sane
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnv(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2EigenDecay regenerates Fig. 2 (EigenMaps + eigenvalue decay).
func BenchmarkFig2EigenDecay(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig2(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aApproximation regenerates Fig. 3(a) (approximation error vs K).
func BenchmarkFig3aApproximation(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig3a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3bReconstruction regenerates Fig. 3(b) (error vs sensors).
func BenchmarkFig3bReconstruction(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig3b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3cNoise regenerates Fig. 3(c) (error vs SNR at 16 sensors).
func BenchmarkFig3cNoise(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig3c(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Visual regenerates Fig. 4 (visual comparison at 16 sensors).
func BenchmarkFig4Visual(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Allocation regenerates Fig. 5 (method × allocator cross).
func BenchmarkFig5Allocation(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Constrained regenerates Fig. 6 (masked allocation).
func BenchmarkFig6Constrained(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline regenerates the Sec. 1 headline rows (tab-headline).
func BenchmarkHeadline(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Headline(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md Sec. 5) ---

// BenchmarkAblationSubspaceIteration compares the matrix-free subspace
// iteration used at full scale against the exact O(T³) method of snapshots.
func BenchmarkAblationSubspaceIteration(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := basis.TrainPCA(env.DS, 12, basis.PCAConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSnapshotMethod is the reference arm of the PCA ablation.
func BenchmarkAblationSnapshotMethod(b *testing.B) {
	env := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := basis.TrainPCA(env.DS, 12, basis.PCAConfig{UseSnapshotMethod: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyIncremental measures Algorithm 1 with the default
// incremental row-max maintenance and windowed rank checks.
func BenchmarkAblationGreedyIncremental(b *testing.B) {
	env := benchEnvGet(b)
	psi, err := env.PCA.Basis.PsiK(12)
	if err != nil {
		b.Fatal(err)
	}
	in := place.Input{Psi: psi, Grid: env.DS.Grid, M: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&place.Greedy{}).Allocate(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyEveryStepRankCheck is the naive-schedule arm:
// a rank check after every removal.
func BenchmarkAblationGreedyEveryStepRankCheck(b *testing.B) {
	env := benchEnvGet(b)
	psi, err := env.PCA.Basis.PsiK(12)
	if err != nil {
		b.Fatal(err)
	}
	in := place.Input{Psi: psi, Grid: env.DS.Grid, M: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&place.Greedy{CheckEveryStep: true}).Allocate(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDCTSelection compares the two k-LSE frequency-selection
// policies (energy-ranked is the default baseline; zig-zag the classical one).
func BenchmarkAblationDCTSelection(b *testing.B) {
	env := benchEnvGet(b)
	for _, sel := range []basis.DCTSelection{basis.DCTZigZag, basis.DCTEnergyRanked} {
		b.Run(sel.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := basis.TrainDCT(env.DS, 16, sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKvsM quantifies the ε (approximation) vs ε_r
// (conditioning) trade-off: at fixed M, sweep K and report the evaluated MSE
// per dimension as custom metrics.
func BenchmarkAblationKvsM(b *testing.B) {
	env := benchEnvGet(b)
	const m = 16
	sensors, err := env.PCA.PlaceSensors(m, core.PlaceOptions{K: m, Allocator: &place.Greedy{}})
	if err != nil {
		b.Fatal(err)
	}
	if len(sensors) > m {
		sensors = sensors[:m]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{4, 8, 12, 16} {
			r, err := recon.New(env.PCA.Basis, k, sensors)
			if err != nil {
				continue
			}
			res, err := recon.Evaluate(r, env.DS, recon.EvalConfig{SNRdB: 20, NoisePresent: true, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.MSE, "mse-K"+itoa(k))
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Run-time path micro-benchmarks ---

// BenchmarkReconstructOneMap measures the per-step cost a dynamic thermal
// manager pays: one least-squares solve plus map synthesis.
func BenchmarkReconstructOneMap(b *testing.B) {
	env := benchEnvGet(b)
	const m = 16
	sensors, err := env.PCA.PlaceSensors(m, core.PlaceOptions{K: m, Allocator: &place.Greedy{}})
	if err != nil {
		b.Fatal(err)
	}
	mon, err := env.PCA.NewMonitor(8, sensors[:m])
	if err != nil {
		b.Fatal(err)
	}
	readings := mon.Sample(env.DS.Map(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Estimate(readings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateArms compares the two reconstruction arms per snapshot:
// the precomputed-operator GEMV (the serving default) against the QR-solve
// ablation, at the daemon's default K=8/M=8 operating point and at the
// engine fixture's K=8/M=16 point. The tentpole criterion pins the operator
// arm at ≥2× the QR arm per snapshot at K=8/M=8.
func BenchmarkEstimateArms(b *testing.B) {
	env := benchEnvGet(b)
	for _, m := range []int{8, 16} {
		const k = 8
		sensors, err := env.PCA.PlaceSensors(m, core.PlaceOptions{K: k, Allocator: &place.Greedy{}})
		if err != nil {
			b.Fatal(err)
		}
		mon, err := env.PCA.NewMonitor(k, sensors)
		if err != nil {
			b.Fatal(err)
		}
		readings := mon.Sample(env.DS.Map(0))
		dst := make([]float64, mon.N())
		for _, arm := range []recon.Arm{recon.ArmOperator, recon.ArmQR} {
			b.Run("m="+itoa(m)+"/arm="+arm.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := mon.EstimateArmInto(dst, readings, arm); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Concurrent batched monitoring engine ---

// batchBenchSize is the snapshot count per batch in the engine benches —
// large enough that worker fan-out amortizes, small enough to iterate.
const batchBenchSize = 256

// engineFixture builds a shared monitor plus a reusable batch of readings
// and preallocated outputs.
func engineFixture(b *testing.B) (*core.Monitor, [][]float64, [][]float64) {
	b.Helper()
	env := benchEnvGet(b)
	const m = 16
	sensors, err := env.PCA.PlaceSensors(m, core.PlaceOptions{K: m, Allocator: &place.Greedy{}})
	if err != nil {
		b.Fatal(err)
	}
	mon, err := env.PCA.NewMonitor(8, sensors[:m])
	if err != nil {
		b.Fatal(err)
	}
	readings := make([][]float64, batchBenchSize)
	dst := make([][]float64, batchBenchSize)
	for i := range readings {
		readings[i] = mon.Sample(env.DS.Map(i % env.DS.T()))
		dst[i] = make([]float64, mon.N())
	}
	return mon, readings, dst
}

// BenchmarkEstimateSequential is the baseline the tentpole is measured
// against: one goroutine reconstructing a batch snapshot by snapshot (the
// pre-engine Estimate loop, minus its per-call allocations).
func BenchmarkEstimateSequential(b *testing.B) {
	mon, readings, dst := engineFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, xS := range readings {
			if err := mon.EstimateInto(dst[j], xS); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportPerSnapshot(b)
}

// BenchmarkEstimateBatchParallel is the engine path: the same batch fanned
// out over the worker pool with pooled scratch. Throughput must be ≥2× the
// sequential baseline at GOMAXPROCS ≥ 4 with zero steady-state allocations
// per snapshot (the few allocs/op here are the per-batch goroutine fan-out,
// amortized over batchBenchSize snapshots; per-snapshot zero-alloc is pinned
// by TestReconstructIntoZeroAlloc).
func BenchmarkEstimateBatchParallel(b *testing.B) {
	mon, readings, dst := engineFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mon.EstimateBatchInto(dst, readings, 0); err != nil {
			b.Fatal(err)
		}
	}
	reportPerSnapshot(b)
}

// BenchmarkEstimatePerSnapshotParallel drives the zero-alloc single-snapshot
// path from GOMAXPROCS goroutines sharing one monitor — the daemon's
// steady-state request mix. allocs/op must be 0.
func BenchmarkEstimatePerSnapshotParallel(b *testing.B) {
	mon, readings, _ := engineFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]float64, mon.N())
		j := 0
		for pb.Next() {
			if err := mon.EstimateInto(dst, readings[j%len(readings)]); err != nil {
				b.Fatal(err)
			}
			j++
		}
	})
}

// BenchmarkTrackerStepBatch measures the temporal (Kalman) batch path.
func BenchmarkTrackerStepBatch(b *testing.B) {
	env := benchEnvGet(b)
	const m = 16
	sensors, err := env.PCA.PlaceSensors(m, core.PlaceOptions{K: m, Allocator: &place.Greedy{}})
	if err != nil {
		b.Fatal(err)
	}
	kf, err := track.NewKalman(env.PCA.Basis, 8, sensors[:m], track.Config{})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]float64, 32)
	for i := range batch {
		batch[i] = kf.Sample(env.DS.Map(i % env.DS.T()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kf.StepBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// reportPerSnapshot converts the whole-batch ns/op into a per-snapshot
// figure so the sequential and batch benches compare directly.
func reportPerSnapshot(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchBenchSize), "ns/snapshot")
	b.ReportMetric(float64(b.N*batchBenchSize)/b.Elapsed().Seconds(), "snapshots/s")
}

// --- Design-time training & placement engine ---

// trainBenchEnv is the shared fixture for the training/placement benches: a
// T1 ensemble in the N ≈ 4·T regime (N = 800 cells, T = 200 snapshots)
// where the snapshot-Gram dual is the auto-selected side, plus the trained
// model for the placement benches.
var (
	trainBenchOnce sync.Once
	trainBenchDS   *dataset.Dataset
	trainBenchMdl  *core.Model
	trainBenchErr  error
)

// trainBenchKMax matches the paper's K = 40 operating point, where the
// covariance iteration's block is at its widest.
const trainBenchKMax = 40

func trainBenchGet(b *testing.B) (*dataset.Dataset, *core.Model) {
	b.Helper()
	trainBenchOnce.Do(func() {
		trainBenchDS, trainBenchErr = dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
			Grid:      floorplan.Grid{W: 40, H: 20},
			Snapshots: 200,
			Seed:      12,
		})
		if trainBenchErr != nil {
			return
		}
		trainBenchMdl, trainBenchErr = core.Train(trainBenchDS, core.TrainOptions{KMax: trainBenchKMax, Seed: 12})
	})
	if trainBenchErr != nil {
		b.Fatal(trainBenchErr)
	}
	return trainBenchDS, trainBenchMdl
}

// BenchmarkTrain compares the two sides of the PCA duality on the shared
// T1-sized ensemble (the tentpole criterion: gram ≥ 3× faster than
// covariance at N ≈ 2–4×T). The auto arm tracks what Train actually picks
// for this shape.
func BenchmarkTrain(b *testing.B) {
	ds, _ := trainBenchGet(b)
	for _, arm := range []struct {
		name   string
		method basis.PCAMethod
	}{
		{"covariance", basis.PCACovariance},
		{"gram", basis.PCAGram},
		{"auto", basis.PCAAuto},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(ds, core.TrainOptions{KMax: trainBenchKMax, Seed: 12, Method: arm.method}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlaceGreedy compares Algorithm 1's victim-selection engines on
// the shared 800-cell basis: the lazy max-heap default against the
// linear-rescan reference (the ablation test pins that both produce
// identical allocations).
func BenchmarkPlaceGreedy(b *testing.B) {
	ds, mdl := trainBenchGet(b)
	psi, err := mdl.Basis.PsiK(16)
	if err != nil {
		b.Fatal(err)
	}
	in := place.Input{Psi: psi, Grid: ds.Grid, M: 16}
	for _, arm := range []struct {
		name   string
		rescan bool
	}{
		{"heap", false},
		{"rescan", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&place.Greedy{Rescan: arm.rescan}).Allocate(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyPlacementFullScale measures Algorithm 1 on the paper's
// 3360-cell grid (the design-time cost that motivated the incremental
// row-max maintenance).
func BenchmarkGreedyPlacementFullScale(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale placement bench skipped in -short")
	}
	ds, err := dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
		Grid:      floorplan.Grid{W: 60, H: 56},
		Snapshots: 200,
		Seed:      3,
	})
	if err != nil {
		b.Fatal(err)
	}
	mdl, err := core.Train(ds, core.TrainOptions{KMax: 16, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	psi, err := mdl.Basis.PsiK(16)
	if err != nil {
		b.Fatal(err)
	}
	in := place.Input{Psi: psi, Grid: ds.Grid, M: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&place.Greedy{}).Allocate(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalStep measures one backward-Euler step of the RC model at
// the paper's grid size (the inner loop of dataset generation).
func BenchmarkThermalStep(b *testing.B) {
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: eigenmaps.Grid{W: 60, H: 56}, Snapshots: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = ens
	// SimulateT1 exercised the full path; per-step cost is measured through
	// the snapshot rate below.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
			Grid: eigenmaps.Grid{W: 60, H: 56}, Snapshots: 8, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymEigen tracks the dense eigensolver on a Rayleigh-Ritz-sized
// problem (the inner kernel of subspace iteration).
func BenchmarkSymEigen(b *testing.B) {
	a := mat.RandomSPD(64, randSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkTransientStep measures one backward-Euler step of the RC model
// at the paper's full 60×56 grid under a realistic mixed-workload power
// trace, one sub-benchmark per solver arm. The direct arm solves against
// the model's factor-once banded Cholesky (the acceptance criterion pins it
// at ≥5× the CG arm); the CG arm is the original warm-started iteration.
func BenchmarkTransientStep(b *testing.B) {
	for _, s := range []thermal.Solver{thermal.SolverCG, thermal.SolverDirect} {
		b.Run("solver="+s.String(), func(b *testing.B) {
			fp := floorplan.UltraSparcT1()
			g := floorplan.Grid{W: 60, H: 56}
			raster := fp.Rasterize(g)
			gen := power.NewGenerator(fp, power.Config{
				Scenario: power.ScenarioMixed, Seed: 7, LoadCoupling: 0.75,
			})
			maps := make([][]float64, 64)
			for i := range maps {
				maps[i] = power.SpreadToCells(raster, gen.Step())
			}
			m := thermal.NewModel(g, thermal.Config{Solver: s})
			dst := make([]float64, g.N())
			tr := m.NewTransient()
			if err := tr.SetSteadyState(maps[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.StepInto(dst, maps[i%len(maps)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerate measures full design-time ensemble generation at the
// quick-config scale, sequential versus one worker per CPU. (The "all"
// arm equals the sequential one on a 1-CPU machine; the generation fans
// out over independent scenario segments, so multi-core runners overlap
// them.)
func BenchmarkGenerate(b *testing.B) {
	arms := []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", runtime.NumCPU()}}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cfg := dataset.GenConfig{
				Grid:      floorplan.Grid{W: 24, H: 22},
				Snapshots: 240,
				Seed:      5,
				Workers:   arm.workers,
			}
			fp := floorplan.UltraSparcT1()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dataset.Generate(fp, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadStep measures one step of the spec-driven workload
// engine: the preset path (plain Markov dynamics), a feature-heavy
// declarative spec (MMPP arrivals + DVFS governor + duty envelopes +
// migration chain), and the preset dynamics scaled to a generated 256-core
// die (per-step cost is linear in the block count).
func BenchmarkWorkloadStep(b *testing.B) {
	heavy := &workload.Spec{
		Name: "heavy",
		Phases: []workload.Phase{
			{Steps: 200, Rates: workload.Rates{IdleToBusy: 0.2, BusyToIdle: 0.08, BusyToFPU: 0.05, FPUToBusy: 0.15}},
			{Steps: 100, Rates: workload.Rates{IdleToBusy: 0.35, BusyToIdle: 0.03, BusyToFPU: 0.1, FPUToBusy: 0.05}},
		},
		Arrival:   &workload.Arrival{BurstFactor: 4, PEnter: 0.05, PExit: 0.15},
		DVFS:      &workload.DVFS{Levels: []float64{0.5, 0.75, 1}, UpAt: 0.8, DownAt: 0.4, Hold: 25},
		Migration: workload.Migration{Period: 20, Rate: 0.1},
		Envelopes: []workload.Envelope{
			{Kind: "core", Period: 400, Min: 0.3, Max: 1},
			{Kind: "fpu", Period: 300, Min: 0.5, Max: 1, Shape: "saw"},
		},
	}
	manycore, err := floorplan.Manycore(256, 64, floorplan.Grid{W: 16, H: 16})
	if err != nil {
		b.Fatal(err)
	}
	presetSpec, err := workload.Parse("web")
	if err != nil {
		b.Fatal(err)
	}
	arms := []struct {
		name string
		fp   *floorplan.Floorplan
		spec *workload.Spec
		cfg  power.Config
	}{
		{"spec=web/t1", floorplan.UltraSparcT1(), presetSpec, power.Config{Seed: 7}},
		{"spec=heavy/t1", floorplan.UltraSparcT1(), heavy, power.Config{Seed: 7}},
		{"spec=web/manycore256", manycore, presetSpec, power.ManycoreConfig(256, 64)},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cfg := arm.cfg
			cfg.Seed = 7
			gen, err := power.NewSpecGenerator(arm.fp, arm.spec, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.Step()
			}
		})
	}
}

// --- Monitor persistence (the durable serving layer) ---

// monitorStoreFixture trains a daemon-sized monitor (grid 16×14, KMax 12,
// K=8/M=16 — the emapsd defaults) through the public pipeline.
func monitorStoreFixture(b *testing.B) *eigenmaps.Monitor {
	b.Helper()
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: eigenmaps.Grid{W: 16, H: 14}, Snapshots: 150, Seed: 9, LoadCoupling: 0.75,
	})
	if err != nil {
		b.Fatal(err)
	}
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 12, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sensors, err := model.PlaceSensors(16, eigenmaps.PlaceOptions{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	mon, err := model.NewMonitor(8, sensors)
	if err != nil {
		b.Fatal(err)
	}
	return mon
}

// BenchmarkMonitorSave measures serializing a trained monitor (basis +
// placement + cached QR) into the versioned store format.
func BenchmarkMonitorSave(b *testing.B) {
	mon := monitorStoreFixture(b)
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := mon.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorLoad measures rebuilding a serving-ready monitor from its
// store bytes — the warm-start path. The whole point of the store is that
// this is orders of magnitude cheaper than the simulate+train+place
// pipeline the fixture ran once (BenchmarkMonitorTrainPipeline is that
// pipeline at the same scale; DESIGN.md states the measured ratio).
func BenchmarkMonitorLoad(b *testing.B) {
	mon := monitorStoreFixture(b)
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigenmaps.LoadMonitor(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorTrainPipeline is the retraining arm BenchmarkMonitorLoad
// is measured against: the full simulate → train → place → factor pipeline
// at the identical configuration.
func BenchmarkMonitorTrainPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = monitorStoreFixture(b)
	}
}

// BenchmarkGenerateManycore measures end-to-end ensemble generation on the
// generated 256-core die (the robustness harness's reference floorplan) at
// a 32×32 grid — the scaling arm next to BenchmarkGenerate's T1 runs.
func BenchmarkGenerateManycore(b *testing.B) {
	fp, err := floorplan.Manycore(256, 64, floorplan.Grid{W: 16, H: 16})
	if err != nil {
		b.Fatal(err)
	}
	specs, err := workload.ParseList("bursty,dvfs")
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataset.GenConfig{
		Grid:      floorplan.Grid{W: 32, H: 32},
		Snapshots: 60,
		Specs:     specs,
		Seed:      5,
		Power:     power.ManycoreConfig(256, 64),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(fp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
