package eigenmaps_test

import (
	"math"
	"testing"

	eigenmaps "repro"
)

// subspaceResidual returns the Frobenius norm of B − A·(AᵀB) where A and B
// hold the two models' leading k basis vectors as columns — an upper bound
// on the sine of the largest principal angle between the spanned subspaces
// (A is orthonormal, so A·AᵀB is the projection of B onto span(A)).
func subspaceResidual(t *testing.T, a, b *eigenmaps.Model, k int) float64 {
	t.Helper()
	av := make([][]float64, k)
	bv := make([][]float64, k)
	for i := 0; i < k; i++ {
		var err error
		if av[i], err = a.EigenMap(i); err != nil {
			t.Fatal(err)
		}
		if bv[i], err = b.EigenMap(i); err != nil {
			t.Fatal(err)
		}
	}
	dot := func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += x[i] * y[i]
		}
		return s
	}
	var frob2 float64
	for j := 0; j < k; j++ {
		// r = b_j − Σ_i a_i·(a_i·b_j)
		r := append([]float64(nil), bv[j]...)
		for i := 0; i < k; i++ {
			c := dot(av[i], bv[j])
			for n := range r {
				r[n] -= c * av[i][n]
			}
		}
		frob2 += dot(r, r)
	}
	return math.Sqrt(frob2)
}

// TestStreamTrainerMatchesBatch pins the merge-vs-batch agreement of the
// streaming trainer: with a buffer covering the whole stream (one merge),
// the incremental factorization IS the batch PCA, so the leading subspaces
// must coincide to numerical precision — principal angles below 1e-8.
func TestStreamTrainerMatchesBatch(t *testing.T) {
	ens, _ := fixture(t)
	const kmax = 12
	batch, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{
		KMax: kmax, Seed: 5, Method: eigenmaps.GramMethod,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eigenmaps.NewStreamTrainer(ens.Grid(), eigenmaps.StreamOptions{
		KMax: kmax, BufCap: ens.T() + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddEnsemble(ens); err != nil {
		t.Fatal(err)
	}
	if st.Count() != ens.T() {
		t.Fatalf("Count() = %d, want %d", st.Count(), ens.T())
	}
	streamed, err := st.Model()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.KMax() != kmax {
		t.Fatalf("streamed KMax %d, want %d", streamed.KMax(), kmax)
	}
	// Spectra agree to relative 1e-9.
	bs, ss := batch.Spectrum(), streamed.Spectrum()
	for i := 0; i < kmax; i++ {
		if rel := math.Abs(bs[i]-ss[i]) / bs[0]; rel > 1e-9 {
			t.Fatalf("λ%d: batch %v vs streamed %v (rel %g)", i, bs[i], ss[i], rel)
		}
	}
	// The leading 8-dimensional subspaces coincide: every principal angle
	// sine is bounded by the projection residual, which must sit at the
	// eigensolver's numerical floor.
	if r := subspaceResidual(t, batch, streamed, 8); r > 1e-8 {
		t.Fatalf("principal angles between batch and streamed subspaces: residual %g > 1e-8", r)
	}
}

// TestStreamTrainerMultiMergeQuality checks the lossy multi-merge regime:
// with a small buffer (many truncating merges) the streamed subspace still
// reconstructs nearly as well as the batch subspace.
func TestStreamTrainerMultiMergeQuality(t *testing.T) {
	ens, batch := fixture(t)
	st, err := eigenmaps.NewStreamTrainer(ens.Grid(), eigenmaps.StreamOptions{
		KMax: 12, BufCap: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddEnsemble(ens); err != nil {
		t.Fatal(err)
	}
	streamed, err := st.Model()
	if err != nil {
		t.Fatal(err)
	}
	const k, m = 4, 6
	sensors, err := batch.PlaceSensors(m, eigenmaps.PlaceOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	evalMon := func(mdl *eigenmaps.Model) float64 {
		mon, err := mdl.NewMonitor(k, sensors)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.MSE
	}
	bm, sm := evalMon(batch), evalMon(streamed)
	if sm > bm*1.5+1e-9 {
		t.Fatalf("multi-merge streamed MSE %g vs batch %g", sm, bm)
	}
}

// TestStreamFromAdaptsDeployedModel exercises the adaptation entry point:
// a model seeded from the fixture and fed a differently-seeded stream must
// produce a valid model whose monitor reconstructs the new stream better
// than the stale model does.
func TestStreamFromAdaptsDeployedModel(t *testing.T) {
	_, stale := fixture(t)
	shifted, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: eigenmaps.Grid{W: 16, H: 14}, Snapshots: 120, Seed: 99,
		Workloads: []eigenmaps.Workload{"wave"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stale.StreamFrom(2, eigenmaps.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Fatalf("seeded Count() = %d, want 2", st.Count())
	}
	if err := st.AddEnsemble(shifted); err != nil {
		t.Fatal(err)
	}
	adapted, err := st.Model()
	if err != nil {
		t.Fatal(err)
	}
	if adapted.KMax() != stale.KMax() {
		t.Fatalf("adapted KMax %d, want the seed's %d", adapted.KMax(), stale.KMax())
	}
	const k, m = 6, 8
	sensors, err := stale.PlaceSensors(m, eigenmaps.PlaceOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	mse := func(mdl *eigenmaps.Model) float64 {
		mon, err := mdl.NewMonitor(k, sensors)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := mon.Evaluate(shifted, eigenmaps.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.MSE
	}
	staleMSE, adaptedMSE := mse(stale), mse(adapted)
	if !(adaptedMSE < staleMSE) {
		t.Fatalf("adaptation did not help: adapted MSE %g vs stale %g", adaptedMSE, staleMSE)
	}
}

func TestStreamTrainerValidation(t *testing.T) {
	if _, err := eigenmaps.NewStreamTrainer(eigenmaps.Grid{}, eigenmaps.StreamOptions{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	st, err := eigenmaps.NewStreamTrainer(eigenmaps.Grid{W: 4, H: 4}, eigenmaps.StreamOptions{KMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(make([]float64, 3)); err == nil {
		t.Fatal("wrong-length map accepted")
	}
	if _, err := st.Model(); err == nil {
		t.Fatal("Model() before any Add should fail")
	}
	_, stale := fixture(t)
	if _, err := stale.StreamFrom(0, eigenmaps.StreamOptions{}); err == nil {
		t.Fatal("zero seed weight accepted")
	}
}
