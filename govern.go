package eigenmaps

import (
	"repro/internal/floorplan"
	"repro/internal/governor"
)

// GovernorOptions configures a closed-loop DVFS governor built over the T1
// floorplan's cores. Zero-valued tuning fields derive their defaults from
// CeilingC exactly as the daemon's govern route does (trip one degree below
// the ceiling, a 3 °C hysteresis band, conservative PI gains).
type GovernorOptions struct {
	// Policy names the control law: "threshold", "hysteresis" (the default)
	// or "pi". GovernorPolicies lists the registry.
	Policy string

	// CeilingC is the thermal ceiling in °C. Required: every policy's
	// setpoints derive from it.
	CeilingC float64

	// Optional per-policy overrides — see the policy descriptions in
	// docs/API.md. Zero means "derive from CeilingC".
	TripC, SetC, ClearC float64
	TargetC, Kp, Ki     float64

	// Ladder is the ascending relative-frequency ladder the governor caps
	// cores onto, topping out at 1.0. Nil selects {0.5, 0.7, 0.85, 1.0}.
	Ladder []float64
}

// GovernorPolicies returns the registered control-policy names.
func GovernorPolicies() []string { return governor.PolicyNames() }

// Governor caps per-core DVFS levels from a thermal map — typically an
// EigenMaps estimate, closing the monitor → control loop the paper's sensor
// budget exists to enable. It is deterministic and allocation-free per Step,
// so the same map sequence always yields the same cap schedule.
type Governor struct {
	ctrl *governor.Controller
}

// NewT1Governor builds a governor over the UltraSPARC T1 floorplan's eight
// cores rasterized on g — the companion to SimulateT1 and AnalyzeT1.
func NewT1Governor(g Grid, opt GovernorOptions) (*Governor, error) {
	name := opt.Policy
	if name == "" {
		name = "hysteresis"
	}
	pol, err := governor.NewPolicy(name, governor.Params{
		CeilingC: opt.CeilingC,
		TripC:    opt.TripC,
		SetC:     opt.SetC,
		ClearC:   opt.ClearC,
		TargetC:  opt.TargetC,
		Kp:       opt.Kp,
		Ki:       opt.Ki,
	})
	if err != nil {
		return nil, err
	}
	fp := floorplan.UltraSparcT1()
	raster := fp.Rasterize(g.internal())
	ctrl, err := governor.NewController(pol, opt.Ladder, governor.CoreCells(fp, raster))
	if err != nil {
		return nil, err
	}
	return &Governor{ctrl: ctrl}, nil
}

// Step reads one thermal map (len Grid.N(), °C) and returns the per-core
// ladder levels to apply for the next interval. The returned slice is reused
// across calls; copy it to retain.
func (g *Governor) Step(mapC []float64) []int { return g.ctrl.Step(mapC) }

// Levels returns the current per-core ladder levels without stepping.
func (g *Governor) Levels() []int { return g.ctrl.Levels() }

// Freq maps a ladder level to its relative frequency in (0, 1].
func (g *Governor) Freq(level int) float64 { return g.ctrl.Freq(level) }

// Ladder returns a copy of the governor's frequency ladder.
func (g *Governor) Ladder() []float64 { return g.ctrl.Ladder() }

// Cores returns the number of governed cores.
func (g *Governor) Cores() int { return g.ctrl.Cores() }

// Policy returns the active policy's registered name.
func (g *Governor) Policy() string { return g.ctrl.Policy() }

// Throttled returns how many cores currently sit below the ladder top.
func (g *Governor) Throttled() int { return g.ctrl.Throttled() }
