// Package metrics implements the paper's two figures of merit — ensemble MSE
// and worst-case (MAX) error — plus the SNR helpers used by the noise
// experiments.
package metrics

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between maps a and b (Sec. 4's per-map
// contribution: Σ|a−b|²/N).
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// MaxSqErr returns the largest squared per-cell error (the paper's MAX).
func MaxSqErr(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d*d > m {
			m = d * d
		}
	}
	return m
}

// MaxAbsErr returns the largest absolute per-cell error in °C (√MAX) — the
// number behind claims like "within 1 °C".
func MaxAbsErr(a, b []float64) float64 {
	return math.Sqrt(MaxSqErr(a, b))
}

// Ensemble accumulates MSE/MAX over a set of map pairs, mirroring the
// paper's averages over all T maps.
type Ensemble struct {
	sumSq   float64 // Σ over maps and cells of squared error
	cells   int     // total cells accumulated
	maxSq   float64
	numMaps int
}

// Add accumulates one original/estimate pair.
func (e *Ensemble) Add(original, estimate []float64) {
	if len(original) != len(estimate) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(original), len(estimate)))
	}
	for i := range original {
		d := original[i] - estimate[i]
		sq := d * d
		e.sumSq += sq
		if sq > e.maxSq {
			e.maxSq = sq
		}
	}
	e.cells += len(original)
	e.numMaps++
}

// MSE returns the ensemble mean squared error (1/(TN)·ΣΣ|x−x̂|², Sec. 4).
func (e *Ensemble) MSE() float64 {
	if e.cells == 0 {
		return 0
	}
	return e.sumSq / float64(e.cells)
}

// MaxSq returns the ensemble MAX (max over maps and cells of squared error).
func (e *Ensemble) MaxSq() float64 { return e.maxSq }

// MaxAbs returns √MAX in °C.
func (e *Ensemble) MaxAbs() float64 { return math.Sqrt(e.maxSq) }

// Maps returns the number of accumulated pairs.
func (e *Ensemble) Maps() int { return e.numMaps }

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// SNR returns the paper's signal-to-noise ratio ‖x‖²/‖w‖² (linear).
// It is +Inf for zero noise.
func SNR(signal, noise []float64) float64 {
	var s, n float64
	for _, v := range signal {
		s += v * v
	}
	for _, v := range noise {
		n += v * v
	}
	if n == 0 {
		return math.Inf(1)
	}
	return s / n
}
