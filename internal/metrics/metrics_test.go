package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSEKnown(t *testing.T) {
	got := MSE([]float64{1, 2, 3}, []float64{1, 3, 5})
	if math.Abs(got-(0+1+4)/3.0) > 1e-14 {
		t.Fatalf("MSE = %v", got)
	}
}

func TestMSEZeroForIdentical(t *testing.T) {
	x := []float64{4, 5, 6}
	if MSE(x, x) != 0 {
		t.Fatal("MSE of identical maps must be 0")
	}
}

func TestMSEEmpty(t *testing.T) {
	if MSE(nil, nil) != 0 {
		t.Fatal("MSE of empty should be 0")
	}
}

func TestMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestMaxSqAndAbs(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, -3, 2}
	if MaxSqErr(a, b) != 9 {
		t.Fatalf("MaxSq = %v, want 9", MaxSqErr(a, b))
	}
	if MaxAbsErr(a, b) != 3 {
		t.Fatalf("MaxAbs = %v, want 3", MaxAbsErr(a, b))
	}
}

func TestEnsembleAccumulation(t *testing.T) {
	var e Ensemble
	e.Add([]float64{0, 0}, []float64{1, 0})  // sq errors 1, 0
	e.Add([]float64{0, 0}, []float64{0, -2}) // sq errors 0, 4
	if e.Maps() != 2 {
		t.Fatalf("Maps = %d", e.Maps())
	}
	if math.Abs(e.MSE()-5.0/4) > 1e-14 {
		t.Fatalf("ensemble MSE = %v, want 1.25", e.MSE())
	}
	if e.MaxSq() != 4 || e.MaxAbs() != 2 {
		t.Fatalf("MaxSq=%v MaxAbs=%v", e.MaxSq(), e.MaxAbs())
	}
}

func TestEnsembleEmpty(t *testing.T) {
	var e Ensemble
	if e.MSE() != 0 || e.MaxSq() != 0 {
		t.Fatal("empty ensemble should be zero")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-10, 0, 15, 30} {
		if math.Abs(DB(FromDB(db))-db) > 1e-12 {
			t.Fatalf("dB round trip failed at %v", db)
		}
	}
	if DB(100) != 20 {
		t.Fatalf("DB(100) = %v, want 20", DB(100))
	}
}

func TestSNRDefinition(t *testing.T) {
	sig := []float64{3, 4} // ‖x‖² = 25
	n := []float64{1, 2}   // ‖w‖² = 5
	if math.Abs(SNR(sig, n)-5) > 1e-14 {
		t.Fatalf("SNR = %v, want 5", SNR(sig, n))
	}
	if !math.IsInf(SNR(sig, []float64{0, 0}), 1) {
		t.Fatal("zero noise should give +Inf SNR")
	}
}

// Property: ensemble MSE equals the map-size-weighted mean of per-map MSEs
// (with equal map sizes, the plain mean).
func TestEnsembleMSEConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		maps := 1 + r.Intn(10)
		var e Ensemble
		var sum float64
		for m := 0; m < maps; m++ {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i] = r.NormFloat64()
				b[i] = r.NormFloat64()
			}
			e.Add(a, b)
			sum += MSE(a, b)
		}
		return math.Abs(e.MSE()-sum/float64(maps)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(60))}); err != nil {
		t.Fatal(err)
	}
}
