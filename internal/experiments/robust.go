package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/recon"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// RobustConfig parameterizes the cross-scenario robustness harness: for
// every workload family it trains an EigenMaps model (basis + greedy
// sensor layout) on that family's ensemble, then evaluates reconstruction
// error on every other family's ensemble — quantifying how well a basis
// trained on one workload generalizes to traffic it never saw, the central
// deployment question for EigenMaps-style monitoring. The paper trains and
// evaluates on one trace mix; this experiment surface is new.
type RobustConfig struct {
	// Floorplan is the die every family is simulated on. Defaults to the
	// 256-core generated many-core plan (floorplan.Manycore(256, 64,
	// 16×16)) — scenario diversity matters most at scale.
	Floorplan *floorplan.Floorplan
	// Power supplies the hardware budgets. Zero value: derived from the
	// floorplan via power.ConfigFor (many-core scaling + LoadCoupling). A
	// non-zero Power is used verbatim — set per-block budgets appropriate
	// to the floorplan's core count yourself.
	Power power.Config

	Grid      floorplan.Grid // default 32×32
	Snapshots int            // per family ensemble size, default 120
	KMax      int            // default 16
	K         int            // monitor subspace dimension, default 8
	M         int            // sensor budget, default 12
	Seed      int64

	// LoadCoupling is the default core coupling for families that declare
	// no load_coupling of their own. Default 0.75 — the regime every other
	// experiment in the suite runs in (see DESIGN.md, trace substitution).
	LoadCoupling float64

	// Specs are the scenario families. Default: the six-family catalog
	// cross-section web, compute, idle, bursty, wave, dvfs.
	Specs []*workload.Spec

	// SimSolver / SimWorkers forward to dataset.GenConfig.
	SimSolver  thermal.Solver
	SimWorkers int

	// Adapt enables the adaptation arm: for every train×eval pair, the
	// trained basis absorbs an adaptation stream of the *eval* family
	// (reconstruction-grade in-field captures, generated at a third seed
	// disjoint from both the training and evaluation ensembles) through
	// basis.NewIncrementalFrom, and the adapted monitor — same sensor
	// layout, operator re-folded from the adapted basis — is re-evaluated.
	// This measures how much of the generalization gap online adaptation
	// recovers without moving a single sensor.
	Adapt bool
	// AdaptSnapshots sizes the adaptation stream (default Snapshots).
	AdaptSnapshots int
	// AdaptSeedWeight is how many snapshots the design-time basis counts as
	// when seeding the incremental trainer (default max(2, Snapshots/8)):
	// small enough that the absorbed stream dominates the blend, large
	// enough that the prior anchors the subspace while the buffer fills.
	AdaptSeedWeight int
}

// DefaultRobustConfig returns the reference harness configuration: six
// scenario families on a generated 256-core die (the fully defaulted
// RobustConfig, materialized for inspection).
func DefaultRobustConfig(seed int64) (RobustConfig, error) {
	cfg := RobustConfig{Seed: seed}
	if err := cfg.defaults(); err != nil {
		return RobustConfig{}, err
	}
	return cfg, nil
}

func (c *RobustConfig) defaults() error {
	if c.Floorplan == nil {
		fp, err := floorplan.Manycore(256, 64, floorplan.Grid{W: 16, H: 16})
		if err != nil {
			return err
		}
		c.Floorplan = fp
	}
	if c.LoadCoupling == 0 {
		c.LoadCoupling = 0.75
	}
	if c.Power == (power.Config{}) {
		c.Power = power.ConfigFor(c.Floorplan, c.LoadCoupling)
	} else if c.Power.LoadCoupling == 0 {
		c.Power.LoadCoupling = c.LoadCoupling
	}
	if c.Grid.W == 0 || c.Grid.H == 0 {
		c.Grid = floorplan.Grid{W: 32, H: 32}
	}
	if c.Snapshots == 0 {
		c.Snapshots = 120
	}
	if c.KMax == 0 {
		c.KMax = 16
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.M == 0 {
		c.M = 12
	}
	if len(c.Specs) == 0 {
		for _, name := range []string{"web", "compute", "idle", "bursty", "wave", "dvfs"} {
			s, err := workload.Parse(name)
			if err != nil {
				return err
			}
			c.Specs = append(c.Specs, s)
		}
	}
	if c.AdaptSnapshots == 0 {
		c.AdaptSnapshots = c.Snapshots
	}
	if c.AdaptSeedWeight == 0 {
		c.AdaptSeedWeight = c.Snapshots / 8
		if c.AdaptSeedWeight < 2 {
			c.AdaptSeedWeight = 2
		}
	}
	return nil
}

// RobustResult is the train-family × eval-family reconstruction-error
// matrix. MSE[i][j] is the per-cell MSE (°C²) of the model trained on
// family i evaluated on family j's ensemble; the diagonal is the matched
// train/eval baseline.
type RobustResult struct {
	Names     []string
	MSE       [][]float64
	Cond      []float64 // κ(Ψ̃_K) of each trained layout
	Floorplan string
	K, M      int

	// AdaptedMSE[i][j] is the per-cell MSE on family j after the model
	// trained on family i absorbed family j's adaptation stream (same
	// sensors, re-folded operator). The diagonal absorbs more of the same
	// family. Nil unless the adapt arm ran.
	AdaptedMSE [][]float64
}

// Robust runs the harness: one training ensemble and one disjoint-seed
// evaluation ensemble per family, a model + greedy layout per training
// family, and a full cross-evaluation.
func Robust(cfg RobustConfig) (*RobustResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(cfg.Specs)
	res := &RobustResult{
		Names:     make([]string, n),
		MSE:       make([][]float64, n),
		Cond:      make([]float64, n),
		Floorplan: cfg.Floorplan.Name,
		K:         cfg.K, M: cfg.M,
	}
	seen := make(map[string]bool, n)
	for i, s := range cfg.Specs {
		// Label rows by spec name (unique); Family is grouping metadata and
		// may legitimately repeat across distinct specs.
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("spec[%d]", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("robust: duplicate scenario spec %q", name)
		}
		seen[name] = true
		res.Names[i] = name
	}

	gen := func(si int, seedSalt int64) (*dataset.Dataset, error) {
		return dataset.Generate(cfg.Floorplan, dataset.GenConfig{
			Grid:      cfg.Grid,
			Snapshots: cfg.Snapshots,
			Specs:     []*workload.Spec{cfg.Specs[si]},
			Seed:      mixSeed(cfg.Seed, seedSalt+int64(si)),
			Power:     cfg.Power,
			Solver:    cfg.SimSolver,
			Workers:   cfg.SimWorkers,
		})
	}

	// Evaluation ensembles: one per family, generated at a seed disjoint
	// from every training seed so the diagonal still measures
	// generalization to unseen traces of the same family.
	evals := make([]*dataset.Dataset, n)
	for j := 0; j < n; j++ {
		ds, err := gen(j, 100_000)
		if err != nil {
			return nil, fmt.Errorf("robust: eval ensemble %s: %w", res.Names[j], err)
		}
		evals[j] = ds
	}

	// Adaptation streams: a third disjoint seed per family, standing in for
	// the reconstruction-grade maps a deployed monitor captures in the
	// field. Disjoint from the eval seed so the adapted model is still
	// scored on traces it never absorbed.
	var adapts []*dataset.Dataset
	if cfg.Adapt {
		adapts = make([]*dataset.Dataset, n)
		for j := 0; j < n; j++ {
			ds, err := dataset.Generate(cfg.Floorplan, dataset.GenConfig{
				Grid:      cfg.Grid,
				Snapshots: cfg.AdaptSnapshots,
				Specs:     []*workload.Spec{cfg.Specs[j]},
				Seed:      mixSeed(cfg.Seed, 200_000+int64(j)),
				Power:     cfg.Power,
				Solver:    cfg.SimSolver,
				Workers:   cfg.SimWorkers,
			})
			if err != nil {
				return nil, fmt.Errorf("robust: adapt stream %s: %w", res.Names[j], err)
			}
			adapts[j] = ds
		}
		res.AdaptedMSE = make([][]float64, n)
	}

	for i := 0; i < n; i++ {
		train, err := gen(i, 0)
		if err != nil {
			return nil, fmt.Errorf("robust: train ensemble %s: %w", res.Names[i], err)
		}
		model, err := core.Train(train, core.TrainOptions{KMax: cfg.KMax, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("robust: train %s: %w", res.Names[i], err)
		}
		sensors, err := model.PlaceSensors(cfg.M, core.PlaceOptions{K: cfg.K})
		if err != nil {
			return nil, fmt.Errorf("robust: place %s: %w", res.Names[i], err)
		}
		if len(sensors) > cfg.M {
			sensors = sensors[:cfg.M]
		}
		mon, err := model.NewMonitor(cfg.K, sensors)
		if err != nil {
			return nil, fmt.Errorf("robust: monitor %s: %w", res.Names[i], err)
		}
		if res.Cond[i], err = mon.Cond(); err != nil {
			return nil, fmt.Errorf("robust: cond %s: %w", res.Names[i], err)
		}
		res.MSE[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			r, err := recon.Evaluate(mon.Reconstructor(), evals[j], recon.EvalConfig{})
			if err != nil {
				return nil, fmt.Errorf("robust: eval %s on %s: %w", res.Names[i], res.Names[j], err)
			}
			res.MSE[i][j] = r.MSE
		}
		if cfg.Adapt {
			res.AdaptedMSE[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				amse, err := adaptedMSE(cfg, model, sensors, adapts[j], evals[j])
				if err != nil {
					return nil, fmt.Errorf("robust: adapt %s to %s: %w", res.Names[i], res.Names[j], err)
				}
				res.AdaptedMSE[i][j] = amse
			}
		}
	}
	return res, nil
}

// adaptedMSE plays one adaptation episode: seed an incremental trainer from
// the trained model (the design-time basis stands in for AdaptSeedWeight
// snapshots), absorb the adaptation stream, snapshot the adapted basis,
// re-fold the operator over the *same* sensor layout and score it on the
// held-out evaluation ensemble.
func adaptedMSE(cfg RobustConfig, model *core.Model, sensors []int, adapt, eval *dataset.Dataset) (float64, error) {
	inc, err := basis.NewIncrementalFrom(model.Basis, model.Energy, cfg.AdaptSeedWeight, 0)
	if err != nil {
		return 0, err
	}
	for t := 0; t < adapt.T(); t++ {
		if err := inc.Add(adapt.Map(t)); err != nil {
			return 0, err
		}
	}
	adapted, err := inc.Snapshot()
	if err != nil {
		return 0, err
	}
	am := &core.Model{Basis: adapted, Energy: inc.Energy(), Grid: adapted.Grid}
	mon, err := am.NewMonitor(cfg.K, sensors)
	if err != nil {
		return 0, err
	}
	r, err := recon.Evaluate(mon.Reconstructor(), eval, recon.EvalConfig{})
	if err != nil {
		return 0, err
	}
	return r.MSE, nil
}

// GeneralizationGap returns the geometric mean, over train families, of
// (worst off-diagonal MSE) / (diagonal MSE): how much reconstruction error
// inflates when the deployed workload family is the least favorable one
// the basis never trained on. 1 means perfectly robust.
func (r *RobustResult) GeneralizationGap() float64 {
	if len(r.Names) < 2 {
		return 1
	}
	logSum := 0.0
	for i := range r.Names {
		worst := 0.0
		for j := range r.Names {
			if j != i && r.MSE[i][j] > worst {
				worst = r.MSE[i][j]
			}
		}
		if r.MSE[i][i] <= 0 || worst <= 0 {
			return 0
		}
		logSum += math.Log(worst / r.MSE[i][i])
	}
	return math.Exp(logSum / float64(len(r.Names)))
}

// AdaptedGeneralizationGap is GeneralizationGap after the adaptation arm:
// the geometric mean, over train families, of (worst off-diagonal
// AdaptedMSE) / (the matched train/eval diagonal of the *un-adapted*
// matrix). The baseline stays the design-time matched monitor, so the two
// gaps are directly comparable: their ratio is exactly how much of the
// worst-case inflation adaptation recovered. Returns 0 when the adapt arm
// did not run.
func (r *RobustResult) AdaptedGeneralizationGap() float64 {
	if r.AdaptedMSE == nil {
		return 0
	}
	if len(r.Names) < 2 {
		return 1
	}
	logSum := 0.0
	for i := range r.Names {
		worst := 0.0
		for j := range r.Names {
			if j != i && r.AdaptedMSE[i][j] > worst {
				worst = r.AdaptedMSE[i][j]
			}
		}
		if r.MSE[i][i] <= 0 || worst <= 0 {
			return 0
		}
		logSum += math.Log(worst / r.MSE[i][i])
	}
	return math.Exp(logSum / float64(len(r.Names)))
}

// GapCut returns GeneralizationGap / AdaptedGeneralizationGap — the factor
// by which online adaptation shrank the worst-case generalization gap.
// Returns 0 when the adapt arm did not run or either gap degenerates.
func (r *RobustResult) GapCut() float64 {
	adapted := r.AdaptedGeneralizationGap()
	if adapted <= 0 {
		return 0
	}
	return r.GeneralizationGap() / adapted
}

// MostRobustFamily returns the training family with the smallest worst-case
// MSE across eval families — the trace mix to train on when the deployment
// workload is unknown.
func (r *RobustResult) MostRobustFamily() string {
	best, bestWorst := "", math.Inf(1)
	for i, name := range r.Names {
		worst := 0.0
		for j := range r.Names {
			if r.MSE[i][j] > worst {
				worst = r.MSE[i][j]
			}
		}
		if worst < bestWorst {
			best, bestWorst = name, worst
		}
	}
	return best
}

// String prints the error matrix (rows = training family, columns = eval
// family) plus the robustness summary.
func (r *RobustResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Cross-scenario robustness: reconstruction MSE [°C²] on %s (K=%d, M=%d) ==\n",
		r.Floorplan, r.K, r.M)
	fmt.Fprintf(&b, "%-10s", "train\\eval")
	for _, n := range r.Names {
		fmt.Fprintf(&b, " %12s", n)
	}
	fmt.Fprintf(&b, " %12s\n", "cond")
	for i, n := range r.Names {
		fmt.Fprintf(&b, "%-10s", n)
		for j := range r.Names {
			fmt.Fprintf(&b, " %12.4g", r.MSE[i][j])
		}
		fmt.Fprintf(&b, " %12.3g\n", r.Cond[i])
	}
	fmt.Fprintf(&b, "worst-case/matched MSE inflation (geomean over train families): %.3gx\n",
		r.GeneralizationGap())
	fmt.Fprintf(&b, "most robust training family: %s (smallest worst-case MSE)\n", r.MostRobustFamily())
	if r.AdaptedMSE != nil {
		fmt.Fprintf(&b, "\n-- after online adaptation (same sensors, re-folded operator) --\n")
		fmt.Fprintf(&b, "%-10s", "train\\eval")
		for _, n := range r.Names {
			fmt.Fprintf(&b, " %12s", n)
		}
		fmt.Fprintln(&b)
		for i, n := range r.Names {
			fmt.Fprintf(&b, "%-10s", n)
			for j := range r.Names {
				fmt.Fprintf(&b, " %12.4g", r.AdaptedMSE[i][j])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "adapted worst-case inflation: %.3gx (gap cut %.3gx)\n",
			r.AdaptedGeneralizationGap(), r.GapCut())
	}
	return b.String()
}
