package experiments

import (
	"strings"
	"testing"
)

func TestStabilityClaim(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Stability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.M) != len(e.Cfg.Ms) {
		t.Fatalf("swept %d points", len(r.M))
	}
	for i := range r.M {
		if r.Calibration[i] < r.Clean[i] {
			t.Fatalf("M=%d: calibrated MSE %v below clean %v", r.M[i], r.Calibration[i], r.Clean[i])
		}
	}
	// The abstract's stability claim: calibration error is not amplified.
	// The added reconstruction error must stay within a small factor of the
	// sensor error budget itself.
	if r.AmplificationMax > 10 {
		t.Fatalf("calibration error amplified %vx — stability claim violated", r.AmplificationMax)
	}
	if !strings.Contains(r.String(), "amplification") {
		t.Fatal("report malformed")
	}
}

func TestTrackingBeatsLSUnderNoise(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ReadNoiseC) == 0 {
		t.Fatal("no sweep points")
	}
	// At every noise level the temporal filter must beat memoryless LS.
	for i, sigma := range r.ReadNoiseC {
		if r.KalmanMSE[i] >= r.LSMSE[i] {
			t.Fatalf("noise %v °C: Kalman %v not below LS %v", sigma, r.KalmanMSE[i], r.LSMSE[i])
		}
	}
	// And LS error must grow with noise (sanity of the harness).
	last := len(r.ReadNoiseC) - 1
	if r.LSMSE[last] <= r.LSMSE[0] {
		t.Fatal("LS error did not grow with read noise")
	}
}

func TestCrossFloorplanGapShrinksOnAthlon(t *testing.T) {
	e := quickEnv(t)
	r, err := e.CrossFloorplan()
	if err != nil {
		t.Fatal(err)
	}
	// EigenMaps must dominate k-LSE on both floorplans.
	for _, fp := range []string{"t1", "athlon"} {
		if g := r.GapRatio(fp); g <= 1 {
			t.Fatalf("%s gap ratio %v — EigenMaps should dominate", fp, g)
		}
	}
	// The paper's remark: the T1 generates more spatial high-frequency
	// content than the Athlon dual-core, so k-LSE's *absolute* error is
	// worse on the T1.
	if t1, athlon := r.KLSEMean("t1"), r.KLSEMean("athlon"); athlon >= t1 {
		t.Fatalf("k-LSE on Athlon (%v) not better than on T1 (%v)", athlon, t1)
	}
	if r.GapRatio("bogus") != 0 || r.KLSEMean("bogus") != 0 {
		t.Fatal("unknown floorplan should yield 0")
	}
	if !strings.Contains(r.String(), "Athlon") {
		t.Fatal("report malformed")
	}
}
