package experiments

import (
	"fmt"

	"repro/internal/place"
)

// Fig5Result crosses the two reconstruction methods with the two allocation
// algorithms — Fig. 5's four MSE curves versus M.
type Fig5Result struct {
	M               []int
	EigenGreedy     []float64
	EigenEnergy     []float64
	KLSEGreedy      []float64
	KLSEEnergy      []float64
	CondEigenGreedy []float64
	CondEigenEnergy []float64
}

// Fig5 sweeps M over Cfg.Ms for all four combinations.
func (e *Env) Fig5() (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, m := range e.Cfg.Ms {
		k := m
		if k > e.Cfg.KMax {
			k = e.Cfg.KMax
		}
		eg, err := e.evalCombo(e.PCA, &place.Greedy{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig5 M=%d eigen+greedy: %w", m, err)
		}
		ee, err := e.evalCombo(e.PCA, &place.EnergyCenter{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig5 M=%d eigen+energy: %w", m, err)
		}
		dg, err := e.evalCombo(e.KLSE, &place.Greedy{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig5 M=%d klse+greedy: %w", m, err)
		}
		de, err := e.evalCombo(e.KLSE, &place.EnergyCenter{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig5 M=%d klse+energy: %w", m, err)
		}
		res.M = append(res.M, m)
		res.EigenGreedy = append(res.EigenGreedy, eg.MSE)
		res.EigenEnergy = append(res.EigenEnergy, ee.MSE)
		res.KLSEGreedy = append(res.KLSEGreedy, dg.MSE)
		res.KLSEEnergy = append(res.KLSEEnergy, de.MSE)
		res.CondEigenGreedy = append(res.CondEigenGreedy, eg.Cond)
		res.CondEigenEnergy = append(res.CondEigenEnergy, ee.Cond)
	}
	return res, nil
}

// String prints Fig. 5's four curves.
func (r *Fig5Result) String() string {
	xs := make([]float64, len(r.M))
	for i, m := range r.M {
		xs[i] = float64(m)
	}
	return formatSeries("Fig. 5: MSE vs M for reconstruction x allocation", "M", []Series{
		{Name: "EigenMaps+greedy", X: xs, Y: r.EigenGreedy},
		{Name: "EigenMaps+energy", X: xs, Y: r.EigenEnergy},
		{Name: "k-LSE+greedy", X: xs, Y: r.KLSEGreedy},
		{Name: "k-LSE+energy", X: xs, Y: r.KLSEEnergy},
	})
}
