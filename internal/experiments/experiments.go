// Package experiments regenerates every figure of the paper's evaluation
// (Sec. 5) plus the headline claims of Sec. 1, on top of the repository's
// simulated UltraSPARC T1 ensemble. Each FigN function returns a result
// struct whose String method prints the same series/rows the paper plots;
// cmd/experiments runs them all and EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Config scales the experiment suite. DefaultConfig reproduces the paper's
// dimensions; QuickConfig shrinks everything for benches and smoke tests.
type Config struct {
	Grid      floorplan.Grid
	Snapshots int
	KMax      int
	Seed      int64

	// Ms are the sensor counts swept in Figs. 3(b), 5 and 6.
	Ms []int
	// Ks are the subspace dimensions swept in Fig. 3(a).
	Ks []int
	// SNRsDB are the noise levels swept in Fig. 3(c).
	SNRsDB []float64
	// NoiseM is the sensor count for Fig. 3(c). The paper uses 16.
	NoiseM int

	// LoadCoupling forwards to power.Config: the T1's throughput workloads
	// run strongly correlated cores, which is what makes the paper's 4-5
	// sensor operating point reachable. See DESIGN.md (trace substitution).
	LoadCoupling float64

	// Method forwards to core.TrainOptions: the PCA eigensolver side
	// (default auto — pick the cheaper one from the ensemble shape).
	Method basis.PCAMethod
	// Workers forwards to core.TrainOptions: the goroutine cap for the
	// snapshot-Gram training path (0 = all CPUs).
	Workers int

	// SimSolver forwards to dataset.GenConfig: the transient linear-solver
	// arm (default auto — the factor-once banded direct solver).
	SimSolver thermal.Solver
	// SimWorkers forwards to dataset.GenConfig: the goroutine cap for
	// generating scenario segments concurrently (0 = all CPUs).
	SimWorkers int

	// Specs, when non-empty, replaces the default scenario mix with
	// declarative workload specs (dataset.GenConfig.Specs). The robustness
	// harness also uses them as its scenario families.
	Specs []*workload.Spec
}

// DefaultConfig returns the paper-scale configuration: 60×56 grid, T = 2652
// snapshots, sweeps matching the figures' axes.
func DefaultConfig() Config {
	return Config{
		Grid:         floorplan.Grid{W: 60, H: 56},
		Snapshots:    2652,
		KMax:         40,
		Seed:         2012,
		Ms:           []int{4, 6, 8, 12, 16, 20, 24, 28, 32},
		Ks:           []int{2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 36},
		SNRsDB:       []float64{10, 15, 20, 25, 30, 40, 50},
		NoiseM:       16,
		LoadCoupling: 0.75,
	}
}

// QuickConfig returns a reduced configuration (24×22 grid, 240 snapshots)
// that preserves every qualitative comparison while running in seconds.
func QuickConfig() Config {
	return Config{
		Grid:         floorplan.Grid{W: 24, H: 22},
		Snapshots:    240,
		KMax:         20,
		Seed:         2012,
		Ms:           []int{4, 8, 12, 16},
		Ks:           []int{2, 4, 8, 12, 16},
		SNRsDB:       []float64{10, 15, 25, 40},
		NoiseM:       16,
		LoadCoupling: 0.75,
	}
}

// Timing records the wall-clock cost of each design-time phase, so tools
// like cmd/experiments can report where environment construction spends its
// time and which PCA eigensolver side was used.
type Timing struct {
	Simulate  time.Duration // ensemble generation (zero when a cached dataset is supplied)
	TrainPCA  time.Duration // EigenMaps training
	TrainKLSE time.Duration // DCT baseline training
	PCAMethod basis.PCAMethod
	// SimSolver is the resolved solver arm the simulation ran with; it is
	// left zero (auto) when a cached dataset was supplied and nothing was
	// simulated.
	SimSolver thermal.Solver
}

// Env holds the shared precomputed state every experiment driver reuses:
// the snapshot ensemble and both trained models.
type Env struct {
	Cfg    Config
	DS     *dataset.Dataset
	PCA    *core.Model // EigenMaps
	KLSE   *core.Model // DCT (energy-ranked), the k-LSE baseline
	Raster *floorplan.Raster
	Timing Timing
}

// NewEnv simulates the ensemble and trains both models.
func NewEnv(cfg Config) (*Env, error) {
	fp := floorplan.UltraSparcT1()
	start := time.Now()
	ds, err := dataset.Generate(fp, dataset.GenConfig{
		Grid:      cfg.Grid,
		Snapshots: cfg.Snapshots,
		Specs:     cfg.Specs,
		Seed:      cfg.Seed,
		Power:     power.Config{LoadCoupling: cfg.LoadCoupling},
		Solver:    cfg.SimSolver,
		Workers:   cfg.SimWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: simulate: %w", err)
	}
	simTime := time.Since(start)
	env, err := NewEnvWithDataset(cfg, ds)
	if err != nil {
		return nil, err
	}
	// Attributed here, not in NewEnvWithDataset: a preloaded dataset was not
	// produced by this process, so no solver arm can be claimed for it.
	env.Timing.SimSolver = thermal.ResolveSolver(cfg.SimSolver)
	env.Timing.Simulate = simTime
	return env, nil
}

// NewEnvWithDataset trains both models on a pre-generated (e.g. cached)
// ensemble; cfg.Grid/Snapshots are taken from the dataset.
func NewEnvWithDataset(cfg Config, ds *dataset.Dataset) (*Env, error) {
	cfg.Grid = ds.Grid
	cfg.Snapshots = ds.T()
	start := time.Now()
	pca, err := core.Train(ds, core.TrainOptions{
		KMax: cfg.KMax, Kind: core.BasisEigenMaps, Seed: cfg.Seed,
		Method: cfg.Method, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train EigenMaps: %w", err)
	}
	pcaTime := time.Since(start)
	start = time.Now()
	klse, err := core.Train(ds, core.TrainOptions{KMax: cfg.KMax, Kind: core.BasisDCT, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: train k-LSE: %w", err)
	}
	klseTime := time.Since(start)
	return &Env{
		Cfg:    cfg,
		DS:     ds,
		PCA:    pca,
		KLSE:   klse,
		Raster: floorplan.UltraSparcT1().Rasterize(ds.Grid),
		Timing: Timing{
			TrainPCA:  pcaTime,
			TrainKLSE: klseTime,
			PCAMethod: pca.Basis.Method,
		},
	}, nil
}

// Basis returns the named model's basis (test convenience).
func (e *Env) Basis(kind core.BasisKind) *basis.Basis {
	if kind == core.BasisEigenMaps {
		return e.PCA.Basis
	}
	return e.KLSE.Basis
}

// Series is one labeled curve of an experiment (X sorted ascending).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// formatSeries prints aligned columns: X then one column per series.
func formatSeries(title, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-10s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-10.4g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, " %22.6g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mixSeed derives deterministic sub-seeds for independent noise draws.
func mixSeed(seed int64, salt int64) int64 { return seed*1_000_003 + salt }
