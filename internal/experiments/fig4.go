package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/place"
	"repro/internal/render"
)

// Fig4Result reproduces Fig. 4's visual comparison: two representative
// thermal maps, each shown as original / EigenMaps reconstruction / k-LSE
// reconstruction, all with 16 sensors.
type Fig4Result struct {
	MapIndices [2]int
	Originals  [2][]float64
	Eigen      [2][]float64
	KLSE       [2][]float64
	// MaxAbsEigen/MaxAbsKLSE record the worst per-cell error of each
	// reconstruction [°C].
	MaxAbsEigen [2]float64
	MaxAbsKLSE  [2]float64
	ascii       string
}

// Fig4 picks the hottest map and the map with the largest spatial gradient
// (two visually distinct regimes) and reconstructs both.
func (e *Env) Fig4() (*Fig4Result, error) {
	const m = 16
	k := m
	if k > e.Cfg.KMax {
		k = e.Cfg.KMax
	}
	hot, grad := e.pickShowcaseMaps()
	res := &Fig4Result{MapIndices: [2]int{hot, grad}}

	sensorsE, err := e.PCA.PlaceSensors(m, core.PlaceOptions{K: k, Allocator: &place.Greedy{}})
	if err != nil {
		return nil, fmt.Errorf("fig4 eigen placement: %w", err)
	}
	if len(sensorsE) > m {
		sensorsE = sensorsE[:m]
	}
	monE, err := chooseStableK(e.PCA, sensorsE, k)
	if err != nil {
		return nil, err
	}
	sensorsD, err := e.KLSE.PlaceSensors(m, core.PlaceOptions{K: k, Allocator: &place.EnergyCenter{}})
	if err != nil {
		return nil, fmt.Errorf("fig4 k-LSE placement: %w", err)
	}
	monD, err := chooseStableK(e.KLSE, sensorsD, k)
	if err != nil {
		return nil, err
	}

	for i, idx := range res.MapIndices {
		x := e.DS.Map(idx)
		recE, err := monE.Estimate(monE.Sample(x))
		if err != nil {
			return nil, fmt.Errorf("fig4 eigen map %d: %w", idx, err)
		}
		recD, err := monD.Estimate(monD.Sample(x))
		if err != nil {
			return nil, fmt.Errorf("fig4 k-LSE map %d: %w", idx, err)
		}
		res.Originals[i] = append([]float64(nil), x...)
		res.Eigen[i] = recE
		res.KLSE[i] = recD
		res.MaxAbsEigen[i] = metrics.MaxAbsErr(x, recE)
		res.MaxAbsKLSE[i] = metrics.MaxAbsErr(x, recD)
	}

	var b strings.Builder
	for i := range res.MapIndices {
		fmt.Fprintf(&b, "map %d (row %d):\n", i+1, res.MapIndices[i])
		b.WriteString(render.SideBySide(e.DS.Grid,
			[]string{"(a) original", "(b) EigenMaps", "(c) k-LSE"},
			[][]float64{res.Originals[i], res.Eigen[i], res.KLSE[i]},
			render.Options{}))
		b.WriteByte('\n')
	}
	res.ascii = b.String()
	return res, nil
}

// pickShowcaseMaps returns the index of the hottest map and of the map with
// the largest internal temperature spread.
func (e *Env) pickShowcaseMaps() (hottest, steepest int) {
	var bestMax, bestSpread float64
	for j := 0; j < e.DS.T(); j++ {
		row := e.DS.Map(j)
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > bestMax {
			bestMax, hottest = hi, j
		}
		if hi-lo > bestSpread {
			bestSpread, steepest = hi-lo, j
		}
	}
	if hottest == steepest && e.DS.T() > 1 {
		// Ensure two distinct rows for the figure.
		steepest = (hottest + e.DS.T()/2) % e.DS.T()
	}
	return hottest, steepest
}

// String prints the ASCII side-by-side panels plus the per-map worst errors.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 4: visual comparison, 16 sensors ==\n")
	b.WriteString(r.ascii)
	for i := range r.MapIndices {
		fmt.Fprintf(&b, "map %d worst-cell error: EigenMaps %.3f C, k-LSE %.3f C\n",
			i+1, r.MaxAbsEigen[i], r.MaxAbsKLSE[i])
	}
	return b.String()
}
