package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/place"
	"repro/internal/recon"
	"repro/internal/track"
)

// StabilityResult exercises the abstract's stability claim — "the proposed
// methods are stable with respect to possible temperature sensor calibration
// inaccuracies" — with a realistic sensor error budget rather than
// SNR-scaled AWGN: per-sensor frozen offset and gain error, read noise and
// ADC quantization (internal/noise.SensorModel).
type StabilityResult struct {
	M []int
	// MSE per sensor condition, indexed like M.
	Clean       []float64
	Calibration []float64 // typical sensor budget (offsets, gain, noise, ADC)
	// AmplificationMax is the largest Calibration/Clean ratio over the sweep
	// after subtracting the irreducible sensor-error floor; the claim is
	// that the reconstruction does not blow this up.
	AmplificationMax float64
}

// Stability sweeps M with clean and calibration-corrupted sensors.
func (e *Env) Stability() (*StabilityResult, error) {
	res := &StabilityResult{}
	model := noise.TypicalSensor()
	for mi, m := range e.Cfg.Ms {
		k := m
		if k > e.Cfg.KMax {
			k = e.Cfg.KMax
		}
		sensors, err := e.PCA.PlaceSensors(m, core.PlaceOptions{K: k, Allocator: &place.Greedy{}})
		if err != nil {
			return nil, fmt.Errorf("stability M=%d: %w", m, err)
		}
		if len(sensors) > m {
			sensors = sensors[:m]
		}
		mon, err := chooseStableK(e.PCA, sensors, k)
		if err != nil {
			return nil, fmt.Errorf("stability M=%d: %w", m, err)
		}
		clean, err := recon.Evaluate(mon.Reconstructor(), e.DS, recon.EvalConfig{})
		if err != nil {
			return nil, err
		}
		// Calibration run: one manufactured sensor bank per sweep point,
		// reused across all maps (offsets are systematic, not re-drawn).
		bank := model.NewSensors(len(sensors), rand.New(rand.NewSource(mixSeed(e.Cfg.Seed, int64(400+mi)))))
		var ens metrics.Ensemble
		r := mon.Reconstructor()
		for j := 0; j < e.DS.T(); j++ {
			x := e.DS.Map(j)
			rec, err := r.Reconstruct(bank.Read(r.Sample(x)))
			if err != nil {
				return nil, fmt.Errorf("stability M=%d map %d: %w", m, j, err)
			}
			ens.Add(x, rec)
		}
		res.M = append(res.M, m)
		res.Clean = append(res.Clean, clean.MSE)
		res.Calibration = append(res.Calibration, ens.MSE())
	}
	// Amplification: the extra error added by calibration, normalized by the
	// sensor error budget itself (offset σ² dominates: ~1 °C²). Stability
	// means the reconstruction adds error of the same order as the sensor
	// error, never orders of magnitude more.
	const sensorFloor = 1.0 // °C², the offset variance of TypicalSensor
	for i := range res.M {
		amp := (res.Calibration[i] - res.Clean[i]) / sensorFloor
		if amp > res.AmplificationMax {
			res.AmplificationMax = amp
		}
	}
	return res, nil
}

// String prints the stability sweep.
func (r *StabilityResult) String() string {
	xs := make([]float64, len(r.M))
	for i, m := range r.M {
		xs[i] = float64(m)
	}
	var b strings.Builder
	b.WriteString(formatSeries("Stability: calibration-corrupted sensors (typical budget)", "M", []Series{
		{Name: "MSE clean", X: xs, Y: r.Clean},
		{Name: "MSE calibrated", X: xs, Y: r.Calibration},
	}))
	fmt.Fprintf(&b, "max error amplification over sensor budget: %.2fx\n", r.AmplificationMax)
	return b.String()
}

// TrackingResult compares the paper's memoryless least squares against the
// Kalman temporal tracker (related work [19]) on the same sensors under
// per-sample read noise.
type TrackingResult struct {
	ReadNoiseC []float64
	LSMSE      []float64
	KalmanMSE  []float64
	M, K       int
}

// Tracking runs both estimators over the full trace at several read-noise
// levels.
func (e *Env) Tracking() (*TrackingResult, error) {
	const m = 16
	k := 8
	if k > e.Cfg.KMax {
		k = e.Cfg.KMax
	}
	sensors, err := e.PCA.PlaceSensors(m, core.PlaceOptions{K: k, Allocator: &place.Greedy{}})
	if err != nil {
		return nil, fmt.Errorf("tracking placement: %w", err)
	}
	if len(sensors) > m {
		sensors = sensors[:m]
	}
	ls, err := recon.New(e.PCA.Basis, k, sensors)
	if err != nil {
		return nil, err
	}
	res := &TrackingResult{M: m, K: k}
	for ni, sigma := range []float64{0.25, 0.5, 1.0, 2.0} {
		kf, err := track.NewKalman(e.PCA.Basis, k, sensors, track.Config{
			ProcessScale:   0.05,
			MeasurementVar: sigma * sigma,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(mixSeed(e.Cfg.Seed, int64(500+ni))))
		var lsEns, kfEns metrics.Ensemble
		const burnIn = 10
		for j := 0; j < e.DS.T(); j++ {
			x := e.DS.Map(j)
			readings := ls.Sample(x)
			for i := range readings {
				readings[i] += sigma * rng.NormFloat64()
			}
			lsRec, err := ls.Reconstruct(readings)
			if err != nil {
				return nil, err
			}
			kfRec, err := kf.Step(readings)
			if err != nil {
				return nil, err
			}
			if j < burnIn {
				continue
			}
			lsEns.Add(x, lsRec)
			kfEns.Add(x, kfRec)
		}
		res.ReadNoiseC = append(res.ReadNoiseC, sigma)
		res.LSMSE = append(res.LSMSE, lsEns.MSE())
		res.KalmanMSE = append(res.KalmanMSE, kfEns.MSE())
	}
	return res, nil
}

// String prints the tracking comparison.
func (r *TrackingResult) String() string {
	header := fmt.Sprintf("Tracking extension: Kalman vs least squares (M=%d, K=%d)", r.M, r.K)
	return formatSeries(header, "noise[C]", []Series{
		{Name: "LS MSE", X: r.ReadNoiseC, Y: r.LSMSE},
		{Name: "Kalman MSE", X: r.ReadNoiseC, Y: r.KalmanMSE},
	})
}
