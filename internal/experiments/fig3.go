package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/recon"
)

// Fig3aResult compares the pure approximation error of the EigenMaps and
// DCT (k-LSE) subspaces as a function of K — Fig. 3(a).
type Fig3aResult struct {
	K          []int
	MSEEigen   []float64
	MSEKLSE    []float64
	MaxSqEigen []float64
	MaxSqKLSE  []float64
}

// Fig3a sweeps K over Cfg.Ks.
func (e *Env) Fig3a() (*Fig3aResult, error) {
	res := &Fig3aResult{}
	for _, k := range e.Cfg.Ks {
		if k > e.PCA.Basis.KMax() {
			continue
		}
		pe, err := recon.EvaluateApproximation(e.PCA.Basis, e.DS, k)
		if err != nil {
			return nil, fmt.Errorf("fig3a K=%d (eigen): %w", k, err)
		}
		de, err := recon.EvaluateApproximation(e.KLSE.Basis, e.DS, k)
		if err != nil {
			return nil, fmt.Errorf("fig3a K=%d (dct): %w", k, err)
		}
		res.K = append(res.K, k)
		res.MSEEigen = append(res.MSEEigen, pe.MSE)
		res.MSEKLSE = append(res.MSEKLSE, de.MSE)
		res.MaxSqEigen = append(res.MaxSqEigen, pe.MaxSq)
		res.MaxSqKLSE = append(res.MaxSqKLSE, de.MaxSq)
	}
	return res, nil
}

// String prints the four curves of Fig. 3(a).
func (r *Fig3aResult) String() string {
	xs := make([]float64, len(r.K))
	for i, k := range r.K {
		xs[i] = float64(k)
	}
	return formatSeries("Fig. 3(a): approximation error vs K", "K", []Series{
		{Name: "MSE EigenMaps", X: xs, Y: r.MSEEigen},
		{Name: "MSE k-LSE", X: xs, Y: r.MSEKLSE},
		{Name: "MAX EigenMaps", X: xs, Y: r.MaxSqEigen},
		{Name: "MAX k-LSE", X: xs, Y: r.MaxSqKLSE},
	})
}

// Fig3bResult compares end-to-end reconstruction error versus the number of
// sensors M — Fig. 3(b). Each method uses its own allocation strategy
// (EigenMaps + greedy, k-LSE + energy-center), K = M.
type Fig3bResult struct {
	M          []int
	MSEEigen   []float64
	MSEKLSE    []float64
	MaxSqEigen []float64
	MaxSqKLSE  []float64
	CondEigen  []float64
}

// Fig3b sweeps M over Cfg.Ms.
func (e *Env) Fig3b() (*Fig3bResult, error) {
	res := &Fig3bResult{}
	for _, m := range e.Cfg.Ms {
		k := m
		if k > e.Cfg.KMax {
			k = e.Cfg.KMax
		}
		pe, err := e.evalCombo(e.PCA, &place.Greedy{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig3b M=%d (eigen+greedy): %w", m, err)
		}
		de, err := e.evalCombo(e.KLSE, &place.EnergyCenter{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig3b M=%d (klse+energy): %w", m, err)
		}
		res.M = append(res.M, m)
		res.MSEEigen = append(res.MSEEigen, pe.MSE)
		res.MSEKLSE = append(res.MSEKLSE, de.MSE)
		res.MaxSqEigen = append(res.MaxSqEigen, pe.MaxSq)
		res.MaxSqKLSE = append(res.MaxSqKLSE, de.MaxSq)
		res.CondEigen = append(res.CondEigen, pe.Cond)
	}
	return res, nil
}

// condCap is the largest κ(Ψ̃_K) the experiment drivers accept before
// shrinking K. Theorem 1's error bound scales with κ², so beyond this point
// extra subspace dimensions only amplify error; any practitioner (and,
// implicitly, the paper's smooth curves) backs K off. The cap is generous —
// well-allocated layouts sit at κ < 10.
const condCap = 30

// chooseStableK returns the largest k ≤ kWanted for which the sensor layout
// yields a full-rank sensing matrix with κ(Ψ̃_K) ≤ condCap, together with its
// monitor.
func chooseStableK(mdl *core.Model, sensors []int, kWanted int) (*core.Monitor, error) {
	if kWanted > len(sensors) {
		kWanted = len(sensors)
	}
	var lastErr error
	for k := kWanted; k >= 1; k-- {
		mon, err := mdl.NewMonitor(k, sensors)
		if err != nil {
			lastErr = err
			continue
		}
		cond, err := mon.Cond()
		if err != nil {
			lastErr = err
			continue
		}
		if cond <= condCap {
			return mon, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no K below condition cap")
	}
	return nil, fmt.Errorf("no usable subspace dimension for %d sensors: %w", len(sensors), lastErr)
}

// evalCombo places sensors with alloc for model mdl and evaluates at the
// largest stable K ≤ k (see chooseStableK), M = m.
func (e *Env) evalCombo(mdl *core.Model, alloc place.Allocator, k, m int, mask []bool) (recon.Result, error) {
	sensors, err := mdl.PlaceSensors(m, core.PlaceOptions{K: k, Mask: mask, Allocator: alloc})
	if err != nil {
		return recon.Result{}, err
	}
	if len(sensors) > m {
		// Greedy's rank safeguard can return extra rows; keep the first m
		// after sorting (they remain well spread).
		sensors = sensors[:m]
	}
	mon, err := chooseStableK(mdl, sensors, k)
	if err != nil {
		return recon.Result{}, fmt.Errorf("M=%d with %s: %w", m, alloc.Name(), err)
	}
	return recon.Evaluate(mon.Reconstructor(), e.DS, recon.EvalConfig{})
}

// String prints the curves of Fig. 3(b).
func (r *Fig3bResult) String() string {
	xs := make([]float64, len(r.M))
	for i, m := range r.M {
		xs[i] = float64(m)
	}
	return formatSeries("Fig. 3(b): reconstruction error vs M sensors (K=M)", "M", []Series{
		{Name: "MSE EigenMaps", X: xs, Y: r.MSEEigen},
		{Name: "MSE k-LSE", X: xs, Y: r.MSEKLSE},
		{Name: "MAX EigenMaps", X: xs, Y: r.MaxSqEigen},
		{Name: "MAX k-LSE", X: xs, Y: r.MaxSqKLSE},
	})
}

// Fig3cResult compares reconstruction error under measurement noise as a
// function of SNR at a fixed sensor budget — Fig. 3(c).
type Fig3cResult struct {
	SNRdB      []float64
	MSEEigen   []float64
	MSEKLSE    []float64
	MaxSqEigen []float64
	MaxSqKLSE  []float64
	KEigen     int
	KKLSE      int
	M          int
}

// Fig3c evaluates at M = Cfg.NoiseM sensors. Under noise the best K is
// smaller than M (the ε/ε_r trade-off after Theorem 1); both methods pick
// their K by minimizing MSE at the middle SNR of the sweep, then the sweep
// is run with that fixed K — matching the paper's single-curve presentation.
func (e *Env) Fig3c() (*Fig3cResult, error) {
	m := e.Cfg.NoiseM
	midSNR := e.Cfg.SNRsDB[len(e.Cfg.SNRsDB)/2]
	res := &Fig3cResult{M: m}

	type method struct {
		mdl   *core.Model
		alloc place.Allocator
		k     *int
		mse   *[]float64
		maxSq *[]float64
	}
	methods := []method{
		{e.PCA, &place.Greedy{}, &res.KEigen, &res.MSEEigen, &res.MaxSqEigen},
		{e.KLSE, &place.EnergyCenter{}, &res.KKLSE, &res.MSEKLSE, &res.MaxSqKLSE},
	}
	for mi, md := range methods {
		kAlloc := m
		if kAlloc > e.Cfg.KMax {
			kAlloc = e.Cfg.KMax
		}
		sensors, err := md.mdl.PlaceSensors(m, core.PlaceOptions{K: kAlloc, Allocator: md.alloc})
		if err != nil {
			return nil, fmt.Errorf("fig3c placement (%s): %w", md.alloc.Name(), err)
		}
		if len(sensors) > m {
			sensors = sensors[:m]
		}
		bestK, _, err := md.mdl.BestK(e.DS, sensors, recon.EvalConfig{
			SNRdB: midSNR, NoisePresent: true, Seed: mixSeed(e.Cfg.Seed, int64(mi)),
		})
		if err != nil {
			return nil, fmt.Errorf("fig3c K selection (%s): %w", md.alloc.Name(), err)
		}
		*md.k = bestK
		mon, err := md.mdl.NewMonitor(bestK, sensors)
		if err != nil {
			return nil, err
		}
		for si, snr := range e.Cfg.SNRsDB {
			r, err := recon.Evaluate(mon.Reconstructor(), e.DS, recon.EvalConfig{
				SNRdB: snr, NoisePresent: !math.IsInf(snr, 1),
				Seed: mixSeed(e.Cfg.Seed, int64(100+10*mi+si)),
			})
			if err != nil {
				return nil, fmt.Errorf("fig3c SNR=%v (%s): %w", snr, md.alloc.Name(), err)
			}
			*md.mse = append(*md.mse, r.MSE)
			*md.maxSq = append(*md.maxSq, r.MaxSq)
		}
	}
	res.SNRdB = append([]float64(nil), e.Cfg.SNRsDB...)
	return res, nil
}

// String prints the curves of Fig. 3(c).
func (r *Fig3cResult) String() string {
	header := fmt.Sprintf("Fig. 3(c): reconstruction error vs SNR (M=%d, K: eigen=%d, k-LSE=%d)",
		r.M, r.KEigen, r.KKLSE)
	return formatSeries(header, "SNR[dB]", []Series{
		{Name: "MSE EigenMaps", X: r.SNRdB, Y: r.MSEEigen},
		{Name: "MSE k-LSE", X: r.SNRdB, Y: r.MSEKLSE},
		{Name: "MAX EigenMaps", X: r.SNRdB, Y: r.MaxSqEigen},
		{Name: "MAX k-LSE", X: r.SNRdB, Y: r.MaxSqKLSE},
	})
}
