package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// sharedEnv builds the quick-scale environment once for all experiment tests.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(QuickConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestNewEnvShapes(t *testing.T) {
	e := quickEnv(t)
	if e.DS.T() != e.Cfg.Snapshots || e.DS.N() != e.Cfg.Grid.N() {
		t.Fatalf("dataset shape (%d,%d)", e.DS.T(), e.DS.N())
	}
	if e.PCA.Basis.KMax() != e.Cfg.KMax || e.KLSE.Basis.KMax() != e.Cfg.KMax {
		t.Fatal("basis KMax wrong")
	}
	if e.Basis(core.BasisEigenMaps) != e.PCA.Basis || e.Basis(core.BasisDCT) != e.KLSE.Basis {
		t.Fatal("Basis accessor wrong")
	}
}

func TestFig2SpectrumDecaysFast(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig2(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Eigenvalues) != e.Cfg.KMax {
		t.Fatalf("spectrum length %d", len(r.Eigenvalues))
	}
	// Paper claim: informative content decays rapidly. λ₁/λ₁₀ spans orders
	// of magnitude on thermal data.
	if r.DecayRatio(10) < 50 {
		t.Fatalf("λ1/λ10 = %v — spectrum not decaying like thermal data", r.DecayRatio(10))
	}
	if len(r.Renders) != 4 {
		t.Fatalf("rendered %d maps", len(r.Renders))
	}
	for _, s := range r.Renders {
		if !strings.Contains(s, "\n") {
			t.Fatal("render looks empty")
		}
	}
	if r.DecayRatio(0) != 0 || r.DecayRatio(999) != 0 {
		t.Fatal("DecayRatio out-of-range handling wrong")
	}
}

func TestFig3aEigenMapsDominateDCT(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.K) == 0 {
		t.Fatal("no K points")
	}
	for i := range r.K {
		// Proposition 1 optimality on the training set: EigenMaps MSE must
		// not exceed the DCT subspace's at any K.
		if r.MSEEigen[i] > r.MSEKLSE[i]*1.0001 {
			t.Fatalf("K=%d: EigenMaps MSE %v > k-LSE %v", r.K[i], r.MSEEigen[i], r.MSEKLSE[i])
		}
	}
	// And the error must decrease with K for both.
	for i := 1; i < len(r.K); i++ {
		if r.MSEEigen[i] > r.MSEEigen[i-1]*1.0001 {
			t.Fatalf("EigenMaps approximation error rose at K=%d", r.K[i])
		}
		if r.MSEKLSE[i] > r.MSEKLSE[i-1]*1.0001 {
			t.Fatalf("k-LSE approximation error rose at K=%d", r.K[i])
		}
	}
	// The paper's core observation: the PCA advantage grows with K
	// (exponentially lower error). Check the largest-K gap is substantial.
	last := len(r.K) - 1
	if r.MSEKLSE[last] < 5*r.MSEEigen[last] {
		t.Fatalf("at K=%d the EigenMaps advantage is only %vx — expected ≥5x",
			r.K[last], r.MSEKLSE[last]/r.MSEEigen[last])
	}
}

func TestFig3bEigenMapsWinAtModerateM(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the smallest sensor budget, EigenMaps reconstruction must beat
	// k-LSE, and by a growing margin (Fig. 3(b)'s separation).
	for i := range r.M {
		if r.M[i] >= 8 && r.MSEEigen[i] > r.MSEKLSE[i] {
			t.Fatalf("M=%d: EigenMaps MSE %v > k-LSE %v", r.M[i], r.MSEEigen[i], r.MSEKLSE[i])
		}
	}
	first, last := 0, len(r.M)-1
	if r.MSEEigen[last] > r.MSEEigen[first]*0.5 {
		t.Fatalf("EigenMaps reconstruction error barely improves with M: %v → %v",
			r.MSEEigen[first], r.MSEEigen[last])
	}
	// Conditioning of the greedy layouts stays modest.
	for i, c := range r.CondEigen {
		if c > condCap {
			t.Fatalf("M=%d: κ=%v exceeds cap", r.M[i], c)
		}
	}
}

func TestFig3cNoiseTrends(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig3c()
	if err != nil {
		t.Fatal(err)
	}
	// Error must fall as SNR rises, for both methods.
	for i := 1; i < len(r.SNRdB); i++ {
		if r.MSEEigen[i] > r.MSEEigen[i-1]*1.05 {
			t.Fatalf("EigenMaps MSE rose with SNR at %v dB", r.SNRdB[i])
		}
		if r.MSEKLSE[i] > r.MSEKLSE[i-1]*1.05 {
			t.Fatalf("k-LSE MSE rose with SNR at %v dB", r.SNRdB[i])
		}
	}
	// EigenMaps must stay at or below k-LSE across the sweep (Fig. 3(c)).
	for i := range r.SNRdB {
		if r.MSEEigen[i] > r.MSEKLSE[i]*1.1 {
			t.Fatalf("SNR %v dB: EigenMaps %v above k-LSE %v", r.SNRdB[i], r.MSEEigen[i], r.MSEKLSE[i])
		}
	}
	if r.KEigen < 1 || r.KEigen > r.M {
		t.Fatalf("selected K=%d outside [1,%d]", r.KEigen, r.M)
	}
}

func TestFig4VisualComparison(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.MapIndices[0] == r.MapIndices[1] {
		t.Fatal("showcase maps not distinct")
	}
	for i := range r.MapIndices {
		if len(r.Originals[i]) != e.DS.N() || len(r.Eigen[i]) != e.DS.N() || len(r.KLSE[i]) != e.DS.N() {
			t.Fatal("map lengths wrong")
		}
		// EigenMaps reconstruction should be visibly better (or at least not
		// much worse) than k-LSE on the showcased maps.
		if r.MaxAbsEigen[i] > r.MaxAbsKLSE[i]*1.5 {
			t.Fatalf("map %d: EigenMaps worst error %v vs k-LSE %v", i, r.MaxAbsEigen[i], r.MaxAbsKLSE[i])
		}
	}
	if !strings.Contains(r.String(), "original") {
		t.Fatal("ASCII panels missing")
	}
}

func TestFig5GreedyBeatsEnergyOverall(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 5 claim: for each reconstruction method, greedy
	// allocation improves MSE over energy-center. Assert it in aggregate
	// (geometric mean over the M sweep) — individual points can cross.
	if g, en := geoMean(r.EigenGreedy), geoMean(r.EigenEnergy); g > en {
		t.Fatalf("EigenMaps: greedy geomean %v worse than energy %v", g, en)
	}
	if g, en := geoMean(r.KLSEGreedy), geoMean(r.KLSEEnergy); g > en {
		t.Fatalf("k-LSE: greedy geomean %v worse than energy %v", g, en)
	}
}

func geoMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range v {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(v)))
}

func TestFig6ConstraintCostsLittle(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: constrained reconstruction "degrades only slightly". Assert the
	// constrained MSE stays within an order of magnitude of free placement
	// across the sweep.
	for i := range r.M {
		if r.MSEConstrained[i] > r.MSEFree[i]*10+1e-9 {
			t.Fatalf("M=%d: constrained MSE %v ≫ free %v", r.M[i], r.MSEConstrained[i], r.MSEFree[i])
		}
	}
	if !strings.Contains(r.LayoutConstrained, "S") {
		t.Fatal("constrained layout has no sensors")
	}
	// In the constrained layout no 'S' may replace a cache cell: overlaying
	// the free-block render, every sensor row/col must map to an allowed cell.
	grid := e.DS.Grid
	maskLines := strings.Split(strings.TrimRight(r.MaskRender, "\n"), "\n")
	layLines := strings.Split(strings.TrimRight(r.LayoutConstrained, "\n"), "\n")
	for row := 0; row < grid.H; row++ {
		for col := 0; col < grid.W; col++ {
			if layLines[row][col] == 'S' && maskLines[row][col] == '#' {
				t.Fatalf("constrained sensor at forbidden cell (%d,%d)", row, col)
			}
		}
	}
	if !strings.Contains(r.MaskRender, "#") {
		t.Fatal("mask render missing forbidden zone")
	}
}

func TestHeadlineRuns(t *testing.T) {
	e := quickEnv(t)
	h, err := e.Headline()
	if err != nil {
		t.Fatal(err)
	}
	if h.Clean5.MSE > h.Clean4.MSE*1.2 {
		t.Fatalf("5 sensors (%v) much worse than 4 (%v)", h.Clean5.MSE, h.Clean4.MSE)
	}
	if h.Noisy16.MSE <= 0 {
		t.Fatal("noisy evaluation produced zero error — noise path broken")
	}
	if h.Noisy16K < 1 || h.Noisy16K > 16 {
		t.Fatalf("selected K=%d", h.Noisy16K)
	}
	if !strings.Contains(h.String(), "15 dB") {
		t.Fatal("headline report malformed")
	}
}
