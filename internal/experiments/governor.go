package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/floorplan"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// GovernorConfig parameterizes the closed-loop control-quality harness: for
// every workload scenario it runs the monitor-in-the-loop thermal governor
// across an M×K sweep and scores each run against two reference arms — the
// oracle governor (same policy acting on the ground-truth map: the best any
// estimator can enable) and an ungoverned run (how hot the die gets with no
// control at all). A drift-faulted arm repeats the estimated sweep with
// injected sensor faults, measuring how much control quality survives a
// degraded sensor fleet. The paper evaluates reconstruction error offline;
// this harness closes the loop and asks the question that actually matters
// for DTM: does a governor driven by M sensors keep the die as cool as one
// that could see everything?
type GovernorConfig struct {
	// Floorplan is the governed die. Default: the 256-core generated
	// many-core plan (floorplan.Manycore(256, 64, 16×16)).
	Floorplan *floorplan.Floorplan
	// Power supplies hardware budgets. Zero value: power.ConfigFor over the
	// floorplan with LoadCoupling.
	Power power.Config

	Grid      floorplan.Grid // default 32×32
	Snapshots int            // training ensemble size per scenario, default 96
	KMax      int            // default 16
	Ks        []int          // subspace sweep, default {4, 8}
	Ms        []int          // sensor-budget sweep, default {8, 12, 24}
	Steps     int            // closed-loop steps per run, default 120
	Seed      int64

	// LoadCoupling is the default core coupling (0.75, the suite's regime).
	LoadCoupling float64

	// Policy names the control policy every arm runs (default "hysteresis");
	// CeilingDropC positions each scenario's thermal ceiling CeilingDropC
	// degrees below that scenario's ungoverned peak (default 2 °C), so the
	// governor has real work to do in every scenario regardless of how hot
	// the workload runs.
	Policy       string
	CeilingDropC float64

	// Specs are the evaluated scenarios. Default: the web, compute, bursty
	// and wave catalog entries — two stationary and two time-structured
	// families.
	Specs []*workload.Spec

	// Faults configures the drift-faulted arm's injector
	// (drift.ParseFaults syntax). Default "stuck:0:40,offset:3:+5".
	Faults string

	// SimSolver / SimWorkers forward to dataset.GenConfig.
	SimSolver  thermal.Solver
	SimWorkers int
}

func (c *GovernorConfig) defaults() error {
	if c.Floorplan == nil {
		fp, err := floorplan.Manycore(256, 64, floorplan.Grid{W: 16, H: 16})
		if err != nil {
			return err
		}
		c.Floorplan = fp
	}
	if c.LoadCoupling == 0 {
		c.LoadCoupling = 0.75
	}
	if c.Power == (power.Config{}) {
		c.Power = power.ConfigFor(c.Floorplan, c.LoadCoupling)
	} else if c.Power.LoadCoupling == 0 {
		c.Power.LoadCoupling = c.LoadCoupling
	}
	if c.Grid.W == 0 || c.Grid.H == 0 {
		c.Grid = floorplan.Grid{W: 32, H: 32}
	}
	if c.Snapshots == 0 {
		c.Snapshots = 96
	}
	if c.KMax == 0 {
		c.KMax = 16
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{4, 8}
	}
	if len(c.Ms) == 0 {
		c.Ms = []int{8, 12, 24}
	}
	if c.Steps == 0 {
		c.Steps = 120
	}
	if c.Policy == "" {
		c.Policy = "hysteresis"
	}
	if c.CeilingDropC == 0 {
		c.CeilingDropC = 2
	}
	if len(c.Specs) == 0 {
		for _, name := range []string{"web", "compute", "bursty", "wave"} {
			s, err := workload.Parse(name)
			if err != nil {
				return err
			}
			c.Specs = append(c.Specs, s)
		}
	}
	if c.Faults == "" {
		c.Faults = "stuck:0:40,offset:3:+5"
	}
	return nil
}

// GovernorArm is one closed-loop run's scorecard within the sweep.
type GovernorArm struct {
	PeakC           float64
	CorePeakC       float64
	OvershootC      float64
	ViolationDegSec float64
	ThrottleDuty    float64
	PerfRetained    float64
	EstPeakErrC     float64
}

func armOf(r *governor.Result) GovernorArm {
	return GovernorArm{
		PeakC:           r.PeakC,
		CorePeakC:       r.CorePeakC,
		OvershootC:      r.OvershootC,
		ViolationDegSec: r.ViolationDegSec,
		ThrottleDuty:    r.ThrottleDuty,
		PerfRetained:    r.PerfRetained,
		EstPeakErrC:     r.EstPeakErrC,
	}
}

// GovernorResult is the control-quality sweep: per scenario, the ungoverned
// peak, the oracle arm, and the estimated + drift-faulted arms over the
// M×K matrix.
type GovernorResult struct {
	Scenarios []string
	Ms, Ks    []int
	Policy    string
	Floorplan string

	// UngovernedPeakC[s] is the run's global peak with no governor;
	// UngovernedCorePeakC[s] is the same over core cells only — the ceiling
	// CeilingC[s] every governed arm is held to sits CeilingDropC below it,
	// because DVFS capping can only influence core heat (a cache or NoC
	// block can carry the global peak with no actuator over it).
	UngovernedPeakC     []float64
	UngovernedCorePeakC []float64
	CeilingC            []float64

	// Oracle[s] is the ground-truth-governed arm (estimator-independent, so
	// one per scenario). Est[s][mi][ki] and Faulted[s][mi][ki] are the
	// estimated-map arms, clean and drift-faulted.
	Oracle  []GovernorArm
	Est     [][][]GovernorArm
	Faulted [][][]GovernorArm
}

// Governor runs the closed-loop sweep.
func Governor(cfg GovernorConfig) (*GovernorResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	faults, err := drift.ParseFaults(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("governor sweep: faults: %w", err)
	}
	ns := len(cfg.Specs)
	res := &GovernorResult{
		Scenarios:           make([]string, ns),
		Ms:                  cfg.Ms,
		Ks:                  cfg.Ks,
		Policy:              cfg.Policy,
		Floorplan:           cfg.Floorplan.Name,
		UngovernedPeakC:     make([]float64, ns),
		UngovernedCorePeakC: make([]float64, ns),
		CeilingC:            make([]float64, ns),
		Oracle:              make([]GovernorArm, ns),
		Est:                 make([][][]GovernorArm, ns),
		Faulted:             make([][][]GovernorArm, ns),
	}

	for si, spec := range cfg.Specs {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("spec[%d]", si)
		}
		res.Scenarios[si] = name

		base := governor.LoopConfig{
			Plan:  cfg.Floorplan,
			Grid:  cfg.Grid,
			Spec:  spec,
			Power: cfg.Power,
			Steps: cfg.Steps,
			Seed:  mixSeed(cfg.Seed, int64(si)),
		}

		// Ungoverned reference: an infinite-trip threshold policy never
		// throttles, so the loop runs open. The ceiling is positioned
		// CeilingDropC below this run's peak — binding in every scenario.
		base.Policy = &governor.Threshold{TripC: math.Inf(1)}
		base.CeilingC = math.Inf(1)
		open, err := governor.Run(base)
		if err != nil {
			return nil, fmt.Errorf("governor sweep: %s ungoverned: %w", name, err)
		}
		res.UngovernedPeakC[si] = open.PeakC
		res.UngovernedCorePeakC[si] = open.CorePeakC
		ceiling := open.CorePeakC - cfg.CeilingDropC
		res.CeilingC[si] = ceiling

		newPolicy := func() (governor.Policy, error) {
			return governor.NewPolicy(cfg.Policy, governor.Params{CeilingC: ceiling})
		}

		// Oracle arm: the governor reads ground truth.
		if base.Policy, err = newPolicy(); err != nil {
			return nil, fmt.Errorf("governor sweep: %s: %w", name, err)
		}
		base.CeilingC = ceiling
		oracle, err := governor.Run(base)
		if err != nil {
			return nil, fmt.Errorf("governor sweep: %s oracle: %w", name, err)
		}
		res.Oracle[si] = armOf(oracle)

		// One training ensemble per scenario, seed-disjoint from the loop.
		train, err := dataset.Generate(cfg.Floorplan, dataset.GenConfig{
			Grid:      cfg.Grid,
			Snapshots: cfg.Snapshots,
			Specs:     []*workload.Spec{spec},
			Seed:      mixSeed(cfg.Seed, 100_000+int64(si)),
			Power:     cfg.Power,
			Solver:    cfg.SimSolver,
			Workers:   cfg.SimWorkers,
		})
		if err != nil {
			return nil, fmt.Errorf("governor sweep: %s ensemble: %w", name, err)
		}
		model, err := core.Train(train, core.TrainOptions{KMax: cfg.KMax, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("governor sweep: %s train: %w", name, err)
		}

		res.Est[si] = make([][]GovernorArm, len(cfg.Ms))
		res.Faulted[si] = make([][]GovernorArm, len(cfg.Ms))
		for mi, m := range cfg.Ms {
			res.Est[si][mi] = make([]GovernorArm, len(cfg.Ks))
			res.Faulted[si][mi] = make([]GovernorArm, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				sensors, err := model.PlaceSensors(m, core.PlaceOptions{K: k})
				if err != nil {
					return nil, fmt.Errorf("governor sweep: %s place M=%d K=%d: %w", name, m, k, err)
				}
				if len(sensors) > m {
					sensors = sensors[:m]
				}
				mon, err := model.NewMonitor(k, sensors)
				if err != nil {
					return nil, fmt.Errorf("governor sweep: %s monitor M=%d K=%d: %w", name, m, k, err)
				}
				arm := base
				arm.Estimator = mon
				arm.Sensors = sensors
				if arm.Policy, err = newPolicy(); err != nil {
					return nil, err
				}
				est, err := governor.Run(arm)
				if err != nil {
					return nil, fmt.Errorf("governor sweep: %s est M=%d K=%d: %w", name, m, k, err)
				}
				res.Est[si][mi][ki] = armOf(est)

				arm.Injector = drift.NewInjector(faults, mixSeed(cfg.Seed, 200_000+int64(si)))
				if arm.Policy, err = newPolicy(); err != nil {
					return nil, err
				}
				faulted, err := governor.Run(arm)
				if err != nil {
					return nil, fmt.Errorf("governor sweep: %s faulted M=%d K=%d: %w", name, m, k, err)
				}
				res.Faulted[si][mi][ki] = armOf(faulted)
			}
		}
	}
	return res, nil
}

// PeakGapC returns the worst (max over scenarios) estimated-arm peak
// temperature excess over the oracle arm at sweep point (mi, ki) — how many
// degrees of control quality the sensor budget costs.
func (r *GovernorResult) PeakGapC(mi, ki int) float64 {
	worst := math.Inf(-1)
	for si := range r.Scenarios {
		if gap := r.Est[si][mi][ki].CorePeakC - r.Oracle[si].CorePeakC; gap > worst {
			worst = gap
		}
	}
	return worst
}

// MinPerfRetained returns the smallest estimated-arm performance retention
// across scenarios at sweep point (mi, ki).
func (r *GovernorResult) MinPerfRetained(mi, ki int) float64 {
	min := math.Inf(1)
	for si := range r.Scenarios {
		if p := r.Est[si][mi][ki].PerfRetained; p < min {
			min = p
		}
	}
	return min
}

// String renders the sweep: per scenario the reference arms, then the M×K
// matrices of peak gap to oracle and performance retained.
func (r *GovernorResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Closed-loop control quality: %s policy on %s ==\n", r.Policy, r.Floorplan)
	for si, name := range r.Scenarios {
		o := &r.Oracle[si]
		fmt.Fprintf(&b, "\n-- %s: ungoverned peak %.2f °C (core %.2f), ceiling %.2f °C --\n",
			name, r.UngovernedPeakC[si], r.UngovernedCorePeakC[si], r.CeilingC[si])
		fmt.Fprintf(&b, "oracle: core peak %.2f °C, duty %.3f, perf %.3f, violation %.4g °C·s\n",
			o.CorePeakC, o.ThrottleDuty, o.PerfRetained, o.ViolationDegSec)
		fmt.Fprintf(&b, "%-8s", "est")
		for _, k := range r.Ks {
			fmt.Fprintf(&b, " %18s", fmt.Sprintf("K=%d", k))
		}
		fmt.Fprintf(&b, "\n")
		for mi, m := range r.Ms {
			fmt.Fprintf(&b, "M=%-6d", m)
			for ki := range r.Ks {
				e := &r.Est[si][mi][ki]
				fmt.Fprintf(&b, " %18s", fmt.Sprintf("Δ%.2f°C p%.3f", e.CorePeakC-o.CorePeakC, e.PerfRetained))
			}
			fmt.Fprintf(&b, "\n")
		}
		fmt.Fprintf(&b, "%-8s\n", "faulted")
		for mi, m := range r.Ms {
			fmt.Fprintf(&b, "M=%-6d", m)
			for ki := range r.Ks {
				f := &r.Faulted[si][mi][ki]
				fmt.Fprintf(&b, " %18s", fmt.Sprintf("Δ%.2f°C p%.3f", f.CorePeakC-o.CorePeakC, f.PerfRetained))
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	mi, ki := len(r.Ms)-1, len(r.Ks)-1
	fmt.Fprintf(&b, "\nat M=%d K=%d: worst est-vs-oracle peak gap %.2f °C, min perf retained %.3f\n",
		r.Ms[mi], r.Ks[ki], r.PeakGapC(mi, ki), r.MinPerfRetained(mi, ki))
	return b.String()
}
