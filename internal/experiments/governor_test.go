package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestGovernorDefaultSweep pins the acceptance criteria of the closed-loop
// control harness: the default configuration covers the M×K matrix across
// four catalog scenarios on the generated 256-core die in well under the
// 60-second budget, every scenario's governor actually engages (the ceiling
// is keyed to the ungoverned CORE peak, so it binds even when a cache or NoC
// block carries the global peak), and the estimated-map arm at the
// paper-scale sensor budget holds peak core temperature within 2 °C of the
// ground-truth oracle arm.
func TestGovernorDefaultSweep(t *testing.T) {
	start := time.Now()
	res, err := Governor(GovernorConfig{Seed: 2012})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 60*time.Second {
		t.Fatalf("default sweep took %v, budget is 60s", el)
	}
	if res.Floorplan != "manycore-256c" {
		t.Fatalf("floorplan %q, want the generated 256-core die", res.Floorplan)
	}
	if len(res.Scenarios) < 4 {
		t.Fatalf("sweep covers %d scenarios, want >= 4 (%v)", len(res.Scenarios), res.Scenarios)
	}
	for si, name := range res.Scenarios {
		if res.CeilingC[si] >= res.UngovernedCorePeakC[si] {
			t.Fatalf("%s: ceiling %.2f not below ungoverned core peak %.2f",
				name, res.CeilingC[si], res.UngovernedCorePeakC[si])
		}
		o := res.Oracle[si]
		if !(o.ThrottleDuty > 0) {
			t.Fatalf("%s: oracle governor never engaged (duty %v)", name, o.ThrottleDuty)
		}
		if o.EstPeakErrC != 0 {
			t.Fatalf("%s: oracle arm reports estimation error %v", name, o.EstPeakErrC)
		}
		if o.CorePeakC > res.UngovernedCorePeakC[si]+1e-9 {
			t.Fatalf("%s: oracle core peak %.3f above ungoverned %.3f — capping made it hotter",
				name, o.CorePeakC, res.UngovernedCorePeakC[si])
		}
		for mi := range res.Ms {
			for ki := range res.Ks {
				for arm, a := range []GovernorArm{res.Est[si][mi][ki], res.Faulted[si][mi][ki]} {
					if math.IsNaN(a.CorePeakC) || math.IsInf(a.CorePeakC, 0) {
						t.Fatalf("%s arm %d M=%d K=%d: core peak %v", name, arm, res.Ms[mi], res.Ks[ki], a.CorePeakC)
					}
					if !(a.PerfRetained > 0 && a.PerfRetained <= 1+1e-9) {
						t.Fatalf("%s arm %d M=%d K=%d: perf retained %v", name, arm, res.Ms[mi], res.Ks[ki], a.PerfRetained)
					}
				}
				if e := res.Est[si][mi][ki]; !(e.EstPeakErrC > 0) {
					t.Fatalf("%s M=%d K=%d: estimated arm reports zero estimation error", name, res.Ms[mi], res.Ks[ki])
				}
			}
		}
	}

	// Paper-scale budget: the largest configured M and K (24 sensors, K=8 —
	// the regime the paper's manycore evaluation runs at).
	mi, ki := len(res.Ms)-1, len(res.Ks)-1
	if gap := res.PeakGapC(mi, ki); !(gap <= 2) {
		t.Fatalf("estimated-map governor peak gap %.3f °C vs oracle at M=%d K=%d, budget is 2 °C",
			gap, res.Ms[mi], res.Ks[ki])
	}

	out := res.String()
	for _, want := range []string{"manycore-256c", "ungoverned peak", "oracle:", "faulted", "worst est-vs-oracle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestGovernorPIRetainsPerformance pins the performance half of the
// acceptance bar: with the PI cap policy under a gentler 1 °C ceiling drop,
// the estimated-map governor retains >= 90% of demanded performance in every
// scenario while still tracking the oracle within the 2 °C budget — capping
// from M=24 sensors costs less than a tenth of throughput.
func TestGovernorPIRetainsPerformance(t *testing.T) {
	res, err := Governor(GovernorConfig{
		Seed:         0,
		Policy:       "pi",
		CeilingDropC: 1,
		Ms:           []int{24},
		Ks:           []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perf := res.MinPerfRetained(0, 0); !(perf >= 0.9) {
		t.Fatalf("PI policy retains %.3f of demanded performance, want >= 0.9", perf)
	}
	if gap := res.PeakGapC(0, 0); !(gap <= 2) {
		t.Fatalf("PI estimated-arm peak gap %.3f °C, budget is 2 °C", gap)
	}
	// Engagement sanity: a 1 °C drop must still bind somewhere.
	var engaged bool
	for si := range res.Scenarios {
		if res.Est[si][0][0].ThrottleDuty > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("PI governor never throttled in any scenario")
	}
}

// TestGovernorRejectsBadConfig covers the sweep's validation surface.
func TestGovernorRejectsBadConfig(t *testing.T) {
	if _, err := Governor(GovernorConfig{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Governor(GovernorConfig{Faults: "bogus:spec"}); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}
