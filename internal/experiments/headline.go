package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/recon"
)

// HeadlineResult checks the paper's two headline claims (Sec. 1, Sec. 5.1):
//
//  1. an entire thermal map is estimated within 1 °C (MSE and MAX below
//     1 °C²/1 °C) using only 4–5 sensors, and
//  2. the same precision holds at 15 dB SNR with 16 sensors.
type HeadlineResult struct {
	// Clean4 and Clean5 are noiseless evaluations at M=4 and M=5 (K=M).
	Clean4, Clean5 recon.Result
	// Noisy16 is the 15 dB evaluation at M=16 with the MSE-optimal K.
	Noisy16 recon.Result
	// Noisy16K is the K chosen for the noisy run.
	Noisy16K int
}

// Headline runs both claims on the environment.
func (e *Env) Headline() (*HeadlineResult, error) {
	res := &HeadlineResult{}
	for _, m := range []int{4, 5} {
		r, err := e.evalCombo(e.PCA, &place.Greedy{}, m, m, nil)
		if err != nil {
			return nil, fmt.Errorf("headline M=%d: %w", m, err)
		}
		if m == 4 {
			res.Clean4 = r
		} else {
			res.Clean5 = r
		}
	}
	sensors, err := e.PCA.PlaceSensors(16, core.PlaceOptions{K: min16(e.Cfg.KMax), Allocator: &place.Greedy{}})
	if err != nil {
		return nil, fmt.Errorf("headline M=16 placement: %w", err)
	}
	if len(sensors) > 16 {
		sensors = sensors[:16]
	}
	k, r, err := e.PCA.BestK(e.DS, sensors, recon.EvalConfig{
		SNRdB: 15, NoisePresent: true, Seed: mixSeed(e.Cfg.Seed, 15),
	})
	if err != nil {
		return nil, fmt.Errorf("headline M=16 noisy: %w", err)
	}
	res.Noisy16 = r
	res.Noisy16K = k
	return res, nil
}

func min16(kmax int) int {
	if kmax < 16 {
		return kmax
	}
	return 16
}

// WithinOneDegree reports whether a result meets the paper's "<1 °C" bar on
// both MSE (interpreted in °C², i.e. MSE < 1) and worst-case absolute error.
func WithinOneDegree(r recon.Result) bool {
	return r.MSE < 1 && r.MaxAbs < 1
}

// String prints the three headline rows.
func (h *HeadlineResult) String() string {
	var b strings.Builder
	b.WriteString("== Headline claims (Sec. 1 / Sec. 5.1) ==\n")
	row := func(name string, r recon.Result, k int, note string) {
		fmt.Fprintf(&b, "%-28s M=%-3d K=%-3d MSE=%-12.4g MAX|e|=%-8.3f kappa=%-8.3g %s\n",
			name, r.M, k, r.MSE, r.MaxAbs, r.Cond, note)
	}
	ok := func(r recon.Result) string {
		if WithinOneDegree(r) {
			return "[<1C: PASS]"
		}
		return "[<1C: miss]"
	}
	row("noiseless, 4 sensors", h.Clean4, h.Clean4.K, ok(h.Clean4))
	row("noiseless, 5 sensors", h.Clean5, h.Clean5.K, ok(h.Clean5))
	row("15 dB SNR, 16 sensors", h.Noisy16, h.Noisy16K, ok(h.Noisy16))
	return b.String()
}
