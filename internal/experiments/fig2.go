package experiments

import (
	"fmt"
	"strings"

	"repro/internal/render"
)

// Fig2Result reproduces Fig. 2: the leading EigenMaps rendered as images and
// the eigenvalue decay of the thermal covariance.
type Fig2Result struct {
	// Eigenvalues of the sample covariance, descending (right plot).
	Eigenvalues []float64
	// Renders holds ASCII renderings of the first few EigenMaps (left plot).
	Renders []string
	// RendersShown is how many EigenMaps were rendered.
	RendersShown int
}

// Fig2 extracts the spectrum and renders the first `show` EigenMaps
// (the paper shows a selection of the first 32).
func (e *Env) Fig2(show int) (*Fig2Result, error) {
	b := e.PCA.Basis
	if show > b.KMax() {
		show = b.KMax()
	}
	res := &Fig2Result{
		Eigenvalues:  append([]float64(nil), b.Importance...),
		RendersShown: show,
	}
	for k := 0; k < show; k++ {
		res.Renders = append(res.Renders, render.ASCII(b.Grid, b.Psi.Col(k), render.Options{}))
	}
	return res, nil
}

// String prints the eigenvalue decay (and notes the rendered maps).
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 2 (right): eigenvalue decay of the thermal covariance ==\n")
	b.WriteString("k          lambda_k\n")
	for i, v := range r.Eigenvalues {
		fmt.Fprintf(&b, "%-10d %.6g\n", i+1, v)
	}
	fmt.Fprintf(&b, "(Fig. 2 left: %d EigenMaps rendered; see Renders)\n", r.RendersShown)
	return b.String()
}

// DecayRatio returns λ₁/λ_k — a scalar summary of how fast the spectrum
// decays (the paper's qualitative claim: "the informative content decays
// rapidly").
func (r *Fig2Result) DecayRatio(k int) float64 {
	if k < 1 || k > len(r.Eigenvalues) || r.Eigenvalues[k-1] <= 0 {
		return 0
	}
	return r.Eigenvalues[0] / r.Eigenvalues[k-1]
}
