package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/workload"
)

// TestRobustDefaultMatrix pins the acceptance criterion of the robustness
// harness: the default configuration produces a train-family × eval-family
// reconstruction-error matrix over six distinct scenario specs on a
// generated 256-core floorplan.
func TestRobustDefaultMatrix(t *testing.T) {
	cfg, err := DefaultRobustConfig(2012)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Robust(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Floorplan != "manycore-256c" {
		t.Fatalf("floorplan %q, want the generated 256-core die", res.Floorplan)
	}
	if len(res.Names) != 6 {
		t.Fatalf("matrix covers %d families, want 6 (%v)", len(res.Names), res.Names)
	}
	seen := map[string]bool{}
	for _, n := range res.Names {
		if seen[n] {
			t.Fatalf("duplicate family %q in %v", n, res.Names)
		}
		seen[n] = true
	}
	for i := range res.Names {
		if len(res.MSE[i]) != 6 {
			t.Fatalf("row %d has %d entries", i, len(res.MSE[i]))
		}
		for j, v := range res.MSE[i] {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("MSE[%d][%d] = %v; want positive finite", i, j, v)
			}
		}
		if !(res.Cond[i] >= 1) {
			t.Fatalf("cond[%d] = %v", i, res.Cond[i])
		}
	}
	if gap := res.GeneralizationGap(); !(gap > 0) || math.IsInf(gap, 0) {
		t.Fatalf("generalization gap %v", gap)
	}
	if !seen[res.MostRobustFamily()] {
		t.Fatalf("most robust family %q not among %v", res.MostRobustFamily(), res.Names)
	}
	out := res.String()
	for _, want := range []string{"manycore-256c", "train\\eval", "bursty", "most robust"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRobustRejectsDuplicateFamilies(t *testing.T) {
	a, _ := workload.Parse("web")
	b, _ := workload.Parse("web")
	fp, _ := floorplan.Manycore(4, 2, floorplan.Grid{W: 2, H: 2})
	_, err := Robust(RobustConfig{
		Floorplan: fp, Grid: floorplan.Grid{W: 8, H: 8},
		Snapshots: 8, KMax: 4, K: 2, M: 3,
		Specs: []*workload.Spec{a, b},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate families err = %v", err)
	}
}

func TestRobustSmallCustomConfig(t *testing.T) {
	// A non-default configuration (tiny die, two families) exercises the
	// explicit-field path.
	fp, err := floorplan.Manycore(16, 4, floorplan.Grid{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	web, _ := workload.Parse("web")
	idle, _ := workload.Parse("idle")
	res, err := Robust(RobustConfig{
		Floorplan: fp, Grid: floorplan.Grid{W: 12, H: 12},
		Snapshots: 30, KMax: 6, K: 4, M: 6, Seed: 7,
		Specs: []*workload.Spec{web, idle},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || res.Names[0] != "web" || res.Names[1] != "idle" {
		t.Fatalf("names %v", res.Names)
	}
}
