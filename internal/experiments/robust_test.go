package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/workload"
)

// TestRobustDefaultMatrix pins the acceptance criterion of the robustness
// harness: the default configuration produces a train-family × eval-family
// reconstruction-error matrix over six distinct scenario specs on a
// generated 256-core floorplan.
func TestRobustDefaultMatrix(t *testing.T) {
	cfg, err := DefaultRobustConfig(2012)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Robust(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Floorplan != "manycore-256c" {
		t.Fatalf("floorplan %q, want the generated 256-core die", res.Floorplan)
	}
	if len(res.Names) != 6 {
		t.Fatalf("matrix covers %d families, want 6 (%v)", len(res.Names), res.Names)
	}
	seen := map[string]bool{}
	for _, n := range res.Names {
		if seen[n] {
			t.Fatalf("duplicate family %q in %v", n, res.Names)
		}
		seen[n] = true
	}
	for i := range res.Names {
		if len(res.MSE[i]) != 6 {
			t.Fatalf("row %d has %d entries", i, len(res.MSE[i]))
		}
		for j, v := range res.MSE[i] {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("MSE[%d][%d] = %v; want positive finite", i, j, v)
			}
		}
		if !(res.Cond[i] >= 1) {
			t.Fatalf("cond[%d] = %v", i, res.Cond[i])
		}
	}
	if gap := res.GeneralizationGap(); !(gap > 0) || math.IsInf(gap, 0) {
		t.Fatalf("generalization gap %v", gap)
	}
	if !seen[res.MostRobustFamily()] {
		t.Fatalf("most robust family %q not among %v", res.MostRobustFamily(), res.Names)
	}
	out := res.String()
	for _, want := range []string{"manycore-256c", "train\\eval", "bursty", "most robust"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRobustRejectsDuplicateFamilies(t *testing.T) {
	a, _ := workload.Parse("web")
	b, _ := workload.Parse("web")
	fp, _ := floorplan.Manycore(4, 2, floorplan.Grid{W: 2, H: 2})
	_, err := Robust(RobustConfig{
		Floorplan: fp, Grid: floorplan.Grid{W: 8, H: 8},
		Snapshots: 8, KMax: 4, K: 2, M: 3,
		Specs: []*workload.Spec{a, b},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate families err = %v", err)
	}
}

func TestRobustSmallCustomConfig(t *testing.T) {
	// A non-default configuration (tiny die, two families) exercises the
	// explicit-field path.
	fp, err := floorplan.Manycore(16, 4, floorplan.Grid{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	web, _ := workload.Parse("web")
	idle, _ := workload.Parse("idle")
	res, err := Robust(RobustConfig{
		Floorplan: fp, Grid: floorplan.Grid{W: 12, H: 12},
		Snapshots: 30, KMax: 6, K: 4, M: 6, Seed: 7,
		Specs: []*workload.Spec{web, idle},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || res.Names[0] != "web" || res.Names[1] != "idle" {
		t.Fatalf("names %v", res.Names)
	}
}

// TestRobustAdaptArmCutsGap is the adaptation acceptance pin: absorbing an
// adaptation stream of the deployed family (same sensors, re-folded
// operator) must cut the worst-case generalization gap by at least an order
// of magnitude on the small two-family configuration — the quantitative
// claim behind the daemon's online adaptation path.
func TestRobustAdaptArmCutsGap(t *testing.T) {
	fp, err := floorplan.Manycore(16, 4, floorplan.Grid{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	// compute vs wave is the most thermally divergent small pair: a scarce
	// training budget (16 snapshots) leaves a large cross-family gap, and a
	// long adaptation stream (160 snapshots, seed weight 2 so the stream
	// dominates the stale basis) recovers it.
	compute, _ := workload.Parse("compute")
	wave, _ := workload.Parse("wave")
	res, err := Robust(RobustConfig{
		Floorplan: fp, Grid: floorplan.Grid{W: 12, H: 12},
		Snapshots: 16, KMax: 6, K: 4, M: 6, Seed: 11,
		Specs: []*workload.Spec{compute, wave},
		Adapt: true, AdaptSnapshots: 160, AdaptSeedWeight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptedMSE == nil || len(res.AdaptedMSE) != 2 {
		t.Fatalf("adapt arm produced no matrix: %+v", res.AdaptedMSE)
	}
	for i := range res.AdaptedMSE {
		for j, v := range res.AdaptedMSE[i] {
			if !(v > 0) || math.IsInf(v, 0) {
				t.Fatalf("AdaptedMSE[%d][%d] = %v", i, j, v)
			}
			// Adaptation must actually help on the mismatched pairs.
			if i != j && v >= res.MSE[i][j] {
				t.Errorf("adaptation did not improve %s→%s: %g >= %g",
					res.Names[i], res.Names[j], v, res.MSE[i][j])
			}
		}
	}
	gap, adapted := res.GeneralizationGap(), res.AdaptedGeneralizationGap()
	cut := res.GapCut()
	t.Logf("gap %.3gx → adapted %.3gx (cut %.3gx)", gap, adapted, cut)
	if cut < 10 {
		t.Fatalf("adaptation cut the generalization gap only %.3gx (gap %.3gx → %.3gx), want >= 10x",
			cut, gap, adapted)
	}
	// The adapt arm must not perturb the base matrix contract.
	if s := res.String(); !strings.Contains(s, "gap cut") {
		t.Fatalf("String() omits the adaptation summary:\n%s", s)
	}
}
