package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/place"
	"repro/internal/render"
)

// Fig6Result studies design-constrained allocation — Fig. 6: greedy
// EigenMaps placement with and without the "no sensors in caches" mask,
// error curves versus M plus rendered sensor layouts.
type Fig6Result struct {
	M                []int
	MSEFree          []float64
	MSEConstrained   []float64
	MaxSqFree        []float64
	MaxSqConstrained []float64

	// LayoutM is the sensor count of the rendered layouts (the paper shows 32).
	LayoutM           int
	LayoutFree        string
	LayoutConstrained string
	MaskRender        string
}

// Fig6 sweeps M over Cfg.Ms with the cache mask of the T1 floorplan.
func (e *Env) Fig6() (*Fig6Result, error) {
	mask := e.Raster.MaskExcludingKinds(floorplan.KindCache)
	res := &Fig6Result{}
	for _, m := range e.Cfg.Ms {
		k := m
		if k > e.Cfg.KMax {
			k = e.Cfg.KMax
		}
		free, err := e.evalCombo(e.PCA, &place.Greedy{}, k, m, nil)
		if err != nil {
			return nil, fmt.Errorf("fig6 M=%d free: %w", m, err)
		}
		con, err := e.evalCombo(e.PCA, &place.Greedy{}, k, m, mask)
		if err != nil {
			return nil, fmt.Errorf("fig6 M=%d constrained: %w", m, err)
		}
		res.M = append(res.M, m)
		res.MSEFree = append(res.MSEFree, free.MSE)
		res.MSEConstrained = append(res.MSEConstrained, con.MSE)
		res.MaxSqFree = append(res.MaxSqFree, free.MaxSq)
		res.MaxSqConstrained = append(res.MaxSqConstrained, con.MaxSq)
	}

	// Render the layouts at the largest swept M (paper: 32 sensors).
	layoutM := res.M[len(res.M)-1]
	res.LayoutM = layoutM
	kL := layoutM
	if kL > e.Cfg.KMax {
		kL = e.Cfg.KMax
	}
	freeS, err := e.PCA.PlaceSensors(layoutM, core.PlaceOptions{K: kL, Allocator: &place.Greedy{}})
	if err != nil {
		return nil, err
	}
	conS, err := e.PCA.PlaceSensors(layoutM, core.PlaceOptions{K: kL, Mask: mask, Allocator: &place.Greedy{}})
	if err != nil {
		return nil, err
	}
	res.LayoutFree = render.SensorMap(e.Raster, freeS)
	res.LayoutConstrained = render.SensorMap(e.Raster, conS)
	res.MaskRender = renderMask(e.DS.Grid, mask)
	return res, nil
}

func renderMask(g floorplan.Grid, mask []bool) string {
	var b strings.Builder
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			if mask[g.Index(row, col)] {
				b.WriteByte('.')
			} else {
				b.WriteByte('#') // forbidden zone (the paper's striped red)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String prints Fig. 6(d)'s curves and the (a)/(b)/(c) layout panels.
func (r *Fig6Result) String() string {
	xs := make([]float64, len(r.M))
	for i, m := range r.M {
		xs[i] = float64(m)
	}
	var b strings.Builder
	b.WriteString(formatSeries("Fig. 6(d): constrained vs free allocation (EigenMaps+greedy)", "M", []Series{
		{Name: "MSE free", X: xs, Y: r.MSEFree},
		{Name: "MSE constrained", X: xs, Y: r.MSEConstrained},
		{Name: "MAX free", X: xs, Y: r.MaxSqFree},
		{Name: "MAX constrained", X: xs, Y: r.MaxSqConstrained},
	}))
	fmt.Fprintf(&b, "\nFig. 6(a): %d sensors, unconstrained\n%s", r.LayoutM, r.LayoutFree)
	fmt.Fprintf(&b, "\nFig. 6(b): mask (# = forbidden)\n%s", r.MaskRender)
	fmt.Fprintf(&b, "\nFig. 6(c): %d sensors, constrained\n%s", r.LayoutM, r.LayoutConstrained)
	return b.String()
}
