package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/place"
	"repro/internal/power"
)

// CrossFloorplanResult reproduces the paper's Sec. 5.1 remark that k-LSE's
// weaker showing is partly the T1's doing: the 8-core die produces more
// spatial high-frequency content than the Athlon dual-core that k-LSE was
// originally evaluated on. We run both floorplans through the same pipeline
// and compare the EigenMaps-over-k-LSE MSE ratio; it must shrink on the
// Athlon.
type CrossFloorplanResult struct {
	M []int
	// MSE per floorplan and method, indexed like M.
	T1Eigen, T1KLSE         []float64
	AthlonEigen, AthlonKLSE []float64
}

// CrossFloorplan runs the Fig. 3(b)-style sweep on both floorplans. The
// dataset for each is regenerated at the environment's grid/seed so both see
// identical simulation budgets.
func (e *Env) CrossFloorplan() (*CrossFloorplanResult, error) {
	res := &CrossFloorplanResult{}
	type target struct {
		fp    *floorplan.Floorplan
		eigen *[]float64
		klse  *[]float64
	}
	targets := []target{
		{floorplan.UltraSparcT1(), &res.T1Eigen, &res.T1KLSE},
		{floorplan.AthlonDualCore(), &res.AthlonEigen, &res.AthlonKLSE},
	}
	for ti, tg := range targets {
		ds, err := dataset.Generate(tg.fp, dataset.GenConfig{
			Grid:      e.Cfg.Grid,
			Snapshots: e.Cfg.Snapshots,
			Seed:      e.Cfg.Seed + int64(ti),
			Power:     power.Config{LoadCoupling: e.Cfg.LoadCoupling},
		})
		if err != nil {
			return nil, fmt.Errorf("crossfloorplan %s: %w", tg.fp.Name, err)
		}
		pca, err := core.Train(ds, core.TrainOptions{KMax: e.Cfg.KMax, Kind: core.BasisEigenMaps, Seed: e.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		klse, err := core.Train(ds, core.TrainOptions{KMax: e.Cfg.KMax, Kind: core.BasisDCT, Seed: e.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		sub := &Env{Cfg: e.Cfg, DS: ds, PCA: pca, KLSE: klse, Raster: tg.fp.Rasterize(ds.Grid)}
		for _, m := range e.Cfg.Ms {
			k := m
			if k > e.Cfg.KMax {
				k = e.Cfg.KMax
			}
			pe, err := sub.evalCombo(pca, &place.Greedy{}, k, m, nil)
			if err != nil {
				return nil, fmt.Errorf("crossfloorplan %s M=%d eigen: %w", tg.fp.Name, m, err)
			}
			de, err := sub.evalCombo(klse, &place.EnergyCenter{}, k, m, nil)
			if err != nil {
				return nil, fmt.Errorf("crossfloorplan %s M=%d klse: %w", tg.fp.Name, m, err)
			}
			if ti == 0 {
				res.M = append(res.M, m)
			}
			*tg.eigen = append(*tg.eigen, pe.MSE)
			*tg.klse = append(*tg.klse, de.MSE)
		}
	}
	return res, nil
}

// KLSEMean returns the geometric-mean k-LSE MSE over the M sweep for the
// named floorplan ("t1" or "athlon"). The paper's remark predicts the
// Athlon value is smaller: the dual-core die has less spatial
// high-frequency content for the DCT prior to miss.
func (r *CrossFloorplanResult) KLSEMean(fp string) float64 {
	var kls []float64
	switch fp {
	case "t1":
		kls = r.T1KLSE
	case "athlon":
		kls = r.AthlonKLSE
	default:
		return 0
	}
	if len(kls) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range kls {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(kls)))
}

// GapRatio returns the geometric-mean k-LSE/EigenMaps MSE ratio over the M
// sweep for the named floorplan ("t1" or "athlon"). Larger means EigenMaps'
// advantage is bigger.
func (r *CrossFloorplanResult) GapRatio(fp string) float64 {
	var eig, kls []float64
	switch fp {
	case "t1":
		eig, kls = r.T1Eigen, r.T1KLSE
	case "athlon":
		eig, kls = r.AthlonEigen, r.AthlonKLSE
	default:
		return 0
	}
	if len(eig) == 0 {
		return 0
	}
	prod := 1.0
	for i := range eig {
		if eig[i] <= 0 {
			return 0
		}
		prod *= kls[i] / eig[i]
	}
	return math.Pow(prod, 1/float64(len(eig)))
}

// String prints the four curves and the gap ratios.
func (r *CrossFloorplanResult) String() string {
	xs := make([]float64, len(r.M))
	for i, m := range r.M {
		xs[i] = float64(m)
	}
	var b strings.Builder
	b.WriteString(formatSeries("Cross-floorplan: MSE vs M (EigenMaps+greedy vs k-LSE+energy)", "M", []Series{
		{Name: "T1 EigenMaps", X: xs, Y: r.T1Eigen},
		{Name: "T1 k-LSE", X: xs, Y: r.T1KLSE},
		{Name: "Athlon EigenMaps", X: xs, Y: r.AthlonEigen},
		{Name: "Athlon k-LSE", X: xs, Y: r.AthlonKLSE},
	}))
	fmt.Fprintf(&b, "k-LSE/EigenMaps MSE gap (geomean): T1 %.3gx, Athlon %.3gx\n",
		r.GapRatio("t1"), r.GapRatio("athlon"))
	fmt.Fprintf(&b, "k-LSE absolute MSE (geomean): T1 %.4g, Athlon %.4g (paper: smoother Athlon maps suit the DCT prior better)\n",
		r.KLSEMean("t1"), r.KLSEMean("athlon"))
	return b.String()
}
