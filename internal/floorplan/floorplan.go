// Package floorplan models processor floorplans as rectangular functional
// blocks on a die, and rasterizes them onto the discrete thermal grid used by
// the rest of the pipeline.
//
// The package ships the UltraSPARC T1 (Niagara) layout the paper evaluates
// on: eight SPARC cores along the top and bottom die edges, eight L2 cache
// banks inboard of the cores, and the crossbar plus floating-point unit in
// the central band (paper Fig. 1).
package floorplan

import (
	"fmt"
	"sort"
)

// Kind classifies a block's functional role; it drives both the power model
// and sensor-placement constraints (e.g. "no sensors inside caches").
type Kind int

// Block kinds.
const (
	KindCore Kind = iota
	KindCache
	KindCrossbar
	KindFPU
	KindOther
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindCache:
		return "cache"
	case KindCrossbar:
		return "crossbar"
	case KindFPU:
		return "fpu"
	case KindOther:
		return "other"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Block is an axis-aligned rectangle in normalized die coordinates:
// X, Y are the left/top corner and W, H the extent, all in [0, 1].
// Y grows downward (row direction), X rightward (column direction).
type Block struct {
	Name       string
	Kind       Kind
	X, Y, W, H float64
}

// Contains reports whether the normalized point (x, y) lies inside b.
func (b Block) Contains(x, y float64) bool {
	return x >= b.X && x < b.X+b.W && y >= b.Y && y < b.Y+b.H
}

// Area returns the block's fractional area of the die.
func (b Block) Area() float64 { return b.W * b.H }

// Floorplan is a named set of blocks tiling (or partially covering) the die.
type Floorplan struct {
	Name   string
	Blocks []Block
}

// Validate checks that all blocks lie within the unit die and that no two
// blocks overlap (beyond floating-point tolerance). It returns a descriptive
// error for the first violation found.
func (fp *Floorplan) Validate() error {
	const eps = 1e-9
	for i, b := range fp.Blocks {
		if b.Name == "" {
			return fmt.Errorf("floorplan %q: block %d has no name", fp.Name, i)
		}
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("floorplan %q: block %q has non-positive extent", fp.Name, b.Name)
		}
		if b.X < -eps || b.Y < -eps || b.X+b.W > 1+eps || b.Y+b.H > 1+eps {
			return fmt.Errorf("floorplan %q: block %q exceeds die bounds", fp.Name, b.Name)
		}
	}
	for i := 0; i < len(fp.Blocks); i++ {
		for j := i + 1; j < len(fp.Blocks); j++ {
			if overlaps(fp.Blocks[i], fp.Blocks[j]) {
				return fmt.Errorf("floorplan %q: blocks %q and %q overlap",
					fp.Name, fp.Blocks[i].Name, fp.Blocks[j].Name)
			}
		}
	}
	return nil
}

func overlaps(a, b Block) bool {
	const eps = 1e-9
	return a.X+a.W > b.X+eps && b.X+b.W > a.X+eps &&
		a.Y+a.H > b.Y+eps && b.Y+b.H > a.Y+eps
}

// BlockIndex returns the index of the named block, or -1.
func (fp *Floorplan) BlockIndex(name string) int {
	for i, b := range fp.Blocks {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// KindBlocks returns the indices of all blocks of the given kind, in layout
// order.
func (fp *Floorplan) KindBlocks(k Kind) []int {
	var out []int
	for i, b := range fp.Blocks {
		if b.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// CoverageFraction returns the total fractional die area covered by blocks.
func (fp *Floorplan) CoverageFraction() float64 {
	var a float64
	for _, b := range fp.Blocks {
		a += b.Area()
	}
	return a
}

// Names returns the block names sorted alphabetically (useful for stable
// reporting).
func (fp *Floorplan) Names() []string {
	out := make([]string, len(fp.Blocks))
	for i, b := range fp.Blocks {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}

// UltraSparcT1 returns the 8-core Niagara floorplan of the paper's Fig. 1:
// two rows of four cores at the top and bottom die edges, eight L2 cache
// banks inboard, and a central band holding the crossbar and the shared FPU.
// The blocks tile the die exactly.
func UltraSparcT1() *Floorplan {
	fp := &Floorplan{Name: "ultrasparc-t1"}
	const (
		coreH  = 3.0 / 14 // each core band is 3/14 of die height
		cacheH = 3.0 / 14 // each cache band is 3/14
		midH   = 2.0 / 14 // central crossbar/FPU band
	)
	// Top core row.
	for i := 0; i < 4; i++ {
		fp.Blocks = append(fp.Blocks, Block{
			Name: fmt.Sprintf("core%d", i), Kind: KindCore,
			X: float64(i) * 0.25, Y: 0, W: 0.25, H: coreH,
		})
	}
	// Top L2 bank row.
	for i := 0; i < 4; i++ {
		fp.Blocks = append(fp.Blocks, Block{
			Name: fmt.Sprintf("l2b%d", i), Kind: KindCache,
			X: float64(i) * 0.25, Y: coreH, W: 0.25, H: cacheH,
		})
	}
	// Central band: crossbar (left 4/5) + FPU (right 1/5).
	fp.Blocks = append(fp.Blocks,
		Block{Name: "crossbar", Kind: KindCrossbar, X: 0, Y: coreH + cacheH, W: 0.8, H: midH},
		Block{Name: "fpu", Kind: KindFPU, X: 0.8, Y: coreH + cacheH, W: 0.2, H: midH},
	)
	// Bottom L2 bank row.
	for i := 0; i < 4; i++ {
		fp.Blocks = append(fp.Blocks, Block{
			Name: fmt.Sprintf("l2b%d", i+4), Kind: KindCache,
			X: float64(i) * 0.25, Y: coreH + cacheH + midH, W: 0.25, H: cacheH,
		})
	}
	// Bottom core row.
	for i := 0; i < 4; i++ {
		fp.Blocks = append(fp.Blocks, Block{
			Name: fmt.Sprintf("core%d", i+4), Kind: KindCore,
			X: float64(i) * 0.25, Y: coreH + 2*cacheH + midH, W: 0.25, H: coreH,
		})
	}
	return fp
}
