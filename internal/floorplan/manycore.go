package floorplan

import (
	"fmt"
	"strconv"
	"strings"
)

// Manycore generates a parametric tiled many-core floorplan so scenarios
// can scale far beyond the bundled T1/Athlon dies: `cores` core tiles in a
// mesh.W × mesh.H grid across the top of the die, a full-width NoC router
// band (KindCrossbar) under them, `caches` shared L2/L3 banks tiled below
// the NoC, and an uncore strip (vector/FPU complex plus memory controllers
// as KindOther) along the bottom edge.
//
// The layout keeps the structural properties the power and placement
// models rely on: every block kind the engine powers is present, cache
// banks map onto cores proportionally in layout order, and the blocks tile
// the unit die without overlap (Validate clean by construction).
//
// Manycore(256, 64, Grid{W: 16, H: 16}) is the reference ≥256-core
// configuration used by the cross-scenario robustness harness.
func Manycore(cores, caches int, mesh Grid) (*Floorplan, error) {
	if cores < 1 {
		return nil, fmt.Errorf("floorplan: manycore needs at least 1 core, got %d", cores)
	}
	if mesh.W < 1 || mesh.H < 1 {
		return nil, fmt.Errorf("floorplan: manycore mesh %dx%d is degenerate", mesh.W, mesh.H)
	}
	if mesh.W*mesh.H != cores {
		return nil, fmt.Errorf("floorplan: manycore mesh %dx%d holds %d tiles, not %d cores",
			mesh.W, mesh.H, mesh.W*mesh.H, cores)
	}
	if caches < 0 {
		return nil, fmt.Errorf("floorplan: manycore cache count %d is negative", caches)
	}

	// Vertical band budget (fractions of die height). Without caches the
	// core mesh absorbs the cache band.
	const (
		nocH    = 0.08
		uncoreH = 0.06
	)
	cacheH := 0.24
	if caches == 0 {
		cacheH = 0
	}
	coreH := 1 - nocH - uncoreH - cacheH

	fp := &Floorplan{Name: fmt.Sprintf("manycore-%dc", cores)}

	// Core mesh: mesh.H rows × mesh.W columns tiling the top band.
	tileW := 1.0 / float64(mesh.W)
	tileH := coreH / float64(mesh.H)
	for r := 0; r < mesh.H; r++ {
		for c := 0; c < mesh.W; c++ {
			fp.Blocks = append(fp.Blocks, Block{
				Name: fmt.Sprintf("core%d", r*mesh.W+c), Kind: KindCore,
				X: float64(c) * tileW, Y: float64(r) * tileH, W: tileW, H: tileH,
			})
		}
	}

	// NoC router band: the many-core analogue of the T1 crossbar.
	fp.Blocks = append(fp.Blocks, Block{
		Name: "noc", Kind: KindCrossbar, X: 0, Y: coreH, W: 1, H: nocH,
	})

	// Cache banks: rows of mesh.W banks below the NoC; a final partial row
	// widens its banks to keep the die tiled.
	if caches > 0 {
		rows := (caches + mesh.W - 1) / mesh.W
		bankH := cacheH / float64(rows)
		y := coreH + nocH
		for r := 0; r < rows; r++ {
			inRow := mesh.W
			if rem := caches - r*mesh.W; rem < inRow {
				inRow = rem
			}
			bankW := 1.0 / float64(inRow)
			for c := 0; c < inRow; c++ {
				fp.Blocks = append(fp.Blocks, Block{
					Name: fmt.Sprintf("l2b%d", r*mesh.W+c), Kind: KindCache,
					X: float64(c) * bankW, Y: y + float64(r)*bankH, W: bankW, H: bankH,
				})
			}
		}
	}

	// Uncore strip: shared vector/FPU complex on the left fifth, memory
	// controllers and IO filling the rest.
	uy := 1 - uncoreH
	fp.Blocks = append(fp.Blocks,
		Block{Name: "vpu", Kind: KindFPU, X: 0, Y: uy, W: 0.2, H: uncoreH},
		Block{Name: "mc", Kind: KindOther, X: 0.2, Y: uy, W: 0.8, H: uncoreH},
	)

	if err := fp.Validate(); err != nil {
		// Unreachable for accepted parameters; kept as an internal check.
		return nil, fmt.Errorf("floorplan: manycore generation produced an invalid plan: %w", err)
	}
	return fp, nil
}

// Named resolves a floorplan by registry name: "t1" (or "ultrasparc-t1"),
// "athlon" (or "athlon-dual-core"), and "manycore-<cores>c" for a generated
// many-core die with a square-ish mesh and one cache bank per four cores.
// It is the single floorplan-name parser shared by the daemon and the CLIs.
func Named(name string) (*Floorplan, error) {
	switch name {
	case "t1", "ultrasparc-t1":
		return UltraSparcT1(), nil
	case "athlon", "athlon-dual-core":
		return AthlonDualCore(), nil
	}
	// Strict "manycore-<cores>c" parse: the whole name must match, so a
	// typo like "manycore-16cores" is rejected instead of silently
	// selecting a 16-core die.
	if num, ok := strings.CutPrefix(name, "manycore-"); ok {
		if digits, ok := strings.CutSuffix(num, "c"); ok {
			cores, err := strconv.Atoi(digits)
			if err == nil && cores > 0 {
				mesh, merr := squareMesh(cores)
				if merr != nil {
					return nil, merr
				}
				caches := cores / 4
				if caches == 0 {
					caches = 1
				}
				return Manycore(cores, caches, mesh)
			}
		}
	}
	return nil, fmt.Errorf("floorplan: unknown floorplan %q (want t1, athlon or manycore-<cores>c)", name)
}

// squareMesh factors cores into the most square W×H mesh, rejecting counts
// that only factor as degenerate 1×N strips (primes above 3).
func squareMesh(cores int) (Grid, error) {
	if cores < 1 {
		return Grid{}, fmt.Errorf("floorplan: manycore needs at least 1 core, got %d", cores)
	}
	best := Grid{W: cores, H: 1}
	for h := 2; h*h <= cores; h++ {
		if cores%h == 0 {
			best = Grid{W: cores / h, H: h}
		}
	}
	if best.H == 1 && cores > 3 {
		return Grid{}, fmt.Errorf("floorplan: %d cores only factor as a 1x%d strip; pick a composite core count", cores, cores)
	}
	return best, nil
}
