package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUltraSparcT1Valid(t *testing.T) {
	fp := UltraSparcT1()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUltraSparcT1Composition(t *testing.T) {
	fp := UltraSparcT1()
	if got := len(fp.KindBlocks(KindCore)); got != 8 {
		t.Fatalf("cores = %d, want 8", got)
	}
	if got := len(fp.KindBlocks(KindCache)); got != 8 {
		t.Fatalf("cache banks = %d, want 8", got)
	}
	if got := len(fp.KindBlocks(KindCrossbar)); got != 1 {
		t.Fatalf("crossbars = %d, want 1", got)
	}
	if got := len(fp.KindBlocks(KindFPU)); got != 1 {
		t.Fatalf("FPUs = %d, want 1", got)
	}
}

func TestUltraSparcT1TilesDie(t *testing.T) {
	fp := UltraSparcT1()
	if cov := fp.CoverageFraction(); math.Abs(cov-1) > 1e-9 {
		t.Fatalf("coverage = %v, want 1", cov)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	fp := &Floorplan{Name: "bad", Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 0.6, H: 0.6},
		{Name: "b", X: 0.5, Y: 0.5, W: 0.5, H: 0.5},
	}}
	if err := fp.Validate(); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestValidateRejectsOutOfBounds(t *testing.T) {
	fp := &Floorplan{Name: "bad", Blocks: []Block{
		{Name: "a", X: 0.5, Y: 0, W: 0.6, H: 0.5},
	}}
	if err := fp.Validate(); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestValidateRejectsEmptyName(t *testing.T) {
	fp := &Floorplan{Name: "bad", Blocks: []Block{{X: 0, Y: 0, W: 0.5, H: 0.5}}}
	if err := fp.Validate(); err == nil {
		t.Fatal("expected name error")
	}
}

func TestValidateRejectsNonPositiveExtent(t *testing.T) {
	fp := &Floorplan{Name: "bad", Blocks: []Block{{Name: "a", X: 0, Y: 0, W: 0, H: 0.5}}}
	if err := fp.Validate(); err == nil {
		t.Fatal("expected extent error")
	}
}

func TestAdjacentBlocksDoNotOverlap(t *testing.T) {
	a := Block{Name: "a", X: 0, Y: 0, W: 0.5, H: 1}
	b := Block{Name: "b", X: 0.5, Y: 0, W: 0.5, H: 1}
	if overlaps(a, b) {
		t.Fatal("edge-sharing blocks misreported as overlapping")
	}
}

func TestBlockIndex(t *testing.T) {
	fp := UltraSparcT1()
	if fp.BlockIndex("fpu") < 0 {
		t.Fatal("fpu not found")
	}
	if fp.BlockIndex("nope") != -1 {
		t.Fatal("missing block should be -1")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCore: "core", KindCache: "cache", KindCrossbar: "crossbar",
		KindFPU: "fpu", KindOther: "other", Kind(42): "Kind(42)",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := Grid{W: 7, H: 5}
	seen := make(map[int]bool)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			if i < 0 || i >= g.N() {
				t.Fatalf("index out of range: %d", i)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
			r2, c2 := g.RowCol(i)
			if r2 != row || c2 != col {
				t.Fatalf("RowCol(Index(%d,%d)) = (%d,%d)", row, col, r2, c2)
			}
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("indices cover %d cells, want %d", len(seen), g.N())
	}
}

func TestGridColumnStacking(t *testing.T) {
	// Paper convention: x[col·H + row].
	g := Grid{W: 60, H: 56}
	if g.Index(0, 0) != 0 || g.Index(1, 0) != 1 || g.Index(0, 1) != 56 {
		t.Fatal("column-stacking convention violated")
	}
	if g.N() != 3360 {
		t.Fatalf("N = %d, want 3360", g.N())
	}
}

func TestGridPanicsOutOfRange(t *testing.T) {
	g := Grid{W: 3, H: 3}
	for _, fn := range []func(){
		func() { g.Index(3, 0) },
		func() { g.Index(0, -1) },
		func() { g.RowCol(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRasterizeCoversEveryCell(t *testing.T) {
	fp := UltraSparcT1()
	g := Grid{W: 60, H: 56}
	r := fp.Rasterize(g)
	for i, b := range r.BlockOf {
		if b < 0 {
			row, col := g.RowCol(i)
			t.Fatalf("cell (%d,%d) uncovered", row, col)
		}
	}
	if r.CoveredCells() != g.N() {
		t.Fatalf("covered %d of %d", r.CoveredCells(), g.N())
	}
}

func TestRasterizeCellCountsMatchAreas(t *testing.T) {
	fp := UltraSparcT1()
	g := Grid{W: 60, H: 56}
	r := fp.Rasterize(g)
	for b, blk := range fp.Blocks {
		got := float64(r.CellCount(b)) / float64(g.N())
		if math.Abs(got-blk.Area()) > 0.02 {
			t.Fatalf("block %s: cell fraction %v vs area %v", blk.Name, got, blk.Area())
		}
	}
}

func TestRasterizeConsistentAssignment(t *testing.T) {
	fp := UltraSparcT1()
	g := Grid{W: 24, H: 28}
	r := fp.Rasterize(g)
	for b := range fp.Blocks {
		for _, i := range r.CellsOf(b) {
			if r.BlockOf[i] != b {
				t.Fatalf("cell %d listed under block %d but assigned to %d", i, b, r.BlockOf[i])
			}
		}
	}
}

func TestMaskExcludingKinds(t *testing.T) {
	fp := UltraSparcT1()
	g := Grid{W: 60, H: 56}
	r := fp.Rasterize(g)
	mask := r.MaskExcludingKinds(KindCache)
	allowed, denied := 0, 0
	for i, ok := range mask {
		b := r.BlockOf[i]
		isCache := fp.Blocks[b].Kind == KindCache
		if ok && isCache {
			t.Fatal("cache cell allowed by mask")
		}
		if ok {
			allowed++
		} else {
			denied++
		}
		if !ok && !isCache {
			t.Fatal("non-cache cell denied")
		}
	}
	if allowed == 0 || denied == 0 {
		t.Fatalf("degenerate mask: %d allowed, %d denied", allowed, denied)
	}
}

func TestBlockMapShape(t *testing.T) {
	fp := UltraSparcT1()
	g := Grid{W: 10, H: 8}
	bm := fp.Rasterize(g).BlockMap()
	if len(bm) != 8 || len(bm[0]) != 10 {
		t.Fatalf("BlockMap shape %dx%d, want 8x10", len(bm), len(bm[0]))
	}
	// Top-left cell must be core0, bottom-right core7.
	if fp.Blocks[bm[0][0]].Name != "core0" {
		t.Fatalf("top-left is %s, want core0", fp.Blocks[bm[0][0]].Name)
	}
	if fp.Blocks[bm[7][9]].Name != "core7" {
		t.Fatalf("bottom-right is %s, want core7", fp.Blocks[bm[7][9]].Name)
	}
}

func TestNamesSorted(t *testing.T) {
	names := UltraSparcT1().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
	if len(names) != 18 {
		t.Fatalf("T1 has %d blocks, want 18", len(names))
	}
}

// Property: rasterization at random grid sizes assigns every cell of the T1
// plan exactly once.
func TestRasterizePartitionProperty(t *testing.T) {
	fp := UltraSparcT1()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Grid{W: 4 + r.Intn(80), H: 4 + r.Intn(80)}
		ras := fp.Rasterize(g)
		count := 0
		for b := range fp.Blocks {
			count += ras.CellCount(b)
		}
		return count == g.N() && ras.CoveredCells() == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(50))}); err != nil {
		t.Fatal(err)
	}
}

func TestAthlonDualCoreValid(t *testing.T) {
	fp := AthlonDualCore()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(fp.KindBlocks(KindCore)); got != 2 {
		t.Fatalf("cores = %d, want 2", got)
	}
	if got := len(fp.KindBlocks(KindCache)); got != 2 {
		t.Fatalf("caches = %d, want 2", got)
	}
	if cov := fp.CoverageFraction(); math.Abs(cov-1) > 1e-9 {
		t.Fatalf("coverage = %v, want 1", cov)
	}
	r := fp.Rasterize(Grid{W: 30, H: 28})
	if r.CoveredCells() != 30*28 {
		t.Fatalf("raster covers %d of %d", r.CoveredCells(), 30*28)
	}
}
