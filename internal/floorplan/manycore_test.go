package floorplan

import (
	"strings"
	"testing"
)

func TestManycoreGeneratesValidPlans(t *testing.T) {
	cases := []struct {
		cores, caches int
		mesh          Grid
	}{
		{4, 2, Grid{W: 2, H: 2}},
		{16, 4, Grid{W: 4, H: 4}},
		{64, 16, Grid{W: 8, H: 8}},
		{256, 64, Grid{W: 16, H: 16}},
		{12, 5, Grid{W: 4, H: 3}}, // partial cache row
		{9, 0, Grid{W: 3, H: 3}},  // cacheless die
	}
	for _, tc := range cases {
		fp, err := Manycore(tc.cores, tc.caches, tc.mesh)
		if err != nil {
			t.Fatalf("Manycore(%d,%d,%v): %v", tc.cores, tc.caches, tc.mesh, err)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("Manycore(%d,%d,%v) invalid: %v", tc.cores, tc.caches, tc.mesh, err)
		}
		if got := len(fp.KindBlocks(KindCore)); got != tc.cores {
			t.Fatalf("%s: %d cores, want %d", fp.Name, got, tc.cores)
		}
		if got := len(fp.KindBlocks(KindCache)); got != tc.caches {
			t.Fatalf("%s: %d caches, want %d", fp.Name, got, tc.caches)
		}
		if got := len(fp.KindBlocks(KindCrossbar)); got != 1 {
			t.Fatalf("%s: %d crossbars, want 1", fp.Name, got)
		}
		if got := len(fp.KindBlocks(KindFPU)); got != 1 {
			t.Fatalf("%s: %d fpus, want 1", fp.Name, got)
		}
		if cov := fp.CoverageFraction(); cov < 0.999 || cov > 1.001 {
			t.Fatalf("%s: coverage %v, want ≈1 (the die must tile)", fp.Name, cov)
		}
	}
}

func TestManycore256RasterizesEveryCore(t *testing.T) {
	fp, err := Manycore(256, 64, Grid{W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := fp.Rasterize(Grid{W: 32, H: 32})
	for b, blk := range fp.Blocks {
		if blk.Kind == KindCore && r.CellCount(b) == 0 {
			t.Fatalf("core %q received no raster cells on a 32x32 grid", blk.Name)
		}
	}
	if r.CoveredCells() != 32*32 {
		t.Fatalf("only %d of %d cells covered", r.CoveredCells(), 32*32)
	}
}

func TestManycoreRejectsBadParameters(t *testing.T) {
	cases := []struct {
		cores, caches int
		mesh          Grid
		want          string
	}{
		{0, 4, Grid{W: 1, H: 1}, "at least 1 core"},
		{4, 4, Grid{W: 0, H: 4}, "degenerate"},
		{4, 4, Grid{W: 3, H: 2}, "not 4 cores"},
		{4, -1, Grid{W: 2, H: 2}, "negative"},
	}
	for _, tc := range cases {
		_, err := Manycore(tc.cores, tc.caches, tc.mesh)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Manycore(%d,%d,%v) err = %v, want mention of %q",
				tc.cores, tc.caches, tc.mesh, err, tc.want)
		}
	}
}

func TestNamedResolvesFloorplans(t *testing.T) {
	for name, wantPlan := range map[string]string{
		"t1":               "ultrasparc-t1",
		"ultrasparc-t1":    "ultrasparc-t1",
		"athlon":           "athlon-dual-core",
		"athlon-dual-core": "athlon-dual-core",
		"manycore-256c":    "manycore-256c",
		"manycore-64c":     "manycore-64c",
	} {
		fp, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if fp.Name != wantPlan {
			t.Fatalf("Named(%q) = %q, want %q", name, fp.Name, wantPlan)
		}
	}
	if _, err := Named("pentium"); err == nil {
		t.Fatal("unknown floorplan accepted")
	}
	if _, err := Named("manycore-7c"); err == nil {
		t.Fatal("prime core count should be rejected (1xN strip)")
	}
	for _, bad := range []string{"manycore-16cores", "manycore-16c-v2", "manycore-c", "manycore-0c", "manycore--4c"} {
		if _, err := Named(bad); err == nil {
			t.Fatalf("Named(%q) accepted a malformed manycore name", bad)
		}
	}
	fp, err := Named("manycore-12c")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fp.KindBlocks(KindCache)); got != 3 {
		t.Fatalf("manycore-12c default caches = %d, want 3", got)
	}
}

func TestManycorePowersUnderSpecEngine(t *testing.T) {
	// The generated plan must be drivable end to end; the real check lives
	// in internal/power and internal/dataset — here we only pin the layout
	// order contract: cores come first, in row-major mesh order.
	fp, err := Manycore(16, 4, Grid{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if fp.Blocks[i].Kind != KindCore {
			t.Fatalf("block %d is %v, want core (layout-order contract)", i, fp.Blocks[i].Kind)
		}
	}
	if fp.Blocks[1].X <= fp.Blocks[0].X || fp.Blocks[4].Y <= fp.Blocks[0].Y {
		t.Fatal("cores not in row-major mesh order")
	}
}
