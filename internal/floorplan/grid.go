package floorplan

import "fmt"

// Grid describes the discretization of the die into H rows × W columns of
// equal cells. Following the paper (Sec. 3), a thermal map t[row, col] is
// vectorized by stacking columns: x[col·H + row] = t[row, col], so N = W·H.
//
// (The paper's printed index formula contains a typo — ⌊i/W⌋ with column
// stacking is dimensionally inconsistent; column stacking requires ⌊i/H⌋,
// which is what we implement.)
type Grid struct {
	W, H int
}

// N returns the number of cells.
func (g Grid) N() int { return g.W * g.H }

// Index returns the vector index of cell (row, col).
func (g Grid) Index(row, col int) int {
	if row < 0 || row >= g.H || col < 0 || col >= g.W {
		panic(fmt.Sprintf("floorplan: cell (%d,%d) outside %dx%d grid", row, col, g.H, g.W))
	}
	return col*g.H + row
}

// RowCol inverts Index.
func (g Grid) RowCol(i int) (row, col int) {
	if i < 0 || i >= g.N() {
		panic(fmt.Sprintf("floorplan: index %d outside grid of %d cells", i, g.N()))
	}
	return i % g.H, i / g.H
}

// CellCenter returns the normalized die coordinates (x, y) of the cell
// center, matching Block coordinates.
func (g Grid) CellCenter(row, col int) (x, y float64) {
	return (float64(col) + 0.5) / float64(g.W), (float64(row) + 0.5) / float64(g.H)
}

// Raster maps every grid cell to the floorplan block covering its center.
type Raster struct {
	Grid    Grid
	Plan    *Floorplan
	BlockOf []int   // per cell index: block index, or -1 if uncovered
	cells   [][]int // per block: covered cell indices
}

// Rasterize assigns each cell of g to the block containing its center.
func (fp *Floorplan) Rasterize(g Grid) *Raster {
	r := &Raster{
		Grid:    g,
		Plan:    fp,
		BlockOf: make([]int, g.N()),
		cells:   make([][]int, len(fp.Blocks)),
	}
	for i := range r.BlockOf {
		r.BlockOf[i] = -1
	}
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			x, y := g.CellCenter(row, col)
			idx := g.Index(row, col)
			for b, blk := range fp.Blocks {
				if blk.Contains(x, y) {
					r.BlockOf[idx] = b
					r.cells[b] = append(r.cells[b], idx)
					break
				}
			}
		}
	}
	return r
}

// CellsOf returns the cell indices covered by block b (do not mutate).
func (r *Raster) CellsOf(b int) []int { return r.cells[b] }

// CellCount returns the number of cells covered by block b.
func (r *Raster) CellCount(b int) int { return len(r.cells[b]) }

// CoveredCells returns the total number of cells assigned to any block.
func (r *Raster) CoveredCells() int {
	n := 0
	for _, c := range r.cells {
		n += len(c)
	}
	return n
}

// Mask returns a per-cell boolean slice, true where allowed(block) holds.
// Uncovered cells are always false.
func (r *Raster) Mask(allowed func(Block) bool) []bool {
	m := make([]bool, r.Grid.N())
	for i, b := range r.BlockOf {
		if b >= 0 && allowed(r.Plan.Blocks[b]) {
			m[i] = true
		}
	}
	return m
}

// MaskExcludingKinds returns a mask allowing sensors everywhere except over
// blocks of the listed kinds — e.g. the paper's Fig. 6 constraint that
// sensors cannot sit inside the caches.
func (r *Raster) MaskExcludingKinds(kinds ...Kind) []bool {
	deny := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		deny[k] = true
	}
	return r.Mask(func(b Block) bool { return !deny[b.Kind] })
}

// BlockMap renders the raster as an H×W matrix of block indices (row-major
// [][]), mainly for debugging and rendering.
func (r *Raster) BlockMap() [][]int {
	out := make([][]int, r.Grid.H)
	for row := range out {
		out[row] = make([]int, r.Grid.W)
		for col := 0; col < r.Grid.W; col++ {
			out[row][col] = r.BlockOf[r.Grid.Index(row, col)]
		}
	}
	return out
}
