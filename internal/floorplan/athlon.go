package floorplan

// AthlonDualCore returns a dual-core Athlon-64-X2-class floorplan: two large
// cores along the top edge, a private L2 bank under each, and the
// northbridge/interconnect column on the right flank.
//
// This is the processor the k-LSE paper (Nowroz et al. [12]) evaluated on.
// The EigenMaps paper attributes part of k-LSE's weaker showing to the T1
// generating "more high frequency content" than the Athlon; this floorplan
// exists so that cross-floorplan comparison can be reproduced (see
// experiments.CrossFloorplan): with two big cores the maps are smoother and
// the DCT baseline closes part of its gap.
func AthlonDualCore() *Floorplan {
	return &Floorplan{
		Name: "athlon-dual-core",
		Blocks: []Block{
			{Name: "core0", Kind: KindCore, X: 0, Y: 0, W: 0.35, H: 0.45},
			{Name: "core1", Kind: KindCore, X: 0.35, Y: 0, W: 0.35, H: 0.45},
			{Name: "l2b0", Kind: KindCache, X: 0, Y: 0.45, W: 0.35, H: 0.50},
			{Name: "l2b1", Kind: KindCache, X: 0.35, Y: 0.45, W: 0.35, H: 0.50},
			{Name: "northbridge", Kind: KindCrossbar, X: 0.70, Y: 0, W: 0.30, H: 1},
			{Name: "io", Kind: KindOther, X: 0, Y: 0.95, W: 0.70, H: 0.05},
		},
	}
}
