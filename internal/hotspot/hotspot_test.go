package hotspot

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func TestHottest(t *testing.T) {
	idx, v := Hottest([]float64{1, 9, 3})
	if idx != 1 || v != 9 {
		t.Fatalf("Hottest = (%d, %v)", idx, v)
	}
}

func TestHottestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hottest(nil)
}

func TestAbove(t *testing.T) {
	got := Above([]float64{50, 80, 79.9, 90}, 80)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Above = %v", got)
	}
	if Above([]float64{1, 2}, 10) != nil {
		t.Fatal("expected nil for no hits")
	}
}

func TestTopN(t *testing.T) {
	x := []float64{5, 9, 7, 9, 1}
	got := TopN(x, 3)
	if got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("TopN = %v", got)
	}
	if len(TopN(x, 99)) != 5 {
		t.Fatal("TopN must clamp")
	}
}

func TestGradientUniformMapIsZero(t *testing.T) {
	g := floorplan.Grid{W: 5, H: 4}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 70
	}
	for i, v := range GradientMagnitude(g, x) {
		if v != 0 {
			t.Fatalf("uniform map gradient %v at %d", v, i)
		}
	}
}

func TestGradientLinearRamp(t *testing.T) {
	// x[row,col] = 2*col → gradient 2 everywhere along the column axis.
	g := floorplan.Grid{W: 6, H: 3}
	x := make([]float64, g.N())
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			x[g.Index(row, col)] = 2 * float64(col)
		}
	}
	grad := GradientMagnitude(g, x)
	for i, v := range grad {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("ramp gradient %v at %d, want 2", v, i)
		}
	}
}

func TestGradientStepEdge(t *testing.T) {
	// A hot right half creates the max gradient at the boundary columns.
	g := floorplan.Grid{W: 8, H: 4}
	x := make([]float64, g.N())
	for row := 0; row < g.H; row++ {
		for col := 4; col < 8; col++ {
			x[g.Index(row, col)] = 40
		}
	}
	cell, mag := MaxGradient(g, x)
	_, col := g.RowCol(cell)
	if col < 3 || col > 4 {
		t.Fatalf("max gradient at column %d, want boundary (3 or 4)", col)
	}
	if mag < 10 {
		t.Fatalf("max gradient %v too small", mag)
	}
}

func TestBlockMaxAndMean(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	g := floorplan.Grid{W: 12, H: 14}
	r := fp.Rasterize(g)
	x := make([]float64, g.N())
	// Heat exactly one core block.
	coreIdx := fp.BlockIndex("core2")
	for _, i := range r.CellsOf(coreIdx) {
		x[i] = 95
	}
	maxs := BlockMax(r, x)
	means := BlockMean(r, x)
	if maxs[coreIdx] != 95 || means[coreIdx] != 95 {
		t.Fatalf("core2 max/mean = %v/%v", maxs[coreIdx], means[coreIdx])
	}
	other := fp.BlockIndex("fpu")
	if maxs[other] != 0 {
		t.Fatalf("fpu max = %v, want 0", maxs[other])
	}
}

func TestAlarmHysteresis(t *testing.T) {
	a := &Alarm{Set: 85, Clear: 80}
	if a.Update(84.9) {
		t.Fatal("tripped below Set")
	}
	if !a.Update(85) {
		t.Fatal("did not trip at Set")
	}
	if !a.Update(82) {
		t.Fatal("cleared above Clear — hysteresis broken")
	}
	if a.Update(79.9) {
		t.Fatal("did not clear below Clear")
	}
	if !a.Update(90) {
		t.Fatal("did not re-trip")
	}
	if a.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", a.Trips())
	}
	if !a.Active() {
		t.Fatal("Active() disagrees")
	}
}

func TestAlarmPanicsOnBadThresholds(t *testing.T) {
	a := &Alarm{Set: 80, Clear: 85}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Update(90)
}

func TestSummarize(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	g := floorplan.Grid{W: 12, H: 14}
	r := fp.Rasterize(g)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 50
	}
	hot := fp.BlockIndex("core5")
	for _, i := range r.CellsOf(hot) {
		x[i] = 92
	}
	rep := Summarize(r, x, 90)
	if rep.MaxC != 92 {
		t.Fatalf("MaxC = %v", rep.MaxC)
	}
	if rep.MinC != 50 {
		t.Fatalf("MinC = %v", rep.MinC)
	}
	if rep.MeanC <= 50 || rep.MeanC >= 92 {
		t.Fatalf("MeanC = %v", rep.MeanC)
	}
	if len(rep.HotBlocks) != 1 || rep.HotBlocks[0] != "core5" {
		t.Fatalf("HotBlocks = %v", rep.HotBlocks)
	}
	if rep.MaxGradC <= 0 {
		t.Fatal("gradient missing")
	}
	if x[rep.MaxCell] != 92 {
		t.Fatal("MaxCell not in the hot block")
	}
}
