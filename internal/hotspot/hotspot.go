// Package hotspot implements the thermal-management consumers of
// reconstructed maps that motivate the paper's introduction: hot-spot
// detection, worst-case spatial gradient extraction, threshold alarms with
// hysteresis, and per-block summaries a dynamic thermal manager acts on.
package hotspot

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
)

// Hottest returns the index and temperature of the hottest cell.
// Panics on an empty map.
func Hottest(x []float64) (int, float64) {
	if len(x) == 0 {
		panic("hotspot: empty map")
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best, x[best]
}

// Above returns the indices of all cells at or above threshold (°C),
// ascending.
func Above(x []float64, threshold float64) []int {
	var out []int
	for i, v := range x {
		if v >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// TopN returns the n hottest cell indices, hottest first (ties broken by
// index). n is clamped to the map size.
func TopN(x []float64, n int) []int {
	if n > len(x) {
		n = len(x)
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
	return idx[:n]
}

// GradientMagnitude returns the per-cell spatial gradient magnitude in
// °C per cell pitch, using central differences (one-sided at die edges).
// Large on-chip gradients stress interconnect and cause timing skew — the
// second failure mode the introduction names besides absolute hot spots.
func GradientMagnitude(g floorplan.Grid, x []float64) []float64 {
	if len(x) != g.N() {
		panic(fmt.Sprintf("hotspot: %d values for %d cells", len(x), g.N()))
	}
	out := make([]float64, g.N())
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			dx := directional(g, x, row, col, 0, 1)
			dy := directional(g, x, row, col, 1, 0)
			out[g.Index(row, col)] = math.Hypot(dx, dy)
		}
	}
	return out
}

// directional computes the finite difference along the axis-aligned step
// (dr, dc): central where both neighbours exist, one-sided at edges.
func directional(g floorplan.Grid, x []float64, row, col, dr, dc int) float64 {
	r0, c0 := row-dr, col-dc
	r1, c1 := row+dr, col+dc
	ok0 := r0 >= 0 && c0 >= 0
	ok1 := r1 < g.H && c1 < g.W
	switch {
	case ok0 && ok1:
		return (x[g.Index(r1, c1)] - x[g.Index(r0, c0)]) / 2
	case ok1:
		return x[g.Index(r1, c1)] - x[g.Index(row, col)]
	case ok0:
		return x[g.Index(row, col)] - x[g.Index(r0, c0)]
	default:
		return 0
	}
}

// MaxGradient returns the largest spatial gradient magnitude and its cell.
func MaxGradient(g floorplan.Grid, x []float64) (cell int, magnitude float64) {
	grad := GradientMagnitude(g, x)
	return Hottest(grad)
}

// BlockMax returns each floorplan block's maximum temperature.
// Blocks covering no cells report NaN.
func BlockMax(r *floorplan.Raster, x []float64) []float64 {
	out := make([]float64, len(r.Plan.Blocks))
	for b := range out {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			out[b] = math.NaN()
			continue
		}
		m := x[cells[0]]
		for _, i := range cells[1:] {
			if x[i] > m {
				m = x[i]
			}
		}
		out[b] = m
	}
	return out
}

// BlockMean returns each block's mean temperature (NaN for empty blocks).
func BlockMean(r *floorplan.Raster, x []float64) []float64 {
	out := make([]float64, len(r.Plan.Blocks))
	for b := range out {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			out[b] = math.NaN()
			continue
		}
		var s float64
		for _, i := range cells {
			s += x[i]
		}
		out[b] = s / float64(len(cells))
	}
	return out
}

// Alarm is a threshold detector with hysteresis: it trips when the maximum
// temperature reaches Set and clears only when it falls below Clear,
// suppressing chatter around the threshold.
type Alarm struct {
	// Set and Clear are the trip and release temperatures; Set must exceed
	// Clear.
	Set, Clear float64

	active bool
	trips  int
}

// Update feeds the current maximum temperature and reports whether the
// alarm is active afterwards.
func (a *Alarm) Update(maxC float64) bool {
	if a.Set <= a.Clear {
		panic(fmt.Sprintf("hotspot: alarm Set %v must exceed Clear %v", a.Set, a.Clear))
	}
	switch {
	case !a.active && maxC >= a.Set:
		a.active = true
		a.trips++
	case a.active && maxC < a.Clear:
		a.active = false
	}
	return a.active
}

// Active reports the current alarm state.
func (a *Alarm) Active() bool { return a.active }

// Trips returns how many times the alarm has tripped since creation.
func (a *Alarm) Trips() int { return a.trips }

// Report is a one-map thermal summary for a dynamic thermal manager.
type Report struct {
	MaxC        float64
	MaxCell     int
	MinC        float64
	MeanC       float64
	MaxGradC    float64 // °C per cell pitch
	MaxGradCell int
	HotBlocks   []string // names of blocks whose max exceeds the threshold
}

// Summarize builds a Report for map x with the given hot-block threshold.
func Summarize(r *floorplan.Raster, x []float64, hotThresholdC float64) Report {
	cell, maxC := Hottest(x)
	var rep Report
	rep.MaxC = maxC
	rep.MaxCell = cell
	rep.MinC = x[0]
	var sum float64
	for _, v := range x {
		if v < rep.MinC {
			rep.MinC = v
		}
		sum += v
	}
	rep.MeanC = sum / float64(len(x))
	rep.MaxGradCell, rep.MaxGradC = MaxGradient(r.Grid, x)
	for b, m := range BlockMax(r, x) {
		if !math.IsNaN(m) && m >= hotThresholdC {
			rep.HotBlocks = append(rep.HotBlocks, r.Plan.Blocks[b].Name)
		}
	}
	sort.Strings(rep.HotBlocks)
	return rep
}
