package mat

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticData builds a T×N data matrix with a planted covariance spectrum:
// rows are x = Σ √λ_j g_j u_j for orthonormal u_j and unit normal g_j.
func syntheticData(t, n int, lambdas []float64, rng *rand.Rand) (*Matrix, *Matrix) {
	u := RandomOrthonormal(n, len(lambdas), rng)
	x := New(t, n)
	for r := 0; r < t; r++ {
		row := x.Row(r)
		for j, lam := range lambdas {
			g := rng.NormFloat64() * math.Sqrt(lam)
			for i := 0; i < n; i++ {
				row[i] += g * u.At(i, j)
			}
		}
	}
	return x, u
}

func TestTopCovarianceEigenMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x := RandomMatrix(60, 20, rng)
	// Dense reference: eigen of XᵀX/T.
	cov := Gram(x).Scale(1.0 / 60)
	ref, err := SymEigen(cov)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	vals, vecs, err := TopCovarianceEigen(x, k, SubspaceOptions{Rand: rng, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !almostEqual(vals[i], ref.Values[i], 1e-8*(ref.Values[0]+1)) {
			t.Fatalf("eigenvalue %d: got %v want %v", i, vals[i], ref.Values[i])
		}
		// Eigenvector match up to sign: |⟨v, ref⟩| ≈ 1.
		d := math.Abs(Dot(vecs.Col(i), ref.Vectors.Col(i)))
		if d < 1-1e-6 {
			t.Fatalf("eigenvector %d misaligned: |dot| = %v", i, d)
		}
	}
}

func TestTopCovarianceEigenOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := RandomMatrix(50, 30, rng)
	_, vecs, err := TopCovarianceEigen(x, 6, SubspaceOptions{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(vecs).Equal(Identity(6), 1e-10) {
		t.Fatal("eigenvector block not orthonormal")
	}
}

func TestTopCovarianceEigenPlantedSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lambdas := []float64{100, 25, 4}
	x, u := syntheticData(4000, 15, lambdas, rng)
	vals, vecs, err := TopCovarianceEigen(x, 3, SubspaceOptions{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	// With 4000 samples the sample spectrum concentrates near the truth.
	for i, lam := range lambdas {
		if math.Abs(vals[i]-lam) > 0.15*lam {
			t.Fatalf("λ%d = %v, want ≈ %v", i, vals[i], lam)
		}
		d := math.Abs(Dot(vecs.Col(i), u.Col(i)))
		if d < 0.98 {
			t.Fatalf("planted direction %d recovered with |dot| = %v", i, d)
		}
	}
}

func TestTopCovarianceEigenClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := RandomMatrix(5, 10, rng) // rank ≤ 5
	vals, vecs, err := TopCovarianceEigen(x, 50, SubspaceOptions{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 || vecs.Cols() != 5 {
		t.Fatalf("K should clamp to min(T,N)=5, got %d", len(vals))
	}
}

func TestTopCovarianceEigenZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := RandomMatrix(5, 5, rng)
	vals, vecs, err := TopCovarianceEigen(x, 0, SubspaceOptions{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 || vecs.Cols() != 0 {
		t.Fatal("K=0 should yield empty result")
	}
}

func TestSnapshotPODMatchesSubspaceIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x, _ := syntheticData(80, 25, []float64{50, 10, 2, 0.5}, rng)
	v1, e1, err := TopCovarianceEigen(x, 4, SubspaceOptions{Rand: rng, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	v2, e2, err := SnapshotPOD(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !almostEqual(v1[i], v2[i], 1e-6*(v1[0]+1)) {
			t.Fatalf("eigenvalue %d: subspace %v vs snapshots %v", i, v1[i], v2[i])
		}
		d := math.Abs(Dot(e1.Col(i), e2.Col(i)))
		if d < 1-1e-5 {
			t.Fatalf("eigenvector %d misaligned across methods: %v", i, d)
		}
	}
}

func TestSnapshotPODEigenvaluesNonNegativeDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	x := RandomMatrix(30, 12, rng)
	vals, _, err := SnapshotPOD(x, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v < 0 {
			t.Fatalf("negative eigenvalue %v", v)
		}
		if i > 0 && v > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestSignNormalizationDeterministic(t *testing.T) {
	// Two different random starts must give identical bases (up to tolerance)
	// thanks to sign normalization.
	base := rand.New(rand.NewSource(47))
	x, _ := syntheticData(500, 20, []float64{40, 9, 1}, base)
	_, e1, err := TopCovarianceEigen(x, 3, SubspaceOptions{Rand: rand.New(rand.NewSource(1)), Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := TopCovarianceEigen(x, 3, SubspaceOptions{Rand: rand.New(rand.NewSource(999)), Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equal(e2, 1e-5) {
		t.Fatal("different random starts produced different signed bases")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := RandomSPD(8, rng)
	want := RandomMatrix(1, 8, rng).Row(0)
	b := MulVec(a, want)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-8) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	a := RandomSPD(6, rng)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	if !Mul(l, l.T()).Equal(a, 1e-10) {
		t.Fatal("LLᵀ != A")
	}
	// Upper triangle of L must be zero.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L not lower triangular")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-14) {
		t.Fatal("Norm2 wrong")
	}
	if NormInf([]float64{-7, 3}) != 7 {
		t.Fatal("NormInf wrong")
	}
	v := []float64{1, 1}
	AXPY(2, []float64{1, 2}, v)
	if v[0] != 3 || v[1] != 5 {
		t.Fatal("AXPY wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
	lo, hi := MinMax([]float64{3, -1, 2})
	if lo != -1 || hi != 3 {
		t.Fatal("MinMax wrong")
	}
	u := []float64{3, 4}
	n := Normalize(u)
	if !almostEqual(n, 5, 1e-14) || !almostEqual(Norm2(u), 1, 1e-14) {
		t.Fatal("Normalize wrong")
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
	if !almostEqual(Norm2([]float64{1e200, 1e200}), 1e200*math.Sqrt2, 1e188) {
		t.Fatal("Norm2 overflow guard failed")
	}
}
