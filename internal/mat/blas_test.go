package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulVecKnown(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(m, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomMatrix(5, 3, rng)
	x := []float64{1, -2, 0.5, 3, -1}
	got := MulVecT(m, x)
	want := MulVec(m.T(), x)
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 2, []float64{5, 6, 7, 8})
	got := Mul(a, b)
	want := NewFromData(2, 2, []float64{19, 22, 43, 50})
	if !got.Equal(want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomMatrix(4, 6, rng)
	if !Mul(Identity(4), a).Equal(a, 1e-14) {
		t.Fatal("I·A != A")
	}
	if !Mul(a, Identity(6)).Equal(a, 1e-14) {
		t.Fatal("A·I != A")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulTAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandomMatrix(6, 3, rng)
	b := RandomMatrix(6, 4, rng)
	if !MulTA(a, b).Equal(Mul(a.T(), b), 1e-12) {
		t.Fatal("MulTA != AᵀB")
	}
}

func TestMulTBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomMatrix(3, 6, rng)
	b := RandomMatrix(4, 6, rng)
	if !MulTB(a, b).Equal(Mul(a, b.T()), 1e-12) {
		t.Fatal("MulTB != ABᵀ")
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandomMatrix(7, 4, rng)
	g := Gram(a)
	if !g.Equal(Mul(a.T(), a), 1e-12) {
		t.Fatal("Gram != AᵀA")
	}
	if !g.IsSymmetric(0) {
		t.Fatal("Gram must be exactly symmetric")
	}
}

func TestRowGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomMatrix(4, 7, rng)
	g := RowGram(a)
	if !g.Equal(Mul(a, a.T()), 1e-12) {
		t.Fatal("RowGram != AAᵀ")
	}
	if !g.IsSymmetric(0) {
		t.Fatal("RowGram must be exactly symmetric")
	}
}

// Property: matrix multiplication is associative on random triples.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s, u := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandomMatrix(p, q, r)
		b := RandomMatrix(q, s, r)
		c := RandomMatrix(s, u, r)
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Property: ⟨A·x, y⟩ == ⟨x, Aᵀ·y⟩ (adjoint identity).
func TestAdjointIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(6), 1+r.Intn(6)
		a := RandomMatrix(m, n, r)
		x := RandomMatrix(1, n, r).Row(0)
		y := RandomMatrix(1, m, r).Row(0)
		return almostEqual(Dot(MulVec(a, x), y), Dot(x, MulVecT(a, y)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
