package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromDataNoCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromData(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	d[5] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("NewFromData must alias the provided slice")
	}
}

func TestNewFromDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewFromData(2, 3, []float64{1, 2})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{2, 5})
	if m.At(0, 0) != 2 || m.At(1, 1) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", m)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	if m.At(0, 1) != 3.5 {
		t.Fatal("Set/At round trip failed")
	}
	m.Add(0, 1, 0.5)
	if m.At(0, 1) != 4 {
		t.Fatal("Add failed")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestRowIsView(t *testing.T) {
	m := New(2, 3)
	r := m.Row(1)
	r[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must return a view")
	}
}

func TestColIsCopy(t *testing.T) {
	m := New(2, 3)
	c := m.Col(1)
	c[0] = 9
	if m.At(0, 1) != 0 {
		t.Fatal("Col must return a copy")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(2, []float64{30, 60})
	if m.At(0, 0) != 1 || m.At(0, 2) != 30 || m.At(1, 2) != 60 {
		t.Fatalf("SetRow/SetCol wrong: %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tt := m.T()
	if r, c := tt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = (%d,%d)", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandomMatrix(5, 7, rng)
	if !m.T().T().Equal(m, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewFromData(1, 2, []float64{1, 2})
	b := NewFromData(1, 2, []float64{10, 20})
	a.AddMatrix(b)
	if a.At(0, 0) != 11 || a.At(0, 1) != 22 {
		t.Fatalf("AddMatrix wrong: %v", a)
	}
	a.SubMatrix(b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 2 {
		t.Fatalf("SubMatrix wrong: %v", a)
	}
	a.Scale(3)
	if a.At(0, 1) != 6 {
		t.Fatalf("Scale wrong: %v", a)
	}
}

func TestSelectRows(t *testing.T) {
	m := NewFromData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s := m.SelectRows([]int{2, 0, 2})
	want := NewFromData(3, 2, []float64{5, 6, 1, 2, 5, 6})
	if !s.Equal(want, 0) {
		t.Fatalf("SelectRows = %v, want %v", s, want)
	}
}

func TestSelectCols(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := m.SelectCols([]int{2, 1})
	want := NewFromData(2, 2, []float64{3, 2, 6, 5})
	if !s.Equal(want, 0) {
		t.Fatalf("SelectCols = %v, want %v", s, want)
	}
}

func TestSlice(t *testing.T) {
	m := NewFromData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := m.Slice(1, 3, 0, 2)
	want := NewFromData(2, 2, []float64{4, 5, 7, 8})
	if !s.Equal(want, 0) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromData(2, 2, []float64{3, 0, 0, 4})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-14) {
		t.Fatalf("‖m‖F = %v, want 5", m.FrobeniusNorm())
	}
	if New(0, 0).FrobeniusNorm() != 0 {
		t.Fatal("empty norm should be 0")
	}
}

func TestFrobeniusNormOverflowGuard(t *testing.T) {
	m := NewFromData(1, 2, []float64{1e200, 1e200})
	got := m.FrobeniusNorm()
	want := 1e200 * math.Sqrt(2)
	if math.IsInf(got, 0) || !almostEqual(got/want, 1, 1e-12) {
		t.Fatalf("overflow guard failed: got %v want %v", got, want)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewFromData(1, 3, []float64{-7, 2, 5})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", m.MaxAbs())
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewFromData(2, 2, []float64{1, 2, 2, 3})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix misreported")
	}
	a := NewFromData(2, 2, []float64{1, 2, 2.5, 3})
	if a.IsSymmetric(0.1) {
		t.Fatal("asymmetric matrix misreported")
	}
	if New(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

// Property: for random matrices, (A+B)ᵀ == Aᵀ+Bᵀ.
func TestTransposeAdditivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		a := RandomMatrix(rows, cols, r)
		b := RandomMatrix(rows, cols, r)
		left := a.Clone().AddMatrix(b).T()
		right := a.T().AddMatrix(b.T())
		return left.Equal(right, 1e-12)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
