// Package mat implements the dense linear algebra needed by the EigenMaps
// pipeline: matrix/vector arithmetic, Householder QR and least squares,
// symmetric eigendecomposition, singular values and condition numbers,
// Cholesky factorization, and block subspace iteration for extracting the
// leading eigenpairs of a snapshot covariance without forming it.
//
// Matrices are dense, row-major, float64. The package is self-contained
// (stdlib only) and deterministic: all randomized routines take an explicit
// *rand.Rand.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
//
// The zero value is an empty 0×0 matrix. Use New, NewFromData or the
// factory helpers to construct one.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, element (i,j) at data[i*cols+j]
}

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("mat: incompatible matrix shapes")

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// New returns a zero-filled r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, length r*c) in a Matrix without copying.
// The caller must not alias data afterwards unless aliasing is intended.
func NewFromData(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view of row i (no copy). Mutating the returned slice mutates
// the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// Data returns the underlying row-major slice (no copy).
func (m *Matrix) Data() []float64 { return m.data }

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMatrix adds b element-wise into m (m += b) and returns m.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	for i, v := range b.data {
		m.data[i] += v
	}
	return m
}

// SubMatrix subtracts b element-wise from m (m -= b) and returns m.
func (m *Matrix) SubMatrix(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	for i, v := range b.data {
		m.data[i] -= v
	}
	return m
}

// SelectRows returns a new matrix whose rows are m's rows at the given
// indices, in order. Indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// SelectCols returns a new matrix whose columns are m's columns at the given
// indices, in order.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := New(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return out
}

// Slice returns a copy of the sub-matrix rows [r0,r1) × cols [c0,c1).
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: slice [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Row(i)[c0:c1])
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	// Two-pass scaling to avoid overflow on large entries.
	var maxAbs float64
	for _, v := range m.data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range m.data {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var out float64
	for _, v := range m.data {
		if a := math.Abs(v); a > out {
			out = a
		}
	}
	return out
}

// Equal reports whether m and b have identical shape and every pair of
// elements differs by at most tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("mat.Matrix(%dx%d, ‖·‖F=%.4g)", m.rows, m.cols, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("mat.Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
