package mat

import (
	"errors"
	"math"
	"sort"
)

// Eigen holds a full eigendecomposition of a real symmetric matrix:
// A = V·diag(λ)·Vᵀ with orthonormal V. Eigenvalues are sorted descending,
// eigenvectors are the corresponding columns of V.
type Eigen struct {
	Values  []float64 // descending
	Vectors *Matrix   // n×n, column i pairs with Values[i]
}

// ErrNoConvergence reports that an iterative decomposition failed to converge.
var ErrNoConvergence = errors.New("mat: eigensolver failed to converge")

// SymEigen computes the eigendecomposition of symmetric a by Householder
// tridiagonalization followed by the implicit-shift QL algorithm
// (the classical tred2/tql2 pair). a is not modified.
//
// Symmetry is assumed, not checked; only the lower triangle feeds the result
// through the symmetrized copy made here.
func SymEigen(a *Matrix) (*Eigen, error) {
	n, c := a.Dims()
	if n != c {
		panic("mat: SymEigen requires a square matrix")
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: New(0, 0)}, nil
	}
	// Work on a symmetrized copy so tiny asymmetries don't bias the result.
	v := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	d := make([]float64, n) // diagonal of the tridiagonal form
	e := make([]float64, n) // sub-diagonal
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, err
	}
	// tql2 leaves eigenvalues ascending-ish but unsorted in general; sort
	// descending and permute columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool { return d[idx[p]] > d[idx[q]] })
	values := make([]float64, n)
	vectors := New(n, n)
	for k, i := range idx {
		values[k] = d[i]
		for r := 0; r < n; r++ {
			vectors.Set(r, k, v.At(r, i))
		}
	}
	return &Eigen{Values: values, Vectors: vectors}, nil
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form by
// Householder similarity transformations, accumulating the transform in v.
// On return d holds the diagonal and e the sub-diagonal (e[0] = 0).
func tred2(v *Matrix, d, e []float64) {
	n := v.Rows()
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		var scale, h float64
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply the similarity transformation to the remaining rows.
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) by the implicit
// QL method with Wilkinson shifts, accumulating eigenvectors into v.
func tql2(v *Matrix, d, e []float64) error {
	const maxIter = 64
	n := v.Rows()
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	var f, tst1 float64
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		// Find a small sub-diagonal element to split the problem.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= maxIter {
					return ErrNoConvergence
				}
				// Compute the implicit Wilkinson shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL sweep.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				var s, s2 float64
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate the rotation into the eigenvectors.
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// TopK returns the leading k eigenpairs (largest eigenvalues) as a K-column
// matrix of eigenvectors plus the eigenvalue slice.
func (eg *Eigen) TopK(k int) ([]float64, *Matrix) {
	n := eg.Vectors.Rows()
	if k > len(eg.Values) {
		k = len(eg.Values)
	}
	vals := CopyVec(eg.Values[:k])
	vecs := New(n, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			vecs.Set(i, j, eg.Vectors.At(i, j))
		}
	}
	return vals, vecs
}
