package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := RandomMatrix(8, 5, rng)
	f := NewQR(a)
	qr := Mul(f.Q(), f.R())
	if !qr.Equal(a, 1e-12) {
		t.Fatalf("Q·R != A, maxdiff=%v", qr.Clone().SubMatrix(a).MaxAbs())
	}
}

func TestQROrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandomMatrix(9, 4, rng)
	q := NewQR(a).Q()
	if !Gram(q).Equal(Identity(4), 1e-12) {
		t.Fatal("QᵀQ != I")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := NewQR(RandomMatrix(6, 6, rng)).R()
	for i := 1; i < 6; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSquareSystemExact(t *testing.T) {
	a := NewFromData(2, 2, []float64{2, 1, 1, 3})
	x, err := NewQR(a).Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Exact solution: x = [1, 3].
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(13))
	a := RandomMatrix(10, 4, rng)
	b := RandomMatrix(1, 10, rng).Row(0)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := SubVec(b, MulVec(a, x))
	proj := MulVecT(a, res)
	if NormInf(proj) > 1e-10 {
		t.Fatalf("Aᵀr = %v, want ~0", proj)
	}
}

func TestQRSolveRecoversPlantedSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := RandomMatrix(12, 5, rng)
	want := []float64{1, -2, 3, 0.5, -0.25}
	b := MulVec(a, want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQRSingularDetected(t *testing.T) {
	// Two identical columns: rank deficient.
	a := NewFromData(3, 2, []float64{1, 1, 2, 2, 3, 3})
	_, err := LeastSquares(a, []float64{1, 2, 3})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRRank(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	full := RandomMatrix(6, 4, rng)
	if r := NewQR(full).Rank(); r != 4 {
		t.Fatalf("full-rank matrix Rank = %d, want 4", r)
	}
	// Make column 3 a combination of columns 0 and 1.
	def := full.Clone()
	for i := 0; i < 6; i++ {
		def.Set(i, 3, 2*def.At(i, 0)-def.At(i, 1))
	}
	if r := NewQR(def).Rank(); r != 3 {
		t.Fatalf("deficient matrix Rank = %d, want 3", r)
	}
}

func TestQRRequiresTallMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	NewQR(New(2, 3))
}

func TestQTVecPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := RandomMatrix(7, 3, rng)
	b := RandomMatrix(1, 7, rng).Row(0)
	y := NewQR(a).QTVec(b)
	// Householder application of Qᵀ (full, implicit) is orthogonal: norms match.
	if !almostEqual(Norm2(y), Norm2(b), 1e-12) {
		t.Fatalf("‖Qᵀb‖ = %v != ‖b‖ = %v", Norm2(y), Norm2(b))
	}
}

func TestOrthonormalizeSpansSameSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := RandomMatrix(8, 3, rng)
	q := Orthonormalize(a)
	// Each column of A must be reproduced by projecting onto span(Q).
	proj := Mul(q, MulTA(q, a)) // Q Qᵀ A
	if !proj.Equal(a, 1e-11) {
		t.Fatal("span(Q) does not contain columns of A")
	}
}

// Property: least-squares solution is no worse than any random candidate.
func TestLeastSquaresOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(8)
		n := 1 + r.Intn(4)
		if n > m {
			n = m
		}
		a := RandomMatrix(m, n, r)
		b := RandomMatrix(1, m, r).Row(0)
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient draws are skipped
		}
		opt := Norm2(SubVec(b, MulVec(a, x)))
		for trial := 0; trial < 5; trial++ {
			cand := RandomMatrix(1, n, r).Row(0)
			if Norm2(SubVec(b, MulVec(a, cand))) < opt-1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Fatal(err)
	}
}

// Property: |det-ish| invariance — product of |R_ii| equals sqrt(det(AᵀA)).
func TestQRDiagonalMagnitudeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := RandomMatrix(5, 5, rng)
	f := NewQR(a)
	var prod float64 = 1
	for i := 0; i < 5; i++ {
		prod *= math.Abs(f.R().At(i, i))
	}
	// det(AᵀA) = det(RᵀR) = prod².
	g := Gram(a)
	eg, err := SymEigen(g)
	if err != nil {
		t.Fatal(err)
	}
	det := 1.0
	for _, v := range eg.Values {
		det *= v
	}
	if !almostEqual(prod*prod/det, 1, 1e-8) {
		t.Fatalf("ΠR_ii² = %v, det(AᵀA) = %v", prod*prod, det)
	}
}
