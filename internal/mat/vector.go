package mat

import "math"

// Vector helpers. Vectors are plain []float64 throughout the repository;
// these free functions implement the handful of BLAS-1 style operations the
// pipeline needs.

// Dot returns the inner product of a and b. Panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v []float64) float64 {
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var out float64
	for _, x := range v {
		if a := math.Abs(x); a > out {
			out = a
		}
	}
	return out
}

// AXPY computes y += a*x in place. Panics if lengths differ.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddVec returns a+b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a-b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// CopyVec returns a copy of v.
func CopyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Normalize scales v to unit Euclidean norm in place and returns the original
// norm. A zero vector is left untouched and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, v)
	return n
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MinMax returns the smallest and largest elements of v.
// Panics on empty input.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("mat: MinMax of empty vector")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
