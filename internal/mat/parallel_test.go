package mat

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMulParMatchesSerialSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := RandomMatrix(7, 9, rng)
	b := RandomMatrix(9, 5, rng)
	if !MulPar(a, b).Equal(Mul(a, b), 1e-12) {
		t.Fatal("MulPar (serial path) mismatch")
	}
}

func TestMulParMatchesSerialLarge(t *testing.T) {
	// Force the parallel path: rows·inner·cols above the threshold.
	rng := rand.New(rand.NewSource(81))
	a := RandomMatrix(220, 200, rng)
	b := RandomMatrix(200, 150, rng)
	if !MulPar(a, b).Equal(Mul(a, b), 1e-10) {
		t.Fatal("MulPar (parallel path) mismatch")
	}
}

func TestMulParShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulPar(New(2, 3), New(2, 3))
}

func TestMulTAParMatchesSerialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := RandomMatrix(300, 120, rng)
	b := RandomMatrix(300, 130, rng)
	if !MulTAPar(a, b).Equal(MulTA(a, b), 1e-10) {
		t.Fatal("MulTAPar mismatch")
	}
}

func TestMulTAParSmallPath(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := RandomMatrix(6, 4, rng)
	b := RandomMatrix(6, 3, rng)
	if !MulTAPar(a, b).Equal(MulTA(a, b), 1e-12) {
		t.Fatal("MulTAPar small-path mismatch")
	}
}

func TestRowGramParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	small := RandomMatrix(8, 10, rng)
	if !RowGramPar(small).Equal(RowGram(small), 1e-12) {
		t.Fatal("RowGramPar small-path mismatch")
	}
	big := RandomMatrix(260, 180, rng)
	got := RowGramPar(big)
	if !got.Equal(RowGram(big), 1e-10) {
		t.Fatal("RowGramPar parallel-path mismatch")
	}
	if !got.IsSymmetric(0) {
		t.Fatal("RowGramPar result not symmetric")
	}
}

func TestMulTAWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	a := RandomMatrix(300, 120, rng)
	b := RandomMatrix(300, 130, rng)
	want := MulTA(a, b)
	for _, workers := range []int{0, 1, 2, 7} {
		if !MulTAWorkers(a, b, workers).Equal(want, 0) {
			t.Fatalf("MulTAWorkers(%d) not bit-identical to serial", workers)
		}
	}
}

func TestRowGramWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	a := RandomMatrix(260, 180, rng)
	want := RowGram(a)
	for _, workers := range []int{0, 1, 2, 7} {
		got := RowGramWorkers(a, workers)
		if !got.Equal(want, 0) {
			t.Fatalf("RowGramWorkers(%d) not bit-identical to serial", workers)
		}
		if !got.IsSymmetric(0) {
			t.Fatalf("RowGramWorkers(%d) result not symmetric", workers)
		}
	}
}

func TestSnapshotPODWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	x, _ := syntheticData(90, 30, []float64{60, 12, 3, 0.7}, rng)
	vals, vecs, err := SnapshotPOD(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		v, e, err := SnapshotPODWorkers(x, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if v[i] != vals[i] {
				t.Fatalf("workers=%d: eigenvalue %d differs", workers, i)
			}
		}
		if !e.Equal(vecs, 0) {
			t.Fatalf("workers=%d: eigenvectors differ from sequential", workers)
		}
	}
}

func TestSnapshotPODOrthonormalNearRank(t *testing.T) {
	// The MGS re-orthonormalization in the lift must keep the block
	// orthonormal even with a fast-decaying spectrum (λ ratio 1e8).
	rng := rand.New(rand.NewSource(89))
	x, _ := syntheticData(50, 40, []float64{1e4, 1, 1e-2, 1e-4}, rng)
	_, vecs, err := SnapshotPOD(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(vecs).Equal(Identity(4), 1e-10) {
		t.Fatal("lifted block lost orthonormality")
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	seen := make([]bool, 103)
	parallelRows(len(seen), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i] = true // ranges are disjoint, so no race
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("row %d not visited", i)
		}
	}
	// Degenerate sizes.
	parallelRows(0, func(lo, hi int) { t.Fatal("fn called for n=0") })
	called := false
	parallelRows(1, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("bad range [%d,%d)", lo, hi)
		}
		called = true
	})
	if !called {
		t.Fatal("fn not called for n=1")
	}
}

func TestParallelChunksCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 37
		hit := make([]int32, n)
		ParallelChunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	ParallelChunks(0, 4, func(lo, hi int) { t.Fatal("fn must not run for n=0") })
}
