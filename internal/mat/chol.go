package mat

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive-definite matrix a.
// It returns ErrSingular if a is not positive definite to working precision.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		panic("mat: Cholesky requires a square matrix")
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		lrow := l.Row(j)
		for k := 0; k < j; k++ {
			var s float64
			krow := l.Row(k)
			for i := 0; i < k; i++ {
				s += krow[i] * lrow[i]
			}
			s = (a.At(j, k) - s) / krow[k]
			lrow[k] = s
			d += s * s
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		lrow[j] = math.Sqrt(d)
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (a copy).
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve returns x with A·x = b via forward/back substitution.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows()
	if len(b) != n {
		panic(ErrShape)
	}
	x := CopyVec(b)
	// L y = b
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	// Lᵀ x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// SolveSPD is a convenience wrapper: factor a and solve a·x = b.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b), nil
}
