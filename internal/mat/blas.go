package mat

// BLAS-2/3 style products. These are straightforward cache-friendly triple
// loops; on the problem sizes in this repository (N ≈ 3360, K ≤ 64) they are
// fast enough that no blocking is needed.

// MulVec returns m·x.
func MulVec(m *Matrix, x []float64) []float64 {
	if len(x) != m.cols {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ·x without materializing the transpose.
func MulVecT(m *Matrix, x []float64) []float64 {
	if len(x) != m.rows {
		panic(ErrShape)
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		AXPY(x[i], m.Row(i), out)
	}
	return out
}

// Mul returns a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			AXPY(av, b.Row(k), orow)
		}
	}
	return out
}

// MulTA returns aᵀ·b without materializing aᵀ.
func MulTA(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic(ErrShape)
	}
	out := New(a.cols, b.cols)
	for r := 0; r < a.rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			AXPY(av, brow, out.Row(i))
		}
	}
	return out
}

// MulTB returns a·bᵀ without materializing bᵀ.
func MulTB(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(ErrShape)
	}
	out := New(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// Gram returns aᵀ·a (the column Gram matrix), exploiting symmetry.
func Gram(a *Matrix) *Matrix {
	out := New(a.cols, a.cols)
	for r := 0; r < a.rows; r++ {
		row := a.Row(r)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.Row(i)
			for j := i; j < len(row); j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	// Mirror the upper triangle into the lower.
	for i := 0; i < out.rows; i++ {
		for j := i + 1; j < out.cols; j++ {
			out.data[j*out.cols+i] = out.data[i*out.cols+j]
		}
	}
	return out
}

// RowGram returns a·aᵀ (the row Gram matrix), exploiting symmetry.
func RowGram(a *Matrix) *Matrix {
	out := New(a.rows, a.rows)
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		for j := i; j < a.rows; j++ {
			v := Dot(ri, a.Row(j))
			out.data[i*out.cols+j] = v
			out.data[j*out.cols+i] = v
		}
	}
	return out
}
