package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	eg, err := SymEigen(Diag([]float64{3, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if !almostEqual(eg.Values[i], v, 1e-12) {
			t.Fatalf("values = %v, want %v", eg.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewFromData(2, 2, []float64{2, 1, 1, 2})
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(eg.Values[0], 3, 1e-12) || !almostEqual(eg.Values[1], 1, 1e-12) {
		t.Fatalf("values = %v, want [3 1]", eg.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v0 := eg.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), math.Sqrt2/2, 1e-12) || !almostEqual(v0[0], v0[1], 1e-12) {
		t.Fatalf("v0 = %v", v0)
	}
}

func TestSymEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := RandomSymmetric(8, rng)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// A = V Λ Vᵀ
	rec := Mul(Mul(eg.Vectors, Diag(eg.Values)), eg.Vectors.T())
	if !rec.Equal(a, 1e-10) {
		t.Fatalf("VΛVᵀ != A, maxdiff = %v", rec.Clone().SubMatrix(a).MaxAbs())
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := RandomSymmetric(10, rng)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(eg.Vectors).Equal(Identity(10), 1e-10) {
		t.Fatal("VᵀV != I")
	}
}

func TestSymEigenValuesSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	eg, err := SymEigen(RandomSymmetric(12, rng))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(eg.Values))) {
		t.Fatalf("values not descending: %v", eg.Values)
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := RandomSymmetric(9, rng)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	var trace, sum float64
	for i := 0; i < 9; i++ {
		trace += a.At(i, i)
	}
	for _, v := range eg.Values {
		sum += v
	}
	if !almostEqual(trace, sum, 1e-10) {
		t.Fatalf("trace %v != Σλ %v", trace, sum)
	}
}

func TestSymEigenSPDPositiveValues(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	eg, err := SymEigen(RandomSPD(7, rng))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eg.Values {
		if v <= 0 {
			t.Fatalf("SPD matrix produced non-positive eigenvalue %v", v)
		}
	}
}

func TestSymEigenEmpty(t *testing.T) {
	eg, err := SymEigen(New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(eg.Values) != 0 {
		t.Fatal("empty matrix should yield no eigenvalues")
	}
}

func TestSymEigenNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SymEigen(New(2, 3)) //nolint:errcheck
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := RandomSymmetric(6, rng)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs := eg.TopK(3)
	if len(vals) != 3 || vecs.Cols() != 3 || vecs.Rows() != 6 {
		t.Fatalf("TopK shapes wrong: %d values, %v vectors", len(vals), vecs)
	}
	for j := 0; j < 3; j++ {
		// A v = λ v for each retained pair.
		av := MulVec(a, vecs.Col(j))
		for i := range av {
			if !almostEqual(av[i], vals[j]*vecs.At(i, j), 1e-9) {
				t.Fatalf("pair %d violates Av=λv", j)
			}
		}
	}
	// Requesting more than n clamps.
	vals, _ = eg.TopK(100)
	if len(vals) != 6 {
		t.Fatalf("TopK clamp failed: %d", len(vals))
	}
}

// Property: every eigenpair satisfies A·v = λ·v on random symmetric matrices.
func TestSymEigenPairsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		a := RandomSymmetric(n, r)
		eg, err := SymEigen(a)
		if err != nil {
			return false
		}
		scale := a.MaxAbs() + 1
		for j := 0; j < n; j++ {
			v := eg.Vectors.Col(j)
			av := MulVec(a, v)
			for i := range av {
				if math.Abs(av[i]-eg.Values[j]*v[i]) > 1e-9*scale*float64(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(26))}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalues of A+cI are eigenvalues of A shifted by c.
func TestSymEigenShiftProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		c := r.NormFloat64() * 3
		a := RandomSymmetric(n, r)
		shifted := a.Clone()
		for i := 0; i < n; i++ {
			shifted.Add(i, i, c)
		}
		e1, err1 := SymEigen(a)
		e2, err2 := SymEigen(shifted)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range e1.Values {
			if math.Abs(e1.Values[i]+c-e2.Values[i]) > 1e-9*(math.Abs(c)+a.MaxAbs()+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(27))}); err != nil {
		t.Fatal(err)
	}
}
