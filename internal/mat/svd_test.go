package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingularValuesDiagonal(t *testing.T) {
	a := Diag([]float64{-4, 2, 1})
	sv, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 2, 1}
	for i := range want {
		if !almostEqual(sv[i], want[i], 1e-9) {
			t.Fatalf("sv = %v, want %v", sv, want)
		}
	}
}

func TestSingularValuesOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	q := RandomOrthonormal(8, 4, rng)
	sv, err := SingularValues(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sv {
		if !almostEqual(s, 1, 1e-8) {
			t.Fatalf("orthonormal matrix singular values = %v, want all 1", sv)
		}
	}
}

func TestSingularValuesWideMatchesTall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := RandomMatrix(6, 3, rng)
	s1, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SingularValues(a.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if !almostEqual(s1[i], s2[i], 1e-9) {
			t.Fatalf("σ(A) = %v, σ(Aᵀ) = %v", s1, s2)
		}
	}
}

func TestCondIdentity(t *testing.T) {
	c, err := Cond(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-8) {
		t.Fatalf("κ(I) = %v, want 1", c)
	}
}

func TestCondSingularIsInf(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 1, 1, 1})
	c, err := Cond(a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Fatalf("κ(singular) = %v, want +Inf", c)
	}
}

func TestCondDiag(t *testing.T) {
	c, err := Cond(Diag([]float64{10, 5, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 5, 1e-8) {
		t.Fatalf("κ = %v, want 5", c)
	}
}

func TestRankValues(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := RandomMatrix(6, 4, rng)
	r, err := Rank(a)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("rank(random 6x4) = %d, want 4", r)
	}
	// Rank-1 outer product.
	u := RandomMatrix(6, 1, rng)
	v := RandomMatrix(1, 4, rng)
	r, err = Rank(Mul(u, v))
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("rank(uvᵀ) = %d, want 1", r)
	}
}

func TestSVDThinReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := RandomMatrix(7, 4, rng)
	u, s, v, err := SVDThin(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := Mul(Mul(u, Diag(s)), v.T())
	if !rec.Equal(a, 1e-7) {
		t.Fatalf("UΣVᵀ != A, maxdiff = %v", rec.Clone().SubMatrix(a).MaxAbs())
	}
	if !Gram(u).Equal(Identity(4), 1e-7) {
		t.Fatal("UᵀU != I")
	}
	if !Gram(v).Equal(Identity(4), 1e-8) {
		t.Fatal("VᵀV != I")
	}
}

func TestSVDThinRankDeficient(t *testing.T) {
	// Rank-2 matrix: third column is the sum of the first two.
	rng := rand.New(rand.NewSource(34))
	a := RandomMatrix(6, 3, rng)
	for i := 0; i < 6; i++ {
		a.Set(i, 2, a.At(i, 0)+a.At(i, 1))
	}
	u, s, v, err := SVDThin(a)
	if err != nil {
		t.Fatal(err)
	}
	if s[2] > 1e-6*s[0] {
		t.Fatalf("expected tiny σ₃, got %v", s)
	}
	rec := Mul(Mul(u, Diag(s)), v.T())
	if !rec.Equal(a, 1e-6) {
		t.Fatal("rank-deficient reconstruction failed")
	}
	if !Gram(u).Equal(Identity(3), 1e-7) {
		t.Fatal("U not orthonormal after degenerate completion")
	}
}

// Property: Frobenius norm equals sqrt of sum of squared singular values.
func TestSVDNormConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(7), 1+r.Intn(7)
		a := RandomMatrix(m, n, r)
		sv, err := SingularValues(a)
		if err != nil {
			return false
		}
		var s float64
		for _, x := range sv {
			s += x * x
		}
		fn := a.FrobeniusNorm()
		return math.Abs(math.Sqrt(s)-fn) < 1e-8*(fn+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(35))}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling a matrix scales all singular values, leaving κ unchanged.
func TestCondScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := RandomMatrix(n+2, n, r)
		c1, err1 := Cond(a)
		c2, err2 := Cond(a.Clone().Scale(3.7))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c1-c2) < 1e-6*c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(36))}); err != nil {
		t.Fatal(err)
	}
}
