package mat

import (
	"runtime"
	"sync"
)

// parallelThreshold is the approximate flop count below which the products
// stay single-threaded (goroutine fan-out costs more than it saves).
const parallelThreshold = 1 << 22

// parallelRows splits [0, n) into contiguous chunks and runs fn on each from
// its own goroutine. fn must only write to rows in its own range.
func parallelRows(n int, fn func(lo, hi int)) {
	ParallelChunks(n, 0, fn)
}

// ParallelChunks splits [0, n) into contiguous chunks and runs fn on each
// from its own goroutine, blocking until all complete. workers caps the
// goroutine count (0 or negative means runtime.NumCPU()); it is further
// clamped to n. fn must only touch indices in its own [lo, hi) range. With a
// single worker fn runs on the calling goroutine with no synchronization
// overhead.
func ParallelChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulPar returns a·b, computing row blocks of the result concurrently when
// the product is large enough to amortize the goroutines.
func MulPar(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	if a.rows*a.cols*b.cols < parallelThreshold {
		return Mul(a, b)
	}
	out := New(a.rows, b.cols)
	parallelRows(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				AXPY(av, b.Row(k), orow)
			}
		}
	})
	return out
}

// MulTAPar returns aᵀ·b concurrently. Unlike MulTA's row-streaming order, it
// parallelizes over *output* rows (columns of a), so each goroutine owns its
// output slice.
func MulTAPar(a, b *Matrix) *Matrix {
	return MulTAWorkers(a, b, 0)
}

// MulTAWorkers returns aᵀ·b like MulTAPar but with an explicit cap on the
// worker count (0 or negative = runtime.NumCPU()). Small products stay
// single-threaded regardless of the cap.
func MulTAWorkers(a, b *Matrix, workers int) *Matrix {
	if a.rows != b.rows {
		panic(ErrShape)
	}
	if workers == 1 || a.rows*a.cols*b.cols < parallelThreshold {
		return MulTA(a, b)
	}
	out := New(a.cols, b.cols)
	ParallelChunks(a.cols, workers, func(lo, hi int) {
		for r := 0; r < a.rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := lo; i < hi; i++ {
				if av := arow[i]; av != 0 {
					AXPY(av, brow, out.Row(i))
				}
			}
		}
	})
	return out
}

// RowGramPar returns a·aᵀ concurrently (see RowGram).
func RowGramPar(a *Matrix) *Matrix {
	return RowGramWorkers(a, 0)
}

// RowGramWorkers returns a·aᵀ like RowGramPar but with an explicit cap on the
// worker count (0 or negative = runtime.NumCPU()). The upper triangle is
// accumulated in parallel row blocks; small Grams stay single-threaded.
//
// The row blocks are uneven in cost (row i touches rows-i dot products), but
// the snapshot counts this feeds (T ≤ a few thousand) split finely enough
// across NumCPU that the imbalance is noise next to the O(T²·N) total.
func RowGramWorkers(a *Matrix, workers int) *Matrix {
	if workers == 1 || a.rows*a.rows*a.cols/2 < parallelThreshold {
		return RowGram(a)
	}
	out := New(a.rows, a.rows)
	ParallelChunks(a.rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := a.Row(i)
			for j := i; j < a.rows; j++ {
				out.data[i*out.cols+j] = Dot(ri, a.Row(j))
			}
		}
	})
	// Mirror the upper triangle (sequential; cheap).
	for i := 0; i < out.rows; i++ {
		for j := i + 1; j < out.cols; j++ {
			out.data[j*out.cols+i] = out.data[i*out.cols+j]
		}
	}
	return out
}
