package mat

// Affine kernels for the precomputed reconstruction operator: the serving
// hot path is dst = bias + A·x with A the N×M operator, applied either to a
// single reading vector (Estimate) or to a whole batch of them
// (EstimateBatch / the daemon's coalesced GEMM). Both kernels are
// allocation-free and blocked for instruction-level parallelism: the naive
// single-accumulator loop serializes on the floating-point add chain, while
// four independent accumulators keep the FMA pipeline full.

// MulVecBiasInto writes dst = bias + a·x. dst must have length a.Rows(),
// bias length a.Rows(), x length a.Cols(). dst must not alias bias or x.
//
// Rows are processed four at a time with independent accumulators, so the
// four dot products overlap in the floating-point pipeline instead of
// serializing on one add chain. Within a row the accumulation order is plain
// left-to-right, identical to Dot, so results are deterministic.
func MulVecBiasInto(dst, bias []float64, a *Matrix, x []float64) {
	if len(x) != a.cols || len(dst) != a.rows || len(bias) != a.rows {
		panic(ErrShape)
	}
	n := a.cols
	i := 0
	for ; i+4 <= a.rows; i += 4 {
		base := i * n
		r0 := a.data[base+0*n : base+1*n]
		r1 := a.data[base+1*n : base+2*n]
		r2 := a.data[base+2*n : base+3*n]
		r3 := a.data[base+3*n : base+4*n]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i+0] = bias[i+0] + s0
		dst[i+1] = bias[i+1] + s1
		dst[i+2] = bias[i+2] + s2
		dst[i+3] = bias[i+3] + s3
	}
	for ; i < a.rows; i++ {
		row := a.data[i*n : (i+1)*n]
		var s float64
		for j, xv := range x {
			s += row[j] * xv
		}
		dst[i] = bias[i] + s
	}
}

// MulVecBiasBatchInto applies dst[t] = bias + a·xs[t] for every snapshot t.
// Each dst[t] must have length a.Rows() and each xs[t] length a.Cols();
// len(dst) must equal len(xs). Snapshots are processed four at a time so
// each operator row is loaded from memory once per block of four — the
// blocked-GEMM form of the serving path. Per-snapshot results are
// bit-identical to MulVecBiasInto on the same inputs: every dot product
// accumulates left-to-right in its own register.
func MulVecBiasBatchInto(dst [][]float64, bias []float64, a *Matrix, xs [][]float64) {
	if len(dst) != len(xs) {
		panic(ErrShape)
	}
	n := a.cols
	for _, x := range xs {
		if len(x) != n {
			panic(ErrShape)
		}
	}
	for _, d := range dst {
		if len(d) != a.rows || len(bias) != a.rows {
			panic(ErrShape)
		}
	}
	t := 0
	for ; t+4 <= len(xs); t += 4 {
		x0, x1, x2, x3 := xs[t+0], xs[t+1], xs[t+2], xs[t+3]
		d0, d1, d2, d3 := dst[t+0], dst[t+1], dst[t+2], dst[t+3]
		for i := 0; i < a.rows; i++ {
			row := a.data[i*n : (i+1)*n]
			var s0, s1, s2, s3 float64
			for j, rv := range row {
				s0 += rv * x0[j]
				s1 += rv * x1[j]
				s2 += rv * x2[j]
				s3 += rv * x3[j]
			}
			b := bias[i]
			d0[i] = b + s0
			d1[i] = b + s1
			d2[i] = b + s2
			d3[i] = b + s3
		}
	}
	for ; t < len(xs); t++ {
		MulVecBiasInto(dst[t], bias, a, xs[t])
	}
}
