package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// SubspaceOptions tune TopCovarianceEigen.
type SubspaceOptions struct {
	// Oversample extra basis columns carried during iteration beyond the
	// requested K; improves convergence of the trailing requested pairs.
	// Default 16.
	Oversample int
	// MaxIter bounds the number of block power iterations. Default 300.
	MaxIter int
	// Tol is the relative eigenvalue-change convergence threshold on the
	// requested K pairs. Default 1e-10.
	Tol float64
	// Rand seeds the starting block. Required.
	Rand *rand.Rand
}

func (o *SubspaceOptions) defaults() {
	if o.Oversample <= 0 {
		o.Oversample = 16
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
}

// TopCovarianceEigen returns the k leading eigenpairs of the sample
// covariance C = XᵀX/T of the T×N data matrix x (rows are observations,
// assumed centered), without ever forming C. It uses block orthogonal
// iteration with a final Rayleigh–Ritz rotation.
//
// Eigenvalues are returned descending; eigenvectors are the columns of the
// returned N×k matrix. Each eigenvector's sign is normalized so its
// largest-magnitude entry is positive, making results reproducible across
// random starts.
func TopCovarianceEigen(x *Matrix, k int, opts SubspaceOptions) ([]float64, *Matrix, error) {
	opts.defaults()
	if opts.Rand == nil {
		panic("mat: SubspaceOptions.Rand is required")
	}
	t, n := x.Dims()
	if t == 0 || n == 0 {
		return nil, New(n, 0), nil
	}
	if k > n {
		k = n
	}
	if k > t {
		// Covariance rank is at most T; extra pairs would be spurious.
		k = t
	}
	if k <= 0 {
		return nil, New(n, 0), nil
	}
	p := k + opts.Oversample
	if p > n {
		p = n
	}
	if p > t {
		p = t
	}
	if p < k {
		p = k
	}

	applyCov := func(v *Matrix) *Matrix {
		xv := MulPar(x, v)   // T×p
		w := MulTAPar(x, xv) // N×p
		return w.Scale(1 / float64(t))
	}

	v := RandomMatrix(n, p, opts.Rand)
	v = Orthonormalize(v)
	prev := make([]float64, k)
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		w := applyCov(v)
		// Rayleigh–Ritz on the current subspace: H = VᵀW is VᵀCV.
		h := MulTA(v, w)
		eg, err := SymEigen(h)
		if err != nil {
			return nil, nil, fmt.Errorf("subspace iteration: %w", err)
		}
		// Convergence on the requested top-k eigenvalues.
		maxRel := 0.0
		for i := 0; i < k; i++ {
			den := math.Abs(eg.Values[i])
			if den < 1e-300 {
				den = 1e-300
			}
			rel := math.Abs(eg.Values[i]-prev[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
			prev[i] = eg.Values[i]
		}
		v = Orthonormalize(w)
		if maxRel < opts.Tol {
			break
		}
		// Hitting MaxIter is not fatal: the final Rayleigh–Ritz step below
		// still yields the best approximation found, and thermal spectra
		// decay fast enough that the requested pairs converge long before
		// MaxIter in practice.
	}
	// Final Rayleigh–Ritz rotation to align columns with eigenvectors.
	w := applyCov(v)
	h := MulTA(v, w)
	eg, err := SymEigen(h)
	if err != nil {
		return nil, nil, fmt.Errorf("subspace iteration (final rotation): %w", err)
	}
	ritz := Mul(v, eg.Vectors) // N×p, columns ordered by descending eigenvalue
	vals := make([]float64, k)
	vecs := New(n, k)
	for j := 0; j < k; j++ {
		vals[j] = eg.Values[j]
		if vals[j] < 0 {
			vals[j] = 0
		}
		for i := 0; i < n; i++ {
			vecs.Set(i, j, ritz.At(i, j))
		}
	}
	normalizeSigns(vecs)
	return vals, vecs, nil
}

// SnapshotPOD computes the same leading eigenpairs by the classical "method
// of snapshots": eigendecompose the T×T row Gram matrix XXᵀ/T and lift the
// eigenvectors back through Xᵀ. Exact (up to the dense eigensolver) and
// O(N·T² + T³) — the cheap side of the duality whenever T < N. Equivalent to
// SnapshotPODWorkers with a single worker.
func SnapshotPOD(x *Matrix, k int) ([]float64, *Matrix, error) {
	return SnapshotPODWorkers(x, k, 1)
}

// SnapshotPODWorkers is SnapshotPOD with the two O(N·T²)-class stages — the
// T×T Gram accumulation and the lift of the eigenvector block back through
// Xᵀ — fanned out over ParallelChunks with the given worker cap (0 or
// negative = runtime.NumCPU()).
//
// The lift recovers the covariance eigenvectors as the columns of
// V = Xᵀ·U·Λ^(−1/2)·T^(−1/2) (U the Gram eigenvectors), computed as one
// blocked product instead of K matrix-vector passes, then re-orthonormalized
// by a modified Gram–Schmidt sweep: the lift amplifies roundoff by 1/√λ, and
// downstream projection code (Approximate, recon) assumes an orthonormal
// block. Columns lifted from zero eigenvalues are left zero; callers
// requesting k beyond the data rank can detect the padding via the zero
// eigenvalue.
func SnapshotPODWorkers(x *Matrix, k, workers int) ([]float64, *Matrix, error) {
	t, n := x.Dims()
	if k > t {
		k = t
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil, New(n, 0), nil
	}
	g := RowGramWorkers(x, workers).Scale(1 / float64(t)) // T×T
	eg, err := SymEigen(g)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot POD: %w", err)
	}
	vals := make([]float64, k)
	for j := range vals {
		if lam := eg.Values[j]; lam > 0 {
			vals[j] = lam
		}
	}
	// Blocked lift: Xᵀ·W_K in one parallel product, then per-column
	// normalization with MGS against the previous (finalized) columns,
	// cached as slices so the O(k²) projections don't re-copy them.
	_, wk := eg.TopK(k)
	vecs := MulTAWorkers(x, wk, workers) // N×k
	final := make([][]float64, k)
	for j := 0; j < k; j++ {
		u := vecs.Col(j)
		for p := 0; p < j; p++ {
			if vals[p] == 0 {
				continue
			}
			AXPY(-Dot(final[p], u), final[p], u)
		}
		if vals[j] == 0 || Normalize(u) == 0 {
			u = make([]float64, n) // zero padding beyond the data rank
			vals[j] = 0
		}
		final[j] = u
		vecs.SetCol(j, u)
	}
	normalizeSigns(vecs)
	return vals, vecs, nil
}

// normalizeSigns flips each column so its largest-magnitude element is
// positive, resolving the inherent sign ambiguity of eigenvectors.
func normalizeSigns(v *Matrix) {
	n, k := v.Dims()
	for j := 0; j < k; j++ {
		best, bestAbs := 0.0, 0.0
		for i := 0; i < n; i++ {
			if a := math.Abs(v.At(i, j)); a > bestAbs {
				bestAbs = a
				best = v.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < n; i++ {
				v.Set(i, j, -v.At(i, j))
			}
		}
	}
}
