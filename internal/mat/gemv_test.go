package mat

import (
	"math/rand"
	"testing"
)

// naiveBiasMulVec is the reference implementation the blocked kernels must
// match bit-for-bit (same left-to-right accumulation order per row).
func naiveBiasMulVec(bias []float64, a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows())
	for i := 0; i < a.Rows(); i++ {
		s := 0.0
		for j, v := range a.Row(i) {
			s += v * x[j]
		}
		out[i] = bias[i] + s
	}
	return out
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMulVecBiasIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Row counts straddle the 4-row blocking boundary; col counts cover
	// tiny and serving-realistic operator widths.
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 17, 528} {
		for _, cols := range []int{1, 3, 8, 16} {
			a := NewFromData(rows, cols, randVec(rng, rows*cols))
			x := randVec(rng, cols)
			bias := randVec(rng, rows)
			want := naiveBiasMulVec(bias, a, x)
			got := make([]float64, rows)
			MulVecBiasInto(got, bias, a, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rows=%d cols=%d: dst[%d] = %v, want %v", rows, cols, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulVecBiasBatchIntoMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewFromData(31, 8, randVec(rng, 31*8))
	bias := randVec(rng, 31)
	// Batch sizes straddle the 4-snapshot blocking boundary.
	for _, batch := range []int{1, 2, 4, 5, 9, 16} {
		xs := make([][]float64, batch)
		dst := make([][]float64, batch)
		for t2 := range xs {
			xs[t2] = randVec(rng, 8)
			dst[t2] = make([]float64, 31)
		}
		MulVecBiasBatchInto(dst, bias, a, xs)
		for t2 := range xs {
			single := make([]float64, 31)
			MulVecBiasInto(single, bias, a, xs[t2])
			for i := range single {
				if dst[t2][i] != single[i] {
					t.Fatalf("batch=%d: snapshot %d cell %d = %v, want %v", batch, t2, i, dst[t2][i], single[i])
				}
			}
		}
	}
}

func TestMulVecBiasIntoPanicsOnShape(t *testing.T) {
	a := New(4, 3)
	ok := make([]float64, 4)
	for _, tc := range []struct {
		name         string
		dst, bias, x []float64
	}{
		{"short dst", make([]float64, 3), ok, make([]float64, 3)},
		{"short bias", ok, make([]float64, 3), make([]float64, 3)},
		{"short x", ok, ok, make([]float64, 2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			MulVecBiasInto(tc.dst, tc.bias, a, tc.x)
		}()
	}
}
