package mat

import "math/rand"

// RandomMatrix returns an r×c matrix of standard normal entries drawn from
// rng.
func RandomMatrix(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// RandomOrthonormal returns an n×k matrix with orthonormal columns spanning a
// uniformly random subspace (thin Q of a Gaussian matrix).
func RandomOrthonormal(n, k int, rng *rand.Rand) *Matrix {
	if k > n {
		panic("mat: RandomOrthonormal requires k <= n")
	}
	return Orthonormalize(RandomMatrix(n, k, rng))
}

// RandomSPD returns a random symmetric positive-definite n×n matrix
// A = BᵀB + εI, useful in tests.
func RandomSPD(n int, rng *rand.Rand) *Matrix {
	b := RandomMatrix(n, n, rng)
	a := Gram(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.5)
	}
	return a
}

// RandomSymmetric returns a random symmetric n×n matrix with entries drawn
// from a standard normal (symmetrized).
func RandomSymmetric(n int, rng *rand.Rand) *Matrix {
	a := RandomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (a.At(i, j) + a.At(j, i))
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}
