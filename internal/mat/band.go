package mat

import (
	"fmt"
	"math"
)

// SymBand is a symmetric banded matrix of order n with bandwidth bw (number
// of sub-diagonals): A[i][j] may be non-zero only when |i−j| ≤ bw. Only the
// lower triangle is stored, row-major with stride bw+1: element (i, j) with
// i−bw ≤ j ≤ i lives at data[i·(bw+1) + (j−i+bw)]. Entries whose column
// index would be negative are padding and stay zero.
//
// This is the assembly format for BandCholesky: the RC thermal model's
// backward-Euler matrix has bandwidth ≈ 2·H under an interleaved ordering of
// the die/spreader layers, so banded storage keeps the O(n·bw²) factor and
// O(n·bw) solves far below their dense O(n³)/O(n²) counterparts.
type SymBand struct {
	n, bw int
	data  []float64
}

// NewSymBand returns a zero n×n symmetric band matrix with bw sub-diagonals.
// bw is clamped to n−1 (a wider band has no representable entries).
func NewSymBand(n, bw int) *SymBand {
	if n <= 0 || bw < 0 {
		panic(fmt.Sprintf("mat: invalid band shape n=%d bw=%d", n, bw))
	}
	if bw > n-1 {
		bw = n - 1
	}
	return &SymBand{n: n, bw: bw, data: make([]float64, n*(bw+1))}
}

// N returns the matrix order.
func (a *SymBand) N() int { return a.n }

// Bandwidth returns the number of stored sub-diagonals.
func (a *SymBand) Bandwidth() int { return a.bw }

// At returns element (i, j), exploiting symmetry; entries outside the band
// are zero.
func (a *SymBand) At(i, j int) float64 {
	if i < 0 || i >= a.n || j < 0 || j >= a.n {
		panic(fmt.Sprintf("mat: band index (%d,%d) outside %d×%d", i, j, a.n, a.n))
	}
	if j > i {
		i, j = j, i
	}
	if i-j > a.bw {
		return 0
	}
	return a.data[i*(a.bw+1)+(j-i+a.bw)]
}

// Set assigns element (i, j) (and, by symmetry, (j, i)). It panics if the
// entry lies outside the band.
func (a *SymBand) Set(i, j int, v float64) {
	if i < 0 || i >= a.n || j < 0 || j >= a.n {
		panic(fmt.Sprintf("mat: band index (%d,%d) outside %d×%d", i, j, a.n, a.n))
	}
	if j > i {
		i, j = j, i
	}
	if i-j > a.bw {
		panic(fmt.Sprintf("mat: entry (%d,%d) outside bandwidth %d", i, j, a.bw))
	}
	a.data[i*(a.bw+1)+(j-i+a.bw)] = v
}

// Dense expands the band matrix to a dense Matrix (testing convenience).
func (a *SymBand) Dense() *Matrix {
	out := New(a.n, a.n)
	for i := 0; i < a.n; i++ {
		lo := i - a.bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			v := a.data[i*(a.bw+1)+(j-i+a.bw)]
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// BandCholesky is the Cholesky factorization A = L·Lᵀ of a symmetric
// positive-definite band matrix. The factor inherits the bandwidth of A, so
// factoring costs O(n·bw²) and each solve O(n·bw). Both triangular sweeps
// stream contiguous memory: L is stored row-major in band form and its
// transpose is materialized once at factor time so back-substitution reads
// rows of Lᵀ instead of strided columns of L.
//
// Solve-side layout: rows are stored with stride bw+4 — three zero slots
// pad each row of L before its first in-band entry and each row of Lᵀ after
// its last — so the blocked four-row sweeps of SolveInto can read a uniform
// window for all four rows with the out-of-band positions contributing
// exact zeros, instead of branching per row.
//
// A BandCholesky is immutable after construction and safe for concurrent
// use by any number of goroutines.
type BandCholesky struct {
	n, bw  int
	stride int       // bw + 4 (three padding slots per row)
	l      []float64 // L rows: L[i][j] at i·stride + (j−i+bw+3); diag at i·stride+bw+3
	u      []float64 // Lᵀ rows: Lᵀ[i][j]=L[j][i] at i·stride + (j−i); diag at i·stride
}

// dot4 is Dot with four independent accumulators. The banded triangular
// sweeps are long chains of dot products whose single-accumulator form is
// bound by floating-point add latency, not throughput; four parallel sums
// roughly triple the sweep speed. Summation order differs from Dot, so the
// band solver's results differ from a dense solve only at rounding level
// (the tests pin agreement to 1e-10).
func dot4(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// quadDot2 computes the four dot products a0·x … a3·x in one pass over x,
// two elements per iteration with two accumulators per row: four rows ×
// one accumulator is bound by floating-point add latency (one chained add
// per row per iteration), eight independent chains reach add throughput.
// All five slices must have equal length.
func quadDot2(a0, a1, a2, a3, x []float64) (s0, s1, s2, s3 float64) {
	var r0, r1, r2, r3 float64
	t := 0
	for ; t+1 < len(x); t += 2 {
		xv0, xv1 := x[t], x[t+1]
		s0 += a0[t] * xv0
		r0 += a0[t+1] * xv1
		s1 += a1[t] * xv0
		r1 += a1[t+1] * xv1
		s2 += a2[t] * xv0
		r2 += a2[t+1] * xv1
		s3 += a3[t] * xv0
		r3 += a3[t+1] * xv1
	}
	if t < len(x) {
		xv := x[t]
		s0 += a0[t] * xv
		s1 += a1[t] * xv
		s2 += a2[t] * xv
		s3 += a3[t] * xv
	}
	return s0 + r0, s1 + r1, s2 + r2, s3 + r3
}

// NewBandCholesky factors the symmetric positive-definite band matrix a.
// It returns ErrSingular if a is not positive definite to working
// precision. a is not modified.
func NewBandCholesky(a *SymBand) (*BandCholesky, error) {
	n, bw, w := a.n, a.bw, a.bw+1
	// Factor in the tight stride-(bw+1) layout of SymBand.
	t := make([]float64, len(a.data))
	copy(t, a.data)
	for i := 0; i < n; i++ {
		ti := t[i*w : (i+1)*w]
		j0 := i - bw
		if j0 < 0 {
			j0 = 0
		}
		for j := j0; j < i; j++ {
			tj := t[j*w : (j+1)*w]
			// k ranges over the overlap of row i's and row j's bands.
			k0 := j - bw
			if k0 < j0 {
				k0 = j0
			}
			s := dot4(ti[k0-i+bw:j-i+bw], tj[k0-j+bw:bw])
			ti[j-i+bw] = (ti[j-i+bw] - s) / tj[bw]
		}
		var d float64
		for _, v := range ti[j0-i+bw : bw] {
			d += v * v
		}
		d = ti[bw] - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		ti[bw] = math.Sqrt(d)
	}
	// Re-lay the factor into the padded solve layout, plus its transpose.
	ws := bw + 4
	c := &BandCholesky{n: n, bw: bw, stride: ws}
	c.l = make([]float64, n*ws)
	c.u = make([]float64, n*ws)
	for i := 0; i < n; i++ {
		copy(c.l[i*ws+3:i*ws+3+w], t[i*w:(i+1)*w])
		j1 := i + bw
		if j1 > n-1 {
			j1 = n - 1
		}
		for j := i; j <= j1; j++ {
			c.u[i*ws+(j-i)] = t[j*w+(i-j+bw)]
		}
	}
	return c, nil
}

// N returns the system order.
func (c *BandCholesky) N() int { return c.n }

// Bandwidth returns the factor's bandwidth.
func (c *BandCholesky) Bandwidth() int { return c.bw }

// Solve returns x with A·x = b.
func (c *BandCholesky) Solve(b []float64) []float64 {
	x := make([]float64, c.n)
	c.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b by two banded triangular substitutions, writing
// the solution into dst. dst and b may be the same slice; it allocates
// nothing.
//
// Both sweeps process four rows per pass so each loaded x value feeds four
// multiply-adds: the row-at-a-time sweep issues two loads per multiply-add
// and saturates the load ports long before the floating-point units, which
// is what bounds the per-step cost of the thermal solver. The three padding
// slots per row (see the type comment) let all four rows share one loop
// window; only the 4×4 triangular tail is substituted serially.
func (c *BandCholesky) SolveInto(dst, b []float64) {
	n, bw, ws := c.n, c.bw, c.stride
	if len(dst) != n || len(b) != n {
		panic(ErrShape)
	}
	if bw < 8 {
		c.solveNarrow(dst, b)
		return
	}
	base := bw + 3 // diagonal offset within a padded row of l
	// Forward: L·y = b (y accumulates in dst).
	i := 0
	for ; i+3 < n; i += 4 {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		xs := dst[lo:i]
		a0 := c.l[i*ws+base-(i-lo):][:len(xs)]
		a1 := c.l[(i+1)*ws+base-(i+1-lo):][:len(xs)]
		a2 := c.l[(i+2)*ws+base-(i+2-lo):][:len(xs)]
		a3 := c.l[(i+3)*ws+base-(i+3-lo):][:len(xs)]
		s0, s1, s2, s3 := quadDot2(a0, a1, a2, a3, xs)
		l1 := c.l[(i+1)*ws : (i+2)*ws]
		l2 := c.l[(i+2)*ws : (i+3)*ws]
		l3 := c.l[(i+3)*ws : (i+4)*ws]
		x0 := (b[i] - s0) / c.l[i*ws+base]
		s1 += l1[base-1] * x0
		x1 := (b[i+1] - s1) / l1[base]
		s2 += l2[base-2]*x0 + l2[base-1]*x1
		x2 := (b[i+2] - s2) / l2[base]
		s3 += l3[base-3]*x0 + l3[base-2]*x1 + l3[base-1]*x2
		dst[i] = x0
		dst[i+1] = x1
		dst[i+2] = x2
		dst[i+3] = (b[i+3] - s3) / l3[base]
	}
	for ; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		li := c.l[i*ws : (i+1)*ws]
		dst[i] = (b[i] - dot4(li[base-(i-lo):base], dst[lo:i])) / li[base]
	}
	// Backward: Lᵀ·x = y, reading contiguous rows of the transposed factor.
	i = n - 1
	for ; i >= 3; i -= 4 {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		var s0, s1, s2, s3 float64
		if m := hi - i; m > 0 {
			xs := dst[i+1 : hi+1]
			a0 := c.u[i*ws+1:][:m]
			a1 := c.u[(i-1)*ws+2:][:m]
			a2 := c.u[(i-2)*ws+3:][:m]
			a3 := c.u[(i-3)*ws+4:][:m]
			s0, s1, s2, s3 = quadDot2(a0, a1, a2, a3, xs)
		}
		u1 := c.u[(i-1)*ws : i*ws]
		u2 := c.u[(i-2)*ws : (i-1)*ws]
		u3 := c.u[(i-3)*ws : (i-2)*ws]
		x0 := (dst[i] - s0) / c.u[i*ws]
		s1 += u1[1] * x0
		x1 := (dst[i-1] - s1) / u1[0]
		s2 += u2[1]*x1 + u2[2]*x0
		x2 := (dst[i-2] - s2) / u2[0]
		s3 += u3[1]*x2 + u3[2]*x1 + u3[3]*x0
		dst[i] = x0
		dst[i-1] = x1
		dst[i-2] = x2
		dst[i-3] = (dst[i-3] - s3) / u3[0]
	}
	for ; i >= 0; i-- {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		ui := c.u[i*ws : (i+1)*ws]
		dst[i] = (dst[i] - dot4(ui[1:hi-i+1], dst[i+1:hi+1])) / ui[0]
	}
}

// solveNarrow is the row-at-a-time fallback for bands too narrow for
// four-row blocking to pay off.
func (c *BandCholesky) solveNarrow(dst, b []float64) {
	n, bw, ws := c.n, c.bw, c.stride
	base := bw + 3
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		li := c.l[i*ws : (i+1)*ws]
		dst[i] = (b[i] - dot4(li[base-(i-lo):base], dst[lo:i])) / li[base]
	}
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		ui := c.u[i*ws : (i+1)*ws]
		dst[i] = (dst[i] - dot4(ui[1:hi-i+1], dst[i+1:hi+1])) / ui[0]
	}
}
