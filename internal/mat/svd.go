package mat

import "math"

// SingularValues returns the singular values of a (rows ≥ cols or not) in
// descending order. They are computed as the square roots of the eigenvalues
// of the smaller Gram matrix (AᵀA or AAᵀ), which is accurate to ~√ε relative
// error — ample for the condition-number comparisons this repository makes.
func SingularValues(a *Matrix) ([]float64, error) {
	m, n := a.Dims()
	var g *Matrix
	if m >= n {
		g = Gram(a) // n×n
	} else {
		g = RowGram(a) // m×m
	}
	eg, err := SymEigen(g)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eg.Values))
	for i, v := range eg.Values {
		if v < 0 {
			v = 0 // clamp tiny negative round-off
		}
		out[i] = math.Sqrt(v)
	}
	return out, nil
}

// Cond returns the 2-norm condition number σ_max/σ_min of a.
// It returns +Inf when the smallest singular value is zero (rank deficient).
func Cond(a *Matrix) (float64, error) {
	sv, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	if len(sv) == 0 {
		return 0, nil
	}
	smax, smin := sv[0], sv[len(sv)-1]
	// Gram-based singular values are accurate to ~√ε relative error, so a
	// σ_min at that level is indistinguishable from exact singularity.
	dim := a.Rows()
	if a.Cols() > dim {
		dim = a.Cols()
	}
	if smin <= float64(dim)*1.49e-8*smax {
		return math.Inf(1), nil
	}
	return smax / smin, nil
}

// Rank returns the numerical rank of a: the number of singular values above
// max(m,n)·ε·σ_max.
func Rank(a *Matrix) (int, error) {
	sv, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	if len(sv) == 0 || sv[0] == 0 {
		return 0, nil
	}
	dim := a.Rows()
	if a.Cols() > dim {
		dim = a.Cols()
	}
	// Gram-based singular values carry ~√ε relative error, so use a looser
	// threshold than the usual dim·ε·σ_max.
	tol := float64(dim) * 1.49e-8 * sv[0]
	r := 0
	for _, s := range sv {
		if s > tol {
			r++
		}
	}
	return r, nil
}

// SVDThin computes a thin singular value decomposition A = U·diag(σ)·Vᵀ for
// an m×n matrix with m ≥ n: U is m×n with orthonormal columns, V is n×n.
// Left vectors for near-zero singular values are completed by
// orthonormalization so U always has exactly orthonormal columns.
func SVDThin(a *Matrix) (u *Matrix, sigma []float64, v *Matrix, err error) {
	m, n := a.Dims()
	if m < n {
		panic("mat: SVDThin requires rows >= cols")
	}
	eg, err := SymEigen(Gram(a))
	if err != nil {
		return nil, nil, nil, err
	}
	v = eg.Vectors
	sigma = make([]float64, n)
	for i, lam := range eg.Values {
		if lam < 0 {
			lam = 0
		}
		sigma[i] = math.Sqrt(lam)
	}
	// U = A·V·Σ⁻¹ for the well-conditioned part.
	av := Mul(a, v)
	u = New(m, n)
	dim := m
	tol := float64(dim) * 1.49e-8 * sigma[0] // matches the Rank threshold
	var degenerate []int
	for j := 0; j < n; j++ {
		if sigma[j] > tol {
			for i := 0; i < m; i++ {
				u.Set(i, j, av.At(i, j)/sigma[j])
			}
		} else {
			degenerate = append(degenerate, j)
		}
	}
	// Complete degenerate columns by Gram–Schmidt against the good (and
	// previously completed) columns, so U has exactly orthonormal columns.
	// A full re-orthonormalization via QR would risk flipping the signs of
	// good columns and breaking A = UΣVᵀ.
	for _, j := range degenerate {
		filled := false
		for e := 0; e < m && !filled; e++ {
			cand := make([]float64, m)
			cand[e] = 1
			for jj := 0; jj < n; jj++ {
				if jj == j || (sigma[jj] <= tol && jj > j) {
					continue // skip self and not-yet-filled columns
				}
				col := u.Col(jj)
				AXPY(-Dot(cand, col), col, cand)
			}
			if Norm2(cand) > 0.5 {
				Normalize(cand)
				u.SetCol(j, cand)
				filled = true
			}
		}
		if !filled {
			return nil, nil, nil, ErrNoConvergence
		}
	}
	return u, sigma, v, nil
}
