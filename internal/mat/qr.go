package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix A with m ≥ n:
// A = Q·R with Q m×n having orthonormal columns (thin Q) and R n×n upper
// triangular.
type QR struct {
	qr   *Matrix   // packed factors: R in the upper triangle, reflectors below
	tau  []float64 // reflector scalars
	m, n int
}

// NewQR factors a (which must have Rows ≥ Cols) by Householder reflections.
// a is not modified.
func NewQR(a *Matrix) *QR {
	m, n := a.Dims()
	if m < n {
		panic("mat: QR requires rows >= cols")
	}
	f := &QR{qr: a.Clone(), tau: make([]float64, n), m: m, n: n}
	q := f.qr
	for k := 0; k < n; k++ {
		// Build the Householder reflector annihilating column k below the
		// diagonal: v = x ± ‖x‖e₁, H = I − 2vvᵀ/‖v‖².
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, q.At(i, k))
		}
		if norm == 0 {
			f.tau[k] = 0
			continue
		}
		// Give norm the sign of the pivot so the reflector diagonal
		// v_k = x_k/norm + 1 stays away from zero (JAMA convention).
		if q.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			q.Set(i, k, q.At(i, k)/norm)
		}
		q.Add(k, k, 1)
		f.tau[k] = q.At(k, k)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += q.At(i, k) * q.At(i, j)
			}
			s = -s / q.At(k, k)
			for i := k; i < m; i++ {
				q.Add(i, j, s*q.At(i, k))
			}
		}
		q.Set(k, k, -norm) // store R's diagonal (negated signed column norm)
	}
	return f
}

// R returns the n×n upper-triangular factor. Note the diagonal entries carry
// the sign produced by the factorization (not necessarily positive).
func (f *QR) R() *Matrix {
	r := New(f.n, f.n)
	for i := 0; i < f.n; i++ {
		for j := i; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin m×n orthonormal factor.
func (f *QR) Q() *Matrix {
	q := New(f.m, f.n)
	for j := 0; j < f.n; j++ {
		q.Set(j, j, 1)
		f.applyQ(q, j)
	}
	return q
}

// applyQ applies the stored reflectors (in reverse order) to column col of
// dst, turning the unit vector e_col into Q's col-th column.
func (f *QR) applyQ(dst *Matrix, col int) {
	for k := f.n - 1; k >= 0; k-- {
		if f.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			vik := f.reflector(i, k)
			s += vik * dst.At(i, col)
		}
		s = -s / f.tau[k]
		for i := k; i < f.m; i++ {
			dst.Add(i, col, s*f.reflector(i, k))
		}
	}
}

// reflector returns element i of reflector k (diagonal element is tau[k]).
func (f *QR) reflector(i, k int) float64 {
	if i == k {
		return f.tau[k]
	}
	return f.qr.At(i, k)
}

// QTVec returns Qᵀb for a length-m vector b (the first n entries are the
// coefficients used by least-squares solves; the remainder is the residual
// part). The returned slice has length m.
func (f *QR) QTVec(b []float64) []float64 {
	if len(b) != f.m {
		panic(ErrShape)
	}
	y := CopyVec(b)
	for k := 0; k < f.n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.reflector(i, k) * y[i]
		}
		s = -s / f.tau[k]
		for i := k; i < f.m; i++ {
			y[i] += s * f.reflector(i, k)
		}
	}
	return y
}

// Solve returns the least-squares solution x of A·x ≈ b.
// It returns ErrSingular if R is rank-deficient to working precision.
func (f *QR) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b, make([]float64, f.m)); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto is the allocation-free form of Solve: it writes the length-n
// least-squares solution of A·x ≈ b into dst, using work (length m) as
// scratch. b is not modified. It returns ErrSingular if R is rank-deficient
// to working precision.
func (f *QR) SolveInto(dst, b, work []float64) error {
	if len(b) != f.m || len(work) != f.m {
		panic(ErrShape)
	}
	if len(dst) != f.n {
		panic(ErrShape)
	}
	// y = Qᵀb, computed in work (same reflector sweep as QTVec).
	copy(work, b)
	for k := 0; k < f.n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.reflector(i, k) * work[i]
		}
		s = -s / f.tau[k]
		for i := k; i < f.m; i++ {
			work[i] += s * f.reflector(i, k)
		}
	}
	// Back-substitution on R into dst.
	tol := f.rankTol()
	for i := f.n - 1; i >= 0; i-- {
		d := f.qr.At(i, i)
		if math.Abs(d) <= tol {
			return ErrSingular
		}
		s := work[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * dst[j]
		}
		dst[i] = s / d
	}
	return nil
}

// Rank returns the numerical rank estimated from R's diagonal.
func (f *QR) Rank() int {
	tol := f.rankTol()
	rank := 0
	for i := 0; i < f.n; i++ {
		if math.Abs(f.qr.At(i, i)) > tol {
			rank++
		}
	}
	return rank
}

// rankTol returns the diagonal magnitude below which R is treated as
// rank-deficient: max(m,n)·ε·max|R_ii|.
func (f *QR) rankTol() float64 {
	var maxDiag float64
	for i := 0; i < f.n; i++ {
		if a := math.Abs(f.qr.At(i, i)); a > maxDiag {
			maxDiag = a
		}
	}
	dim := f.m
	if f.n > dim {
		dim = f.n
	}
	return float64(dim) * 2.220446049250313e-16 * maxDiag
}

// Factors returns copies of the packed factorization (R in the upper
// triangle, reflector columns below) and the reflector scalars — the full
// state of the factorization, for serialization. RestoreQR rebuilds an
// identical QR from them.
func (f *QR) Factors() (packed *Matrix, tau []float64) {
	return f.qr.Clone(), append([]float64(nil), f.tau...)
}

// Dims returns the factored matrix's shape (rows, cols).
func (f *QR) Dims() (m, n int) { return f.m, f.n }

// RestoreQR rebuilds a QR from factors previously obtained with Factors.
// Both inputs are copied. Because the reflector sweep of SolveInto reads
// only these values, a restored factorization solves bit-identically to the
// one it was captured from. Impossible shapes return an error rather than
// panicking, so callers decoding untrusted bytes can reject them.
func RestoreQR(packed *Matrix, tau []float64) (*QR, error) {
	m, n := packed.Dims()
	if m < n {
		return nil, fmt.Errorf("mat: restore QR: %d×%d has fewer rows than columns", m, n)
	}
	if len(tau) != n {
		return nil, fmt.Errorf("mat: restore QR: %d reflector scalars for %d columns", len(tau), n)
	}
	return &QR{qr: packed.Clone(), tau: append([]float64(nil), tau...), m: m, n: n}, nil
}

// LeastSquares solves min‖A·x − b‖₂ by Householder QR.
// A must have Rows ≥ Cols and full column rank.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return NewQR(a).Solve(b)
}

// Orthonormalize replaces the columns of a with an orthonormal basis of their
// span (thin Q of the QR factorization). Returns the basis as a new matrix.
func Orthonormalize(a *Matrix) *Matrix {
	return NewQR(a).Q()
}
