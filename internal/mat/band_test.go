package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPDBand builds a random symmetric positive-definite band matrix by
// filling the band with noise and making the diagonal strictly dominant.
func randomSPDBand(n, bw int, rng *rand.Rand) *SymBand {
	a := NewSymBand(n, bw)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

func TestSymBandAtSetSymmetry(t *testing.T) {
	a := NewSymBand(5, 2)
	a.Set(3, 1, 7)
	if a.At(3, 1) != 7 || a.At(1, 3) != 7 {
		t.Fatalf("symmetric access broken: %v %v", a.At(3, 1), a.At(1, 3))
	}
	a.Set(1, 3, 9) // upper-triangle spelling of the same entry
	if a.At(3, 1) != 9 {
		t.Fatal("Set via upper index did not update the stored entry")
	}
	if a.At(0, 4) != 0 {
		t.Fatal("outside-band entry not zero")
	}
}

func TestSymBandSetOutsideBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSymBand(6, 1).Set(4, 0, 1)
}

func TestSymBandBandwidthClamped(t *testing.T) {
	a := NewSymBand(4, 99)
	if a.Bandwidth() != 3 {
		t.Fatalf("bandwidth %d, want clamp to 3", a.Bandwidth())
	}
}

// TestBandCholeskyMatchesDense pins factor and solve against the dense
// Cholesky across orders and bandwidths, including the diagonal (bw=0) and
// effectively dense (bw=n−1) extremes.
func TestBandCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, bw int }{
		{1, 0}, {7, 0}, {8, 1}, {12, 3}, {30, 5}, {25, 24}, {40, 11},
	} {
		a := randomSPDBand(tc.n, tc.bw, rng)
		bc, err := NewBandCholesky(a)
		if err != nil {
			t.Fatalf("n=%d bw=%d: %v", tc.n, tc.bw, err)
		}
		dc, err := NewCholesky(a.Dense())
		if err != nil {
			t.Fatalf("n=%d bw=%d dense: %v", tc.n, tc.bw, err)
		}
		// Factors agree entrywise (both are the unique lower Cholesky factor).
		dl := dc.L()
		for i := 0; i < tc.n; i++ {
			for j := 0; j <= i; j++ {
				var got float64
				if i-j <= bc.bw {
					got = bc.l[i*bc.stride+(j-i+bc.bw+3)]
				}
				if math.Abs(got-dl.At(i, j)) > 1e-10 {
					t.Fatalf("n=%d bw=%d: L[%d][%d] = %v, dense %v", tc.n, tc.bw, i, j, got, dl.At(i, j))
				}
			}
		}
		// Solves agree.
		b := make([]float64, tc.n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := bc.Solve(b)
		want := dc.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("n=%d bw=%d: x[%d] = %v, dense %v", tc.n, tc.bw, i, got[i], want[i])
			}
		}
	}
}

func TestBandCholeskyResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPDBand(60, 8, rng)
	bc, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := bc.Solve(b)
	// ‖A·x − b‖ must vanish to working precision.
	for i := 0; i < 60; i++ {
		var s float64
		for j := 0; j < 60; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.Abs(s-b[i]) > 1e-9 {
			t.Fatalf("residual %v at row %d", s-b[i], i)
		}
	}
}

func TestBandCholeskySolveIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPDBand(20, 4, rng)
	bc, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := bc.Solve(b)
	inPlace := append([]float64(nil), b...)
	bc.SolveInto(inPlace, inPlace) // dst aliases b
	for i := range want {
		if inPlace[i] != want[i] {
			t.Fatalf("aliased solve diverged at %d: %v vs %v", i, inPlace[i], want[i])
		}
	}
}

func TestBandCholeskySolveIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPDBand(32, 6, rng)
	bc, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 32)
	x := make([]float64, 32)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	if allocs := testing.AllocsPerRun(50, func() { bc.SolveInto(x, b) }); allocs != 0 {
		t.Fatalf("SolveInto allocated %v times per run", allocs)
	}
}

func TestBandCholeskyRejectsNotPositiveDefinite(t *testing.T) {
	// An indefinite band matrix: off-diagonal larger than the diagonal.
	a := NewSymBand(4, 1)
	for i := 0; i < 4; i++ {
		a.Set(i, i, 1)
	}
	a.Set(1, 0, 5)
	if _, err := NewBandCholesky(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// A negative diagonal fails immediately.
	neg := NewSymBand(3, 0)
	neg.Set(0, 0, -2)
	if _, err := NewBandCholesky(neg); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestBandCholeskySolveShapePanics(t *testing.T) {
	a := randomSPDBand(6, 2, rand.New(rand.NewSource(1)))
	bc, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bc.Solve(make([]float64, 5))
}

func TestBandCholeskySolveIntoAliasingBlocked(t *testing.T) {
	// bw ≥ 8 exercises the blocked four-row sweeps — the path the thermal
	// hot loop runs aliased (SolveInto(z, z)) on every real grid.
	rng := rand.New(rand.NewSource(17))
	a := randomSPDBand(45, 11, rng)
	bc, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 45)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := bc.Solve(b)
	inPlace := append([]float64(nil), b...)
	bc.SolveInto(inPlace, inPlace)
	for i := range want {
		if inPlace[i] != want[i] {
			t.Fatalf("aliased blocked solve diverged at %d: %v vs %v", i, inPlace[i], want[i])
		}
	}
}
