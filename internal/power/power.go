// Package power synthesizes per-block power traces for a floorplan.
//
// The paper drives its thermal simulations with measured UltraSPARC T1 power
// traces (Leon et al. [7]); those are proprietary, so this package generates
// the closest synthetic equivalent: block-granularity powers evolving under a
// Markov task-activity model with OS-style task migration, cache and crossbar
// power coupled to core activity, and occasional FPU bursts. What the
// EigenMaps method actually depends on is the *ensemble diversity* of
// spatially structured power patterns, which this engine provides.
package power

import (
	"fmt"
	"math/rand"

	"repro/internal/floorplan"
)

// Scenario selects a workload preset.
type Scenario int

// Workload presets.
const (
	// ScenarioWeb models a throughput server: bursty per-core activity and
	// frequent OS rebalancing (the T1's design point).
	ScenarioWeb Scenario = iota
	// ScenarioCompute models sustained compute: most cores busy most of the
	// time, long phases, heavy FPU use.
	ScenarioCompute
	// ScenarioMixed alternates between web-like and compute-like phases.
	ScenarioMixed
	// ScenarioIdle models a lightly loaded machine with sporadic tasks.
	ScenarioIdle
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioWeb:
		return "web"
	case ScenarioCompute:
		return "compute"
	case ScenarioMixed:
		return "mixed"
	case ScenarioIdle:
		return "idle"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Config parameterizes a Generator. The zero value plus a Seed is a usable
// web-scenario configuration.
type Config struct {
	Scenario Scenario
	Seed     int64

	// CoreIdleW / CoreBusyW bound each core's power draw [watts].
	// Defaults: 1.0 / 6.5 (T1-class core budgets).
	CoreIdleW float64
	CoreBusyW float64
	// CacheBaseW is each L2 bank's standby power; CacheActiveW is added in
	// proportion to the activity of the cores it serves. Defaults: 0.6 / 1.8.
	CacheBaseW   float64
	CacheActiveW float64
	// CrossbarBaseW/CrossbarActiveW: interconnect power, scaling with mean
	// core utilization. Defaults: 1.0 / 4.0.
	CrossbarBaseW   float64
	CrossbarActiveW float64
	// FPUBaseW/FPUActiveW: shared FPU power, scaling with the fraction of
	// cores running FPU-heavy tasks. Defaults: 0.2 / 5.0.
	FPUBaseW   float64
	FPUActiveW float64
	// OtherW is the power density assigned to blocks of KindOther. Default 0.5.
	OtherW float64

	// MigrationPeriod is the number of steps between OS rebalancing events.
	// Default depends on scenario.
	MigrationPeriod int

	// LoadCoupling ∈ [0,1] blends each core's utilization target with a
	// shared, slowly varying system-load level: 0 leaves the cores fully
	// independent, 1 makes them track the global load exactly. Throughput
	// machines like the T1 run strongly correlated cores (every core serves
	// the same request mix), which concentrates the thermal ensemble's
	// energy in fewer principal components.
	LoadCoupling float64
}

func (c *Config) defaults() {
	if c.CoreIdleW == 0 {
		c.CoreIdleW = 1.0
	}
	if c.CoreBusyW == 0 {
		c.CoreBusyW = 6.5
	}
	if c.CacheBaseW == 0 {
		c.CacheBaseW = 0.6
	}
	if c.CacheActiveW == 0 {
		c.CacheActiveW = 1.8
	}
	if c.CrossbarBaseW == 0 {
		c.CrossbarBaseW = 1.0
	}
	if c.CrossbarActiveW == 0 {
		c.CrossbarActiveW = 4.0
	}
	if c.FPUBaseW == 0 {
		c.FPUBaseW = 0.2
	}
	if c.FPUActiveW == 0 {
		c.FPUActiveW = 5.0
	}
	if c.OtherW == 0 {
		c.OtherW = 0.5
	}
	if c.MigrationPeriod == 0 {
		switch c.Scenario {
		case ScenarioWeb:
			c.MigrationPeriod = 20
		case ScenarioCompute:
			c.MigrationPeriod = 120
		case ScenarioMixed:
			c.MigrationPeriod = 40
		case ScenarioIdle:
			c.MigrationPeriod = 60
		}
	}
}

// coreState is the per-core Markov state.
type coreState int

const (
	coreIdle coreState = iota
	coreBusy
	coreFPU // busy with FPU-heavy work
)

// transition probabilities per scenario: {idle→busy, busy→idle, busy→fpu, fpu→busy}
type rates struct {
	idleToBusy, busyToIdle, busyToFPU, fpuToBusy float64
}

func scenarioRates(s Scenario) rates {
	switch s {
	case ScenarioWeb:
		return rates{idleToBusy: 0.15, busyToIdle: 0.10, busyToFPU: 0.02, fpuToBusy: 0.20}
	case ScenarioCompute:
		return rates{idleToBusy: 0.30, busyToIdle: 0.02, busyToFPU: 0.10, fpuToBusy: 0.05}
	case ScenarioMixed:
		return rates{idleToBusy: 0.20, busyToIdle: 0.06, busyToFPU: 0.05, fpuToBusy: 0.10}
	case ScenarioIdle:
		return rates{idleToBusy: 0.04, busyToIdle: 0.25, busyToFPU: 0.01, fpuToBusy: 0.30}
	}
	return rates{idleToBusy: 0.1, busyToIdle: 0.1, busyToFPU: 0.02, fpuToBusy: 0.2}
}

// Generator produces a per-block power vector at each step.
type Generator struct {
	cfg   Config
	plan  *floorplan.Floorplan
	rng   *rand.Rand
	rates rates

	cores  []int // block indices of cores, layout order
	caches []int
	xbars  []int
	fpus   []int
	others []int

	state      []coreState // per core
	util       []float64   // per core, smoothed utilization in [0,1]
	globalLoad float64     // shared system-load level in [0,1]
	step       int
}

// NewGenerator builds a Generator for fp under cfg. The generator is
// deterministic given cfg.Seed.
func NewGenerator(fp *floorplan.Floorplan, cfg Config) *Generator {
	cfg.defaults()
	g := &Generator{
		cfg:   cfg,
		plan:  fp,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		rates: scenarioRates(cfg.Scenario),
	}
	for i, b := range fp.Blocks {
		switch b.Kind {
		case floorplan.KindCore:
			g.cores = append(g.cores, i)
		case floorplan.KindCache:
			g.caches = append(g.caches, i)
		case floorplan.KindCrossbar:
			g.xbars = append(g.xbars, i)
		case floorplan.KindFPU:
			g.fpus = append(g.fpus, i)
		default:
			g.others = append(g.others, i)
		}
	}
	g.state = make([]coreState, len(g.cores))
	g.util = make([]float64, len(g.cores))
	g.globalLoad = 0.5
	// Start a representative subset of cores busy so traces don't all begin
	// from a cold idle map.
	for c := range g.state {
		if g.rng.Float64() < 0.5 {
			g.state[c] = coreBusy
			g.util[c] = 0.5 + 0.5*g.rng.Float64()
		}
	}
	return g
}

// NumBlocks returns the number of blocks (the length of Step's result).
func (g *Generator) NumBlocks() int { return len(g.plan.Blocks) }

// Step advances the workload one time step and returns the per-block power
// vector in watts (indexed like fp.Blocks).
func (g *Generator) Step() []float64 {
	g.advanceStates()
	if g.cfg.MigrationPeriod > 0 && g.step > 0 && g.step%g.cfg.MigrationPeriod == 0 {
		g.migrate()
	}
	g.step++
	return g.blockPowers()
}

// advanceStates runs the per-core Markov transitions and smooths utilization.
func (g *Generator) advanceStates() {
	r := g.rates
	if g.cfg.Scenario == ScenarioMixed {
		// Alternate regime every 300 steps.
		if (g.step/300)%2 == 1 {
			r = scenarioRates(ScenarioCompute)
		} else {
			r = scenarioRates(ScenarioWeb)
		}
	}
	// Shared system load: bounded random walk, slower than per-core churn.
	g.globalLoad += 0.08 * (g.rng.Float64() - 0.5)
	if g.globalLoad < 0 {
		g.globalLoad = 0
	}
	if g.globalLoad > 1 {
		g.globalLoad = 1
	}
	for c := range g.state {
		p := g.rng.Float64()
		switch g.state[c] {
		case coreIdle:
			if p < r.idleToBusy {
				g.state[c] = coreBusy
			}
		case coreBusy:
			switch {
			case p < r.busyToIdle:
				g.state[c] = coreIdle
			case p < r.busyToIdle+r.busyToFPU:
				g.state[c] = coreFPU
			}
		case coreFPU:
			if p < r.fpuToBusy {
				g.state[c] = coreBusy
			}
		}
		// Smooth utilization toward the state target (AR(1) with jitter),
		// blended with the shared load by LoadCoupling.
		target := 0.0
		switch g.state[c] {
		case coreBusy:
			target = 0.75 + 0.25*g.rng.Float64()
		case coreFPU:
			target = 0.85 + 0.15*g.rng.Float64()
		}
		if cpl := g.cfg.LoadCoupling; cpl > 0 {
			target = (1-cpl)*target + cpl*g.globalLoad
		}
		const alpha = 0.35
		g.util[c] += alpha * (target - g.util[c])
		if g.util[c] < 0 {
			g.util[c] = 0
		}
		if g.util[c] > 1 {
			g.util[c] = 1
		}
	}
}

// migrate emulates OS rebalancing: move the hottest task to the idlest core.
func (g *Generator) migrate() {
	busiest, idlest := -1, -1
	for c := range g.util {
		if g.state[c] != coreIdle && (busiest < 0 || g.util[c] > g.util[busiest]) {
			busiest = c
		}
		if g.state[c] == coreIdle && (idlest < 0 || g.util[c] < g.util[idlest]) {
			idlest = c
		}
	}
	if busiest < 0 || idlest < 0 {
		return
	}
	g.state[busiest], g.state[idlest] = g.state[idlest], g.state[busiest]
	g.util[busiest], g.util[idlest] = g.util[idlest], g.util[busiest]
}

// blockPowers maps the current workload state to per-block watts.
func (g *Generator) blockPowers() []float64 {
	c := g.cfg
	p := make([]float64, len(g.plan.Blocks))
	var meanUtil, fpuShare float64
	for ci, b := range g.cores {
		u := g.util[ci]
		p[b] = c.CoreIdleW + (c.CoreBusyW-c.CoreIdleW)*u
		meanUtil += u
		if g.state[ci] == coreFPU {
			fpuShare++
		}
	}
	if len(g.cores) > 0 {
		meanUtil /= float64(len(g.cores))
		fpuShare /= float64(len(g.cores))
	}
	// Each cache bank couples to the utilization of the cores sharing its
	// column position (nearest cores by layout order).
	for k, b := range g.caches {
		act := g.cacheActivity(k)
		p[b] = c.CacheBaseW + c.CacheActiveW*act
	}
	for _, b := range g.xbars {
		p[b] = c.CrossbarBaseW + c.CrossbarActiveW*meanUtil
	}
	for _, b := range g.fpus {
		p[b] = c.FPUBaseW + c.FPUActiveW*fpuShare
	}
	for _, b := range g.others {
		p[b] = c.OtherW
	}
	return p
}

// cacheActivity estimates the utilization seen by cache bank k by averaging
// the cores at the matching position in layout order. With the T1 layout
// (4+4 cores, 4+4 banks) bank k pairs with core k.
func (g *Generator) cacheActivity(k int) float64 {
	if len(g.cores) == 0 {
		return 0
	}
	if len(g.caches) == len(g.cores) {
		return g.util[k]
	}
	// General fallback: proportionally map banks onto cores.
	ci := k * len(g.cores) / len(g.caches)
	return g.util[ci]
}

// TotalPower sums a per-block power vector.
func TotalPower(blockPowers []float64) float64 {
	var s float64
	for _, v := range blockPowers {
		s += v
	}
	return s
}

// SpreadToCells converts per-block watts into per-cell watts on the raster:
// each block's power is divided uniformly over the cells it covers
// (the paper's "large blocks having the same average power consumption").
// Cells not covered by any block receive zero.
func SpreadToCells(r *floorplan.Raster, blockPowers []float64) []float64 {
	out := make([]float64, r.Grid.N())
	SpreadToCellsInto(out, r, blockPowers)
	return out
}

// SpreadToCellsInto is the allocation-free form of SpreadToCells: the
// per-cell watts are written into dst (length N), which is zeroed first.
func SpreadToCellsInto(dst []float64, r *floorplan.Raster, blockPowers []float64) {
	if len(blockPowers) != len(r.Plan.Blocks) {
		panic(fmt.Sprintf("power: %d block powers for %d blocks", len(blockPowers), len(r.Plan.Blocks)))
	}
	if len(dst) != r.Grid.N() {
		panic(fmt.Sprintf("power: dst length %d for %d cells", len(dst), r.Grid.N()))
	}
	for i := range dst {
		dst[i] = 0
	}
	for b, watts := range blockPowers {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			continue
		}
		per := watts / float64(len(cells))
		for _, i := range cells {
			dst[i] = per
		}
	}
}
