// Package power synthesizes per-block power traces for a floorplan.
//
// The paper drives its thermal simulations with measured UltraSPARC T1 power
// traces (Leon et al. [7]); those are proprietary, so this package generates
// the closest synthetic equivalent: block-granularity powers evolving under a
// Markov task-activity model with OS-style task migration, cache and crossbar
// power coupled to core activity, and occasional FPU bursts. What the
// EigenMaps method actually depends on is the *ensemble diversity* of
// spatially structured power patterns, which this engine provides.
//
// The engine is driven by declarative workload.Spec scenarios: phase
// schedules of Markov rate regimes, bursty (MMPP) arrival modulation,
// task-migration chains, DVFS ladders and periodic duty envelopes. The
// historical Scenario enum remains as a thin compatibility layer whose four
// presets delegate to the workload registry — by construction the delegated
// engine consumes the RNG in exactly the legacy order, so preset traces are
// bit-identical to the pre-spec implementation (pinned by
// TestPresetSpecBitEquivalence).
package power

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/workload"
)

// Scenario selects a workload preset (legacy spelling; the presets live in
// the workload registry and can also be addressed by name there).
type Scenario int

// Workload presets.
const (
	// ScenarioWeb models a throughput server: bursty per-core activity and
	// frequent OS rebalancing (the T1's design point).
	ScenarioWeb Scenario = iota
	// ScenarioCompute models sustained compute: most cores busy most of the
	// time, long phases, heavy FPU use.
	ScenarioCompute
	// ScenarioMixed alternates between web-like and compute-like phases.
	ScenarioMixed
	// ScenarioIdle models a lightly loaded machine with sporadic tasks.
	ScenarioIdle
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioWeb:
		return "web"
	case ScenarioCompute:
		return "compute"
	case ScenarioMixed:
		return "mixed"
	case ScenarioIdle:
		return "idle"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// presetSpec maps the enum onto its registry spec. Unknown enum values keep
// their historical behavior: generic fallback rates and no migration.
func presetSpec(s Scenario) *workload.Spec {
	switch s {
	case ScenarioWeb, ScenarioCompute, ScenarioMixed, ScenarioIdle:
		return workload.Preset(s.String())
	}
	return &workload.Spec{
		Name: s.String(),
		Phases: []workload.Phase{{
			Rates: workload.Rates{IdleToBusy: 0.1, BusyToIdle: 0.1, BusyToFPU: 0.02, FPUToBusy: 0.2},
		}},
		Migration: workload.Migration{Period: -1},
	}
}

// Config parameterizes a Generator. The zero value plus a Seed is a usable
// web-scenario configuration.
type Config struct {
	Scenario Scenario
	Seed     int64

	// CoreIdleW / CoreBusyW bound each core's power draw [watts].
	// Defaults: 1.0 / 6.5 (T1-class core budgets).
	CoreIdleW float64
	CoreBusyW float64
	// CacheBaseW is each L2 bank's standby power; CacheActiveW is added in
	// proportion to the activity of the cores it serves. Defaults: 0.6 / 1.8.
	CacheBaseW   float64
	CacheActiveW float64
	// CrossbarBaseW/CrossbarActiveW: interconnect power, scaling with mean
	// core utilization. Defaults: 1.0 / 4.0.
	CrossbarBaseW   float64
	CrossbarActiveW float64
	// FPUBaseW/FPUActiveW: shared FPU power, scaling with the fraction of
	// cores running FPU-heavy tasks. Defaults: 0.2 / 5.0.
	FPUBaseW   float64
	FPUActiveW float64
	// OtherW is the power density assigned to blocks of KindOther. Default 0.5.
	OtherW float64

	// MigrationPeriod is the number of steps between OS rebalancing events.
	// Zero defers to the workload spec; negative disables rebalancing.
	MigrationPeriod int

	// LoadCoupling ∈ [0,1] blends each core's utilization target with a
	// shared, slowly varying system-load level: 1 makes cores track the
	// global load exactly. It is the default for specs that declare no
	// load_coupling of their own — a spec's non-zero value wins, since
	// coupling is part of the scenario definition. Throughput machines
	// like the T1 run strongly correlated cores (every core serves the
	// same request mix), which concentrates the thermal ensemble's energy
	// in fewer principal components.
	LoadCoupling float64
}

func (c *Config) defaults() {
	if c.CoreIdleW == 0 {
		c.CoreIdleW = 1.0
	}
	if c.CoreBusyW == 0 {
		c.CoreBusyW = 6.5
	}
	if c.CacheBaseW == 0 {
		c.CacheBaseW = 0.6
	}
	if c.CacheActiveW == 0 {
		c.CacheActiveW = 1.8
	}
	if c.CrossbarBaseW == 0 {
		c.CrossbarBaseW = 1.0
	}
	if c.CrossbarActiveW == 0 {
		c.CrossbarActiveW = 4.0
	}
	if c.FPUBaseW == 0 {
		c.FPUBaseW = 0.2
	}
	if c.FPUActiveW == 0 {
		c.FPUActiveW = 5.0
	}
	if c.OtherW == 0 {
		c.OtherW = 0.5
	}
}

// WithDefaults returns a copy of c with every unset power budget resolved to
// its default. Callers that need the *effective* budgets — the thermal
// governor inverts CoreIdleW/CoreBusyW to recover per-core activity from a
// demand power vector — resolve through here so they see exactly the numbers
// the Generator will use.
func (c Config) WithDefaults() Config {
	c.defaults()
	return c
}

// ManycoreConfig returns a Config whose per-block power budgets are scaled
// for a generated many-core die (floorplan.Manycore): per-core and per-bank
// budgets shrink with the core/bank counts so the total die power stays in
// a T1-class envelope (tens of watts) regardless of scale — matching how
// real many-core parts trade per-core power for core count on a fixed
// thermal budget. With cores = caches = 8 it reproduces the T1 defaults.
func ManycoreConfig(cores, caches int) Config {
	var c Config
	c.defaults()
	if cores > 0 {
		f := 8.0 / float64(cores)
		c.CoreIdleW *= f
		c.CoreBusyW *= f
	}
	if caches > 0 {
		f := 8.0 / float64(caches)
		c.CacheBaseW *= f
		c.CacheActiveW *= f
	}
	return c
}

// ConfigFor returns the Config for simulating fp at the given default load
// coupling: T1-class dies (≤ 8 cores) get the standard budgets, larger
// generated dies get ManycoreConfig scaling. It is the single place the
// "scale budgets past 8 cores" policy lives — the daemon, the CLIs and the
// robustness harness all build their configs here.
func ConfigFor(fp *floorplan.Floorplan, coupling float64) Config {
	var c Config
	if cores := len(fp.KindBlocks(floorplan.KindCore)); cores > 8 {
		c = ManycoreConfig(cores, len(fp.KindBlocks(floorplan.KindCache)))
	}
	c.LoadCoupling = coupling
	return c
}

// coreState is the per-core Markov state.
type coreState int

const (
	coreIdle coreState = iota
	coreBusy
	coreFPU // busy with FPU-heavy work
)

// kind indices for the per-step envelope multipliers.
const (
	envCore = iota
	envCache
	envCrossbar
	envFPU
	envOther
	envKinds
)

var envKindIndex = map[string]int{
	"core": envCore, "cache": envCache, "crossbar": envCrossbar,
	"fpu": envFPU, "other": envOther,
}

// Generator produces a per-block power vector at each step, driven by a
// declarative workload spec.
type Generator struct {
	cfg  Config
	spec *workload.Spec
	plan *floorplan.Floorplan
	rng  *rand.Rand

	cores  []int // block indices of cores, layout order
	caches []int
	xbars  []int
	fpus   []int
	others []int

	state      []coreState // per core
	util       []float64   // per core, smoothed utilization in [0,1]
	globalLoad float64     // shared system-load level in [0,1]
	step       int

	coupling  float64 // effective load coupling (Config overrides spec)
	migPeriod int     // effective migration period (Config overrides spec)

	burst bool // MMPP modulating-chain state (specs with Arrival)

	dvfsLevel []int // per core: index into spec.DVFS.Levels
	dvfsHold  []int // per core: steps until the governor may act again

	hasEnv bool
	envMul [envKinds]float64 // per-kind duty multiplier for the current step
	uEff   []float64         // envelope-modulated utilization (aliases util without envelopes)
}

// NewGenerator builds a Generator for fp under cfg. The generator is
// deterministic given cfg.Seed. The enum scenario delegates to its workload
// registry spec; traces are bit-identical to the historical enum arms.
func NewGenerator(fp *floorplan.Floorplan, cfg Config) *Generator {
	g, err := NewSpecGenerator(fp, presetSpec(cfg.Scenario), cfg)
	if err != nil {
		// Preset specs are valid by construction.
		panic(fmt.Sprintf("power: preset %v: %v", cfg.Scenario, err))
	}
	return g
}

// NewSpecGenerator builds a Generator driven by a declarative workload
// spec. cfg supplies the hardware power budgets (its Scenario field is
// ignored); spec supplies the dynamics. The trace is bit-reproducible given
// (spec, cfg.Seed).
func NewSpecGenerator(fp *floorplan.Floorplan, spec *workload.Spec, cfg Config) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	g := &Generator{
		cfg:  cfg,
		spec: spec.Clone(),
		plan: fp,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, b := range fp.Blocks {
		switch b.Kind {
		case floorplan.KindCore:
			g.cores = append(g.cores, i)
		case floorplan.KindCache:
			g.caches = append(g.caches, i)
		case floorplan.KindCrossbar:
			g.xbars = append(g.xbars, i)
		case floorplan.KindFPU:
			g.fpus = append(g.fpus, i)
		default:
			g.others = append(g.others, i)
		}
	}
	// The spec's load_coupling is part of the scenario definition and wins
	// when set; Config.LoadCoupling is the caller-side default for specs
	// that don't declare one. (Presets declare none, so the historical
	// Config knob keeps its exact effect on them.)
	g.coupling = g.spec.LoadCoupling
	if g.coupling == 0 {
		g.coupling = cfg.LoadCoupling
	}
	g.migPeriod = cfg.MigrationPeriod
	if g.migPeriod == 0 {
		g.migPeriod = g.spec.Migration.Period
	}
	g.state = make([]coreState, len(g.cores))
	g.util = make([]float64, len(g.cores))
	g.globalLoad = 0.5
	if d := g.spec.DVFS; d != nil {
		g.dvfsLevel = make([]int, len(g.cores))
		g.dvfsHold = make([]int, len(g.cores))
		for c := range g.dvfsLevel {
			g.dvfsLevel[c] = len(d.Levels) - 1 // start at nominal frequency
		}
	}
	g.hasEnv = len(g.spec.Envelopes) > 0
	if g.hasEnv {
		g.uEff = make([]float64, len(g.cores))
	} else {
		g.uEff = g.util
	}
	// Start a representative subset of cores busy so traces don't all begin
	// from a cold idle map.
	for c := range g.state {
		if g.rng.Float64() < 0.5 {
			g.state[c] = coreBusy
			g.util[c] = 0.5 + 0.5*g.rng.Float64()
		}
	}
	return g, nil
}

// NumBlocks returns the number of blocks (the length of Step's result).
func (g *Generator) NumBlocks() int { return len(g.plan.Blocks) }

// Spec returns a copy of the workload spec driving this generator. (A
// copy, not the internal pointer: the generator's derived state — DVFS
// ladders, envelope buffers — is frozen at construction, so mutating the
// live spec could never take effect and could only corrupt a run.)
func (g *Generator) Spec() *workload.Spec { return g.spec.Clone() }

// Step advances the workload one time step and returns the per-block power
// vector in watts (indexed like fp.Blocks).
func (g *Generator) Step() []float64 {
	g.advanceStates()
	if g.migPeriod > 0 && g.step > 0 && g.step%g.migPeriod == 0 {
		g.migrate()
	}
	// Task-migration Markov chain: an extra per-step migration draw on top
	// of the periodic policy (specs with Migration.Rate > 0 only, so the
	// presets consume no extra randomness here).
	if rate := g.spec.Migration.Rate; rate > 0 && g.rng.Float64() < rate {
		g.migrate()
	}
	g.advanceDVFS()
	if g.hasEnv {
		g.evalEnvelopes(g.step)
	}
	g.step++
	return g.blockPowers()
}

// advanceStates runs the per-core Markov transitions and smooths utilization.
func (g *Generator) advanceStates() {
	r := g.spec.PhaseAt(g.step).Rates
	if a := g.spec.Arrival; a != nil {
		// MMPP modulating chain: one draw per step, then scale arrivals.
		p := g.rng.Float64()
		if g.burst {
			if p < a.PExit {
				g.burst = false
			}
		} else if p < a.PEnter {
			g.burst = true
		}
		if g.burst {
			r.IdleToBusy *= a.BurstFactor
			if r.IdleToBusy > 1 {
				r.IdleToBusy = 1
			}
		}
	}
	// Shared system load: bounded random walk, slower than per-core churn.
	g.globalLoad += 0.08 * (g.rng.Float64() - 0.5)
	if g.globalLoad < 0 {
		g.globalLoad = 0
	}
	if g.globalLoad > 1 {
		g.globalLoad = 1
	}
	for c := range g.state {
		p := g.rng.Float64()
		switch g.state[c] {
		case coreIdle:
			if p < r.IdleToBusy {
				g.state[c] = coreBusy
			}
		case coreBusy:
			switch {
			case p < r.BusyToIdle:
				g.state[c] = coreIdle
			case p < r.BusyToIdle+r.BusyToFPU:
				g.state[c] = coreFPU
			}
		case coreFPU:
			if p < r.FPUToBusy {
				g.state[c] = coreBusy
			}
		}
		// Smooth utilization toward the state target (AR(1) with jitter),
		// blended with the shared load by the effective coupling.
		target := 0.0
		switch g.state[c] {
		case coreBusy:
			target = 0.75 + 0.25*g.rng.Float64()
		case coreFPU:
			target = 0.85 + 0.15*g.rng.Float64()
		}
		if cpl := g.coupling; cpl > 0 {
			target = (1-cpl)*target + cpl*g.globalLoad
		}
		const alpha = 0.35
		g.util[c] += alpha * (target - g.util[c])
		if g.util[c] < 0 {
			g.util[c] = 0
		}
		if g.util[c] > 1 {
			g.util[c] = 1
		}
	}
}

// advanceDVFS runs the per-core frequency governor: step up when smoothed
// utilization exceeds UpAt, down below DownAt, at most once per Hold steps.
// Deterministic — no RNG draws.
func (g *Generator) advanceDVFS() {
	d := g.spec.DVFS
	if d == nil {
		return
	}
	for c := range g.dvfsLevel {
		if g.dvfsHold[c] > 0 {
			g.dvfsHold[c]--
			continue
		}
		switch {
		case g.util[c] > d.UpAt && g.dvfsLevel[c] < len(d.Levels)-1:
			g.dvfsLevel[c]++
			g.dvfsHold[c] = d.Hold
		case g.util[c] < d.DownAt && g.dvfsLevel[c] > 0:
			g.dvfsLevel[c]--
			g.dvfsHold[c] = d.Hold
		}
	}
}

// evalEnvelopes computes the per-kind duty multipliers for step idx.
// Envelopes targeting the same kind (or the catch-all "") compose
// multiplicatively.
func (g *Generator) evalEnvelopes(idx int) {
	for k := range g.envMul {
		g.envMul[k] = 1
	}
	for i := range g.spec.Envelopes {
		e := &g.spec.Envelopes[i]
		v := envelopeValue(e, idx)
		if e.Kind == "" {
			for k := range g.envMul {
				g.envMul[k] *= v
			}
			continue
		}
		g.envMul[envKindIndex[e.Kind]] *= v
	}
}

// clampActivity keeps an envelope-modulated activity a fraction: activity
// feeds Base + Active·act power models whose budgets assume act ∈ [0,1].
func clampActivity(a float64) float64 {
	if a > 1 {
		return 1
	}
	return a
}

// envelopeValue evaluates one envelope's waveform at step idx.
func envelopeValue(e *workload.Envelope, idx int) float64 {
	pos := math.Mod(float64(idx)/float64(e.Period)+e.Phase, 1)
	var w float64
	switch e.Shape {
	case "", "sine":
		w = 0.5 * (1 + math.Sin(2*math.Pi*pos))
	case "square":
		if pos < 0.5 {
			w = 1
		}
	case "saw":
		w = pos
	}
	return e.Min + (e.Max-e.Min)*w
}

// migrate emulates OS rebalancing: move the hottest task to the idlest core.
func (g *Generator) migrate() {
	busiest, idlest := -1, -1
	for c := range g.util {
		if g.state[c] != coreIdle && (busiest < 0 || g.util[c] > g.util[busiest]) {
			busiest = c
		}
		if g.state[c] == coreIdle && (idlest < 0 || g.util[c] < g.util[idlest]) {
			idlest = c
		}
	}
	if busiest < 0 || idlest < 0 {
		return
	}
	g.state[busiest], g.state[idlest] = g.state[idlest], g.state[busiest]
	g.util[busiest], g.util[idlest] = g.util[idlest], g.util[busiest]
}

// blockPowers maps the current workload state to per-block watts.
func (g *Generator) blockPowers() []float64 {
	c := g.cfg
	p := make([]float64, len(g.plan.Blocks))
	if g.hasEnv {
		// Duty envelopes modulate the activity feeding the power model;
		// core utilization stays clamped to [0,1] so budget bounds hold.
		m := g.envMul[envCore]
		for ci, u := range g.util {
			u *= m
			if u > 1 {
				u = 1
			}
			g.uEff[ci] = u
		}
	}
	var meanUtil, fpuShare float64
	for ci, b := range g.cores {
		u := g.uEff[ci]
		du := u
		if d := g.spec.DVFS; d != nil {
			// Dynamic power ∝ f·V² with V ∝ f: cube the relative frequency.
			f := d.Levels[g.dvfsLevel[ci]]
			du = u * f * f * f
		}
		p[b] = c.CoreIdleW + (c.CoreBusyW-c.CoreIdleW)*du
		meanUtil += u
		if g.state[ci] == coreFPU {
			fpuShare++
		}
	}
	if len(g.cores) > 0 {
		meanUtil /= float64(len(g.cores))
		fpuShare /= float64(len(g.cores))
	}
	// Each cache bank couples to the utilization of the cores sharing its
	// column position (nearest cores by layout order).
	for k, b := range g.caches {
		act := g.cacheActivity(k)
		if g.hasEnv {
			act = clampActivity(act * g.envMul[envCache])
		}
		p[b] = c.CacheBaseW + c.CacheActiveW*act
	}
	for _, b := range g.xbars {
		act := meanUtil
		if g.hasEnv {
			act = clampActivity(act * g.envMul[envCrossbar])
		}
		p[b] = c.CrossbarBaseW + c.CrossbarActiveW*act
	}
	for _, b := range g.fpus {
		act := fpuShare
		if g.hasEnv {
			act = clampActivity(act * g.envMul[envFPU])
		}
		p[b] = c.FPUBaseW + c.FPUActiveW*act
	}
	for _, b := range g.others {
		w := c.OtherW
		if g.hasEnv {
			w *= g.envMul[envOther]
		}
		p[b] = w
	}
	return p
}

// cacheActivity estimates the utilization seen by cache bank k by averaging
// the cores at the matching position in layout order. With the T1 layout
// (4+4 cores, 4+4 banks) bank k pairs with core k.
func (g *Generator) cacheActivity(k int) float64 {
	if len(g.cores) == 0 {
		return 0
	}
	if len(g.caches) == len(g.cores) {
		return g.uEff[k]
	}
	// General fallback: proportionally map banks onto cores.
	ci := k * len(g.cores) / len(g.caches)
	return g.uEff[ci]
}

// TotalPower sums a per-block power vector.
func TotalPower(blockPowers []float64) float64 {
	var s float64
	for _, v := range blockPowers {
		s += v
	}
	return s
}

// SpreadToCells converts per-block watts into per-cell watts on the raster:
// each block's power is divided uniformly over the cells it covers
// (the paper's "large blocks having the same average power consumption").
// Cells not covered by any block receive zero.
func SpreadToCells(r *floorplan.Raster, blockPowers []float64) []float64 {
	out := make([]float64, r.Grid.N())
	SpreadToCellsInto(out, r, blockPowers)
	return out
}

// SpreadToCellsInto is the allocation-free form of SpreadToCells: the
// per-cell watts are written into dst (length N), which is zeroed first.
func SpreadToCellsInto(dst []float64, r *floorplan.Raster, blockPowers []float64) {
	if len(blockPowers) != len(r.Plan.Blocks) {
		panic(fmt.Sprintf("power: %d block powers for %d blocks", len(blockPowers), len(r.Plan.Blocks)))
	}
	if len(dst) != r.Grid.N() {
		panic(fmt.Sprintf("power: dst length %d for %d cells", len(dst), r.Grid.N()))
	}
	for i := range dst {
		dst[i] = 0
	}
	for b, watts := range blockPowers {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			continue
		}
		per := watts / float64(len(cells))
		for _, i := range cells {
			dst[i] = per
		}
	}
}
