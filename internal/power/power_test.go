package power

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/workload"
)

func t1gen(t *testing.T, s Scenario, seed int64) (*floorplan.Floorplan, *Generator) {
	t.Helper()
	fp := floorplan.UltraSparcT1()
	return fp, NewGenerator(fp, Config{Scenario: s, Seed: seed})
}

func TestGeneratorDeterministic(t *testing.T) {
	_, g1 := t1gen(t, ScenarioWeb, 7)
	_, g2 := t1gen(t, ScenarioWeb, 7)
	for i := 0; i < 50; i++ {
		p1, p2 := g1.Step(), g2.Step()
		for b := range p1 {
			if p1[b] != p2[b] {
				t.Fatalf("step %d block %d: %v vs %v", i, b, p1[b], p2[b])
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	_, g1 := t1gen(t, ScenarioWeb, 1)
	_, g2 := t1gen(t, ScenarioWeb, 2)
	same := true
	for i := 0; i < 50 && same; i++ {
		p1, p2 := g1.Step(), g2.Step()
		for b := range p1 {
			if p1[b] != p2[b] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPowersWithinBounds(t *testing.T) {
	fp, g := t1gen(t, ScenarioMixed, 3)
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 1000; i++ {
		p := g.Step()
		if len(p) != len(fp.Blocks) {
			t.Fatalf("power vector length %d, want %d", len(p), len(fp.Blocks))
		}
		for b, w := range p {
			if w < 0 {
				t.Fatalf("negative power %v on block %d", w, b)
			}
			if fp.Blocks[b].Kind == floorplan.KindCore {
				if w < cfg.CoreIdleW-1e-9 || w > cfg.CoreBusyW+1e-9 {
					t.Fatalf("core power %v outside [%v,%v]", w, cfg.CoreIdleW, cfg.CoreBusyW)
				}
			}
		}
	}
}

func TestScenarioActivityOrdering(t *testing.T) {
	// Compute workload must dissipate clearly more than idle workload.
	avg := func(s Scenario) float64 {
		_, g := t1gen(t, s, 11)
		var tot float64
		const steps = 2000
		for i := 0; i < steps; i++ {
			tot += TotalPower(g.Step())
		}
		return tot / steps
	}
	idle, web, compute := avg(ScenarioIdle), avg(ScenarioWeb), avg(ScenarioCompute)
	if !(idle < web && web < compute) {
		t.Fatalf("expected idle < web < compute, got %v < %v < %v", idle, web, compute)
	}
}

func TestComputeScenarioPowerBudget(t *testing.T) {
	// Sustained compute should land in a T1-class envelope (tens of watts).
	_, g := t1gen(t, ScenarioCompute, 5)
	var tot float64
	const steps = 2000
	for i := 0; i < steps; i++ {
		tot += TotalPower(g.Step())
	}
	avg := tot / steps
	if avg < 30 || avg > 90 {
		t.Fatalf("compute average power %v W, want within [30,90]", avg)
	}
}

func TestTraceVariesOverTime(t *testing.T) {
	_, g := t1gen(t, ScenarioWeb, 13)
	first := g.Step()
	varied := false
	for i := 0; i < 200; i++ {
		p := g.Step()
		for b := range p {
			if math.Abs(p[b]-first[b]) > 0.5 {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("trace never varied — Markov dynamics broken")
	}
}

func TestCoresVaryIndependently(t *testing.T) {
	// Over a long run, per-core powers must not be perfectly correlated;
	// otherwise there is no spatial diversity for PCA to exploit.
	fp, g := t1gen(t, ScenarioWeb, 17)
	cores := fp.KindBlocks(floorplan.KindCore)
	const steps = 1500
	series := make([][]float64, len(cores))
	for i := range series {
		series[i] = make([]float64, steps)
	}
	for s := 0; s < steps; s++ {
		p := g.Step()
		for ci, b := range cores {
			series[ci][s] = p[b]
		}
	}
	corr := correlation(series[0], series[1])
	if corr > 0.9 {
		t.Fatalf("core0/core1 correlation %v — too synchronized", corr)
	}
	varOK := 0
	for _, s := range series {
		if variance(s) > 0.1 {
			varOK++
		}
	}
	if varOK < len(series)/2 {
		t.Fatalf("only %d of %d cores show activity variance", varOK, len(series))
	}
}

func variance(v []float64) float64 {
	var m float64
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s / float64(len(v))
}

func correlation(a, b []float64) float64 {
	va, vb := variance(a), variance(b)
	if va == 0 || vb == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
	}
	cov /= float64(len(a))
	return cov / math.Sqrt(va*vb)
}

func TestSpreadToCellsConservesPower(t *testing.T) {
	fp, g := t1gen(t, ScenarioWeb, 19)
	grid := floorplan.Grid{W: 60, H: 56}
	r := fp.Rasterize(grid)
	for i := 0; i < 20; i++ {
		bp := g.Step()
		cp := SpreadToCells(r, bp)
		var tot float64
		for _, w := range cp {
			tot += w
		}
		if math.Abs(tot-TotalPower(bp)) > 1e-9 {
			t.Fatalf("cell power %v != block power %v", tot, TotalPower(bp))
		}
	}
}

func TestSpreadToCellsUniformWithinBlock(t *testing.T) {
	fp, g := t1gen(t, ScenarioCompute, 23)
	grid := floorplan.Grid{W: 30, H: 28}
	r := fp.Rasterize(grid)
	bp := g.Step()
	cp := SpreadToCells(r, bp)
	for b := range fp.Blocks {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			continue
		}
		want := bp[b] / float64(len(cells))
		for _, i := range cells {
			if math.Abs(cp[i]-want) > 1e-12 {
				t.Fatalf("block %d cell %d: %v, want %v", b, i, cp[i], want)
			}
		}
	}
}

func TestSpreadToCellsLengthMismatchPanics(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 10, H: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpreadToCells(r, []float64{1, 2})
}

func TestMigrationMovesLoad(t *testing.T) {
	// With a short migration period, a busy core's task must eventually move.
	fp := floorplan.UltraSparcT1()
	g := NewGenerator(fp, Config{Scenario: ScenarioCompute, Seed: 29, MigrationPeriod: 5})
	cores := fp.KindBlocks(floorplan.KindCore)
	argmax := func(p []float64) int {
		best := cores[0]
		for _, b := range cores {
			if p[b] > p[best] {
				best = b
			}
		}
		return best
	}
	seen := make(map[int]bool)
	for i := 0; i < 400; i++ {
		seen[argmax(g.Step())] = true
	}
	if len(seen) < 3 {
		t.Fatalf("hottest core visited only %d distinct cores; migration not working", len(seen))
	}
}

func TestScenarioString(t *testing.T) {
	for s, want := range map[Scenario]string{
		ScenarioWeb: "web", ScenarioCompute: "compute",
		ScenarioMixed: "mixed", ScenarioIdle: "idle", Scenario(9): "Scenario(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestLoadCouplingCorrelatesCores(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	cores := fp.KindBlocks(floorplan.KindCore)
	run := func(coupling float64) float64 {
		g := NewGenerator(fp, Config{Scenario: ScenarioWeb, Seed: 31, LoadCoupling: coupling})
		const steps = 1500
		a := make([]float64, steps)
		b := make([]float64, steps)
		for s := 0; s < steps; s++ {
			p := g.Step()
			a[s], b[s] = p[cores[0]], p[cores[5]]
		}
		return correlation(a, b)
	}
	weak, strong := run(0), run(0.9)
	if strong <= weak {
		t.Fatalf("coupling 0.9 correlation %v not above coupling 0 (%v)", strong, weak)
	}
	if strong < 0.5 {
		t.Fatalf("strong coupling only reaches correlation %v", strong)
	}
}

func TestLoadCouplingKeepsPowerBounds(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	g := NewGenerator(fp, Config{Scenario: ScenarioMixed, Seed: 37, LoadCoupling: 0.75})
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 800; i++ {
		for b, w := range g.Step() {
			if fp.Blocks[b].Kind == floorplan.KindCore && (w < cfg.CoreIdleW-1e-9 || w > cfg.CoreBusyW+1e-9) {
				t.Fatalf("core power %v outside bounds under coupling", w)
			}
		}
	}
}

func TestSpreadToCellsIntoMatchesAndZeroAlloc(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 16, H: 14})
	bp := make([]float64, len(fp.Blocks))
	for i := range bp {
		bp[i] = float64(i) * 0.3
	}
	want := SpreadToCells(r, bp)
	dst := make([]float64, r.Grid.N())
	for i := range dst {
		dst[i] = 99 // must be overwritten, including uncovered cells
	}
	SpreadToCellsInto(dst, r, bp)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("cell %d: %v != %v", i, dst[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { SpreadToCellsInto(dst, r, bp) }); allocs != 0 {
		t.Fatalf("SpreadToCellsInto allocated %v times per run", allocs)
	}
}

func TestSpreadToCellsIntoBadDstPanics(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 8, H: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpreadToCellsInto(make([]float64, 3), r, make([]float64, len(fp.Blocks)))
}

// --- spec-driven generator path ---

func stepTrace(g *Generator, steps int) [][]float64 {
	out := make([][]float64, steps)
	for i := range out {
		out[i] = g.Step()
	}
	return out
}

func tracesEqual(a, b [][]float64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPresetSpecBitEquivalence pins the preset migration: the enum arms
// delegate to registry specs, and the delegation must reproduce the enum
// trace bit-for-bit (700 steps covers the mixed scenario's full 600-step
// phase cycle and many migration periods).
func TestPresetSpecBitEquivalence(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	for _, sc := range []Scenario{ScenarioWeb, ScenarioCompute, ScenarioMixed, ScenarioIdle} {
		for _, cpl := range []float64{0, 0.75} {
			enum := NewGenerator(fp, Config{Scenario: sc, Seed: 101, LoadCoupling: cpl})
			spec, err := workload.Parse(sc.String())
			if err != nil {
				t.Fatal(err)
			}
			sg, err := NewSpecGenerator(fp, spec, Config{Seed: 101, LoadCoupling: cpl})
			if err != nil {
				t.Fatal(err)
			}
			if !tracesEqual(stepTrace(enum, 700), stepTrace(sg, 700)) {
				t.Fatalf("scenario %v coupling %v: spec trace diverges from enum trace", sc, cpl)
			}
		}
	}
}

// TestSpecSeedDeterminism pins bit-reproducibility for every catalog spec —
// together they exercise the MMPP arrival draw, the migration-chain draw,
// the DVFS governor and the envelope paths.
func TestSpecSeedDeterminism(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	for _, name := range workload.Names() {
		mk := func(seed int64) *Generator {
			spec, err := workload.Parse(name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewSpecGenerator(fp, spec, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		if !tracesEqual(stepTrace(mk(9), 400), stepTrace(mk(9), 400)) {
			t.Fatalf("spec %q: same seed produced different traces", name)
		}
		if tracesEqual(stepTrace(mk(9), 400), stepTrace(mk(10), 400)) {
			t.Fatalf("spec %q: different seeds produced identical traces", name)
		}
	}
}

// TestScenarioStatisticalEnvelopes pins each catalog scenario's mean and
// peak total power on the T1 so the spec migration (or a later edit to the
// registry) cannot silently change a preset's thermal regime. Bounds carry
// generous margins around values measured over several seeds; the peak cap
// is the floorplan's physical budget (all cores busy, everything active).
func TestScenarioStatisticalEnvelopes(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	envelopes := map[string][2]float64{ // name -> [meanLo, meanHi] watts
		"web":     {40, 56},
		"compute": {60, 82},
		"mixed":   {52, 70},
		"idle":    {14, 32},
		"bursty":  {38, 56},
		"dvfs":    {58, 80},
		"thrash":  {40, 58},
		"wave":    {40, 58},
	}
	const steps = 3000
	const peakCap = 82 // 8 cores x 6.5 + caches + crossbar + fpu ≈ 81.4 W
	for _, name := range workload.Names() {
		bounds, ok := envelopes[name]
		if !ok {
			t.Fatalf("scenario %q has no pinned statistical envelope; add one", name)
		}
		for _, seed := range []int64{3, 11} {
			spec, _ := workload.Parse(name)
			g, err := NewSpecGenerator(fp, spec, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			var sum, peak float64
			for i := 0; i < steps; i++ {
				tot := TotalPower(g.Step())
				sum += tot
				if tot > peak {
					peak = tot
				}
			}
			mean := sum / steps
			if mean < bounds[0] || mean > bounds[1] {
				t.Errorf("%s seed %d: mean power %.2f W outside pinned [%v, %v]",
					name, seed, mean, bounds[0], bounds[1])
			}
			if peak > peakCap || peak < mean {
				t.Errorf("%s seed %d: peak power %.2f W outside (mean, %v]", name, seed, peak, peakCap)
			}
		}
	}
}

func TestArrivalBurstsRaiseActivity(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	mean := func(s *workload.Spec) float64 {
		g, err := NewSpecGenerator(fp, s, Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const steps = 3000
		for i := 0; i < steps; i++ {
			sum += TotalPower(g.Step())
		}
		return sum / steps
	}
	with, _ := workload.Parse("bursty")
	without := with.Clone()
	without.Arrival = nil
	mw, mo := mean(with), mean(without)
	if mw < mo+1 {
		t.Fatalf("MMPP bursts raised mean power only from %.2f to %.2f W; expected a clear increase", mo, mw)
	}
}

func TestDVFSThrottlesPower(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	base, _ := workload.Parse("compute")
	throttled := base.Clone()
	// A one-level ladder pins every core at 60% frequency: dynamic power
	// scales by 0.6³ regardless of the governor thresholds.
	throttled.DVFS = &workload.DVFS{Levels: []float64{0.6}, UpAt: 0.9, DownAt: 0.1}
	mean := func(s *workload.Spec) float64 {
		g, err := NewSpecGenerator(fp, s, Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const steps = 2000
		for i := 0; i < steps; i++ {
			sum += TotalPower(g.Step())
		}
		return sum / steps
	}
	mb, mt := mean(base), mean(throttled)
	if mt >= mb-5 {
		t.Fatalf("0.6x DVFS ladder barely moved mean power: %.2f vs %.2f W", mt, mb)
	}
}

func TestEnvelopeScalesDuty(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	base, _ := workload.Parse("compute")
	damped := base.Clone()
	// Min == Max gives a constant multiplier — deterministic scaling.
	damped.Envelopes = []workload.Envelope{{Kind: "core", Period: 10, Min: 0.3, Max: 0.3}}
	mean := func(s *workload.Spec) float64 {
		g, err := NewSpecGenerator(fp, s, Config{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const steps = 1500
		for i := 0; i < steps; i++ {
			sum += TotalPower(g.Step())
		}
		return sum / steps
	}
	mb, md := mean(base), mean(damped)
	if md >= mb-10 {
		t.Fatalf("0.3x core duty envelope barely moved mean power: %.2f vs %.2f W", md, mb)
	}
	// Core powers must stay within budget bounds under any envelope.
	g, _ := NewSpecGenerator(fp, damped, Config{Seed: 13})
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 500; i++ {
		for b, w := range g.Step() {
			if fp.Blocks[b].Kind == floorplan.KindCore && (w < cfg.CoreIdleW-1e-9 || w > cfg.CoreBusyW+1e-9) {
				t.Fatalf("core power %v outside budget under envelope", w)
			}
		}
	}
}

func TestMigrationChainMovesLoad(t *testing.T) {
	// A pure migration Markov chain (no periodic rebalancing) must still
	// move the hottest task across the die.
	fp := floorplan.UltraSparcT1()
	spec, _ := workload.Parse("compute")
	spec.Migration = workload.Migration{Period: -1, Rate: 0.3}
	g, err := NewSpecGenerator(fp, spec, Config{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	cores := fp.KindBlocks(floorplan.KindCore)
	seen := make(map[int]bool)
	for i := 0; i < 400; i++ {
		p := g.Step()
		best := cores[0]
		for _, b := range cores {
			if p[b] > p[best] {
				best = b
			}
		}
		seen[best] = true
	}
	if len(seen) < 3 {
		t.Fatalf("hottest core visited only %d distinct cores under the migration chain", len(seen))
	}
}

func TestSpecLoadCouplingCorrelatesCores(t *testing.T) {
	// LoadCoupling declared in the spec (not the Config) must correlate the
	// cores the same way Config.LoadCoupling does.
	fp := floorplan.UltraSparcT1()
	cores := fp.KindBlocks(floorplan.KindCore)
	run := func(cpl float64) float64 {
		spec, _ := workload.Parse("web")
		spec.LoadCoupling = cpl
		g, err := NewSpecGenerator(fp, spec, Config{Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		const steps = 1500
		a := make([]float64, steps)
		b := make([]float64, steps)
		for s := 0; s < steps; s++ {
			p := g.Step()
			a[s], b[s] = p[cores[0]], p[cores[5]]
		}
		return correlation(a, b)
	}
	weak, strong := run(0), run(0.9)
	if strong <= weak || strong < 0.5 {
		t.Fatalf("spec-level coupling 0.9 correlation %v vs %v at 0", strong, weak)
	}
}

func TestSpecGeneratorRejectsInvalidSpec(t *testing.T) {
	_, err := NewSpecGenerator(floorplan.UltraSparcT1(), &workload.Spec{Name: "empty"}, Config{})
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSpecGeneratorIsolatedFromCallerSpec(t *testing.T) {
	// The generator must clone the spec: mutating the caller's copy after
	// construction cannot change the trace.
	fp := floorplan.UltraSparcT1()
	spec, _ := workload.Parse("web")
	g1, _ := NewSpecGenerator(fp, spec, Config{Seed: 17})
	spec.Phases[0].Rates = workload.Rates{IdleToBusy: 1, FPUToBusy: 1}
	spec2, _ := workload.Parse("web")
	g2, _ := NewSpecGenerator(fp, spec2, Config{Seed: 17})
	if !tracesEqual(stepTrace(g1, 200), stepTrace(g2, 200)) {
		t.Fatal("mutating the caller's spec changed a running generator")
	}
}

func TestManycoreConfigScalesBudgets(t *testing.T) {
	t1 := ManycoreConfig(8, 8)
	var def Config
	def.defaults()
	if t1 != def {
		t.Fatalf("ManycoreConfig(8,8) = %+v, want the T1 defaults %+v", t1, def)
	}
	big := ManycoreConfig(256, 64)
	if big.CoreBusyW*256 > def.CoreBusyW*8*1.001 || big.CacheActiveW*64 > def.CacheActiveW*8*1.001 {
		t.Fatalf("scaled budgets exceed the T1-class die envelope: %+v", big)
	}
	if zero := ManycoreConfig(0, 0); zero != def {
		t.Fatalf("ManycoreConfig(0,0) should fall back to defaults, got %+v", zero)
	}
}

func TestSpecCouplingWinsOverConfigDefault(t *testing.T) {
	// load_coupling declared in the spec is part of the scenario and must
	// not be silently overridden by the caller-side Config default.
	fp := floorplan.UltraSparcT1()
	cores := fp.KindBlocks(floorplan.KindCore)
	corr := func(specCpl, cfgCpl float64) float64 {
		spec, _ := workload.Parse("web")
		spec.LoadCoupling = specCpl
		g, err := NewSpecGenerator(fp, spec, Config{Seed: 41, LoadCoupling: cfgCpl})
		if err != nil {
			t.Fatal(err)
		}
		const steps = 1500
		a := make([]float64, steps)
		b := make([]float64, steps)
		for s := 0; s < steps; s++ {
			p := g.Step()
			a[s], b[s] = p[cores[0]], p[cores[5]]
		}
		return correlation(a, b)
	}
	if got := corr(0.9, 0.1); got < 0.5 {
		t.Fatalf("spec coupling 0.9 under config 0.1 only reaches correlation %v; the spec must win", got)
	}
	if got := corr(0, 0.9); got < 0.5 {
		t.Fatalf("config coupling 0.9 as default only reaches correlation %v", got)
	}
}

func TestEnvelopeOverdriveStaysWithinBudgets(t *testing.T) {
	// Envelopes with Max > 1 cannot push activity-coupled blocks past
	// their Base + Active budgets: modulated activity is clamped to [0,1].
	fp := floorplan.UltraSparcT1()
	spec, _ := workload.Parse("compute")
	spec.Envelopes = []workload.Envelope{
		{Kind: "cache", Period: 10, Min: 5, Max: 5},
		{Kind: "crossbar", Period: 10, Min: 5, Max: 5},
		{Kind: "fpu", Period: 10, Min: 5, Max: 5},
	}
	g, err := NewSpecGenerator(fp, spec, Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 500; i++ {
		for b, w := range g.Step() {
			var cap float64
			switch fp.Blocks[b].Kind {
			case floorplan.KindCache:
				cap = cfg.CacheBaseW + cfg.CacheActiveW
			case floorplan.KindCrossbar:
				cap = cfg.CrossbarBaseW + cfg.CrossbarActiveW
			case floorplan.KindFPU:
				cap = cfg.FPUBaseW + cfg.FPUActiveW
			default:
				continue
			}
			if w > cap+1e-9 {
				t.Fatalf("block %d (%v) power %v exceeds budget %v under a 5x envelope",
					b, fp.Blocks[b].Kind, w, cap)
			}
		}
	}
}

func TestConfigForScalesByFloorplan(t *testing.T) {
	t1 := ConfigFor(floorplan.UltraSparcT1(), 0.75)
	if t1.LoadCoupling != 0.75 || t1.CoreBusyW != 0 {
		t.Fatalf("T1 ConfigFor = %+v; want zero budgets (defaults) + coupling", t1)
	}
	fp, err := floorplan.Manycore(64, 16, floorplan.Grid{W: 8, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	mc := ConfigFor(fp, 0.5)
	want := ManycoreConfig(64, 16)
	want.LoadCoupling = 0.5
	if mc != want {
		t.Fatalf("manycore ConfigFor = %+v, want %+v", mc, want)
	}
}
