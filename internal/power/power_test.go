package power

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func t1gen(t *testing.T, s Scenario, seed int64) (*floorplan.Floorplan, *Generator) {
	t.Helper()
	fp := floorplan.UltraSparcT1()
	return fp, NewGenerator(fp, Config{Scenario: s, Seed: seed})
}

func TestGeneratorDeterministic(t *testing.T) {
	_, g1 := t1gen(t, ScenarioWeb, 7)
	_, g2 := t1gen(t, ScenarioWeb, 7)
	for i := 0; i < 50; i++ {
		p1, p2 := g1.Step(), g2.Step()
		for b := range p1 {
			if p1[b] != p2[b] {
				t.Fatalf("step %d block %d: %v vs %v", i, b, p1[b], p2[b])
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	_, g1 := t1gen(t, ScenarioWeb, 1)
	_, g2 := t1gen(t, ScenarioWeb, 2)
	same := true
	for i := 0; i < 50 && same; i++ {
		p1, p2 := g1.Step(), g2.Step()
		for b := range p1 {
			if p1[b] != p2[b] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPowersWithinBounds(t *testing.T) {
	fp, g := t1gen(t, ScenarioMixed, 3)
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 1000; i++ {
		p := g.Step()
		if len(p) != len(fp.Blocks) {
			t.Fatalf("power vector length %d, want %d", len(p), len(fp.Blocks))
		}
		for b, w := range p {
			if w < 0 {
				t.Fatalf("negative power %v on block %d", w, b)
			}
			if fp.Blocks[b].Kind == floorplan.KindCore {
				if w < cfg.CoreIdleW-1e-9 || w > cfg.CoreBusyW+1e-9 {
					t.Fatalf("core power %v outside [%v,%v]", w, cfg.CoreIdleW, cfg.CoreBusyW)
				}
			}
		}
	}
}

func TestScenarioActivityOrdering(t *testing.T) {
	// Compute workload must dissipate clearly more than idle workload.
	avg := func(s Scenario) float64 {
		_, g := t1gen(t, s, 11)
		var tot float64
		const steps = 2000
		for i := 0; i < steps; i++ {
			tot += TotalPower(g.Step())
		}
		return tot / steps
	}
	idle, web, compute := avg(ScenarioIdle), avg(ScenarioWeb), avg(ScenarioCompute)
	if !(idle < web && web < compute) {
		t.Fatalf("expected idle < web < compute, got %v < %v < %v", idle, web, compute)
	}
}

func TestComputeScenarioPowerBudget(t *testing.T) {
	// Sustained compute should land in a T1-class envelope (tens of watts).
	_, g := t1gen(t, ScenarioCompute, 5)
	var tot float64
	const steps = 2000
	for i := 0; i < steps; i++ {
		tot += TotalPower(g.Step())
	}
	avg := tot / steps
	if avg < 30 || avg > 90 {
		t.Fatalf("compute average power %v W, want within [30,90]", avg)
	}
}

func TestTraceVariesOverTime(t *testing.T) {
	_, g := t1gen(t, ScenarioWeb, 13)
	first := g.Step()
	varied := false
	for i := 0; i < 200; i++ {
		p := g.Step()
		for b := range p {
			if math.Abs(p[b]-first[b]) > 0.5 {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("trace never varied — Markov dynamics broken")
	}
}

func TestCoresVaryIndependently(t *testing.T) {
	// Over a long run, per-core powers must not be perfectly correlated;
	// otherwise there is no spatial diversity for PCA to exploit.
	fp, g := t1gen(t, ScenarioWeb, 17)
	cores := fp.KindBlocks(floorplan.KindCore)
	const steps = 1500
	series := make([][]float64, len(cores))
	for i := range series {
		series[i] = make([]float64, steps)
	}
	for s := 0; s < steps; s++ {
		p := g.Step()
		for ci, b := range cores {
			series[ci][s] = p[b]
		}
	}
	corr := correlation(series[0], series[1])
	if corr > 0.9 {
		t.Fatalf("core0/core1 correlation %v — too synchronized", corr)
	}
	varOK := 0
	for _, s := range series {
		if variance(s) > 0.1 {
			varOK++
		}
	}
	if varOK < len(series)/2 {
		t.Fatalf("only %d of %d cores show activity variance", varOK, len(series))
	}
}

func variance(v []float64) float64 {
	var m float64
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s / float64(len(v))
}

func correlation(a, b []float64) float64 {
	va, vb := variance(a), variance(b)
	if va == 0 || vb == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
	}
	cov /= float64(len(a))
	return cov / math.Sqrt(va*vb)
}

func TestSpreadToCellsConservesPower(t *testing.T) {
	fp, g := t1gen(t, ScenarioWeb, 19)
	grid := floorplan.Grid{W: 60, H: 56}
	r := fp.Rasterize(grid)
	for i := 0; i < 20; i++ {
		bp := g.Step()
		cp := SpreadToCells(r, bp)
		var tot float64
		for _, w := range cp {
			tot += w
		}
		if math.Abs(tot-TotalPower(bp)) > 1e-9 {
			t.Fatalf("cell power %v != block power %v", tot, TotalPower(bp))
		}
	}
}

func TestSpreadToCellsUniformWithinBlock(t *testing.T) {
	fp, g := t1gen(t, ScenarioCompute, 23)
	grid := floorplan.Grid{W: 30, H: 28}
	r := fp.Rasterize(grid)
	bp := g.Step()
	cp := SpreadToCells(r, bp)
	for b := range fp.Blocks {
		cells := r.CellsOf(b)
		if len(cells) == 0 {
			continue
		}
		want := bp[b] / float64(len(cells))
		for _, i := range cells {
			if math.Abs(cp[i]-want) > 1e-12 {
				t.Fatalf("block %d cell %d: %v, want %v", b, i, cp[i], want)
			}
		}
	}
}

func TestSpreadToCellsLengthMismatchPanics(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 10, H: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpreadToCells(r, []float64{1, 2})
}

func TestMigrationMovesLoad(t *testing.T) {
	// With a short migration period, a busy core's task must eventually move.
	fp := floorplan.UltraSparcT1()
	g := NewGenerator(fp, Config{Scenario: ScenarioCompute, Seed: 29, MigrationPeriod: 5})
	cores := fp.KindBlocks(floorplan.KindCore)
	argmax := func(p []float64) int {
		best := cores[0]
		for _, b := range cores {
			if p[b] > p[best] {
				best = b
			}
		}
		return best
	}
	seen := make(map[int]bool)
	for i := 0; i < 400; i++ {
		seen[argmax(g.Step())] = true
	}
	if len(seen) < 3 {
		t.Fatalf("hottest core visited only %d distinct cores; migration not working", len(seen))
	}
}

func TestScenarioString(t *testing.T) {
	for s, want := range map[Scenario]string{
		ScenarioWeb: "web", ScenarioCompute: "compute",
		ScenarioMixed: "mixed", ScenarioIdle: "idle", Scenario(9): "Scenario(9)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestLoadCouplingCorrelatesCores(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	cores := fp.KindBlocks(floorplan.KindCore)
	run := func(coupling float64) float64 {
		g := NewGenerator(fp, Config{Scenario: ScenarioWeb, Seed: 31, LoadCoupling: coupling})
		const steps = 1500
		a := make([]float64, steps)
		b := make([]float64, steps)
		for s := 0; s < steps; s++ {
			p := g.Step()
			a[s], b[s] = p[cores[0]], p[cores[5]]
		}
		return correlation(a, b)
	}
	weak, strong := run(0), run(0.9)
	if strong <= weak {
		t.Fatalf("coupling 0.9 correlation %v not above coupling 0 (%v)", strong, weak)
	}
	if strong < 0.5 {
		t.Fatalf("strong coupling only reaches correlation %v", strong)
	}
}

func TestLoadCouplingKeepsPowerBounds(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	g := NewGenerator(fp, Config{Scenario: ScenarioMixed, Seed: 37, LoadCoupling: 0.75})
	cfg := Config{}
	cfg.defaults()
	for i := 0; i < 800; i++ {
		for b, w := range g.Step() {
			if fp.Blocks[b].Kind == floorplan.KindCore && (w < cfg.CoreIdleW-1e-9 || w > cfg.CoreBusyW+1e-9) {
				t.Fatalf("core power %v outside bounds under coupling", w)
			}
		}
	}
}

func TestSpreadToCellsIntoMatchesAndZeroAlloc(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 16, H: 14})
	bp := make([]float64, len(fp.Blocks))
	for i := range bp {
		bp[i] = float64(i) * 0.3
	}
	want := SpreadToCells(r, bp)
	dst := make([]float64, r.Grid.N())
	for i := range dst {
		dst[i] = 99 // must be overwritten, including uncovered cells
	}
	SpreadToCellsInto(dst, r, bp)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("cell %d: %v != %v", i, dst[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { SpreadToCellsInto(dst, r, bp) }); allocs != 0 {
		t.Fatalf("SpreadToCellsInto allocated %v times per run", allocs)
	}
}

func TestSpreadToCellsIntoBadDstPanics(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	r := fp.Rasterize(floorplan.Grid{W: 8, H: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpreadToCellsInto(make([]float64, 3), r, make([]float64, len(fp.Blocks)))
}
