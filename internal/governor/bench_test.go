package governor

import (
	"testing"

	"repro/internal/floorplan"
)

// BenchmarkGovernStep measures one control step — per-core hottest-cell
// extraction plus the policy's cap decisions — on the manycore-256c die at
// the robustness suite's 32×32 grid. This is the increment the daemon's
// govern route adds per snapshot over a plain estimate.
// NOTE: ungated until the next documented BENCH_baseline.json re-baseline
// (benchdiff never gates benches present in only one file).
func BenchmarkGovernStep(b *testing.B) {
	fp, err := floorplan.Manycore(256, 256, floorplan.Grid{W: 16, H: 16})
	if err != nil {
		b.Fatal(err)
	}
	raster := fp.Rasterize(floorplan.Grid{W: 32, H: 32})
	pol, err := NewPolicy("hysteresis", Params{CeilingC: 80})
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := NewController(pol, nil, CoreCells(fp, raster))
	if err != nil {
		b.Fatal(err)
	}
	mapC := make([]float64, 32*32)
	for i := range mapC {
		mapC[i] = 60 + 25*float64(i%7)/7 // straddles the band so latches flip
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapC[i%len(mapC)] += 1e-9 // defeat any memoization without realloc
		ctrl.Step(mapC)
	}
}
