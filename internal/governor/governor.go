// Package governor closes the monitoring loop: it turns the estimated
// thermal map a Monitor reconstructs from M sensors into per-core DVFS cap
// decisions, and (in Loop) feeds the capped power vector back into the
// factor-once transient solver. The paper stops at passive reconstruction;
// this package is the reason a fleet wants that map — dynamic thermal
// management actuated from estimates instead of per-cell instrumentation.
//
// The actuation model reuses the workload DVFS-ladder machinery: a cap is an
// index into an ascending ladder of relative frequencies f ∈ (0,1], and a
// capped core's dynamic power scales as f³ (dynamic power ∝ f·V² with
// V ∝ f) while its delivered throughput scales as f. A Policy maps per-core
// temperatures to ladder levels; a Controller binds a policy to a floorplan
// so callers (the simulation loop, the daemon's govern route) hand it a full
// map and get back cap decisions.
//
// Three policies cover the classic DTM trade-offs:
//
//   - Threshold: memoryless trip — at or above TripC drop to the ladder
//     floor, below it run at nominal. Fast, but chatters when a core's
//     temperature rides the trip point.
//   - Hysteresis: a Schmitt trigger — throttle at SetC, release only below
//     ClearC. Inside the (ClearC, SetC) band the previous decision is held,
//     so the cap schedule cannot chatter however the temperature dithers.
//   - PICap: a per-core PI controller on the temperature error with a
//     clamped (anti-windup) integral, quantized down onto the ladder.
//     Smoothest control, tunable to hold a target just under the ceiling.
//
// All policies are deterministic: the same temperature sequence yields the
// same cap schedule, which is what makes closed-loop runs bit-reproducible
// (pinned by TestLoopDeterministic via Result.CapHash).
package governor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
)

// DefaultLadder is the stock DVFS ladder: four relative-frequency steps with
// nominal last, mirroring the workload registry's ladder idiom.
var DefaultLadder = []float64{0.5, 0.7, 0.85, 1.0}

// maxLadder bounds ladder length so levels always fit a byte (the cap-hash
// and the wire encoding both rely on that).
const maxLadder = 256

// ValidateLadder checks a DVFS ladder: non-empty, strictly ascending,
// every relative frequency in (0, 1].
func ValidateLadder(ladder []float64) error {
	if len(ladder) == 0 {
		return fmt.Errorf("governor: empty DVFS ladder")
	}
	if len(ladder) > maxLadder {
		return fmt.Errorf("governor: %d ladder levels exceed the cap of %d", len(ladder), maxLadder)
	}
	for i, f := range ladder {
		if !(f > 0 && f <= 1) || math.IsNaN(f) {
			return fmt.Errorf("governor: ladder level %d is %v, want (0,1]", i, f)
		}
		if i > 0 && f <= ladder[i-1] {
			return fmt.Errorf("governor: ladder not strictly ascending at level %d (%v after %v)", i, f, ladder[i-1])
		}
	}
	return nil
}

// Policy maps per-core temperatures to per-core ladder levels. Reset is
// called once before use with the core count and the validated ladder; Act
// is then called once per control step and mutates levels in place (levels[c]
// indexes the ladder; the previous step's decision is the starting value).
// Implementations must be deterministic functions of the Reset parameters
// and the Act call sequence.
type Policy interface {
	// Name returns the policy's registry name ("threshold", "hysteresis",
	// "pi").
	Name() string
	// Reset prepares per-core state. It reports an error when the policy's
	// parameters are degenerate (e.g. an inverted hysteresis band).
	Reset(cores int, ladder []float64) error
	// Act reads coreTempC (one temperature per core, °C) and writes the next
	// ladder level per core into levels.
	Act(coreTempC []float64, levels []int)
}

// Params collects the tuning knobs of every built-in policy; NewPolicy
// derives unset setpoints from CeilingC so a bare ceiling is a complete
// configuration. All temperatures are °C.
type Params struct {
	// CeilingC is the thermal ceiling the governor defends. Required.
	CeilingC float64
	// TripC is the threshold policy's trip point. Default CeilingC − 1.
	TripC float64
	// SetC / ClearC bound the hysteresis band. Defaults CeilingC − 1 and
	// SetC − 3.
	SetC   float64
	ClearC float64
	// TargetC is the PI policy's setpoint. Default CeilingC − 2.
	TargetC float64
	// Kp / Ki are the PI gains in relative frequency per °C (and per
	// °C·step). Defaults 0.10 and 0.02.
	Kp float64
	Ki float64
}

// PolicyNames lists the built-in policies in registry order.
func PolicyNames() []string {
	names := []string{"threshold", "hysteresis", "pi"}
	sort.Strings(names)
	return names
}

// NewPolicy builds a built-in policy by name, deriving unset Params
// setpoints from the ceiling.
func NewPolicy(name string, p Params) (Policy, error) {
	if !(p.CeilingC > 0) {
		return nil, fmt.Errorf("governor: ceiling %v °C, want > 0", p.CeilingC)
	}
	switch name {
	case "threshold":
		trip := p.TripC
		if trip == 0 {
			trip = p.CeilingC - 1
		}
		return &Threshold{TripC: trip}, nil
	case "hysteresis":
		set := p.SetC
		if set == 0 {
			set = p.CeilingC - 1
		}
		clear := p.ClearC
		if clear == 0 {
			clear = set - 3
		}
		return &Hysteresis{SetC: set, ClearC: clear}, nil
	case "pi":
		target := p.TargetC
		if target == 0 {
			target = p.CeilingC - 2
		}
		kp, ki := p.Kp, p.Ki
		if kp == 0 {
			kp = 0.10
		}
		if ki == 0 {
			ki = 0.02
		}
		return &PICap{TargetC: target, Kp: kp, Ki: ki}, nil
	}
	return nil, fmt.Errorf("governor: unknown policy %q (want threshold, hysteresis or pi)", name)
}

// Threshold is the memoryless trip policy: a core at or above TripC runs at
// the ladder floor, below it at nominal. Deliberately chatter-prone — it is
// the baseline the hysteresis band improves on.
type Threshold struct {
	TripC float64

	top int
}

// Name implements Policy.
func (t *Threshold) Name() string { return "threshold" }

// Reset implements Policy.
func (t *Threshold) Reset(cores int, ladder []float64) error {
	if math.IsNaN(t.TripC) {
		return fmt.Errorf("governor: threshold trip point is NaN")
	}
	t.top = len(ladder) - 1
	return nil
}

// Act implements Policy.
func (t *Threshold) Act(coreTempC []float64, levels []int) {
	for c, tc := range coreTempC {
		if tc >= t.TripC {
			levels[c] = 0
		} else {
			levels[c] = t.top
		}
	}
}

// Hysteresis is a per-core Schmitt trigger: throttle to the ladder floor at
// SetC, release to nominal only once the core cools to ClearC. While a
// core's temperature stays strictly inside the (ClearC, SetC) band its level
// never changes — the no-chatter property TestHysteresisNoChatter pins.
type Hysteresis struct {
	SetC   float64
	ClearC float64

	top int
	hot []bool
}

// Name implements Policy.
func (h *Hysteresis) Name() string { return "hysteresis" }

// Reset implements Policy.
func (h *Hysteresis) Reset(cores int, ladder []float64) error {
	if !(h.SetC > h.ClearC) {
		return fmt.Errorf("governor: hysteresis band inverted (set %v °C ≤ clear %v °C)", h.SetC, h.ClearC)
	}
	h.top = len(ladder) - 1
	h.hot = make([]bool, cores)
	return nil
}

// Act implements Policy.
func (h *Hysteresis) Act(coreTempC []float64, levels []int) {
	for c, tc := range coreTempC {
		switch {
		case tc >= h.SetC:
			h.hot[c] = true
		case tc <= h.ClearC:
			h.hot[c] = false
		}
		if h.hot[c] {
			levels[c] = 0
		} else {
			levels[c] = h.top
		}
	}
}

// PICap is a per-core PI controller on the temperature error e = T − TargetC:
// the continuous frequency cap is u = 1 − Kp·e − Ki·Σe, clamped to
// [ladder floor, 1] and quantized down onto the ladder (the delivered
// frequency never exceeds the computed cap). The integral is clamped to
// [0, (1 − floor)/Ki] — classic anti-windup, so a long saturated excursion
// stores only as much integral as the actuator can ever discharge and the
// cap recovers in bounded steps once the core cools
// (TestPIAntiWindup).
type PICap struct {
	TargetC float64
	Kp      float64
	Ki      float64

	ladder []float64
	integ  []float64
}

// Name implements Policy.
func (p *PICap) Name() string { return "pi" }

// Reset implements Policy.
func (p *PICap) Reset(cores int, ladder []float64) error {
	if !(p.Kp > 0) {
		return fmt.Errorf("governor: pi gain kp %v, want > 0", p.Kp)
	}
	if p.Ki < 0 || math.IsNaN(p.Ki) {
		return fmt.Errorf("governor: pi gain ki %v, want ≥ 0", p.Ki)
	}
	if math.IsNaN(p.TargetC) {
		return fmt.Errorf("governor: pi target is NaN")
	}
	p.ladder = ladder
	p.integ = make([]float64, cores)
	return nil
}

// Act implements Policy.
func (p *PICap) Act(coreTempC []float64, levels []int) {
	fmin := p.ladder[0]
	for c, tc := range coreTempC {
		e := tc - p.TargetC
		if p.Ki > 0 {
			p.integ[c] += e
			if p.integ[c] < 0 {
				p.integ[c] = 0
			}
			if lim := (1 - fmin) / p.Ki; p.integ[c] > lim {
				p.integ[c] = lim
			}
		}
		u := 1 - p.Kp*e - p.Ki*p.integ[c]
		if u < fmin {
			u = fmin
		}
		if u > 1 {
			u = 1
		}
		levels[c] = quantize(p.ladder, u)
	}
}

// Integral exposes core c's accumulated integral term (°C·steps) for tests.
func (p *PICap) Integral(c int) float64 { return p.integ[c] }

// quantize returns the highest ladder level whose frequency does not exceed
// u (floor level when even the lowest does). The 1e-9 slack absorbs the
// float noise of computing u from clamped arithmetic.
func quantize(ladder []float64, u float64) int {
	lvl := 0
	for i, f := range ladder {
		if f <= u+1e-9 {
			lvl = i
		}
	}
	return lvl
}

// CoreCells maps each core block of fp onto its raster cells, in
// fp.KindBlocks(KindCore) order — the per-core view a Controller reads
// temperatures through. Cores that rasterize to no cells (grid far coarser
// than the floorplan) get empty slices and are never throttled.
func CoreCells(fp *floorplan.Floorplan, r *floorplan.Raster) [][]int {
	blocks := fp.KindBlocks(floorplan.KindCore)
	out := make([][]int, len(blocks))
	for i, b := range blocks {
		out[i] = r.CellsOf(b)
	}
	return out
}

// Controller binds a policy to a floorplan's core map: Step takes one full
// thermal map (estimated or ground truth) and returns the next per-core
// ladder levels. It is the shared control kernel of the simulation Loop and
// the daemon's /govern route.
type Controller struct {
	policy    Policy
	ladder    []float64
	coreCells [][]int
	// cellIdx is the concatenation of every core's cell indices;
	// cellOff[ci] : cellOff[ci+1] bounds core ci's span. One flat array
	// keeps the per-step scans off the slice-of-slices pointer chase on the
	// daemon's govern hot path.
	cellIdx []int32
	cellOff []int32
	levels  []int
	temps   []float64
}

// NewController validates the ladder, resets the policy for len(coreCells)
// cores and starts every core at nominal frequency.
func NewController(policy Policy, ladder []float64, coreCells [][]int) (*Controller, error) {
	if policy == nil {
		return nil, fmt.Errorf("governor: nil policy")
	}
	if ladder == nil {
		ladder = DefaultLadder
	}
	if err := ValidateLadder(ladder); err != nil {
		return nil, err
	}
	if len(coreCells) == 0 {
		return nil, fmt.Errorf("governor: floorplan has no cores to govern")
	}
	ladder = append([]float64(nil), ladder...)
	if err := policy.Reset(len(coreCells), ladder); err != nil {
		return nil, err
	}
	c := &Controller{
		policy:    policy,
		ladder:    ladder,
		coreCells: coreCells,
		levels:    make([]int, len(coreCells)),
		temps:     make([]float64, len(coreCells)),
	}
	total := 0
	for _, cc := range coreCells {
		total += len(cc)
	}
	c.cellIdx = make([]int32, 0, total)
	c.cellOff = make([]int32, len(coreCells)+1)
	for ci, cc := range coreCells {
		for _, i := range cc {
			if i < 0 {
				return nil, fmt.Errorf("governor: core %d has negative cell index %d", ci, i)
			}
			c.cellIdx = append(c.cellIdx, int32(i))
		}
		c.cellOff[ci+1] = int32(len(c.cellIdx))
	}
	for i := range c.levels {
		c.levels[i] = len(ladder) - 1
	}
	return c, nil
}

// Step reads each core's hottest cell from mapC (°C, length = grid cells),
// runs the policy and returns the per-core ladder levels for the next
// interval. The returned slice is the controller's own — copy it to retain.
func (c *Controller) Step(mapC []float64) []int {
	for ci := range c.temps {
		lo, hi := c.cellOff[ci], c.cellOff[ci+1]
		if lo == hi {
			c.temps[ci] = 0
			continue
		}
		t := mapC[c.cellIdx[lo]]
		for _, i := range c.cellIdx[lo+1 : hi] {
			if v := mapC[i]; v > t {
				t = v
			}
		}
		c.temps[ci] = t
	}
	c.policy.Act(c.temps, c.levels)
	return c.levels
}

// Levels returns the current per-core ladder levels (the controller's own
// slice — copy to retain).
func (c *Controller) Levels() []int { return c.levels }

// Freq returns the relative frequency of ladder level lvl.
func (c *Controller) Freq(lvl int) float64 { return c.ladder[lvl] }

// Ladder returns the validated ladder (a copy).
func (c *Controller) Ladder() []float64 { return append([]float64(nil), c.ladder...) }

// Cores returns the number of governed cores.
func (c *Controller) Cores() int { return len(c.coreCells) }

// Policy returns the bound policy's name.
func (c *Controller) Policy() string { return c.policy.Name() }

// Throttled counts cores currently below the top ladder level.
func (c *Controller) Throttled() int {
	n := 0
	top := len(c.ladder) - 1
	for _, l := range c.levels {
		if l < top {
			n++
		}
	}
	return n
}
