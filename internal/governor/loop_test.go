package governor

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/floorplan"
	"repro/internal/workload"
)

// testLoop is a small T1-class closed-loop configuration shared across the
// loop tests: 16×16 grid, web workload, enough steps for caps to engage.
func testLoop(t *testing.T, policy Policy, ceiling float64) LoopConfig {
	t.Helper()
	return LoopConfig{
		Plan:     floorplan.UltraSparcT1(),
		Grid:     floorplan.Grid{W: 16, H: 16},
		Spec:     workload.Preset("compute"),
		Steps:    80,
		Seed:     42,
		Policy:   policy,
		CeilingC: ceiling,
	}
}

// uncappedPeak runs the loop with a trip point no temperature reaches, so
// the governor never acts — the baseline peak the ceilings below are chosen
// against.
func uncappedPeak(t *testing.T) float64 {
	t.Helper()
	cfg := testLoop(t, &Threshold{TripC: math.Inf(1)}, 1000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottleDuty != 0 || res.PerfRetained != 1 {
		t.Fatalf("uncapped run throttled: duty=%v perf=%v", res.ThrottleDuty, res.PerfRetained)
	}
	return res.PeakC
}

func TestLoopDeterministic(t *testing.T) {
	base := uncappedPeak(t)
	run := func(seed int64) *Result {
		cfg := testLoop(t, &Hysteresis{SetC: base - 2, ClearC: base - 5}, base-1)
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.CapHash != b.CapHash {
		t.Errorf("same seed, different cap schedules: %#x vs %#x", a.CapHash, b.CapHash)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if c := run(43); c.CapHash == a.CapHash && c.Metrics == a.Metrics {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestLoopThrottleEngages(t *testing.T) {
	base := uncappedPeak(t)
	ceiling := base - 1.5
	unres, err := Run(testLoop(t, &Threshold{TripC: math.Inf(1)}, ceiling))
	if err != nil {
		t.Fatal(err)
	}
	if unres.ViolationSteps == 0 {
		t.Fatalf("baseline never violates a ceiling %.1f °C below its own peak", base-ceiling)
	}
	for _, name := range PolicyNames() {
		policy, err := NewPolicy(name, Params{CeilingC: ceiling})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testLoop(t, policy, ceiling))
		if err != nil {
			t.Fatal(err)
		}
		if res.ThrottleDuty == 0 {
			t.Errorf("%s: governor never engaged", name)
		}
		if res.PerfRetained >= 1 || res.PerfRetained <= 0 {
			t.Errorf("%s: perf retained %v, want in (0,1)", name, res.PerfRetained)
		}
		if res.ViolationDegSec >= unres.ViolationDegSec {
			t.Errorf("%s: governed violation %.4f °C·s not below ungoverned %.4f",
				name, res.ViolationDegSec, unres.ViolationDegSec)
		}
		if res.PeakC > unres.PeakC+1e-9 {
			t.Errorf("%s: governed peak %.2f above ungoverned %.2f", name, res.PeakC, unres.PeakC)
		}
	}
}

// trainTestMonitor builds a small estimator over the same grid the loop
// runs on, the way every serving path does: generate, train, place, fold.
func trainTestMonitor(t *testing.T, m, k int) *core.Monitor {
	t.Helper()
	fp := floorplan.UltraSparcT1()
	ds, err := dataset.Generate(fp, dataset.GenConfig{
		Grid:      floorplan.Grid{W: 16, H: 16},
		Snapshots: 96,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.Train(ds, core.TrainOptions{KMax: 2 * k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := mdl.PlaceSensors(m, core.PlaceOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := mdl.NewMonitor(k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// TestOracleArmSanity pins the ablation ordering: a governor acting on the
// ground-truth map cannot do worse (hotter) than one acting on a
// reconstruction of it, up to a small tolerance for benign estimate noise.
func TestOracleArmSanity(t *testing.T) {
	base := uncappedPeak(t)
	ceiling := base - 1.5
	mon := trainTestMonitor(t, 12, 8)

	oracle, err := Run(testLoop(t, &Hysteresis{SetC: ceiling - 0.5, ClearC: ceiling - 3}, ceiling))
	if err != nil {
		t.Fatal(err)
	}
	estCfg := testLoop(t, &Hysteresis{SetC: ceiling - 0.5, ClearC: ceiling - 3}, ceiling)
	estCfg.Estimator = mon
	estCfg.Sensors = mon.Sensors()
	est, err := Run(estCfg)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.75 // °C of benign estimate noise
	if oracle.PeakC > est.PeakC+tol {
		t.Errorf("oracle peak %.2f °C above estimated-arm peak %.2f + %.2f tolerance",
			oracle.PeakC, est.PeakC, tol)
	}
	if est.EstPeakErrC <= 0 {
		t.Errorf("estimated arm reports zero estimate error (%.4f)", est.EstPeakErrC)
	}
	if oracle.EstPeakErrC != 0 {
		t.Errorf("oracle arm reports estimate error %.4f, want 0", oracle.EstPeakErrC)
	}
}

// TestLoopFaultedArm checks that sensor faults flow through the injector
// into the governor's view without breaking the loop, and that the faulted
// run stays deterministic.
func TestLoopFaultedArm(t *testing.T) {
	base := uncappedPeak(t)
	ceiling := base - 1.5
	mon := trainTestMonitor(t, 12, 8)
	faults, err := drift.ParseFaults("stuck:0:30,offset:3:+4")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		cfg := testLoop(t, &Hysteresis{SetC: ceiling - 0.5, ClearC: ceiling - 3}, ceiling)
		cfg.Estimator = mon
		cfg.Sensors = mon.Sensors()
		cfg.Injector = drift.NewInjector(faults, 1)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CapHash != b.CapHash {
		t.Errorf("faulted arm not deterministic: %#x vs %#x", a.CapHash, b.CapHash)
	}
	if a.EstPeakErrC <= 0 {
		t.Errorf("faulted arm reports zero estimate error")
	}
}

func TestRunValidation(t *testing.T) {
	good := testLoop(t, &Threshold{TripC: 80}, 80)
	bad := []func(*LoopConfig){
		func(c *LoopConfig) { c.Plan = nil },
		func(c *LoopConfig) { c.Spec = nil },
		func(c *LoopConfig) { c.Steps = 0 },
		func(c *LoopConfig) { c.CeilingC = 0 },
		func(c *LoopConfig) { c.Grid = floorplan.Grid{} },
		func(c *LoopConfig) { c.Policy = nil },
		func(c *LoopConfig) { c.Ladder = []float64{1, 0.5} },
		func(c *LoopConfig) { c.Estimator = fakeEstimator{}; c.Sensors = nil },
		func(c *LoopConfig) { c.Estimator = fakeEstimator{}; c.Sensors = []int{1 << 20} },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// The unmutated config must of course run.
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

type fakeEstimator struct{}

func (fakeEstimator) EstimateInto(dst, readings []float64) error {
	for i := range dst {
		dst[i] = 0
	}
	return nil
}
