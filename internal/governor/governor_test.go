package governor

import (
	"math"
	"testing"
)

func TestValidateLadder(t *testing.T) {
	cases := []struct {
		name   string
		ladder []float64
		ok     bool
	}{
		{"default", DefaultLadder, true},
		{"single", []float64{1.0}, true},
		{"empty", nil, false},
		{"descending", []float64{1.0, 0.5}, false},
		{"duplicate", []float64{0.5, 0.5, 1.0}, false},
		{"zero", []float64{0, 1}, false},
		{"above-one", []float64{0.5, 1.5}, false},
		{"nan", []float64{0.5, math.NaN()}, false},
	}
	for _, c := range cases {
		if err := ValidateLadder(c.ladder); (err == nil) != c.ok {
			t.Errorf("%s: ValidateLadder = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewPolicyDerivesSetpoints(t *testing.T) {
	p, err := NewPolicy("threshold", Params{CeilingC: 80})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.(*Threshold).TripC; got != 79 {
		t.Errorf("threshold trip = %v, want ceiling-1 = 79", got)
	}
	p, err = NewPolicy("hysteresis", Params{CeilingC: 80})
	if err != nil {
		t.Fatal(err)
	}
	h := p.(*Hysteresis)
	if h.SetC != 79 || h.ClearC != 76 {
		t.Errorf("hysteresis band = (%v, %v), want (76, 79)", h.ClearC, h.SetC)
	}
	p, err = NewPolicy("pi", Params{CeilingC: 80})
	if err != nil {
		t.Fatal(err)
	}
	pi := p.(*PICap)
	if pi.TargetC != 78 || pi.Kp != 0.10 || pi.Ki != 0.02 {
		t.Errorf("pi defaults = (%v, %v, %v), want (78, 0.10, 0.02)", pi.TargetC, pi.Kp, pi.Ki)
	}
	if _, err := NewPolicy("nope", Params{CeilingC: 80}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewPolicy("pi", Params{}); err == nil {
		t.Error("zero ceiling accepted")
	}
}

func TestThresholdTrips(t *testing.T) {
	p := &Threshold{TripC: 80}
	if err := p.Reset(2, DefaultLadder); err != nil {
		t.Fatal(err)
	}
	levels := []int{3, 3}
	p.Act([]float64{85, 70}, levels)
	if levels[0] != 0 || levels[1] != 3 {
		t.Errorf("levels = %v, want [0 3]", levels)
	}
	// Memoryless: one degree below trip immediately releases.
	p.Act([]float64{79.9, 70}, levels)
	if levels[0] != 3 {
		t.Errorf("level after cooling = %d, want nominal 3", levels[0])
	}
}

// TestHysteresisNoChatter drives a core's temperature on a dithering path
// that stays strictly inside the (ClearC, SetC) band and asserts the cap
// decision never changes — from either latched side of the band.
func TestHysteresisNoChatter(t *testing.T) {
	for _, hot := range []bool{false, true} {
		p := &Hysteresis{SetC: 80, ClearC: 75}
		if err := p.Reset(1, DefaultLadder); err != nil {
			t.Fatal(err)
		}
		levels := []int{3}
		if hot {
			p.Act([]float64{81}, levels) // latch throttled
			if levels[0] != 0 {
				t.Fatalf("hot latch: level = %d, want 0", levels[0])
			}
		}
		want := levels[0]
		// Dither across the interior of the band for many steps.
		for i := 0; i < 100; i++ {
			tc := 75.1 + 4.8*math.Abs(math.Sin(float64(i)))
			p.Act([]float64{tc}, levels)
			if levels[0] != want {
				t.Fatalf("hot=%v step %d (%.2f °C): level changed %d -> %d inside the band",
					hot, i, tc, want, levels[0])
			}
		}
	}
}

func TestHysteresisLatches(t *testing.T) {
	p := &Hysteresis{SetC: 80, ClearC: 75}
	if err := p.Reset(1, DefaultLadder); err != nil {
		t.Fatal(err)
	}
	levels := []int{3}
	p.Act([]float64{80}, levels) // set edge throttles
	if levels[0] != 0 {
		t.Fatalf("at SetC: level = %d, want 0", levels[0])
	}
	p.Act([]float64{76}, levels) // inside band: still throttled
	if levels[0] != 0 {
		t.Fatalf("inside band: level = %d, want 0", levels[0])
	}
	p.Act([]float64{75}, levels) // clear edge releases
	if levels[0] != 3 {
		t.Fatalf("at ClearC: level = %d, want 3", levels[0])
	}
	if err := (&Hysteresis{SetC: 70, ClearC: 75}).Reset(1, DefaultLadder); err == nil {
		t.Error("inverted band accepted")
	}
}

// TestPIAntiWindup holds a core far above target long enough to saturate the
// actuator, then cools it, and asserts (a) the stored integral is clamped to
// the actuator's authority rather than growing with excursion length, and
// (b) the cap returns to nominal within a bounded number of cool steps.
func TestPIAntiWindup(t *testing.T) {
	p := &PICap{TargetC: 78, Kp: 0.10, Ki: 0.02}
	if err := p.Reset(1, DefaultLadder); err != nil {
		t.Fatal(err)
	}
	levels := []int{3}
	for i := 0; i < 500; i++ {
		p.Act([]float64{95}, levels) // 17 °C over target: hard saturation
	}
	if levels[0] != 0 {
		t.Fatalf("saturated level = %d, want floor 0", levels[0])
	}
	lim := (1 - DefaultLadder[0]) / p.Ki
	if got := p.Integral(0); got > lim+1e-9 {
		t.Fatalf("integral wound up to %v, clamp is %v", got, lim)
	}
	// Cool to 10 °C under target: each step discharges Ki·|e| = 0.2 of
	// integral authority, so recovery must complete within a handful of
	// steps — not the 500 the excursion lasted.
	recovered := -1
	for i := 0; i < 20; i++ {
		p.Act([]float64{68}, levels)
		if levels[0] == 3 {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("cap never recovered to nominal within 20 cool steps (level %d)", levels[0])
	}
}

func TestPIQuantizesDown(t *testing.T) {
	p := &PICap{TargetC: 78, Kp: 0.10, Ki: 0} // pure P for a closed form
	if err := p.Reset(1, DefaultLadder); err != nil {
		t.Fatal(err)
	}
	levels := []int{3}
	// e = 2 ⇒ u = 0.8: the cap must quantize DOWN to 0.7, never up to 0.85.
	p.Act([]float64{80}, levels)
	if DefaultLadder[levels[0]] != 0.7 {
		t.Errorf("u=0.8 quantized to %v, want 0.7", DefaultLadder[levels[0]])
	}
	// e = 0 ⇒ u = 1: exactly nominal.
	p.Act([]float64{78}, levels)
	if levels[0] != 3 {
		t.Errorf("u=1 level = %d, want 3", levels[0])
	}
	// e = 15 ⇒ u clamps to floor.
	p.Act([]float64{93}, levels)
	if levels[0] != 0 {
		t.Errorf("saturated level = %d, want 0", levels[0])
	}
}

func TestControllerReadsHottestCoreCell(t *testing.T) {
	// Two "cores" of two cells each on a 4-cell map.
	cells := [][]int{{0, 1}, {2, 3}}
	p := &Threshold{TripC: 80}
	ctrl, err := NewController(p, nil, cells)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Cores() != 2 || ctrl.Policy() != "threshold" {
		t.Fatalf("controller identity: cores=%d policy=%q", ctrl.Cores(), ctrl.Policy())
	}
	levels := ctrl.Step([]float64{70, 81, 70, 70}) // core 0's second cell trips
	if levels[0] != 0 || levels[1] != len(DefaultLadder)-1 {
		t.Errorf("levels = %v, want [0 %d]", levels, len(DefaultLadder)-1)
	}
	if ctrl.Throttled() != 1 {
		t.Errorf("Throttled = %d, want 1", ctrl.Throttled())
	}
}

func TestControllerRejectsDegenerates(t *testing.T) {
	cells := [][]int{{0}}
	if _, err := NewController(nil, nil, cells); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewController(&Threshold{TripC: 80}, []float64{1, 0.5}, cells); err == nil {
		t.Error("descending ladder accepted")
	}
	if _, err := NewController(&Threshold{TripC: 80}, nil, nil); err == nil {
		t.Error("coreless floorplan accepted")
	}
	if _, err := NewController(&Hysteresis{SetC: 1, ClearC: 2}, nil, cells); err == nil {
		t.Error("inverted hysteresis band accepted")
	}
}
