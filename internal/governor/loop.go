package governor

import (
	"fmt"
	"math"

	"repro/internal/drift"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Estimator reconstructs a full thermal map from sensor readings.
// *core.Monitor satisfies it; the Loop never imports internal/core so the
// control layer stays decoupled from the reconstruction layer.
type Estimator interface {
	EstimateInto(dst, readings []float64) error
}

// LoopConfig describes one closed-loop transient run: a workload spec drives
// a power generator, the governor caps per-core power from the *estimated*
// map, and the capped vector feeds back into the factor-once transient
// solver. Setting Estimator to nil selects the oracle arm — the governor
// reads the ground-truth map directly, the upper bound the estimated arm is
// measured against.
type LoopConfig struct {
	Plan *floorplan.Floorplan
	Grid floorplan.Grid
	Spec *workload.Spec

	// Power supplies the hardware budgets (power.ConfigFor for manycore
	// scaling). Its effective CoreIdleW/CoreBusyW are also what the loop
	// inverts to recover per-core activity from demand watts.
	Power   power.Config
	Thermal thermal.Config

	Steps int
	Seed  int64

	// Policy and Ladder configure the Controller (nil Ladder =
	// DefaultLadder).
	Policy Policy
	Ladder []float64

	// CeilingC is the thermal ceiling violations are scored against (on the
	// TRUE map — the governor may only ever see estimates, but physics is
	// judged on ground truth).
	CeilingC float64

	// Estimator + Sensors select the estimated arm: readings are the true
	// temperatures at Sensors (cell indices), optionally corrupted by
	// Injector, and the governor acts on Estimator's reconstruction.
	Estimator Estimator
	Sensors   []int
	Injector  *drift.Injector
}

// Metrics are the closed-loop quality numbers a run accumulates. All
// temperatures are °C and judged on the ground-truth map.
type Metrics struct {
	Steps int

	// PeakC is the hottest cell temperature seen across the run; OvershootC
	// is how far it exceeded the ceiling (0 when the ceiling held).
	PeakC      float64
	OvershootC float64

	// CorePeakC is the hottest CORE-cell temperature seen (ground truth) —
	// the part of the die DVFS capping can actually influence. Caches, NoC
	// and uncore blocks can carry the global PeakC without the governor
	// having any actuator over them.
	CorePeakC float64

	// ViolationSteps counts steps whose peak exceeded the ceiling;
	// ViolationDegSec integrates the excess over time (°C·s) — the sustained
	// ceiling-violation signal docs/OPERATIONS.md alerts on.
	ViolationSteps  int
	ViolationDegSec float64

	// ThrottleDuty is the fraction of core-steps spent below nominal
	// frequency.
	ThrottleDuty float64

	// PerfRetained is delivered over demanded activity·frequency: capping a
	// core to relative frequency f delivers f of its demanded throughput
	// while cutting dynamic power to f³. 1.0 = no throughput lost.
	PerfRetained float64

	// EstPeakErrC is the mean |estimated − true| per-step peak temperature —
	// how well the map the governor actually saw tracked physics (0 for the
	// oracle arm).
	EstPeakErrC float64

	// MeanPowerW is the mean total applied block power per step.
	MeanPowerW float64

	// CapHash is an FNV-1a digest of the full per-step, per-core level
	// schedule: two runs governed identically iff their hashes match
	// (the determinism pin).
	CapHash uint64
}

// Result is one closed-loop run's metrics plus the final cap state.
type Result struct {
	Metrics
	// FinalLevels is the per-core ladder level after the last step.
	FinalLevels []int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashLevels folds one step's cap decisions into an FNV-1a digest.
// ValidateLadder caps ladders at 256 levels, so a level is one byte.
func hashLevels(h uint64, levels []int) uint64 {
	for _, l := range levels {
		h = (h ^ uint64(byte(l))) * fnvPrime64
	}
	return h
}

// Run executes one closed-loop transient simulation and returns its metrics.
// The run is deterministic given the config (same seed ⇒ bit-identical cap
// schedule): the workload generator, the injector and every policy are
// seeded or stateless, and the solver is the exact factor-once direct arm.
//
// Control timing: the level decided from step t's map caps step t+1's power
// — one step of actuation latency, matching a real governor that programs
// the next interval's frequency from the current sample.
func Run(cfg LoopConfig) (*Result, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("governor: nil floorplan")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("governor: nil workload spec")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("governor: %d steps, want > 0", cfg.Steps)
	}
	if !(cfg.CeilingC > 0) {
		return nil, fmt.Errorf("governor: ceiling %v °C, want > 0", cfg.CeilingC)
	}
	n := cfg.Grid.N()
	if n <= 0 {
		return nil, fmt.Errorf("governor: empty grid")
	}
	if cfg.Estimator != nil && len(cfg.Sensors) == 0 {
		return nil, fmt.Errorf("governor: estimator set but no sensors given")
	}
	for _, s := range cfg.Sensors {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("governor: sensor cell %d outside the %d-cell grid", s, n)
		}
	}

	raster := cfg.Plan.Rasterize(cfg.Grid)
	ctrl, err := NewController(cfg.Policy, cfg.Ladder, CoreCells(cfg.Plan, raster))
	if err != nil {
		return nil, err
	}

	pcfg := cfg.Power
	pcfg.Seed = cfg.Seed
	gen, err := power.NewSpecGenerator(cfg.Plan, cfg.Spec, pcfg)
	if err != nil {
		return nil, err
	}
	eff := pcfg.WithDefaults()
	idleW, busyW := eff.CoreIdleW, eff.CoreBusyW

	model := thermal.NewModel(cfg.Grid, cfg.Thermal)
	tr := model.NewTransient()
	dt := cfg.Thermal.DtSeconds
	if dt == 0 {
		dt = 10e-3 // thermal.Config's default transient step
	}

	coreBlocks := cfg.Plan.KindBlocks(floorplan.KindCore)
	cellP := make([]float64, n)
	trueT := make([]float64, n)
	estT := make([]float64, n)
	readings := make([]float64, len(cfg.Sensors))

	// Warm-up: steady state under the first demand vector, uncapped — the
	// governor starts from the thermal field it will actually inherit.
	if err := tr.SetSteadyState(steadyPowers(raster, gen.Step(), cellP)); err != nil {
		return nil, err
	}

	res := &Result{}
	res.CapHash = fnvOffset64
	var demanded, delivered float64
	var throttledCoreSteps int
	var estErrSum, powerSum float64
	top := len(ctrl.ladder) - 1
	peak := math.Inf(-1)
	corePeak := math.Inf(-1)
	coreCells := ctrl.cellIdx

	for step := 0; step < cfg.Steps; step++ {
		blockP := gen.Step()
		levels := ctrl.Levels()
		for ci, b := range coreBlocks {
			f := ctrl.Freq(levels[ci])
			a := (blockP[b] - idleW) / (busyW - idleW)
			if a < 0 {
				a = 0
			}
			demanded += a
			delivered += a * f
			if levels[ci] < top {
				throttledCoreSteps++
			}
			if blockP[b] > idleW {
				// f³ dynamic-power scaling on the demand above idle; static
				// (idle) power is frequency-independent in this model.
				blockP[b] = idleW + (blockP[b]-idleW)*f*f*f
			}
		}
		power.SpreadToCellsInto(cellP, raster, blockP)
		powerSum += power.TotalPower(blockP)
		if err := tr.StepInto(trueT, cellP); err != nil {
			return nil, err
		}

		stepPeak := maxOf(trueT)
		if stepPeak > peak {
			peak = stepPeak
		}
		for _, i := range coreCells {
			if trueT[i] > corePeak {
				corePeak = trueT[i]
			}
		}
		if stepPeak > cfg.CeilingC {
			res.ViolationSteps++
			res.ViolationDegSec += (stepPeak - cfg.CeilingC) * dt
		}

		seen := trueT
		if cfg.Estimator != nil {
			for i, s := range cfg.Sensors {
				readings[i] = trueT[s]
			}
			if cfg.Injector != nil {
				cfg.Injector.Apply(readings)
			}
			if err := cfg.Estimator.EstimateInto(estT, readings); err != nil {
				return nil, fmt.Errorf("governor: step %d estimate: %w", step, err)
			}
			seen = estT
			estErrSum += math.Abs(maxOf(estT) - stepPeak)
		}
		res.CapHash = hashLevels(res.CapHash, ctrl.Step(seen))
	}

	res.Steps = cfg.Steps
	res.PeakC = peak
	res.CorePeakC = corePeak
	if peak > cfg.CeilingC {
		res.OvershootC = peak - cfg.CeilingC
	}
	res.ThrottleDuty = float64(throttledCoreSteps) / float64(len(coreBlocks)*cfg.Steps)
	res.PerfRetained = 1
	if demanded > 0 {
		res.PerfRetained = delivered / demanded
	}
	res.EstPeakErrC = estErrSum / float64(cfg.Steps)
	res.MeanPowerW = powerSum / float64(cfg.Steps)
	res.FinalLevels = append([]int(nil), ctrl.Levels()...)
	return res, nil
}

// steadyPowers spreads one uncapped demand vector onto the raster for the
// warm-up steady solve, reusing the loop's cell buffer.
func steadyPowers(r *floorplan.Raster, blockP, cellP []float64) []float64 {
	power.SpreadToCellsInto(cellP, r, blockP)
	return cellP
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
