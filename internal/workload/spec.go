// Package workload defines the declarative scenario-specification language
// that drives the power-trace engine, plus the named registry of built-in
// scenarios.
//
// A Spec is a JSON-serializable description of a workload's dynamics: a
// phase schedule of Markov transition-rate regimes, optional bursty (MMPP)
// arrival modulation, a task-migration policy (periodic rebalancing and/or
// a per-step migration Markov chain), an optional DVFS ladder, and periodic
// per-kind duty envelopes. Specs carry no random state of their own — the
// engine in internal/power seeds one RNG per generator, so a (spec, seed)
// pair reproduces its trace bit-for-bit.
//
// The four scenarios the repository historically shipped as enum arms
// (web, compute, mixed, idle) are expressed as registry specs here; the
// power engine's enum path delegates to them, so the presets are one
// definition, not two (see DESIGN.md, "Declarative workload engine").
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Rates are the per-step probabilities of the per-core activity Markov
// chain: idle → busy, busy → idle, busy → fpu, fpu → busy. All lie in
// [0, 1], and BusyToIdle + BusyToFPU must not exceed 1 (they compete for
// the same transition draw).
type Rates struct {
	IdleToBusy float64 `json:"idle_to_busy"`
	BusyToIdle float64 `json:"busy_to_idle"`
	BusyToFPU  float64 `json:"busy_to_fpu"`
	FPUToBusy  float64 `json:"fpu_to_busy"`
}

func (r Rates) validate(ctx string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"idle_to_busy", r.IdleToBusy},
		{"busy_to_idle", r.BusyToIdle},
		{"busy_to_fpu", r.BusyToFPU},
		{"fpu_to_busy", r.FPUToBusy},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("workload: %s: rate %s = %v outside [0,1]", ctx, p.name, p.v)
		}
	}
	if r.BusyToIdle+r.BusyToFPU > 1 {
		return fmt.Errorf("workload: %s: busy_to_idle + busy_to_fpu = %v exceeds 1",
			ctx, r.BusyToIdle+r.BusyToFPU)
	}
	return nil
}

// Phase is one regime of a phase schedule. Phases run in Steps-long
// segments and cycle; a single phase with Steps == 0 runs forever.
type Phase struct {
	Name  string `json:"name,omitempty"`
	Steps int    `json:"steps,omitempty"`
	Rates Rates  `json:"rates"`
}

// Arrival modulates task arrivals with a two-state MMPP (Markov-modulated
// Poisson process): a hidden calm/burst chain scales the idle → busy rate
// by BurstFactor while in the burst state.
type Arrival struct {
	// BurstFactor multiplies idle_to_busy during bursts (the product is
	// capped at 1). Values below 1 model lulls instead of bursts.
	BurstFactor float64 `json:"burst_factor"`
	// PEnter / PExit are the per-step calm → burst and burst → calm
	// probabilities of the modulating chain.
	PEnter float64 `json:"p_enter"`
	PExit  float64 `json:"p_exit"`
}

// Migration describes OS task rebalancing. Period is the deterministic
// rebalance interval in steps; zero or negative disables periodic
// rebalancing (a non-zero power.Config.MigrationPeriod still overrides
// either way). Rate adds a per-step probability of an extra migration —
// an explicit task-migration Markov chain on top of the periodic policy.
type Migration struct {
	Period int     `json:"period,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
}

// DVFS is a discrete frequency ladder with utilization-threshold governor
// semantics: a core steps up when its smoothed utilization exceeds UpAt and
// down when it falls below DownAt, at most once every Hold steps. Core
// dynamic power scales with the cube of the level (f·V² with V ∝ f).
type DVFS struct {
	// Levels are relative frequencies in (0, 1], ascending; the last entry
	// is nominal frequency. Cores start at the top level.
	Levels []float64 `json:"levels"`
	UpAt   float64   `json:"up_at"`
	DownAt float64   `json:"down_at"`
	Hold   int       `json:"hold,omitempty"`
}

// Envelope is a periodic duty modulation applied to the activity feeding a
// block kind's power model: activity is multiplied by a Shape-waveform
// oscillating between Min and Max over Period steps. Modulated activity is
// clamped back to [0, 1] for every activity-coupled kind (core, cache,
// crossbar, fpu), so power-budget bounds survive any envelope; "other"
// blocks have constant power and the envelope scales their watts directly.
type Envelope struct {
	// Kind is "core", "cache", "crossbar", "fpu", "other", or "" for all.
	Kind string `json:"kind,omitempty"`
	// Period is the cycle length in steps (≥ 2).
	Period int `json:"period"`
	// Min and Max bound the multiplier, 0 ≤ Min ≤ Max.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Shape is "sine" (default), "square" or "saw".
	Shape string `json:"shape,omitempty"`
	// Phase offsets the waveform by this fraction of a period, in [0, 1).
	Phase float64 `json:"phase,omitempty"`
}

// envelopeKinds are the block kinds an Envelope may name (the empty string
// targets all kinds).
var envelopeKinds = map[string]bool{
	"": true, "core": true, "cache": true, "crossbar": true, "fpu": true, "other": true,
}

// envelopeShapes are the supported waveforms.
var envelopeShapes = map[string]bool{"": true, "sine": true, "square": true, "saw": true}

// Spec is a complete declarative workload scenario. The zero value is not
// valid: a Spec needs at least one phase. Specs are plain data — safe to
// marshal, copy with Clone, and share read-only across generators.
type Spec struct {
	// Name identifies the spec in the registry and in reports. Inline specs
	// (e.g. submitted to the daemon) may leave it empty.
	Name string `json:"name,omitempty"`
	// Family groups related specs for cross-scenario robustness reporting;
	// empty defaults to Name.
	Family string `json:"family,omitempty"`

	// Phases is the regime schedule (cycled). Required.
	Phases []Phase `json:"phases"`

	// Arrival, DVFS: optional dynamics; nil disables them.
	Arrival *Arrival `json:"arrival,omitempty"`
	DVFS    *DVFS    `json:"dvfs,omitempty"`

	// Migration is the task-rebalancing policy. A zero Period means no
	// periodic rebalancing.
	Migration Migration `json:"migration"`

	// Envelopes are periodic duty modulations, applied multiplicatively
	// when several target the same kind.
	Envelopes []Envelope `json:"envelopes,omitempty"`

	// LoadCoupling ∈ [0,1] blends per-core utilization targets with the
	// shared system-load level. A non-zero value is part of the scenario
	// definition and wins over power.Config.LoadCoupling, which only
	// supplies the default for specs that leave this zero.
	LoadCoupling float64 `json:"load_coupling,omitempty"`
}

// FamilyName returns Family, falling back to Name.
func (s *Spec) FamilyName() string {
	if s.Family != "" {
		return s.Family
	}
	return s.Name
}

// Validate checks the spec for out-of-range probabilities, degenerate
// schedules and malformed envelopes, returning a descriptive error for the
// first violation. Engines must only run validated specs.
func (s *Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec %q has no phases", s.Name)
	}
	for i, ph := range s.Phases {
		ctx := fmt.Sprintf("spec %q phase %d", s.Name, i)
		if ph.Steps < 0 {
			return fmt.Errorf("workload: %s: negative steps %d", ctx, ph.Steps)
		}
		if len(s.Phases) > 1 && ph.Steps == 0 {
			return fmt.Errorf("workload: %s: steps must be positive in a multi-phase schedule", ctx)
		}
		if err := ph.Rates.validate(ctx); err != nil {
			return err
		}
	}
	if a := s.Arrival; a != nil {
		if a.BurstFactor < 0 {
			return fmt.Errorf("workload: spec %q: arrival burst_factor %v is negative", s.Name, a.BurstFactor)
		}
		if a.PEnter < 0 || a.PEnter > 1 || a.PExit < 0 || a.PExit > 1 {
			return fmt.Errorf("workload: spec %q: arrival probabilities (%v, %v) outside [0,1]",
				s.Name, a.PEnter, a.PExit)
		}
	}
	if m := s.Migration; m.Rate < 0 || m.Rate > 1 {
		return fmt.Errorf("workload: spec %q: migration rate %v outside [0,1]", s.Name, m.Rate)
	}
	if d := s.DVFS; d != nil {
		if len(d.Levels) == 0 {
			return fmt.Errorf("workload: spec %q: dvfs ladder has no levels", s.Name)
		}
		prev := 0.0
		for i, lv := range d.Levels {
			if lv <= 0 || lv > 1 {
				return fmt.Errorf("workload: spec %q: dvfs level %d = %v outside (0,1]", s.Name, i, lv)
			}
			if lv <= prev {
				return fmt.Errorf("workload: spec %q: dvfs levels must be strictly ascending", s.Name)
			}
			prev = lv
		}
		if d.DownAt < 0 || d.UpAt > 1 || d.DownAt >= d.UpAt {
			return fmt.Errorf("workload: spec %q: dvfs thresholds need 0 ≤ down_at < up_at ≤ 1, got (%v, %v)",
				s.Name, d.DownAt, d.UpAt)
		}
		if d.Hold < 0 {
			return fmt.Errorf("workload: spec %q: dvfs hold %d is negative", s.Name, d.Hold)
		}
	}
	for i, e := range s.Envelopes {
		if !envelopeKinds[e.Kind] {
			return fmt.Errorf("workload: spec %q: envelope %d targets unknown kind %q", s.Name, i, e.Kind)
		}
		if e.Period < 2 {
			return fmt.Errorf("workload: spec %q: envelope %d period %d below 2", s.Name, i, e.Period)
		}
		if e.Min < 0 || e.Max < e.Min {
			return fmt.Errorf("workload: spec %q: envelope %d needs 0 ≤ min ≤ max, got (%v, %v)",
				s.Name, i, e.Min, e.Max)
		}
		if !envelopeShapes[e.Shape] {
			return fmt.Errorf("workload: spec %q: envelope %d has unknown shape %q (want sine, square or saw)",
				s.Name, i, e.Shape)
		}
		if e.Phase < 0 || e.Phase >= 1 {
			return fmt.Errorf("workload: spec %q: envelope %d phase %v outside [0,1)", s.Name, i, e.Phase)
		}
	}
	if s.LoadCoupling < 0 || s.LoadCoupling > 1 {
		return fmt.Errorf("workload: spec %q: load_coupling %v outside [0,1]", s.Name, s.LoadCoupling)
	}
	return nil
}

// Cycle returns the total length of the phase schedule in steps (0 for a
// single free-running phase).
func (s *Spec) Cycle() int {
	if len(s.Phases) == 1 {
		return s.Phases[0].Steps
	}
	total := 0
	for _, ph := range s.Phases {
		total += ph.Steps
	}
	return total
}

// PhaseAt returns the phase governing the given step of the (cycled)
// schedule.
func (s *Spec) PhaseAt(step int) *Phase {
	cycle := s.Cycle()
	if cycle <= 0 {
		return &s.Phases[0]
	}
	pos := step % cycle
	for i := range s.Phases {
		if pos < s.Phases[i].Steps {
			return &s.Phases[i]
		}
		pos -= s.Phases[i].Steps
	}
	return &s.Phases[len(s.Phases)-1] // unreachable for validated specs
}

// Clone returns a deep copy, so callers can tweak a registry spec without
// mutating the shared definition.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Phases = append([]Phase(nil), s.Phases...)
	if s.Arrival != nil {
		a := *s.Arrival
		c.Arrival = &a
	}
	if s.DVFS != nil {
		d := *s.DVFS
		d.Levels = append([]float64(nil), s.DVFS.Levels...)
		c.DVFS = &d
	}
	c.Envelopes = append([]Envelope(nil), s.Envelopes...)
	return &c
}

// Decode parses a JSON spec, rejecting unknown fields (the schema-drift
// gate: a spec written for a newer field set fails loudly instead of
// silently dropping dynamics) and validating the result.
func Decode(data []byte) (*Spec, error) {
	var s Spec
	if err := unmarshalStrict(data, &s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the spec as indented JSON (the committed-spec format).
func (s *Spec) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: encode spec %q: %w", s.Name, err)
	}
	return append(out, '\n'), nil
}

// unmarshalStrict is json.Unmarshal with DisallowUnknownFields and a
// trailing-garbage check.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after spec document")
	}
	return nil
}
