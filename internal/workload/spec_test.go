package workload

import (
	"reflect"
	"strings"
	"testing"
)

func validSpec() *Spec {
	return &Spec{
		Name: "test",
		Phases: []Phase{{
			Rates: Rates{IdleToBusy: 0.2, BusyToIdle: 0.1, BusyToFPU: 0.05, FPUToBusy: 0.2},
		}},
		Migration: Migration{Period: 30},
	}
}

func TestValidateAcceptsBuiltins(t *testing.T) {
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("builtin %q invalid: %v", name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring of the error
	}{
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"negative steps", func(s *Spec) { s.Phases[0].Steps = -1 }, "negative steps"},
		{"multi-phase zero steps", func(s *Spec) {
			s.Phases = append(s.Phases, Phase{Rates: s.Phases[0].Rates})
		}, "must be positive"},
		{"rate above one", func(s *Spec) { s.Phases[0].Rates.IdleToBusy = 1.5 }, "outside [0,1]"},
		{"negative rate", func(s *Spec) { s.Phases[0].Rates.FPUToBusy = -0.1 }, "outside [0,1]"},
		{"busy split exceeds one", func(s *Spec) {
			s.Phases[0].Rates.BusyToIdle, s.Phases[0].Rates.BusyToFPU = 0.7, 0.5
		}, "exceeds 1"},
		{"negative burst factor", func(s *Spec) { s.Arrival = &Arrival{BurstFactor: -2, PEnter: 0.1, PExit: 0.1} }, "negative"},
		{"arrival prob range", func(s *Spec) { s.Arrival = &Arrival{BurstFactor: 2, PEnter: 1.2, PExit: 0.1} }, "outside [0,1]"},
		{"migration rate range", func(s *Spec) { s.Migration.Rate = 2 }, "migration rate"},
		{"dvfs empty ladder", func(s *Spec) { s.DVFS = &DVFS{UpAt: 0.8, DownAt: 0.4} }, "no levels"},
		{"dvfs level range", func(s *Spec) { s.DVFS = &DVFS{Levels: []float64{0, 1}, UpAt: 0.8, DownAt: 0.4} }, "outside (0,1]"},
		{"dvfs not ascending", func(s *Spec) { s.DVFS = &DVFS{Levels: []float64{0.9, 0.5}, UpAt: 0.8, DownAt: 0.4} }, "ascending"},
		{"dvfs thresholds", func(s *Spec) { s.DVFS = &DVFS{Levels: []float64{0.5, 1}, UpAt: 0.4, DownAt: 0.8} }, "down_at < up_at"},
		{"dvfs hold", func(s *Spec) { s.DVFS = &DVFS{Levels: []float64{0.5, 1}, UpAt: 0.8, DownAt: 0.4, Hold: -1} }, "hold"},
		{"envelope kind", func(s *Spec) { s.Envelopes = []Envelope{{Kind: "gpu", Period: 10, Min: 0, Max: 1}} }, "unknown kind"},
		{"envelope period", func(s *Spec) { s.Envelopes = []Envelope{{Kind: "core", Period: 1, Min: 0, Max: 1}} }, "period"},
		{"envelope min/max", func(s *Spec) { s.Envelopes = []Envelope{{Kind: "core", Period: 10, Min: 0.9, Max: 0.2}} }, "min ≤ max"},
		{"envelope shape", func(s *Spec) { s.Envelopes = []Envelope{{Kind: "core", Period: 10, Min: 0, Max: 1, Shape: "triangle"}} }, "unknown shape"},
		{"envelope phase", func(s *Spec) { s.Envelopes = []Envelope{{Kind: "core", Period: 10, Min: 0, Max: 1, Phase: 1}} }, "phase"},
		{"load coupling", func(s *Spec) { s.LoadCoupling = 1.5 }, "load_coupling"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a bad spec", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPhaseAtCyclesSchedule(t *testing.T) {
	s := Preset("mixed")
	if got := s.Cycle(); got != 600 {
		t.Fatalf("mixed cycle = %d, want 600", got)
	}
	for _, tc := range []struct {
		step int
		want string
	}{
		{0, "web"}, {299, "web"}, {300, "compute"}, {599, "compute"},
		{600, "web"}, {901, "compute"},
	} {
		if got := s.PhaseAt(tc.step).Name; got != tc.want {
			t.Fatalf("PhaseAt(%d) = %q, want %q", tc.step, got, tc.want)
		}
	}
	// Single free-running phase: always phase 0.
	w := Preset("web")
	if w.Cycle() != 0 {
		t.Fatalf("web cycle = %d, want 0", w.Cycle())
	}
	if w.PhaseAt(12345) != &w.Phases[0] {
		t.Fatal("free-running phase lookup broken")
	}
}

func TestJSONRoundTripBuiltins(t *testing.T) {
	// Every builtin (together they exercise phases, arrivals, migration
	// chains, DVFS and envelopes) must survive encode → decode unchanged.
	for _, name := range Names() {
		s, _ := Parse(name)
		data, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip changed the spec:\n%+v\nvs\n%+v", name, s, back)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"name":"x","phases":[{"rates":{}}],"frobnicate":1}`))
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestDecodeRejectsInvalidSpec(t *testing.T) {
	_, err := Decode([]byte(`{"name":"x","phases":[]}`))
	if err == nil || !strings.Contains(err.Error(), "no phases") {
		t.Fatalf("invalid spec not rejected: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := Decode([]byte(`{"name":"x","phases":[{"rates":{}}]} {"more":1}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
}

func TestParseUnknownNameListsKnown(t *testing.T) {
	_, err := Parse("cryptomining")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, name := range []string{"web", "compute", "mixed", "idle"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list known scenario %q", err, name)
		}
	}
}

func TestParseListSkipsEmpty(t *testing.T) {
	specs, err := ParseList(" web, ,compute,")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "web" || specs[1].Name != "compute" {
		t.Fatalf("ParseList = %v", specs)
	}
	if _, err := ParseList("web,nope"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseReturnsClones(t *testing.T) {
	a, _ := Parse("bursty")
	a.Phases[0].Rates.IdleToBusy = 0.99
	a.Arrival.BurstFactor = 123
	b, _ := Parse("bursty")
	if b.Phases[0].Rates.IdleToBusy == 0.99 || b.Arrival.BurstFactor == 123 {
		t.Fatal("Parse exposed shared registry state")
	}
}

func TestFamilyNameFallback(t *testing.T) {
	s := &Spec{Name: "solo"}
	if s.FamilyName() != "solo" {
		t.Fatalf("FamilyName = %q", s.FamilyName())
	}
	s.Family = "grouped"
	if s.FamilyName() != "grouped" {
		t.Fatalf("FamilyName = %q", s.FamilyName())
	}
}

func TestPresetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Preset("nope")
}
