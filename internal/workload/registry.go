package workload

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// The built-in scenario catalog. The first four entries are the
// repository's historical presets, expressed as specs: their rates,
// phase alternation and migration periods are the exact values the old
// enum arms hardcoded, so the power engine's enum path reproduces its
// previous traces bit-for-bit by delegating here (pinned by
// TestPresetSpecBitEquivalence in internal/power).
var builtins = []*Spec{
	{
		Name:   "web",
		Family: "web",
		Phases: []Phase{{
			Name:  "serve",
			Rates: Rates{IdleToBusy: 0.15, BusyToIdle: 0.10, BusyToFPU: 0.02, FPUToBusy: 0.20},
		}},
		Migration: Migration{Period: 20},
	},
	{
		Name:   "compute",
		Family: "compute",
		Phases: []Phase{{
			Name:  "crunch",
			Rates: Rates{IdleToBusy: 0.30, BusyToIdle: 0.02, BusyToFPU: 0.10, FPUToBusy: 0.05},
		}},
		Migration: Migration{Period: 120},
	},
	{
		Name:   "mixed",
		Family: "mixed",
		Phases: []Phase{
			{
				Name:  "web",
				Steps: 300,
				Rates: Rates{IdleToBusy: 0.15, BusyToIdle: 0.10, BusyToFPU: 0.02, FPUToBusy: 0.20},
			},
			{
				Name:  "compute",
				Steps: 300,
				Rates: Rates{IdleToBusy: 0.30, BusyToIdle: 0.02, BusyToFPU: 0.10, FPUToBusy: 0.05},
			},
		},
		Migration: Migration{Period: 40},
	},
	{
		Name:   "idle",
		Family: "idle",
		Phases: []Phase{{
			Name:  "background",
			Rates: Rates{IdleToBusy: 0.04, BusyToIdle: 0.25, BusyToFPU: 0.01, FPUToBusy: 0.30},
		}},
		Migration: Migration{Period: 60},
	},

	// Extended catalog: scenario families the enum could never express.
	{
		// Web serving under flash-crowd arrivals: a hidden calm/burst MMPP
		// chain quadruples the task-arrival rate in bursts.
		Name:   "bursty",
		Family: "bursty",
		Phases: []Phase{{
			Name:  "serve",
			Rates: Rates{IdleToBusy: 0.10, BusyToIdle: 0.12, BusyToFPU: 0.02, FPUToBusy: 0.20},
		}},
		Arrival:   &Arrival{BurstFactor: 4, PEnter: 0.05, PExit: 0.15},
		Migration: Migration{Period: 20},
	},
	{
		// Duty-cycled streaming: compute-heavy cores whose utilization is
		// modulated by a slow sine envelope (think frame-batch pipelines),
		// with the interconnect riding a quarter-period behind.
		Name:   "wave",
		Family: "wave",
		Phases: []Phase{{
			Name:  "stream",
			Rates: Rates{IdleToBusy: 0.25, BusyToIdle: 0.04, BusyToFPU: 0.06, FPUToBusy: 0.10},
		}},
		Envelopes: []Envelope{
			{Kind: "core", Period: 400, Min: 0.30, Max: 1.0, Shape: "sine"},
			{Kind: "crossbar", Period: 400, Min: 0.40, Max: 1.0, Shape: "sine", Phase: 0.25},
		},
		Migration: Migration{Period: 80},
	},
	{
		// Sustained compute under a power-capping DVFS governor: cores
		// throttle between half and nominal frequency on utilization
		// thresholds, cubing into dynamic power.
		Name:   "dvfs",
		Family: "dvfs",
		Phases: []Phase{{
			Name:  "crunch",
			Rates: Rates{IdleToBusy: 0.30, BusyToIdle: 0.02, BusyToFPU: 0.10, FPUToBusy: 0.05},
		}},
		DVFS:      &DVFS{Levels: []float64{0.5, 0.75, 1.0}, UpAt: 0.80, DownAt: 0.40, Hold: 25},
		Migration: Migration{Period: 120},
	},
	{
		// Scheduler thrash: web-like activity with aggressive rebalancing —
		// a short deterministic period plus a per-step migration Markov
		// chain — smearing hotspots across the die.
		Name:   "thrash",
		Family: "thrash",
		Phases: []Phase{{
			Name:  "serve",
			Rates: Rates{IdleToBusy: 0.15, BusyToIdle: 0.10, BusyToFPU: 0.02, FPUToBusy: 0.20},
		}},
		Migration: Migration{Period: 10, Rate: 0.20},
	},
}

var registry = func() map[string]*Spec {
	m := make(map[string]*Spec, len(builtins))
	for _, s := range builtins {
		if err := s.Validate(); err != nil {
			panic(err) // a broken builtin is a programming error
		}
		m[s.Name] = s
	}
	return m
}()

// Parse resolves a scenario name against the registry, returning a deep
// copy of the spec. It is the single scenario-name parser: the thermsim
// CLI, the public facade's Workload type and the daemon's create path all
// route through it.
func Parse(name string) (*Spec, error) {
	s, ok := registry[strings.TrimSpace(name)]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return s.Clone(), nil
}

// ParseList resolves a comma-separated scenario-name list, skipping empty
// elements ("web,,compute" parses as two scenarios).
func ParseList(csv string) ([]*Spec, error) {
	var out []*Spec
	for _, name := range strings.Split(csv, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		s, err := Parse(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// DecodeFiles loads declarative specs from a comma-separated list of JSON
// file paths (empty elements skipped) — the shared implementation behind
// the CLIs' -scenario-spec flags.
func DecodeFiles(csv string) ([]*Spec, error) {
	var out []*Spec
	for _, path := range strings.Split(csv, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		spec, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, spec)
	}
	return out, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset returns the registry spec for one of the four historical presets
// by name. It panics on unknown names — it exists for the power engine's
// enum delegation, where the name set is closed.
func Preset(name string) *Spec {
	s, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workload: no preset %q", name))
	}
	return s.Clone()
}
