package wire

import (
	"sort"
	"strconv"
	"strings"
)

// Request-id and stage-timing pass-through headers. These live in the wire
// package because both sides speak them: emapsd emits them, emapsload (and
// any other client) parses them, and the contract must not drift between
// the two binaries.
const (
	// HeaderRequestID carries the client-chosen request id into the daemon
	// and echoes the effective id (client's or generated) back on every
	// response. The same id appears in slog request lines, error envelopes,
	// and /v1/debug/requests traces.
	HeaderRequestID = "X-Request-Id"

	// HeaderServerTiming is the standard Server-Timing response header; the
	// daemon uses it to expose the per-stage latency breakdown of the
	// request that produced the response.
	HeaderServerTiming = "Server-Timing"
)

// Timing is one Server-Timing entry: a stage name and its duration in
// milliseconds.
type Timing struct {
	Name  string
	DurMS float64
}

// FormatServerTiming renders timings as a Server-Timing header value:
// `name;dur=1.234, name2;dur=0.5`. Durations are milliseconds with
// microsecond precision — enough for stage attribution without bloating
// every response header.
func FormatServerTiming(ts []Timing) string {
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(t.DurMS, 'f', -1, 64))
	}
	return b.String()
}

// ParseServerTiming parses a Server-Timing header value back into timings.
// Entries without a dur parameter, or with one that does not parse, are
// skipped — the header is advisory and a partial read is better than none.
func ParseServerTiming(v string) []Timing {
	var out []Timing
	for _, entry := range strings.Split(v, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			continue
		}
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			val, ok := strings.CutPrefix(p, "dur=")
			if !ok {
				continue
			}
			dur, err := strconv.ParseFloat(val, 64)
			if err != nil {
				break
			}
			out = append(out, Timing{Name: name, DurMS: dur})
			break
		}
	}
	return out
}

// SortTimings orders timings by name, for deterministic report output.
func SortTimings(ts []Timing) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
}
