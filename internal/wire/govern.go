package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Govern frames: the binary twin of the daemon's POST /v1/monitors/{id}/govern
// streaming-control route. Same envelope idiom as the estimate frames with
// their own magics:
//
//	magic   "EMGQ" (request) / "EMGS" (response)
//
// Request payload (all integers uint32 LE unless noted, floats float64 LE):
//
//	flags     uint32   bit 0 = config present (reconfigure the governor)
//	if config present:
//	  policy    uint32   0 threshold, 1 hysteresis, 2 pi
//	  ceiling_c float64
//	  trip_c    float64  \
//	  set_c     float64  |
//	  clear_c   float64  | zero = derive from the ceiling
//	  target_c  float64  | (see internal/governor.Params)
//	  kp        float64  |
//	  ki        float64  /
//	  ladder_n  uint32   0 = default ladder
//	  ladder    ladder_n float64, strictly ascending in (0,1]
//	rows      uint32   snapshots in the batch
//	cols      uint32   readings per snapshot
//	readings  rows×cols float64, row-major
//
// Response payload:
//
//	flags     uint32   bits 0–1 = quality (same encoding as EMRS)
//	ladder_n  uint32   the governor's active ladder
//	ladder    ladder_n float64
//	cores     uint32   governed cores
//	count     uint32   decisions (== request rows)
//	per decision:
//	  max_c    float64  estimated-map summary the decision was taken from
//	  min_c    float64
//	  mean_c   float64
//	  max_cell uint32
//	  levels   cores × uint8   per-core ladder level
//	snapshots uint64   cumulative snapshots governed by this governor
//	duty      float64  cumulative throttle duty over those snapshots
//
// Decoded values are bit-identical to the JSON route's, pinned by the
// cross-protocol parity test in cmd/emapsd.

const (
	governReqMagic  = "EMGQ"
	governRespMagic = "EMGS"

	flagGovernConfig = 1 << 0
)

// governPolicyNames maps the wire's policy ids onto registry names; the
// index IS the wire encoding.
var governPolicyNames = []string{"threshold", "hysteresis", "pi"}

// governPolicyID returns the wire id for a policy name.
func governPolicyID(name string) (uint32, error) {
	for i, n := range governPolicyNames {
		if n == name {
			return uint32(i), nil
		}
	}
	return 0, fmt.Errorf("wire: unknown govern policy %q", name)
}

// GovernConfig configures (or reconfigures) a monitor's governor. The JSON
// route decodes the same shape from the request's "config" object, so the
// two protocols share one struct. Zero-valued setpoints and gains derive
// from the ceiling exactly as internal/governor.Params documents.
type GovernConfig struct {
	Policy   string    `json:"policy"`
	CeilingC float64   `json:"ceiling_c"`
	Ladder   []float64 `json:"ladder,omitempty"`
	TripC    float64   `json:"trip_c,omitempty"`
	SetC     float64   `json:"set_c,omitempty"`
	ClearC   float64   `json:"clear_c,omitempty"`
	TargetC  float64   `json:"target_c,omitempty"`
	Kp       float64   `json:"kp,omitempty"`
	Ki       float64   `json:"ki,omitempty"`
}

// GovernRequest is the decoded form of a binary govern request.
type GovernRequest struct {
	// Readings is the rows×cols batch, as in EstimateRequest.
	Readings [][]float64
	// Config, when non-nil, (re)configures the monitor's governor before
	// this batch is governed. The first govern request must carry it.
	Config *GovernConfig
}

// GovernDecision is one snapshot's control outcome: the estimated-map digest
// the governor acted on plus its per-core cap decisions.
type GovernDecision struct {
	MaxC    float64 `json:"max_c"`
	MinC    float64 `json:"min_c"`
	MeanC   float64 `json:"mean_c"`
	MaxCell int     `json:"max_cell"`
	// Levels indexes the response ladder, one entry per governed core.
	Levels []int `json:"levels"`
}

// GovernResponse is the govern route's reply, shared by both protocols.
type GovernResponse struct {
	Quality   Quality          `json:"-"`
	Ladder    []float64        `json:"ladder"`
	Cores     int              `json:"cores"`
	Decisions []GovernDecision `json:"decisions"`
	// Snapshots and ThrottleDuty are cumulative over the governor's
	// lifetime (across requests), not just this batch.
	Snapshots    uint64  `json:"snapshots"`
	ThrottleDuty float64 `json:"throttle_duty"`
}

// AppendGovernRequest encodes req onto buf and returns the extended slice.
func AppendGovernRequest(buf []byte, req *GovernRequest) ([]byte, error) {
	rows := len(req.Readings)
	cols := 0
	if rows > 0 {
		cols = len(req.Readings[0])
	}
	for i, r := range req.Readings {
		if len(r) != cols {
			return nil, fmt.Errorf("wire: ragged batch (row %d has %d readings, row 0 has %d)", i, len(r), cols)
		}
	}
	var flags uint32
	var policy uint32
	if req.Config != nil {
		var err error
		if policy, err = governPolicyID(req.Config.Policy); err != nil {
			return nil, err
		}
		flags |= flagGovernConfig
	}
	payloadLen := 4 + 4 + 4 + 8*rows*cols
	if req.Config != nil {
		payloadLen += 4 + 7*8 + 4 + 8*len(req.Config.Ladder)
	}
	buf = appendHeader(buf, governReqMagic, payloadLen)
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	if c := req.Config; c != nil {
		buf = binary.LittleEndian.AppendUint32(buf, policy)
		buf = appendFloats(buf, []float64{c.CeilingC, c.TripC, c.SetC, c.ClearC, c.TargetC, c.Kp, c.Ki})
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Ladder)))
		buf = appendFloats(buf, c.Ladder)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cols))
	for _, r := range req.Readings {
		buf = appendFloats(buf, r)
	}
	return appendCRC(buf, payloadStart), nil
}

// DecodeGovernRequest decodes one binary govern request. scratch may be nil;
// a pooled ReadingsBuf makes steady-state decodes allocation-free, exactly
// as for estimate requests.
func DecodeGovernRequest(data []byte, scratch *ReadingsBuf) (*GovernRequest, error) {
	payload, _, err := checkEnvelope(data, governReqMagic, "govern request")
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: govern request payload %d bytes, want at least 4", len(payload))
	}
	flags := binary.LittleEndian.Uint32(payload[0:4])
	if flags&^uint32(flagGovernConfig) != 0 {
		return nil, fmt.Errorf("wire: unknown govern request flags %#x", flags)
	}
	off := 4
	req := &GovernRequest{}
	if flags&flagGovernConfig != 0 {
		if len(payload)-off < 4+7*8+4 {
			return nil, fmt.Errorf("wire: govern request payload ends inside its config")
		}
		policy := binary.LittleEndian.Uint32(payload[off:])
		if int(policy) >= len(governPolicyNames) {
			return nil, fmt.Errorf("wire: govern policy id %d out of range", policy)
		}
		off += 4
		var ps [7]float64
		for i := range ps {
			ps[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		ladderN := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if ladderN < 0 || len(payload)-off < 8*ladderN {
			return nil, fmt.Errorf("wire: govern request claims a %d-level ladder beyond the payload", ladderN)
		}
		var ladder []float64
		if ladderN > 0 {
			ladder = make([]float64, ladderN)
			for i := range ladder {
				ladder[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
				off += 8
			}
		}
		req.Config = &GovernConfig{
			Policy:   governPolicyNames[policy],
			CeilingC: ps[0], TripC: ps[1], SetC: ps[2], ClearC: ps[3],
			TargetC: ps[4], Kp: ps[5], Ki: ps[6],
			Ladder: ladder,
		}
	}
	if len(payload)-off < 8 {
		return nil, fmt.Errorf("wire: govern request payload ends before its batch header")
	}
	rows := int(binary.LittleEndian.Uint32(payload[off:]))
	cols := int(binary.LittleEndian.Uint32(payload[off+4:]))
	off += 8
	if rows < 0 || cols < 0 || rows*cols < 0 || len(payload)-off != 8*rows*cols {
		return nil, fmt.Errorf("wire: %dx%d readings do not fit a %d-byte govern payload", rows, cols, len(payload))
	}
	if scratch == nil {
		scratch = &ReadingsBuf{}
	}
	if cap(scratch.flat) < rows*cols {
		scratch.flat = make([]float64, rows*cols)
	}
	flat := scratch.flat[:rows*cols]
	body := payload[off:]
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	scratch.rows = scratch.rows[:0]
	for i := 0; i < rows; i++ {
		scratch.rows = append(scratch.rows, flat[i*cols:(i+1)*cols:(i+1)*cols])
	}
	req.Readings = scratch.rows
	return req, nil
}

// AppendGovernResponse encodes resp onto buf and returns the extended slice.
// Every decision must carry exactly resp.Cores levels, each fitting a byte.
func AppendGovernResponse(buf []byte, resp *GovernResponse) ([]byte, error) {
	for i := range resp.Decisions {
		d := &resp.Decisions[i]
		if len(d.Levels) != resp.Cores {
			return nil, fmt.Errorf("wire: decision %d has %d levels for %d cores", i, len(d.Levels), resp.Cores)
		}
		for _, l := range d.Levels {
			if l < 0 || l > 0xff {
				return nil, fmt.Errorf("wire: decision %d level %d does not fit a byte", i, l)
			}
		}
	}
	payloadLen := 4 + 4 + 8*len(resp.Ladder) + 4 + 4 +
		len(resp.Decisions)*(8+8+8+4+resp.Cores) + 8 + 8
	buf = appendHeader(buf, governRespMagic, payloadLen)
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Quality)&respQualityMask)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Ladder)))
	buf = appendFloats(buf, resp.Ladder)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Cores))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Decisions)))
	for i := range resp.Decisions {
		d := &resp.Decisions[i]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.MaxC))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.MinC))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.MeanC))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.MaxCell))
		for _, l := range d.Levels {
			buf = append(buf, byte(l))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, resp.Snapshots)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(resp.ThrottleDuty))
	return appendCRC(buf, payloadStart), nil
}

// DecodeGovernResponse decodes one binary govern response.
func DecodeGovernResponse(data []byte) (*GovernResponse, error) {
	payload, _, err := checkEnvelope(data, governRespMagic, "govern response")
	if err != nil {
		return nil, err
	}
	if len(payload) < 8 {
		return nil, fmt.Errorf("wire: govern response payload %d bytes, want at least 8", len(payload))
	}
	flags := binary.LittleEndian.Uint32(payload[0:4])
	if flags&^uint32(respQualityMask) != 0 {
		return nil, fmt.Errorf("wire: unknown govern response flags %#x", flags)
	}
	resp := &GovernResponse{Quality: Quality(flags & respQualityMask)}
	ladderN := int(binary.LittleEndian.Uint32(payload[4:8]))
	off := 8
	if ladderN < 0 || len(payload)-off < 8*ladderN+8 {
		return nil, fmt.Errorf("wire: govern response claims a %d-level ladder beyond the payload", ladderN)
	}
	resp.Ladder = make([]float64, ladderN)
	for i := range resp.Ladder {
		resp.Ladder[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	cores := int(binary.LittleEndian.Uint32(payload[off:]))
	count := int(binary.LittleEndian.Uint32(payload[off+4:]))
	off += 8
	decSize := 8 + 8 + 8 + 4 + cores
	if cores < 0 || count < 0 || decSize <= 0 || count > (len(payload)-off)/decSize {
		return nil, fmt.Errorf("wire: %d govern decisions do not fit a %d-byte payload", count, len(payload))
	}
	resp.Cores = cores
	resp.Decisions = make([]GovernDecision, count)
	for i := range resp.Decisions {
		d := &resp.Decisions[i]
		d.MaxC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		d.MinC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		d.MeanC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:]))
		d.MaxCell = int(binary.LittleEndian.Uint32(payload[off+24:]))
		off += 28
		d.Levels = make([]int, cores)
		for j := range d.Levels {
			d.Levels[j] = int(payload[off+j])
		}
		off += cores
	}
	if len(payload)-off != 16 {
		return nil, fmt.Errorf("wire: govern response trailer is %d bytes, want 16", len(payload)-off)
	}
	resp.Snapshots = binary.LittleEndian.Uint64(payload[off:])
	resp.ThrottleDuty = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
	return resp, nil
}
