package wire

import (
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleRequest() *EstimateRequest {
	return &EstimateRequest{
		Readings: [][]float64{
			{62.5, 61.25, 60, 59, 58, 57, 56, 55},
			{63, 62, 61, 60, 59, 58, 57, 56.125},
		},
		Workers:     4,
		IncludeMaps: true,
		ArmQR:       true,
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEstimateRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Readings, req.Readings) {
		t.Fatalf("readings round-trip:\n got %v\nwant %v", got.Readings, req.Readings)
	}
	if got.Workers != 4 || !got.IncludeMaps || !got.ArmQR {
		t.Fatalf("options round-trip: %+v", got)
	}
}

// TestRequestBitExactFloats: the binary codec must move readings
// bit-for-bit — including values decimal text would round — because the
// JSON-parity acceptance pin compares decoded structs across protocols.
func TestRequestBitExactFloats(t *testing.T) {
	hostile := []float64{
		math.Pi,
		math.Nextafter(60, 61),
		math.SmallestNonzeroFloat64,
		-0.0,
		1e300,
	}
	buf, err := AppendEstimateRequest(nil, &EstimateRequest{Readings: [][]float64{hostile}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEstimateRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got.Readings[0] {
		if math.Float64bits(f) != math.Float64bits(hostile[i]) {
			t.Fatalf("reading %d: %x, want %x", i, math.Float64bits(f), math.Float64bits(hostile[i]))
		}
	}
}

func TestRequestRaggedBatchRejected(t *testing.T) {
	_, err := AppendEstimateRequest(nil, &EstimateRequest{
		Readings: [][]float64{{1, 2}, {1, 2, 3}},
	})
	if err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("err = %v, want ragged-batch error", err)
	}
}

func TestRequestScratchReuse(t *testing.T) {
	req := sampleRequest()
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &ReadingsBuf{}
	first, err := DecodeEstimateRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Readings, req.Readings) {
		t.Fatal("first decode with scratch mismatched")
	}
	// A second decode reuses the same backing storage.
	second, err := DecodeEstimateRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &first.Readings[0][0] != &second.Readings[0][0] {
		t.Fatal("scratch was not reused across decodes")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := []Summary{
		{MaxC: 81.5, MinC: 44.25, MeanC: 60.125, MaxCell: 17, Map: []float64{60, 61, 62.5}},
		{MaxC: 79, MinC: 45, MeanC: 59, MaxCell: 3},
	}
	buf := AppendEstimateResponse(nil, in)
	got, err := DecodeEstimateResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("response round-trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestResponseEmpty(t *testing.T) {
	buf := AppendEstimateResponse(nil, nil)
	got, err := DecodeEstimateResponse(buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty response: %v %v", got, err)
	}
}

// TestHostileBytes: every malformed frame is a clean error, never a panic
// or a giant allocation.
func TestHostileBytes(t *testing.T) {
	req := sampleRequest()
	goodReq, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	goodResp := AppendEstimateResponse(nil, []Summary{{MaxC: 1, Map: []float64{1, 2}}})

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		copy(bad, "EMRS") // a response frame on the request decoder
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted wrong magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		bad[4] = 99
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted future version")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 3, 15, 17, len(goodReq) / 2, len(goodReq) - 1} {
			if _, err := DecodeEstimateRequest(goodReq[:cut], nil); err == nil {
				t.Fatalf("accepted request cut at %d", cut)
			}
		}
		for _, cut := range []int{0, 15, len(goodResp) / 2, len(goodResp) - 1} {
			if _, err := DecodeEstimateResponse(goodResp[:cut]); err == nil {
				t.Fatalf("accepted response cut at %d", cut)
			}
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		bad[20] ^= 0x01
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted corrupt payload (crc should catch)")
		}
	})
	t.Run("huge declared length", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		for i := 8; i < 16; i++ {
			bad[i] = 0xff
		}
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted absurd payload length")
		}
	})
	t.Run("rows x cols overflow vs payload", func(t *testing.T) {
		// Hand-build a frame whose header claims more readings than the
		// payload holds.
		lying := *req
		lyingBuf, err := AppendEstimateRequest(nil, &lying)
		if err != nil {
			t.Fatal(err)
		}
		// rows field lives at payload offset 8 → frame offset 16+8.
		lyingBuf[24] = 0xff
		// Recompute nothing: the CRC now fails first, which is also an
		// acceptable rejection. Either way it must not decode.
		if _, err := DecodeEstimateRequest(lyingBuf, nil); err == nil {
			t.Fatal("accepted rows/cols inconsistent with payload")
		}
	})
	t.Run("unknown request flags", func(t *testing.T) {
		plain := &EstimateRequest{Readings: [][]float64{{1, 2}}}
		buf, err := AppendEstimateRequest(nil, plain)
		if err != nil {
			t.Fatal(err)
		}
		// flags live at payload offset 0 → frame offset 16. Set an unknown
		// bit and patch the CRC so the flag check itself is exercised.
		buf[16] |= 0x80
		payload := buf[16 : len(buf)-4]
		recrc(buf, payload)
		if _, err := DecodeEstimateRequest(buf, nil); err == nil {
			t.Fatal("accepted unknown flags")
		}
	})
	t.Run("map length beyond payload", func(t *testing.T) {
		bad := append([]byte(nil), goodResp...)
		// map_len of summary 0 lives at payload offset 4+28 → frame 16+32.
		bad[48] = 0xf0
		payload := bad[16 : len(bad)-4]
		recrc(bad, payload)
		if _, err := DecodeEstimateResponse(bad); err == nil {
			t.Fatal("accepted map length beyond payload")
		}
	})
}

// recrc rewrites the trailing CRC of a frame after a test mutated its
// payload, so validation deeper than the checksum is reachable.
func recrc(frame, payload []byte) {
	c := crc32.ChecksumIEEE(payload)
	frame[len(frame)-4] = byte(c)
	frame[len(frame)-3] = byte(c >> 8)
	frame[len(frame)-2] = byte(c >> 16)
	frame[len(frame)-1] = byte(c >> 24)
}

func BenchmarkAppendEstimateRequest(b *testing.B) {
	req := &EstimateRequest{Readings: make([][]float64, 64)}
	for i := range req.Readings {
		req.Readings[i] = make([]float64, 8)
		for j := range req.Readings[i] {
			req.Readings[i][j] = 60 + float64(i)*0.1 + float64(j)
		}
	}
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AppendEstimateRequest(buf[:0], req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEstimateRequest(b *testing.B) {
	req := &EstimateRequest{Readings: make([][]float64, 64)}
	for i := range req.Readings {
		req.Readings[i] = make([]float64, 8)
		for j := range req.Readings[i] {
			req.Readings[i][j] = 60 + float64(i)*0.1 + float64(j)
		}
	}
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		b.Fatal(err)
	}
	scratch := &ReadingsBuf{}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEstimateRequest(buf, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
