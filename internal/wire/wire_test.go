package wire

import (
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleRequest() *EstimateRequest {
	return &EstimateRequest{
		Readings: [][]float64{
			{62.5, 61.25, 60, 59, 58, 57, 56, 55},
			{63, 62, 61, 60, 59, 58, 57, 56.125},
		},
		Workers:     4,
		IncludeMaps: true,
		ArmQR:       true,
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEstimateRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Readings, req.Readings) {
		t.Fatalf("readings round-trip:\n got %v\nwant %v", got.Readings, req.Readings)
	}
	if got.Workers != 4 || !got.IncludeMaps || !got.ArmQR {
		t.Fatalf("options round-trip: %+v", got)
	}
}

// TestRequestBitExactFloats: the binary codec must move readings
// bit-for-bit — including values decimal text would round — because the
// JSON-parity acceptance pin compares decoded structs across protocols.
func TestRequestBitExactFloats(t *testing.T) {
	hostile := []float64{
		math.Pi,
		math.Nextafter(60, 61),
		math.SmallestNonzeroFloat64,
		-0.0,
		1e300,
	}
	buf, err := AppendEstimateRequest(nil, &EstimateRequest{Readings: [][]float64{hostile}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEstimateRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got.Readings[0] {
		if math.Float64bits(f) != math.Float64bits(hostile[i]) {
			t.Fatalf("reading %d: %x, want %x", i, math.Float64bits(f), math.Float64bits(hostile[i]))
		}
	}
}

func TestRequestRaggedBatchRejected(t *testing.T) {
	_, err := AppendEstimateRequest(nil, &EstimateRequest{
		Readings: [][]float64{{1, 2}, {1, 2, 3}},
	})
	if err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("err = %v, want ragged-batch error", err)
	}
}

func TestRequestScratchReuse(t *testing.T) {
	req := sampleRequest()
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &ReadingsBuf{}
	first, err := DecodeEstimateRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Readings, req.Readings) {
		t.Fatal("first decode with scratch mismatched")
	}
	// A second decode reuses the same backing storage.
	second, err := DecodeEstimateRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &first.Readings[0][0] != &second.Readings[0][0] {
		t.Fatal("scratch was not reused across decodes")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := []Summary{
		{MaxC: 81.5, MinC: 44.25, MeanC: 60.125, MaxCell: 17, Map: []float64{60, 61, 62.5}},
		{MaxC: 79, MinC: 45, MeanC: 59, MaxCell: 3},
	}
	for _, q := range []Quality{QualityOK, QualityDrifting, QualityDegraded} {
		buf := AppendEstimateResponse(nil, in, q)
		got, gotQ, err := DecodeEstimateResponse(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("response round-trip:\n got %+v\nwant %+v", got, in)
		}
		if gotQ != q {
			t.Fatalf("quality round-trip: got %v want %v", gotQ, q)
		}
	}
}

func TestResponseEmpty(t *testing.T) {
	buf := AppendEstimateResponse(nil, nil, QualityOK)
	got, q, err := DecodeEstimateResponse(buf)
	if err != nil || len(got) != 0 || q != QualityOK {
		t.Fatalf("empty response: %v %v %v", got, q, err)
	}
}

// TestVersion1Frames: the request payload is identical under both versions,
// and a v1 response is a v2 response without the leading quality word — this
// build must read both (older clients and recorded traffic).
func TestVersion1Frames(t *testing.T) {
	req := sampleRequest()
	reqBuf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	// The CRC covers only the payload, so rewriting the version word of a v2
	// request frame reproduces a genuine v1 frame exactly.
	v1req := append([]byte(nil), reqBuf...)
	v1req[4] = 1
	got, err := DecodeEstimateRequest(v1req, nil)
	if err != nil {
		t.Fatalf("v1 request decode: %v", err)
	}
	if !reflect.DeepEqual(got.Readings, req.Readings) {
		t.Fatal("v1 request readings mismatched")
	}

	in := []Summary{{MaxC: 81.5, MinC: 44.25, MeanC: 60.125, MaxCell: 17}}
	v2 := AppendEstimateResponse(nil, in, QualityDegraded)
	// Strip the 4-byte quality word from the payload, patch the declared
	// length and version, and re-CRC: a byte-exact v1 response frame.
	payload := append([]byte(nil), v2[20:len(v2)-4]...)
	v1resp := append([]byte(nil), v2[:4]...)
	v1resp = append(v1resp, 1, 0, 0, 0)
	var lenWord [8]byte
	lenWord[0] = byte(len(payload))
	v1resp = append(v1resp, lenWord[:]...)
	v1resp = append(v1resp, payload...)
	v1resp = append(v1resp, 0, 0, 0, 0)
	recrc(v1resp, payload)
	gotSum, q, err := DecodeEstimateResponse(v1resp)
	if err != nil {
		t.Fatalf("v1 response decode: %v", err)
	}
	if !reflect.DeepEqual(gotSum, in) {
		t.Fatalf("v1 response summaries mismatched: %+v", gotSum)
	}
	if q != QualityOK {
		t.Fatalf("v1 response quality %v, want ok (predates drift)", q)
	}
}

func TestResponseUnknownFlagsRejected(t *testing.T) {
	buf := AppendEstimateResponse(nil, []Summary{{MaxC: 1}}, QualityOK)
	// Response flags live at payload offset 0 → frame offset 16.
	buf[16] |= 0x80
	recrc(buf, buf[16:len(buf)-4])
	if _, _, err := DecodeEstimateResponse(buf); err == nil {
		t.Fatal("accepted unknown response flags")
	}
}

// TestHostileBytes: every malformed frame is a clean error, never a panic
// or a giant allocation.
func TestHostileBytes(t *testing.T) {
	req := sampleRequest()
	goodReq, err := AppendEstimateRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	goodResp := AppendEstimateResponse(nil, []Summary{{MaxC: 1, Map: []float64{1, 2}}}, QualityOK)

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		copy(bad, "EMRS") // a response frame on the request decoder
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted wrong magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		bad[4] = 99
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted future version")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 3, 15, 17, len(goodReq) / 2, len(goodReq) - 1} {
			if _, err := DecodeEstimateRequest(goodReq[:cut], nil); err == nil {
				t.Fatalf("accepted request cut at %d", cut)
			}
		}
		for _, cut := range []int{0, 15, len(goodResp) / 2, len(goodResp) - 1} {
			if _, _, err := DecodeEstimateResponse(goodResp[:cut]); err == nil {
				t.Fatalf("accepted response cut at %d", cut)
			}
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		bad[20] ^= 0x01
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted corrupt payload (crc should catch)")
		}
	})
	t.Run("huge declared length", func(t *testing.T) {
		bad := append([]byte(nil), goodReq...)
		for i := 8; i < 16; i++ {
			bad[i] = 0xff
		}
		if _, err := DecodeEstimateRequest(bad, nil); err == nil {
			t.Fatal("accepted absurd payload length")
		}
	})
	t.Run("rows x cols overflow vs payload", func(t *testing.T) {
		// Hand-build a frame whose header claims more readings than the
		// payload holds.
		lying := *req
		lyingBuf, err := AppendEstimateRequest(nil, &lying)
		if err != nil {
			t.Fatal(err)
		}
		// rows field lives at payload offset 8 → frame offset 16+8.
		lyingBuf[24] = 0xff
		// Recompute nothing: the CRC now fails first, which is also an
		// acceptable rejection. Either way it must not decode.
		if _, err := DecodeEstimateRequest(lyingBuf, nil); err == nil {
			t.Fatal("accepted rows/cols inconsistent with payload")
		}
	})
	t.Run("unknown request flags", func(t *testing.T) {
		plain := &EstimateRequest{Readings: [][]float64{{1, 2}}}
		buf, err := AppendEstimateRequest(nil, plain)
		if err != nil {
			t.Fatal(err)
		}
		// flags live at payload offset 0 → frame offset 16. Set an unknown
		// bit and patch the CRC so the flag check itself is exercised.
		buf[16] |= 0x80
		payload := buf[16 : len(buf)-4]
		recrc(buf, payload)
		if _, err := DecodeEstimateRequest(buf, nil); err == nil {
			t.Fatal("accepted unknown flags")
		}
	})
	t.Run("map length beyond payload", func(t *testing.T) {
		bad := append([]byte(nil), goodResp...)
		// map_len of summary 0 lives at payload offset 4+4+28 → frame 16+36.
		bad[52] = 0xf0
		payload := bad[16 : len(bad)-4]
		recrc(bad, payload)
		if _, _, err := DecodeEstimateResponse(bad); err == nil {
			t.Fatal("accepted map length beyond payload")
		}
	})
}

// recrc rewrites the trailing CRC of a frame after a test mutated its
// payload, so validation deeper than the checksum is reachable.
func recrc(frame, payload []byte) {
	c := crc32.ChecksumIEEE(payload)
	frame[len(frame)-4] = byte(c)
	frame[len(frame)-3] = byte(c >> 8)
	frame[len(frame)-2] = byte(c >> 16)
	frame[len(frame)-1] = byte(c >> 24)
}

func BenchmarkAppendEstimateRequest(b *testing.B) {
	req := &EstimateRequest{Readings: make([][]float64, 64)}
	for i := range req.Readings {
		req.Readings[i] = make([]float64, 8)
		for j := range req.Readings[i] {
			req.Readings[i][j] = 60 + float64(i)*0.1 + float64(j)
		}
	}
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AppendEstimateRequest(buf[:0], req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEstimateRequest(b *testing.B) {
	req := &EstimateRequest{Readings: make([][]float64, 64)}
	for i := range req.Readings {
		req.Readings[i] = make([]float64, 8)
		for j := range req.Readings[i] {
			req.Readings[i][j] = 60 + float64(i)*0.1 + float64(j)
		}
	}
	buf, err := AppendEstimateRequest(nil, req)
	if err != nil {
		b.Fatal(err)
	}
	scratch := &ReadingsBuf{}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEstimateRequest(buf, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
