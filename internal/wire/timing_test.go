package wire

import (
	"reflect"
	"testing"
)

func TestServerTimingRoundTrip(t *testing.T) {
	in := []Timing{
		{Name: "decode", DurMS: 0.123},
		{Name: "solve", DurMS: 4.5},
		{Name: "encode", DurMS: 0.001},
	}
	h := FormatServerTiming(in)
	want := "decode;dur=0.123, solve;dur=4.5, encode;dur=0.001"
	if h != want {
		t.Fatalf("FormatServerTiming = %q, want %q", h, want)
	}
	out := ParseServerTiming(h)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestFormatServerTimingEmpty(t *testing.T) {
	if got := FormatServerTiming(nil); got != "" {
		t.Fatalf("empty timings = %q", got)
	}
}

func TestParseServerTimingLenient(t *testing.T) {
	cases := []struct {
		in   string
		want []Timing
	}{
		{"", nil},
		{"cache;desc=hit", nil}, // no dur: skipped
		{"db;dur=abc, ok;dur=2", []Timing{{"ok", 2}}}, // bad dur: skipped
		{" a ; dur=1 , b;dur=2", []Timing{{"a", 1}, {"b", 2}}},
		{"x;desc=test;dur=3.5", []Timing{{"x", 3.5}}}, // dur after other params
	}
	for _, tc := range cases {
		if got := ParseServerTiming(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseServerTiming(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSortTimings(t *testing.T) {
	ts := []Timing{{"solve", 1}, {"decode", 2}, {"encode", 3}}
	SortTimings(ts)
	if ts[0].Name != "decode" || ts[1].Name != "encode" || ts[2].Name != "solve" {
		t.Fatalf("sorted = %+v", ts)
	}
}
