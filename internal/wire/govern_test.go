package wire

import (
	"math"
	"reflect"
	"testing"
)

func governTestRequest() *GovernRequest {
	return &GovernRequest{
		Readings: [][]float64{{70.5, 71.25, 69}, {72, 73.5, 70.125}},
		Config: &GovernConfig{
			Policy:   "hysteresis",
			CeilingC: 80,
			SetC:     79,
			ClearC:   76,
			Ladder:   []float64{0.5, 0.7, 0.85, 1.0},
		},
	}
}

func TestGovernRequestRoundTrip(t *testing.T) {
	req := governTestRequest()
	buf, err := AppendGovernRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGovernRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Readings, req.Readings) {
		t.Errorf("readings: %v != %v", got.Readings, req.Readings)
	}
	if !reflect.DeepEqual(got.Config, req.Config) {
		t.Errorf("config: %+v != %+v", got.Config, req.Config)
	}
}

func TestGovernRequestNoConfig(t *testing.T) {
	req := &GovernRequest{Readings: [][]float64{{1, 2}}}
	buf, err := AppendGovernRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGovernRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != nil {
		t.Errorf("config round-tripped as %+v, want nil", got.Config)
	}
	if !reflect.DeepEqual(got.Readings, req.Readings) {
		t.Errorf("readings: %v != %v", got.Readings, req.Readings)
	}
}

func TestGovernRequestScratchReuse(t *testing.T) {
	req := governTestRequest()
	buf, err := AppendGovernRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &ReadingsBuf{}
	a, err := DecodeGovernRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	want := append([][]float64(nil), a.Readings...)
	for i := range want {
		want[i] = append([]float64(nil), want[i]...)
	}
	b, err := DecodeGovernRequest(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Readings, want) {
		t.Errorf("scratch reuse corrupted readings")
	}
}

func TestGovernRequestRejects(t *testing.T) {
	if _, err := AppendGovernRequest(nil, &GovernRequest{
		Readings: [][]float64{{1, 2}, {3}},
	}); err == nil {
		t.Error("ragged batch encoded")
	}
	if _, err := AppendGovernRequest(nil, &GovernRequest{
		Config: &GovernConfig{Policy: "bogus", CeilingC: 80},
	}); err == nil {
		t.Error("unknown policy encoded")
	}
	good, err := AppendGovernRequest(nil, governTestRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte: the CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[20] ^= 0xff
	if _, err := DecodeGovernRequest(bad, nil); err == nil {
		t.Error("corrupt payload decoded")
	}
	// Truncation.
	if _, err := DecodeGovernRequest(good[:len(good)-5], nil); err == nil {
		t.Error("truncated frame decoded")
	}
	// Wrong magic (an estimate frame is not a govern frame).
	est, err := AppendEstimateRequest(nil, &EstimateRequest{Readings: [][]float64{{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGovernRequest(est, nil); err == nil {
		t.Error("EMRQ frame decoded as a govern request")
	}
}

func governTestResponse() *GovernResponse {
	return &GovernResponse{
		Quality: QualityDrifting,
		Ladder:  []float64{0.5, 0.7, 0.85, 1.0},
		Cores:   3,
		Decisions: []GovernDecision{
			{MaxC: 81.5, MinC: 60.25, MeanC: 70.5, MaxCell: 17, Levels: []int{0, 3, 3}},
			{MaxC: 79, MinC: 59, MeanC: 69, MaxCell: 4, Levels: []int{1, 3, 2}},
		},
		Snapshots:    42,
		ThrottleDuty: 0.375,
	}
}

func TestGovernResponseRoundTrip(t *testing.T) {
	resp := governTestResponse()
	buf, err := AppendGovernResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGovernResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, resp)
	}
}

func TestGovernResponseRejects(t *testing.T) {
	resp := governTestResponse()
	resp.Decisions[0].Levels = []int{0, 3} // wrong core count
	if _, err := AppendGovernResponse(nil, resp); err == nil {
		t.Error("mismatched level count encoded")
	}
	resp = governTestResponse()
	resp.Decisions[1].Levels[0] = 300 // does not fit a byte
	if _, err := AppendGovernResponse(nil, resp); err == nil {
		t.Error("level > 255 encoded")
	}
	good, err := AppendGovernResponse(nil, governTestResponse())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[25] ^= 0x01
	if _, err := DecodeGovernResponse(bad); err == nil {
		t.Error("corrupt response decoded")
	}
}

func TestGovernFloatsAreBitExact(t *testing.T) {
	// The binary protocol's whole point: floats survive bit-for-bit,
	// including values decimal text would round.
	v := math.Nextafter(80, 81)
	req := &GovernRequest{Readings: [][]float64{{v}}}
	buf, err := AppendGovernRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGovernRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Readings[0][0]) != math.Float64bits(v) {
		t.Errorf("reading bits changed in transit")
	}
}
