// Package wire is the serving layer's binary protocol: a length-prefixed,
// checksummed request/response encoding for the estimate hot path, selected
// by clients with Content-Type: application/x-emaps. At >100k snapshots/s
// the JSON text codec — even the daemon's hand-rolled scanner — still pays
// to print and parse every float in decimal; this codec moves readings and
// summaries as raw float64 little-endian words instead, so a request body
// is one memcpy-shaped scan on both sides.
//
// # Envelopes
//
// Both directions reuse the internal/store EMST envelope idiom with their
// own magics:
//
//	magic   "EMRQ" (request) / "EMRS" (response)   4 bytes
//	version uint32 LE                              protocol version (2; 1 accepted)
//	length  uint64 LE                              payload byte count
//	payload length bytes
//	crc     uint32 LE                              IEEE CRC-32 of the payload
//
// Request payload, identical under versions 1 and 2 (all integers uint32 LE,
// floats float64 LE):
//
//	flags     uint32   bit 0 = include_maps, bit 1 = arm "qr"
//	workers   uint32   estimation worker-pool size (0 = default)
//	rows      uint32   snapshots in the batch
//	cols      uint32   readings per snapshot (the batch is rectangular)
//	readings  rows×cols float64, row-major
//
// Response payload (version 2):
//
//	flags     uint32   bits 0–1 = quality (0 ok, 1 drifting, 2 degraded)
//	count     uint32   summaries (== request rows)
//	per summary:
//	  max_c   float64
//	  min_c   float64
//	  mean_c  float64
//	  max_cell uint32
//	  map_len uint32   0 unless include_maps was set
//	  map     map_len float64
//
// A version 1 response payload is the same without the leading flags word;
// this build still decodes it (quality reads as ok — v1 daemons predate
// drift detection). The quality bits mirror the JSON protocol's "quality"
// field, so both protocols carry the same drift verdict per response.
//
// Decoded values are bit-identical to the JSON path's: both protocols move
// the same float64s, one in decimal text, one in raw bits — which is what
// the cross-protocol parity test in cmd/emapsd pins.
//
// Error responses are NOT binary: a non-2xx status carries the daemon's
// uniform JSON error envelope regardless of the request protocol, so error
// handling is one code path for every client.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// ContentType is the MIME type that selects the binary protocol on the
// estimate route.
const ContentType = "application/x-emaps"

// Version is the protocol version this build writes. Decode additionally
// accepts version 1 (whose responses carry no quality word).
const Version = 2

// minVersion is the oldest protocol version Decode still reads.
const minVersion = 1

const (
	reqMagic  = "EMRQ"
	respMagic = "EMRS"

	// maxPayload caps the declared payload length before any allocation, à
	// la internal/store: a corrupt or hostile length field must not drive a
	// multi-gigabyte make(). 64 MB is ~1M float64 readings per request —
	// far beyond any sane batch.
	maxPayload = 1 << 26

	flagIncludeMaps = 1 << 0
	flagArmQR       = 1 << 1

	// respQualityMask covers the quality bits of a version ≥ 2 response
	// flags word.
	respQualityMask = 0x3
)

// Quality is the drift verdict a response carries (bits 0–1 of the version 2
// response flags word), mirroring the JSON protocol's "quality" field.
type Quality uint32

// Response quality values, ordered by severity.
const (
	// QualityOK: the serving monitor's residuals match its calibration.
	QualityOK Quality = iota
	// QualityDrifting: the monitor has drifted; estimates still serve but
	// should be treated as reduced-fidelity while adaptation runs.
	QualityDrifting
	// QualityDegraded: residuals are far outside calibration; estimates are
	// suspect until the monitor adapts or is retrained.
	QualityDegraded
)

// String names the quality exactly as the JSON protocol spells it.
func (q Quality) String() string {
	switch q {
	case QualityOK:
		return "ok"
	case QualityDrifting:
		return "drifting"
	case QualityDegraded:
		return "degraded"
	}
	return fmt.Sprintf("Quality(%d)", uint32(q))
}

// Summary is one snapshot's digest, shared by the JSON and binary codecs
// (cmd/emapsd aliases its response struct to this type, so the two
// protocols cannot drift apart field-wise).
type Summary struct {
	MaxC    float64   `json:"max_c"`
	MinC    float64   `json:"min_c"`
	MeanC   float64   `json:"mean_c"`
	MaxCell int       `json:"max_cell"`
	Map     []float64 `json:"map,omitempty"`
}

// EstimateRequest is the decoded form of a binary estimate request.
type EstimateRequest struct {
	// Readings is the rows×cols batch; rows are subslices of one flat
	// allocation (or of a caller-provided ReadingsBuf).
	Readings [][]float64
	// Workers is the estimation worker-pool size (0 = default).
	Workers int
	// IncludeMaps asks for full maps in each summary.
	IncludeMaps bool
	// ArmQR selects the per-snapshot QR-solve ablation arm instead of the
	// precomputed-operator GEMM.
	ArmQR bool
}

// ReadingsBuf is reusable decode scratch: the flat readings storage and the
// row headers over it. A pooled ReadingsBuf makes steady-state binary
// decodes allocation-free, mirroring the JSON fast path's readingsBuf.
type ReadingsBuf struct {
	flat []float64
	rows [][]float64
}

// AppendEstimateRequest encodes req onto buf and returns the extended
// slice. All rows must have the same length; ragged batches cannot be
// expressed on the binary wire (the JSON protocol accepts them and rejects
// them downstream).
func AppendEstimateRequest(buf []byte, req *EstimateRequest) ([]byte, error) {
	rows := len(req.Readings)
	cols := 0
	if rows > 0 {
		cols = len(req.Readings[0])
	}
	for i, r := range req.Readings {
		if len(r) != cols {
			return nil, fmt.Errorf("wire: ragged batch (row %d has %d readings, row 0 has %d)", i, len(r), cols)
		}
	}
	var flags uint32
	if req.IncludeMaps {
		flags |= flagIncludeMaps
	}
	if req.ArmQR {
		flags |= flagArmQR
	}
	payloadLen := 4 + 4 + 4 + 4 + 8*rows*cols
	buf = appendHeader(buf, reqMagic, payloadLen)
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Workers))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cols))
	for _, r := range req.Readings {
		buf = appendFloats(buf, r)
	}
	return appendCRC(buf, payloadStart), nil
}

// DecodeEstimateRequest decodes one binary estimate request. scratch may be
// nil (the rows are then backed by a fresh allocation); passing a pooled
// ReadingsBuf makes the decode reuse its storage. The returned request's
// rows alias scratch — recycle it only after the rows are dead.
func DecodeEstimateRequest(data []byte, scratch *ReadingsBuf) (*EstimateRequest, error) {
	payload, _, err := checkEnvelope(data, reqMagic, "request")
	if err != nil {
		return nil, err
	}
	if len(payload) < 16 {
		return nil, fmt.Errorf("wire: request payload %d bytes, want at least 16", len(payload))
	}
	flags := binary.LittleEndian.Uint32(payload[0:4])
	if flags&^uint32(flagIncludeMaps|flagArmQR) != 0 {
		return nil, fmt.Errorf("wire: unknown request flags %#x", flags)
	}
	workers := binary.LittleEndian.Uint32(payload[4:8])
	rows := int(binary.LittleEndian.Uint32(payload[8:12]))
	cols := int(binary.LittleEndian.Uint32(payload[12:16]))
	want := 16 + 8*rows*cols
	if rows < 0 || cols < 0 || rows*cols < 0 || want != len(payload) {
		return nil, fmt.Errorf("wire: %dx%d readings do not fit a %d-byte payload", rows, cols, len(payload))
	}
	if scratch == nil {
		scratch = &ReadingsBuf{}
	}
	if cap(scratch.flat) < rows*cols {
		scratch.flat = make([]float64, rows*cols)
	}
	flat := scratch.flat[:rows*cols]
	body := payload[16:]
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	scratch.rows = scratch.rows[:0]
	for i := 0; i < rows; i++ {
		scratch.rows = append(scratch.rows, flat[i*cols:(i+1)*cols:(i+1)*cols])
	}
	return &EstimateRequest{
		Readings:    scratch.rows,
		Workers:     int(workers),
		IncludeMaps: flags&flagIncludeMaps != 0,
		ArmQR:       flags&flagArmQR != 0,
	}, nil
}

// AppendEstimateResponse encodes the summaries and the response quality onto
// buf and returns the extended slice — the binary twin of the daemon's
// hand-rendered JSON response.
func AppendEstimateResponse(buf []byte, results []Summary, quality Quality) []byte {
	payloadLen := 4 + 4
	for i := range results {
		payloadLen += 8 + 8 + 8 + 4 + 4 + 8*len(results[i].Map)
	}
	buf = appendHeader(buf, respMagic, payloadLen)
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(quality)&respQualityMask)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(results)))
	for i := range results {
		r := &results[i]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MaxC))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MinC))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MeanC))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.MaxCell))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Map)))
		buf = appendFloats(buf, r.Map)
	}
	return appendCRC(buf, payloadStart)
}

// DecodeEstimateResponse decodes one binary estimate response. The returned
// quality is QualityOK for version 1 responses, which predate the flags word.
func DecodeEstimateResponse(data []byte) ([]Summary, Quality, error) {
	payload, version, err := checkEnvelope(data, respMagic, "response")
	if err != nil {
		return nil, 0, err
	}
	quality := QualityOK
	off := 0
	if version >= 2 {
		if len(payload) < 4 {
			return nil, 0, fmt.Errorf("wire: response payload %d bytes, want at least 4 for the flags word", len(payload))
		}
		flags := binary.LittleEndian.Uint32(payload[0:4])
		if flags&^uint32(respQualityMask) != 0 {
			return nil, 0, fmt.Errorf("wire: unknown response flags %#x", flags)
		}
		quality = Quality(flags & respQualityMask)
		off = 4
	}
	if len(payload)-off < 4 {
		return nil, 0, fmt.Errorf("wire: response payload %d bytes, want at least %d", len(payload), off+4)
	}
	count := int(binary.LittleEndian.Uint32(payload[off : off+4]))
	if count < 0 || count > (len(payload)-off-4)/32 {
		return nil, 0, fmt.Errorf("wire: %d summaries do not fit a %d-byte payload", count, len(payload))
	}
	out := make([]Summary, count)
	off += 4
	for i := range out {
		if len(payload)-off < 32 {
			return nil, 0, fmt.Errorf("wire: response payload ends inside summary %d", i)
		}
		out[i].MaxC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		out[i].MinC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		out[i].MeanC = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:]))
		out[i].MaxCell = int(binary.LittleEndian.Uint32(payload[off+24:]))
		mapLen := int(binary.LittleEndian.Uint32(payload[off+28:]))
		off += 32
		if len(payload)-off < 8*mapLen {
			return nil, 0, fmt.Errorf("wire: summary %d claims a %d-cell map beyond the payload", i, mapLen)
		}
		if mapLen > 0 {
			m := make([]float64, mapLen)
			for j := range m {
				m[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8*j:]))
			}
			out[i].Map = m
			off += 8 * mapLen
		}
	}
	if off != len(payload) {
		return nil, 0, fmt.Errorf("wire: %d trailing response payload bytes", len(payload)-off)
	}
	return out, quality, nil
}

// appendHeader writes the magic, version and payload length.
func appendHeader(buf []byte, magic string, payloadLen int) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	return binary.LittleEndian.AppendUint64(buf, uint64(payloadLen))
}

// appendCRC appends the IEEE CRC-32 of buf[payloadStart:].
func appendCRC(buf []byte, payloadStart int) []byte {
	crc := crc32.ChecksumIEEE(buf[payloadStart:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// appendFloats writes fs as float64 LE words.
func appendFloats(buf []byte, fs []float64) []byte {
	for _, f := range fs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// checkEnvelope validates magic, version, length and CRC, returning the
// payload slice (aliasing data) and the envelope's version so callers can
// decode version-dependent payload layouts.
func checkEnvelope(data []byte, magic, what string) ([]byte, uint32, error) {
	if len(data) < 16 {
		return nil, 0, fmt.Errorf("wire: %s shorter than its 16-byte header", what)
	}
	if string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("wire: %s magic %q, want %q", what, data[:4], magic)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version < minVersion || version > Version {
		return nil, 0, fmt.Errorf("wire: %s version %d (this build speaks %d..%d)", what, version, minVersion, Version)
	}
	length := binary.LittleEndian.Uint64(data[8:16])
	if length > maxPayload {
		return nil, 0, fmt.Errorf("wire: %s payload length %d exceeds cap %d", what, length, int64(maxPayload))
	}
	if uint64(len(data)) != 16+length+4 {
		return nil, 0, fmt.Errorf("wire: %s is %d bytes, envelope declares %d", what, len(data), 16+length+4)
	}
	payload := data[16 : 16+length]
	want := binary.LittleEndian.Uint32(data[16+length:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("wire: %s crc32 %08x, envelope says %08x", what, got, want)
	}
	return payload, version, nil
}
