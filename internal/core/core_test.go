package core

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/place"
	"repro/internal/recon"
)

var (
	dsOnce sync.Once
	dsVal  *dataset.Dataset
	dsErr  error
)

func testDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
			Grid:      floorplan.Grid{W: 14, H: 12},
			Snapshots: 140,
			Seed:      21,
		})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func trainEigen(t *testing.T, kmax int) *Model {
	t.Helper()
	m, err := Train(testDS(t), TrainOptions{KMax: kmax, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainAllKinds(t *testing.T) {
	ds := testDS(t)
	for _, kind := range []BasisKind{BasisEigenMaps, BasisDCT, BasisDCTZigZag} {
		m, err := Train(ds, TrainOptions{KMax: 8, Kind: kind, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.Basis.KMax() != 8 {
			t.Fatalf("%v: KMax %d", kind, m.Basis.KMax())
		}
		if len(m.Energy) != ds.N() {
			t.Fatalf("%v: energy length %d", kind, len(m.Energy))
		}
		for _, e := range m.Energy {
			if e < 0 {
				t.Fatalf("%v: negative energy", kind)
			}
		}
	}
}

func TestTrainUnknownKind(t *testing.T) {
	if _, err := Train(testDS(t), TrainOptions{Kind: BasisKind(99)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainRejectsDegenerateOptions(t *testing.T) {
	ds := testDS(t)
	single := &dataset.Dataset{Grid: ds.Grid, Maps: ds.Maps.SelectRows([]int{0})}
	for _, tc := range []struct {
		name   string
		opt    TrainOptions
		on     *dataset.Dataset
		option string
	}{
		{"single snapshot", TrainOptions{KMax: 4}, single, "Ensemble"},
		{"negative workers", TrainOptions{KMax: 4, Workers: -1}, ds, "Workers"},
		{"unknown method", TrainOptions{KMax: 4, Method: 99}, ds, "Method"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Train(tc.on, tc.opt)
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("error %v does not match ErrInvalidOptions", err)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Fatalf("option = %q, want %q (%v)", oe.Option, tc.option, err)
			}
		})
	}
}

func TestTrainMethodAndWorkersMatchDefault(t *testing.T) {
	// Forcing either eigensolver side or any worker cap must not change the
	// trained subspace beyond numerical tolerance on a T < N ensemble.
	ds := testDS(t)
	auto, err := Train(ds, TrainOptions{KMax: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []TrainOptions{
		{KMax: 6, Seed: 21, Method: basis.PCAGram},
		{KMax: 6, Seed: 21, Method: basis.PCAGram, Workers: 3},
		{KMax: 6, Seed: 21, Method: basis.PCACovariance},
	} {
		m, err := Train(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Basis.Psi.Equal(auto.Basis.Psi, 1e-6) {
			t.Fatalf("method %v workers %d diverged from the default basis", opt.Method, opt.Workers)
		}
	}
}

func TestTrainKMaxClampsToT(t *testing.T) {
	ds := testDS(t)
	small, _ := ds.Split(0.1)
	_ = small
	tiny := &dataset.Dataset{Grid: ds.Grid, Maps: ds.Maps.SelectRows([]int{0, 1, 2, 3, 4})}
	m, err := Train(tiny, TrainOptions{KMax: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Basis.KMax() > 5 {
		t.Fatalf("KMax %d exceeds T=5", m.Basis.KMax())
	}
}

func TestBasisKindString(t *testing.T) {
	if BasisEigenMaps.String() != "eigenmaps" || BasisDCT.String() != "dct-energy" ||
		BasisDCTZigZag.String() != "dct-zigzag" || BasisKind(7).String() != "BasisKind(7)" {
		t.Fatal("kind names wrong")
	}
}

func TestPlaceSensorsDefaultsToGreedyKM(t *testing.T) {
	m := trainEigen(t, 10)
	sensors, err := m.PlaceSensors(6, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sensors) < 6 {
		t.Fatalf("%d sensors", len(sensors))
	}
}

func TestPlaceSensorsKExceedsM(t *testing.T) {
	m := trainEigen(t, 10)
	if _, err := m.PlaceSensors(4, PlaceOptions{K: 8}); err == nil {
		t.Fatal("K>M must fail")
	}
}

func TestPlaceSensorsWithMaskAndAllocators(t *testing.T) {
	m := trainEigen(t, 10)
	raster := floorplan.UltraSparcT1().Rasterize(m.Grid)
	mask := raster.MaskExcludingKinds(floorplan.KindCache)
	for _, alloc := range []place.Allocator{
		&place.Greedy{}, &place.EnergyCenter{}, &place.Random{Seed: 2}, &place.Uniform{},
	} {
		sensors, err := m.PlaceSensors(6, PlaceOptions{Mask: mask, Allocator: alloc})
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		for _, s := range sensors {
			if !mask[s] {
				t.Fatalf("%s violated mask at %d", alloc.Name(), s)
			}
		}
	}
}

func TestMonitorEstimate(t *testing.T) {
	m := trainEigen(t, 10)
	ds := testDS(t)
	sensors, err := m.PlaceSensors(8, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := m.NewMonitor(8, sensors[:8])
	if err != nil {
		t.Fatal(err)
	}
	if mon.K() != 8 || len(mon.Sensors()) != 8 {
		t.Fatal("accessors wrong")
	}
	cond, err := mon.Cond()
	if err != nil || cond < 1 {
		t.Fatalf("cond %v err %v", cond, err)
	}
	x := ds.Map(7)
	est, err := mon.Estimate(mon.Sample(x))
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range x {
		d := x[i] - est[i]
		mse += d * d
	}
	mse /= float64(len(x))
	if mse > 10 {
		t.Fatalf("monitor MSE %v too large", mse)
	}
	if mon.Reconstructor() == nil {
		t.Fatal("Reconstructor accessor nil")
	}
}

func TestBestKPrefersSmallKUnderNoise(t *testing.T) {
	m := trainEigen(t, 12)
	ds := testDS(t)
	sensors, err := m.PlaceSensors(12, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sensors = sensors[:12]
	kClean, _, err := m.BestK(ds, sensors, recon.EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kNoisy, resNoisy, err := m.BestK(ds, sensors, recon.EvalConfig{SNRdB: 10, NoisePresent: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if kNoisy > kClean {
		t.Fatalf("noisy best K=%d above clean best K=%d — ε/ε_r trade-off inverted", kNoisy, kClean)
	}
	if resNoisy.MSE <= 0 || math.IsNaN(resNoisy.MSE) {
		t.Fatalf("noisy MSE %v", resNoisy.MSE)
	}
}

func TestBestKNoUsableK(t *testing.T) {
	m := trainEigen(t, 4)
	ds := testDS(t)
	// Two sensors on the same cell: K=2 is rank-deficient, K=1 works, so
	// BestK succeeds; verify the error path with an empty sensor list.
	if _, _, err := m.BestK(ds, nil, recon.EvalConfig{}); !errors.Is(err, ErrNoUsableK) {
		t.Fatalf("err = %v, want ErrNoUsableK", err)
	}
}

func TestEnergyMapMatchesVariance(t *testing.T) {
	m := trainEigen(t, 6)
	ds := testDS(t)
	x, _ := ds.Centered()
	// Spot-check a few cells.
	for _, i := range []int{0, 17, 100} {
		var s float64
		for j := 0; j < x.Rows(); j++ {
			s += x.At(j, i) * x.At(j, i)
		}
		s /= float64(x.Rows())
		if math.Abs(s-m.Energy[i]) > 1e-10 {
			t.Fatalf("energy[%d] = %v, want %v", i, m.Energy[i], s)
		}
	}
}

func TestTrainRejectsNaNDataset(t *testing.T) {
	ds := testDS(t)
	bad := &dataset.Dataset{Grid: ds.Grid, Maps: ds.Maps.Clone()}
	bad.Maps.Set(0, 0, math.NaN())
	if _, err := Train(bad, TrainOptions{KMax: 4}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := trainEigen(t, 6)
	ds := testDS(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != m.Grid || got.Basis.KMax() != m.Basis.KMax() {
		t.Fatal("metadata changed")
	}
	for i := range m.Energy {
		if got.Energy[i] != m.Energy[i] {
			t.Fatal("energy changed")
		}
	}
	// Loaded model must place and reconstruct identically.
	s1, err := m.PlaceSensors(6, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := got.PlaceSensors(6, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatal("placement differs")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("placement differs")
		}
	}
	mon1, err := m.NewMonitor(6, s1[:6])
	if err != nil {
		t.Fatal(err)
	}
	mon2, err := got.NewMonitor(6, s2[:6])
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Map(5)
	e1, err := mon1.Estimate(mon1.Sample(x))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := mon2.Estimate(mon2.Sample(x))
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("loaded model reconstructs differently")
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m := trainEigen(t, 4)
	path := filepath.Join(t.TempDir(), "model.emm")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Basis.Psi.Equal(m.Basis.Psi, 0) {
		t.Fatal("file round trip mismatch")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected error")
	}
}
