package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/basis"
)

// Model serialization: the basis in its own format followed by the per-cell
// training energy map (needed by the energy-center allocator). Training at
// paper scale costs minutes; a deployment trains once and ships the model.

// Save writes the model.
func (mdl *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := mdl.Basis.Save(bw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(mdl.Energy))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, mdl.Energy); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	b, err := basis.Load(br)
	if err != nil {
		return nil, fmt.Errorf("core: loading basis: %w", err)
	}
	var ne uint32
	if err := binary.Read(br, binary.LittleEndian, &ne); err != nil {
		return nil, fmt.Errorf("core: reading energy length: %w", err)
	}
	if int(ne) != b.N() {
		return nil, fmt.Errorf("core: energy length %d does not match N=%d", ne, b.N())
	}
	energy := make([]float64, ne)
	if err := binary.Read(br, binary.LittleEndian, energy); err != nil {
		return nil, fmt.Errorf("core: reading energy: %w", err)
	}
	return &Model{Basis: b, Energy: energy, Grid: b.Grid}, nil
}

// SaveFile writes the model to path.
func (mdl *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mdl.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
