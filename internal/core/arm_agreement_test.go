package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/recon"
	"repro/internal/track"
	"repro/internal/workload"
)

// The operator and QR arms both realize Theorem 1 and differ only in
// floating-point operation order: per cell both paths run O(K·M) flops over
// O(1)-magnitude basis entries, so their results agree to ~1e-14 relative.
// The 1e-12 bound below leaves two orders of margin for ill-conditioned
// layouts while still catching any real algebra defect, which would show up
// at O(1). Coverage spans both bundled floorplans × the catalog's workload
// scenarios × a Kalman-tracked serving sequence.
const armAgreeTol = 1e-12

func armRelDiff(a, b []float64) float64 {
	var diff, scale float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > diff {
			diff = d
		}
		if m := math.Abs(a[i]); m > scale {
			scale = m
		}
	}
	if scale < 1 {
		scale = 1
	}
	return diff / scale
}

func TestOperatorQRAgreementAcrossFloorplansAndScenarios(t *testing.T) {
	floorplans := []*floorplan.Floorplan{floorplan.UltraSparcT1(), floorplan.AthlonDualCore()}
	scenarios := []string{"web", "compute", "mixed", "idle"}
	for _, fp := range floorplans {
		for _, scen := range scenarios {
			spec := workload.Preset(scen)
			if spec == nil {
				t.Fatalf("scenario %q missing from the registry", scen)
			}
			ds, err := dataset.Generate(fp, dataset.GenConfig{
				Grid: floorplan.Grid{W: 12, H: 10}, Snapshots: 40, Seed: 11,
				Specs: []*workload.Spec{spec},
			})
			if err != nil {
				t.Fatalf("%s/%s: generate: %v", fp.Name, scen, err)
			}
			model, err := Train(ds, TrainOptions{KMax: 8, Seed: 11})
			if err != nil {
				t.Fatalf("%s/%s: train: %v", fp.Name, scen, err)
			}
			sensors, err := model.PlaceSensors(8, PlaceOptions{K: 4})
			if err != nil {
				t.Fatalf("%s/%s: place: %v", fp.Name, scen, err)
			}
			mon, err := model.NewMonitor(4, sensors)
			if err != nil {
				t.Fatalf("%s/%s: monitor: %v", fp.Name, scen, err)
			}
			op := make([]float64, mon.N())
			qr := make([]float64, mon.N())
			for j := 0; j < 10; j++ {
				xS := mon.Sample(ds.Map(j))
				if err := mon.EstimateArmInto(op, xS, recon.ArmOperator); err != nil {
					t.Fatal(err)
				}
				if err := mon.EstimateArmInto(qr, xS, recon.ArmQR); err != nil {
					t.Fatal(err)
				}
				if d := armRelDiff(qr, op); d > armAgreeTol {
					t.Fatalf("%s/%s map %d: arms disagree by %g relative", fp.Name, scen, j, d)
				}
			}
		}
	}
}

// Agreement also holds inside a tracked serving sequence: the Kalman filter
// smooths readings over time independently of the reconstruction arm, and
// per-step estimates from the two arms stay within the pinned tolerance.
func TestOperatorQRAgreementUnderTracking(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	ds, err := dataset.Generate(fp, dataset.GenConfig{
		Grid: floorplan.Grid{W: 12, H: 10}, Snapshots: 60, Seed: 5,
		Specs: []*workload.Spec{workload.Preset("mixed")},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := Train(ds, TrainOptions{KMax: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := model.PlaceSensors(8, PlaceOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(4, sensors)
	if err != nil {
		t.Fatal(err)
	}
	kf, err := track.NewKalman(model.Basis, 4, sensors, track.Config{})
	if err != nil {
		t.Fatal(err)
	}
	op := make([]float64, mon.N())
	qr := make([]float64, mon.N())
	for j := 0; j < 30; j++ {
		xS := mon.Sample(ds.Map(j))
		if _, err := kf.Step(xS); err != nil {
			t.Fatalf("step %d: %v", j, err)
		}
		if err := mon.EstimateArmInto(op, xS, recon.ArmOperator); err != nil {
			t.Fatal(err)
		}
		if err := mon.EstimateArmInto(qr, xS, recon.ArmQR); err != nil {
			t.Fatal(err)
		}
		if d := armRelDiff(qr, op); d > armAgreeTol {
			t.Fatalf("step %d: arms disagree by %g relative", j, d)
		}
	}
}
