// Package core wires the substrates into the paper's end-to-end pipeline:
//
//	design-time:  simulate maps → train a basis (EigenMaps or DCT) →
//	              allocate sensors (greedy / energy-center, optionally masked)
//	run-time:     reconstruct the full thermal map from sensor readings
//
// It is the implementation behind the repository's public eigenmaps package.
package core

import (
	"errors"
	"fmt"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/place"
	"repro/internal/recon"
)

// BasisKind selects the approximation subspace family.
type BasisKind int

// Supported basis families.
const (
	// BasisEigenMaps is the paper's PCA subspace (Proposition 1).
	BasisEigenMaps BasisKind = iota
	// BasisDCT is the k-LSE baseline subspace (energy-ranked DCT).
	BasisDCT
	// BasisDCTZigZag is the data-independent low-pass DCT subspace.
	BasisDCTZigZag
)

// String names the basis kind.
func (k BasisKind) String() string {
	switch k {
	case BasisEigenMaps:
		return "eigenmaps"
	case BasisDCT:
		return "dct-energy"
	case BasisDCTZigZag:
		return "dct-zigzag"
	}
	return fmt.Sprintf("BasisKind(%d)", int(k))
}

// TrainOptions parameterize Train.
type TrainOptions struct {
	// KMax is the number of basis vectors to learn (the largest K any
	// reconstructor built from this model may use). Default 40.
	KMax int
	// Kind selects the subspace family. Default BasisEigenMaps.
	Kind BasisKind
	// Seed drives PCA subspace iteration. Results are seed-insensitive up to
	// numerical tolerance.
	Seed int64
	// Method selects the PCA eigensolver side (covariance subspace iteration
	// or the snapshot-Gram dual); the zero value picks the cheaper one from
	// the ensemble shape. Ignored by the DCT families.
	Method basis.PCAMethod
	// Workers caps the goroutines used by the snapshot-Gram path (0 = all
	// CPUs, 1 = sequential). Negative values are rejected.
	Workers int
	// UseSnapshotMethod forwards to basis.PCAConfig (deprecated ablation
	// spelling of Method: basis.PCAGram).
	UseSnapshotMethod bool
}

// OptionError reports a TrainOptions field (or the ensemble it is applied
// to) that would silently produce a degenerate model. Match with errors.As,
// or errors.Is against ErrInvalidOptions.
type OptionError struct {
	Option string // offending field, e.g. "Workers"
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("core: invalid %s: %s", e.Option, e.Reason)
}

// Is makes every OptionError match ErrInvalidOptions.
func (e *OptionError) Is(target error) bool { return target == ErrInvalidOptions }

// ErrInvalidOptions is the errors.Is target for all OptionError values.
var ErrInvalidOptions = errors.New("core: invalid training options")

// validate rejects option/ensemble combinations that would otherwise train
// silently into garbage: a single snapshot centers to the zero matrix (its
// "covariance" has no spectrum at all), and a negative worker cap is always
// a caller bug rather than a request for sequential execution.
func (opt TrainOptions) validate(ds *dataset.Dataset) error {
	if t := ds.T(); t < 2 {
		return &OptionError{Option: "Ensemble", Reason: fmt.Sprintf("training needs T ≥ 2 snapshots, got %d (a single centered snapshot has a degenerate covariance)", t)}
	}
	if opt.Workers < 0 {
		return &OptionError{Option: "Workers", Reason: fmt.Sprintf("%d is negative (0 = all CPUs, 1 = sequential)", opt.Workers)}
	}
	switch opt.Method {
	case basis.PCAAuto, basis.PCACovariance, basis.PCAGram:
	default:
		return &OptionError{Option: "Method", Reason: fmt.Sprintf("unknown PCA method %v", opt.Method)}
	}
	return nil
}

// Model is a trained thermal-map model for one grid: the ordered basis plus
// the per-cell training energy map used by the energy-center allocator.
type Model struct {
	Basis  *basis.Basis
	Energy []float64 // per-cell mean squared centered temperature
	Grid   floorplan.Grid
}

// Train learns a Model from the design-time ensemble. The dataset is
// validated first: non-finite temperatures or a grid/map mismatch fail fast
// instead of propagating NaNs into the basis.
func Train(ds *dataset.Dataset, opt TrainOptions) (*Model, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := opt.validate(ds); err != nil {
		return nil, err
	}
	if opt.KMax == 0 {
		opt.KMax = 40
	}
	if t := ds.T(); opt.KMax > t {
		opt.KMax = t
	}
	var (
		b   *basis.Basis
		err error
	)
	switch opt.Kind {
	case BasisEigenMaps:
		b, err = basis.TrainPCA(ds, opt.KMax, basis.PCAConfig{
			Seed:              opt.Seed,
			Method:            opt.Method,
			Workers:           opt.Workers,
			UseSnapshotMethod: opt.UseSnapshotMethod,
		})
	case BasisDCT:
		b, err = basis.TrainDCT(ds, opt.KMax, basis.DCTEnergyRanked)
	case BasisDCTZigZag:
		b, err = basis.TrainDCT(ds, opt.KMax, basis.DCTZigZag)
	default:
		return nil, fmt.Errorf("core: unknown basis kind %v", opt.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	// Energy map: mean squared centered temperature per cell.
	x, _ := ds.Centered()
	energy := make([]float64, ds.N())
	for j := 0; j < x.Rows(); j++ {
		row := x.Row(j)
		for i, v := range row {
			energy[i] += v * v
		}
	}
	for i := range energy {
		energy[i] /= float64(x.Rows())
	}
	return &Model{Basis: b, Energy: energy, Grid: ds.Grid}, nil
}

// PlaceOptions parameterize PlaceSensors.
type PlaceOptions struct {
	// K is the subspace dimension the sensors must observe; defaults to M
	// (the paper's operating point K = M for noiseless reconstruction).
	K int
	// Mask restricts placement (nil = whole die).
	Mask []bool
	// Allocator overrides the strategy; nil = the paper's greedy Algorithm 1.
	Allocator place.Allocator
}

// PlaceSensors allocates m sensor locations for the model.
func (mdl *Model) PlaceSensors(m int, opt PlaceOptions) ([]int, error) {
	k := opt.K
	if k == 0 {
		k = m
	}
	if k > mdl.Basis.KMax() {
		k = mdl.Basis.KMax()
	}
	if k > m {
		return nil, fmt.Errorf("core: K=%d exceeds sensor budget M=%d", k, m)
	}
	psi, err := mdl.Basis.PsiK(k)
	if err != nil {
		return nil, err
	}
	alloc := opt.Allocator
	if alloc == nil {
		alloc = &place.Greedy{}
	}
	sensors, err := alloc.Allocate(place.Input{
		Psi:    psi,
		Energy: mdl.Energy,
		Grid:   mdl.Grid,
		M:      m,
		Mask:   opt.Mask,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s allocation: %w", alloc.Name(), err)
	}
	return sensors, nil
}

// Monitor is the run-time estimator: it owns a reconstructor for a fixed
// sensor set and subspace dimension. It is safe for concurrent use: the
// least-squares factorization is precomputed at construction and shared
// read-only across all estimating goroutines.
type Monitor struct {
	rec *recon.Reconstructor
}

// NewMonitor builds the run-time estimator for k basis vectors observed at
// the given sensors.
func (mdl *Model) NewMonitor(k int, sensors []int) (*Monitor, error) {
	r, err := recon.New(mdl.Basis, k, sensors)
	if err != nil {
		return nil, err
	}
	return &Monitor{rec: r}, nil
}

// RestoreMonitor rebuilds a run-time estimator from a persisted basis,
// sensor set and cached least-squares factorization (the monitor store's
// deserialization path, see internal/store). The restored monitor estimates
// bit-identically to the one the factorization was captured from.
func RestoreMonitor(b *basis.Basis, k int, sensors []int, qr *mat.QR) (*Monitor, error) {
	r, err := recon.Restore(b, k, sensors, qr)
	if err != nil {
		return nil, err
	}
	return &Monitor{rec: r}, nil
}

// RestoreMonitorWithOperator is RestoreMonitor plus a persisted
// reconstruction operator (a v2 store record's operator section), skipping
// the deterministic re-fold on load.
func RestoreMonitorWithOperator(b *basis.Basis, k int, sensors []int, qr *mat.QR, op *mat.Matrix, opBias []float64) (*Monitor, error) {
	r, err := recon.RestoreWithOperator(b, k, sensors, qr, op, opBias)
	if err != nil {
		return nil, err
	}
	return &Monitor{rec: r}, nil
}

// Estimate reconstructs the full map from sensor readings (°C), ordered like
// the sensor slice the monitor was built with.
func (m *Monitor) Estimate(readings []float64) ([]float64, error) {
	return m.rec.Reconstruct(readings)
}

// EstimateInto is the allocation-free form of Estimate: the map is written
// into dst (length N) and scratch comes from the monitor's pool.
func (m *Monitor) EstimateInto(dst, readings []float64) error {
	return m.rec.ReconstructInto(dst, readings)
}

// EstimateBatch reconstructs one map per reading vector, fanning the batch
// out over workers goroutines (0 = NumCPU).
func (m *Monitor) EstimateBatch(readings [][]float64, workers int) ([][]float64, error) {
	return m.rec.ReconstructBatch(readings, workers)
}

// EstimateBatchInto is the allocation-free batch form; dst[i] (length N each)
// receives the estimate for readings[i].
func (m *Monitor) EstimateBatchInto(dst, readings [][]float64, workers int) error {
	return m.rec.ReconstructBatchInto(dst, readings, workers)
}

// EstimateArmInto is EstimateInto with an explicit reconstruction arm
// (recon.ArmOperator is the default serving path, recon.ArmQR the reference
// ablation).
func (m *Monitor) EstimateArmInto(dst, readings []float64, arm recon.Arm) error {
	return m.rec.ReconstructArmInto(dst, readings, arm)
}

// EstimateBatchArmInto is EstimateBatchInto with an explicit arm.
func (m *Monitor) EstimateBatchArmInto(dst, readings [][]float64, workers int, arm recon.Arm) error {
	return m.rec.ReconstructBatchArmInto(dst, readings, workers, arm)
}

// EstimateBatchArm is EstimateBatch with an explicit arm.
func (m *Monitor) EstimateBatchArm(readings [][]float64, workers int, arm recon.Arm) ([][]float64, error) {
	out := make([][]float64, len(readings))
	n := m.rec.N()
	backing := make([]float64, len(readings)*n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	if err := m.rec.ReconstructBatchArmInto(out, readings, workers, arm); err != nil {
		return nil, err
	}
	return out, nil
}

// N returns the number of cells per estimated map (the dst size EstimateInto
// expects).
func (m *Monitor) N() int { return m.rec.N() }

// Sample extracts this monitor's sensor readings from a full map (testing
// and simulation convenience).
func (m *Monitor) Sample(x []float64) []float64 { return m.rec.Sample(x) }

// Sensors returns the monitored cell indices.
func (m *Monitor) Sensors() []int { return m.rec.Sensors() }

// K returns the subspace dimension.
func (m *Monitor) K() int { return m.rec.K() }

// Cond returns κ(Ψ̃_K), the layout quality metric of eq. (5).
func (m *Monitor) Cond() (float64, error) { return m.rec.Cond() }

// Reconstructor exposes the underlying estimator for evaluation code.
func (m *Monitor) Reconstructor() *recon.Reconstructor { return m.rec }

// ResidualInto computes the sensor-space reprojection residual of one reading
// vector (the drift statistic): the per-sensor residual goes into dst (length
// M) and the normalized residual norm ∈ [0, 1] is returned. See
// recon.Reconstructor.ResidualInto.
func (m *Monitor) ResidualInto(dst, readings []float64) (float64, error) {
	return m.rec.ResidualInto(dst, readings)
}

// ResidualStats scores a whole batch of reading vectors for drift in one
// pass — see recon.Reconstructor.ResidualStats.
func (m *Monitor) ResidualStats(energy []float64, rows [][]float64) (float64, int, error) {
	return m.rec.ResidualStats(energy, rows)
}

// ResidualStatsFromEstimates scores a served batch using its
// already-computed reconstructions — see
// recon.Reconstructor.ResidualStatsFromEstimates.
func (m *Monitor) ResidualStatsFromEstimates(energy []float64, rows, maps [][]float64) (float64, int, error) {
	return m.rec.ResidualStatsFromEstimates(energy, rows, maps)
}

// ErrNoUsableK is returned by BestK when no K in range yields a full-rank
// sensing matrix.
var ErrNoUsableK = errors.New("core: no usable subspace dimension for this sensor set")

// BestK picks the subspace dimension K ∈ [1, min(M, KMax)] minimizing the
// evaluated MSE on ds — the ε (approximation) versus ε_r (conditioning)
// balance discussed after Theorem 1.
func (mdl *Model) BestK(ds *dataset.Dataset, sensors []int, cfg recon.EvalConfig) (int, recon.Result, error) {
	maxK := len(sensors)
	if mdl.Basis.KMax() < maxK {
		maxK = mdl.Basis.KMax()
	}
	bestK := 0
	var best recon.Result
	for k := 1; k <= maxK; k++ {
		r, err := recon.New(mdl.Basis, k, sensors)
		if err != nil {
			continue // e.g. rank deficient at this K
		}
		res, err := recon.Evaluate(r, ds, cfg)
		if err != nil {
			continue
		}
		if bestK == 0 || res.MSE < best.MSE {
			bestK, best = k, res
		}
	}
	if bestK == 0 {
		return 0, recon.Result{}, ErrNoUsableK
	}
	return bestK, best, nil
}
