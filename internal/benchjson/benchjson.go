// Package benchjson defines the benchmark-artifact JSON schema shared by
// cmd/bench2json (the producer) and cmd/benchdiff (the consumer, which
// gates CI on it). Keeping one definition prevents the two commands from
// drifting apart silently: a field rename that only touched one side would
// still compile but make the regression gate compare nothing.
package benchjson

// Result is one benchmark line. Every metric on the line is kept, including
// custom b.ReportMetric units such as ns/snapshot and snapshots/s.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is one benchmark run (the BENCH_*.json artifact).
type Doc struct {
	Commit  string   `json:"commit,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}
