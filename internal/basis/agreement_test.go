package basis

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/mat"
)

// maxPrincipalAngleSin returns the sine of the largest principal angle
// between the column spans of a and b (both orthonormal N×k blocks):
// the largest singular value of the residual B − A(AᵀB). The sine-based
// form stays accurate for tiny angles, where cos θ rounds to 1 in float64.
func maxPrincipalAngleSin(t *testing.T, a, b *mat.Matrix) float64 {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	r := b.Clone().SubMatrix(mat.Mul(a, mat.MulTA(a, b)))
	sv, err := mat.SingularValues(r)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, s := range sv {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// agreementEnsemble simulates a small thermally realistic ensemble for the
// given floorplan and shape.
func agreementEnsemble(t *testing.T, fp *floorplan.Floorplan, snapshots int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(fp, dataset.GenConfig{
		Grid:      floorplan.Grid{W: 12, H: 10},
		Snapshots: snapshots,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// trainMethod trains the EigenMaps basis with a forced eigensolver side and
// a tight covariance-iteration tolerance.
func trainMethod(t *testing.T, ds *dataset.Dataset, kmax int, m PCAMethod) *Basis {
	t.Helper()
	b, err := TrainPCA(ds, kmax, PCAConfig{
		Seed:     7,
		Method:   m,
		Subspace: mat.SubspaceOptions{Tol: 1e-14},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGramCovarianceSubspaceAgreement pins the tentpole's correctness claim:
// on both bundled floorplans the snapshot-Gram dual and the covariance
// subspace iteration span the same K-dimensional EigenMaps subspace to
// numerical precision (largest principal angle < 1e-8), with matching
// eigenvalues.
func TestGramCovarianceSubspaceAgreement(t *testing.T) {
	const kmax = 6
	for _, tc := range []struct {
		name      string
		fp        *floorplan.Floorplan
		snapshots int
	}{
		{"t1/T<N", floorplan.UltraSparcT1(), 60},
		{"athlon/T<N", floorplan.AthlonDualCore(), 60},
		{"t1/T>=N", floorplan.UltraSparcT1(), 150},
		{"athlon/T>=N", floorplan.AthlonDualCore(), 150},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := agreementEnsemble(t, tc.fp, tc.snapshots, 42)
			gram := trainMethod(t, ds, kmax, PCAGram)
			cov := trainMethod(t, ds, kmax, PCACovariance)
			if s := maxPrincipalAngleSin(t, cov.Psi, gram.Psi); s > 1e-8 {
				t.Fatalf("principal angle sin %v ≥ 1e-8 between gram and covariance bases", s)
			}
			for i := range gram.Importance {
				g, c := gram.Importance[i], cov.Importance[i]
				if diff := g - c; diff > 1e-8*(cov.Importance[0]+1) || diff < -1e-8*(cov.Importance[0]+1) {
					t.Fatalf("eigenvalue %d differs across methods: gram %v vs covariance %v", i, g, c)
				}
			}
		})
	}
}

// TestPCAAutoSelection pins the cost-model dispatch: auto resolves to the
// Gram dual exactly when the ensemble is short relative to the grid AND
// short enough (T ≤ max(128, 8·kmax)) that the dense T×T eigensolve stays
// cheaper than iterating on the covariance; everything else falls back to
// covariance iteration.
func TestPCAAutoSelection(t *testing.T) {
	for _, tc := range []struct {
		t, n, kmax int
		want       PCAMethod
	}{
		{60, 120, 8, PCAGram},
		{119, 120, 8, PCAGram},
		{120, 120, 8, PCACovariance},    // T ≥ N: Gram side has no edge
		{150, 120, 8, PCACovariance},    // T ≥ N
		{400, 1200, 32, PCACovariance},  // T past the eigensolve crossover
		{240, 528, 20, PCACovariance},   // QuickConfig shape: measured 2× cheaper via covariance
		{300, 1200, 40, PCAGram},        // wide block favors the Gram side
		{2652, 3360, 40, PCACovariance}, // the paper's full-scale shape
	} {
		if got := ResolvePCAMethod(PCAAuto, tc.t, tc.n, tc.kmax); got != tc.want {
			t.Fatalf("ResolvePCAMethod(auto, %d, %d, %d) = %v, want %v", tc.t, tc.n, tc.kmax, got, tc.want)
		}
	}
	// Concrete methods pass through untouched.
	if ResolvePCAMethod(PCAGram, 500, 10, 8) != PCAGram || ResolvePCAMethod(PCACovariance, 10, 500, 8) != PCACovariance {
		t.Fatal("forced methods must not be overridden")
	}
	// And the T ≥ N fallback trains through the covariance path without the
	// caller asking for it.
	ds := agreementEnsemble(t, floorplan.UltraSparcT1(), 150, 9)
	auto, err := TrainPCA(ds, 5, PCAConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cov := trainMethod(t, ds, 5, PCACovariance)
	if s := maxPrincipalAngleSin(t, cov.Psi, auto.Psi); s > 1e-6 {
		t.Fatalf("auto at T ≥ N diverged from covariance path: sin %v", s)
	}
}

// TestGramWorkersInvariant pins that the worker cap changes scheduling, not
// results: the Gram path is bit-identical across worker counts.
func TestGramWorkersInvariant(t *testing.T) {
	ds := agreementEnsemble(t, floorplan.UltraSparcT1(), 80, 13)
	seq, err := TrainPCA(ds, 8, PCAConfig{Method: PCAGram, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		par, err := TrainPCA(ds, 8, PCAConfig{Method: PCAGram, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Psi.Equal(seq.Psi, 0) {
			t.Fatalf("workers=%d changed the trained basis", workers)
		}
		for i := range seq.Importance {
			if par.Importance[i] != seq.Importance[i] {
				t.Fatalf("workers=%d changed eigenvalue %d", workers, i)
			}
		}
	}
}
