package basis

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/metrics"
)

// trainingSet generates a small but thermally realistic ensemble once per
// test binary.
var trainingSet = func() *dataset.Dataset {
	ds, err := dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
		Grid:      floorplan.Grid{W: 12, H: 10},
		Snapshots: 120,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	return ds
}()

func trainPCA(t *testing.T, kmax int) *Basis {
	t.Helper()
	b, err := TrainPCA(trainingSet, kmax, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTrainPCAShapes(t *testing.T) {
	b := trainPCA(t, 8)
	if b.KMax() != 8 || b.N() != 120 {
		t.Fatalf("KMax=%d N=%d", b.KMax(), b.N())
	}
	if len(b.Mean) != 120 || len(b.Importance) != 8 {
		t.Fatal("mean/importance lengths wrong")
	}
}

func TestTrainPCAOrthonormal(t *testing.T) {
	b := trainPCA(t, 8)
	if !mat.Gram(b.Psi).Equal(mat.Identity(8), 1e-9) {
		t.Fatal("PCA basis not orthonormal")
	}
}

func TestTrainPCAImportanceDescending(t *testing.T) {
	b := trainPCA(t, 10)
	for i := 1; i < len(b.Importance); i++ {
		if b.Importance[i] > b.Importance[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", b.Importance)
		}
	}
	if b.Importance[0] <= 0 {
		t.Fatal("leading eigenvalue not positive")
	}
}

func TestApproximationErrorDecreasesWithK(t *testing.T) {
	b := trainPCA(t, 12)
	prev := math.Inf(1)
	for k := 1; k <= 12; k += 2 {
		var ens metrics.Ensemble
		for j := 0; j < trainingSet.T(); j++ {
			ap, err := b.Approximate(trainingSet.Map(j), k)
			if err != nil {
				t.Fatal(err)
			}
			ens.Add(trainingSet.Map(j), ap)
		}
		if ens.MSE() > prev+1e-12 {
			t.Fatalf("K=%d MSE %v worse than smaller K %v", k, ens.MSE(), prev)
		}
		prev = ens.MSE()
	}
}

func TestProposition1TailSum(t *testing.T) {
	// Empirical training approximation error (summed over cells, averaged
	// over maps) must match the tail eigenvalue sum of eq. (2).
	kmax := 10
	b := trainPCA(t, kmax)
	// Need *all* eigenvalues for the tail; instead verify the complementary
	// identity: captured energy = Σ_{n<K} λ_n.
	x, _ := trainingSet.Centered()
	totalEnergy := 0.0
	for j := 0; j < x.Rows(); j++ {
		n := mat.Norm2(x.Row(j))
		totalEnergy += n * n
	}
	totalEnergy /= float64(x.Rows())
	for _, k := range []int{2, 5, 10} {
		var resid float64
		for j := 0; j < trainingSet.T(); j++ {
			ap, err := b.Approximate(trainingSet.Map(j), k)
			if err != nil {
				t.Fatal(err)
			}
			d := mat.SubVec(trainingSet.Map(j), ap)
			nd := mat.Norm2(d)
			resid += nd * nd
		}
		resid /= float64(trainingSet.T())
		captured := totalEnergy - resid
		var headSum float64
		for i := 0; i < k; i++ {
			headSum += b.Importance[i]
		}
		if math.Abs(captured-headSum) > 1e-6*totalEnergy {
			t.Fatalf("K=%d: captured %v != Σλ %v", k, captured, headSum)
		}
	}
}

func TestPCABeatsDCTOnTrainingSet(t *testing.T) {
	// Proposition 1 optimality: the PCA subspace must not lose to the DCT
	// subspace of equal dimension on the training ensemble.
	kmax := 8
	pca := trainPCA(t, kmax)
	dctB, err := TrainDCT(trainingSet, kmax, DCTEnergyRanked)
	if err != nil {
		t.Fatal(err)
	}
	mseOf := func(b *Basis, k int) float64 {
		var ens metrics.Ensemble
		for j := 0; j < trainingSet.T(); j++ {
			ap, err := b.Approximate(trainingSet.Map(j), k)
			if err != nil {
				t.Fatal(err)
			}
			ens.Add(trainingSet.Map(j), ap)
		}
		return ens.MSE()
	}
	for _, k := range []int{2, 4, 8} {
		if p, d := mseOf(pca, k), mseOf(dctB, k); p > d+1e-12 {
			t.Fatalf("K=%d: PCA MSE %v worse than DCT %v — violates optimality", k, p, d)
		}
	}
}

func TestSynthesizeCoefficientsRoundTrip(t *testing.T) {
	b := trainPCA(t, 6)
	alpha := []float64{3, -2, 1, 0.5, -0.25, 4}
	x := b.Synthesize(alpha)
	got, err := b.Coefficients(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range alpha {
		if math.Abs(got[i]-alpha[i]) > 1e-9 {
			t.Fatalf("coef %d: %v, want %v", i, got[i], alpha[i])
		}
	}
}

func TestApproximateIdempotent(t *testing.T) {
	// Projecting an already-projected map changes nothing.
	b := trainPCA(t, 5)
	x := trainingSet.Map(3)
	a1, err := b.Approximate(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Approximate(a1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-9 {
			t.Fatal("projection not idempotent")
		}
	}
}

func TestKRangeErrors(t *testing.T) {
	b := trainPCA(t, 4)
	if _, err := b.PsiK(0); !errors.Is(err, ErrKRange) {
		t.Fatalf("PsiK(0) err = %v", err)
	}
	if _, err := b.PsiK(5); !errors.Is(err, ErrKRange) {
		t.Fatalf("PsiK(5) err = %v", err)
	}
	if _, err := b.Coefficients(trainingSet.Map(0), 9); !errors.Is(err, ErrKRange) {
		t.Fatal("Coefficients should range-check K")
	}
	if _, err := b.Approximate(make([]float64, 3), 2); err == nil {
		t.Fatal("Approximate should length-check x")
	}
}

func TestTailImportance(t *testing.T) {
	b := trainPCA(t, 6)
	total := b.TailImportance(0)
	var sum float64
	for _, v := range b.Importance {
		sum += v
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Fatal("TailImportance(0) != full sum")
	}
	if b.TailImportance(6) != 0 {
		t.Fatal("TailImportance(KMax) != 0")
	}
}

func TestSnapshotMethodMatchesSubspace(t *testing.T) {
	b1, err := TrainPCA(trainingSet, 5, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TrainPCA(trainingSet, 5, PCAConfig{UseSnapshotMethod: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(b1.Importance[i]-b2.Importance[i]) > 1e-6*(b1.Importance[0]+1) {
			t.Fatalf("eigenvalue %d: %v vs %v", i, b1.Importance[i], b2.Importance[i])
		}
		d := math.Abs(mat.Dot(b1.Psi.Col(i), b2.Psi.Col(i)))
		if d < 1-1e-5 {
			t.Fatalf("eigenvector %d misaligned: %v", i, d)
		}
	}
}

func TestTrainDCTZigZagSelection(t *testing.T) {
	b, err := TrainDCT(trainingSet, 6, DCTZigZag)
	if err != nil {
		t.Fatal(err)
	}
	if b.KMax() != 6 {
		t.Fatalf("KMax = %d", b.KMax())
	}
	if !mat.Gram(b.Psi).Equal(mat.Identity(6), 1e-10) {
		t.Fatal("DCT basis not orthonormal")
	}
}

func TestTrainDCTEnergyRankedImportanceDescending(t *testing.T) {
	b, err := TrainDCT(trainingSet, 10, DCTEnergyRanked)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b.Importance); i++ {
		if b.Importance[i] > b.Importance[i-1]+1e-12 {
			t.Fatalf("energy ranking not descending: %v", b.Importance)
		}
	}
}

func TestEnergyRankedNoWorseThanZigZag(t *testing.T) {
	k := 8
	zz, err := TrainDCT(trainingSet, k, DCTZigZag)
	if err != nil {
		t.Fatal(err)
	}
	er, err := TrainDCT(trainingSet, k, DCTEnergyRanked)
	if err != nil {
		t.Fatal(err)
	}
	mseOf := func(b *Basis) float64 {
		var ens metrics.Ensemble
		for j := 0; j < trainingSet.T(); j++ {
			ap, err := b.Approximate(trainingSet.Map(j), k)
			if err != nil {
				t.Fatal(err)
			}
			ens.Add(trainingSet.Map(j), ap)
		}
		return ens.MSE()
	}
	if e, z := mseOf(er), mseOf(zz); e > z+1e-12 {
		t.Fatalf("energy-ranked MSE %v worse than zigzag %v", e, z)
	}
}

func TestTrainRejectsBadKmax(t *testing.T) {
	if _, err := TrainPCA(trainingSet, 0, PCAConfig{}); err == nil {
		t.Fatal("expected kmax error")
	}
	if _, err := TrainDCT(trainingSet, 0, DCTZigZag); err == nil {
		t.Fatal("expected kmax error")
	}
}

func TestTrainDCTUnknownSelection(t *testing.T) {
	if _, err := TrainDCT(trainingSet, 4, DCTSelection(99)); err == nil {
		t.Fatal("expected selection error")
	}
}

func TestDCTSelectionString(t *testing.T) {
	if DCTZigZag.String() != "zigzag" || DCTEnergyRanked.String() != "energy-ranked" {
		t.Fatal("selection names wrong")
	}
	if DCTSelection(7).String() != "DCTSelection(7)" {
		t.Fatal("unknown selection name wrong")
	}
}

func TestBasisSaveLoadRoundTrip(t *testing.T) {
	b := trainPCA(t, 6)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.Grid != b.Grid || got.KMax() != b.KMax() {
		t.Fatalf("metadata changed: %q %v %d", got.Name, got.Grid, got.KMax())
	}
	if !got.Psi.Equal(b.Psi, 0) {
		t.Fatal("basis matrix not bit-identical")
	}
	for i := range b.Mean {
		if got.Mean[i] != b.Mean[i] {
			t.Fatal("mean changed")
		}
	}
	for i := range b.Importance {
		if got.Importance[i] != b.Importance[i] {
			t.Fatal("importance changed")
		}
	}
	// The loaded basis must be functional.
	ap1, err := b.Approximate(trainingSet.Map(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	ap2, err := got.Approximate(trainingSet.Map(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ap1 {
		if ap1[i] != ap2[i] {
			t.Fatal("loaded basis approximates differently")
		}
	}
}

func TestBasisSaveLoadFile(t *testing.T) {
	b := trainPCA(t, 4)
	path := filepath.Join(t.TempDir(), "basis.embs")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Psi.Equal(b.Psi, 0) {
		t.Fatal("file round trip mismatch")
	}
}

func TestBasisLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("YUCK"))); err == nil {
		t.Fatal("expected magic error")
	}
	var buf bytes.Buffer
	b := trainPCA(t, 4)
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("expected truncation error")
	}
}
