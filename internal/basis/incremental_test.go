package basis

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/metrics"
)

func TestIncrementalValidation(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 4}
	if _, err := NewIncremental(g, 0, 8); err == nil {
		t.Fatal("kmax 0 should fail")
	}
	if _, err := NewIncremental(floorplan.Grid{}, 4, 8); err == nil {
		t.Fatal("empty grid should fail")
	}
	inc, err := NewIncremental(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(make([]float64, 3)); err == nil {
		t.Fatal("wrong map length should fail")
	}
	if _, err := inc.Snapshot(); err == nil {
		t.Fatal("empty snapshot should fail")
	}
}

func TestIncrementalMeanExact(t *testing.T) {
	inc, err := NewIncremental(trainingSet.Grid, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < trainingSet.T(); j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := trainingSet.Mean()
	for i := range want {
		if math.Abs(b.Mean[i]-want[i]) > 1e-9 {
			t.Fatalf("streamed mean off at %d: %v vs %v", i, b.Mean[i], want[i])
		}
	}
	if inc.Count() != trainingSet.T() {
		t.Fatalf("count %d", inc.Count())
	}
}

func TestIncrementalMatchesBatchPCA(t *testing.T) {
	kmax := 8
	inc, err := NewIncremental(trainingSet.Grid, kmax, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < trainingSet.T(); j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := TrainPCA(trainingSet, kmax, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Leading eigenvalues agree to a few percent (tail truncation at each
	// merge perturbs only the discarded components).
	for i := 0; i < 4; i++ {
		rel := math.Abs(streamed.Importance[i]-batch.Importance[i]) / batch.Importance[0]
		if rel > 0.05 {
			t.Fatalf("λ%d: streamed %v vs batch %v", i, streamed.Importance[i], batch.Importance[i])
		}
	}
	// Leading subspace aligns.
	for i := 0; i < 3; i++ {
		d := math.Abs(mat.Dot(streamed.Psi.Col(i), batch.Psi.Col(i)))
		if d < 0.97 {
			t.Fatalf("component %d misaligned: |dot| = %v", i, d)
		}
	}
}

func TestIncrementalApproximationQuality(t *testing.T) {
	// The streamed basis must approximate the ensemble almost as well as
	// batch PCA at the same K.
	k := 6
	inc, err := NewIncremental(trainingSet.Grid, 10, 24)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < trainingSet.T(); j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := TrainPCA(trainingSet, 10, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mseOf := func(b *Basis) float64 {
		var ens metrics.Ensemble
		for j := 0; j < trainingSet.T(); j++ {
			ap, err := b.Approximate(trainingSet.Map(j), k)
			if err != nil {
				t.Fatal(err)
			}
			ens.Add(trainingSet.Map(j), ap)
		}
		return ens.MSE()
	}
	sm, bm := mseOf(streamed), mseOf(batch)
	if sm > bm*1.5+1e-9 {
		t.Fatalf("streamed MSE %v much worse than batch %v", sm, bm)
	}
}

func TestIncrementalSnapshotIndependence(t *testing.T) {
	inc, err := NewIncremental(trainingSet.Grid, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 40; j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	frozen := b1.Psi.Clone()
	for j := 40; j < trainingSet.T(); j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if !b1.Psi.Equal(frozen, 0) {
		t.Fatal("earlier snapshot mutated by later Adds")
	}
}

func TestIncrementalAdaptsToDrift(t *testing.T) {
	// Feed one regime, then a very different one; the refreshed basis must
	// explain the new regime better than the stale basis does.
	k := 4
	half := trainingSet.T() / 2
	// Regime A: the training ensemble. Regime B: maps with reversed sign of
	// deviation from the mean (synthetic drift with identical mean).
	mean := trainingSet.Mean()
	// Stale basis: trained on regime A only.
	incA, err := NewIncremental(trainingSet.Grid, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < half; j++ {
		if err := incA.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	stale, err := incA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Refreshed: keeps absorbing regime B (scaled deviations: 3× hotter
	// contrasts — a new dominant direction scale).
	regimeB := make([][]float64, 0, trainingSet.T()-half)
	for j := half; j < trainingSet.T(); j++ {
		x := trainingSet.Map(j)
		b := make([]float64, len(x))
		for i := range x {
			b[i] = mean[i] + 3*(x[i]-mean[i])
		}
		regimeB = append(regimeB, b)
	}
	for _, x := range regimeB {
		if err := incA.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	refreshed, err := incA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var staleEns, freshEns metrics.Ensemble
	for _, x := range regimeB {
		as, err := stale.Approximate(x, k)
		if err != nil {
			t.Fatal(err)
		}
		af, err := refreshed.Approximate(x, k)
		if err != nil {
			t.Fatal(err)
		}
		staleEns.Add(x, as)
		freshEns.Add(x, af)
	}
	if freshEns.MSE() > staleEns.MSE() {
		t.Fatalf("refreshed basis (%v) not better than stale (%v) on the new regime",
			freshEns.MSE(), staleEns.MSE())
	}
}

func TestIncrementalOrthonormal(t *testing.T) {
	inc, err := NewIncremental(trainingSet.Grid, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 55; j++ { // deliberately not a multiple of bufCap
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k := b.KMax()
	if !mat.Gram(b.Psi).Equal(mat.Identity(k), 1e-9) {
		t.Fatal("streamed basis not orthonormal")
	}
}
