package basis

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Incremental maintains an EigenMaps basis over a *stream* of thermal maps,
// without storing the stream: snapshots accumulate in a bounded buffer and
// are periodically merged into a rank-limited factorization using the
// classical incremental PCA with mean update (Ross, Lim, Lin, Yang — IJCV
// 2008). This extends the paper's design-time training to in-field refresh:
// a deployed monitor can keep absorbing reconstruction-grade maps and adapt
// its subspace to workload drift.
//
// Merging is exact for the retained rank: after each merge the factorization
// equals the batch PCA of (previous rank-r approximation ∪ buffer), with the
// only information loss being the discarded tail components — quantified by
// the usual eigenvalue tail.
type Incremental struct {
	grid   floorplan.Grid
	n      int
	kmax   int
	bufCap int

	count int       // snapshots absorbed so far
	mean  []float64 // running mean (exact)

	// Exact per-cell first and second moments over *every* absorbed snapshot
	// (buffered ones included), maintained so the trainer can report the
	// energy map E[(x−μ)²] = E[x²] − μ² that sensor placement and the store
	// format require alongside the basis.
	sum   []float64
	sumSq []float64

	// Current factorization of the centered scatter: scatter ≈ U·diag(s)·Uᵀ
	// with s holding *scatter* eigenvalues (covariance eigenvalue × count).
	u *mat.Matrix // N×r, orthonormal columns; nil until the first merge
	s []float64

	buf *mat.Matrix // bufCap×N ring of pending raw snapshots
	nb  int         // pending count
}

// NewIncremental creates a streaming trainer on grid keeping kmax
// components, merging every bufCap snapshots (default max(2·kmax, 16)).
func NewIncremental(grid floorplan.Grid, kmax, bufCap int) (*Incremental, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("basis: kmax %d < 1", kmax)
	}
	if grid.N() == 0 {
		return nil, fmt.Errorf("basis: empty grid")
	}
	if bufCap <= 0 {
		bufCap = 2 * kmax
		if bufCap < 16 {
			bufCap = 16
		}
	}
	return &Incremental{
		grid:   grid,
		n:      grid.N(),
		kmax:   kmax,
		bufCap: bufCap,
		mean:   make([]float64, grid.N()),
		sum:    make([]float64, grid.N()),
		sumSq:  make([]float64, grid.N()),
		buf:    mat.New(bufCap, grid.N()),
	}, nil
}

// NewIncrementalFrom creates a streaming trainer seeded with an existing
// trained basis standing in for count already-absorbed snapshots — the
// in-field adaptation entry point: a deployed monitor's design-time basis
// becomes the starting factorization and subsequent Adds drift it toward the
// live workload. energy, when non-nil, is the per-cell training energy
// E[(x−μ)²] (length N) so the seeded trainer's Energy output stays exact;
// nil seeds zero second moments and Energy reflects only post-seed snapshots'
// spread around the seeded mean. The retained rank is b.KMax().
func NewIncrementalFrom(b *Basis, energy []float64, count, bufCap int) (*Incremental, error) {
	if b == nil {
		return nil, fmt.Errorf("basis: nil seed basis")
	}
	if count < 1 {
		return nil, fmt.Errorf("basis: seed count %d < 1", count)
	}
	if energy != nil && len(energy) != b.N() {
		return nil, fmt.Errorf("basis: energy length %d, want %d", len(energy), b.N())
	}
	inc, err := NewIncremental(b.Grid, b.KMax(), bufCap)
	if err != nil {
		return nil, err
	}
	inc.count = count
	copy(inc.mean, b.Mean)
	inc.u = b.Psi.Clone()
	inc.s = make([]float64, b.KMax())
	for j, imp := range b.Importance {
		inc.s[j] = imp * float64(count) // covariance eigenvalue → scatter
	}
	nA := float64(count)
	for i, m := range b.Mean {
		inc.sum[i] = nA * m
		inc.sumSq[i] = nA * m * m
	}
	if energy != nil {
		for i, e := range energy {
			inc.sumSq[i] += nA * e
		}
	}
	return inc, nil
}

// Count returns the number of snapshots absorbed (including buffered ones).
func (inc *Incremental) Count() int { return inc.count + inc.nb }

// Add absorbs one thermal map (length N). The map is copied.
func (inc *Incremental) Add(x []float64) error {
	if len(x) != inc.n {
		return fmt.Errorf("basis: map length %d, want %d", len(x), inc.n)
	}
	inc.buf.SetRow(inc.nb, x)
	inc.nb++
	for i, v := range x {
		inc.sum[i] += v
		inc.sumSq[i] += v * v
	}
	if inc.nb == inc.bufCap {
		inc.merge()
	}
	return nil
}

// Energy returns the per-cell mean squared centered temperature
// E[(x−μ)²] = E[x²] − μ² over every absorbed snapshot (buffered ones
// included) — the same energy map batch training reports, which sensor
// placement and the monitor store require alongside the basis. Returns nil
// before the first Add (or seed).
func (inc *Incremental) Energy() []float64 {
	total := float64(inc.Count())
	if total == 0 {
		return nil
	}
	out := make([]float64, inc.n)
	for i := range out {
		m := inc.sum[i] / total
		e := inc.sumSq[i]/total - m*m
		if e < 0 {
			e = 0 // second-moment cancellation noise
		}
		out[i] = e
	}
	return out
}

// merge folds the buffered snapshots into the factorization.
func (inc *Incremental) merge() {
	if inc.nb == 0 {
		return
	}
	nA := float64(inc.count)
	nB := float64(inc.nb)

	// Buffer mean and the combined mean.
	muB := make([]float64, inc.n)
	for j := 0; j < inc.nb; j++ {
		mat.AXPY(1/nB, inc.buf.Row(j), muB)
	}
	newMean := make([]float64, inc.n)
	for i := range newMean {
		newMean[i] = (nA*inc.mean[i] + nB*muB[i]) / (nA + nB)
	}

	// Augmented column set whose outer product reproduces the combined
	// scatter: previous components scaled by √s, the buffer centered at its
	// own mean, and the mean-shift column √(nA·nB/(nA+nB))·(μA − μB).
	r := 0
	if inc.u != nil {
		r = inc.u.Cols()
	}
	cols := r + inc.nb
	if nA > 0 {
		cols++
	}
	aug := mat.New(inc.n, cols)
	c := 0
	for j := 0; j < r; j++ {
		scale := math.Sqrt(inc.s[j])
		for i := 0; i < inc.n; i++ {
			aug.Set(i, c, scale*inc.u.At(i, j))
		}
		c++
	}
	for j := 0; j < inc.nb; j++ {
		row := inc.buf.Row(j)
		for i := 0; i < inc.n; i++ {
			aug.Set(i, c, row[i]-muB[i])
		}
		c++
	}
	if nA > 0 {
		w := math.Sqrt(nA * nB / (nA + nB))
		for i := 0; i < inc.n; i++ {
			aug.Set(i, c, w*(inc.mean[i]-muB[i]))
		}
	}

	// Eigendecompose the small Gram matrix and lift, keeping ≤ kmax
	// components (and dropping numerically zero ones).
	gram := mat.Gram(aug) // cols×cols
	eg, err := mat.SymEigen(gram)
	if err != nil {
		// A failed merge would lose data; keep the buffer and retry on the
		// next Add. SymEigen on an SPD Gram matrix converging is the norm —
		// this path exists for pathological inputs only.
		return
	}
	keep := inc.kmax
	if keep > len(eg.Values) {
		keep = len(eg.Values)
	}
	tol := 1e-12 * (eg.Values[0] + 1)
	newS := make([]float64, 0, keep)
	newU := mat.New(inc.n, keep)
	col := 0
	for j := 0; j < keep; j++ {
		lam := eg.Values[j]
		if lam <= tol {
			break
		}
		// u_j = aug·v_j/√λ.
		v := eg.Vectors.Col(j)
		uj := mat.MulVec(aug, v)
		mat.ScaleVec(1/math.Sqrt(lam), uj)
		newU.SetCol(col, uj)
		newS = append(newS, lam)
		col++
	}
	inc.u = newU.Slice(0, inc.n, 0, col)
	inc.s = newS
	inc.mean = newMean
	inc.count += inc.nb
	inc.nb = 0
}

// Snapshot merges any pending snapshots and returns the current basis.
// The returned Basis is independent of future Adds.
func (inc *Incremental) Snapshot() (*Basis, error) {
	inc.merge()
	if inc.u == nil || inc.count == 0 {
		return nil, fmt.Errorf("basis: no snapshots absorbed yet")
	}
	k := inc.u.Cols()
	imp := make([]float64, k)
	for i, s := range inc.s {
		imp[i] = s / float64(inc.count) // scatter → covariance eigenvalue
	}
	normalizeSignsOf(inc.u)
	return &Basis{
		Name:       "eigenmaps-incremental",
		Grid:       inc.grid,
		Mean:       mat.CopyVec(inc.mean),
		Psi:        inc.u.Clone(),
		Importance: imp,
	}, nil
}

// normalizeSignsOf flips columns so the largest-magnitude entry is positive
// (same convention as batch training).
func normalizeSignsOf(v *mat.Matrix) {
	n, k := v.Dims()
	for j := 0; j < k; j++ {
		best, bestAbs := 0.0, 0.0
		for i := 0; i < n; i++ {
			if a := math.Abs(v.At(i, j)); a > bestAbs {
				bestAbs = a
				best = v.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < n; i++ {
				v.Set(i, j, -v.At(i, j))
			}
		}
	}
}
