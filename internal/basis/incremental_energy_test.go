package basis

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

// batchEnergy computes the reference per-cell mean squared centered
// temperature directly from the ensemble.
func batchEnergy(t *testing.T) []float64 {
	t.Helper()
	mean := trainingSet.Mean()
	energy := make([]float64, trainingSet.N())
	for j := 0; j < trainingSet.T(); j++ {
		x := trainingSet.Map(j)
		for i := range energy {
			d := x[i] - mean[i]
			energy[i] += d * d
		}
	}
	for i := range energy {
		energy[i] /= float64(trainingSet.T())
	}
	return energy
}

func TestIncrementalEnergyMatchesBatch(t *testing.T) {
	inc, err := NewIncremental(trainingSet.Grid, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Energy() != nil {
		t.Fatal("energy before any Add should be nil")
	}
	for j := 0; j < trainingSet.T(); j++ {
		if err := inc.Add(trainingSet.Map(j)); err != nil {
			t.Fatal(err)
		}
	}
	want := batchEnergy(t)
	got := inc.Energy()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+want[i]) {
			t.Fatalf("energy off at cell %d: streamed %v vs batch %v", i, got[i], want[i])
		}
	}
}

func TestNewIncrementalFromValidation(t *testing.T) {
	if _, err := NewIncrementalFrom(nil, nil, 10, 0); err == nil {
		t.Fatal("nil basis should fail")
	}
	b, err := TrainPCA(trainingSet, 4, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIncrementalFrom(b, nil, 0, 0); err == nil {
		t.Fatal("count 0 should fail")
	}
	if _, err := NewIncrementalFrom(b, make([]float64, 3), 10, 0); err == nil {
		t.Fatal("wrong energy length should fail")
	}
}

func TestNewIncrementalFromRoundTrips(t *testing.T) {
	// Seeding from a trained basis and snapshotting immediately must hand the
	// same subspace, mean, importance and energy back.
	kmax := 5
	b, err := TrainPCA(trainingSet, kmax, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	energy := batchEnergy(t)
	inc, err := NewIncrementalFrom(b, energy, trainingSet.T(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Count() != trainingSet.T() {
		t.Fatalf("seeded count %d, want %d", inc.Count(), trainingSet.T())
	}
	snap, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.KMax() != kmax {
		t.Fatalf("snapshot KMax %d, want %d", snap.KMax(), kmax)
	}
	for i := range b.Mean {
		if snap.Mean[i] != b.Mean[i] {
			t.Fatalf("seeded mean mutated at %d", i)
		}
	}
	for j := 0; j < kmax; j++ {
		rel := math.Abs(snap.Importance[j]-b.Importance[j]) / (b.Importance[0] + 1)
		if rel > 1e-12 {
			t.Fatalf("importance %d: %v vs seed %v", j, snap.Importance[j], b.Importance[j])
		}
	}
	got := inc.Energy()
	for i := range energy {
		if math.Abs(got[i]-energy[i]) > 1e-8*(1+energy[i]) {
			t.Fatalf("seeded energy off at %d: %v vs %v", i, got[i], energy[i])
		}
	}
}

func TestNewIncrementalFromAdapts(t *testing.T) {
	// A seeded trainer that keeps absorbing a shifted regime must explain the
	// new regime better than the frozen seed basis does.
	k := 3
	b, err := TrainPCA(trainingSet, 6, PCAConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalFrom(b, batchEnergy(t), trainingSet.T(), 16)
	if err != nil {
		t.Fatal(err)
	}
	mean := trainingSet.Mean()
	shifted := make([][]float64, 0, trainingSet.T())
	for j := 0; j < trainingSet.T(); j++ {
		x := trainingSet.Map(j)
		s := make([]float64, len(x))
		for i := range x {
			// Reverse the deviation field left-to-right: a spatially different
			// regime with the same mean.
			row, col := i/trainingSet.Grid.W, i%trainingSet.Grid.W
			src := row*trainingSet.Grid.W + (trainingSet.Grid.W - 1 - col)
			s[i] = mean[i] + 2*(x[src]-mean[src])
		}
		shifted = append(shifted, s)
	}
	for _, x := range shifted {
		if err := inc.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	adapted, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var staleSq, adaptedSq float64
	for _, x := range shifted {
		as, err := b.Approximate(x, k)
		if err != nil {
			t.Fatal(err)
		}
		aa, err := adapted.Approximate(x, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			staleSq += (x[i] - as[i]) * (x[i] - as[i])
			adaptedSq += (x[i] - aa[i]) * (x[i] - aa[i])
		}
	}
	if adaptedSq >= staleSq {
		t.Fatalf("adapted basis (%v) not better than frozen seed (%v) on the shifted regime",
			adaptedSq, staleSq)
	}
}

func TestIncrementalEnergyNonNegative(t *testing.T) {
	// Constant maps have zero centered energy; cancellation must clamp, not
	// go negative (the store format rejects negative energy).
	g := floorplan.Grid{W: 3, H: 2}
	inc, err := NewIncremental(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{71.25, 71.25, 71.25, 71.25, 71.25, 71.25}
	for j := 0; j < 9; j++ {
		if err := inc.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range inc.Energy() {
		if e < 0 || e > 1e-9 {
			t.Fatalf("cell %d energy %v, want ~0 and non-negative", i, e)
		}
	}
}
