package basis

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Binary basis format: magic, version, name, grid, K, then mean, importance
// and the basis matrix. Training at paper scale costs minutes; serialization
// lets deployments train once and ship the basis.
const (
	basisMagic   = "EMBS"
	basisVersion = uint32(1)
)

// Save writes the basis in the library's binary format.
func (b *Basis) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(basisMagic); err != nil {
		return err
	}
	name := []byte(b.Name)
	if len(name) > 255 {
		name = name[:255]
	}
	header := []uint32{basisVersion, uint32(len(name)), uint32(b.Grid.W), uint32(b.Grid.H), uint32(b.KMax())}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	for _, payload := range [][]float64{b.Mean, b.Importance, b.Psi.Data()} {
		if err := binary.Write(bw, binary.LittleEndian, payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a basis written by Save.
func Load(r io.Reader) (*Basis, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("basis: reading magic: %w", err)
	}
	if string(head) != basisMagic {
		return nil, fmt.Errorf("basis: bad magic %q", head)
	}
	var ver, nameLen, w, h, k uint32
	for _, p := range []*uint32{&ver, &nameLen, &w, &h, &k} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("basis: reading header: %w", err)
		}
	}
	if ver != basisVersion {
		return nil, fmt.Errorf("basis: unsupported version %d", ver)
	}
	const maxDim = 1 << 20
	if w == 0 || h == 0 || w > maxDim || h > maxDim || k == 0 || nameLen > 255 ||
		uint64(k)*uint64(w)*uint64(h) > 1<<32 {
		return nil, fmt.Errorf("basis: implausible header W=%d H=%d K=%d nameLen=%d", w, h, k, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("basis: reading name: %w", err)
	}
	grid := floorplan.Grid{W: int(w), H: int(h)}
	n := grid.N()
	mean := make([]float64, n)
	imp := make([]float64, k)
	psi := make([]float64, n*int(k))
	for _, payload := range [][]float64{mean, imp, psi} {
		if err := binary.Read(br, binary.LittleEndian, payload); err != nil {
			return nil, fmt.Errorf("basis: reading payload: %w", err)
		}
	}
	return &Basis{
		Name:       string(name),
		Grid:       grid,
		Mean:       mean,
		Psi:        mat.NewFromData(n, int(k), psi),
		Importance: imp,
	}, nil
}

// SaveFile writes the basis to path.
func (b *Basis) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a basis from path.
func LoadFile(path string) (*Basis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
