// Package basis builds the low-dimensional thermal-map subspaces at the core
// of the paper: the optimal PCA basis ("EigenMaps", Proposition 1) trained
// from design-time simulations, and the low-frequency DCT basis used by the
// k-LSE baseline. Both expose the same Basis type so reconstruction and
// placement code is agnostic to the choice of subspace.
package basis

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dct"
	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Basis is an ordered orthonormal dictionary for thermal maps plus the
// ensemble mean. Columns of Psi are ranked by decreasing importance, so a
// K-dimensional approximation uses the first K columns (the paper's Ψ_K).
type Basis struct {
	Name string
	Grid floorplan.Grid

	// Mean is the training ensemble mean map; approximations and
	// reconstructions add it back (the paper's zero-mean footnote).
	Mean []float64

	// Psi holds the basis vectors as columns (N×KMax).
	Psi *mat.Matrix

	// Importance[k] orders the columns: for PCA it is the k-th eigenvalue of
	// the covariance (Proposition 1); for DCT it is the mean squared training
	// coefficient of the k-th selected frequency.
	Importance []float64

	// Method records which eigensolver side TrainPCA actually used (never
	// PCAAuto), so reporting tools don't have to re-derive the dispatch.
	// In-memory only: not serialized, and zero-valued on DCT and loaded
	// bases.
	Method PCAMethod
}

// ErrKRange reports a requested subspace dimension outside [1, KMax].
var ErrKRange = errors.New("basis: K outside [1, KMax]")

// KMax returns the number of stored basis vectors.
func (b *Basis) KMax() int { return b.Psi.Cols() }

// N returns the map dimension.
func (b *Basis) N() int { return b.Psi.Rows() }

// PsiK returns the first k columns (the paper's Ψ_K) as a copy.
func (b *Basis) PsiK(k int) (*mat.Matrix, error) {
	if k < 1 || k > b.KMax() {
		return nil, fmt.Errorf("%w: K=%d, KMax=%d", ErrKRange, k, b.KMax())
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return b.Psi.SelectCols(idx), nil
}

// Coefficients projects map x onto the first k basis vectors:
// α = Ψ_Kᵀ(x − mean).
func (b *Basis) Coefficients(x []float64, k int) ([]float64, error) {
	if k < 1 || k > b.KMax() {
		return nil, fmt.Errorf("%w: K=%d, KMax=%d", ErrKRange, k, b.KMax())
	}
	if len(x) != b.N() {
		return nil, fmt.Errorf("basis: map length %d != N %d", len(x), b.N())
	}
	cx := mat.SubVec(x, b.Mean)
	alpha := make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < b.N(); i++ {
			s += b.Psi.At(i, j) * cx[i]
		}
		alpha[j] = s
	}
	return alpha, nil
}

// Synthesize maps coefficients back to a thermal map:
// x̂ = mean + Ψ_K α (equation (1) with the mean restored).
func (b *Basis) Synthesize(alpha []float64) []float64 {
	out := make([]float64, b.N())
	b.SynthesizeInto(out, alpha)
	return out
}

// SynthesizeInto is the allocation-free form of Synthesize: it writes
// mean + Ψ_K α into dst (length N). It walks Ψ row-major — one pass over
// contiguous memory — so it is also the fast path for the per-snapshot
// reconstruction loop.
func (b *Basis) SynthesizeInto(dst, alpha []float64) {
	k := len(alpha)
	if k > b.KMax() {
		panic(fmt.Sprintf("basis: %d coefficients for KMax %d", k, b.KMax()))
	}
	if len(dst) != b.N() {
		panic(fmt.Sprintf("basis: destination length %d != N %d", len(dst), b.N()))
	}
	for i := range dst {
		row := b.Psi.Row(i)
		s := b.Mean[i]
		for j := 0; j < k; j++ {
			s += alpha[j] * row[j]
		}
		dst[i] = s
	}
}

// Approximate is the K-term approximation x̂ = mean + Ψ_K Ψ_Kᵀ (x − mean):
// the orthogonal projection of Problem 1.
func (b *Basis) Approximate(x []float64, k int) ([]float64, error) {
	alpha, err := b.Coefficients(x, k)
	if err != nil {
		return nil, err
	}
	return b.Synthesize(alpha), nil
}

// TailImportance returns Σ_{n≥K} Importance[n] — for PCA this is the
// expected approximation MSE·N of Proposition 1, eq. (2).
func (b *Basis) TailImportance(k int) float64 {
	var s float64
	for i := k; i < len(b.Importance); i++ {
		s += b.Importance[i]
	}
	return s
}

// PCAMethod selects how TrainPCA extracts the leading eigenpairs of the
// snapshot covariance. Both sides of the duality span the same subspace (see
// the subspace-agreement tests); they differ only in cost.
type PCAMethod int

const (
	// PCAAuto picks the cheaper side by the measured cost model — see
	// ResolvePCAMethod.
	PCAAuto PCAMethod = iota
	// PCACovariance runs block subspace iteration on C = XᵀX/T without
	// forming C — O(iters·N·T·K) — the only viable side when T ≥ N.
	PCACovariance
	// PCAGram eigendecomposes the T×T snapshot Gram XXᵀ/T and lifts the
	// eigenvectors as V = Xᵀ·U·Λ^(−1/2) — O(N·T² + T³), exact, and the fast
	// side whenever the ensemble is short relative to the grid.
	PCAGram
)

// String names the method.
func (m PCAMethod) String() string {
	switch m {
	case PCAAuto:
		return "auto"
	case PCACovariance:
		return "covariance"
	case PCAGram:
		return "gram"
	}
	return fmt.Sprintf("PCAMethod(%d)", int(m))
}

// ResolvePCAMethod maps PCAAuto to the concrete method chosen for a T×N
// ensemble at subspace dimension kmax; concrete methods pass through.
//
// The dispatch rule — Gram iff T < N and T ≤ max(128, 8·kmax) — encodes the
// measured crossover of the two cost models: the Gram side pays
// O(N·T²) accumulation plus a dense T×T eigensolve whose O(T³) term carries
// a large constant (full eigenvector accumulation), so it loses once T grows
// past a few hundred; the covariance side pays O(iters·N·T·(kmax+oversample))
// and degrades sharply as the block widens, which moves the crossover out
// proportionally to kmax. BenchmarkTrain tracks both sides so the rule can
// be re-fit if the kernels change.
func ResolvePCAMethod(m PCAMethod, t, n, kmax int) PCAMethod {
	if m != PCAAuto {
		return m
	}
	cross := 128
	if 8*kmax > cross {
		cross = 8 * kmax
	}
	if t < n && t <= cross {
		return PCAGram
	}
	return PCACovariance
}

// PCAConfig tunes TrainPCA.
type PCAConfig struct {
	// Seed drives the subspace-iteration starting block. The trained basis
	// is deterministic given the seed (and essentially seed-independent, up
	// to numerical tolerance, thanks to sign normalization).
	Seed int64
	// Subspace forwards to mat.TopCovarianceEigen (Rand is overwritten).
	Subspace mat.SubspaceOptions
	// Method selects the eigensolver side; the PCAAuto zero value picks the
	// cheaper one from the ensemble shape.
	Method PCAMethod
	// Workers caps the goroutines used by the Gram accumulation and
	// eigenvector lift (0 = NumCPU, 1 = sequential).
	Workers int
	// UseSnapshotMethod is the deprecated spelling of Method: PCAGram, kept
	// for the ablation benches. It overrides Method when set.
	UseSnapshotMethod bool
}

// method resolves the configured method for a T×N ensemble at dimension kmax.
func (cfg PCAConfig) method(t, n, kmax int) PCAMethod {
	if cfg.UseSnapshotMethod {
		return PCAGram
	}
	return ResolvePCAMethod(cfg.Method, t, n, kmax)
}

// TrainPCA learns the EigenMaps basis from the training ensemble: the kmax
// leading eigenvectors of the sample covariance of the centered maps
// (Proposition 1). Importance holds the corresponding eigenvalues.
func TrainPCA(ds *dataset.Dataset, kmax int, cfg PCAConfig) (*Basis, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("basis: kmax %d < 1", kmax)
	}
	x, mean := ds.Centered()
	var (
		vals []float64
		vecs *mat.Matrix
		err  error
	)
	method := cfg.method(ds.T(), ds.N(), kmax)
	switch method {
	case PCAGram:
		vals, vecs, err = mat.SnapshotPODWorkers(x, kmax, cfg.Workers)
	case PCACovariance:
		opts := cfg.Subspace
		opts.Rand = rand.New(rand.NewSource(cfg.Seed))
		vals, vecs, err = mat.TopCovarianceEigen(x, kmax, opts)
	default:
		err = fmt.Errorf("unknown method %v", method)
	}
	if err != nil {
		return nil, fmt.Errorf("basis: PCA training: %w", err)
	}
	return &Basis{
		Name:       "eigenmaps",
		Grid:       ds.Grid,
		Mean:       mean,
		Psi:        vecs,
		Importance: vals,
		Method:     method,
	}, nil
}

// DCTSelection chooses how TrainDCT picks its kmax frequencies.
type DCTSelection int

const (
	// DCTZigZag takes the kmax lowest frequencies in zig-zag order — the
	// classical data-independent low-pass prior.
	DCTZigZag DCTSelection = iota
	// DCTEnergyRanked ranks all frequencies by mean squared training
	// coefficient and keeps the kmax strongest — the stronger, data-adaptive
	// variant of the k-LSE prior (our default baseline).
	DCTEnergyRanked
)

// String names the selection mode.
func (s DCTSelection) String() string {
	switch s {
	case DCTZigZag:
		return "zigzag"
	case DCTEnergyRanked:
		return "energy-ranked"
	}
	return fmt.Sprintf("DCTSelection(%d)", int(s))
}

// TrainDCT builds the k-LSE baseline basis on the dataset's grid.
// For DCTZigZag the dataset is used only for the mean and per-frequency
// energies; for DCTEnergyRanked it also drives frequency selection.
func TrainDCT(ds *dataset.Dataset, kmax int, sel DCTSelection) (*Basis, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("basis: kmax %d < 1", kmax)
	}
	g := ds.Grid
	if kmax > g.N() {
		kmax = g.N()
	}
	x, mean := ds.Centered()

	// Per-frequency mean squared coefficient over the training set.
	energy := make([]float64, g.N())
	for j := 0; j < x.Rows(); j++ {
		coef := dct.Transform2D(g, x.Row(j))
		for i, c := range coef {
			energy[i] += c * c
		}
	}
	mat.ScaleVec(1/float64(x.Rows()), energy)

	var freqs []dct.Freq
	switch sel {
	case DCTZigZag:
		freqs = dct.ZigZag(g, kmax)
	case DCTEnergyRanked:
		type fe struct {
			f dct.Freq
			e float64
		}
		all := make([]fe, 0, g.N())
		for u := 0; u < g.H; u++ {
			for v := 0; v < g.W; v++ {
				f := dct.Freq{U: u, V: v}
				all = append(all, fe{f: f, e: energy[dct.Coefficient(g, f)]})
			}
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].e > all[b].e })
		freqs = make([]dct.Freq, kmax)
		for i := range freqs {
			freqs[i] = all[i].f
		}
	default:
		return nil, fmt.Errorf("basis: unknown DCT selection %v", sel)
	}

	imp := make([]float64, len(freqs))
	for i, f := range freqs {
		imp[i] = energy[dct.Coefficient(g, f)]
	}
	return &Basis{
		Name:       "k-lse-dct-" + sel.String(),
		Grid:       g,
		Mean:       mean,
		Psi:        dct.BasisMatrix(g, freqs),
		Importance: imp,
	}, nil
}
