package noise

import (
	"math"
	"math/rand"
	"testing"
)

func TestSensorsPerfectModelIsIdentity(t *testing.T) {
	bank := SensorModel{}.NewSensors(4, rand.New(rand.NewSource(1)))
	in := []float64{50, 60.25, 70.5, 81}
	out := bank.Read(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("perfect sensor altered reading: %v -> %v", in[i], out[i])
		}
	}
}

func TestSensorsQuantization(t *testing.T) {
	bank := SensorModel{QuantizationC: 0.5, ReferenceC: 45}.NewSensors(1, rand.New(rand.NewSource(2)))
	out := bank.Read([]float64{70.26})
	if math.Mod(out[0]*2, 1) != 0 {
		t.Fatalf("reading %v not on the 0.5 °C grid", out[0])
	}
	if math.Abs(out[0]-70.26) > 0.25+1e-12 {
		t.Fatalf("quantization error %v exceeds half step", out[0]-70.26)
	}
}

func TestSensorsCalibrationFrozenPerSensor(t *testing.T) {
	m := SensorModel{OffsetSigmaC: 2, ReferenceC: 45}
	bank := m.NewSensors(3, rand.New(rand.NewSource(3)))
	a := bank.Read([]float64{60, 60, 60})
	b := bank.Read([]float64{60, 60, 60})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("calibration error must be frozen, not re-drawn")
		}
		if math.Abs(a[i]-60-bank.Offset(i)) > 1e-12 {
			t.Fatalf("reading %v does not match offset %v", a[i]-60, bank.Offset(i))
		}
	}
	// Different sensors should (almost surely) have different offsets.
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatal("all offsets identical — not drawn per sensor")
	}
}

func TestSensorsGainAppliesToRise(t *testing.T) {
	m := SensorModel{GainSigma: 0.1, ReferenceC: 45}
	bank := m.NewSensors(1, rand.New(rand.NewSource(4)))
	// At the reference temperature gain error vanishes.
	atRef := bank.Read([]float64{45})
	if math.Abs(atRef[0]-45) > 1e-12 {
		t.Fatalf("gain error applied at reference: %v", atRef[0])
	}
	hot := bank.Read([]float64{65})
	wantRise := bank.Gain(0) * 20
	if math.Abs((hot[0]-45)-wantRise) > 1e-12 {
		t.Fatalf("rise %v, want %v", hot[0]-45, wantRise)
	}
}

func TestSensorsReadNoiseVaries(t *testing.T) {
	m := SensorModel{ReadNoiseC: 0.5, ReferenceC: 45}
	bank := m.NewSensors(1, rand.New(rand.NewSource(5)))
	a := bank.Read([]float64{60})[0]
	b := bank.Read([]float64{60})[0]
	if a == b {
		t.Fatal("read noise must vary between samples")
	}
}

func TestSensorsLengthMismatchPanics(t *testing.T) {
	bank := SensorModel{}.NewSensors(2, rand.New(rand.NewSource(6)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bank.Read([]float64{1})
}

func TestTypicalSensorBudget(t *testing.T) {
	m := TypicalSensor()
	bank := m.NewSensors(1000, rand.New(rand.NewSource(7)))
	in := make([]float64, 1000)
	for i := range in {
		in[i] = 75
	}
	out := bank.Read(in)
	var worst float64
	for i := range out {
		if d := math.Abs(out[i] - 75); d > worst {
			worst = d
		}
	}
	// 1 °C offset sigma + 1% gain on 30 °C rise + 0.3 °C noise + 0.25 °C
	// quantization: worst case across 1000 sensors should stay within ~5 °C.
	if worst > 6 {
		t.Fatalf("typical sensor worst error %v °C", worst)
	}
	if worst < 0.5 {
		t.Fatalf("typical sensor suspiciously accurate: %v °C", worst)
	}
}
