package noise

import (
	"fmt"
	"math"
	"math/rand"
)

// SensorModel reproduces the error budget of an on-chip thermal sensor
// (Sharifi & Rosing [15], which the paper cites for its noise sources):
//
//   - white Gaussian read noise (per sample),
//   - quantization to the ADC's step size,
//   - per-sensor calibration error: a fixed offset and gain drawn once at
//     "manufacturing" time and applied to every subsequent reading.
//
// The paper's stability claim ("stable with respect to possible temperature
// sensor calibration inaccuracies") is exercised by this model rather than
// by SNR-scaled AWGN alone.
type SensorModel struct {
	// ReadNoiseC is the standard deviation of the per-sample noise [°C].
	ReadNoiseC float64
	// QuantizationC is the ADC step [°C]; 0 disables quantization.
	// Typical on-chip sensors quantize to 0.5–1 °C.
	QuantizationC float64
	// OffsetSigmaC is the standard deviation of the per-sensor fixed offset
	// [°C] (systematic calibration error).
	OffsetSigmaC float64
	// GainSigma is the standard deviation of the per-sensor relative gain
	// error (e.g. 0.01 = ±1% slope error), applied to the temperature rise
	// above ReferenceC.
	GainSigma float64
	// ReferenceC is the calibration reference temperature; gain error
	// applies to (T − ReferenceC). Defaults to 45 °C if zero.
	ReferenceC float64
}

// Sensors is a bank of calibrated sensor instances with frozen per-sensor
// offset/gain errors.
type Sensors struct {
	model   SensorModel
	offsets []float64
	gains   []float64
	rng     *rand.Rand
}

// NewSensors manufactures n sensors under the model, drawing each sensor's
// calibration error once from rng.
func (m SensorModel) NewSensors(n int, rng *rand.Rand) *Sensors {
	if n < 0 {
		panic(fmt.Sprintf("noise: negative sensor count %d", n))
	}
	ref := m.ReferenceC
	if ref == 0 {
		m.ReferenceC = 45
	}
	s := &Sensors{
		model:   m,
		offsets: make([]float64, n),
		gains:   make([]float64, n),
		rng:     rng,
	}
	for i := 0; i < n; i++ {
		s.offsets[i] = m.OffsetSigmaC * rng.NormFloat64()
		s.gains[i] = 1 + m.GainSigma*rng.NormFloat64()
	}
	return s
}

// Count returns the number of sensors in the bank.
func (s *Sensors) Count() int { return len(s.offsets) }

// Read converts true temperatures (°C, one per sensor) into the values the
// sensors would report: gain/offset calibration error, read noise, then
// quantization.
func (s *Sensors) Read(trueC []float64) []float64 {
	if len(trueC) != len(s.offsets) {
		panic(fmt.Sprintf("noise: %d readings for %d sensors", len(trueC), len(s.offsets)))
	}
	out := make([]float64, len(trueC))
	ref := s.model.ReferenceC
	for i, t := range trueC {
		v := ref + s.gains[i]*(t-ref) + s.offsets[i]
		if s.model.ReadNoiseC > 0 {
			v += s.model.ReadNoiseC * s.rng.NormFloat64()
		}
		if q := s.model.QuantizationC; q > 0 {
			v = math.Round(v/q) * q
		}
		out[i] = v
	}
	return out
}

// Offset returns sensor i's frozen calibration offset (test introspection).
func (s *Sensors) Offset(i int) float64 { return s.offsets[i] }

// Gain returns sensor i's frozen gain (test introspection).
func (s *Sensors) Gain(i int) float64 { return s.gains[i] }

// TypicalSensor is a representative on-chip thermal sensor error budget:
// 0.3 °C read noise, 0.5 °C quantization, 1 °C calibration offset spread,
// 1% gain spread.
func TypicalSensor() SensorModel {
	return SensorModel{
		ReadNoiseC:    0.3,
		QuantizationC: 0.5,
		OffsetSigmaC:  1.0,
		GainSigma:     0.01,
		ReferenceC:    45,
	}
}
