package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestAWGNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := AWGN(rng, 100000, 2.0)
	var mean, varsum float64
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	for _, v := range w {
		varsum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varsum / float64(len(w)))
	if math.Abs(mean) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("AWGN mean %v sd %v, want 0/2", mean, sd)
	}
}

func TestAtSNRExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 64)
	for i := range x {
		x[i] = 50 + 10*rng.NormFloat64()
	}
	for _, snrDB := range []float64{5, 15, 30} {
		w := AtSNR(rng, x, math.Pow(10, snrDB/10))
		got := metrics.DB(metrics.SNR(x, w))
		if math.Abs(got-snrDB) > 1e-9 {
			t.Fatalf("achieved SNR %v dB, want %v", got, snrDB)
		}
	}
}

func TestAtSNRZeroSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := AtSNR(rng, make([]float64, 10), 100)
	for _, v := range w {
		if v != 0 {
			t.Fatal("zero signal must yield zero noise")
		}
	}
}

func TestAtSNRInfiniteSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := AtSNR(rng, []float64{1, 2, 3}, math.Inf(1))
	for _, v := range w {
		if v != 0 {
			t.Fatal("infinite SNR must yield zero noise")
		}
	}
}

func TestAddAtSNRdB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := []float64{10, 20, 30, 40}
	y := AddAtSNRdB(rng, x, 20)
	w := make([]float64, len(x))
	for i := range x {
		w[i] = y[i] - x[i]
	}
	if math.Abs(metrics.DB(metrics.SNR(x, w))-20) > 1e-9 {
		t.Fatal("AddAtSNRdB did not hit target SNR")
	}
}

func TestDeterministicGivenRNG(t *testing.T) {
	x := []float64{5, 6, 7}
	w1 := AtSNR(rand.New(rand.NewSource(9)), x, 10)
	w2 := AtSNR(rand.New(rand.NewSource(9)), x, 10)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same seed produced different noise")
		}
	}
}

// Property: achieved SNR equals the target for random signals and SNRs.
func TestAtSNRTargetProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()*20 + 60
		}
		snr := math.Pow(10, (r.Float64()*40-5)/10)
		w := AtSNR(r, x, snr)
		return math.Abs(metrics.SNR(x, w)/snr-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}
