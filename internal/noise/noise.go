// Package noise models sensor measurement corruption: white Gaussian noise
// scaled to an exact target SNR under the paper's definition
// SNR = ‖x‖²/‖w‖² (Sec. 5.1), standing in for thermal noise, quantization
// and calibration inaccuracies.
package noise

import (
	"math"
	"math/rand"
)

// AWGN draws a Gaussian noise vector with per-sample standard deviation
// sigma.
func AWGN(rng *rand.Rand, n int, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = sigma * rng.NormFloat64()
	}
	return out
}

// AtSNR returns a noise vector w such that ‖x‖²/‖w‖² equals exactly the
// linear snr (the draw is renormalized, not just scaled in expectation).
// A zero signal or non-positive SNR yields zero noise.
func AtSNR(rng *rand.Rand, x []float64, snr float64) []float64 {
	w := AWGN(rng, len(x), 1)
	if snr <= 0 || math.IsInf(snr, 1) {
		return make([]float64, len(x))
	}
	var xs, ws float64
	for _, v := range x {
		xs += v * v
	}
	for _, v := range w {
		ws += v * v
	}
	if xs == 0 || ws == 0 {
		return make([]float64, len(x))
	}
	scale := math.Sqrt(xs / (snr * ws))
	for i := range w {
		w[i] *= scale
	}
	return w
}

// AddAtSNRdB returns x + w with w drawn by AtSNR at the given SNR in dB.
func AddAtSNRdB(rng *rand.Rand, x []float64, snrDB float64) []float64 {
	w := AtSNR(rng, x, math.Pow(10, snrDB/10))
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + w[i]
	}
	return out
}
