package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"decode", "shard_route", "page_in", "coalesce_wait", "solve", "drift_score", "adapt", "govern", "encode"}
	if int(NumStages) != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Stage(200).String(); got != "stage_200" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req-1", time.Time{})
	from := tr.Begin()
	time.Sleep(time.Millisecond)
	tr.End(StageDecode, from)
	tr.Between(StageSolve, from, time.Now())
	tr.Finish(200, 42, 0)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].Stage != StageDecode || spans[1].Stage != StageSolve {
		t.Fatalf("span order: %+v", spans)
	}
	for _, sp := range spans {
		if sp.Dur <= 0 {
			t.Errorf("stage %s: non-positive duration %v", sp.Stage, sp.Dur)
		}
	}
	if tr.Dur <= 0 || tr.Status != 200 || tr.Bytes != 42 {
		t.Errorf("Finish: dur=%v status=%d bytes=%d", tr.Dur, tr.Status, tr.Bytes)
	}
	if tot := tr.StageTotal(); tot != spans[0].Dur+spans[1].Dur {
		t.Errorf("StageTotal = %v, want %v", tot, spans[0].Dur+spans[1].Dur)
	}
}

func TestTraceRepeatStageAccumulates(t *testing.T) {
	tr := NewTrace("req-2", time.Time{})
	base := tr.Begin()
	tr.Between(StageSolve, base, base.Add(2*time.Millisecond))
	tr.Between(StageSolve, base.Add(5*time.Millisecond), base.Add(8*time.Millisecond))
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Dur != 5*time.Millisecond {
		t.Errorf("accumulated dur = %v, want 5ms", spans[0].Dur)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	from := tr.Begin()
	if !from.IsZero() {
		t.Error("nil Begin should return zero time")
	}
	tr.End(StageDecode, from)
	tr.Between(StageSolve, from, from)
	tr.Finish(200, 0, 0)
	if tr.Spans() != nil || tr.StageTotal() != 0 {
		t.Error("nil trace should have no spans")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestNewIDUniqueConcurrent(t *testing.T) {
	// 8 goroutines racing across many block boundaries: every id must
	// still be unique, including through lost block-install CAS races.
	const perG = 2000
	var wg sync.WaitGroup
	got := make([][]string, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]string, perG)
			for i := range ids {
				ids[i] = NewID()
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool, 8*perG)
	for _, ids := range got {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate id %q", id)
			}
			seen[id] = true
		}
	}
}

func TestRingRecentAndSlowest(t *testing.T) {
	r := NewRing(4, 2)
	for i := 1; i <= 6; i++ {
		tr := NewTrace(fmt.Sprintf("req-%d", i), time.Time{})
		tr.Dur = time.Duration(i) * time.Millisecond
		tr.Status = 200
		r.Record(tr)
	}
	recent := r.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(recent))
	}
	for i, want := range []string{"req-6", "req-5", "req-4", "req-3"} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	slow := r.Slowest()
	if len(slow) != 2 || slow[0].ID != "req-6" || slow[1].ID != "req-5" {
		t.Fatalf("slowest = %+v", ids(slow))
	}

	// A fast request once the floor is set must not displace anything.
	fast := NewTrace("req-fast", time.Time{})
	fast.Dur = time.Microsecond
	r.Record(fast)
	if slow := r.Slowest(); len(slow) != 2 || slow[0].ID != "req-6" {
		t.Fatalf("slowest after fast = %+v", ids(slow))
	}
}

func ids(ts []Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := NewTrace(fmt.Sprintf("g%d-%d", g, i), time.Time{})
				tr.Dur = time.Duration(i%100) * time.Microsecond
				r.Record(tr)
				r.Recent(8)
				r.Slowest()
			}
		}(g)
	}
	wg.Wait()
	if len(r.Recent(64)) != 64 {
		t.Errorf("ring not full after 4000 records")
	}
	slow := r.Slowest()
	if len(slow) != 8 {
		t.Fatalf("slowest len = %d, want 8", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Dur > slow[i-1].Dur {
			t.Errorf("slowest not sorted: %v after %v", slow[i].Dur, slow[i-1].Dur)
		}
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Record(NewTrace("x", time.Time{}))
	if r.Recent(4) != nil || r.Slowest() != nil {
		t.Error("nil ring should return nil slices")
	}
}

func TestHistObserveSnapshot(t *testing.T) {
	h := NewHist([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(50 * time.Millisecond)  // <= 0.1
	h.Observe(2 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamped to 0, <= 0.001

	snap := h.Snapshot()
	wantCum := []int64{2, 3, 4}
	for i, w := range wantCum {
		if snap.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, snap.Cumulative[i], w)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	wantSum := 0.0005 + 0.005 + 0.05 + 2
	if diff := snap.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist([]float64{0.001, 0.01})
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != 8*per {
		t.Errorf("count = %d, want %d", snap.Count, 8*per)
	}
	if snap.Cumulative[len(snap.Cumulative)-1] > snap.Count {
		t.Errorf("cumulative exceeds count")
	}
}

func TestRegistryRoutesAndCodes(t *testing.T) {
	g := NewRegistry([]float64{0.01, 0.1})
	g.Route("estimate").Latency.Observe(time.Millisecond)
	g.Route("estimate").ObserveCode(200)
	g.Route("estimate").ObserveCode(200)
	g.Route("estimate").ObserveCode(404)
	g.Route("create").ObserveCode(201)

	snaps := g.Snapshot()
	if len(snaps) != 2 || snaps[0].Label != "create" || snaps[1].Label != "estimate" {
		t.Fatalf("snapshot labels: %+v", snaps)
	}
	codes := snaps[1].Codes
	if len(codes) != 2 || codes[0] != (CodeCount{200, 2}) || codes[1] != (CodeCount{404, 1}) {
		t.Fatalf("estimate codes = %+v", codes)
	}
	if snaps[1].Latency.Count != 1 {
		t.Errorf("latency count = %d", snaps[1].Latency.Count)
	}
}

func TestCodeCountsConcurrent(t *testing.T) {
	var c codeCounts
	var wg sync.WaitGroup
	codes := []int{200, 202, 400, 404, 421, 429, 500, 503}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				c.inc(codes[(g+i)%len(codes)])
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, cc := range c.snapshot() {
		total += cc.Count
	}
	if total != 8*400 {
		t.Errorf("total = %d, want %d", total, 8*400)
	}
}

func TestStageSet(t *testing.T) {
	s := NewStageSet([]float64{0.001, 0.01})
	tr := NewTrace("x", time.Time{})
	base := tr.Begin()
	tr.Between(StageDecode, base, base.Add(100*time.Microsecond))
	tr.Between(StageSolve, base, base.Add(5*time.Millisecond))
	s.ObserveTrace(tr)
	s.ObserveTrace(nil)
	(*StageSet)(nil).ObserveTrace(tr)

	if c := s.Stage(StageDecode).Snapshot().Count; c != 1 {
		t.Errorf("decode count = %d", c)
	}
	if c := s.Stage(StageSolve).Snapshot().Count; c != 1 {
		t.Errorf("solve count = %d", c)
	}
	if c := s.Stage(StageEncode).Snapshot().Count; c != 0 {
		t.Errorf("encode count = %d", c)
	}
}

const cleanExposition = `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{route="estimate",code="200"} 10
test_requests_total{route="estimate",code="404"} 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 3
test_latency_seconds_bucket{le="0.1"} 8
test_latency_seconds_bucket{le="+Inf"} 12
test_latency_seconds_sum 1.5
test_latency_seconds_count 12
# HELP test_up Up gauge.
# TYPE test_up gauge
test_up 1
`

func TestLintClean(t *testing.T) {
	if errs := Lint(strings.NewReader(cleanExposition)); len(errs) != 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"missing help", "# TYPE x counter\nx 1\n", "no HELP"},
		{"missing type", "# HELP x X.\nx 1\n", "no TYPE"},
		{"duplicate series", "# HELP x X.\n# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
		{"bad type", "# HELP x X.\n# TYPE x countr\nx 1\n", "invalid TYPE"},
		{"non-cumulative", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"missing inf", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n", "+Inf"},
		{"count mismatch", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n", "_count 7 != +Inf bucket 5"},
		{"malformed", "# HELP x X.\n# TYPE x counter\nx{a=1} 1\n", "malformed label"},
		{"bad value", "# HELP x X.\n# TYPE x counter\nx one\n", "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(tc.body))
			if len(errs) == 0 {
				t.Fatalf("lint missed %s", tc.name)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("want error containing %q, got %v", tc.want, errs)
			}
		})
	}
}

func BenchmarkHistObserve(b *testing.B) {
	h := NewHist([]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += 37 * time.Nanosecond
		}
	})
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(256, 32)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr := NewTrace("bench", time.Time{})
			tr.Dur = time.Duration(i%1000) * time.Microsecond
			r.Record(tr)
			i++
		}
	})
}
