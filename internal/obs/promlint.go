package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text-exposition stream for the failure modes a
// hand-rolled /metrics endpoint can drift into: samples with no HELP or
// TYPE, duplicate series, histograms whose buckets are not cumulative or
// whose +Inf bucket disagrees with _count, and malformed sample lines. It
// returns one message per problem, empty when the exposition is clean.
//
// The parser covers the subset of the text format the daemon emits (and
// that real scrapers require): comment metadata, optional label sets with
// quoted values, and float sample values. It is deliberately strict — a
// line it cannot parse is an error, not a skip.
func Lint(r io.Reader) []string {
	var errs []string
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	series := map[string]int{}
	// histogram family -> base label set -> le -> count
	buckets := map[string]map[string]map[float64]float64{}
	counts := map[string]map[string]float64{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment; the format allows it
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					errs = append(errs, fmt.Sprintf("line %d: duplicate HELP for %s", lineNo, name))
				}
				if rest == "" {
					errs = append(errs, fmt.Sprintf("line %d: empty HELP text for %s", lineNo, name))
				}
				helpSeen[name] = true
			case "TYPE":
				if _, dup := typeSeen[name]; dup {
					errs = append(errs, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					errs = append(errs, fmt.Sprintf("line %d: invalid TYPE %q for %s", lineNo, rest, name))
				}
				typeSeen[name] = rest
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			errs = append(errs, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		family := familyOf(name, typeSeen)
		if !helpSeen[family] {
			errs = append(errs, fmt.Sprintf("line %d: sample %s has no HELP for family %s", lineNo, name, family))
			helpSeen[family] = true // report once per family
		}
		if _, ok := typeSeen[family]; !ok {
			errs = append(errs, fmt.Sprintf("line %d: sample %s has no TYPE for family %s", lineNo, name, family))
			typeSeen[family] = "untyped"
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		series[key]++
		if series[key] == 2 {
			errs = append(errs, fmt.Sprintf("line %d: duplicate series %s", lineNo, key))
		}

		if typeSeen[family] == "histogram" {
			base := canonicalLabels(withoutLE(labels))
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					errs = append(errs, fmt.Sprintf("line %d: histogram bucket %s missing le label", lineNo, name))
					continue
				}
				bound, err := parseLE(le)
				if err != nil {
					errs = append(errs, fmt.Sprintf("line %d: bad le %q: %v", lineNo, le, err))
					continue
				}
				if buckets[family] == nil {
					buckets[family] = map[string]map[float64]float64{}
				}
				if buckets[family][base] == nil {
					buckets[family][base] = map[float64]float64{}
				}
				buckets[family][base][bound] = value
			case strings.HasSuffix(name, "_count"):
				if counts[family] == nil {
					counts[family] = map[string]float64{}
				}
				counts[family][base] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Sprintf("read: %v", err))
	}

	// Cross-line histogram checks: buckets cumulative, +Inf present and
	// equal to _count.
	for _, family := range sortedKeys(buckets) {
		for _, base := range sortedKeys(buckets[family]) {
			bs := buckets[family][base]
			bounds := make([]float64, 0, len(bs))
			for b := range bs {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			hasInf := false
			prev := math.Inf(-1)
			prevCount := -1.0
			for _, b := range bounds {
				if math.IsInf(b, 1) {
					hasInf = true
				}
				if bs[b] < prevCount {
					errs = append(errs, fmt.Sprintf("histogram %s{%s}: bucket le=%g count %g < previous le=%g count %g (not cumulative)",
						family, base, b, bs[b], prev, prevCount))
				}
				prev, prevCount = b, bs[b]
			}
			if !hasInf {
				errs = append(errs, fmt.Sprintf("histogram %s{%s}: missing le=\"+Inf\" bucket", family, base))
			} else if c, ok := counts[family][base]; ok && c != bs[math.Inf(1)] {
				errs = append(errs, fmt.Sprintf("histogram %s{%s}: _count %g != +Inf bucket %g", family, base, c, bs[math.Inf(1)]))
			}
		}
	}
	return errs
}

func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#"), " ", 4)
	// "# HELP name text..." splits as ["", "HELP", "name", "text..."].
	if len(fields) < 3 || fields[0] != "" {
		return "", "", "", false
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", false
	}
	name = fields[2]
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, true
}

func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			val, n, perr := unquoteLabel(rest[eq+1:])
			if perr != nil {
				return "", nil, 0, fmt.Errorf("malformed label value in %q: %v", line, perr)
			}
			if _, dup := labels[key]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %s in %q", key, line)
			}
			labels[key] = val
			rest = rest[eq+1+n:]
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// unquoteLabel parses a quoted label value starting at s[0] == '"',
// returning the value and the number of input bytes consumed.
func unquoteLabel(s string) (string, int, error) {
	if s == "" || s[0] != '"' {
		return "", 0, fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("trailing backslash")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quote")
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf maps a sample name to its metric family: histogram samples
// (_bucket/_sum/_count) belong to the base name when that base has a
// declared histogram TYPE.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func withoutLE(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
