// Package obs is the serving layer's flight recorder: per-request traces
// with per-stage spans, fixed-size ring buffers of recent and slowest
// requests, and lock-free sharded histograms for the metrics hot path.
//
// The daemon's request loop allocates one Trace per request, anchors it on a
// monotonic clock, and hands it down the serving path; each stage — decode,
// shard routing, page-in, coalesce wait, the GEMM solve, drift scoring,
// adaptation, encode — records its span against that anchor. A finished
// trace lands in a Ring (recent requests plus the top-N slowest), feeds the
// per-stage histograms, and renders as a Server-Timing header, so one
// request's cost breaks down identically in /metrics, in the client's
// response headers, and in the /v1/debug/requests waterfall.
//
// Everything on the request path is lock-free and nil-safe: histogram
// observation is a handful of sharded atomic adds, ring insertion is an
// atomic slot store, and every Trace method no-ops on a nil receiver so an
// untraced (or deliberately stripped) request pays nothing but the nil
// checks.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// Stage identifies one segment of the serving path. The values are the
// span slots of a Trace: each stage occurs at most once per request (a
// repeat accumulates into the same slot), so a trace is one fixed-size
// array with no per-span allocation.
type Stage uint8

// The serving path's stages, in request order.
const (
	// StageDecode is request-body parsing: the JSON fast scanner or the
	// binary frame decode.
	StageDecode Stage = iota
	// StageShardRoute is monitor routing: the shard-ownership check and the
	// registry lookup.
	StageShardRoute
	// StagePageIn is the store read that rebuilds an evicted monitor's
	// serving state, including any wait on a concurrent page-in.
	StagePageIn
	// StageCoalesceWait is the bounded wait for peer requests to share a
	// coalesced flush.
	StageCoalesceWait
	// StageSolve is the reconstruction itself: the blocked GEMM against the
	// precomputed operator (or the QR ablation solve).
	StageSolve
	// StageDriftScore is the residual scoring that stamps the response's
	// quality verdict.
	StageDriftScore
	// StageAdapt is shadow-basis absorption and any hot-swap triggered by an
	// out-of-distribution batch.
	StageAdapt
	// StageGovern is the closed-loop control step on the govern route:
	// per-core temperature extraction and the policy's cap decisions.
	StageGovern
	// StageEncode is response rendering: summaries plus the JSON or binary
	// encode and the body write.
	StageEncode

	// NumStages is the span-slot count; valid stages are < NumStages.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "shard_route", "page_in", "coalesce_wait",
	"solve", "drift_score", "adapt", "govern", "encode",
}

// String returns the stage's snake_case label, as used in histogram labels,
// Server-Timing entries and debug waterfalls.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage_" + strconv.Itoa(int(s))
}

// Span is one recorded stage: its offset from the trace start and its
// duration, both from the trace's monotonic anchor.
type Span struct {
	Stage  Stage
	Offset time.Duration
	Dur    time.Duration
}

// spanRec is a span's in-trace storage: the stage is the array index, so
// storing it would waste a padded word per slot — the trace is copied into
// the flight-recorder ring whole, and 64 fewer bytes is 64 fewer bytes on
// every request.
type spanRec struct {
	Offset time.Duration
	Dur    time.Duration
}

// Trace is one request's flight record. It is owned by the request
// goroutine while live (no internal locking) and becomes immutable at
// Finish, after which it may be published to a Ring and read concurrently.
// All methods are nil-safe no-ops, so call sites need no instrumentation
// guards.
type Trace struct {
	// ID is the request id: the client's X-Request-Id or a generated one.
	ID string
	// Route is the metrics route label the dispatcher resolved.
	Route string
	// Monitor is the target monitor id ("" for non-monitor routes).
	Monitor string
	// Wall is the wall-clock arrival time, for display only; spans and Dur
	// are measured against the monotonic anchor taken at the same instant.
	Wall time.Time
	// Status and Bytes are the response status code and body size.
	Status int
	Bytes  int
	// Dur is the request wall time, set by Finish.
	Dur time.Duration

	start     time.Time
	last      time.Duration // cursor: end offset of the last recorded span
	lastStage Stage         // stage that advanced the cursor last
	tail      uint8         // stage+1 to attribute the Finish tail to; 0 = fold
	spans     [NumStages]spanRec
	used      uint32 // bitmask of recorded stages
}

// NewTrace starts a trace for one request, anchored at now — pass the
// timestamp the caller already read at request entry so the trace costs no
// extra clock read (zero means read the clock here).
func NewTrace(id string, now time.Time) *Trace {
	t := new(Trace)
	t.Reset(id, now)
	return t
}

// Reset re-anchors t as a fresh trace for one request. The serving path
// embeds the Trace in its per-request writer state and Resets it in place,
// so tracing adds no allocation of its own — the flight recorder stores
// copies (Ring slots and the slowest list hold values), making the
// per-request object pure scratch.
func (t *Trace) Reset(id string, now time.Time) {
	if now.IsZero() {
		now = time.Now()
	}
	*t = Trace{ID: id, Wall: now, start: now}
}

// Mark records stage st as everything since the end of the last recorded
// span (or the trace start) using a single monotonic clock read, then
// advances the cursor. The serving path is instrumented as a chain of
// Marks: the glue between stages is attributed to the stage that follows
// it, which keeps waterfall coverage near 100% at half the clock reads of
// a Begin/End pair per stage — clock reads are the dominant cost of
// tracing on virtualized hosts.
func (t *Trace) Mark(st Stage) {
	if t == nil {
		return
	}
	now := time.Since(t.start)
	t.record(st, t.last, now-t.last)
}

// Begin stamps the start of a stage. On a nil trace it returns the zero
// time without reading the clock, so a stripped request skips even the
// clock calls.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records a stage that started at from (a Begin result) and ends now,
// and returns the end timestamp so an adjacent follow-on span can start
// from it without a second clock read. A zero from (chained off a nil
// trace) records nothing.
func (t *Trace) End(st Stage, from time.Time) time.Time {
	if t == nil {
		return time.Time{}
	}
	now := time.Now()
	if !from.IsZero() {
		t.record(st, from.Sub(t.start), now.Sub(from))
	}
	return now
}

// Tail declares that everything between the last recorded span and the
// request's end belongs to stage st: Finish records that remainder as st's
// span using the request duration it already holds, so the final stage of
// a request — response encode and the body write — is attributed with zero
// additional clock reads. Clock reads are the dominant cost of tracing on
// virtualized hosts, so the hot path marks interior stage boundaries and
// declares the last stage instead of stamping it.
func (t *Trace) Tail(st Stage) {
	if t == nil || st >= NumStages {
		return
	}
	t.tail = uint8(st) + 1
}

// Between records a stage spanning [from, to] — for spans whose endpoints
// were stamped elsewhere, like a coalesced flush shared by many requests.
func (t *Trace) Between(st Stage, from, to time.Time) {
	if t == nil || from.IsZero() || to.IsZero() {
		return
	}
	t.record(st, from.Sub(t.start), to.Sub(from))
}

func (t *Trace) record(st Stage, offset, dur time.Duration) {
	if st >= NumStages {
		return
	}
	if offset < 0 {
		offset = 0
	}
	if dur < 0 {
		dur = 0
	}
	bit := uint32(1) << st
	if t.used&bit == 0 {
		t.used |= bit
		t.spans[st] = spanRec{Offset: offset, Dur: dur}
	} else {
		// Repeat occurrence (e.g. a coalesce fallback, or the body write
		// folding into encode): accumulate the duration, keep the first
		// offset so the waterfall stays ordered.
		t.spans[st].Dur += dur
	}
	// Advance the cursor so a following Mark starts where this span ended —
	// also re-syncs it after a Between whose endpoints were stamped on
	// another goroutine (a coalesced flush).
	if end := offset + dur; end > t.last {
		t.last = end
		t.lastStage = st
	}
}

// Finish seals the trace with the response status, size and total duration
// (the caller usually has the duration already; pass <= 0 to measure here).
// The tail between the last recorded span and the request end — the body
// write and response bookkeeping — is recorded as the stage declared by
// Tail, or folded into the last recorded span when none was declared:
// either way it costs no extra clock read and the waterfall accounts for
// the full wall time. (The Server-Timing header is emitted at WriteHeader,
// before Finish runs, so it carries only the interior stages; the
// flight-recorder view is complete.) After Finish the trace must not be
// mutated.
func (t *Trace) Finish(status, bytes int, dur time.Duration) {
	if t == nil {
		return
	}
	t.Status = status
	t.Bytes = bytes
	if dur <= 0 {
		dur = time.Since(t.start)
	}
	t.Dur = dur
	if tail := dur - t.last; tail > 0 {
		if t.tail != 0 {
			t.record(Stage(t.tail-1), t.last, tail)
		} else if t.used != 0 {
			t.spans[t.lastStage].Dur += tail
			t.last = dur
		}
	}
}

// Spans returns the recorded stages in path order (the Stage order, which
// is also non-decreasing offset order for a sequential request). The slice
// is freshly allocated; the trace is not touched.
func (t *Trace) Spans() []Span {
	if t == nil || t.used == 0 {
		return nil
	}
	out := make([]Span, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		if t.used&(1<<st) != 0 {
			out = append(out, Span{Stage: st, Offset: t.spans[st].Offset, Dur: t.spans[st].Dur})
		}
	}
	return out
}

// StageTotal returns the summed duration of all recorded spans — the
// attributed share of the request's wall time.
func (t *Trace) StageTotal() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for st := Stage(0); st < NumStages; st++ {
		if t.used&(1<<st) != 0 {
			sum += t.spans[st].Dur
		}
	}
	return sum
}

// ServerTiming renders the recorded spans as a Server-Timing header value
// (`decode;dur=0.126, solve;dur=1.5`). It is hand-rolled rather than built
// on Spans + strconv.FormatFloat because it runs on every traced response:
// a single pass over the span array with integer microsecond math, no
// intermediate slices, and no float formatting.
func (t *Trace) ServerTiming() string {
	if t == nil || t.used == 0 {
		return ""
	}
	// Sized for the common three-to-five span trace; a request that hits
	// every stage regrows once.
	b := make([]byte, 0, 96)
	for st := Stage(0); st < NumStages; st++ {
		if t.used&(1<<st) == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ", "...)
		}
		b = append(b, stageNames[st]...)
		b = append(b, ";dur="...)
		b = appendMS(b, t.spans[st].Dur)
	}
	return string(b)
}

// appendMS appends d as decimal milliseconds with microsecond precision,
// trailing zeros trimmed: 1.5ms -> "1.5", 7µs -> "0.007", 0 -> "0".
func appendMS(b []byte, d time.Duration) []byte {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b = strconv.AppendInt(b, us/1000, 10)
	if frac := us % 1000; frac != 0 {
		s := [4]byte{'.', byte('0' + frac/100), byte('0' + frac/10%10), byte('0' + frac%10)}
		n := len(s)
		for s[n-1] == '0' {
			n--
		}
		b = append(b, s[:n]...)
	}
	return b
}

// idPrefix makes generated ids unique across daemon restarts; idSeq makes
// them unique within a process. The prefix is always 8 characters so every
// generated id has the same width.
var (
	idPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to a fixed prefix: ids stay unique per process via the
			// sequence number.
			return "emapsd00"
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq   atomic.Uint64
	idBlock atomic.Pointer[idBlockT]
)

const (
	// idWidth is every generated id's length: the 8-char prefix, a dash,
	// and 12 fixed-width hex digits of the process-wide sequence.
	idWidth = 8 + 1 + 12
	// idsPerBlock is how many ids are rendered per shared backing string.
	idsPerBlock = 256
)

// idBlockT is one pre-rendered batch of ids: a single backing string that
// idsPerBlock generated ids slice into. Substrings share the backing, so
// handing out an id is an atomic increment and a bounds-checked slice —
// the string allocation is paid once per block instead of once per
// request. The trade: any single id kept alive (say, in the slowest-list)
// pins its whole ~5KB block; with bounded trace retention that is bounded
// too, and far cheaper than a per-request allocation on the serving path.
type idBlockT struct {
	s string
	n atomic.Int64 // ids handed out of this block
}

const hexDigits = "0123456789abcdef"

func buildIDBlock() *idBlockT {
	base := idSeq.Add(idsPerBlock) - idsPerBlock
	b := make([]byte, 0, idWidth*idsPerBlock)
	for i := uint64(0); i < idsPerBlock; i++ {
		b = append(b, idPrefix...)
		b = append(b, '-')
		seq := base + i
		for shift := 44; shift >= 0; shift -= 4 {
			b = append(b, hexDigits[(seq>>uint(shift))&0xf])
		}
	}
	return &idBlockT{s: string(b)}
}

// NewID generates a request id: a per-process random prefix plus a
// fixed-width sequence number, sliced out of a pre-rendered block. It runs
// once per request that arrives without an X-Request-Id, so the per-call
// cost is an atomic add and a substring — no allocation.
func NewID() string {
	for {
		blk := idBlock.Load()
		if blk != nil {
			if i := blk.n.Add(1) - 1; i < idsPerBlock {
				off := int(i) * idWidth
				return blk.s[off : off+idWidth]
			}
		}
		// Block exhausted (or first call): render the next one. A lost
		// CAS race wastes a block's worth of sequence values, never
		// uniqueness — the loop re-reads the winner's block.
		idBlock.CompareAndSwap(blk, buildIDBlock())
	}
}
