package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histShards spreads the hot sum words across cache lines so concurrent
// observers on different cores don't serialize on one line. Bucket
// counters stay flat (one array) — they are already spread by value.
const histShards = 8

// histShard holds one shard's running sum, padded to a cache line so
// adjacent shards never share one. There is no count word: the total
// observation count is the sum of the buckets, so keeping a second counter
// would be one more atomic RMW per observation for redundant state.
type histShard struct {
	sumNanos atomic.Int64
	_        [56]byte
}

// Hist is a lock-free fixed-bucket latency histogram. Observation is one
// atomic add into a bucket plus one add into a duration-hashed sum shard;
// there is no mutex anywhere on the observe path. Snapshot is eventually
// consistent: concurrent observes may straddle it, which Prometheus-style
// cumulative scrapes tolerate by design.
type Hist struct {
	bounds  []float64 // upper bounds in seconds, ascending
	nanos   []int64   // the same bounds in integer nanoseconds, for Observe
	buckets []atomic.Int64
	shards  [histShards]histShard
}

// NewHist builds a histogram over the given ascending upper bounds (in
// seconds). The bounds slice is retained and must not be mutated.
func NewHist(bounds []float64) *Hist {
	nanos := make([]int64, len(bounds))
	for i, b := range bounds {
		nanos[i] = int64(b * 1e9)
	}
	return &Hist{bounds: bounds, nanos: nanos, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration. Safe for unbounded concurrency.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	// Linear scan over integer-nanosecond bounds: bucket counts are small
	// (≈15) and the common case exits in the first few comparisons; a
	// branchy binary search (or float conversion) is no faster.
	i := 0
	for i < len(h.nanos) && int64(d) > h.nanos[i] {
		i++
	}
	h.buckets[i].Add(1)
	// Hash the duration's bits to pick a shard: free entropy, no counter
	// contention, and identical durations landing together is harmless.
	h.shards[(uint64(d)*0x9E3779B97F4A7C15)>>61].sumNanos.Add(int64(d))
}

// HistSnapshot is a point-in-time cumulative view of a Hist.
type HistSnapshot struct {
	Bounds     []float64 // upper bounds in seconds (shared, do not mutate)
	Cumulative []int64   // per-bound cumulative counts, len == len(Bounds)
	Count      int64     // total observations (the +Inf cumulative count)
	Sum        float64   // total observed seconds
}

// Snapshot folds the shards and buckets into a cumulative view. Count is
// the bucket total (including the implicit +Inf bucket), so _count always
// equals the +Inf cumulative bucket by construction.
func (h *Hist) Snapshot() HistSnapshot {
	snap := HistSnapshot{Bounds: h.bounds, Cumulative: make([]int64, len(h.bounds))}
	var run int64
	for i := range h.bounds {
		run += h.buckets[i].Load()
		snap.Cumulative[i] = run
	}
	snap.Count = run + h.buckets[len(h.bounds)].Load()
	var nanos int64
	for i := range h.shards {
		nanos += h.shards[i].sumNanos.Load()
	}
	snap.Sum = float64(nanos) / 1e9
	return snap
}

// maxCodeSlots bounds distinct status codes per route. The daemon emits a
// handful (200, 202, 400, 404, 409, 413, 421, 429, 500, 503); 16 slots
// leaves headroom and keeps the scan trivially cheap.
const maxCodeSlots = 16

// codeCounts is a lock-free set of per-status-code counters for one route.
// Slots are append-only: a published slot's code never changes, so readers
// load the published length and scan without locking. The mutex guards
// only slot allocation — the first request with a new code on a route.
type codeCounts struct {
	published atomic.Int32
	codes     [maxCodeSlots]int32
	counts    [maxCodeSlots]atomic.Int64
	mu        sync.Mutex
}

// inc bumps the counter for code, allocating a slot on first sight.
func (c *codeCounts) inc(code int) {
	n := int(c.published.Load())
	for i := 0; i < n; i++ {
		if int(c.codes[i]) == code {
			c.counts[i].Add(1)
			return
		}
	}
	c.mu.Lock()
	// Re-scan slots published while we waited for the lock.
	n = int(c.published.Load())
	for i := 0; i < n; i++ {
		if int(c.codes[i]) == code {
			c.mu.Unlock()
			c.counts[i].Add(1)
			return
		}
	}
	if n == maxCodeSlots {
		// Overflow: fold into the last slot rather than drop the request
		// from the count. Unreachable with the daemon's code set.
		c.mu.Unlock()
		c.counts[maxCodeSlots-1].Add(1)
		return
	}
	c.codes[n] = int32(code)
	c.counts[n].Add(1)
	c.published.Store(int32(n + 1))
	c.mu.Unlock()
}

// CodeCount is one status code's request count on a route.
type CodeCount struct {
	Code  int
	Count int64
}

// snapshot returns the route's code counts sorted by code.
func (c *codeCounts) snapshot() []CodeCount {
	n := int(c.published.Load())
	out := make([]CodeCount, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, CodeCount{Code: int(c.codes[i]), Count: c.counts[i].Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// RouteStats is one route's full instrumentation: a latency histogram and
// per-status-code counters. Both sides are lock-free to update.
type RouteStats struct {
	Latency *Hist
	codes   codeCounts
}

// ObserveCode bumps the route's counter for the given status code.
func (r *RouteStats) ObserveCode(code int) { r.codes.inc(code) }

// Codes returns the route's status-code counts sorted by code.
func (r *RouteStats) Codes() []CodeCount { return r.codes.snapshot() }

// Registry maps route labels to their stats. Lookup is a sync.Map load —
// lock-free after a route's first request. The route set is small and
// fixed (the dispatcher's label table), so the map stays in cache.
type Registry struct {
	bounds []float64
	m      sync.Map // string -> *RouteStats
}

// NewRegistry builds a registry whose histograms use the given bounds.
func NewRegistry(bounds []float64) *Registry {
	return &Registry{bounds: bounds}
}

// Route returns the stats for a label, creating them on first use.
func (g *Registry) Route(label string) *RouteStats {
	if v, ok := g.m.Load(label); ok {
		return v.(*RouteStats)
	}
	v, _ := g.m.LoadOrStore(label, &RouteStats{Latency: NewHist(g.bounds)})
	return v.(*RouteStats)
}

// RouteSnapshot is one route's stats in a Snapshot.
type RouteSnapshot struct {
	Label   string
	Latency HistSnapshot
	Codes   []CodeCount
}

// Snapshot returns all routes sorted by label, for deterministic scrapes.
func (g *Registry) Snapshot() []RouteSnapshot {
	var out []RouteSnapshot
	g.m.Range(func(k, v any) bool {
		rs := v.(*RouteStats)
		out = append(out, RouteSnapshot{Label: k.(string), Latency: rs.Latency.Snapshot(), Codes: rs.Codes()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// StageSet is the per-stage histogram bank: one Hist per serving stage,
// pre-resolved into an array so the request path indexes it directly
// instead of hashing a label.
type StageSet struct {
	hists [NumStages]*Hist
}

// NewStageSet builds one histogram per stage over the given bounds.
func NewStageSet(bounds []float64) *StageSet {
	s := &StageSet{}
	for i := range s.hists {
		s.hists[i] = NewHist(bounds)
	}
	return s
}

// ObserveTrace records every span of a finished trace into the stage
// histograms. Nil-safe on both receiver and trace.
func (s *StageSet) ObserveTrace(t *Trace) {
	if s == nil || t == nil || t.used == 0 {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		if t.used&(1<<st) != 0 {
			s.hists[st].Observe(t.spans[st].Dur)
		}
	}
}

// Stage returns the histogram for one stage.
func (s *StageSet) Stage(st Stage) *Hist { return s.hists[st] }
