package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// traceRec is a finished trace packed for ring storage: spans quantized to
// microseconds in 32-bit words and the wall clock flattened to Unix
// nanoseconds. A full Trace is ~300 bytes — five cache lines that are
// always cold by construction, because consecutive requests write
// consecutive slots of a buffer far larger than L2. Halving the record
// halves the write misses on the only stretch of the publish path that
// cannot stay cache-warm. Microsecond span precision is what the debug
// API exposes anyway (milliseconds with three decimals).
type traceRec struct {
	id, route, monitor string
	wallNanos          int64
	dur                time.Duration
	status, bytes      int32
	used               uint32
	spans              [NumStages]spanUS
}

// spanUS is one packed span: offset and duration in microseconds.
type spanUS struct {
	Offset, Dur uint32
}

// usClamp quantizes a duration to microseconds, saturating at ~71 minutes
// — beyond any request the daemon would hold open.
func usClamp(d time.Duration) uint32 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(us)
}

// pack flattens a sealed trace into ring storage.
func (r *traceRec) pack(t *Trace) {
	r.id, r.route, r.monitor = t.ID, t.Route, t.Monitor
	r.wallNanos = t.Wall.UnixNano()
	r.dur = t.Dur
	r.status, r.bytes = int32(t.Status), int32(t.Bytes)
	r.used = t.used
	for st := range r.spans {
		if t.used&(1<<st) != 0 {
			r.spans[st] = spanUS{Offset: usClamp(t.spans[st].Offset), Dur: usClamp(t.spans[st].Dur)}
		} else {
			r.spans[st] = spanUS{}
		}
	}
}

// unpack reconstructs a standalone read-only Trace.
func (r *traceRec) unpack() Trace {
	t := Trace{
		ID: r.id, Route: r.route, Monitor: r.monitor,
		Wall:   time.Unix(0, r.wallNanos),
		Status: int(r.status), Bytes: int(r.bytes),
		Dur:  r.dur,
		used: r.used,
	}
	for st := range t.spans {
		if r.used&(1<<st) != 0 {
			t.spans[st] = spanRec{
				Offset: time.Duration(r.spans[st].Offset) * time.Microsecond,
				Dur:    time.Duration(r.spans[st].Dur) * time.Microsecond,
			}
		}
	}
	return t
}

// ringSlot is one recent-trace cell: a packed trace guarded by its own
// tiny mutex, taken with TryLock on both sides so neither the serving path
// nor a debug reader ever blocks (an uncontended TryLock is one CAS — the
// same cost as a seqlock claim, without the racing read a seqlock would
// need). Storing values rather than pointers keeps published traces out
// of the garbage collector's object graph and lets the request path
// recycle its Trace through a pool — the flight recorder owns fixed
// storage, the request owns a scratch object.
type ringSlot struct {
	mu   sync.Mutex
	full bool
	t    traceRec
}

// Ring is the flight recorder's trace store: a lock-free circular buffer
// of the most recent finished traces plus a small mutex-guarded list of
// the slowest ones seen. Record copies the trace into a slot under a
// seqlock; readers copy it back out and retry if the sequence moved, so
// neither side blocks the other.
//
// The slowest list's mutex is kept off the hot path by an atomic
// threshold: once the list is full, a request only takes the lock if it
// is actually slower than the current floor, so steady-state traffic
// never contends on it.
type Ring struct {
	slots []ringSlot
	head  atomic.Uint64

	topN    int
	slowMin atomic.Int64 // floor (ns) for entering slowest; 0 until full
	mu      sync.Mutex
	slowest []traceRec // sorted slowest-first, len <= topN
}

// NewRing builds a ring keeping the last `recent` traces and the `topN`
// slowest.
func NewRing(recent, topN int) *Ring {
	if recent < 1 {
		recent = 1
	}
	if topN < 1 {
		topN = 1
	}
	return &Ring{slots: make([]ringSlot, recent), topN: topN}
}

// Record publishes a finished trace by value. The trace must be sealed
// (Finish called); the caller keeps ownership and may recycle it once
// Record returns. Nil-safe on both sides.
func (r *Ring) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	i := (r.head.Add(1) - 1) % uint64(len(r.slots))
	s := &r.slots[i]
	// A failed claim means a reader is copying this slot out (or another
	// writer lapped the whole ring); dropping one trace from a debug view
	// beats ever stalling the serving path.
	if s.mu.TryLock() {
		s.t.pack(t)
		s.full = true
		s.mu.Unlock()
	}

	if int64(t.Dur) <= r.slowMin.Load() {
		return
	}
	r.mu.Lock()
	// Re-check under the lock: the floor may have risen while we waited.
	if len(r.slowest) == r.topN && t.Dur <= r.slowest[len(r.slowest)-1].dur {
		r.mu.Unlock()
		return
	}
	pos := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].dur < t.Dur })
	if len(r.slowest) < r.topN {
		r.slowest = append(r.slowest, traceRec{})
	}
	copy(r.slowest[pos+1:], r.slowest[pos:])
	r.slowest[pos].pack(t)
	if len(r.slowest) == r.topN {
		r.slowMin.Store(int64(r.slowest[len(r.slowest)-1].dur))
	}
	r.mu.Unlock()
}

// Recent returns up to n of the most recently recorded traces, newest
// first, as independent copies. A slot mid-write (or overwritten during
// the copy) is skipped — a debug view prefers a gap to a torn record.
func (r *Ring) Recent(n int) []Trace {
	if r == nil || n < 1 {
		return nil
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	head := r.head.Load()
	out := make([]Trace, 0, n)
	for k := uint64(0); k < uint64(len(r.slots)) && len(out) < n; k++ {
		// Walk backward from the most recently claimed slot. A slot being
		// written right now is skipped — a debug view prefers a gap to a
		// stall on the serving path.
		i := (head + uint64(len(r.slots)) - 1 - k) % uint64(len(r.slots))
		s := &r.slots[i]
		if !s.mu.TryLock() {
			continue
		}
		var cp traceRec
		full := s.full
		if full {
			cp = s.t
		}
		s.mu.Unlock()
		if full {
			out = append(out, cp.unpack())
		}
	}
	return out
}

// Slowest returns copies of the slowest traces seen, slowest first.
func (r *Ring) Slowest() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Trace, len(r.slowest))
	for i := range r.slowest {
		out[i] = r.slowest[i].unpack()
	}
	r.mu.Unlock()
	return out
}
