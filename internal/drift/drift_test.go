package drift

import (
	"math"
	"math/rand"
	"testing"
)

// calib builds a calibration from synthetic training residuals: rho ~
// N(mean, std) clamped to [0,1), per-sensor residuals spread evenly.
func calib(t *testing.T, m int, mean, std float64) Calibration {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	rhos := make([]float64, 400)
	per := make([][]float64, len(rhos))
	for j := range rhos {
		r := mean + std*rng.NormFloat64()
		if r < 0 {
			r = 0
		}
		rhos[j] = r
		row := make([]float64, m)
		for i := range row {
			row[i] = r / math.Sqrt(float64(m)) * (1 + 0.1*rng.NormFloat64())
		}
		per[j] = row
	}
	cal, err := Calibrate(rhos, per)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate([]float64{0.1}, [][]float64{{0.1}}); err == nil {
		t.Fatal("one sample should fail")
	}
	if _, err := Calibrate([]float64{0.1, 0.2}, [][]float64{{0.1}}); err == nil {
		t.Fatal("row-count mismatch should fail")
	}
	if _, err := Calibrate([]float64{0.1, math.NaN()}, [][]float64{{0.1}, {0.1}}); err == nil {
		t.Fatal("NaN residual should fail")
	}
	if _, err := Calibrate([]float64{0.1, 0.2}, [][]float64{{0.1}, {0.1, 0.2}}); err == nil {
		t.Fatal("ragged per-sensor rows should fail")
	}
	cal, err := Calibrate([]float64{0.1, 0.1, 0.1}, [][]float64{{0.1}, {0.1}, {0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Std < 1e-9 {
		t.Fatalf("constant residuals: std %v not floored", cal.Std)
	}
	if !cal.Valid() {
		t.Fatal("calibration should be valid")
	}
}

func TestDetectorStaysOKInDistribution(t *testing.T) {
	m := 8
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	energy := make([]float64, m)
	for i := range energy {
		energy[i] = 1
	}
	for step := 0; step < 500; step++ {
		rho := 0.1 + 0.02*rng.NormFloat64()
		d.Observe(rho, energy, 1)
	}
	if s := d.State(); s != StateOK {
		t.Fatalf("in-distribution stream classified %v", s)
	}
	if f := d.FaultySensor(); f != -1 {
		t.Fatalf("faulty sensor %d on healthy stream", f)
	}
}

func TestDetectorEscalatesOnShift(t *testing.T) {
	m := 8
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spread := make([]float64, m)
	for i := range spread {
		spread[i] = 1
	}
	// Moderate sustained shift (z ≈ 5): settles in DRIFTING, not DEGRADED.
	for step := 0; step < 100; step++ {
		d.Observe(0.2, spread, 1)
	}
	if s := d.State(); s != StateDrifting {
		t.Fatalf("moderate shift classified %v: %+v", s, d.Status())
	}
	// Escalation to a strong shift (z ≈ 20) must reach DEGRADED.
	for step := 0; step < 100; step++ {
		d.Observe(0.5, spread, 1)
	}
	if s := d.State(); s != StateDegraded {
		t.Fatalf("strong shift never degraded: %+v", d.Status())
	}
	if f := d.FaultySensor(); f != -1 {
		t.Fatalf("global drift attributed to sensor %d", f)
	}
}

func TestDetectorCUSUMCatchesSmallShift(t *testing.T) {
	// A +1.5σ shift is below the EWMA drift threshold (z=4) but persistent;
	// the CUSUM accumulates it and must raise DRIFTING.
	m := 4
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spread := []float64{1, 1, 1, 1}
	for step := 0; step < 100; step++ {
		d.Observe(0.1+1.5*0.02, spread, 1)
	}
	st := d.Status()
	if st.State != StateDrifting {
		t.Fatalf("persistent small shift classified %v: %+v", st.State, st)
	}
	if st.EWMA >= 4 {
		t.Fatalf("EWMA %v should be below the drift threshold (the CUSUM carried it)", st.EWMA)
	}
}

func TestDetectorAttributesFaultySensor(t *testing.T) {
	m := 8
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	energy := make([]float64, m)
	for i := range energy {
		energy[i] = 0.01
	}
	energy[5] = 10 // one sensor dominates the residual
	for step := 0; step < 100; step++ {
		d.Observe(0.6, energy, 1)
	}
	if d.State() == StateOK {
		t.Fatalf("faulty-sensor stream still OK: %+v", d.Status())
	}
	if f := d.FaultySensor(); f != 5 {
		t.Fatalf("attributed sensor %d, want 5", f)
	}
}

func TestDetectorMinCountGates(t *testing.T) {
	m := 4
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{MinCount: 32})
	if err != nil {
		t.Fatal(err)
	}
	spread := []float64{1, 1, 1, 1}
	for step := 0; step < 31; step++ {
		d.Observe(0.9, spread, 1)
	}
	if s := d.State(); s != StateOK {
		t.Fatalf("state %v before MinCount observations", s)
	}
	d.Observe(0.9, spread, 1)
	if s := d.State(); s == StateOK {
		t.Fatal("still OK after MinCount strong-shift observations")
	}
}

func TestDetectorBatchedObserveMatchesUnbatched(t *testing.T) {
	m := 4
	cal := calib(t, m, 0.1, 0.02)
	one, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spread := []float64{1, 1, 1, 1}
	batchSpread := []float64{16, 16, 16, 16}
	for step := 0; step < 16; step++ {
		one.Observe(0.4, spread, 1)
	}
	batched.Observe(0.4, batchSpread, 16)
	so, sb := one.Status(), batched.Status()
	if math.Abs(so.EWMA-sb.EWMA) > 1e-9 || math.Abs(so.CUSUM-sb.CUSUM) > 1e-9 {
		t.Fatalf("batched observe diverged: %+v vs %+v", so, sb)
	}
	if so.Observations != sb.Observations {
		t.Fatalf("counts %d vs %d", so.Observations, sb.Observations)
	}
}

func TestDetectorReset(t *testing.T) {
	m := 4
	cal := calib(t, m, 0.1, 0.02)
	d, err := NewDetector(cal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spread := []float64{1, 1, 1, 1}
	for step := 0; step < 100; step++ {
		d.Observe(0.9, spread, 1)
	}
	if d.State() == StateOK {
		t.Fatal("setup: expected non-OK before reset")
	}
	// Post-adaptation: new calibration centered where the traffic now lives.
	if err := d.Reset(calib(t, m, 0.9, 0.02)); err != nil {
		t.Fatal(err)
	}
	if s := d.State(); s != StateOK {
		t.Fatalf("state %v after reset", s)
	}
	for step := 0; step < 100; step++ {
		d.Observe(0.9, spread, 1)
	}
	if s := d.State(); s != StateOK {
		t.Fatalf("recalibrated detector flagged in-distribution traffic: %v", s)
	}
}

func TestStateStrings(t *testing.T) {
	if StateOK.String() != "ok" || StateDrifting.String() != "drifting" || StateDegraded.String() != "degraded" {
		t.Fatal("state names must match the wire quality vocabulary")
	}
}
