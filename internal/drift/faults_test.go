package drift

import (
	"math"
	"testing"
	"time"
)

func TestParseFaults(t *testing.T) {
	faults, err := ParseFaults("stuck:3,drop:0.01,offset:2:+5,drift:web->compute@30s")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 4 {
		t.Fatalf("parsed %d faults", len(faults))
	}
	if f := faults[0]; f.Kind != FaultStuck || f.Sensor != 3 || !math.IsNaN(f.Value) {
		t.Fatalf("stuck entry %+v", f)
	}
	if f := faults[1]; f.Kind != FaultDrop || f.Rate != 0.01 {
		t.Fatalf("drop entry %+v", f)
	}
	if f := faults[2]; f.Kind != FaultOffset || f.Sensor != 2 || f.Offset != 5 {
		t.Fatalf("offset entry %+v", f)
	}
	if f := faults[3]; f.Kind != FaultDrift || f.From != "web" || f.To != "compute" || f.At != 30*time.Second {
		t.Fatalf("drift entry %+v", f)
	}

	// Unicode arrow and pinned stuck value.
	faults, err = ParseFaults("drift:web→compute@1m, stuck:0:85.5")
	if err != nil {
		t.Fatal(err)
	}
	if faults[0].To != "compute" || faults[0].At != time.Minute {
		t.Fatalf("unicode-arrow drift %+v", faults[0])
	}
	if faults[1].Value != 85.5 {
		t.Fatalf("pinned stuck %+v", faults[1])
	}

	if fs, err := ParseFaults("  "); err != nil || fs != nil {
		t.Fatalf("empty spec: %v, %v", fs, err)
	}
	for _, bad := range []string{
		"stuck", "stuck:x", "stuck:-1", "drop:0", "drop:1.5", "drop:x",
		"offset:1", "offset:x:5", "offset:1:y", "drift:web@30s",
		"drift:web->@30s", "drift:web->compute", "drift:web->compute@x",
		"wobble:3",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

func TestInjectorStuckFreezesFirstValue(t *testing.T) {
	faults, err := ParseFaults("stuck:1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(faults, 1)
	if !in.Active() {
		t.Fatal("stuck fault should be active")
	}
	a := []float64{70, 75, 80}
	in.Apply(a)
	if a[1] != 75 {
		t.Fatalf("first apply changed the frozen sensor: %v", a[1])
	}
	b := []float64{71, 90, 81}
	in.Apply(b)
	if b[1] != 75 {
		t.Fatalf("stuck sensor read %v, want first-seen 75", b[1])
	}
	if b[0] != 71 || b[2] != 81 {
		t.Fatal("healthy sensors must pass through")
	}
}

func TestInjectorPinnedStuckAndOffset(t *testing.T) {
	faults, err := ParseFaults("stuck:0:85,offset:2:-3")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(faults, 1)
	r := []float64{70, 75, 80}
	in.Apply(r)
	if r[0] != 85 || r[1] != 75 || r[2] != 77 {
		t.Fatalf("corrupted readings %v", r)
	}
	// Out-of-range indices are ignored, not a panic.
	short := []float64{70}
	in.Apply(short)
	if short[0] != 85 {
		t.Fatalf("short vector %v", short)
	}
}

func TestInjectorDropDeterministicUnderSeed(t *testing.T) {
	faults, err := ParseFaults("drop:0.3")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) []float64 {
		in := NewInjector(faults, seed)
		out := make([]float64, 0, 200)
		for step := 0; step < 20; step++ {
			r := make([]float64, 10)
			for i := range r {
				r[i] = 70 + float64(i)
			}
			in.Apply(r)
			out = append(out, r...)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	var drops int
	for _, v := range a {
		if v == 0 {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("drop rate 0.3 produced %d/%d drops", drops, len(a))
	}
}

func TestInjectorWorkloadSwitch(t *testing.T) {
	faults, err := ParseFaults("drift:web->compute@30s")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(faults, 1)
	if in.Active() {
		t.Fatal("drift-only spec has no sensor faults")
	}
	if w, ok := in.Workload(0); !ok || w != "web" {
		t.Fatalf("t=0 workload %q ok=%v", w, ok)
	}
	if w, ok := in.Workload(29 * time.Second); !ok || w != "web" {
		t.Fatalf("t=29s workload %q ok=%v", w, ok)
	}
	if w, ok := in.Workload(30 * time.Second); !ok || w != "compute" {
		t.Fatalf("t=30s workload %q ok=%v", w, ok)
	}
	none := NewInjector(nil, 1)
	if _, ok := none.Workload(0); ok {
		t.Fatal("no drift entry should report ok=false")
	}
}
