package drift

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind names one injectable failure mode.
type FaultKind int

// Injectable fault kinds.
const (
	// FaultStuck freezes one sensor: it keeps reporting the first value it
	// saw (or a pinned value) regardless of the true temperature.
	FaultStuck FaultKind = iota
	// FaultDrop zeroes each reading independently with a fixed probability —
	// telemetry dropout.
	FaultDrop
	// FaultOffset adds a constant bias to one sensor — a miscalibrated or
	// self-heating sensor.
	FaultOffset
	// FaultDrift is a workload-regime switch, not a sensor fault: traffic
	// generated from one workload family switches to another at a set time.
	// Apply ignores it; generators consult Workload.
	FaultDrift
)

// String names the kind the way fault specs spell it.
func (k FaultKind) String() string {
	switch k {
	case FaultStuck:
		return "stuck"
	case FaultDrop:
		return "drop"
	case FaultOffset:
		return "offset"
	case FaultDrift:
		return "drift"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one parsed fault-spec entry.
type Fault struct {
	Kind   FaultKind
	Sensor int           // stuck, offset: position in the reading vector
	Value  float64       // stuck: pinned reading (NaN = freeze first seen)
	Rate   float64       // drop: per-reading probability
	Offset float64       // offset: added bias, °C
	From   string        // drift: workload family before the switch
	To     string        // drift: workload family after the switch
	At     time.Duration // drift: when the switch happens
}

// ParseFaults parses a comma-separated fault spec, e.g.
//
//	stuck:3  stuck:3:85.5  drop:0.01  offset:2:+5  drift:web->compute@30s
//
// (the arrow in drift entries may be spelled "->" or "→"). An empty spec
// yields no faults.
func ParseFaults(spec string) ([]Fault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("drift: fault %q: want kind:args", entry)
		}
		switch kind {
		case "stuck":
			idxStr, valStr, hasVal := strings.Cut(rest, ":")
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("drift: fault %q: bad sensor index %q", entry, idxStr)
			}
			f := Fault{Kind: FaultStuck, Sensor: idx, Value: math.NaN()}
			if hasVal {
				v, err := strconv.ParseFloat(valStr, 64)
				if err != nil {
					return nil, fmt.Errorf("drift: fault %q: bad pinned value %q", entry, valStr)
				}
				f.Value = v
			}
			out = append(out, f)
		case "drop":
			rate, err := strconv.ParseFloat(rest, 64)
			if err != nil || rate <= 0 || rate > 1 {
				return nil, fmt.Errorf("drift: fault %q: drop rate must be in (0,1]", entry)
			}
			out = append(out, Fault{Kind: FaultDrop, Rate: rate})
		case "offset":
			idxStr, offStr, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("drift: fault %q: want offset:sensor:delta", entry)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("drift: fault %q: bad sensor index %q", entry, idxStr)
			}
			off, err := strconv.ParseFloat(offStr, 64)
			if err != nil {
				return nil, fmt.Errorf("drift: fault %q: bad offset %q", entry, offStr)
			}
			out = append(out, Fault{Kind: FaultOffset, Sensor: idx, Offset: off})
		case "drift":
			body, atStr, ok := strings.Cut(rest, "@")
			if !ok {
				return nil, fmt.Errorf("drift: fault %q: want drift:from->to@duration", entry)
			}
			body = strings.ReplaceAll(body, "→", "->")
			from, to, ok := strings.Cut(body, "->")
			if !ok || from == "" || to == "" {
				return nil, fmt.Errorf("drift: fault %q: want drift:from->to@duration", entry)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil || at < 0 {
				return nil, fmt.Errorf("drift: fault %q: bad switch time %q", entry, atStr)
			}
			out = append(out, Fault{Kind: FaultDrift, From: from, To: to, At: at})
		default:
			return nil, fmt.Errorf("drift: unknown fault kind %q (want stuck, drop, offset or drift)", kind)
		}
	}
	return out, nil
}

// Injector applies parsed sensor faults to reading vectors, deterministically
// under a seed, so the daemon's dev fault flag and the load generator corrupt
// traffic reproducibly. It is safe for concurrent use (the daemon shares one
// across request goroutines; the load generator gives each worker its own
// with a distinct seed).
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	rng    *rand.Rand
	held   map[int]float64 // stuck sensors frozen at first observed value
}

// NewInjector builds an injector over the parsed faults. The same faults,
// seed and call sequence always corrupt identically.
func NewInjector(faults []Fault, seed int64) *Injector {
	return &Injector{
		faults: append([]Fault(nil), faults...),
		rng:    rand.New(rand.NewSource(seed)),
		held:   make(map[int]float64),
	}
}

// Apply corrupts one reading vector in place according to the sensor faults
// (drift entries are regime switches, not corruption — see Workload).
// Out-of-range sensor indices are ignored so one injector serves monitors of
// any M.
func (in *Injector) Apply(readings []float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		switch f.Kind {
		case FaultStuck:
			if f.Sensor >= len(readings) {
				continue
			}
			v := f.Value
			if math.IsNaN(v) {
				held, ok := in.held[f.Sensor]
				if !ok {
					held = readings[f.Sensor]
					in.held[f.Sensor] = held
				}
				v = held
			}
			readings[f.Sensor] = v
		case FaultDrop:
			for i := range readings {
				if in.rng.Float64() < f.Rate {
					readings[i] = 0
				}
			}
		case FaultOffset:
			if f.Sensor >= len(readings) {
				continue
			}
			readings[f.Sensor] += f.Offset
		}
	}
}

// Workload resolves the active workload family at elapsed time into a run:
// the To family once a drift entry's switch time has passed, the From family
// before it. ok is false when the spec carries no drift entry (the caller
// keeps its default traffic).
func (in *Injector) Workload(elapsed time.Duration) (family string, ok bool) {
	for _, f := range in.faults {
		if f.Kind != FaultDrift {
			continue
		}
		if elapsed >= f.At {
			return f.To, true
		}
		return f.From, true
	}
	return "", false
}

// Active reports whether any *sensor* fault (stuck, drop, offset) is present
// — i.e. whether Apply can change readings.
func (in *Injector) Active() bool {
	for _, f := range in.faults {
		if f.Kind != FaultDrift {
			return true
		}
	}
	return false
}
