// Package drift closes the robustness loop the paper leaves open: a trained
// monitor assumes its workload ensemble is valid forever, but the repo's own
// robustness harness measured a 40× generalization gap across workload
// families. This package watches the one signal the serving path already has
// — the sensor-space reprojection residual ‖P·(x_S − mean_S)‖/‖x_S − mean_S‖
// with P = I − Ψ̃_K(Ψ̃_K)⁺ (see recon.ResidualInto) — and turns it into an
// operational verdict per monitor: OK, DRIFTING or DEGRADED.
//
// Detection is a standard EWMA + CUSUM pair over the z-scored residual,
// calibrated against the monitor's *own* training residual distribution
// (persisted alongside the monitor in the store record): the EWMA reacts to
// sustained level shifts, the CUSUM accumulates small persistent drifts the
// EWMA smooths away. Per-sensor residual attribution separates the two
// failure modes that need different responses — global workload drift
// (residual energy spread across sensors → adapt the basis) versus a single
// faulty sensor (energy concentrated on one coordinate → exclude the sensor
// and re-fold the operator).
//
// The package also hosts the deterministic fault layer (ParseFaults,
// Injector) shared by the daemon's dev fault-injection flag and the load
// generator, so the whole loop is testable under CI with seeded faults.
package drift

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// State is the operational verdict for one monitor.
type State int

// Monitor drift states, ordered by severity.
const (
	// StateOK: residuals are consistent with the training distribution.
	StateOK State = iota
	// StateDrifting: residuals have shifted beyond the drift threshold —
	// estimates still serve but quality is flagged and adaptation begins.
	StateDrifting
	// StateDegraded: residuals far outside the training distribution —
	// estimates are likely unreliable until adaptation or re-training.
	StateDegraded
)

// String names the state the way the quality field and metrics spell it.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDrifting:
		return "drifting"
	case StateDegraded:
		return "degraded"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Calibration is the training residual distribution of one monitor: the
// moments of the normalized reprojection residual over the training ensemble,
// plus per-sensor moments of the absolute residual for fault attribution.
// It is persisted in the store record so a warm-started daemon detects drift
// with the same thresholds the training run established.
type Calibration struct {
	// Mean and Std of the normalized residual norm ρ ∈ [0,1] over the
	// training ensemble. Std carries a floor (see Calibrate) so tiny training
	// residual spread cannot make the z-score explode on rounding noise.
	Mean float64
	Std  float64
	// SensorMean and SensorStd (length M) are per-sensor moments of the
	// absolute residual |r_i| over the training ensemble.
	SensorMean []float64
	SensorStd  []float64
}

// Valid reports whether the calibration is structurally usable.
func (c *Calibration) Valid() bool {
	return c != nil && c.Std > 0 && !math.IsNaN(c.Mean) && !math.IsInf(c.Mean, 0) &&
		len(c.SensorMean) == len(c.SensorStd) && len(c.SensorMean) > 0
}

// Calibrate fits a Calibration from the training ensemble's residuals:
// rhos[j] is the normalized residual norm of snapshot j and perSensor[j] the
// per-sensor residual vector (all length M). At least two snapshots are
// required. The returned Std is floored at max(5% of Mean, 1e-9) so z-scores
// stay meaningful when the training residuals are nearly constant.
func Calibrate(rhos []float64, perSensor [][]float64) (Calibration, error) {
	if len(rhos) < 2 {
		return Calibration{}, fmt.Errorf("drift: calibrate: %d residual samples, need ≥2", len(rhos))
	}
	if len(perSensor) != len(rhos) {
		return Calibration{}, fmt.Errorf("drift: calibrate: %d per-sensor rows for %d residuals", len(perSensor), len(rhos))
	}
	m := len(perSensor[0])
	if m == 0 {
		return Calibration{}, errors.New("drift: calibrate: empty per-sensor residuals")
	}
	var mean, sq float64
	for _, r := range rhos {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return Calibration{}, errors.New("drift: calibrate: non-finite residual")
		}
		mean += r
		sq += r * r
	}
	n := float64(len(rhos))
	mean /= n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if floor := 0.05 * mean; std < floor {
		std = floor
	}
	if std < 1e-9 {
		std = 1e-9
	}
	sMean := make([]float64, m)
	sSq := make([]float64, m)
	for j, row := range perSensor {
		if len(row) != m {
			return Calibration{}, fmt.Errorf("drift: calibrate: row %d has %d sensors, want %d", j, len(row), m)
		}
		for i, v := range row {
			a := math.Abs(v)
			sMean[i] += a
			sSq[i] += a * a
		}
	}
	sStd := make([]float64, m)
	for i := range sMean {
		sMean[i] /= n
		v := sSq[i]/n - sMean[i]*sMean[i]
		if v < 0 {
			v = 0
		}
		sStd[i] = math.Sqrt(v)
		if sStd[i] < 1e-12 {
			sStd[i] = 1e-12
		}
	}
	return Calibration{Mean: mean, Std: std, SensorMean: sMean, SensorStd: sStd}, nil
}

// Config tunes a Detector. The zero value selects the defaults noted per
// field.
type Config struct {
	// Lambda is the EWMA smoothing weight per observed snapshot (default
	// 0.1): smaller smooths harder, reacting slower but with fewer false
	// alarms.
	Lambda float64
	// DriftZ is the EWMA z-score at which the state leaves OK (default 4).
	DriftZ float64
	// DegradeZ is the EWMA z-score at which DRIFTING escalates to DEGRADED
	// (default 8).
	DegradeZ float64
	// CUSUMK is the CUSUM slack in z-units (default 0.5): shifts smaller
	// than this never accumulate.
	CUSUMK float64
	// CUSUMH is the CUSUM alarm threshold in accumulated z-units (default
	// 12) for the DRIFTING state.
	CUSUMH float64
	// FaultRatio is the smoothed share of residual energy a single sensor
	// must carry, while the detector is out of OK, to be attributed as
	// faulty (default 0.6). Global drift spreads energy ≈ 1/M per sensor.
	FaultRatio float64
	// MinCount is the number of snapshots that must be observed before the
	// detector leaves OK or attributes a fault (default 16).
	MinCount int
}

func (cfg Config) withDefaults() Config {
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		cfg.Lambda = 0.1
	}
	if cfg.DriftZ <= 0 {
		cfg.DriftZ = 4
	}
	if cfg.DegradeZ <= cfg.DriftZ {
		cfg.DegradeZ = 2 * cfg.DriftZ
	}
	if cfg.CUSUMK <= 0 {
		cfg.CUSUMK = 0.5
	}
	if cfg.CUSUMH <= 0 {
		cfg.CUSUMH = 12
	}
	if cfg.FaultRatio <= 0 || cfg.FaultRatio > 1 {
		cfg.FaultRatio = 0.6
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 16
	}
	return cfg
}

// Status is a point-in-time snapshot of a detector, for stats endpoints and
// logs.
type Status struct {
	State        State
	EWMA         float64 // smoothed residual z-score
	CUSUM        float64 // accumulated one-sided drift statistic, z-units
	Observations int64   // snapshots observed since construction or Reset
	FaultySensor int     // position in the sensor vector, -1 if none
}

// Detector classifies one monitor's drift state from the stream of
// reprojection residuals. It is safe for concurrent use; Observe is cheap
// (a few multiplies per sensor) next to the reconstruction itself.
type Detector struct {
	cfg Config

	mu     sync.Mutex
	cal    Calibration
	ewma   float64
	cusum  float64
	shares []float64 // smoothed per-sensor share of residual energy
	count  int64
	faulty int
}

// NewDetector builds a detector around a monitor's training calibration.
func NewDetector(cal Calibration, cfg Config) (*Detector, error) {
	if !cal.Valid() {
		return nil, errors.New("drift: invalid calibration")
	}
	return &Detector{
		cfg:    cfg.withDefaults(),
		cal:    cal,
		shares: make([]float64, len(cal.SensorMean)),
		faulty: -1,
	}, nil
}

// Observe folds count snapshots' worth of residual evidence into the
// detector: rho is the mean normalized residual norm over the batch and
// sensorEnergy (length M) the summed per-sensor squared residual. The daemon
// calls this once per request batch.
func (d *Detector) Observe(rho float64, sensorEnergy []float64, count int) {
	if count <= 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(sensorEnergy) != len(d.shares) {
		return
	}
	z := (rho - d.cal.Mean) / d.cal.Std
	// One EWMA step per snapshot in the batch, collapsed into a single
	// update: after count steps at a constant z the EWMA is
	// (1−λ)^count·prev + (1−(1−λ)^count)·z.
	w := 1 - math.Pow(1-d.cfg.Lambda, float64(count))
	d.ewma = (1-w)*d.ewma + w*z
	// CUSUM accumulates the per-snapshot excess over the slack.
	d.cusum += float64(count) * (z - d.cfg.CUSUMK)
	if d.cusum < 0 {
		d.cusum = 0
	}
	var total float64
	for _, e := range sensorEnergy {
		total += e
	}
	if total > 0 {
		for i, e := range sensorEnergy {
			d.shares[i] = (1-w)*d.shares[i] + w*(e/total)
		}
	}
	d.count += int64(count)
	d.refreshLocked()
}

// refreshLocked recomputes the fault attribution; the caller holds d.mu.
func (d *Detector) refreshLocked() {
	d.faulty = -1
	if d.count < int64(d.cfg.MinCount) || d.stateLocked() == StateOK {
		return
	}
	best, bestShare := -1, 0.0
	for i, s := range d.shares {
		if s > bestShare {
			best, bestShare = i, s
		}
	}
	if bestShare >= d.cfg.FaultRatio {
		d.faulty = best
	}
}

// stateLocked classifies from the current statistics; the caller holds d.mu.
func (d *Detector) stateLocked() State {
	if d.count < int64(d.cfg.MinCount) {
		return StateOK
	}
	switch {
	case d.ewma >= d.cfg.DegradeZ:
		return StateDegraded
	case d.ewma >= d.cfg.DriftZ || d.cusum >= d.cfg.CUSUMH:
		return StateDrifting
	}
	return StateOK
}

// State returns the current verdict.
func (d *Detector) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stateLocked()
}

// FaultySensor returns the position (in the monitor's sensor vector) of the
// sensor currently attributed as faulty, or -1. Attribution requires the
// detector to be out of OK with one sensor carrying ≥ FaultRatio of the
// smoothed residual energy.
func (d *Detector) FaultySensor() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faulty
}

// Status returns a consistent snapshot of the detector.
func (d *Detector) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Status{
		State:        d.stateLocked(),
		EWMA:         d.ewma,
		CUSUM:        d.cusum,
		Observations: d.count,
		FaultySensor: d.faulty,
	}
}

// Reset rebases the detector on a fresh calibration — the post-adaptation
// step: the adapted monitor's residual distribution replaces the stale one
// and all accumulated statistics clear.
func (d *Detector) Reset(cal Calibration) error {
	if !cal.Valid() {
		return errors.New("drift: invalid calibration")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cal = cal
	d.ewma = 0
	d.cusum = 0
	d.shares = make([]float64, len(cal.SensorMean))
	d.count = 0
	d.faulty = -1
	return nil
}
