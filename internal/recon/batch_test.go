package recon

import (
	"errors"
	"math"
	"testing"
)

// batchReconstructor builds a shared K=4, M=8 reconstructor over the test
// basis plus a few in-subspace reading vectors.
func batchFixture(t *testing.T) (*Reconstructor, [][]float64, [][]float64) {
	t.Helper()
	const k, m = 4, 8
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors[:m])
	if err != nil {
		t.Fatal(err)
	}
	var readings, want [][]float64
	for j := 0; j < 16; j++ {
		x := testSet.Map(j % testSet.T())
		xS := r.Sample(x)
		rec, err := r.Reconstruct(xS)
		if err != nil {
			t.Fatal(err)
		}
		readings = append(readings, xS)
		want = append(want, rec)
	}
	return r, readings, want
}

func TestReconstructIntoMatchesReconstruct(t *testing.T) {
	r, readings, want := batchFixture(t)
	dst := make([]float64, testBasis.N())
	for i, xS := range readings {
		if err := r.ReconstructInto(dst, xS); err != nil {
			t.Fatal(err)
		}
		for c := range dst {
			if dst[c] != want[i][c] {
				t.Fatalf("snapshot %d cell %d: Into %v != Reconstruct %v", i, c, dst[c], want[i][c])
			}
		}
	}
	if err := r.ReconstructInto(make([]float64, 3), readings[0]); err == nil {
		t.Fatal("short destination should fail")
	}
}

func TestReconstructBatchMatchesSequential(t *testing.T) {
	r, readings, want := batchFixture(t)
	for _, workers := range []int{1, 2, 0} {
		got, err := r.ReconstructBatch(readings, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			for c := range want[i] {
				if got[i][c] != want[i][c] {
					t.Fatalf("workers=%d snapshot %d cell %d: %v != %v", workers, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}

func TestBatchRejectsNaNWithIndex(t *testing.T) {
	r, readings, _ := batchFixture(t)
	bad := make([]float64, len(readings[0]))
	copy(bad, readings[0])
	bad[2] = math.NaN()
	batch := [][]float64{readings[0], readings[1], bad, readings[2]}
	_, err := r.ReconstructBatch(batch, 2)
	if !errors.Is(err, ErrBadReading) {
		t.Fatalf("NaN batch err = %v", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("batch error index = %+v", err)
	}

	// Single-snapshot paths reject NaN and Inf too.
	if _, err := r.Reconstruct(bad); !errors.Is(err, ErrBadReading) {
		t.Fatalf("Reconstruct NaN err = %v", err)
	}
	bad[2] = math.Inf(-1)
	if _, err := r.Coefficients(bad); !errors.Is(err, ErrBadReading) {
		t.Fatalf("Coefficients -Inf err = %v", err)
	}
}

func TestBatchShapeErrors(t *testing.T) {
	r, readings, _ := batchFixture(t)
	dst := make([][]float64, len(readings)-1)
	if err := r.ReconstructBatchInto(dst, readings, 0); err == nil {
		t.Fatal("mismatched dst length should fail")
	}
	short := [][]float64{readings[0][:3]}
	if _, err := r.ReconstructBatch(short, 0); err == nil {
		t.Fatal("short reading vector should fail")
	}
	if err := r.ReconstructBatchInto(nil, nil, 0); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestReconstructIntoZeroAlloc pins the acceptance criterion: the pooled
// steady-state path allocates nothing per snapshot.
func TestReconstructIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately randomizes its fast path when race.Enabled
		// (poolRaceHat dropping ~25% of puts), so AllocsPerRun occasionally
		// observes a pool miss under -race. The pin is exact without -race;
		// CI's bench-smoke job re-runs this test race-free to keep it
		// enforced, and plain local `go test` runs it too.
		t.Skip("pool-backed zero-alloc pin is not meaningful under the race detector")
	}
	r, readings, _ := batchFixture(t)
	dst := make([]float64, testBasis.N())
	// Warm the pool.
	if err := r.ReconstructInto(dst, readings[0]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.ReconstructInto(dst, readings[0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ReconstructInto allocates %v per call; want 0", allocs)
	}
}

func TestReconstructConcurrentShared(t *testing.T) {
	// Many goroutines hammer one shared reconstructor; results must match the
	// sequential answers exactly (run under -race in CI).
	r, readings, want := batchFixture(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			dst := make([]float64, testBasis.N())
			for rep := 0; rep < 50; rep++ {
				i := (g + rep) % len(readings)
				if err := r.ReconstructInto(dst, readings[i]); err != nil {
					done <- err
					return
				}
				for c := range dst {
					if dst[c] != want[i][c] {
						done <- errors.New("concurrent result diverged")
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
