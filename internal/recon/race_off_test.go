//go:build !race

package recon

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
