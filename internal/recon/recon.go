// Package recon implements the paper's Theorem 1: least-squares recovery of
// the K subspace coefficients from M ≥ K sensor readings, plus the
// condition-number diagnostics that drive sensor allocation and ensemble
// evaluation over whole datasets.
package recon

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/noise"
)

// Errors returned by New and the reconstruction entry points.
var (
	// ErrTooFewSensors reports M < K (Theorem 1 requires M ≥ K).
	ErrTooFewSensors = errors.New("recon: fewer sensors than basis dimension")
	// ErrRankDeficient reports rank(Ψ̃_K) < K: the sensor set cannot observe
	// the subspace.
	ErrRankDeficient = errors.New("recon: sensing matrix is rank deficient")
	// ErrDuplicateSensor reports the same cell listed twice in a sensor set:
	// a duplicated row makes the layout silently worse-conditioned than its
	// nominal M suggests, so it is rejected up front.
	ErrDuplicateSensor = errors.New("recon: duplicate sensor index")
	// ErrBadReading reports a NaN or ±Inf sensor reading; least squares would
	// not fail on it, it would silently poison the whole reconstructed map.
	ErrBadReading = errors.New("recon: non-finite sensor reading")
)

// Arm selects which of the two mathematically equivalent reconstruction
// implementations serves an estimate. Both realize Theorem 1; they differ
// only in how the work is staged.
type Arm int

const (
	// ArmOperator applies the precomputed affine operator: x̃ = c + R·x_S
	// with R = Ψ_K(Ψ̃_K)⁺ folded once at construction and c = mean − R·mean_S.
	// One N×M matvec per snapshot, no intermediate coefficient solve. This
	// is the default serving arm.
	ArmOperator Arm = iota
	// ArmQR runs the original two-stage path — QR back-substitution for α̂
	// followed by the basis lift — and is kept as the reference ablation the
	// operator arm's agreement is pinned against.
	ArmQR
)

// String names the arm for benchmarks and logs.
func (a Arm) String() string {
	switch a {
	case ArmOperator:
		return "operator"
	case ArmQR:
		return "qr"
	}
	return fmt.Sprintf("Arm(%d)", int(a))
}

// ErrBadArm reports an Arm value that names neither implementation.
var ErrBadArm = errors.New("recon: unknown reconstruction arm")

// Reconstructor solves min_α ‖x_S − Ψ̃_K α‖₂ and synthesizes x̃ = mean + Ψ_K α̂.
// It is safe for concurrent use after construction: the factorization and
// the folded operator are read-only and per-call scratch comes from an
// internal pool, so any number of goroutines may call
// Reconstruct/ReconstructInto on one shared instance.
type Reconstructor struct {
	b       *basis.Basis
	k       int
	sensors []int

	psiTilde *mat.Matrix // M×K rows of Ψ_K at sensor locations
	qr       *mat.QR
	meanS    []float64 // mean map sampled at the sensors

	op     *mat.Matrix // N×M folded operator R = Ψ_K (Ψ̃_K)⁺
	opBias []float64   // N: c = mean − R·mean_S, so x̃ = c + R·x_S

	resid *mat.Matrix // M×M residual projector P = I_M − Ψ̃_K (Ψ̃_K)⁺
	zeroM []float64   // all-zero length-M bias for residual matvecs

	scratch sync.Pool // *solveScratch, reused across ReconstructInto calls
}

// solveScratch holds the per-call work buffers of one least-squares solve so
// the steady-state hot path allocates nothing.
type solveScratch struct {
	centered []float64 // M: readings minus the training mean
	work     []float64 // M: reflector-sweep workspace
	alpha    []float64 // K: solved coefficients
}

func (r *Reconstructor) getScratch() *solveScratch {
	if sc, ok := r.scratch.Get().(*solveScratch); ok {
		return sc
	}
	return &solveScratch{
		centered: make([]float64, len(r.sensors)),
		work:     make([]float64, len(r.sensors)),
		alpha:    make([]float64, r.k),
	}
}

// New builds a reconstructor for the first k basis vectors observed at the
// given sensor cell indices. It fails fast if M < K or Ψ̃_K is rank
// deficient (the preconditions of Theorem 1).
func New(b *basis.Basis, k int, sensors []int) (*Reconstructor, error) {
	return build(b, k, sensors, nil, nil, nil)
}

// Restore rebuilds a reconstructor from a previously cached least-squares
// factorization — the deserialization path of the monitor store. It performs
// New's full validation but reuses qr instead of refactoring Ψ̃_K, so a
// restored reconstructor reproduces the saved one's ReconstructInto output
// bit-for-bit: the reflector sweep runs over the exact float64 values the
// original computed with, in the same order.
func Restore(b *basis.Basis, k int, sensors []int, qr *mat.QR) (*Reconstructor, error) {
	if qr == nil {
		return nil, fmt.Errorf("recon: restore: nil factorization")
	}
	return build(b, k, sensors, qr, nil, nil)
}

// RestoreWithOperator is Restore plus an already-folded operator (op is the
// N×M matrix R, opBias the length-N affine term c) from a v2 store record,
// skipping the fold entirely. Shapes are validated against (b, k, sensors);
// the fold is deterministic, so adopting a persisted operator and re-folding
// from the same factorization produce bit-identical estimates.
func RestoreWithOperator(b *basis.Basis, k int, sensors []int, qr *mat.QR, op *mat.Matrix, opBias []float64) (*Reconstructor, error) {
	if qr == nil {
		return nil, fmt.Errorf("recon: restore: nil factorization")
	}
	if op == nil || opBias == nil {
		return nil, fmt.Errorf("recon: restore: nil operator section")
	}
	return build(b, k, sensors, qr, op, opBias)
}

// build validates (b, k, sensors) and assembles the reconstructor, factoring
// Ψ̃_K fresh when qr is nil and adopting qr (after a shape check) otherwise.
// The folded operator is adopted from (op, opBias) when given and folded from
// the factorization otherwise.
func build(b *basis.Basis, k int, sensors []int, qr *mat.QR, op *mat.Matrix, opBias []float64) (*Reconstructor, error) {
	if k < 1 || k > b.KMax() {
		return nil, fmt.Errorf("recon: %w", basis.ErrKRange)
	}
	if len(sensors) < k {
		return nil, fmt.Errorf("%w: M=%d, K=%d", ErrTooFewSensors, len(sensors), k)
	}
	seen := make(map[int]struct{}, len(sensors))
	for _, s := range sensors {
		if s < 0 || s >= b.N() {
			return nil, fmt.Errorf("recon: sensor index %d outside [0,%d)", s, b.N())
		}
		if _, dup := seen[s]; dup {
			return nil, fmt.Errorf("%w: cell %d", ErrDuplicateSensor, s)
		}
		seen[s] = struct{}{}
	}
	psiK, err := b.PsiK(k)
	if err != nil {
		return nil, err
	}
	psiTilde := psiK.SelectRows(sensors)
	if qr == nil {
		qr = mat.NewQR(psiTilde)
	} else if qm, qn := qr.Dims(); qm != len(sensors) || qn != k {
		return nil, fmt.Errorf("recon: restore: factorization is %d×%d, want %d×%d", qm, qn, len(sensors), k)
	}
	if qr.Rank() < k {
		return nil, fmt.Errorf("%w: rank %d < K=%d", ErrRankDeficient, qr.Rank(), k)
	}
	meanS := make([]float64, len(sensors))
	for i, s := range sensors {
		meanS[i] = b.Mean[s]
	}
	pinv, err := pinvFromQR(qr)
	if err != nil {
		return nil, err
	}
	if op == nil {
		op, opBias = fold(psiK, pinv, b.Mean, meanS)
	} else if rows, cols := op.Dims(); rows != b.N() || cols != len(sensors) || len(opBias) != b.N() {
		return nil, fmt.Errorf("recon: restore: operator is %d×%d (+%d bias), want %d×%d (+%d)",
			rows, cols, len(opBias), b.N(), len(sensors), b.N())
	}
	return &Reconstructor{
		b:        b,
		k:        k,
		sensors:  append([]int(nil), sensors...),
		psiTilde: psiTilde,
		qr:       qr,
		meanS:    meanS,
		op:       op,
		opBias:   opBias,
		resid:    residualProjector(psiTilde, pinv),
		zeroM:    make([]float64, len(sensors)),
	}, nil
}

// pinvFromQR extracts the pseudoinverse (Ψ̃_K)⁺ (K×M) column-by-column from
// the cached QR factorization: column j is the least-squares solution against
// the j-th unit vector. The extraction is deterministic — the same
// factorization always yields bit-identical values — which is what makes both
// the folded operator and the residual projector reproducible across restore.
func pinvFromQR(qr *mat.QR) (*mat.Matrix, error) {
	m, k := qr.Dims()
	pinv := mat.New(k, m)
	e := make([]float64, m)
	work := make([]float64, m)
	col := make([]float64, k)
	for j := 0; j < m; j++ {
		e[j] = 1
		if err := qr.SolveInto(col, e, work); err != nil {
			return nil, fmt.Errorf("recon: pseudoinverse extraction: %w", err)
		}
		e[j] = 0
		for i, v := range col {
			pinv.Set(i, j, v)
		}
	}
	return pinv, nil
}

// fold precomputes the affine reconstruction operator of Theorem 1:
// R = Ψ_K (Ψ̃_K)⁺ (N×M) and c = mean − R·mean_S, so an estimate collapses to
// x̃ = c + R·x_S — one matvec, no per-snapshot solve. The fold is
// deterministic given the pseudoinverse, so a re-folded operator matches a
// persisted one exactly.
func fold(psiK, pinv *mat.Matrix, mean, meanS []float64) (*mat.Matrix, []float64) {
	op := mat.Mul(psiK, pinv) // N×M
	bias := mat.MulVec(op, meanS)
	for i, v := range mean {
		bias[i] = v - bias[i]
	}
	return op, bias
}

// residualProjector folds the sensor-space reprojection residual operator
// P = I_M − Ψ̃_K (Ψ̃_K)⁺ (M×M): applied to centered readings it yields the
// component the subspace cannot explain, the raw signal of model drift. It
// costs one extra M×M matvec per snapshot to apply — negligible next to the
// N×M reconstruction.
func residualProjector(psiTilde, pinv *mat.Matrix) *mat.Matrix {
	m := psiTilde.Rows()
	proj := mat.Mul(psiTilde, pinv) // Ψ̃_K (Ψ̃_K)⁺, M×M
	out := mat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := -proj.At(i, j)
			if i == j {
				v++
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// K returns the subspace dimension.
func (r *Reconstructor) K() int { return r.k }

// M returns the number of sensors.
func (r *Reconstructor) M() int { return len(r.sensors) }

// N returns the number of cells per reconstructed map.
func (r *Reconstructor) N() int { return r.b.N() }

// Sensors returns a copy of the sensor cell indices.
func (r *Reconstructor) Sensors() []int { return append([]int(nil), r.sensors...) }

// Basis returns the basis the reconstructor synthesizes with. Callers must
// treat it as read-only: it is shared by every estimating goroutine.
func (r *Reconstructor) Basis() *basis.Basis { return r.b }

// QR returns the cached least-squares factorization (read-only; shared by
// every estimating goroutine). Serialize it with its Factors method and
// rebuild via Restore for bit-identical estimates.
func (r *Reconstructor) QR() *mat.QR { return r.qr }

// Operator returns the folded reconstruction operator R (N×M) and its
// affine term c, satisfying x̃ = c + R·x_S. Both are read-only and shared by
// every estimating goroutine; serialize them into a v2 store record and
// rebuild via RestoreWithOperator to skip the fold on load.
func (r *Reconstructor) Operator() (*mat.Matrix, []float64) { return r.op, r.opBias }

// SensingMatrix returns Ψ̃_K (a copy).
func (r *Reconstructor) SensingMatrix() *mat.Matrix { return r.psiTilde.Clone() }

// Cond returns the 2-norm condition number κ(Ψ̃_K) — the paper's figure of
// merit for a sensor layout (eq. (5)).
func (r *Reconstructor) Cond() (float64, error) {
	return mat.Cond(r.psiTilde)
}

// checkReadings validates shape and finiteness of a reading vector.
func (r *Reconstructor) checkReadings(xS []float64) error {
	if len(xS) != len(r.sensors) {
		return fmt.Errorf("recon: %d readings for %d sensors", len(xS), len(r.sensors))
	}
	for i, v := range xS {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: reading %d is %v", ErrBadReading, i, v)
		}
	}
	return nil
}

// Coefficients solves the least-squares problem for the (possibly noisy)
// sensor readings xS (length M, °C) and returns α̂. Non-finite readings are
// rejected with ErrBadReading.
func (r *Reconstructor) Coefficients(xS []float64) ([]float64, error) {
	if err := r.checkReadings(xS); err != nil {
		return nil, err
	}
	alpha := make([]float64, r.k)
	sc := r.getScratch()
	err := r.coefficientsInto(alpha, xS, sc)
	r.scratch.Put(sc)
	if err != nil {
		return nil, err
	}
	return alpha, nil
}

// coefficientsInto solves for α̂ into dst (length K) using sc's buffers.
// The readings must already have passed checkReadings.
func (r *Reconstructor) coefficientsInto(dst, xS []float64, sc *solveScratch) error {
	for i, v := range xS {
		sc.centered[i] = v - r.meanS[i]
	}
	if err := r.qr.SolveInto(dst, sc.centered, sc.work); err != nil {
		return fmt.Errorf("recon: least squares: %w", err)
	}
	return nil
}

// Reconstruct estimates the full thermal map from sensor readings
// (Theorem 1: x̃ = Ψ_K (Ψ̃_K*Ψ̃_K)⁻¹ Ψ̃_K* x_S, realized via QR, with the
// training mean restored).
func (r *Reconstructor) Reconstruct(xS []float64) ([]float64, error) {
	out := make([]float64, r.b.N())
	if err := r.ReconstructInto(out, xS); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructInto is the allocation-free form of Reconstruct: it writes the
// estimated map into dst (length N) using the default operator arm — one
// blocked N×M matvec, zero steady-state allocations per snapshot.
func (r *Reconstructor) ReconstructInto(dst, xS []float64) error {
	return r.ReconstructArmInto(dst, xS, ArmOperator)
}

// ReconstructArmInto is ReconstructInto with an explicit implementation arm.
// ArmOperator applies the folded operator; ArmQR runs the reference
// solve-then-lift path. The two agree to the accumulation-order level
// (within ~1e-12 relative on realistic data; see the package tests for the
// pinned agreement).
func (r *Reconstructor) ReconstructArmInto(dst, xS []float64, arm Arm) error {
	if len(dst) != r.b.N() {
		return fmt.Errorf("recon: destination length %d != N %d", len(dst), r.b.N())
	}
	if err := r.checkReadings(xS); err != nil {
		return err
	}
	switch arm {
	case ArmOperator:
		mat.MulVecBiasInto(dst, r.opBias, r.op, xS)
		return nil
	case ArmQR:
		sc := r.getScratch()
		err := r.coefficientsInto(sc.alpha, xS, sc)
		if err == nil {
			r.b.SynthesizeInto(dst, sc.alpha)
		}
		r.scratch.Put(sc)
		return err
	default:
		return fmt.Errorf("%w: %d", ErrBadArm, int(arm))
	}
}

// ResidualProjector returns the M×M sensor-space residual projector
// P = I_M − Ψ̃_K(Ψ̃_K)⁺ (read-only; shared by every estimating goroutine).
// P·(x_S − mean_S) is the component of a centered reading vector the trained
// subspace cannot reproduce — zero (to rounding) on in-distribution data,
// growing as the workload drifts away from the training ensemble.
func (r *Reconstructor) ResidualProjector() *mat.Matrix { return r.resid }

// ResidualInto computes the sensor-space reprojection residual of one reading
// vector: it writes the per-sensor residual P·(x_S − mean_S) into dst (length
// M) and returns the normalized residual norm ‖P·(x_S − mean_S)‖ / ‖x_S −
// mean_S‖ ∈ [0, 1] — the drift statistic. Readings exactly at the training
// mean score 0. Like ReconstructInto it is allocation-free in steady state
// and safe for concurrent use.
func (r *Reconstructor) ResidualInto(dst, xS []float64) (float64, error) {
	m := len(r.sensors)
	if len(dst) != m {
		return 0, fmt.Errorf("recon: residual destination length %d != M %d", len(dst), m)
	}
	if err := r.checkReadings(xS); err != nil {
		return 0, err
	}
	sc := r.getScratch()
	var denom float64
	for i, v := range xS {
		c := v - r.meanS[i]
		sc.centered[i] = c
		denom += c * c
	}
	mat.MulVecBiasInto(dst, r.zeroM, r.resid, sc.centered)
	r.scratch.Put(sc)
	if denom == 0 {
		return 0, nil
	}
	var num float64
	for _, v := range dst {
		num += v * v
	}
	return math.Sqrt(num / denom), nil
}

// ResidualStats scores a whole batch of reading vectors in one pass with
// one scratch checkout: it zeroes energy (length M), accumulates each
// scored row's squared per-sensor residual into it, and returns the mean
// normalized residual norm over the rows it scored plus that count. Rows
// that fail validation (wrong length, non-finite) are skipped rather than
// failing the batch — this is the serving hot path's drift scorer, and a
// malformed row has already produced its client-facing error elsewhere.
func (r *Reconstructor) ResidualStats(energy []float64, rows [][]float64) (meanRho float64, n int, err error) {
	m := len(r.sensors)
	if len(energy) != m {
		return 0, 0, fmt.Errorf("recon: energy length %d != M %d", len(energy), m)
	}
	for i := range energy {
		energy[i] = 0
	}
	sc := r.getScratch()
	defer r.scratch.Put(sc)
	var sumRho float64
	for _, xS := range rows {
		if r.checkReadings(xS) != nil {
			continue
		}
		var denom float64
		for i, v := range xS {
			c := v - r.meanS[i]
			sc.centered[i] = c
			denom += c * c
		}
		mat.MulVecBiasInto(sc.work, r.zeroM, r.resid, sc.centered)
		var num float64
		for i, v := range sc.work {
			num += v * v
			energy[i] += v * v
		}
		if denom > 0 {
			sumRho += math.Sqrt(num / denom)
		}
		n++
	}
	if n > 0 {
		meanRho = sumRho / float64(n)
	}
	return meanRho, n, nil
}

// ResidualStatsFromEstimates is ResidualStats for a batch whose
// reconstructions are already in hand: because the least-squares estimate
// sampled at the sensors is the orthogonal projection of the centered
// readings onto the sensing subspace (x̂_S = Ψ̃_K·α + mean_S with
// α = (Ψ̃_K)⁺(x_S − mean_S)), the per-sensor residual P·(x_S − mean_S)
// equals x_S − x̂_S exactly — M subtractions per row instead of an M×M
// matvec, which makes drift scoring nearly free on the serving hot path.
// maps[i] is the reconstructed full map for rows[i]; rows that fail
// validation are skipped like ResidualStats does.
func (r *Reconstructor) ResidualStatsFromEstimates(energy []float64, rows, maps [][]float64) (meanRho float64, n int, err error) {
	m := len(r.sensors)
	if len(energy) != m {
		return 0, 0, fmt.Errorf("recon: energy length %d != M %d", len(energy), m)
	}
	if len(rows) != len(maps) {
		return 0, 0, fmt.Errorf("recon: %d rows with %d maps", len(rows), len(maps))
	}
	for i := range energy {
		energy[i] = 0
	}
	var sumRho float64
	for j, xS := range rows {
		x := maps[j]
		if len(xS) != m || len(x) != r.b.N() {
			continue
		}
		var num, denom float64
		bad := false
		for i, v := range xS {
			c := v - r.meanS[i]
			denom += c * c
			d := v - x[r.sensors[i]]
			num += d * d
			energy[i] += d * d
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad = true
				break
			}
		}
		if bad {
			// Roll back the partial accumulation; re-zeroing is cheaper than
			// branching per sensor on the (never-taken) hot path.
			for i := range energy {
				energy[i] = 0
			}
			return r.ResidualStats(energy, rows)
		}
		if denom > 0 {
			sumRho += math.Sqrt(num / denom)
		}
		n++
	}
	if n > 0 {
		meanRho = sumRho / float64(n)
	}
	return meanRho, n, nil
}

// Sample extracts the sensor readings from a full map.
func (r *Reconstructor) Sample(x []float64) []float64 {
	out := make([]float64, len(r.sensors))
	for i, s := range r.sensors {
		out[i] = x[s]
	}
	return out
}

// EvalConfig controls Evaluate.
type EvalConfig struct {
	// SNRdB, if non-zero (or NoisePresent), corrupts each sensor vector with
	// AWGN at this SNR (paper definition, per map). Use math.Inf(1) or leave
	// NoisePresent false for noiseless evaluation.
	SNRdB        float64
	NoisePresent bool
	Seed         int64
}

// Result summarizes an ensemble evaluation.
type Result struct {
	MSE    float64 // 1/(TN) ΣΣ (x−x̃)²  [°C²]
	MaxSq  float64 // max (x−x̃)²        [°C²]
	MaxAbs float64 // √MaxSq             [°C]
	Cond   float64 // κ(Ψ̃_K)
	K, M   int
}

// Evaluate reconstructs every map in ds through r and accumulates the
// paper's MSE and MAX metrics, optionally corrupting the sensor readings
// with AWGN.
func Evaluate(r *Reconstructor, ds *dataset.Dataset, cfg EvalConfig) (Result, error) {
	var ens metrics.Ensemble
	rng := rand.New(rand.NewSource(cfg.Seed))
	for j := 0; j < ds.T(); j++ {
		x := ds.Map(j)
		xS := r.Sample(x)
		if cfg.NoisePresent {
			// The paper defines SNR = ‖x‖²/‖w‖² on *zero-mean* thermal maps
			// (Sec. 3 works with centered vectors throughout), so the noise
			// power is scaled against the centered readings, not the ~70 °C
			// absolute values.
			centered := mat.SubVec(xS, r.meanS)
			w := noise.AtSNR(rng, centered, metrics.FromDB(cfg.SNRdB))
			xS = mat.AddVec(xS, w)
		}
		rec, err := r.Reconstruct(xS)
		if err != nil {
			return Result{}, fmt.Errorf("recon: map %d: %w", j, err)
		}
		ens.Add(x, rec)
	}
	cond, err := r.Cond()
	if err != nil {
		return Result{}, err
	}
	return Result{
		MSE:    ens.MSE(),
		MaxSq:  ens.MaxSq(),
		MaxAbs: ens.MaxAbs(),
		Cond:   cond,
		K:      r.k,
		M:      len(r.sensors),
	}, nil
}

// EvaluateApproximation measures the pure subspace approximation error
// (Fig. 3(a)): project every map onto the first k basis vectors and compare,
// with no sensing involved.
func EvaluateApproximation(b *basis.Basis, ds *dataset.Dataset, k int) (Result, error) {
	var ens metrics.Ensemble
	for j := 0; j < ds.T(); j++ {
		x := ds.Map(j)
		ap, err := b.Approximate(x, k)
		if err != nil {
			return Result{}, err
		}
		ens.Add(x, ap)
	}
	return Result{MSE: ens.MSE(), MaxSq: ens.MaxSq(), MaxAbs: ens.MaxAbs(), K: k}, nil
}
