// Package recon implements the paper's Theorem 1: least-squares recovery of
// the K subspace coefficients from M ≥ K sensor readings, plus the
// condition-number diagnostics that drive sensor allocation and ensemble
// evaluation over whole datasets.
package recon

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/noise"
)

// Errors returned by New and the reconstruction entry points.
var (
	// ErrTooFewSensors reports M < K (Theorem 1 requires M ≥ K).
	ErrTooFewSensors = errors.New("recon: fewer sensors than basis dimension")
	// ErrRankDeficient reports rank(Ψ̃_K) < K: the sensor set cannot observe
	// the subspace.
	ErrRankDeficient = errors.New("recon: sensing matrix is rank deficient")
	// ErrDuplicateSensor reports the same cell listed twice in a sensor set:
	// a duplicated row makes the layout silently worse-conditioned than its
	// nominal M suggests, so it is rejected up front.
	ErrDuplicateSensor = errors.New("recon: duplicate sensor index")
	// ErrBadReading reports a NaN or ±Inf sensor reading; least squares would
	// not fail on it, it would silently poison the whole reconstructed map.
	ErrBadReading = errors.New("recon: non-finite sensor reading")
)

// Arm selects which of the two mathematically equivalent reconstruction
// implementations serves an estimate. Both realize Theorem 1; they differ
// only in how the work is staged.
type Arm int

const (
	// ArmOperator applies the precomputed affine operator: x̃ = c + R·x_S
	// with R = Ψ_K(Ψ̃_K)⁺ folded once at construction and c = mean − R·mean_S.
	// One N×M matvec per snapshot, no intermediate coefficient solve. This
	// is the default serving arm.
	ArmOperator Arm = iota
	// ArmQR runs the original two-stage path — QR back-substitution for α̂
	// followed by the basis lift — and is kept as the reference ablation the
	// operator arm's agreement is pinned against.
	ArmQR
)

// String names the arm for benchmarks and logs.
func (a Arm) String() string {
	switch a {
	case ArmOperator:
		return "operator"
	case ArmQR:
		return "qr"
	}
	return fmt.Sprintf("Arm(%d)", int(a))
}

// ErrBadArm reports an Arm value that names neither implementation.
var ErrBadArm = errors.New("recon: unknown reconstruction arm")

// Reconstructor solves min_α ‖x_S − Ψ̃_K α‖₂ and synthesizes x̃ = mean + Ψ_K α̂.
// It is safe for concurrent use after construction: the factorization and
// the folded operator are read-only and per-call scratch comes from an
// internal pool, so any number of goroutines may call
// Reconstruct/ReconstructInto on one shared instance.
type Reconstructor struct {
	b       *basis.Basis
	k       int
	sensors []int

	psiTilde *mat.Matrix // M×K rows of Ψ_K at sensor locations
	qr       *mat.QR
	meanS    []float64 // mean map sampled at the sensors

	op     *mat.Matrix // N×M folded operator R = Ψ_K (Ψ̃_K)⁺
	opBias []float64   // N: c = mean − R·mean_S, so x̃ = c + R·x_S

	scratch sync.Pool // *solveScratch, reused across ReconstructInto calls
}

// solveScratch holds the per-call work buffers of one least-squares solve so
// the steady-state hot path allocates nothing.
type solveScratch struct {
	centered []float64 // M: readings minus the training mean
	work     []float64 // M: reflector-sweep workspace
	alpha    []float64 // K: solved coefficients
}

func (r *Reconstructor) getScratch() *solveScratch {
	if sc, ok := r.scratch.Get().(*solveScratch); ok {
		return sc
	}
	return &solveScratch{
		centered: make([]float64, len(r.sensors)),
		work:     make([]float64, len(r.sensors)),
		alpha:    make([]float64, r.k),
	}
}

// New builds a reconstructor for the first k basis vectors observed at the
// given sensor cell indices. It fails fast if M < K or Ψ̃_K is rank
// deficient (the preconditions of Theorem 1).
func New(b *basis.Basis, k int, sensors []int) (*Reconstructor, error) {
	return build(b, k, sensors, nil, nil, nil)
}

// Restore rebuilds a reconstructor from a previously cached least-squares
// factorization — the deserialization path of the monitor store. It performs
// New's full validation but reuses qr instead of refactoring Ψ̃_K, so a
// restored reconstructor reproduces the saved one's ReconstructInto output
// bit-for-bit: the reflector sweep runs over the exact float64 values the
// original computed with, in the same order.
func Restore(b *basis.Basis, k int, sensors []int, qr *mat.QR) (*Reconstructor, error) {
	if qr == nil {
		return nil, fmt.Errorf("recon: restore: nil factorization")
	}
	return build(b, k, sensors, qr, nil, nil)
}

// RestoreWithOperator is Restore plus an already-folded operator (op is the
// N×M matrix R, opBias the length-N affine term c) from a v2 store record,
// skipping the fold entirely. Shapes are validated against (b, k, sensors);
// the fold is deterministic, so adopting a persisted operator and re-folding
// from the same factorization produce bit-identical estimates.
func RestoreWithOperator(b *basis.Basis, k int, sensors []int, qr *mat.QR, op *mat.Matrix, opBias []float64) (*Reconstructor, error) {
	if qr == nil {
		return nil, fmt.Errorf("recon: restore: nil factorization")
	}
	if op == nil || opBias == nil {
		return nil, fmt.Errorf("recon: restore: nil operator section")
	}
	return build(b, k, sensors, qr, op, opBias)
}

// build validates (b, k, sensors) and assembles the reconstructor, factoring
// Ψ̃_K fresh when qr is nil and adopting qr (after a shape check) otherwise.
// The folded operator is adopted from (op, opBias) when given and folded from
// the factorization otherwise.
func build(b *basis.Basis, k int, sensors []int, qr *mat.QR, op *mat.Matrix, opBias []float64) (*Reconstructor, error) {
	if k < 1 || k > b.KMax() {
		return nil, fmt.Errorf("recon: %w", basis.ErrKRange)
	}
	if len(sensors) < k {
		return nil, fmt.Errorf("%w: M=%d, K=%d", ErrTooFewSensors, len(sensors), k)
	}
	seen := make(map[int]struct{}, len(sensors))
	for _, s := range sensors {
		if s < 0 || s >= b.N() {
			return nil, fmt.Errorf("recon: sensor index %d outside [0,%d)", s, b.N())
		}
		if _, dup := seen[s]; dup {
			return nil, fmt.Errorf("%w: cell %d", ErrDuplicateSensor, s)
		}
		seen[s] = struct{}{}
	}
	psiK, err := b.PsiK(k)
	if err != nil {
		return nil, err
	}
	psiTilde := psiK.SelectRows(sensors)
	if qr == nil {
		qr = mat.NewQR(psiTilde)
	} else if qm, qn := qr.Dims(); qm != len(sensors) || qn != k {
		return nil, fmt.Errorf("recon: restore: factorization is %d×%d, want %d×%d", qm, qn, len(sensors), k)
	}
	if qr.Rank() < k {
		return nil, fmt.Errorf("%w: rank %d < K=%d", ErrRankDeficient, qr.Rank(), k)
	}
	meanS := make([]float64, len(sensors))
	for i, s := range sensors {
		meanS[i] = b.Mean[s]
	}
	if op == nil {
		var err error
		op, opBias, err = fold(psiK, qr, b.Mean, meanS)
		if err != nil {
			return nil, err
		}
	} else if rows, cols := op.Dims(); rows != b.N() || cols != len(sensors) || len(opBias) != b.N() {
		return nil, fmt.Errorf("recon: restore: operator is %d×%d (+%d bias), want %d×%d (+%d)",
			rows, cols, len(opBias), b.N(), len(sensors), b.N())
	}
	return &Reconstructor{
		b:        b,
		k:        k,
		sensors:  append([]int(nil), sensors...),
		psiTilde: psiTilde,
		qr:       qr,
		meanS:    meanS,
		op:       op,
		opBias:   opBias,
	}, nil
}

// fold precomputes the affine reconstruction operator of Theorem 1:
// R = Ψ_K (Ψ̃_K)⁺ (N×M) and c = mean − R·mean_S, so an estimate collapses to
// x̃ = c + R·x_S — one matvec, no per-snapshot solve. The pseudoinverse is
// extracted column-by-column from the cached QR factorization (column j is
// the least-squares solution against the j-th unit vector), which makes the
// fold deterministic: the same factorization always yields bit-identical R,
// and therefore a re-folded operator matches a persisted one exactly.
func fold(psiK *mat.Matrix, qr *mat.QR, mean, meanS []float64) (*mat.Matrix, []float64, error) {
	m, k := qr.Dims()
	pinv := mat.New(k, m) // (Ψ̃_K)⁺, K×M
	e := make([]float64, m)
	work := make([]float64, m)
	col := make([]float64, k)
	for j := 0; j < m; j++ {
		e[j] = 1
		if err := qr.SolveInto(col, e, work); err != nil {
			return nil, nil, fmt.Errorf("recon: operator fold: %w", err)
		}
		e[j] = 0
		for i, v := range col {
			pinv.Set(i, j, v)
		}
	}
	op := mat.Mul(psiK, pinv) // N×M
	bias := mat.MulVec(op, meanS)
	for i, v := range mean {
		bias[i] = v - bias[i]
	}
	return op, bias, nil
}

// K returns the subspace dimension.
func (r *Reconstructor) K() int { return r.k }

// M returns the number of sensors.
func (r *Reconstructor) M() int { return len(r.sensors) }

// N returns the number of cells per reconstructed map.
func (r *Reconstructor) N() int { return r.b.N() }

// Sensors returns a copy of the sensor cell indices.
func (r *Reconstructor) Sensors() []int { return append([]int(nil), r.sensors...) }

// Basis returns the basis the reconstructor synthesizes with. Callers must
// treat it as read-only: it is shared by every estimating goroutine.
func (r *Reconstructor) Basis() *basis.Basis { return r.b }

// QR returns the cached least-squares factorization (read-only; shared by
// every estimating goroutine). Serialize it with its Factors method and
// rebuild via Restore for bit-identical estimates.
func (r *Reconstructor) QR() *mat.QR { return r.qr }

// Operator returns the folded reconstruction operator R (N×M) and its
// affine term c, satisfying x̃ = c + R·x_S. Both are read-only and shared by
// every estimating goroutine; serialize them into a v2 store record and
// rebuild via RestoreWithOperator to skip the fold on load.
func (r *Reconstructor) Operator() (*mat.Matrix, []float64) { return r.op, r.opBias }

// SensingMatrix returns Ψ̃_K (a copy).
func (r *Reconstructor) SensingMatrix() *mat.Matrix { return r.psiTilde.Clone() }

// Cond returns the 2-norm condition number κ(Ψ̃_K) — the paper's figure of
// merit for a sensor layout (eq. (5)).
func (r *Reconstructor) Cond() (float64, error) {
	return mat.Cond(r.psiTilde)
}

// checkReadings validates shape and finiteness of a reading vector.
func (r *Reconstructor) checkReadings(xS []float64) error {
	if len(xS) != len(r.sensors) {
		return fmt.Errorf("recon: %d readings for %d sensors", len(xS), len(r.sensors))
	}
	for i, v := range xS {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: reading %d is %v", ErrBadReading, i, v)
		}
	}
	return nil
}

// Coefficients solves the least-squares problem for the (possibly noisy)
// sensor readings xS (length M, °C) and returns α̂. Non-finite readings are
// rejected with ErrBadReading.
func (r *Reconstructor) Coefficients(xS []float64) ([]float64, error) {
	if err := r.checkReadings(xS); err != nil {
		return nil, err
	}
	alpha := make([]float64, r.k)
	sc := r.getScratch()
	err := r.coefficientsInto(alpha, xS, sc)
	r.scratch.Put(sc)
	if err != nil {
		return nil, err
	}
	return alpha, nil
}

// coefficientsInto solves for α̂ into dst (length K) using sc's buffers.
// The readings must already have passed checkReadings.
func (r *Reconstructor) coefficientsInto(dst, xS []float64, sc *solveScratch) error {
	for i, v := range xS {
		sc.centered[i] = v - r.meanS[i]
	}
	if err := r.qr.SolveInto(dst, sc.centered, sc.work); err != nil {
		return fmt.Errorf("recon: least squares: %w", err)
	}
	return nil
}

// Reconstruct estimates the full thermal map from sensor readings
// (Theorem 1: x̃ = Ψ_K (Ψ̃_K*Ψ̃_K)⁻¹ Ψ̃_K* x_S, realized via QR, with the
// training mean restored).
func (r *Reconstructor) Reconstruct(xS []float64) ([]float64, error) {
	out := make([]float64, r.b.N())
	if err := r.ReconstructInto(out, xS); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructInto is the allocation-free form of Reconstruct: it writes the
// estimated map into dst (length N) using the default operator arm — one
// blocked N×M matvec, zero steady-state allocations per snapshot.
func (r *Reconstructor) ReconstructInto(dst, xS []float64) error {
	return r.ReconstructArmInto(dst, xS, ArmOperator)
}

// ReconstructArmInto is ReconstructInto with an explicit implementation arm.
// ArmOperator applies the folded operator; ArmQR runs the reference
// solve-then-lift path. The two agree to the accumulation-order level
// (within ~1e-12 relative on realistic data; see the package tests for the
// pinned agreement).
func (r *Reconstructor) ReconstructArmInto(dst, xS []float64, arm Arm) error {
	if len(dst) != r.b.N() {
		return fmt.Errorf("recon: destination length %d != N %d", len(dst), r.b.N())
	}
	if err := r.checkReadings(xS); err != nil {
		return err
	}
	switch arm {
	case ArmOperator:
		mat.MulVecBiasInto(dst, r.opBias, r.op, xS)
		return nil
	case ArmQR:
		sc := r.getScratch()
		err := r.coefficientsInto(sc.alpha, xS, sc)
		if err == nil {
			r.b.SynthesizeInto(dst, sc.alpha)
		}
		r.scratch.Put(sc)
		return err
	default:
		return fmt.Errorf("%w: %d", ErrBadArm, int(arm))
	}
}

// Sample extracts the sensor readings from a full map.
func (r *Reconstructor) Sample(x []float64) []float64 {
	out := make([]float64, len(r.sensors))
	for i, s := range r.sensors {
		out[i] = x[s]
	}
	return out
}

// EvalConfig controls Evaluate.
type EvalConfig struct {
	// SNRdB, if non-zero (or NoisePresent), corrupts each sensor vector with
	// AWGN at this SNR (paper definition, per map). Use math.Inf(1) or leave
	// NoisePresent false for noiseless evaluation.
	SNRdB        float64
	NoisePresent bool
	Seed         int64
}

// Result summarizes an ensemble evaluation.
type Result struct {
	MSE    float64 // 1/(TN) ΣΣ (x−x̃)²  [°C²]
	MaxSq  float64 // max (x−x̃)²        [°C²]
	MaxAbs float64 // √MaxSq             [°C]
	Cond   float64 // κ(Ψ̃_K)
	K, M   int
}

// Evaluate reconstructs every map in ds through r and accumulates the
// paper's MSE and MAX metrics, optionally corrupting the sensor readings
// with AWGN.
func Evaluate(r *Reconstructor, ds *dataset.Dataset, cfg EvalConfig) (Result, error) {
	var ens metrics.Ensemble
	rng := rand.New(rand.NewSource(cfg.Seed))
	for j := 0; j < ds.T(); j++ {
		x := ds.Map(j)
		xS := r.Sample(x)
		if cfg.NoisePresent {
			// The paper defines SNR = ‖x‖²/‖w‖² on *zero-mean* thermal maps
			// (Sec. 3 works with centered vectors throughout), so the noise
			// power is scaled against the centered readings, not the ~70 °C
			// absolute values.
			centered := mat.SubVec(xS, r.meanS)
			w := noise.AtSNR(rng, centered, metrics.FromDB(cfg.SNRdB))
			xS = mat.AddVec(xS, w)
		}
		rec, err := r.Reconstruct(xS)
		if err != nil {
			return Result{}, fmt.Errorf("recon: map %d: %w", j, err)
		}
		ens.Add(x, rec)
	}
	cond, err := r.Cond()
	if err != nil {
		return Result{}, err
	}
	return Result{
		MSE:    ens.MSE(),
		MaxSq:  ens.MaxSq(),
		MaxAbs: ens.MaxAbs(),
		Cond:   cond,
		K:      r.k,
		M:      len(r.sensors),
	}, nil
}

// EvaluateApproximation measures the pure subspace approximation error
// (Fig. 3(a)): project every map onto the first k basis vectors and compare,
// with no sensing involved.
func EvaluateApproximation(b *basis.Basis, ds *dataset.Dataset, k int) (Result, error) {
	var ens metrics.Ensemble
	for j := 0; j < ds.T(); j++ {
		x := ds.Map(j)
		ap, err := b.Approximate(x, k)
		if err != nil {
			return Result{}, err
		}
		ens.Add(x, ap)
	}
	return Result{MSE: ens.MSE(), MaxSq: ens.MaxSq(), MaxAbs: ens.MaxAbs(), K: k}, nil
}
