package recon

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestResidualZeroInSubspace(t *testing.T) {
	// Readings synthesized inside the subspace reproject exactly: the
	// normalized residual is zero to rounding.
	k, m := 4, 8
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	x := testBasis.Synthesize([]float64{5, -3, 2, 1})
	per := make([]float64, m)
	rho, err := r.ResidualInto(per, r.Sample(x))
	if err != nil {
		t.Fatal(err)
	}
	if rho > 1e-10 {
		t.Fatalf("in-subspace residual %v, want ~0", rho)
	}
	// Readings exactly at the training mean define residual 0 (0/0 case).
	meanReadings := r.Sample(testBasis.Mean)
	rho, err = r.ResidualInto(per, meanReadings)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Fatalf("mean-reading residual %v, want exactly 0", rho)
	}
}

func TestResidualDetectsOutOfSubspace(t *testing.T) {
	// A strong component outside the trained subspace shows up as a large
	// normalized residual, and a single-sensor spike concentrates the
	// per-sensor attribution on that coordinate.
	k, m := 4, 8
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	x := testBasis.Synthesize([]float64{5, -3, 2, 1})
	readings := r.Sample(x)
	readings[3] += 40 // stuck/offset sensor
	per := make([]float64, m)
	rho, err := r.ResidualInto(per, readings)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.05 {
		t.Fatalf("spiked residual %v, want clearly nonzero", rho)
	}
	var total, at3 float64
	for i, v := range per {
		total += v * v
		if i == 3 {
			at3 = v * v
		}
	}
	if at3/total < 0.5 {
		t.Fatalf("sensor 3 carries %v of residual energy, want majority", at3/total)
	}
}

func TestResidualProjectorIdempotent(t *testing.T) {
	// P is an orthogonal projector: P² = P and ‖ρ‖ ≤ 1 for any readings.
	k, m := 3, 7
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	p := r.ResidualProjector()
	p2 := mat.Mul(p, p)
	if !p2.Equal(p, 1e-10) {
		t.Fatal("residual projector not idempotent")
	}
	per := make([]float64, m)
	for j := 0; j < testSet.T(); j += 7 {
		rho, err := r.ResidualInto(per, r.Sample(testSet.Map(j)))
		if err != nil {
			t.Fatal(err)
		}
		if rho < 0 || rho > 1+1e-12 || math.IsNaN(rho) {
			t.Fatalf("map %d: normalized residual %v outside [0,1]", j, rho)
		}
	}
}

func TestResidualIntoValidates(t *testing.T) {
	k, m := 3, 6
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResidualInto(make([]float64, m-1), make([]float64, m)); err == nil {
		t.Fatal("short destination should fail")
	}
	bad := make([]float64, m)
	bad[2] = math.NaN()
	if _, err := r.ResidualInto(make([]float64, m), bad); err == nil {
		t.Fatal("NaN reading should fail")
	}
}

func TestResidualStatsAgree(t *testing.T) {
	// The three scorers must agree: per-row ResidualInto, the batched
	// ResidualStats, and ResidualStatsFromEstimates (which reuses the
	// already-computed reconstruction instead of the residual matvec —
	// the serving hot path).
	k, m := 4, 8
	sensors := greedySensors(t, k, m)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 0, 12)
	maps := make([][]float64, 0, 12)
	for j := 0; j < testSet.T() && len(rows) < 12; j += 5 {
		row := r.Sample(testSet.Map(j))
		row[j%m] += float64(j % 13) // perturb so residuals are nonzero
		x, err := r.Reconstruct(row)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
		maps = append(maps, x)
	}
	// Reference: per-row scoring.
	per := make([]float64, m)
	wantEnergy := make([]float64, m)
	var wantRho float64
	for _, row := range rows {
		rho, err := r.ResidualInto(per, row)
		if err != nil {
			t.Fatal(err)
		}
		wantRho += rho / float64(len(rows))
		for i, v := range per {
			wantEnergy[i] += v * v
		}
	}
	checkAgainst := func(name string, rho float64, n int, energy []float64) {
		t.Helper()
		if n != len(rows) {
			t.Fatalf("%s scored %d rows, want %d", name, n, len(rows))
		}
		if math.Abs(rho-wantRho) > 1e-10*(1+wantRho) {
			t.Fatalf("%s mean rho %v, want %v", name, rho, wantRho)
		}
		for i := range energy {
			if math.Abs(energy[i]-wantEnergy[i]) > 1e-8*(1+wantEnergy[i]) {
				t.Fatalf("%s energy[%d] = %v, want %v", name, i, energy[i], wantEnergy[i])
			}
		}
	}
	energy := make([]float64, m)
	rho, n, err := r.ResidualStats(energy, rows)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst("ResidualStats", rho, n, energy)
	rho, n, err = r.ResidualStatsFromEstimates(energy, rows, maps)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst("ResidualStatsFromEstimates", rho, n, energy)

	// Skipping contract: a wrong-length row is skipped by both, not fatal.
	short := append([][]float64{make([]float64, m-1)}, rows...)
	shortMaps := append([][]float64{maps[0]}, maps...)
	if _, n, err = r.ResidualStats(energy, short); err != nil || n != len(rows) {
		t.Fatalf("ResidualStats with short row: n=%d err=%v", n, err)
	}
	if _, n, err = r.ResidualStatsFromEstimates(energy, short, shortMaps); err != nil || n != len(rows) {
		t.Fatalf("ResidualStatsFromEstimates with short row: n=%d err=%v", n, err)
	}
	// Validation contract: mismatched lengths are errors.
	if _, _, err = r.ResidualStats(make([]float64, m-1), rows); err == nil {
		t.Fatal("short energy should fail")
	}
	if _, _, err = r.ResidualStatsFromEstimates(energy, rows, maps[:1]); err == nil {
		t.Fatal("rows/maps mismatch should fail")
	}
}

func TestRestoredResidualMatchesFresh(t *testing.T) {
	// Restore (and RestoreWithOperator) must rebuild the same residual
	// projector the fresh constructor folds: detection behaves identically
	// across a save/load cycle.
	k, m := 4, 9
	sensors := greedySensors(t, k, m)
	fresh, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(testBasis, k, sensors, fresh.QR())
	if err != nil {
		t.Fatal(err)
	}
	op, bias := fresh.Operator()
	withOp, err := RestoreWithOperator(testBasis, k, sensors, fresh.QR(), op, bias)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.ResidualProjector().Equal(fresh.ResidualProjector(), 0) {
		t.Fatal("restored residual projector differs bitwise")
	}
	if !withOp.ResidualProjector().Equal(fresh.ResidualProjector(), 0) {
		t.Fatal("operator-restored residual projector differs bitwise")
	}
}
