package recon

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
)

// maxRelDiff returns max_i |a_i−b_i| / max(1, max_i |a_i|).
func maxRelDiff(a, b []float64) float64 {
	var diff, scale float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > diff {
			diff = d
		}
		if m := math.Abs(a[i]); m > scale {
			scale = m
		}
	}
	if scale < 1 {
		scale = 1
	}
	return diff / scale
}

// The two arms compute the same Theorem 1 estimate with different operation
// orders, so they agree to accumulation-order error only. 1e-12 relative is
// a loose bound for K,M ≤ 16 with a well-conditioned layout: each path does
// O(K·M) flops per cell on O(1)-magnitude basis entries, so the float64
// rounding gap is ~1e-14; 1e-12 leaves two orders of margin without ever
// masking a real algebra bug.
func TestOperatorArmAgreesWithQR(t *testing.T) {
	for _, m := range []int{5, 8, 12} {
		r, err := New(testBasis, 5, greedySensors(t, 5, m))
		if err != nil {
			t.Fatal(err)
		}
		opDst := make([]float64, r.N())
		qrDst := make([]float64, r.N())
		for j := 0; j < 20; j++ {
			xS := r.Sample(testSet.Map(j))
			if err := r.ReconstructArmInto(opDst, xS, ArmOperator); err != nil {
				t.Fatal(err)
			}
			if err := r.ReconstructArmInto(qrDst, xS, ArmQR); err != nil {
				t.Fatal(err)
			}
			if d := maxRelDiff(qrDst, opDst); d > 1e-12 {
				t.Fatalf("M=%d map %d: arms disagree by %g relative", m, j, d)
			}
		}
	}
}

func TestDefaultArmIsOperator(t *testing.T) {
	r, err := New(testBasis, 4, greedySensors(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	xS := r.Sample(testSet.Map(3))
	def := make([]float64, r.N())
	op := make([]float64, r.N())
	if err := r.ReconstructInto(def, xS); err != nil {
		t.Fatal(err)
	}
	if err := r.ReconstructArmInto(op, xS, ArmOperator); err != nil {
		t.Fatal(err)
	}
	for i := range def {
		if def[i] != op[i] {
			t.Fatalf("cell %d: default %v != operator %v", i, def[i], op[i])
		}
	}
}

func TestBatchArmMatchesSequentialBitwise(t *testing.T) {
	r, err := New(testBasis, 5, greedySensors(t, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 11 // straddles the 4-snapshot GEMM blocking
	readings := make([][]float64, batch)
	for j := range readings {
		readings[j] = r.Sample(testSet.Map(j))
	}
	for _, arm := range []Arm{ArmOperator, ArmQR} {
		dst := make([][]float64, batch)
		for j := range dst {
			dst[j] = make([]float64, r.N())
		}
		if err := r.ReconstructBatchArmInto(dst, readings, 3, arm); err != nil {
			t.Fatal(err)
		}
		single := make([]float64, r.N())
		for j := range readings {
			if err := r.ReconstructArmInto(single, readings[j], arm); err != nil {
				t.Fatal(err)
			}
			for i := range single {
				if dst[j][i] != single[i] {
					t.Fatalf("arm=%v snapshot %d cell %d: batch %v != single %v", arm, j, i, dst[j][i], single[i])
				}
			}
		}
	}
}

// The fold is deterministic: building twice from the same inputs, or
// restoring from the cached factorization, yields a bit-identical operator —
// the property that keeps persisted and re-folded operators interchangeable.
func TestFoldDeterministic(t *testing.T) {
	sensors := greedySensors(t, 5, 10)
	r1, err := New(testBasis, 5, sensors)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(testBasis, 5, sensors)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Restore(testBasis, 5, sensors, r1.QR())
	if err != nil {
		t.Fatal(err)
	}
	op1, bias1 := r1.Operator()
	for _, other := range []*Reconstructor{r2, r3} {
		op, bias := other.Operator()
		if !op.Equal(op1, 0) {
			t.Fatal("re-folded operator differs bitwise")
		}
		for i := range bias1 {
			if bias[i] != bias1[i] {
				t.Fatalf("bias[%d] differs bitwise", i)
			}
		}
	}
}

func TestRestoreWithOperator(t *testing.T) {
	sensors := greedySensors(t, 5, 10)
	r1, err := New(testBasis, 5, sensors)
	if err != nil {
		t.Fatal(err)
	}
	op, bias := r1.Operator()
	r2, err := RestoreWithOperator(testBasis, 5, sensors, r1.QR(), op, bias)
	if err != nil {
		t.Fatal(err)
	}
	xS := r1.Sample(testSet.Map(5))
	want := make([]float64, r1.N())
	got := make([]float64, r2.N())
	if err := r1.ReconstructInto(want, xS); err != nil {
		t.Fatal(err)
	}
	if err := r2.ReconstructInto(got, xS); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: restored %v != original %v", i, got[i], want[i])
		}
	}

	// Shape and nil validation.
	if _, err := RestoreWithOperator(testBasis, 5, sensors, r1.QR(), nil, bias); err == nil {
		t.Fatal("nil operator accepted")
	}
	if _, err := RestoreWithOperator(testBasis, 5, sensors, r1.QR(), mat.New(3, 3), bias); err == nil {
		t.Fatal("wrong-shape operator accepted")
	}
	if _, err := RestoreWithOperator(testBasis, 5, sensors, r1.QR(), op, bias[:4]); err == nil {
		t.Fatal("wrong-length bias accepted")
	}
}

func TestUnknownArmRejected(t *testing.T) {
	r, err := New(testBasis, 4, greedySensors(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	xS := r.Sample(testSet.Map(0))
	dst := make([]float64, r.N())
	if err := r.ReconstructArmInto(dst, xS, Arm(99)); !errors.Is(err, ErrBadArm) {
		t.Fatalf("ReconstructArmInto arm=99 err = %v", err)
	}
	if err := r.ReconstructBatchArmInto([][]float64{dst}, [][]float64{xS}, 1, Arm(99)); !errors.Is(err, ErrBadArm) {
		t.Fatalf("ReconstructBatchArmInto arm=99 err = %v", err)
	}
}
