package recon

import (
	"fmt"
	"sync"

	"repro/internal/mat"
)

// Batch reconstruction: many independent snapshots fanned out over a worker
// pool. Each snapshot is one least-squares solve (Theorem 1), and solves
// share the cached QR factorization read-only, so the batch parallelizes
// embarrassingly — contiguous snapshot ranges are sharded across workers via
// mat.ParallelChunks and each worker draws its scratch from the
// reconstructor's pool.

// BatchError reports the first snapshot of a batch that failed validation or
// solving. Earlier snapshots may already have been written to the output;
// snapshots after the failed one are in an unspecified state.
type BatchError struct {
	Index int // snapshot position within the batch
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("recon: snapshot %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause (e.g. ErrBadReading) to errors.Is.
func (e *BatchError) Unwrap() error { return e.Err }

// ReconstructBatch estimates one full map per reading vector, fanning the
// batch out over workers goroutines (0 = NumCPU). It allocates the output;
// use ReconstructBatchInto on a reused buffer for the allocation-free path.
func (r *Reconstructor) ReconstructBatch(readings [][]float64, workers int) ([][]float64, error) {
	out := make([][]float64, len(readings))
	n := r.b.N()
	backing := make([]float64, len(readings)*n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	if err := r.ReconstructBatchInto(out, readings, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructBatchInto writes the estimate for readings[i] into dst[i]
// (each length N) using the default operator arm: each worker's shard runs
// as one blocked GEMM (four snapshots per operator-row load). Scratch-free
// and allocation-free in the steady state. On failure the first offending
// snapshot is reported as a *BatchError; remaining snapshots in other shards
// may still have been reconstructed.
func (r *Reconstructor) ReconstructBatchInto(dst [][]float64, readings [][]float64, workers int) error {
	return r.ReconstructBatchArmInto(dst, readings, workers, ArmOperator)
}

// ReconstructBatchArmInto is ReconstructBatchInto with an explicit
// implementation arm (see Arm).
func (r *Reconstructor) ReconstructBatchArmInto(dst [][]float64, readings [][]float64, workers int, arm Arm) error {
	if len(dst) != len(readings) {
		return fmt.Errorf("recon: %d outputs for %d snapshots", len(dst), len(readings))
	}
	if arm != ArmOperator && arm != ArmQR {
		return fmt.Errorf("%w: %d", ErrBadArm, int(arm))
	}
	if len(readings) == 0 {
		return nil
	}
	// Validate everything up front so a bad snapshot in one shard cannot race
	// a half-written batch: the common case (all valid) then runs the workers
	// error-free.
	n := r.b.N()
	for i, xS := range readings {
		if len(dst[i]) != n {
			return &BatchError{Index: i, Err: fmt.Errorf("recon: destination length %d != N %d", len(dst[i]), n)}
		}
		if err := r.checkReadings(xS); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	if arm == ArmOperator {
		// Readings are already validated, and the operator arm cannot fail
		// per-snapshot: each shard is one blocked GEMM.
		mat.ParallelChunks(len(readings), workers, func(lo, hi int) {
			mat.MulVecBiasBatchInto(dst[lo:hi], r.opBias, r.op, readings[lo:hi])
		})
		return nil
	}
	var firstErr *BatchError
	var mu sync.Mutex
	mat.ParallelChunks(len(readings), workers, func(lo, hi int) {
		sc := r.getScratch()
		defer r.scratch.Put(sc)
		for i := lo; i < hi; i++ {
			if err := r.coefficientsInto(sc.alpha, readings[i], sc); err != nil {
				mu.Lock()
				if firstErr == nil || i < firstErr.Index {
					firstErr = &BatchError{Index: i, Err: err}
				}
				mu.Unlock()
				return
			}
			r.b.SynthesizeInto(dst[i], sc.alpha)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	return nil
}
