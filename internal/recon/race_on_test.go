//go:build race

package recon

// raceEnabled reports whether this test binary was built with -race.
// sync.Pool intentionally randomizes its per-P fast path under the race
// detector (to shake out misuse), so pool-backed zero-allocation pins are
// only meaningful without it.
const raceEnabled = true
