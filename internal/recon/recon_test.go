package recon

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/place"
)

var testSet = func() *dataset.Dataset {
	ds, err := dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
		Grid:      floorplan.Grid{W: 12, H: 10},
		Snapshots: 100,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	return ds
}()

var testBasis = func() *basis.Basis {
	b, err := basis.TrainPCA(testSet, 10, basis.PCAConfig{Seed: 3})
	if err != nil {
		panic(err)
	}
	return b
}()

func greedySensors(t *testing.T, k, m int) []int {
	t.Helper()
	psi, err := testBasis.PsiK(k)
	if err != nil {
		t.Fatal(err)
	}
	s, err := (&place.Greedy{}).Allocate(place.Input{Psi: psi, Grid: testSet.Grid, M: m})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(testBasis, 5, []int{1, 2, 3}); !errors.Is(err, ErrTooFewSensors) {
		t.Fatalf("M<K err = %v", err)
	}
	if _, err := New(testBasis, 0, []int{1}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := New(testBasis, 2, []int{1, 99999}); err == nil {
		t.Fatal("out-of-range sensor should fail")
	}
	// Duplicate sensors are rejected outright (before any rank check): a
	// doubled row silently degrades conditioning below what M suggests.
	if _, err := New(testBasis, 2, []int{5, 5}); !errors.Is(err, ErrDuplicateSensor) {
		t.Fatalf("duplicate-sensor err = %v", err)
	}
	if _, err := New(testBasis, 2, []int{1, 5, 9, 5}); !errors.Is(err, ErrDuplicateSensor) {
		t.Fatalf("duplicate-sensor (M>K) err = %v", err)
	}
}

func TestExactRecoveryInSubspace(t *testing.T) {
	// A map synthesized inside the subspace is recovered exactly from M=K
	// well-placed sensors (Theorem 1, noiseless).
	k := 4
	sensors := greedySensors(t, k, k)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	alpha := []float64{5, -3, 2, 1}
	x := testBasis.Synthesize(alpha)
	rec, err := r.Reconstruct(r.Sample(x))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(rec[i]-x[i]) > 1e-8 {
			t.Fatalf("cell %d: %v vs %v", i, rec[i], x[i])
		}
	}
}

func TestAllSensorsEqualsProjection(t *testing.T) {
	// Sensing every cell reduces least squares to orthogonal projection.
	k := 5
	all := make([]int, testBasis.N())
	for i := range all {
		all[i] = i
	}
	r, err := New(testBasis, k, all)
	if err != nil {
		t.Fatal(err)
	}
	x := testSet.Map(11)
	rec, err := r.Reconstruct(x)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := testBasis.Approximate(x, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		if math.Abs(rec[i]-proj[i]) > 1e-9 {
			t.Fatalf("cell %d: reconstruction %v != projection %v", i, rec[i], proj[i])
		}
	}
}

func TestCoefficientsMatchTheorem1(t *testing.T) {
	// α̂ = (Ψ̃*Ψ̃)⁻¹Ψ̃* x_S — compare the QR path against the normal equations.
	k := 3
	sensors := greedySensors(t, k, 6)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	x := testSet.Map(20)
	xS := r.Sample(x)
	got, err := r.Coefficients(xS)
	if err != nil {
		t.Fatal(err)
	}
	psiT := r.SensingMatrix()
	centered := make([]float64, len(sensors))
	for i, s := range sensors {
		centered[i] = x[s] - testBasis.Mean[s]
	}
	want, err := mat.SolveSPD(mat.Gram(psiT), mat.MulVecT(psiT, centered))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("α[%d]: QR %v vs normal equations %v", i, got[i], want[i])
		}
	}
}

func TestReconstructionErrorDecreasesWithM(t *testing.T) {
	k := 4
	var prev float64 = math.Inf(1)
	for _, m := range []int{4, 8, 16} {
		r, err := New(testBasis, k, greedySensors(t, k, m))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(r, testSet, EvalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// Not strictly monotone in theory, but with greedy placement more
		// sensors should never hurt by much; allow 10% slack.
		if res.MSE > prev*1.1 {
			t.Fatalf("M=%d MSE %v much worse than smaller M %v", m, res.MSE, prev)
		}
		prev = res.MSE
	}
}

func TestNoiseDegradesGracefully(t *testing.T) {
	k := 4
	m := 16
	r, err := New(testBasis, k, greedySensors(t, k, m))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Evaluate(r, testSet, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prevMSE := clean.MSE
	for _, snr := range []float64{50, 30, 15} {
		res, err := Evaluate(r, testSet, EvalConfig{SNRdB: snr, NoisePresent: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.MSE < prevMSE*0.5 {
			t.Fatalf("SNR %v dB: MSE %v implausibly better than cleaner run %v", snr, res.MSE, prevMSE)
		}
		prevMSE = res.MSE
	}
	// At 50 dB the noisy error must be close to noiseless.
	res50, err := Evaluate(r, testSet, EvalConfig{SNRdB: 50, NoisePresent: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res50.MSE > clean.MSE*3+1e-9 {
		t.Fatalf("50 dB MSE %v too far above noiseless %v", res50.MSE, clean.MSE)
	}
}

func TestCondReportsSensibleValues(t *testing.T) {
	k := 4
	r, err := New(testBasis, k, greedySensors(t, k, 8))
	if err != nil {
		t.Fatal(err)
	}
	cond, err := r.Cond()
	if err != nil {
		t.Fatal(err)
	}
	if cond < 1 || math.IsInf(cond, 1) {
		t.Fatalf("κ = %v", cond)
	}
}

func TestEvaluateApproximationMatchesDirect(t *testing.T) {
	k := 6
	res, err := EvaluateApproximation(testBasis, testSet, k)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute directly for one map to cross-check plumbing.
	x := testSet.Map(0)
	ap, err := testBasis.Approximate(x, k)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range x {
		d := math.Abs(x[i] - ap[i])
		if d > worst {
			worst = d
		}
	}
	if res.MaxAbs < worst-1e-12 {
		t.Fatalf("ensemble MaxAbs %v below single-map max %v", res.MaxAbs, worst)
	}
	if res.MSE <= 0 {
		t.Fatal("approximation MSE should be positive for K < N")
	}
}

func TestReconstructChecksReadingCount(t *testing.T) {
	k := 3
	r, err := New(testBasis, k, greedySensors(t, k, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reconstruct([]float64{1, 2}); err == nil {
		t.Fatal("expected reading-count error")
	}
}

func TestSensorsAccessors(t *testing.T) {
	k := 3
	sensors := greedySensors(t, k, 5)
	r, err := New(testBasis, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 3 || r.M() != 5 {
		t.Fatalf("K=%d M=%d", r.K(), r.M())
	}
	got := r.Sensors()
	got[0] = -1 // mutation must not leak
	if r.Sensors()[0] == -1 {
		t.Fatal("Sensors leaked internal slice")
	}
}

func TestMeanHandling(t *testing.T) {
	// Reconstructing the mean map itself (zero coefficients) must return
	// the mean exactly.
	k := 4
	r, err := New(testBasis, k, greedySensors(t, k, 8))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Reconstruct(r.Sample(testBasis.Mean))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		if math.Abs(rec[i]-testBasis.Mean[i]) > 1e-8 {
			t.Fatalf("mean reconstruction off at %d: %v vs %v", i, rec[i], testBasis.Mean[i])
		}
	}
}

func TestReconstructorConcurrentUse(t *testing.T) {
	// The doc promises safety for concurrent use after construction;
	// exercise it under the race detector.
	k := 4
	r, err := New(testBasis, k, greedySensors(t, k, 8))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				x := testSet.Map((w*20 + j) % testSet.T())
				if _, err := r.Reconstruct(r.Sample(x)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
