package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

func TestBasisVectorsOrthonormal(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 5}
	freqs := ZigZag(g, 10)
	b := BasisMatrix(g, freqs)
	if !mat.Gram(b).Equal(mat.Identity(10), 1e-10) {
		t.Fatal("DCT basis vectors not orthonormal")
	}
}

func TestBasisVectorDCIsConstant(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 3}
	v := BasisVector(g, Freq{0, 0})
	want := 1 / math.Sqrt(float64(g.N()))
	for _, x := range v {
		if !almostEqual(x, want, 1e-12) {
			t.Fatalf("DC basis element %v, want %v", x, want)
		}
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasisVectorOutOfRangePanics(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 3}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BasisVector(g, Freq{3, 0})
}

func TestZigZagOrder(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 4}
	zz := ZigZag(g, 6)
	want := []Freq{{0, 0}, {0, 1}, {1, 0}, {2, 0}, {1, 1}, {0, 2}}
	if len(zz) != len(want) {
		t.Fatalf("len = %d", len(zz))
	}
	for i := range want {
		if zz[i] != want[i] {
			t.Fatalf("zigzag[%d] = %v, want %v", i, zz[i], want[i])
		}
	}
}

func TestZigZagCoversAll(t *testing.T) {
	g := floorplan.Grid{W: 5, H: 3}
	zz := ZigZag(g, g.N())
	if len(zz) != g.N() {
		t.Fatalf("covers %d of %d", len(zz), g.N())
	}
	seen := make(map[Freq]bool)
	for _, f := range zz {
		if seen[f] {
			t.Fatalf("duplicate frequency %v", f)
		}
		if f.U < 0 || f.U >= g.H || f.V < 0 || f.V >= g.W {
			t.Fatalf("frequency %v out of range", f)
		}
		seen[f] = true
	}
	// Requesting more than N clamps.
	if len(ZigZag(g, g.N()+100)) != g.N() {
		t.Fatal("ZigZag did not clamp")
	}
}

func TestZigZagNonDecreasingDiagonals(t *testing.T) {
	g := floorplan.Grid{W: 8, H: 8}
	zz := ZigZag(g, 30)
	for i := 1; i < len(zz); i++ {
		if zz[i].U+zz[i].V < zz[i-1].U+zz[i-1].V {
			t.Fatalf("diagonal order violated at %d: %v after %v", i, zz[i], zz[i-1])
		}
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	g := floorplan.Grid{W: 7, H: 6}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rec := Inverse2D(g, Transform2D(g, x))
	for i := range x {
		if !almostEqual(rec[i], x[i], 1e-10) {
			t.Fatalf("round trip failed at %d: %v vs %v", i, rec[i], x[i])
		}
	}
}

func TestTransformParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	g := floorplan.Grid{W: 5, H: 9}
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := Transform2D(g, x)
	if !almostEqual(mat.Norm2(x), mat.Norm2(c), 1e-10) {
		t.Fatalf("Parseval violated: %v vs %v", mat.Norm2(x), mat.Norm2(c))
	}
}

func TestTransformMatchesBasisVectorInnerProduct(t *testing.T) {
	// coef[f] must equal ⟨x, φ_f⟩.
	g := floorplan.Grid{W: 4, H: 5}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := Transform2D(g, x)
	for _, f := range []Freq{{0, 0}, {1, 0}, {0, 2}, {3, 3}, {4, 1}} {
		want := mat.Dot(x, BasisVector(g, f))
		got := c[Coefficient(g, f)]
		if !almostEqual(got, want, 1e-10) {
			t.Fatalf("coef %v = %v, want %v", f, got, want)
		}
	}
}

func TestTransformDeltaFunction(t *testing.T) {
	// Transform of a pure basis function is a unit impulse at its frequency.
	g := floorplan.Grid{W: 6, H: 4}
	f := Freq{2, 3}
	c := Transform2D(g, BasisVector(g, f))
	for i, v := range c {
		want := 0.0
		if i == Coefficient(g, f) {
			want = 1
		}
		if !almostEqual(v, want, 1e-10) {
			t.Fatalf("coef[%d] = %v, want %v", i, v, want)
		}
	}
}

// Property: round trip is exact for random grids and maps.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := floorplan.Grid{W: 2 + r.Intn(9), H: 2 + r.Intn(9)}
		x := make([]float64, g.N())
		for i := range x {
			x[i] = r.NormFloat64() * 50
		}
		rec := Inverse2D(g, Transform2D(g, x))
		for i := range x {
			if math.Abs(rec[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// Property: transform is linear.
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := floorplan.Grid{W: 2 + r.Intn(6), H: 2 + r.Intn(6)}
		x := make([]float64, g.N())
		y := make([]float64, g.N())
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		a, b := r.NormFloat64(), r.NormFloat64()
		comb := make([]float64, g.N())
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		cx, cy, cc := Transform2D(g, x), Transform2D(g, y), Transform2D(g, comb)
		for i := range cc {
			if math.Abs(cc[i]-(a*cx[i]+b*cy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
