// Package dct implements the orthonormal 2-D discrete cosine transform
// (DCT-II) used by the k-LSE baseline (Nowroz, Cochran, Reda — DAC 2010):
// low-frequency DCT basis vectors serve as the a-priori thermal-map subspace
// that EigenMaps improves upon.
package dct

import (
	"math"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Freq identifies one 2-D DCT basis function by its vertical (U, along rows)
// and horizontal (V, along columns) frequency indices.
type Freq struct {
	U, V int
}

// BasisVector returns the vectorized (column-stacked, matching
// floorplan.Grid.Index) orthonormal 2-D DCT basis function for frequency f
// on grid g.
func BasisVector(g floorplan.Grid, f Freq) []float64 {
	if f.U < 0 || f.U >= g.H || f.V < 0 || f.V >= g.W {
		panic("dct: frequency out of range")
	}
	au := alpha(f.U, g.H)
	av := alpha(f.V, g.W)
	out := make([]float64, g.N())
	for col := 0; col < g.W; col++ {
		cv := math.Cos(math.Pi * float64(2*col+1) * float64(f.V) / float64(2*g.W))
		for row := 0; row < g.H; row++ {
			cu := math.Cos(math.Pi * float64(2*row+1) * float64(f.U) / float64(2*g.H))
			out[g.Index(row, col)] = au * av * cu * cv
		}
	}
	return out
}

// alpha is the DCT-II orthonormalization factor.
func alpha(k, n int) float64 {
	if k == 0 {
		return math.Sqrt(1 / float64(n))
	}
	return math.Sqrt(2 / float64(n))
}

// BasisMatrix assembles the N×len(freqs) matrix whose columns are the basis
// vectors for freqs, in order.
func BasisMatrix(g floorplan.Grid, freqs []Freq) *mat.Matrix {
	out := mat.New(g.N(), len(freqs))
	for j, f := range freqs {
		out.SetCol(j, BasisVector(g, f))
	}
	return out
}

// ZigZag returns the first k frequencies in JPEG-style zig-zag order
// (ascending u+v diagonals, alternating direction), the standard
// "low-pass" selection.
func ZigZag(g floorplan.Grid, k int) []Freq {
	if k > g.N() {
		k = g.N()
	}
	out := make([]Freq, 0, k)
	for s := 0; s <= g.H+g.W-2 && len(out) < k; s++ {
		if s%2 == 0 {
			// Walk the diagonal upward: u descending.
			for u := min(s, g.H-1); u >= 0 && len(out) < k; u-- {
				if v := s - u; v < g.W {
					out = append(out, Freq{U: u, V: v})
				}
			}
		} else {
			for v := min(s, g.W-1); v >= 0 && len(out) < k; v-- {
				if u := s - v; u < g.H {
					out = append(out, Freq{U: u, V: v})
				}
			}
		}
	}
	return out
}

// Transform2D computes all N DCT-II coefficients of the vectorized map x on
// grid g, returned indexed by Index2 (column stacking of the (u,v) plane with
// the same convention: coef[v*H+u]). It uses the separable row/column
// decomposition, O(N·(W+H)).
func Transform2D(g floorplan.Grid, x []float64) []float64 {
	if len(x) != g.N() {
		panic("dct: map length mismatch")
	}
	// First pass: 1-D DCT along rows (within each column).
	tmp := make([]float64, g.N())
	colBuf := make([]float64, g.H)
	outBuf := make([]float64, g.H)
	for col := 0; col < g.W; col++ {
		for row := 0; row < g.H; row++ {
			colBuf[row] = x[g.Index(row, col)]
		}
		dct1D(colBuf, outBuf)
		for u := 0; u < g.H; u++ {
			tmp[g.Index(u, col)] = outBuf[u]
		}
	}
	// Second pass: 1-D DCT along columns (within each row).
	out := make([]float64, g.N())
	rowBuf := make([]float64, g.W)
	rowOut := make([]float64, g.W)
	for u := 0; u < g.H; u++ {
		for col := 0; col < g.W; col++ {
			rowBuf[col] = tmp[g.Index(u, col)]
		}
		dct1D(rowBuf, rowOut)
		for v := 0; v < g.W; v++ {
			out[g.Index(u, v)] = rowOut[v]
		}
	}
	return out
}

// Inverse2D reconstructs the map from a full coefficient vector produced by
// Transform2D.
func Inverse2D(g floorplan.Grid, coef []float64) []float64 {
	if len(coef) != g.N() {
		panic("dct: coefficient length mismatch")
	}
	tmp := make([]float64, g.N())
	rowBuf := make([]float64, g.W)
	rowOut := make([]float64, g.W)
	for u := 0; u < g.H; u++ {
		for v := 0; v < g.W; v++ {
			rowBuf[v] = coef[g.Index(u, v)]
		}
		idct1D(rowBuf, rowOut)
		for col := 0; col < g.W; col++ {
			tmp[g.Index(u, col)] = rowOut[col]
		}
	}
	out := make([]float64, g.N())
	colBuf := make([]float64, g.H)
	colOut := make([]float64, g.H)
	for col := 0; col < g.W; col++ {
		for u := 0; u < g.H; u++ {
			colBuf[u] = tmp[g.Index(u, col)]
		}
		idct1D(colBuf, colOut)
		for row := 0; row < g.H; row++ {
			out[g.Index(row, col)] = colOut[row]
		}
	}
	return out
}

// dct1D computes the orthonormal DCT-II of in into out (same length).
func dct1D(in, out []float64) {
	n := len(in)
	for k := 0; k < n; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += in[i] * math.Cos(math.Pi*float64(2*i+1)*float64(k)/float64(2*n))
		}
		out[k] = alpha(k, n) * s
	}
}

// idct1D computes the inverse (DCT-III with orthonormal scaling).
func idct1D(in, out []float64) {
	n := len(in)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			s += alpha(k, n) * in[k] * math.Cos(math.Pi*float64(2*i+1)*float64(k)/float64(2*n))
		}
		out[i] = s
	}
}

// Coefficient returns the index of frequency f in Transform2D's output.
func Coefficient(g floorplan.Grid, f Freq) int {
	return g.Index(f.U, f.V)
}
