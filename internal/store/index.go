package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The store index is what makes warm-starting a million-monitor store
// O(resident + one index read) instead of O(corpus): one file beside the
// monitor records summarizing every record well enough to register it,
// route requests to it and list it — without opening it. The daemon reads
// the index at boot, registers a lazy stub per entry, and pages the full
// .emon record in on the monitor's first touch.
//
// The index reuses the EMST envelope idiom with its own magic:
//
//	magic   "EMSI"            4 bytes
//	version uint32 LE         index format version (currently 1)
//	length  uint64 LE         payload byte count
//	payload length bytes
//	crc     uint32 LE         IEEE CRC-32 of the payload
//
// The payload is a uint32 entry count followed by the entries, each a fixed
// field sequence (strings are u32-length-prefixed UTF-8, integers u32 LE):
// id, file, train key, floorplan, K, M, grid W, grid H, flags (bit 0 =
// tracking). Entries are sorted by monitor ID, so encoding is deterministic
// and two replicas writing the same logical index write the same bytes.
//
// The index is advisory, never authoritative: every decode failure (or a
// missing index) downgrades the boot to a directory scan that rebuilds it,
// and an entry that disagrees with its record on disk is detected at
// page-in time. Losing the index costs one O(corpus) boot, never data.

const (
	indexMagic = "EMSI"
	// IndexVersion is the index format version SaveIndex writes.
	IndexVersion = 1
	// maxIndexEntries bounds the entry count a corrupt header can claim
	// before any allocation happens (~10^8 monitors is far beyond the
	// design target of 10^6).
	maxIndexEntries = 1 << 27
)

// IndexEntry summarizes one monitor record: everything the daemon needs to
// register, list and route a monitor without reading its record file.
type IndexEntry struct {
	// ID is the monitor id ("mon-42").
	ID string
	// File is the record's filename relative to the store directory.
	File string
	// TrainKey is the hash naming the monitor's model record (the
	// "model-<TrainKey>.emod" file), linking the monitor to the trained
	// model it was placed on.
	TrainKey string
	// Floorplan is the die name ("t1", "athlon", "manycore-256c", ...).
	Floorplan string
	// K and M are the subspace dimension and sensor count.
	K, M int
	// GridW and GridH are the thermal-map grid dimensions.
	GridW, GridH int
	// Tracking records whether the monitor was created with a Kalman
	// tracker.
	Tracking bool
}

// Index is the boot-time summary of a monitor store: one entry per monitor
// record, sorted by ID.
type Index struct {
	Entries []IndexEntry
}

// indexFlagTracking is the tracking bit in an entry's flags word.
const indexFlagTracking = 1 << 0

// EncodeIndex writes idx in the index format. Entries are encoded in ID
// order regardless of their order in idx, so the bytes are a pure function
// of the logical index.
func EncodeIndex(w io.Writer, idx *Index) error {
	entries := append([]IndexEntry(nil), idx.Entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	var payload bytes.Buffer
	putU32(&payload, uint32(len(entries)))
	for _, e := range entries {
		putString(&payload, e.ID)
		putString(&payload, e.File)
		putString(&payload, e.TrainKey)
		putString(&payload, e.Floorplan)
		putU32(&payload, uint32(e.K))
		putU32(&payload, uint32(e.M))
		putU32(&payload, uint32(e.GridW))
		putU32(&payload, uint32(e.GridH))
		var flags uint32
		if e.Tracking {
			flags |= indexFlagTracking
		}
		putU32(&payload, flags)
	}
	head := make([]byte, 0, 16)
	head = append(head, indexMagic...)
	head = binary.LittleEndian.AppendUint32(head, IndexVersion)
	head = binary.LittleEndian.AppendUint64(head, uint64(payload.Len()))
	if _, err := w.Write(head); err != nil {
		return &Error{Kind: KindIO, Detail: "writing index header", Err: err}
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return &Error{Kind: KindIO, Detail: "writing index payload", Err: err}
	}
	crc := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(binary.LittleEndian.AppendUint32(nil, crc)); err != nil {
		return &Error{Kind: KindIO, Detail: "writing index checksum", Err: err}
	}
	return nil
}

// DecodeIndex reads one index. The error contract matches Decode: hostile
// bytes yield a typed *Error (ErrBadMagic, ErrUnknownVersion, ErrTruncated,
// ErrChecksum, ErrInvalid), never a panic — and the caller is expected to
// treat any of them as "rebuild the index from a directory scan".
func DecodeIndex(r io.Reader) (*Index, error) {
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "index shorter than the 4-byte magic")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading index magic", Err: err}
	}
	if string(mg[:]) != indexMagic {
		return nil, errf(KindBadMagic, "index magic %q", mg[:])
	}
	head := make([]byte, 12)
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "index header cut short")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading index header", Err: err}
	}
	version := binary.LittleEndian.Uint32(head[0:4])
	if version != IndexVersion {
		return nil, errf(KindUnknownVersion, "index version %d (this build reads %d)", version, IndexVersion)
	}
	length := binary.LittleEndian.Uint64(head[4:12])
	if length > maxPayload {
		return nil, errf(KindInvalid, "index payload length %d exceeds cap %d", length, int64(maxPayload))
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "index payload: want %d bytes", length)
		}
		return nil, &Error{Kind: KindIO, Detail: "reading index payload", Err: err}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "index checksum missing")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading index checksum", Err: err}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, errf(KindChecksum, "index crc32 %08x, header says %08x", got, want)
	}
	return parseIndexPayload(payload)
}

// parseIndexPayload parses a checksum-verified index payload.
func parseIndexPayload(payload []byte) (*Index, error) {
	p := &reader{buf: payload}
	count, err := p.u32("index entry count")
	if err != nil {
		return nil, err
	}
	if count > maxIndexEntries {
		return nil, errf(KindInvalid, "implausible index entry count %d", count)
	}
	idx := &Index{Entries: make([]IndexEntry, 0, count)}
	seen := make(map[string]struct{}, count)
	for i := uint32(0); i < count; i++ {
		var e IndexEntry
		if e.ID, err = p.string("index id"); err != nil {
			return nil, err
		}
		if e.File, err = p.string("index file"); err != nil {
			return nil, err
		}
		if e.TrainKey, err = p.string("index train key"); err != nil {
			return nil, err
		}
		if e.Floorplan, err = p.string("index floorplan"); err != nil {
			return nil, err
		}
		var k, m, gw, gh, flags uint32
		if k, err = p.u32("index K"); err != nil {
			return nil, err
		}
		if m, err = p.u32("index M"); err != nil {
			return nil, err
		}
		if gw, err = p.u32("index grid W"); err != nil {
			return nil, err
		}
		if gh, err = p.u32("index grid H"); err != nil {
			return nil, err
		}
		if flags, err = p.u32("index flags"); err != nil {
			return nil, err
		}
		if flags&^uint32(indexFlagTracking) != 0 {
			return nil, errf(KindInvalid, "unknown index entry flags %#x", flags)
		}
		e.K, e.M, e.GridW, e.GridH = int(k), int(m), int(gw), int(gh)
		e.Tracking = flags&indexFlagTracking != 0
		if e.ID == "" || e.File == "" {
			return nil, errf(KindInvalid, "index entry %d has empty id or file", i)
		}
		if filepath.Base(e.File) != e.File {
			return nil, errf(KindInvalid, "index entry %q names a non-local file %q", e.ID, e.File)
		}
		if _, dup := seen[e.ID]; dup {
			return nil, errf(KindInvalid, "duplicate index entry %q", e.ID)
		}
		seen[e.ID] = struct{}{}
		idx.Entries = append(idx.Entries, e)
	}
	if p.off != len(p.buf) {
		return nil, errf(KindInvalid, "%d trailing index payload bytes", len(p.buf)-p.off)
	}
	return idx, nil
}

// SaveIndexFile writes idx to path atomically (temp file + fsync + rename),
// like SaveFile: a crash mid-write leaves the old index or none, never a
// torn one.
func SaveIndexFile(path string, idx *Index) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return &Error{Kind: KindIO, Detail: "creating temp index file", Err: err}
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeIndex(tmp, idx); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return &Error{Kind: KindIO, Detail: "syncing temp index file", Err: err}
	}
	if err := tmp.Close(); err != nil {
		return &Error{Kind: KindIO, Detail: "closing temp index file", Err: err}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return &Error{Kind: KindIO, Detail: "renaming index into place", Err: err}
	}
	return nil
}

// LoadIndexFile reads an index written by SaveIndexFile.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &Error{Kind: KindIO, Detail: "opening index file", Err: err}
	}
	defer f.Close()
	return DecodeIndex(f)
}
