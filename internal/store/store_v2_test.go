package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/mat"
	"repro/internal/recon"
)

// operatorRecord returns trainSmall's record with the folded operator
// section attached, as the daemon persists it.
func operatorRecord(t *testing.T) *Record {
	t.Helper()
	_, rec := trainSmall(t)
	r, err := recon.Restore(rec.Basis, rec.K, rec.Sensors, rec.QR)
	if err != nil {
		t.Fatal(err)
	}
	rec.Op, rec.OpBias = r.Operator()
	return rec
}

func TestOperatorRoundTrip(t *testing.T) {
	rec := operatorRecord(t)
	got, err := Decode(bytes.NewReader(encodeToBytes(t, rec)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Op == nil || got.OpBias == nil {
		t.Fatal("operator section lost in round trip")
	}
	if !bytes.Equal(floatBits(got.Op.Data()), floatBits(rec.Op.Data())) {
		t.Fatal("operator bits changed")
	}
	if !bytes.Equal(floatBits(got.OpBias), floatBits(rec.OpBias)) {
		t.Fatal("operator bias bits changed")
	}
	// A monitor restored from the persisted operator estimates bit-identically
	// to one that re-folds from the QR factors.
	refolded, err := recon.Restore(got.Basis, got.K, got.Sensors, got.QR)
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := recon.RestoreWithOperator(got.Basis, got.K, got.Sensors, got.QR, got.Op, got.OpBias)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]float64, len(got.Sensors))
	for i := range readings {
		readings[i] = 60 + 2*float64(i)
	}
	a, err := refolded.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := adopted.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(floatBits(a), floatBits(b)) {
		t.Fatal("adopted operator estimates differ from re-folded")
	}
}

// Version 1 files — written before the operator section existed — must still
// decode. The CRC covers only the payload (not the envelope version field),
// and a payload without the operator section is byte-identical under both
// versions, so rewriting the version word of an operator-free v2 encode
// reproduces a genuine v1 file exactly.
func TestDecodeVersion1Record(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec) // no operator section
	v1 := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(v1[4:8], 1)
	got, err := Decode(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if !got.HasMonitor() || got.Op != nil {
		t.Fatalf("v1 record: monitor=%v op=%v", got.HasMonitor(), got.Op)
	}
	if got.K != rec.K || len(got.Sensors) != len(rec.Sensors) {
		t.Fatalf("v1 record content mismatch: K=%d M=%d", got.K, len(got.Sensors))
	}
}

// A version 1 envelope whose flags claim an operator section is a forgery
// (v1 writers predate the flag): KindInvalid, not a crash or a silent read.
func TestDecodeVersion1RejectsOperatorFlag(t *testing.T) {
	rec := operatorRecord(t)
	data := encodeToBytes(t, rec)
	v1 := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(v1[4:8], 1)
	decodeErr(t, v1, ErrInvalid)
}

func TestEncodeRejectsPartialOperatorSection(t *testing.T) {
	rec := operatorRecord(t)
	var buf bytes.Buffer
	half := *rec
	half.OpBias = nil
	if err := Encode(&buf, &half); !errors.Is(err, ErrInvalid) {
		t.Fatalf("operator-without-bias error %v, want ErrInvalid", err)
	}
	orphan := *rec
	orphan.Sensors, orphan.K, orphan.QR = nil, 0, nil
	if err := Encode(&buf, &orphan); !errors.Is(err, ErrInvalid) {
		t.Fatalf("operator-without-monitor error %v, want ErrInvalid", err)
	}
	short := *rec
	short.OpBias = rec.OpBias[:3]
	if err := Encode(&buf, &short); !errors.Is(err, ErrInvalid) {
		t.Fatalf("short-bias error %v, want ErrInvalid", err)
	}
}

func TestDecodeRejectsWrongShapeOperator(t *testing.T) {
	rec := operatorRecord(t)
	wrong := *rec
	wrong.Op = mat.New(3, 3)
	wrong.OpBias = make([]float64, 3)
	decodeErr(t, encodeToBytes(t, &wrong), ErrInvalid)
}

func TestDecodeRejectsOversizedOperatorShape(t *testing.T) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, 1<<20)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<20)
	p := &reader{buf: buf}
	if err := p.operatorSection(&Record{}); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("error %v, want ErrInvalid", err)
	}
}
