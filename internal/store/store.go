// Package store is the durable serving layer's codec: a versioned,
// checksummed binary format that round-trips everything a trained monitor
// needs to serve — the floorplan, the PCA basis, the per-cell training
// energy, the sensor placement, the cached least-squares (QR) factorization
// and the training key — so the expensive design-time pipeline (ensemble
// simulation, PCA, greedy placement) runs once and its product is reloaded
// in microseconds instead of recomputed in seconds.
//
// # Format
//
// An envelope frames a single payload:
//
//	magic   "EMST"            4 bytes
//	version uint32 LE         format version (currently 3)
//	length  uint64 LE         payload byte count
//	payload length bytes
//	crc     uint32 LE         IEEE CRC-32 of the payload
//
// The payload is a fixed sequence of sections: a strict-decoded
// JSON metadata blob (the training key, solver/noise configuration and
// serving options), a presence bitmap, then the optional floorplan, the
// basis (in the basis package's own format, length-prefixed), the optional
// energy map and the optional monitor section (K, sensors, packed QR
// factors). Version 2 adds one optional section after the monitor: the
// folded reconstruction operator (N×M matrix plus length-N affine term),
// so a warm-started daemon skips even the deterministic re-fold. Version 3
// adds one more optional section after the operator: the drift block —
// the monitor's training residual calibration (the thresholds its drift
// detector alarms against) and its adaptation lineage (parent train-key,
// adaptation generation, and the original client-facing sensor list, which
// differs from the serving sensors once a faulty sensor has been excluded).
// A payload without the newer sections is byte-identical under all three
// versions, and this build still decodes version 1 and 2 files; missing
// sections are simply recomputed (operator) or absent (drift — the monitor
// serves uncalibrated).
//
// # Decoding contract
//
// Decode is strict and never panics on hostile bytes. Every failure is a
// *store.Error whose Kind separates the cases callers handle differently,
// with errors.Is sentinels for each: ErrBadMagic (not a store file),
// ErrUnknownVersion (written by a future format — the file is fine, this
// binary is too old), ErrTruncated (the envelope ends early),
// ErrChecksum (envelope intact but the payload bits are damaged) and
// ErrInvalid (the payload parses but describes an impossible record, e.g. a
// sensor index outside the basis grid or metadata claiming a different
// grid than the basis carries — a cross-floorplan load).
//
// Floats round-trip bit-exactly (fixed-width little-endian), which is what
// makes a loaded monitor's estimates bit-identical to the saving monitor's.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/basis"
	"repro/internal/floorplan"
	"repro/internal/mat"
)

const (
	magic = "EMST"
	// Version is the current format version, the one Encode writes. Decode
	// additionally accepts version 1 (no operator section) and version 2
	// (no drift section).
	Version = 3
	// minVersion is the oldest format version Decode still reads.
	minVersion = 1
	// maxPayload caps the envelope length field so a corrupt header cannot
	// drive a large allocation before the checksum is ever verified (the
	// payload is sized and read eagerly). The largest realistic record —
	// paper-scale grid (N = 3360), KMax = 40 basis plus QR — is ~2 MB;
	// 64 MB leaves room for much larger dies while keeping the worst case
	// of a bit-flipped length field harmless.
	maxPayload = 1 << 26
)

// Kind classifies a decode failure.
type Kind int

// Decode failure kinds.
const (
	// KindIO is an underlying reader/writer error (not a format problem).
	KindIO Kind = iota
	// KindBadMagic: the bytes are not a monitor store file at all.
	KindBadMagic
	// KindUnknownVersion: written by a future (or zero) format version.
	KindUnknownVersion
	// KindTruncated: the envelope ends before its declared length.
	KindTruncated
	// KindChecksum: the payload bits fail the CRC.
	KindChecksum
	// KindInvalid: checksum-valid bytes describing an impossible record.
	KindInvalid
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindIO:
		return "io"
	case KindBadMagic:
		return "bad-magic"
	case KindUnknownVersion:
		return "unknown-version"
	case KindTruncated:
		return "truncated"
	case KindChecksum:
		return "checksum"
	case KindInvalid:
		return "invalid"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Error is the typed error for every codec failure. Match the category with
// errors.Is against the sentinel for its Kind, or errors.As for the detail.
type Error struct {
	Kind   Kind
	Detail string
	Err    error // underlying cause, if any
}

// Error implements error.
func (e *Error) Error() string {
	s := "store: " + e.Kind.String()
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the sentinel of the error's Kind.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrBadMagic:
		return e.Kind == KindBadMagic
	case ErrUnknownVersion:
		return e.Kind == KindUnknownVersion
	case ErrTruncated:
		return e.Kind == KindTruncated
	case ErrChecksum:
		return e.Kind == KindChecksum
	case ErrInvalid:
		return e.Kind == KindInvalid
	}
	return false
}

// Sentinels for errors.Is; Decode always returns a *Error carrying one of
// these kinds (or KindIO for reader failures).
var (
	ErrBadMagic       = errors.New("store: not a monitor store file")
	ErrUnknownVersion = errors.New("store: unknown format version")
	ErrTruncated      = errors.New("store: truncated file")
	ErrChecksum       = errors.New("store: checksum mismatch")
	ErrInvalid        = errors.New("store: invalid record")
)

func errf(k Kind, format string, args ...any) *Error {
	return &Error{Kind: k, Detail: fmt.Sprintf(format, args...)}
}

// Meta is the version-stable metadata of a record: the identity of the
// training run (the daemon's cache key), the solver and noise configuration
// needed to regenerate the training ensemble, and the monitor's serving
// options. It is JSON in the payload so version-1 readers can keep decoding
// records as fields are deprecated; unknown fields are rejected (strict
// decode), so a file from a schema that *added* fields fails loudly instead
// of silently dropping state.
type Meta struct {
	// Training-run identity (mirrors the daemon's train key).
	Floorplan string `json:"floorplan,omitempty"`
	Cores     int    `json:"cores,omitempty"`
	Caches    int    `json:"caches,omitempty"`
	MeshW     int    `json:"mesh_w,omitempty"`
	MeshH     int    `json:"mesh_h,omitempty"`
	GridW     int    `json:"grid_w,omitempty"`
	GridH     int    `json:"grid_h,omitempty"`
	Snapshots int    `json:"snapshots,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	KMax      int    `json:"kmax,omitempty"`

	// Solver and noise/power configuration: enough to regenerate the
	// training ensemble bit-identically (the ensemble itself is never
	// serialized — it is the one component that is cheaper to recompute
	// lazily than to store).
	Solver       string          `json:"solver,omitempty"`
	Workloads    []string        `json:"workloads,omitempty"`
	WorkloadSpec json.RawMessage `json:"workload_spec,omitempty"`
	LoadCoupling float64         `json:"load_coupling,omitempty"`

	// Serving options of the persisted monitor.
	MonitorID string  `json:"monitor_id,omitempty"`
	Tracking  bool    `json:"tracking,omitempty"`
	Rho       float64 `json:"rho,omitempty"`
}

// Record is one serializable bundle. Basis is required; Floorplan and
// Energy are optional (a facade monitor has neither); the monitor section —
// Sensors, K and QR together — is optional so the same format persists both
// evicted models (no placement yet) and live monitors.
type Record struct {
	Meta      Meta
	Basis     *basis.Basis
	Floorplan *floorplan.Floorplan
	Energy    []float64

	Sensors []int
	K       int
	QR      *mat.QR

	// Op/OpBias are the folded reconstruction operator (N×M) and its affine
	// term (length N): x̃ = OpBias + Op·x_S. Optional (version ≥ 2); when
	// absent the loader re-folds the operator from the QR factors, which is
	// deterministic and therefore bit-identical. Only valid alongside the
	// monitor section.
	Op     *mat.Matrix
	OpBias []float64

	// Drift is the drift-calibration and adaptation-lineage block. Optional
	// (version ≥ 3); only valid alongside the monitor section. A record
	// without it serves with drift detection disabled.
	Drift *DriftInfo
}

// DriftInfo persists what the serving layer's drift detector needs to resume
// exactly where the saving daemon left off: the monitor's training residual
// distribution (its alarm thresholds) and its adaptation lineage.
type DriftInfo struct {
	// CalibMean/CalibStd are the moments of the normalized reprojection
	// residual over the ensemble the monitor was (re)calibrated on.
	CalibMean float64
	CalibStd  float64
	// SensorMean/SensorStd are per-sensor moments of the absolute residual,
	// aligned with the record's *serving* sensor list (Record.Sensors).
	SensorMean []float64
	SensorStd  []float64

	// ParentKey is the train-key hash of the design-time ancestor this
	// monitor adapted away from (empty at generation 0).
	ParentKey string
	// Generation counts hot-swap adaptations since design-time training.
	Generation int
	// OrigSensors is the client-facing sensor list the monitor was created
	// with. It equals Record.Sensors until a faulty sensor is excluded, after
	// which Record.Sensors (and the QR/operator shapes) cover only the
	// surviving subset while clients keep sending len(OrigSensors) readings.
	// Nil means "same as Record.Sensors".
	OrigSensors []int
}

// HasMonitor reports whether the record carries the monitor section.
func (rec *Record) HasMonitor() bool { return rec.QR != nil }

// Section-presence bits in the payload's flags word. flagOperator is only
// legal in version ≥ 2 envelopes, flagDrift in version ≥ 3.
const (
	flagFloorplan = 1 << iota
	flagEnergy
	flagMonitor
	flagOperator
	flagDrift
)

// Encode writes rec in the store format. Only writer failures can error:
// every record that the in-memory types can represent encodes.
func Encode(w io.Writer, rec *Record) error {
	if rec.Basis == nil {
		return errf(KindInvalid, "record has no basis")
	}
	if (rec.Sensors != nil || rec.QR != nil) && !(rec.Sensors != nil && rec.QR != nil && rec.K > 0) {
		return errf(KindInvalid, "partial monitor section (need sensors, K and QR together)")
	}
	if (rec.Op != nil) != (rec.OpBias != nil) {
		return errf(KindInvalid, "partial operator section (need operator and bias together)")
	}
	if rec.Op != nil && rec.QR == nil {
		return errf(KindInvalid, "operator section without monitor section")
	}
	if rec.Op != nil && rec.Op.Rows() != len(rec.OpBias) {
		return errf(KindInvalid, "operator bias length %d for %d rows", len(rec.OpBias), rec.Op.Rows())
	}
	if rec.Drift != nil {
		if rec.QR == nil {
			return errf(KindInvalid, "drift section without monitor section")
		}
		if err := validateDrift(rec); err != nil {
			return err
		}
	}
	var payload bytes.Buffer
	metaJSON, err := json.Marshal(rec.Meta)
	if err != nil {
		return &Error{Kind: KindInvalid, Detail: "encoding metadata", Err: err}
	}
	putU32(&payload, uint32(len(metaJSON)))
	payload.Write(metaJSON)

	var flags uint32
	if rec.Floorplan != nil {
		flags |= flagFloorplan
	}
	// An empty energy slice means "not recorded", like nil: encoding it as
	// a zero-length section would produce bytes Decode rejects (energy, when
	// present, must cover all N cells).
	if len(rec.Energy) > 0 {
		flags |= flagEnergy
	}
	if rec.QR != nil {
		flags |= flagMonitor
	}
	if rec.Op != nil {
		flags |= flagOperator
	}
	if rec.Drift != nil {
		flags |= flagDrift
	}
	putU32(&payload, flags)

	if rec.Floorplan != nil {
		putString(&payload, rec.Floorplan.Name)
		putU32(&payload, uint32(len(rec.Floorplan.Blocks)))
		for _, b := range rec.Floorplan.Blocks {
			putString(&payload, b.Name)
			putU32(&payload, uint32(b.Kind))
			putFloats(&payload, []float64{b.X, b.Y, b.W, b.H})
		}
	}

	var basisBuf bytes.Buffer
	if err := rec.Basis.Save(&basisBuf); err != nil {
		return &Error{Kind: KindInvalid, Detail: "encoding basis", Err: err}
	}
	putU64(&payload, uint64(basisBuf.Len()))
	payload.Write(basisBuf.Bytes())

	if len(rec.Energy) > 0 {
		putU32(&payload, uint32(len(rec.Energy)))
		putFloats(&payload, rec.Energy)
	}

	if rec.QR != nil {
		putU32(&payload, uint32(rec.K))
		putU32(&payload, uint32(len(rec.Sensors)))
		for _, s := range rec.Sensors {
			putU64(&payload, uint64(int64(s)))
		}
		packed, tau := rec.QR.Factors()
		qm, qn := packed.Dims()
		putU32(&payload, uint32(qm))
		putU32(&payload, uint32(qn))
		putFloats(&payload, packed.Data())
		putFloats(&payload, tau)
	}

	if rec.Op != nil {
		rows, cols := rec.Op.Dims()
		putU32(&payload, uint32(rows))
		putU32(&payload, uint32(cols))
		putFloats(&payload, rec.Op.Data())
		putFloats(&payload, rec.OpBias)
	}

	if rec.Drift != nil {
		d := rec.Drift
		putFloats(&payload, []float64{d.CalibMean, d.CalibStd})
		putU32(&payload, uint32(len(d.SensorMean)))
		putFloats(&payload, d.SensorMean)
		putFloats(&payload, d.SensorStd)
		putString(&payload, d.ParentKey)
		putU32(&payload, uint32(d.Generation))
		putU32(&payload, uint32(len(d.OrigSensors)))
		for _, s := range d.OrigSensors {
			putU64(&payload, uint64(int64(s)))
		}
	}

	head := make([]byte, 0, 16)
	head = append(head, magic...)
	head = binary.LittleEndian.AppendUint32(head, Version)
	head = binary.LittleEndian.AppendUint64(head, uint64(payload.Len()))
	if _, err := w.Write(head); err != nil {
		return &Error{Kind: KindIO, Detail: "writing header", Err: err}
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return &Error{Kind: KindIO, Detail: "writing payload", Err: err}
	}
	crc := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(binary.LittleEndian.AppendUint32(nil, crc)); err != nil {
		return &Error{Kind: KindIO, Detail: "writing checksum", Err: err}
	}
	return nil
}

// Decode reads one record. See the package comment for the error contract;
// hostile bytes yield a typed *Error, never a panic.
func Decode(r io.Reader) (*Record, error) {
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "file shorter than the 4-byte magic")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading magic", Err: err}
	}
	if string(mg[:]) != magic {
		return nil, errf(KindBadMagic, "magic %q", mg[:])
	}
	head := make([]byte, 12)
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "envelope header cut short")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading header", Err: err}
	}
	version := binary.LittleEndian.Uint32(head[0:4])
	if version < minVersion || version > Version {
		return nil, errf(KindUnknownVersion, "version %d (this build reads %d..%d)", version, minVersion, Version)
	}
	length := binary.LittleEndian.Uint64(head[4:12])
	if length > maxPayload {
		return nil, errf(KindInvalid, "payload length %d exceeds cap %d", length, int64(maxPayload))
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "payload: want %d bytes", length)
		}
		return nil, &Error{Kind: KindIO, Detail: "reading payload", Err: err}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errf(KindTruncated, "checksum missing")
		}
		return nil, &Error{Kind: KindIO, Detail: "reading checksum", Err: err}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, errf(KindChecksum, "crc32 %08x, header says %08x", got, want)
	}
	return parsePayload(payload, version)
}

// parsePayload parses a checksum-verified payload. Structural overruns here
// mean the writer and reader disagree about the format (or the file was
// forged around its checksum): KindInvalid, not KindTruncated.
func parsePayload(payload []byte, version uint32) (*Record, error) {
	p := &reader{buf: payload}
	rec := &Record{}

	metaLen, err := p.u32("meta length")
	if err != nil {
		return nil, err
	}
	metaJSON, err := p.bytes(int(metaLen), "metadata")
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(metaJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec.Meta); err != nil {
		return nil, &Error{Kind: KindInvalid, Detail: "metadata", Err: err}
	}

	flags, err := p.u32("flags")
	if err != nil {
		return nil, err
	}
	known := uint32(flagFloorplan | flagEnergy | flagMonitor)
	if version >= 2 {
		known |= flagOperator
	}
	if version >= 3 {
		known |= flagDrift
	}
	if flags&^known != 0 {
		return nil, errf(KindInvalid, "unknown section flags %#x for version %d", flags, version)
	}

	if flags&flagFloorplan != 0 {
		fp, err := p.floorplan()
		if err != nil {
			return nil, err
		}
		rec.Floorplan = fp
	}

	basisLen, err := p.u64("basis length")
	if err != nil {
		return nil, err
	}
	basisBlob, err := p.bytes(int(basisLen), "basis")
	if err != nil {
		return nil, err
	}
	rec.Basis, err = basis.Load(bytes.NewReader(basisBlob))
	if err != nil {
		return nil, &Error{Kind: KindInvalid, Detail: "basis", Err: err}
	}
	n := rec.Basis.N()

	if flags&flagEnergy != 0 {
		count, err := p.u32("energy length")
		if err != nil {
			return nil, err
		}
		if int(count) != n {
			return nil, errf(KindInvalid, "energy length %d for N=%d", count, n)
		}
		rec.Energy, err = p.floats(int(count), "energy")
		if err != nil {
			return nil, err
		}
	}

	if flags&flagMonitor != 0 {
		if err := p.monitorSection(rec); err != nil {
			return nil, err
		}
	}

	if flags&flagOperator != 0 {
		if flags&flagMonitor == 0 {
			return nil, errf(KindInvalid, "operator section without monitor section")
		}
		if err := p.operatorSection(rec); err != nil {
			return nil, err
		}
	}

	if flags&flagDrift != 0 {
		if flags&flagMonitor == 0 {
			return nil, errf(KindInvalid, "drift section without monitor section")
		}
		if err := p.driftSection(rec); err != nil {
			return nil, err
		}
	}

	if p.off != len(p.buf) {
		return nil, errf(KindInvalid, "%d trailing payload bytes", len(p.buf)-p.off)
	}
	return rec, validate(rec)
}

// validate cross-checks the parsed sections against each other — the guard
// that turns a cross-floorplan (or otherwise mismatched) load into a typed
// error instead of a silently wrong monitor.
func validate(rec *Record) error {
	n := rec.Basis.N()
	g := rec.Basis.Grid
	if rec.Meta.GridW != 0 || rec.Meta.GridH != 0 {
		if rec.Meta.GridW != g.W || rec.Meta.GridH != g.H {
			return errf(KindInvalid,
				"cross-floorplan record: metadata grid %dx%d but basis grid %dx%d",
				rec.Meta.GridW, rec.Meta.GridH, g.W, g.H)
		}
	}
	if rec.Floorplan != nil {
		if err := rec.Floorplan.Validate(); err != nil {
			return &Error{Kind: KindInvalid, Detail: "floorplan", Err: err}
		}
		if rec.Meta.Floorplan != "" && rec.Meta.Floorplan != rec.Floorplan.Name {
			return errf(KindInvalid, "cross-floorplan record: metadata names %q but floorplan is %q",
				rec.Meta.Floorplan, rec.Floorplan.Name)
		}
	}
	if rec.Meta.KMax != 0 && rec.Basis.KMax() > rec.Meta.KMax {
		return errf(KindInvalid, "basis KMax %d exceeds metadata kmax %d", rec.Basis.KMax(), rec.Meta.KMax)
	}
	for _, e := range rec.Energy {
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			return errf(KindInvalid, "non-finite or negative training energy")
		}
	}
	if rec.HasMonitor() {
		if rec.K < 1 || rec.K > rec.Basis.KMax() {
			return errf(KindInvalid, "K=%d outside [1,%d]", rec.K, rec.Basis.KMax())
		}
		if len(rec.Sensors) < rec.K {
			return errf(KindInvalid, "M=%d sensors for K=%d", len(rec.Sensors), rec.K)
		}
		seen := make(map[int]struct{}, len(rec.Sensors))
		for _, s := range rec.Sensors {
			if s < 0 || s >= n {
				return errf(KindInvalid, "sensor %d outside grid [0,%d) — cross-floorplan record?", s, n)
			}
			if _, dup := seen[s]; dup {
				return errf(KindInvalid, "duplicate sensor %d", s)
			}
			seen[s] = struct{}{}
		}
		if qm, qn := rec.QR.Dims(); qm != len(rec.Sensors) || qn != rec.K {
			return errf(KindInvalid, "factorization is %d×%d for M=%d K=%d", qm, qn, len(rec.Sensors), rec.K)
		}
		if rec.Op != nil {
			if rows, cols := rec.Op.Dims(); rows != n || cols != len(rec.Sensors) {
				return errf(KindInvalid, "operator is %d×%d for N=%d M=%d", rows, cols, n, len(rec.Sensors))
			}
		}
		if rec.Drift != nil {
			if err := validateDrift(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateDrift cross-checks the drift block against the monitor section;
// the caller guarantees rec.Drift != nil and the monitor section is present.
func validateDrift(rec *Record) error {
	d := rec.Drift
	m := len(rec.Sensors)
	if len(d.SensorMean) != m || len(d.SensorStd) != m {
		return errf(KindInvalid, "drift sensor moments %d/%d for M=%d",
			len(d.SensorMean), len(d.SensorStd), m)
	}
	for _, v := range []float64{d.CalibMean, d.CalibStd} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errf(KindInvalid, "non-finite drift calibration")
		}
	}
	if d.CalibStd <= 0 {
		return errf(KindInvalid, "drift calibration std %v not positive", d.CalibStd)
	}
	for i := range d.SensorMean {
		for _, v := range []float64{d.SensorMean[i], d.SensorStd[i]} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return errf(KindInvalid, "bad per-sensor drift moment at %d", i)
			}
		}
	}
	if d.Generation < 0 {
		return errf(KindInvalid, "drift generation %d negative", d.Generation)
	}
	if d.OrigSensors != nil {
		n := rec.Basis.N()
		seen := make(map[int]struct{}, len(d.OrigSensors))
		for _, s := range d.OrigSensors {
			if s < 0 || s >= n {
				return errf(KindInvalid, "original sensor %d outside grid [0,%d)", s, n)
			}
			if _, dup := seen[s]; dup {
				return errf(KindInvalid, "duplicate original sensor %d", s)
			}
			seen[s] = struct{}{}
		}
		// The serving sensors must be an ordered subset of the original list:
		// a surviving sensor's reading position in client traffic is its
		// position in OrigSensors.
		j := 0
		for _, s := range rec.Sensors {
			for j < len(d.OrigSensors) && d.OrigSensors[j] != s {
				j++
			}
			if j == len(d.OrigSensors) {
				return errf(KindInvalid, "serving sensor %d not an ordered subset of the original list", s)
			}
			j++
		}
	}
	return nil
}

// SaveFile writes rec to path atomically: the bytes go to a temporary file
// in the same directory which is fsynced and then renamed over path, so a
// crash mid-save leaves either the old record or none — never a torn file
// that a later Decode would have to reject. (Decode *would* reject it via
// the checksum; atomicity means the store never loses a good record to a
// failed overwrite.)
func SaveFile(path string, rec *Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return &Error{Kind: KindIO, Detail: "creating temp file", Err: err}
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Encode(tmp, rec); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return &Error{Kind: KindIO, Detail: "syncing temp file", Err: err}
	}
	if err := tmp.Close(); err != nil {
		return &Error{Kind: KindIO, Detail: "closing temp file", Err: err}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return &Error{Kind: KindIO, Detail: "renaming into place", Err: err}
	}
	return nil
}

// LoadFile reads a record written by SaveFile.
func LoadFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &Error{Kind: KindIO, Detail: "opening store file", Err: err}
	}
	defer f.Close()
	return Decode(f)
}

// --- little-endian primitives ---

func putU32(w *bytes.Buffer, v uint32) { w.Write(binary.LittleEndian.AppendUint32(nil, v)) }
func putU64(w *bytes.Buffer, v uint64) { w.Write(binary.LittleEndian.AppendUint64(nil, v)) }

func putString(w *bytes.Buffer, s string) {
	putU32(w, uint32(len(s)))
	w.WriteString(s)
}

func putFloats(w *bytes.Buffer, fs []float64) {
	buf := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	w.Write(buf)
}

// reader is a bounds-checked cursor over the verified payload.
type reader struct {
	buf []byte
	off int
}

func (p *reader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || p.off+n > len(p.buf) || p.off+n < p.off {
		return nil, errf(KindInvalid, "%s: %d bytes at offset %d overruns %d-byte payload", what, n, p.off, len(p.buf))
	}
	out := p.buf[p.off : p.off+n]
	p.off += n
	return out, nil
}

func (p *reader) u32(what string) (uint32, error) {
	b, err := p.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (p *reader) u64(what string) (uint64, error) {
	b, err := p.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (p *reader) string(what string) (string, error) {
	n, err := p.u32(what + " length")
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", errf(KindInvalid, "%s: implausible length %d", what, n)
	}
	b, err := p.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (p *reader) floats(n int, what string) ([]float64, error) {
	b, err := p.bytes(8*n, what)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func (p *reader) floorplan() (*floorplan.Floorplan, error) {
	name, err := p.string("floorplan name")
	if err != nil {
		return nil, err
	}
	nBlocks, err := p.u32("block count")
	if err != nil {
		return nil, err
	}
	if nBlocks > 1<<20 {
		return nil, errf(KindInvalid, "implausible block count %d", nBlocks)
	}
	fp := &floorplan.Floorplan{Name: name, Blocks: make([]floorplan.Block, nBlocks)}
	for i := range fp.Blocks {
		bn, err := p.string("block name")
		if err != nil {
			return nil, err
		}
		kind, err := p.u32("block kind")
		if err != nil {
			return nil, err
		}
		geom, err := p.floats(4, "block geometry")
		if err != nil {
			return nil, err
		}
		fp.Blocks[i] = floorplan.Block{
			Name: bn, Kind: floorplan.Kind(kind),
			X: geom[0], Y: geom[1], W: geom[2], H: geom[3],
		}
	}
	return fp, nil
}

func (p *reader) monitorSection(rec *Record) error {
	k, err := p.u32("K")
	if err != nil {
		return err
	}
	m, err := p.u32("sensor count")
	if err != nil {
		return err
	}
	if m > 1<<24 {
		return errf(KindInvalid, "implausible sensor count %d", m)
	}
	rec.K = int(k)
	rec.Sensors = make([]int, m)
	for i := range rec.Sensors {
		v, err := p.u64("sensor index")
		if err != nil {
			return err
		}
		rec.Sensors[i] = int(int64(v))
	}
	qm, err := p.u32("QR rows")
	if err != nil {
		return err
	}
	qn, err := p.u32("QR cols")
	if err != nil {
		return err
	}
	if uint64(qm)*uint64(qn) > 1<<32 {
		return errf(KindInvalid, "implausible QR shape %dx%d", qm, qn)
	}
	packed, err := p.floats(int(qm)*int(qn), "QR factors")
	if err != nil {
		return err
	}
	tau, err := p.floats(int(qn), "QR tau")
	if err != nil {
		return err
	}
	qr, err := mat.RestoreQR(mat.NewFromData(int(qm), int(qn), packed), tau)
	if err != nil {
		return &Error{Kind: KindInvalid, Detail: "QR factors", Err: err}
	}
	rec.QR = qr
	return nil
}

func (p *reader) operatorSection(rec *Record) error {
	rows, err := p.u32("operator rows")
	if err != nil {
		return err
	}
	cols, err := p.u32("operator cols")
	if err != nil {
		return err
	}
	if uint64(rows)*uint64(cols) > 1<<32 {
		return errf(KindInvalid, "implausible operator shape %dx%d", rows, cols)
	}
	data, err := p.floats(int(rows)*int(cols), "operator")
	if err != nil {
		return err
	}
	bias, err := p.floats(int(rows), "operator bias")
	if err != nil {
		return err
	}
	rec.Op = mat.NewFromData(int(rows), int(cols), data)
	rec.OpBias = bias
	return nil
}

func (p *reader) driftSection(rec *Record) error {
	cal, err := p.floats(2, "drift calibration")
	if err != nil {
		return err
	}
	ms, err := p.u32("drift sensor count")
	if err != nil {
		return err
	}
	if ms > 1<<24 {
		return errf(KindInvalid, "implausible drift sensor count %d", ms)
	}
	sensorMean, err := p.floats(int(ms), "drift sensor means")
	if err != nil {
		return err
	}
	sensorStd, err := p.floats(int(ms), "drift sensor stds")
	if err != nil {
		return err
	}
	parentKey, err := p.string("drift parent key")
	if err != nil {
		return err
	}
	gen, err := p.u32("drift generation")
	if err != nil {
		return err
	}
	norig, err := p.u32("original sensor count")
	if err != nil {
		return err
	}
	if norig > 1<<24 {
		return errf(KindInvalid, "implausible original sensor count %d", norig)
	}
	var orig []int
	if norig > 0 {
		orig = make([]int, norig)
		for i := range orig {
			v, err := p.u64("original sensor index")
			if err != nil {
				return err
			}
			orig[i] = int(int64(v))
		}
	}
	rec.Drift = &DriftInfo{
		CalibMean:   cal[0],
		CalibStd:    cal[1],
		SensorMean:  sensorMean,
		SensorStd:   sensorStd,
		ParentKey:   parentKey,
		Generation:  int(gen),
		OrigSensors: orig,
	}
	return nil
}
