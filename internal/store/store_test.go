package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/recon"
)

// trainSmall runs the design-time pipeline at test scale and returns the
// model plus a monitor-shaped record for it.
func trainSmall(t *testing.T) (*core.Model, *Record) {
	t.Helper()
	fp := floorplan.UltraSparcT1()
	ds, err := dataset.Generate(fp, dataset.GenConfig{
		Grid: floorplan.Grid{W: 12, H: 10}, Snapshots: 60, Seed: 7,
		Power: power.Config{LoadCoupling: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(ds, core.TrainOptions{KMax: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := model.PlaceSensors(8, core.PlaceOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(4, sensors)
	if err != nil {
		t.Fatal(err)
	}
	rec := mon.Reconstructor()
	return model, &Record{
		Meta: Meta{
			Floorplan: fp.Name, GridW: 12, GridH: 10,
			Snapshots: 60, Seed: 7, KMax: 8, Solver: "direct",
			LoadCoupling: 0.75, MonitorID: "mon-1",
		},
		Basis:     model.Basis,
		Floorplan: fp,
		Energy:    model.Energy,
		Sensors:   rec.Sensors(),
		K:         rec.K(),
		QR:        rec.QR(),
	}
}

func encodeToBytes(t *testing.T, rec *Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, rec); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func decodeErr(t *testing.T, data []byte, want error) *Error {
	t.Helper()
	_, err := Decode(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("decode succeeded, want %v", want)
	}
	if !errors.Is(err, want) {
		t.Fatalf("decode error %v, want errors.Is %v", err, want)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("decode error %T is not a *store.Error", err)
	}
	return se
}

func TestRoundTrip(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, rec.Meta) {
		t.Errorf("meta round-trip: got %+v want %+v", got.Meta, rec.Meta)
	}
	if !reflect.DeepEqual(got.Sensors, rec.Sensors) || got.K != rec.K {
		t.Errorf("placement round-trip: got %v/K=%d want %v/K=%d", got.Sensors, got.K, rec.Sensors, rec.K)
	}
	if got.Basis.Grid != rec.Basis.Grid || got.Basis.KMax() != rec.Basis.KMax() {
		t.Errorf("basis shape round-trip mismatch")
	}
	// Every float must survive bit-exactly: this is what makes loaded
	// monitors estimate bit-identically.
	for i, v := range rec.Basis.Mean {
		if math.Float64bits(got.Basis.Mean[i]) != math.Float64bits(v) {
			t.Fatalf("mean[%d] bits changed", i)
		}
	}
	if !bytes.Equal(floatBits(got.Basis.Psi.Data()), floatBits(rec.Basis.Psi.Data())) {
		t.Fatal("basis matrix bits changed")
	}
	if !bytes.Equal(floatBits(got.Energy), floatBits(rec.Energy)) {
		t.Fatal("energy bits changed")
	}
	gp, gt := got.QR.Factors()
	wp, wt := rec.QR.Factors()
	if !bytes.Equal(floatBits(gp.Data()), floatBits(wp.Data())) || !bytes.Equal(floatBits(gt), floatBits(wt)) {
		t.Fatal("QR factor bits changed")
	}
	if got.Floorplan.Name != rec.Floorplan.Name || len(got.Floorplan.Blocks) != len(rec.Floorplan.Blocks) {
		t.Errorf("floorplan round-trip mismatch")
	}
	// The restored reconstructor must solve bit-identically.
	orig, err := recon.Restore(rec.Basis, rec.K, rec.Sensors, rec.QR)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := recon.Restore(got.Basis, got.K, got.Sensors, got.QR)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]float64, len(rec.Sensors))
	for i := range readings {
		readings[i] = 55 + 3*float64(i)
	}
	a, err := orig.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("cell %d: %x != %x", i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

func floatBits(fs []float64) []byte {
	out := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func TestModelOnlyRecord(t *testing.T) {
	_, full := trainSmall(t)
	rec := &Record{Meta: full.Meta, Basis: full.Basis, Floorplan: full.Floorplan, Energy: full.Energy}
	got, err := Decode(bytes.NewReader(encodeToBytes(t, rec)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.HasMonitor() {
		t.Fatal("model-only record reports a monitor section")
	}
	if got.Energy == nil || got.Floorplan == nil {
		t.Fatal("model-only record lost a section")
	}
}

func TestEncodeEmptyEnergyMeansAbsent(t *testing.T) {
	// A non-nil empty slice encodes like nil: a zero-length energy section
	// would be bytes Decode rejects (energy must cover all N cells).
	_, full := trainSmall(t)
	rec := &Record{Meta: full.Meta, Basis: full.Basis, Energy: []float64{}}
	got, err := Decode(bytes.NewReader(encodeToBytes(t, rec)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Energy != nil {
		t.Fatalf("empty energy round-tripped as %v, want absent", got.Energy)
	}
}

func TestDecodeTruncated(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	// Every prefix must fail typed, never panic. Check a spread of cut
	// points: inside the magic, the header, the payload and the checksum.
	for _, n := range []int{0, 2, 9, 40, len(data) / 2, len(data) - 3} {
		if _, err := Decode(bytes.NewReader(data[:n])); !errors.Is(err, ErrTruncated) {
			t.Errorf("prefix %d: error %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeFlippedChecksumByte(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	// Flip one payload byte: the CRC must catch it.
	mid := append([]byte(nil), data...)
	mid[len(mid)/2] ^= 0x40
	decodeErr(t, mid, ErrChecksum)
	// Flip a byte of the stored checksum itself.
	tail := append([]byte(nil), data...)
	tail[len(tail)-1] ^= 0x01
	decodeErr(t, tail, ErrChecksum)
}

func TestDecodeFutureVersion(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	future := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(future[4:8], Version+41)
	se := decodeErr(t, future, ErrUnknownVersion)
	if se.Kind != KindUnknownVersion {
		t.Fatalf("kind %v", se.Kind)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	bad := append([]byte(nil), data...)
	copy(bad, "NOPE")
	decodeErr(t, bad, ErrBadMagic)
}

func TestDecodeCrossFloorplan(t *testing.T) {
	_, rec := trainSmall(t)
	// Metadata claiming a different grid than the basis carries: the
	// signature of a record pointed at the wrong die.
	wrongGrid := *rec
	wrongGrid.Meta.GridW, wrongGrid.Meta.GridH = 16, 14
	se := decodeErr(t, encodeToBytes(t, &wrongGrid), ErrInvalid)
	if se.Kind != KindInvalid {
		t.Fatalf("kind %v", se.Kind)
	}
	// Metadata naming a floorplan the record's floorplan section isn't.
	wrongName := *rec
	wrongName.Meta = rec.Meta
	wrongName.Meta.Floorplan = "amd-athlon64"
	decodeErr(t, encodeToBytes(t, &wrongName), ErrInvalid)
	// A sensor index outside the basis grid (as after loading a small-grid
	// record against a tampered large-grid claim).
	badSensor := *rec
	badSensor.Meta = rec.Meta
	badSensor.Sensors = append([]int(nil), rec.Sensors...)
	badSensor.Sensors[0] = rec.Basis.N() + 5
	decodeErr(t, encodeToBytes(t, &badSensor), ErrInvalid)
}

func TestDecodeRejectsUnknownMetaFields(t *testing.T) {
	_, rec := trainSmall(t)
	data := encodeToBytes(t, rec)
	// Graft a meta blob with an unknown field, fixing up lengths and CRC —
	// simulating a file written by a same-version build with a drifted
	// schema. Strict decode must reject it.
	metaLen := binary.LittleEndian.Uint32(data[16:20])
	oldMeta := data[20 : 20+int(metaLen)]
	newMeta := append([]byte(`{"from_the_future":1,`), oldMeta[1:]...)
	payloadLen := binary.LittleEndian.Uint64(data[8:16])
	var out bytes.Buffer
	out.Write(data[:8])
	newPayloadLen := payloadLen + uint64(len(newMeta)-len(oldMeta))
	out.Write(binary.LittleEndian.AppendUint64(nil, newPayloadLen))
	out.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(newMeta))))
	out.Write(newMeta)
	out.Write(data[20+int(metaLen) : len(data)-4])
	payload := out.Bytes()[16:]
	crc := crc32.ChecksumIEEE(payload)
	out.Write(binary.LittleEndian.AppendUint32(nil, crc))
	decodeErr(t, out.Bytes(), ErrInvalid)
}

func TestSaveFileAtomicAndLoad(t *testing.T) {
	_, rec := trainSmall(t)
	path := t.TempDir() + "/mon-1.emon"
	if err := SaveFile(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasMonitor() || got.Meta.MonitorID != "mon-1" {
		t.Fatalf("loaded record %+v", got.Meta)
	}
	// Overwrite must go through the same atomic path.
	rec2 := *rec
	rec2.Meta.MonitorID = "mon-2"
	if err := SaveFile(path, &rec2); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.MonitorID != "mon-2" {
		t.Fatalf("overwrite not visible: %q", got.Meta.MonitorID)
	}
}

func TestEncodeRejectsPartialMonitorSection(t *testing.T) {
	_, rec := trainSmall(t)
	partial := &Record{Meta: rec.Meta, Basis: rec.Basis, Sensors: rec.Sensors}
	var buf bytes.Buffer
	if err := Encode(&buf, partial); !errors.Is(err, ErrInvalid) {
		t.Fatalf("error %v, want ErrInvalid", err)
	}
	if err := Encode(&buf, &Record{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-basis error %v, want ErrInvalid", err)
	}
}

func TestDecodeRejectsOversizedQRShape(t *testing.T) {
	// A forged monitor section claiming an enormous QR must be rejected by
	// the structural bounds checks before any allocation is attempted:
	// K=4, M=2 sensors, then a 2^20 × 2^20 factor claim.
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, 4)
	buf = binary.LittleEndian.AppendUint32(buf, 2)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<20)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<20)
	p := &reader{buf: buf}
	if err := p.monitorSection(&Record{}); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("error %v, want ErrInvalid", err)
	}
}
