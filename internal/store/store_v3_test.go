package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"repro/internal/recon"
)

// adaptedRecord builds a generation-1 record the way the daemon persists one
// after excluding a faulty sensor: the serving monitor section (sensors, QR,
// operator) covers the surviving subset while the drift block remembers the
// original client-facing list plus the residual calibration and lineage.
func adaptedRecord(t *testing.T) *Record {
	t.Helper()
	_, rec := trainSmall(t)
	orig := append([]int(nil), rec.Sensors...)
	survivors := append(append([]int(nil), orig[:3]...), orig[4:]...) // drop position 3
	r, err := recon.New(rec.Basis, rec.K, survivors)
	if err != nil {
		t.Fatal(err)
	}
	rec.Sensors = survivors
	rec.QR = r.QR()
	rec.Op, rec.OpBias = r.Operator()
	m := len(survivors)
	sMean := make([]float64, m)
	sStd := make([]float64, m)
	for i := range sMean {
		sMean[i] = 0.01 + 0.001*float64(i)
		sStd[i] = 0.002
	}
	rec.Drift = &DriftInfo{
		CalibMean:   0.11,
		CalibStd:    0.018,
		SensorMean:  sMean,
		SensorStd:   sStd,
		ParentKey:   "8f3a1c2b9d4e5f60",
		Generation:  1,
		OrigSensors: orig,
	}
	return rec
}

// driftSectionBounds returns the byte range the drift section occupies in an
// encoded file (header + payload + CRC): everything the drift-free encode of
// the same record does not contain, minus the trailing CRC.
func driftSectionBounds(t *testing.T, rec *Record) (data []byte, start, end int) {
	t.Helper()
	data = encodeToBytes(t, rec)
	bare := *rec
	bare.Drift = nil
	without := encodeToBytes(t, &bare)
	start = len(without) - 4 // drift bytes begin where the bare payload ended
	end = len(data) - 4
	if end <= start {
		t.Fatalf("drift section bounds [%d,%d) empty", start, end)
	}
	return data, start, end
}

func refixCRC(data []byte) {
	payload := data[16 : len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(data[8:16], uint64(len(payload)))
}

func TestDriftRoundTrip(t *testing.T) {
	rec := adaptedRecord(t)
	got, err := Decode(bytes.NewReader(encodeToBytes(t, rec)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Drift == nil {
		t.Fatal("drift section lost in round trip")
	}
	if !reflect.DeepEqual(got.Drift, rec.Drift) {
		t.Fatalf("drift round-trip: got %+v want %+v", got.Drift, rec.Drift)
	}
	if math.Float64bits(got.Drift.CalibMean) != math.Float64bits(rec.Drift.CalibMean) ||
		math.Float64bits(got.Drift.CalibStd) != math.Float64bits(rec.Drift.CalibStd) {
		t.Fatal("calibration bits changed")
	}
	if !bytes.Equal(floatBits(got.Drift.SensorMean), floatBits(rec.Drift.SensorMean)) ||
		!bytes.Equal(floatBits(got.Drift.SensorStd), floatBits(rec.Drift.SensorStd)) {
		t.Fatal("per-sensor moment bits changed")
	}
}

// A version 2 reader's payload — no drift section — must decode under this
// build, and rewriting the version word of a drift-free v3 encode reproduces
// a genuine v2 file exactly (the CRC covers only the payload).
func TestDecodeVersion2Record(t *testing.T) {
	rec := operatorRecord(t)
	data := encodeToBytes(t, rec) // no drift section
	v2 := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(v2[4:8], 2)
	got, err := Decode(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if !got.HasMonitor() || got.Op == nil || got.Drift != nil {
		t.Fatalf("v2 record: monitor=%v op=%v drift=%v", got.HasMonitor(), got.Op != nil, got.Drift)
	}
}

// A version 2 envelope whose flags claim a drift section is a forgery (v2
// writers predate the flag): KindInvalid, not a crash or a silent read.
func TestDecodeVersion2RejectsDriftFlag(t *testing.T) {
	rec := adaptedRecord(t)
	data := encodeToBytes(t, rec)
	v2 := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(v2[4:8], 2)
	decodeErr(t, v2, ErrInvalid)
}

func TestDriftCorruptionMatrix(t *testing.T) {
	rec := adaptedRecord(t)
	data, start, end := driftSectionBounds(t, rec)

	// Truncation anywhere inside the drift section ends the payload early.
	for _, cut := range []int{start + 1, start + (end-start)/2, end - 1} {
		decodeErr(t, data[:cut], ErrTruncated)
	}

	// A bit-flip anywhere in the section fails the checksum.
	for _, off := range []int{start, start + 9, start + (end-start)/2, end - 1} {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x40
		decodeErr(t, flipped, ErrChecksum)
	}

	// Forgeries — corruption with the CRC (and length) re-fixed — must still
	// die structurally, never parse into a wrong calibration silently.
	negStd := append([]byte(nil), data...)
	negStd[start+15] ^= 0x80 // sign bit of CalibStd
	refixCRC(negStd)
	decodeErr(t, negStd, ErrInvalid)

	negMoment := append([]byte(nil), data...)
	negMoment[start+16+4+7] ^= 0x80 // sign bit of SensorMean[0]
	refixCRC(negMoment)
	decodeErr(t, negMoment, ErrInvalid)

	cutLineage := append([]byte(nil), data[:len(data)-12]...) // drop one original sensor index
	cutLineage = append(cutLineage, data[len(data)-4:]...)
	refixCRC(cutLineage)
	decodeErr(t, cutLineage, ErrInvalid)
}

func TestEncodeRejectsBadDrift(t *testing.T) {
	var buf bytes.Buffer
	rec := adaptedRecord(t)

	orphan := *rec
	orphan.Sensors, orphan.K, orphan.QR, orphan.Op, orphan.OpBias = nil, 0, nil, nil, nil
	if err := Encode(&buf, &orphan); !errors.Is(err, ErrInvalid) {
		t.Fatalf("drift-without-monitor error %v, want ErrInvalid", err)
	}

	shortMoments := *rec
	shortMoments.Drift = &DriftInfo{
		CalibMean: 0.1, CalibStd: 0.02,
		SensorMean: rec.Drift.SensorMean[:2], SensorStd: rec.Drift.SensorStd[:2],
	}
	if err := Encode(&buf, &shortMoments); !errors.Is(err, ErrInvalid) {
		t.Fatalf("short-moments error %v, want ErrInvalid", err)
	}

	badStd := *rec
	cp := *rec.Drift
	cp.CalibStd = 0
	badStd.Drift = &cp
	if err := Encode(&buf, &badStd); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero-std error %v, want ErrInvalid", err)
	}

	nanCal := *rec
	cp2 := *rec.Drift
	cp2.CalibMean = math.NaN()
	nanCal.Drift = &cp2
	if err := Encode(&buf, &nanCal); !errors.Is(err, ErrInvalid) {
		t.Fatalf("NaN-calibration error %v, want ErrInvalid", err)
	}

	// Serving sensors must stay an ordered subset of the original list.
	notSubset := *rec
	cp3 := *rec.Drift
	cp3.OrigSensors = append([]int(nil), rec.Drift.OrigSensors...)
	cp3.OrigSensors[0], cp3.OrigSensors[1] = cp3.OrigSensors[1], cp3.OrigSensors[0]
	// rec.Sensors[0] now appears *after* rec.Sensors[1] in the original list.
	notSubset.Drift = &cp3
	if err := Encode(&buf, &notSubset); !errors.Is(err, ErrInvalid) {
		t.Fatalf("order-violation error %v, want ErrInvalid", err)
	}

	missing := *rec
	cp4 := *rec.Drift
	cp4.OrigSensors = rec.Drift.OrigSensors[:2]
	missing.Drift = &cp4
	if err := Encode(&buf, &missing); !errors.Is(err, ErrInvalid) {
		t.Fatalf("not-superset error %v, want ErrInvalid", err)
	}
}

// The acceptance bar for adapted records: estimates from a loaded
// generation-1 record are bit-identical to the adapted monitor that saved it.
func TestAdaptedRecordBitIdenticalEstimates(t *testing.T) {
	rec := adaptedRecord(t)
	fresh, err := recon.RestoreWithOperator(rec.Basis, rec.K, rec.Sensors, rec.QR, rec.Op, rec.OpBias)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(encodeToBytes(t, rec)))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := recon.RestoreWithOperator(got.Basis, got.K, got.Sensors, got.QR, got.Op, got.OpBias)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]float64, len(rec.Sensors))
	for i := range readings {
		readings[i] = 58 + 3*float64(i)
	}
	a, err := fresh.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(floatBits(a), floatBits(b)) {
		t.Fatal("loaded adapted monitor estimates differ bitwise from the saving monitor")
	}
	// Drift detection also resumes identically: the projector folded from the
	// loaded factors matches the saving monitor's bit-for-bit.
	if !loaded.ResidualProjector().Equal(fresh.ResidualProjector(), 0) {
		t.Fatal("loaded residual projector differs bitwise")
	}
}
