package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func sampleIndex() *Index {
	return &Index{Entries: []IndexEntry{
		{ID: "mon-2", File: "mon-2.emon", TrainKey: "deadbeef01234567", Floorplan: "t1",
			K: 4, M: 8, GridW: 12, GridH: 10, Tracking: true},
		{ID: "mon-1", File: "mon-1.emon", TrainKey: "deadbeef01234567", Floorplan: "t1",
			K: 4, M: 8, GridW: 12, GridH: 10},
		{ID: "mon-10", File: "mon-10.emon", TrainKey: "cafe0123cafe0123", Floorplan: "manycore-256c",
			K: 12, M: 24, GridW: 32, GridH: 32},
	}}
}

func TestIndexRoundTrip(t *testing.T) {
	idx := sampleIndex()
	var buf bytes.Buffer
	if err := EncodeIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("%d entries, want 3", len(got.Entries))
	}
	// Entries come back sorted by ID regardless of input order.
	wantOrder := []string{"mon-1", "mon-10", "mon-2"}
	for i, want := range wantOrder {
		if got.Entries[i].ID != want {
			t.Fatalf("entry %d is %q, want %q", i, got.Entries[i].ID, want)
		}
	}
	byID := map[string]IndexEntry{}
	for _, e := range got.Entries {
		byID[e.ID] = e
	}
	if e := byID["mon-2"]; !e.Tracking || e.K != 4 || e.M != 8 || e.GridW != 12 || e.GridH != 10 ||
		e.File != "mon-2.emon" || e.TrainKey != "deadbeef01234567" || e.Floorplan != "t1" {
		t.Fatalf("mon-2 round-trip: %+v", e)
	}
	if e := byID["mon-10"]; e.Tracking || e.Floorplan != "manycore-256c" || e.K != 12 {
		t.Fatalf("mon-10 round-trip: %+v", e)
	}
}

// TestIndexDeterministicBytes: two encodes of the same logical index (any
// entry order) produce the same bytes, so replicas rewriting a shared index
// converge.
func TestIndexDeterministicBytes(t *testing.T) {
	idx := sampleIndex()
	var a, b bytes.Buffer
	if err := EncodeIndex(&a, idx); err != nil {
		t.Fatal(err)
	}
	rev := &Index{}
	for i := len(idx.Entries) - 1; i >= 0; i-- {
		rev.Entries = append(rev.Entries, idx.Entries[i])
	}
	if err := EncodeIndex(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("index encoding depends on entry order")
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.index")
	if err := SaveIndexFile(path, sampleIndex()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("%d entries after file round-trip", len(got.Entries))
	}
}

// TestIndexHostileBytes: every corruption yields the right typed error and
// never a panic — the daemon downgrades any of these to a rebuild-from-scan.
func TestIndexHostileBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeIndex(&buf, sampleIndex()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "EMST") // a record envelope is not an index
		if _, err := DecodeIndex(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 99
		if _, err := DecodeIndex(bytes.NewReader(bad)); !errors.Is(err, ErrUnknownVersion) {
			t.Fatalf("err = %v, want ErrUnknownVersion", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 3, 10, 17, len(good) / 2, len(good) - 3} {
			if _, err := DecodeIndex(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x10
		if _, err := DecodeIndex(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("duplicate id", func(t *testing.T) {
		dup := &Index{Entries: []IndexEntry{
			{ID: "mon-1", File: "a.emon"}, {ID: "mon-1", File: "b.emon"},
		}}
		var b bytes.Buffer
		if err := EncodeIndex(&b, dup); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeIndex(bytes.NewReader(b.Bytes())); !errors.Is(err, ErrInvalid) {
			t.Fatalf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("non-local file path", func(t *testing.T) {
		esc := &Index{Entries: []IndexEntry{{ID: "mon-1", File: "../escape.emon"}}}
		var b bytes.Buffer
		if err := EncodeIndex(&b, esc); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeIndex(bytes.NewReader(b.Bytes())); !errors.Is(err, ErrInvalid) {
			t.Fatalf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("empty index is valid", func(t *testing.T) {
		var b bytes.Buffer
		if err := EncodeIndex(&b, &Index{}); err != nil {
			t.Fatal(err)
		}
		idx, err := DecodeIndex(bytes.NewReader(b.Bytes()))
		if err != nil || len(idx.Entries) != 0 {
			t.Fatalf("empty index: %v %v", idx, err)
		}
	})
}
