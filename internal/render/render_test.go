package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/floorplan"
)

func gradient(g floorplan.Grid) []float64 {
	v := make([]float64, g.N())
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestASCIIShape(t *testing.T) {
	g := floorplan.Grid{W: 7, H: 4}
	s := ASCII(g, gradient(g), Options{})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for _, l := range lines {
		if len(l) != 7 {
			t.Fatalf("line %q has %d chars, want 7", l, len(l))
		}
	}
}

func TestASCIIExtremes(t *testing.T) {
	g := floorplan.Grid{W: 2, H: 1}
	s := ASCII(g, []float64{0, 100}, Options{})
	if s[0] != ' ' || s[1] != '@' {
		t.Fatalf("extremes rendered as %q, want \" @\"", s[:2])
	}
}

func TestASCIIFixedScaleClamps(t *testing.T) {
	g := floorplan.Grid{W: 3, H: 1}
	s := ASCII(g, []float64{-10, 50, 200}, Options{Lo: 0, Hi: 100})
	if s[0] != ' ' {
		t.Fatal("below-scale value must clamp to coldest")
	}
	if s[2] != '@' {
		t.Fatal("above-scale value must clamp to hottest")
	}
}

func TestASCIIConstantMap(t *testing.T) {
	g := floorplan.Grid{W: 3, H: 2}
	s := ASCII(g, []float64{5, 5, 5, 5, 5, 5}, Options{})
	// Must not divide by zero; any uniform rendering is fine.
	if len(strings.TrimRight(s, "\n")) == 0 {
		t.Fatal("empty render")
	}
}

func TestASCIISensorsMarked(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 4}
	s := ASCII(g, gradient(g), Options{Sensors: []int{g.Index(2, 1)}})
	lines := strings.Split(s, "\n")
	if lines[2][1] != 'S' {
		t.Fatalf("sensor not marked: %q", lines[2])
	}
}

func TestASCIILengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ASCII(floorplan.Grid{W: 3, H: 3}, []float64{1}, Options{})
}

func TestSideBySide(t *testing.T) {
	g := floorplan.Grid{W: 5, H: 3}
	a, b := gradient(g), gradient(g)
	s := SideBySide(g, []string{"left", "right"}, [][]float64{a, b}, Options{})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // caption + 3 rows
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "left") || !strings.Contains(lines[0], "right") {
		t.Fatalf("caption line %q", lines[0])
	}
	// Shared scale: identical maps must render identically in both panels.
	row := lines[1]
	leftPart, rightPart := row[:5], row[7:12]
	if leftPart != rightPart {
		t.Fatalf("panels differ for identical maps: %q vs %q", leftPart, rightPart)
	}
}

func TestSideBySideMismatchPanics(t *testing.T) {
	g := floorplan.Grid{W: 2, H: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SideBySide(g, []string{"one"}, [][]float64{gradient(g), gradient(g)}, Options{})
}

func TestSideBySideEmpty(t *testing.T) {
	if s := SideBySide(floorplan.Grid{W: 2, H: 2}, nil, nil, Options{}); s != "" {
		t.Fatalf("empty input rendered %q", s)
	}
}

func TestPGMFormat(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 5}
	img := PGM(g, gradient(g), Options{})
	if !bytes.HasPrefix(img, []byte("P5\n6 5\n255\n")) {
		t.Fatalf("bad header: %q", img[:12])
	}
	payload := img[len("P5\n6 5\n255\n"):]
	if len(payload) != 30 {
		t.Fatalf("payload %d bytes, want 30", len(payload))
	}
	// First pixel is the coldest (0), last the hottest (255)? Column
	// stacking: pixel order is row-major in the image, value = i = col*H+row,
	// so the bottom-right pixel has the largest value.
	if payload[0] != 0 {
		t.Fatalf("first pixel %d, want 0", payload[0])
	}
	if payload[len(payload)-1] != 255 {
		t.Fatalf("last pixel %d, want 255", payload[len(payload)-1])
	}
}

func TestPGMSensorsWhite(t *testing.T) {
	g := floorplan.Grid{W: 3, H: 3}
	img := PGM(g, make([]float64, 9), Options{Sensors: []int{g.Index(0, 0)}})
	payload := img[len("P5\n3 3\n255\n"):]
	if payload[0] != 255 {
		t.Fatal("sensor pixel not white")
	}
}

func TestSensorMapLegend(t *testing.T) {
	fp := floorplan.UltraSparcT1()
	g := floorplan.Grid{W: 12, H: 14}
	r := fp.Rasterize(g)
	s := SensorMap(r, []int{g.Index(0, 0)})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 14 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0][0] != 'S' {
		t.Fatal("sensor not marked")
	}
	joined := s
	for _, ch := range []string{"c", "$", "x", "f"} {
		if !strings.Contains(joined, ch) {
			t.Fatalf("legend char %q missing (T1 has all block kinds)", ch)
		}
	}
}
