// Package render visualizes thermal maps and sensor layouts as ASCII art and
// binary PGM images — the repository's stand-in for the paper's color plots
// (Figs. 2, 4 and 6).
package render

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// ramp is the ASCII intensity ramp, cold → hot.
const ramp = " .:-=+*#%@"

// Options control rendering.
type Options struct {
	// Lo/Hi fix the color scale; if Lo == Hi the map's own range is used.
	Lo, Hi float64
	// Sensors marks these cell indices with 'S' (ASCII) or white (PGM).
	Sensors []int
}

// ASCII renders the vectorized map as H lines of W characters.
func ASCII(g floorplan.Grid, values []float64, opt Options) string {
	if len(values) != g.N() {
		panic(fmt.Sprintf("render: %d values for %d cells", len(values), g.N()))
	}
	lo, hi := opt.Lo, opt.Hi
	if lo == hi {
		lo, hi = mat.MinMax(values)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	sensor := sensorSet(opt.Sensors)
	var b strings.Builder
	b.Grow((g.W + 1) * g.H)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			idx := g.Index(row, col)
			if sensor[idx] {
				b.WriteByte('S')
				continue
			}
			t := (values[idx] - lo) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			c := int(t * float64(len(ramp)-1))
			b.WriteByte(ramp[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SideBySide renders multiple maps on a shared scale, separated by a gutter,
// with a one-line caption above each.
func SideBySide(g floorplan.Grid, labels []string, maps [][]float64, opt Options) string {
	if len(labels) != len(maps) {
		panic("render: labels/maps length mismatch")
	}
	if len(maps) == 0 {
		return ""
	}
	// Common scale across all maps unless fixed.
	if opt.Lo == opt.Hi {
		lo, hi := mat.MinMax(maps[0])
		for _, m := range maps[1:] {
			l, h := mat.MinMax(m)
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
		opt.Lo, opt.Hi = lo, hi
	}
	rendered := make([][]string, len(maps))
	for i, m := range maps {
		rendered[i] = strings.Split(strings.TrimRight(ASCII(g, m, opt), "\n"), "\n")
	}
	var b strings.Builder
	for i, lbl := range labels {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(lbl, g.W))
	}
	b.WriteByte('\n')
	for row := 0; row < g.H; row++ {
		for i := range rendered {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(rendered[i][row])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) > w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

// PGM renders the map as a binary (P5) PGM image, one pixel per cell,
// 0 = coldest, 255 = hottest. Sensor cells are forced to 255.
func PGM(g floorplan.Grid, values []float64, opt Options) []byte {
	if len(values) != g.N() {
		panic(fmt.Sprintf("render: %d values for %d cells", len(values), g.N()))
	}
	lo, hi := opt.Lo, opt.Hi
	if lo == hi {
		lo, hi = mat.MinMax(values)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	sensor := sensorSet(opt.Sensors)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", g.W, g.H)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			idx := g.Index(row, col)
			if sensor[idx] {
				buf.WriteByte(255)
				continue
			}
			t := (values[idx] - lo) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			buf.WriteByte(byte(t * 255))
		}
	}
	return buf.Bytes()
}

// SensorMap renders sensor locations over a floorplan block outline: block
// kinds are letters (c=core, $=cache, x=crossbar, f=fpu, .=other), sensors
// are 'S'.
func SensorMap(r *floorplan.Raster, sensors []int) string {
	sensor := sensorSet(sensors)
	g := r.Grid
	var b strings.Builder
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			idx := g.Index(row, col)
			if sensor[idx] {
				b.WriteByte('S')
				continue
			}
			bi := r.BlockOf[idx]
			if bi < 0 {
				b.WriteByte(' ')
				continue
			}
			switch r.Plan.Blocks[bi].Kind {
			case floorplan.KindCore:
				b.WriteByte('c')
			case floorplan.KindCache:
				b.WriteByte('$')
			case floorplan.KindCrossbar:
				b.WriteByte('x')
			case floorplan.KindFPU:
				b.WriteByte('f')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sensorSet(sensors []int) map[int]bool {
	out := make(map[int]bool, len(sensors))
	for _, s := range sensors {
		out[s] = true
	}
	return out
}
