package track

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/floorplan"
	"repro/internal/noise"
	"repro/internal/place"
	"repro/internal/recon"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixB    *basis.Basis
	fixS    []int
	fixErr  error
)

func fixture(t *testing.T) (*dataset.Dataset, *basis.Basis, []int) {
	t.Helper()
	fixOnce.Do(func() {
		fixDS, fixErr = dataset.Generate(floorplan.UltraSparcT1(), dataset.GenConfig{
			Grid:      floorplan.Grid{W: 14, H: 12},
			Snapshots: 200,
			Seed:      8,
		})
		if fixErr != nil {
			return
		}
		fixB, fixErr = basis.TrainPCA(fixDS, 10, basis.PCAConfig{Seed: 8})
		if fixErr != nil {
			return
		}
		psi, err := fixB.PsiK(8)
		if err != nil {
			fixErr = err
			return
		}
		fixS, fixErr = (&place.Greedy{}).Allocate(place.Input{Psi: psi, Grid: fixDS.Grid, M: 8})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS, fixB, fixS
}

func TestNewKalmanValidates(t *testing.T) {
	_, b, sensors := fixture(t)
	if _, err := NewKalman(b, 0, sensors, Config{}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := NewKalman(b, 4, nil, Config{}); err == nil {
		t.Fatal("no sensors should fail")
	}
	if _, err := NewKalman(b, 4, []int{-1}, Config{}); err == nil {
		t.Fatal("bad sensor index should fail")
	}
	if _, err := NewKalman(b, 4, sensors, Config{Rho: 1.5}); err == nil {
		t.Fatal("rho > 1 should fail")
	}
	if _, err := NewKalman(b, 4, sensors, Config{MeasurementVar: -1}); err == nil {
		t.Fatal("negative measurement var should fail")
	}
}

func TestKalmanConvergesToTruthOnStaticScene(t *testing.T) {
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 6, sensors, Config{ProcessScale: 1e-6, MeasurementVar: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Map(50)
	readings := kf.Sample(truth)
	var est []float64
	for i := 0; i < 200; i++ {
		est, err = kf.Step(readings)
		if err != nil {
			t.Fatal(err)
		}
	}
	// With vanishing process noise and repeated identical measurements the
	// filter must converge to the least-squares solution for those sensors.
	ls, err := recon.New(b, 6, sensors)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ls.Reconstruct(readings)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range est {
		if d := math.Abs(est[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("static-scene estimate %v °C from the least-squares limit", worst)
	}
}

func TestKalmanUncertaintyShrinks(t *testing.T) {
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 6, sensors, Config{ProcessScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	before := kf.CovarianceTrace()
	readings := kf.Sample(ds.Map(10))
	for i := 0; i < 20; i++ {
		if _, err := kf.Step(readings); err != nil {
			t.Fatal(err)
		}
	}
	after := kf.CovarianceTrace()
	if after >= before {
		t.Fatalf("covariance trace rose: %v → %v", before, after)
	}
	if kf.Steps() != 20 {
		t.Fatalf("steps = %d", kf.Steps())
	}
}

func TestKalmanBeatsMemorylessLSUnderNoise(t *testing.T) {
	// On a slowly varying trace with noisy sensors, the tracker's MSE must
	// beat per-snapshot least squares with the same sensors and K.
	ds, b, sensors := fixture(t)
	const k = 6
	kf, err := NewKalman(b, k, sensors, Config{ProcessScale: 0.05, MeasurementVar: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := recon.New(b, k, sensors)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var kfSq, lsSq float64
	var count int
	// Skip the filter's burn-in when scoring.
	const burnIn = 10
	for j := 0; j < ds.T(); j++ {
		truth := ds.Map(j)
		clean := kf.Sample(truth)
		noisy := make([]float64, len(clean))
		for i := range clean {
			noisy[i] = clean[i] + rng.NormFloat64() // 1 °C sensor noise
		}
		kfEst, err := kf.Step(noisy)
		if err != nil {
			t.Fatal(err)
		}
		lsEst, err := ls.Reconstruct(noisy)
		if err != nil {
			t.Fatal(err)
		}
		if j < burnIn {
			continue
		}
		for i := range truth {
			dk := truth[i] - kfEst[i]
			dl := truth[i] - lsEst[i]
			kfSq += dk * dk
			lsSq += dl * dl
		}
		count += len(truth)
	}
	kfMSE := kfSq / float64(count)
	lsMSE := lsSq / float64(count)
	if kfMSE >= lsMSE {
		t.Fatalf("Kalman MSE %v not below least-squares %v under noise", kfMSE, lsMSE)
	}
}

func TestKalmanWorksWithFewerSensorsThanK(t *testing.T) {
	ds, b, sensors := fixture(t)
	// M=3 < K=6: least squares is impossible, the filter still runs.
	kf, err := NewKalman(b, 6, sensors[:3], Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := kf.Step(kf.Sample(ds.Map(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != ds.N() {
		t.Fatalf("estimate length %d", len(est))
	}
}

func TestKalmanResetRestoresPrior(t *testing.T) {
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 5, sensors, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prior := kf.CovarianceTrace()
	for i := 0; i < 5; i++ {
		if _, err := kf.Step(kf.Sample(ds.Map(i))); err != nil {
			t.Fatal(err)
		}
	}
	kf.Reset()
	if math.Abs(kf.CovarianceTrace()-prior) > 1e-12 {
		t.Fatal("Reset did not restore the prior covariance")
	}
	if kf.Steps() != 0 {
		t.Fatal("Reset did not clear the step counter")
	}
	for _, a := range kf.Coefficients() {
		if a != 0 {
			t.Fatal("Reset did not clear the state")
		}
	}
}

func TestKalmanTracksChangingScene(t *testing.T) {
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 6, sensors, Config{ProcessScale: 0.2, MeasurementVar: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the real evolving trace; the tracking error must stay bounded
	// and comparable to the subspace floor.
	var worst float64
	for j := 0; j < 100; j++ {
		truth := ds.Map(j)
		est, err := kf.Step(kf.Sample(truth))
		if err != nil {
			t.Fatal(err)
		}
		if j < 5 {
			continue
		}
		var sq float64
		for i := range truth {
			d := truth[i] - est[i]
			sq += d * d
		}
		sq /= float64(len(truth))
		if sq > worst {
			worst = sq
		}
	}
	if worst > 5 {
		t.Fatalf("per-map tracking MSE reached %v °C²", worst)
	}
}

func TestKalmanReadingCountChecked(t *testing.T) {
	_, b, sensors := fixture(t)
	kf, err := NewKalman(b, 4, sensors, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kf.Step([]float64{1}); err == nil {
		t.Fatal("expected reading-count error")
	}
}

func TestKalmanWithSensorModel(t *testing.T) {
	// End-to-end with the realistic sensor model: calibration error biases
	// the estimate but the filter must remain stable (no divergence).
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 6, sensors, Config{ProcessScale: 0.1, MeasurementVar: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bank := noise.TypicalSensor().NewSensors(len(sensors), rand.New(rand.NewSource(5)))
	var lastMSE float64
	for j := 0; j < 150; j++ {
		truth := ds.Map(j % ds.T())
		est, err := kf.Step(bank.Read(kf.Sample(truth)))
		if err != nil {
			t.Fatal(err)
		}
		var sq float64
		for i := range truth {
			d := truth[i] - est[i]
			sq += d * d
		}
		lastMSE = sq / float64(len(truth))
		if math.IsNaN(lastMSE) || lastMSE > 100 {
			t.Fatalf("filter diverged at step %d: MSE %v", j, lastMSE)
		}
	}
	if lastMSE > 10 {
		t.Fatalf("steady-state MSE %v with realistic sensors", lastMSE)
	}
}

func TestStepBatchMatchesSequentialSteps(t *testing.T) {
	ds, b, sensors := fixture(t)
	mk := func() *Kalman {
		kf, err := NewKalman(b, 6, sensors, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return kf
	}
	seq, bat := mk(), mk()
	var batch [][]float64
	var want [][]float64
	for j := 0; j < 12; j++ {
		y := seq.Sample(ds.Map(j))
		batch = append(batch, y)
		est, err := seq.Step(y)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, est)
	}
	got, err := bat.StepBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d estimates, want %d", len(got), len(want))
	}
	for j := range want {
		for c := range want[j] {
			if got[j][c] != want[j][c] {
				t.Fatalf("step %d cell %d: batch %v != sequential %v", j, c, got[j][c], want[j][c])
			}
		}
	}
	if bat.Steps() != seq.Steps() {
		t.Fatalf("step counters diverged: %d vs %d", bat.Steps(), seq.Steps())
	}
}

func TestStepRejectsNonFinite(t *testing.T) {
	_, b, sensors := fixture(t)
	kf, err := NewKalman(b, 4, sensors, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, len(sensors))
	bad[1] = math.NaN()
	if _, err := kf.Step(bad); err == nil {
		t.Fatal("NaN reading should fail")
	}
	if kf.Steps() != 0 {
		t.Fatalf("failed step must not advance the filter (steps=%d)", kf.Steps())
	}
	good := make([]float64, len(sensors))
	for i := range good {
		good[i] = 45
	}
	if _, err := kf.StepBatch([][]float64{good, bad}); err == nil {
		t.Fatal("NaN in batch should fail")
	}
	if kf.Steps() != 0 {
		t.Fatalf("rejected batch must leave the filter untouched (steps=%d)", kf.Steps())
	}
}

func TestKalmanConcurrentSteps(t *testing.T) {
	// Concurrent Step calls on one tracker must be serialized, not race: the
	// step counter ends exactly at the total and the covariance stays finite.
	ds, b, sensors := fixture(t)
	kf, err := NewKalman(b, 6, sensors, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := kf.Step(kf.Sample(ds.Map((g*per + i) % ds.T()))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := kf.Steps(); got != goroutines*per {
		t.Fatalf("steps = %d, want %d", got, goroutines*per)
	}
	if tr := kf.CovarianceTrace(); math.IsNaN(tr) || tr <= 0 {
		t.Fatalf("covariance trace = %v", tr)
	}
}
