// Package track adds temporal filtering on top of the paper's memoryless
// least-squares reconstruction: a Kalman filter over the subspace
// coefficients, in the spirit of Zhang & Srivastava's adaptive thermal
// tracking (the paper's related work [19]). Thermal maps evolve slowly, so
// fusing the previous state with each new sensor vector suppresses
// measurement noise that per-snapshot least squares must swallow whole.
//
// State-space model, all in the K-dimensional coefficient space:
//
//	α_t = ρ·α_{t−1} + u_t,  u_t ~ N(0, Q),   Q = q·diag(λ)
//	y_t = Ψ̃_K·α_t + w_t,    w_t ~ N(0, R),   R = r·I
//
// The stationary prior of the coefficients is exactly diag(λ) — the
// eigenvalues from Proposition 1 — which the filter uses as its initial
// covariance, so the PCA training doubles as the tracker's calibration.
package track

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/basis"
	"repro/internal/mat"
)

// Config tunes the Kalman tracker.
type Config struct {
	// Rho is the AR(1) coefficient of the state dynamics in (0, 1].
	// 1 (default) is a random walk.
	Rho float64
	// ProcessScale is q: the per-step process variance as a fraction of each
	// coefficient's stationary variance λ_k. Default 0.05.
	ProcessScale float64
	// MeasurementVar is r: the per-sensor measurement noise variance [°C²].
	// Default 0.25 (0.5 °C read noise).
	MeasurementVar float64
}

func (c *Config) defaults() {
	if c.Rho == 0 {
		c.Rho = 1
	}
	if c.ProcessScale == 0 {
		c.ProcessScale = 0.05
	}
	if c.MeasurementVar == 0 {
		c.MeasurementVar = 0.25
	}
}

// Errors returned by NewKalman.
var (
	ErrBadConfig = errors.New("track: invalid configuration")
)

// Kalman is the temporal tracker. It carries filter state, so updates are
// inherently ordered; an internal mutex serializes Step/StepBatch/Reset, which
// makes the tracker safe to share between the goroutines of a streaming
// engine (each update is atomic, and interleaving order is the arrival
// order at the lock).
type Kalman struct {
	cfg     Config
	b       *basis.Basis
	k       int
	sensors []int

	psiT  *mat.Matrix // M×K sensing matrix Ψ̃_K
	meanS []float64   // training mean at the sensors

	mu    sync.Mutex
	alpha []float64   // state estimate (K)
	p     *mat.Matrix // state covariance (K×K)
	prior *mat.Matrix // diag(λ_0..λ_{K-1}), the stationary covariance
	steps int
}

// NewKalman builds a tracker for the first k basis vectors observed at the
// given sensor cells. Unlike least squares, the filter works for any M ≥ 1
// (even M < K): unobserved directions simply stay at their prior.
func NewKalman(b *basis.Basis, k int, sensors []int, cfg Config) (*Kalman, error) {
	cfg.defaults()
	if cfg.Rho <= 0 || cfg.Rho > 1 {
		return nil, fmt.Errorf("%w: rho %v outside (0,1]", ErrBadConfig, cfg.Rho)
	}
	if cfg.ProcessScale < 0 || cfg.MeasurementVar <= 0 {
		return nil, fmt.Errorf("%w: process %v, measurement %v", ErrBadConfig, cfg.ProcessScale, cfg.MeasurementVar)
	}
	if k < 1 || k > b.KMax() {
		return nil, fmt.Errorf("track: %w", basis.ErrKRange)
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("%w: no sensors", ErrBadConfig)
	}
	for _, s := range sensors {
		if s < 0 || s >= b.N() {
			return nil, fmt.Errorf("track: sensor %d outside [0,%d)", s, b.N())
		}
	}
	psiK, err := b.PsiK(k)
	if err != nil {
		return nil, err
	}
	psiT := psiK.SelectRows(sensors)
	meanS := make([]float64, len(sensors))
	for i, s := range sensors {
		meanS[i] = b.Mean[s]
	}
	prior := mat.New(k, k)
	for i := 0; i < k; i++ {
		lam := b.Importance[i]
		if lam <= 0 {
			lam = 1e-12
		}
		prior.Set(i, i, lam)
	}
	kf := &Kalman{
		cfg:     cfg,
		b:       b,
		k:       k,
		sensors: append([]int(nil), sensors...),
		psiT:    psiT,
		meanS:   meanS,
	}
	kf.Reset()
	return kf, nil
}

// Reset returns the filter to its stationary prior (α = 0 — the mean map —
// with covariance diag(λ)).
func (kf *Kalman) Reset() {
	kf.mu.Lock()
	defer kf.mu.Unlock()
	kf.alpha = make([]float64, kf.k)
	kf.prior = mat.New(kf.k, kf.k)
	for i := 0; i < kf.k; i++ {
		lam := kf.b.Importance[i]
		if lam <= 0 {
			lam = 1e-12
		}
		kf.prior.Set(i, i, lam)
	}
	kf.p = kf.prior.Clone()
	kf.steps = 0
}

// K returns the subspace dimension.
func (kf *Kalman) K() int { return kf.k }

// Steps returns the number of measurement updates applied since Reset.
func (kf *Kalman) Steps() int {
	kf.mu.Lock()
	defer kf.mu.Unlock()
	return kf.steps
}

// Sensors returns a copy of the sensor cells.
func (kf *Kalman) Sensors() []int { return append([]int(nil), kf.sensors...) }

// Sample extracts the tracker's sensor readings from a full map.
func (kf *Kalman) Sample(x []float64) []float64 {
	out := make([]float64, len(kf.sensors))
	for i, s := range kf.sensors {
		out[i] = x[s]
	}
	return out
}

// Step runs one predict/update cycle on the sensor readings (°C) and
// returns the current full-map estimate.
func (kf *Kalman) Step(readings []float64) ([]float64, error) {
	kf.mu.Lock()
	defer kf.mu.Unlock()
	return kf.stepLocked(readings)
}

// StepBatch smooths a streamed batch: it runs one predict/update cycle per
// reading vector, in order, under a single lock acquisition, and returns the
// full-map estimate after each step. A concurrent engine can therefore fan
// independent monitors out across goroutines while each tracker still sees
// its own snapshots strictly in sequence.
//
// The whole batch is validated before the first update, so a rejected batch
// leaves the filter state untouched — a client may safely retry it without
// double-applying a valid prefix.
func (kf *Kalman) StepBatch(readings [][]float64) ([][]float64, error) {
	for i, y := range readings {
		if err := kf.checkReadings(y); err != nil {
			return nil, fmt.Errorf("track: batch step %d: %w", i, err)
		}
	}
	kf.mu.Lock()
	defer kf.mu.Unlock()
	out := make([][]float64, len(readings))
	for i, y := range readings {
		est, err := kf.stepLocked(y)
		if err != nil {
			return nil, fmt.Errorf("track: batch step %d: %w", i, err)
		}
		out[i] = est
	}
	return out, nil
}

// checkReadings validates one reading vector's shape and finiteness.
func (kf *Kalman) checkReadings(readings []float64) error {
	if len(readings) != len(kf.sensors) {
		return fmt.Errorf("track: %d readings for %d sensors", len(readings), len(kf.sensors))
	}
	for i, v := range readings {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("track: non-finite reading %d (%v)", i, v)
		}
	}
	return nil
}

// stepLocked is Step's body; the caller must hold kf.mu.
func (kf *Kalman) stepLocked(readings []float64) ([]float64, error) {
	if err := kf.checkReadings(readings); err != nil {
		return nil, err
	}
	k := kf.k
	m := len(kf.sensors)
	rho := kf.cfg.Rho

	// Predict: α⁻ = ρ·α, P⁻ = ρ²·P + Q.
	for i := range kf.alpha {
		kf.alpha[i] *= rho
	}
	pMinus := kf.p.Clone().Scale(rho * rho)
	for i := 0; i < k; i++ {
		pMinus.Add(i, i, kf.cfg.ProcessScale*kf.prior.At(i, i))
	}

	// Innovation on centered readings.
	centered := mat.SubVec(readings, kf.meanS)
	innov := mat.SubVec(centered, mat.MulVec(kf.psiT, kf.alpha))

	// S = Ψ̃ P⁻ Ψ̃ᵀ + R.
	pht := mat.MulTB(pMinus, kf.psiT) // K×M: P⁻ Ψ̃ᵀ
	s := mat.Mul(kf.psiT, pht)        // M×M
	for i := 0; i < m; i++ {
		s.Add(i, i, kf.cfg.MeasurementVar)
	}
	chol, err := mat.NewCholesky(s)
	if err != nil {
		return nil, fmt.Errorf("track: innovation covariance not SPD: %w", err)
	}
	// Gain G = P⁻ Ψ̃ᵀ S⁻¹, built column by column: G = (S⁻¹ (P⁻Ψ̃ᵀ)ᵀ)ᵀ.
	gain := mat.New(k, m)
	for row := 0; row < k; row++ {
		sol := chol.Solve(pht.Row(row))
		gain.SetRow(row, sol)
	}

	// Update: α += G·innov, P = (I − GΨ̃) P⁻ (Joseph-free form; S is SPD and
	// the gain exact, so the plain form stays symmetric within round-off,
	// and we re-symmetrize below).
	mat.AXPY(1, mat.MulVec(gain, innov), kf.alpha)
	gPsi := mat.Mul(gain, kf.psiT) // K×K
	iMinus := mat.Identity(k).SubMatrix(gPsi)
	kf.p = mat.Mul(iMinus, pMinus)
	// Re-symmetrize to stop round-off drift.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := 0.5 * (kf.p.At(i, j) + kf.p.At(j, i))
			kf.p.Set(i, j, v)
			kf.p.Set(j, i, v)
		}
	}
	kf.steps++
	return kf.b.Synthesize(kf.alpha), nil
}

// Coefficients returns a copy of the current state estimate α.
func (kf *Kalman) Coefficients() []float64 {
	kf.mu.Lock()
	defer kf.mu.Unlock()
	return mat.CopyVec(kf.alpha)
}

// CovarianceTrace returns tr(P) — a scalar uncertainty summary that must
// shrink as measurements accumulate on a static scene.
func (kf *Kalman) CovarianceTrace() float64 {
	kf.mu.Lock()
	defer kf.mu.Unlock()
	var tr float64
	for i := 0; i < kf.k; i++ {
		tr += kf.p.At(i, i)
	}
	return tr
}
