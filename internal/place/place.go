// Package place implements sensor-allocation algorithms: the paper's greedy
// correlation-elimination (Algorithm 1), the energy-center heuristic of the
// k-LSE paper [12] it is compared against, and random/uniform/exhaustive
// references used in tests and ablations.
package place

import (
	"errors"
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Input bundles everything an allocator may need. Individual allocators use
// different subsets of the fields.
type Input struct {
	// Psi is the N×K subspace basis Ψ_K (greedy, exhaustive).
	Psi *mat.Matrix
	// Energy is the per-cell mean squared (centered) temperature over the
	// training set — the "thermal energy map" of [12] (energy-center).
	Energy []float64
	// Grid locates cells geometrically (energy-center, uniform).
	Grid floorplan.Grid
	// M is the number of sensors to place.
	M int
	// Mask, if non-nil, restricts placement to cells with Mask[i] == true
	// (the paper's Fig. 6 design constraints).
	Mask []bool
}

// Allocator is a sensor-placement strategy.
type Allocator interface {
	// Name identifies the strategy in reports.
	Name() string
	// Allocate returns M distinct cell indices (sorted ascending).
	Allocate(in Input) ([]int, error)
}

// Errors shared by allocators.
var (
	ErrTooFewCells = errors.New("place: fewer allowed cells than sensors")
	ErrBadInput    = errors.New("place: invalid input")
)

// allowedCells lists the cell indices permitted by the mask (all cells when
// the mask is nil).
func allowedCells(n int, mask []bool) ([]int, error) {
	if mask == nil {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	if len(mask) != n {
		return nil, fmt.Errorf("%w: mask length %d for %d cells", ErrBadInput, len(mask), n)
	}
	var out []int
	for i, ok := range mask {
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

func validateCount(m, available int) error {
	if m < 1 {
		return fmt.Errorf("%w: M=%d", ErrBadInput, m)
	}
	if available < m {
		return fmt.Errorf("%w: %d allowed cells for M=%d", ErrTooFewCells, available, m)
	}
	return nil
}
