package place

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// fixture: a deterministic orthonormal 40×4 basis on an 8×5 grid.
var (
	fixGrid = floorplan.Grid{W: 8, H: 5}
	fixPsi  = mat.RandomOrthonormal(40, 4, rand.New(rand.NewSource(99)))
)

func distinctSorted(t *testing.T, s []int, m, n int) {
	t.Helper()
	if len(s) != m {
		t.Fatalf("got %d sensors, want %d", len(s), m)
	}
	if !sort.IntsAreSorted(s) {
		t.Fatalf("not sorted: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			t.Fatalf("duplicate sensor %d", s[i])
		}
	}
	for _, v := range s {
		if v < 0 || v >= n {
			t.Fatalf("sensor %d out of range", v)
		}
	}
}

func condOf(t *testing.T, psi *mat.Matrix, sensors []int) float64 {
	t.Helper()
	c, err := mat.Cond(psi.SelectRows(sensors))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGreedyBasics(t *testing.T) {
	g := &Greedy{}
	s, err := g.Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 8})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 8, 40)
	if math.IsInf(condOf(t, fixPsi, s), 1) {
		t.Fatal("greedy produced rank-deficient selection")
	}
}

func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	g := &Greedy{}
	s, err := g.Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 6})
	if err != nil {
		t.Fatal(err)
	}
	greedyCond := condOf(t, fixPsi, s)
	var randCondSum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		r := &Random{Seed: int64(i)}
		rs, err := r.Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 6})
		if err != nil {
			t.Fatal(err)
		}
		c := condOf(t, fixPsi, rs)
		if math.IsInf(c, 1) {
			c = 100 // cap degenerate draws
		}
		randCondSum += c
	}
	if greedyCond > randCondSum/trials {
		t.Fatalf("greedy κ %v worse than random average %v", greedyCond, randCondSum/trials)
	}
}

func TestGreedyNearOptimalOnTinyInstance(t *testing.T) {
	// Certify against the exhaustive optimum on an instance small enough to
	// enumerate: 14 rows, K=2, M=3.
	rng := rand.New(rand.NewSource(5))
	psi := mat.RandomOrthonormal(14, 2, rng)
	in := Input{Psi: psi, Grid: floorplan.Grid{W: 7, H: 2}, M: 3}
	opt, err := (&Exhaustive{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := (&Greedy{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	co, cg := condOf(t, psi, opt), condOf(t, psi, grd)
	if cg > 2.5*co {
		t.Fatalf("greedy κ %v not within 2.5× of optimal %v", cg, co)
	}
}

func TestGreedyRespectsMask(t *testing.T) {
	mask := make([]bool, 40)
	for i := 10; i < 30; i++ {
		mask[i] = true
	}
	s, err := (&Greedy{}).Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 6, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if !mask[v] {
			t.Fatalf("sensor %d outside mask", v)
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, err := (&Greedy{}).Allocate(Input{Grid: fixGrid, M: 4}); !errors.Is(err, ErrBadInput) {
		t.Fatal("missing Psi should fail")
	}
	if _, err := (&Greedy{}).Allocate(Input{Psi: fixPsi, M: 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("M < K should fail")
	}
	tiny := make([]bool, 40)
	tiny[0] = true
	if _, err := (&Greedy{}).Allocate(Input{Psi: fixPsi, M: 5, Mask: tiny}); !errors.Is(err, ErrTooFewCells) {
		t.Fatal("too-small mask should fail")
	}
	if _, err := (&Greedy{}).Allocate(Input{Psi: fixPsi, M: 0}); !errors.Is(err, ErrBadInput) {
		t.Fatal("M=0 should fail")
	}
}

func TestGreedyRankCheckScheduleAblation(t *testing.T) {
	// Checking rank at every step must give the same allocation as the
	// windowed default schedule.
	for seed := int64(0); seed < 5; seed++ {
		psi := mat.RandomOrthonormal(24, 3, rand.New(rand.NewSource(seed)))
		in := Input{Psi: psi, Grid: floorplan.Grid{W: 6, H: 4}, M: 5}
		a, err := (&Greedy{}).Allocate(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (&Greedy{CheckEveryStep: true}).Allocate(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: schedule changed result size", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: schedules disagree: %v vs %v", seed, a, b)
			}
		}
	}
}

func TestGreedyHeapMatchesRescanAblation(t *testing.T) {
	// The lazy max-heap must reproduce the linear-rescan victim sequence
	// exactly — same tie-breaks, same rank-safeguard interactions — so the
	// two modes yield identical allocations on every instance.
	for seed := int64(0); seed < 8; seed++ {
		for _, signed := range []bool{false, true} {
			for _, every := range []bool{false, true} {
				psi := mat.RandomOrthonormal(36, 4, rand.New(rand.NewSource(seed)))
				in := Input{Psi: psi, Grid: floorplan.Grid{W: 6, H: 6}, M: 6}
				heap, err := (&Greedy{SignedMax: signed, CheckEveryStep: every}).Allocate(in)
				if err != nil {
					t.Fatal(err)
				}
				rescan, err := (&Greedy{SignedMax: signed, CheckEveryStep: every, Rescan: true}).Allocate(in)
				if err != nil {
					t.Fatal(err)
				}
				if len(heap) != len(rescan) {
					t.Fatalf("seed %d signed=%v every=%v: heap %v vs rescan %v", seed, signed, every, heap, rescan)
				}
				for i := range heap {
					if heap[i] != rescan[i] {
						t.Fatalf("seed %d signed=%v every=%v: heap %v vs rescan %v", seed, signed, every, heap, rescan)
					}
				}
			}
		}
	}
}

func TestGreedyHeapMatchesRescanMasked(t *testing.T) {
	// Same equivalence under a placement mask and a tight sensor budget,
	// where the rank safeguard actually participates.
	mask := make([]bool, 40)
	for i := 4; i < 36; i++ {
		mask[i] = true
	}
	in := Input{Psi: fixPsi, Grid: fixGrid, M: 5, Mask: mask}
	heap, err := (&Greedy{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	rescan, err := (&Greedy{Rescan: true}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(heap) != len(rescan) {
		t.Fatalf("heap %v vs rescan %v", heap, rescan)
	}
	for i := range heap {
		if heap[i] != rescan[i] {
			t.Fatalf("heap %v vs rescan %v", heap, rescan)
		}
	}
}

func TestGreedySignedMaxVariant(t *testing.T) {
	s, err := (&Greedy{SignedMax: true}).Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 6})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 6, 40)
}

func TestGreedySkipsZeroRows(t *testing.T) {
	psi := fixPsi.Clone()
	for j := 0; j < psi.Cols(); j++ {
		psi.Set(7, j, 0) // dead row
	}
	s, err := (&Greedy{}).Allocate(Input{Psi: psi, Grid: fixGrid, M: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v == 7 {
			t.Fatal("zero row selected")
		}
	}
}

func energyFixture() []float64 {
	// Energy concentrated in the top-left quadrant of an 8×5 grid.
	e := make([]float64, fixGrid.N())
	for row := 0; row < fixGrid.H; row++ {
		for col := 0; col < fixGrid.W; col++ {
			v := 0.1
			if row < 2 && col < 4 {
				v = 10
			}
			e[fixGrid.Index(row, col)] = v
		}
	}
	return e
}

func TestEnergyCenterBasics(t *testing.T) {
	s, err := (&EnergyCenter{}).Allocate(Input{Grid: fixGrid, Energy: energyFixture(), M: 4})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 4, fixGrid.N())
}

func TestEnergyCenterFollowsEnergy(t *testing.T) {
	s, err := (&EnergyCenter{}).Allocate(Input{Grid: fixGrid, Energy: energyFixture(), M: 4})
	if err != nil {
		t.Fatal(err)
	}
	inHot := 0
	for _, idx := range s {
		row, col := fixGrid.RowCol(idx)
		if row < 2 && col < 4 {
			inHot++
		}
	}
	if inHot < 3 {
		t.Fatalf("only %d of 4 sensors in the high-energy quadrant: %v", inHot, s)
	}
}

func TestEnergyCenterRespectsMask(t *testing.T) {
	mask := make([]bool, fixGrid.N())
	// Forbid the hot quadrant entirely.
	for row := 0; row < fixGrid.H; row++ {
		for col := 0; col < fixGrid.W; col++ {
			mask[fixGrid.Index(row, col)] = !(row < 2 && col < 4)
		}
	}
	s, err := (&EnergyCenter{}).Allocate(Input{Grid: fixGrid, Energy: energyFixture(), M: 5, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 5, fixGrid.N())
	for _, idx := range s {
		if !mask[idx] {
			t.Fatalf("sensor %d violates mask", idx)
		}
	}
}

func TestEnergyCenterErrors(t *testing.T) {
	if _, err := (&EnergyCenter{}).Allocate(Input{M: 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("missing grid should fail")
	}
	if _, err := (&EnergyCenter{}).Allocate(Input{Grid: fixGrid, Energy: []float64{1}, M: 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("short energy map should fail")
	}
}

func TestEnergyCenterSingleSensor(t *testing.T) {
	s, err := (&EnergyCenter{}).Allocate(Input{Grid: fixGrid, Energy: energyFixture(), M: 1})
	if err != nil {
		t.Fatal(err)
	}
	row, col := fixGrid.RowCol(s[0])
	if !(row < 2 && col < 4) {
		t.Fatalf("single sensor at (%d,%d), expected inside the hot quadrant", row, col)
	}
}

func TestRandomDeterministicAndMasked(t *testing.T) {
	mask := make([]bool, fixGrid.N())
	for i := 0; i < 20; i++ {
		mask[i] = true
	}
	in := Input{Grid: fixGrid, M: 5, Mask: mask}
	a, err := (&Random{Seed: 3}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Random{Seed: 3}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random allocator not deterministic by seed")
		}
		if !mask[a[i]] {
			t.Fatal("random allocator violated mask")
		}
	}
	distinctSorted(t, a, 5, fixGrid.N())
}

func TestUniformSpreads(t *testing.T) {
	g := floorplan.Grid{W: 12, H: 12}
	s, err := (&Uniform{}).Allocate(Input{Grid: g, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 4, g.N())
	// 4 sensors on a 12×12 grid: one per quadrant.
	quadrants := make(map[[2]bool]int)
	for _, idx := range s {
		row, col := g.RowCol(idx)
		quadrants[[2]bool{row < 6, col < 6}]++
	}
	if len(quadrants) != 4 {
		t.Fatalf("sensors not spread across quadrants: %v", s)
	}
}

func TestUniformMasked(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 6}
	mask := make([]bool, g.N())
	for i := range mask {
		row, _ := g.RowCol(i)
		mask[i] = row >= 3 // only bottom half allowed
	}
	s, err := (&Uniform{}).Allocate(Input{Grid: g, M: 4, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range s {
		if !mask[idx] {
			t.Fatal("uniform allocator violated mask")
		}
	}
}

func TestExhaustiveOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	psi := mat.RandomOrthonormal(9, 2, rng)
	in := Input{Psi: psi, Grid: floorplan.Grid{W: 3, H: 3}, M: 2}
	best, err := (&Exhaustive{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	bestCond := condOf(t, psi, best)
	// No pair may beat it.
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			c, err := mat.Cond(psi.SelectRows([]int{i, j}))
			if err != nil {
				t.Fatal(err)
			}
			if c < bestCond-1e-9 {
				t.Fatalf("pair (%d,%d) κ=%v beats exhaustive %v", i, j, c, bestCond)
			}
		}
	}
}

func TestExhaustiveLimit(t *testing.T) {
	psi := mat.RandomOrthonormal(40, 2, rand.New(rand.NewSource(9)))
	_, err := (&Exhaustive{Limit: 10}).Allocate(Input{Psi: psi, Grid: fixGrid, M: 5})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("expected limit error, got %v", err)
	}
}

func TestAllocatorNames(t *testing.T) {
	for _, tc := range []struct {
		a    Allocator
		want string
	}{
		{&Greedy{}, "greedy"},
		{&EnergyCenter{}, "energy"},
		{&Random{}, "random"},
		{&Uniform{}, "uniform"},
		{&Exhaustive{}, "exhaustive"},
	} {
		if tc.a.Name() != tc.want {
			t.Fatalf("Name = %q, want %q", tc.a.Name(), tc.want)
		}
	}
}

func TestBinomial(t *testing.T) {
	for _, tc := range []struct{ n, m, want int }{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {4, 5, 0},
	} {
		if got := binomial(tc.n, tc.m); got != tc.want {
			t.Fatalf("C(%d,%d) = %d, want %d", tc.n, tc.m, got, tc.want)
		}
	}
	if binomial(500, 250) != -1 {
		t.Fatal("expected overflow sentinel")
	}
}

func TestDOptimalBasics(t *testing.T) {
	d := &DOptimal{}
	s, err := d.Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 8})
	if err != nil {
		t.Fatal(err)
	}
	distinctSorted(t, s, 8, 40)
	if c := condOf(t, fixPsi, s); math.IsInf(c, 1) || c > 50 {
		t.Fatalf("d-optimal produced poorly conditioned set: κ=%v", c)
	}
}

func TestDOptimalRespectsMask(t *testing.T) {
	mask := make([]bool, 40)
	for i := 5; i < 25; i++ {
		mask[i] = true
	}
	s, err := (&DOptimal{}).Allocate(Input{Psi: fixPsi, Grid: fixGrid, M: 6, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if !mask[v] {
			t.Fatalf("sensor %d outside mask", v)
		}
	}
}

func TestDOptimalErrors(t *testing.T) {
	if _, err := (&DOptimal{}).Allocate(Input{Grid: fixGrid, M: 4}); !errors.Is(err, ErrBadInput) {
		t.Fatal("missing Psi should fail")
	}
	if _, err := (&DOptimal{}).Allocate(Input{Psi: fixPsi, M: 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("M < K should fail")
	}
}

func TestDOptimalComparableToBackwardGreedy(t *testing.T) {
	// Forward D-optimal and backward correlation elimination chase the same
	// goal; their condition numbers must land in the same ballpark on the
	// shared fixture (within 3x of each other).
	in := Input{Psi: fixPsi, Grid: fixGrid, M: 8}
	fwd, err := (&DOptimal{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := (&Greedy{}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	cf, cb := condOf(t, fixPsi, fwd), condOf(t, fixPsi, bwd)
	if cf > 3*cb && cb > 3*cf {
		t.Fatalf("allocators diverge wildly: forward κ=%v backward κ=%v", cf, cb)
	}
	if ratio := cf / cb; ratio > 5 || ratio < 0.2 {
		t.Fatalf("forward/backward κ ratio %v outside [0.2,5]", ratio)
	}
}

func TestShermanMorrisonAgainstDirectInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	k := 4
	a := mat.RandomSPD(k, rng)
	chol, err := mat.NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := mat.New(k, k)
	for j := 0; j < k; j++ {
		e := make([]float64, k)
		e[j] = 1
		inv.SetCol(j, chol.Solve(e))
	}
	v := []float64{0.5, -1, 2, 0.25}
	shermanMorrisonUpdate(inv, v)
	// Direct: (A + vvᵀ)⁻¹ via Cholesky.
	up := a.Clone()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			up.Add(i, j, v[i]*v[j])
		}
	}
	cholUp, err := mat.NewCholesky(up)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		e := make([]float64, k)
		e[j] = 1
		want := cholUp.Solve(e)
		for i := 0; i < k; i++ {
			if math.Abs(inv.At(i, j)-want[i]) > 1e-8 {
				t.Fatalf("SM update wrong at (%d,%d): %v vs %v", i, j, inv.At(i, j), want[i])
			}
		}
	}
}
