package place

import (
	"fmt"
	"sort"
)

// EnergyCenter reimplements the sensor-allocation heuristic of the k-LSE
// paper [12]: recursively bisect the die into M regions of (approximately)
// equal thermal energy and drop one sensor at the energy centroid of each
// region. If a centroid lands on a masked cell, the nearest allowed cell of
// the region (or, failing that, of the whole die) is used instead.
type EnergyCenter struct{}

// Name implements Allocator.
func (e *EnergyCenter) Name() string { return "energy" }

// region is a half-open cell rectangle [r0,r1)×[c0,c1).
type region struct {
	r0, r1, c0, c1 int
}

// Allocate implements Allocator.
func (e *EnergyCenter) Allocate(in Input) ([]int, error) {
	g := in.Grid
	if g.N() == 0 {
		return nil, fmt.Errorf("%w: energy-center needs Grid", ErrBadInput)
	}
	if len(in.Energy) != g.N() {
		return nil, fmt.Errorf("%w: energy map length %d for %d cells", ErrBadInput, len(in.Energy), g.N())
	}
	cells, err := allowedCells(g.N(), in.Mask)
	if err != nil {
		return nil, err
	}
	if err := validateCount(in.M, len(cells)); err != nil {
		return nil, err
	}

	energyAt := func(row, col int) float64 {
		v := in.Energy[g.Index(row, col)]
		if v < 0 {
			return 0
		}
		return v
	}
	regionEnergy := func(rg region) float64 {
		var s float64
		for r := rg.r0; r < rg.r1; r++ {
			for c := rg.c0; c < rg.c1; c++ {
				s += energyAt(r, c)
			}
		}
		return s
	}

	taken := make(map[int]bool, in.M)
	var sensors []int

	var place func(rg region, m int)
	place = func(rg region, m int) {
		if m <= 0 || rg.r1 <= rg.r0 || rg.c1 <= rg.c0 {
			return
		}
		if m == 1 {
			if idx, ok := e.centroidCell(in, rg, taken); ok {
				sensors = append(sensors, idx)
				taken[idx] = true
			}
			return
		}
		// Split along the longer axis at the energy median, then divide the
		// sensor budget in proportion to the two halves' energies.
		var a, b region
		if rg.r1-rg.r0 >= rg.c1-rg.c0 {
			cut := e.energyMedianRow(rg, energyAt)
			a = region{rg.r0, cut, rg.c0, rg.c1}
			b = region{cut, rg.r1, rg.c0, rg.c1}
		} else {
			cut := e.energyMedianCol(rg, energyAt)
			a = region{rg.r0, rg.r1, rg.c0, cut}
			b = region{rg.r0, rg.r1, cut, rg.c1}
		}
		ea, eb := regionEnergy(a), regionEnergy(b)
		ma := m / 2
		if ea+eb > 0 {
			ma = int(float64(m)*ea/(ea+eb) + 0.5)
		}
		if ma < 1 {
			ma = 1
		}
		if ma > m-1 {
			ma = m - 1
		}
		place(a, ma)
		place(b, m-ma)
	}
	place(region{0, g.H, 0, g.W}, in.M)

	// Mask conflicts or degenerate regions can leave a shortfall; fill it
	// with the highest-energy allowed cells not yet taken.
	if len(sensors) < in.M {
		rest := make([]int, 0, len(cells))
		for _, c := range cells {
			if !taken[c] {
				rest = append(rest, c)
			}
		}
		sort.Slice(rest, func(a, b int) bool { return in.Energy[rest[a]] > in.Energy[rest[b]] })
		for _, c := range rest {
			if len(sensors) == in.M {
				break
			}
			sensors = append(sensors, c)
			taken[c] = true
		}
	}
	if len(sensors) != in.M {
		return nil, fmt.Errorf("%w: placed %d of %d", ErrTooFewCells, len(sensors), in.M)
	}
	sort.Ints(sensors)
	return sensors, nil
}

// energyMedianRow returns the row cut (exclusive upper bound of the first
// half) closest to splitting the region's energy in two.
func (e *EnergyCenter) energyMedianRow(rg region, energyAt func(r, c int) float64) int {
	var total float64
	rowSums := make([]float64, rg.r1-rg.r0)
	for r := rg.r0; r < rg.r1; r++ {
		for c := rg.c0; c < rg.c1; c++ {
			rowSums[r-rg.r0] += energyAt(r, c)
		}
		total += rowSums[r-rg.r0]
	}
	half := total / 2
	var acc float64
	for r := rg.r0; r < rg.r1-1; r++ {
		acc += rowSums[r-rg.r0]
		if acc >= half {
			return r + 1
		}
	}
	return rg.r0 + (rg.r1-rg.r0)/2
}

func (e *EnergyCenter) energyMedianCol(rg region, energyAt func(r, c int) float64) int {
	var total float64
	colSums := make([]float64, rg.c1-rg.c0)
	for c := rg.c0; c < rg.c1; c++ {
		for r := rg.r0; r < rg.r1; r++ {
			colSums[c-rg.c0] += energyAt(r, c)
		}
		total += colSums[c-rg.c0]
	}
	half := total / 2
	var acc float64
	for c := rg.c0; c < rg.c1-1; c++ {
		acc += colSums[c-rg.c0]
		if acc >= half {
			return c + 1
		}
	}
	return rg.c0 + (rg.c1-rg.c0)/2
}

// centroidCell returns the allowed, untaken cell nearest the region's
// energy-weighted centroid (preferring cells inside the region).
func (e *EnergyCenter) centroidCell(in Input, rg region, taken map[int]bool) (int, bool) {
	g := in.Grid
	var er, ec, tot float64
	for r := rg.r0; r < rg.r1; r++ {
		for c := rg.c0; c < rg.c1; c++ {
			w := in.Energy[g.Index(r, c)]
			if w < 0 {
				w = 0
			}
			er += w * float64(r)
			ec += w * float64(c)
			tot += w
		}
	}
	var cr, cc float64
	if tot > 0 {
		cr, cc = er/tot, ec/tot
	} else {
		cr = float64(rg.r0+rg.r1-1) / 2
		cc = float64(rg.c0+rg.c1-1) / 2
	}
	allowed := func(idx int) bool {
		if taken[idx] {
			return false
		}
		return in.Mask == nil || in.Mask[idx]
	}
	// Nearest allowed cell inside the region, then anywhere.
	best, bestD := -1, 0.0
	scan := func(r0, r1, c0, c1 int) {
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				idx := g.Index(r, c)
				if !allowed(idx) {
					continue
				}
				dr, dc := float64(r)-cr, float64(c)-cc
				d := dr*dr + dc*dc
				if best < 0 || d < bestD {
					best, bestD = idx, d
				}
			}
		}
	}
	scan(rg.r0, rg.r1, rg.c0, rg.c1)
	if best < 0 {
		scan(0, g.H, 0, g.W)
	}
	return best, best >= 0
}
