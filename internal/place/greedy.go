package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Greedy is the paper's Algorithm 1: normalize the rows of Ψ_K, build the
// row-correlation Gram matrix G = UU* − I, and repeatedly delete the row
// involved in the strongest remaining correlation until M rows survive,
// guarding against rank collapse of the sensing matrix.
//
// Two implementation notes, both recorded in DESIGN.md:
//
//   - Correlation magnitude. We eliminate by |G[i,j]| rather than the signed
//     maximum: a row and its negation span the same direction and are just as
//     redundant. Set SignedMax for the paper-literal variant.
//   - Rank-check schedule. Checking rank(Ψ̃) after every removal is O(N²K²)
//     overall; rank can only become critical once few rows remain, so we
//     start checking when the survivor count drops below RankCheckBelow
//     (default 4K). The small-instance ablation test asserts this produces
//     the same result as checking every step.
type Greedy struct {
	// SignedMax selects the paper-literal signed max-element rule.
	SignedMax bool
	// RankCheckBelow starts rank safeguarding when this many rows remain;
	// 0 means the default max(4K, M+K).
	RankCheckBelow int
	// CheckEveryStep forces a rank check after every removal (ablation).
	CheckEveryStep bool
}

// Name implements Allocator.
func (g *Greedy) Name() string { return "greedy" }

// Allocate implements Allocator. When the rank safeguard trips, the set
// restored from the previous iteration is returned even if it still holds
// more than M rows — Algorithm 1's "restore and break" semantics.
func (g *Greedy) Allocate(in Input) ([]int, error) {
	if in.Psi == nil {
		return nil, fmt.Errorf("%w: greedy needs Psi", ErrBadInput)
	}
	n, k := in.Psi.Dims()
	cells, err := allowedCells(n, in.Mask)
	if err != nil {
		return nil, err
	}
	// Rows with zero norm carry no information and can never host a useful
	// sensor; drop them from the candidate pool up front.
	var rows []int
	for _, c := range cells {
		if mat.Norm2(in.Psi.Row(c)) > 0 {
			rows = append(rows, c)
		}
	}
	if err := validateCount(in.M, len(rows)); err != nil {
		return nil, err
	}
	if in.M < k {
		return nil, fmt.Errorf("%w: M=%d < K=%d cannot keep Ψ̃ full rank", ErrBadInput, in.M, k)
	}

	// U: normalized candidate rows.
	u := mat.New(len(rows), k)
	for r, c := range rows {
		row := mat.CopyVec(in.Psi.Row(c))
		mat.Normalize(row)
		u.SetRow(r, row)
	}

	// G stored in float32 to halve the footprint (N=3360 → 45 MB); the
	// comparisons only need ~7 digits.
	nr := len(rows)
	gm := make([]float32, nr*nr)
	for i := 0; i < nr; i++ {
		ri := u.Row(i)
		for j := i + 1; j < nr; j++ {
			v := mat.Dot(ri, u.Row(j))
			if !g.SignedMax {
				v = math.Abs(v)
			}
			gm[i*nr+j] = float32(v)
			gm[j*nr+i] = float32(v)
		}
		if g.SignedMax {
			gm[i*nr+i] = float32(math.Inf(-1))
		}
	}

	active := make([]bool, nr)
	for i := range active {
		active[i] = true
	}
	remaining := nr

	// Per-row max correlation and argmax over active peers, maintained
	// incrementally: recomputed only for rows whose argmax was removed.
	rowMax := make([]float32, nr)
	rowArg := make([]int, nr)
	recompute := func(i int) {
		best := float32(math.Inf(-1))
		arg := -1
		base := i * nr
		for j := 0; j < nr; j++ {
			if j == i || !active[j] {
				continue
			}
			if v := gm[base+j]; v > best {
				best = v
				arg = j
			}
		}
		rowMax[i] = best
		rowArg[i] = arg
	}
	for i := 0; i < nr; i++ {
		recompute(i)
	}

	checkBelow := g.RankCheckBelow
	if checkBelow <= 0 {
		checkBelow = 4 * k
		if in.M+k > checkBelow {
			checkBelow = in.M + k
		}
	}

	survivors := func() []int {
		out := make([]int, 0, remaining)
		for r, on := range active {
			if on {
				out = append(out, rows[r])
			}
		}
		sort.Ints(out)
		return out
	}

	for remaining > in.M {
		// Row participating in the globally strongest correlation.
		victim := -1
		best := float32(math.Inf(-1))
		for i := 0; i < nr; i++ {
			if !active[i] {
				continue
			}
			if rowMax[i] > best {
				best = rowMax[i]
				victim = i
			}
		}
		if victim < 0 {
			break // single row left or no correlations
		}
		// The max pair is (victim, rowArg[victim]); both see the same value.
		// Remove the endpoint with the larger aggregate correlation — the
		// more redundant of the two.
		if j := rowArg[victim]; j >= 0 && rowMax[j] == rowMax[victim] {
			if g.aggregate(gm, nr, active, j) > g.aggregate(gm, nr, active, victim) {
				victim = j
			}
		}

		active[victim] = false
		remaining--

		if g.CheckEveryStep || remaining <= checkBelow {
			sub := in.Psi.SelectRows(survivors())
			if mat.NewQR(sub).Rank() < k {
				// Restore and break (Algorithm 1 step 3(d)).
				active[victim] = true
				remaining++
				return survivors(), nil
			}
		}

		// Repair row maxima that pointed at the removed row.
		for i := 0; i < nr; i++ {
			if active[i] && rowArg[i] == victim {
				recompute(i)
			}
		}
	}
	return survivors(), nil
}

// aggregate sums row i's correlations with the active peers (tie-break
// criterion: "the row that shows the highest correlation with the other
// ones").
func (g *Greedy) aggregate(gm []float32, nr int, active []bool, i int) float64 {
	var s float64
	base := i * nr
	for j := 0; j < nr; j++ {
		if j == i || !active[j] {
			continue
		}
		v := float64(gm[base+j])
		if g.SignedMax {
			// Aggregate redundancy is directionless even in signed mode.
			v = math.Abs(v)
		}
		s += v
	}
	return s
}
