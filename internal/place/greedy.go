package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Greedy is the paper's Algorithm 1: normalize the rows of Ψ_K, build the
// row-correlation Gram matrix G = UU* − I, and repeatedly delete the row
// involved in the strongest remaining correlation until M rows survive,
// guarding against rank collapse of the sensing matrix.
//
// Three implementation notes, all recorded in DESIGN.md:
//
//   - Correlation magnitude. We eliminate by |G[i,j]| rather than the signed
//     maximum: a row and its negation span the same direction and are just as
//     redundant. Set SignedMax for the paper-literal variant.
//   - Rank-check schedule. Checking rank(Ψ̃) after every removal is O(N²K²)
//     overall; rank can only become critical once few rows remain, so we
//     start checking when the survivor count drops below RankCheckBelow
//     (default 4K). The small-instance ablation test asserts this produces
//     the same result as checking every step.
//   - Victim selection. The globally strongest correlation is found by a
//     lazily-invalidated max-heap over the per-row maxima — O(log R) per
//     removal instead of the O(R) linear rescan — and the post-removal
//     repair walks a reverse index of argmax pointers instead of scanning
//     all rows. The algorithm as a whole stays Θ(R²) — the Gram build is
//     O(R²K) and the aggregate tie-break scans the victim pair's rows — but
//     the heap+index remove two of the three per-removal linear scans
//     (~12% end-to-end at the paper's R = 3360, and more as the removal
//     count grows). Set Rescan for the linear-scan reference; the ablation
//     test asserts both produce identical allocations.
type Greedy struct {
	// SignedMax selects the paper-literal signed max-element rule.
	SignedMax bool
	// RankCheckBelow starts rank safeguarding when this many rows remain;
	// 0 means the default max(4K, M+K).
	RankCheckBelow int
	// CheckEveryStep forces a rank check after every removal (ablation).
	CheckEveryStep bool
	// Rescan selects the O(R)-per-removal linear scan over row maxima
	// instead of the lazy max-heap (ablation reference).
	Rescan bool
}

// rowMaxHeap is a binary max-heap of (correlation, row) pairs ordered by
// value descending, row index ascending on ties — the same victim order the
// ascending linear rescan produces, which is what makes heap == rescan exact
// (see the ablation test). Entries are never updated in place: a row whose
// maximum changes gets a fresh entry pushed, and stale entries are skipped
// at pop time by checking them against the live rowMax slice.
type rowMaxHeap struct {
	val []float32
	row []int32
}

func (h *rowMaxHeap) less(a, b int) bool {
	if h.val[a] != h.val[b] {
		return h.val[a] > h.val[b]
	}
	return h.row[a] < h.row[b]
}

func (h *rowMaxHeap) swap(a, b int) {
	h.val[a], h.val[b] = h.val[b], h.val[a]
	h.row[a], h.row[b] = h.row[b], h.row[a]
}

func (h *rowMaxHeap) push(v float32, r int) {
	h.val = append(h.val, v)
	h.row = append(h.row, int32(r))
	for i := len(h.val) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// pop removes and returns the top entry; ok is false on an empty heap.
func (h *rowMaxHeap) pop() (v float32, r int, ok bool) {
	if len(h.val) == 0 {
		return 0, 0, false
	}
	v, r = h.val[0], int(h.row[0])
	last := len(h.val) - 1
	h.swap(0, last)
	h.val, h.row = h.val[:last], h.row[:last]
	for i := 0; ; {
		l, rr := 2*i+1, 2*i+2
		best := i
		if l < last && h.less(l, best) {
			best = l
		}
		if rr < last && h.less(rr, best) {
			best = rr
		}
		if best == i {
			break
		}
		h.swap(i, best)
		i = best
	}
	return v, r, true
}

// Name implements Allocator.
func (g *Greedy) Name() string { return "greedy" }

// Allocate implements Allocator. When the rank safeguard trips, the set
// restored from the previous iteration is returned even if it still holds
// more than M rows — Algorithm 1's "restore and break" semantics.
func (g *Greedy) Allocate(in Input) ([]int, error) {
	if in.Psi == nil {
		return nil, fmt.Errorf("%w: greedy needs Psi", ErrBadInput)
	}
	n, k := in.Psi.Dims()
	cells, err := allowedCells(n, in.Mask)
	if err != nil {
		return nil, err
	}
	// Rows with zero norm carry no information and can never host a useful
	// sensor; drop them from the candidate pool up front.
	var rows []int
	for _, c := range cells {
		if mat.Norm2(in.Psi.Row(c)) > 0 {
			rows = append(rows, c)
		}
	}
	if err := validateCount(in.M, len(rows)); err != nil {
		return nil, err
	}
	if in.M < k {
		return nil, fmt.Errorf("%w: M=%d < K=%d cannot keep Ψ̃ full rank", ErrBadInput, in.M, k)
	}

	// U: normalized candidate rows.
	u := mat.New(len(rows), k)
	for r, c := range rows {
		row := mat.CopyVec(in.Psi.Row(c))
		mat.Normalize(row)
		u.SetRow(r, row)
	}

	// G stored in float32 to halve the footprint (N=3360 → 45 MB); the
	// comparisons only need ~7 digits.
	nr := len(rows)
	gm := make([]float32, nr*nr)
	for i := 0; i < nr; i++ {
		ri := u.Row(i)
		for j := i + 1; j < nr; j++ {
			v := mat.Dot(ri, u.Row(j))
			if !g.SignedMax {
				v = math.Abs(v)
			}
			gm[i*nr+j] = float32(v)
			gm[j*nr+i] = float32(v)
		}
		if g.SignedMax {
			gm[i*nr+i] = float32(math.Inf(-1))
		}
	}

	active := make([]bool, nr)
	for i := range active {
		active[i] = true
	}
	remaining := nr

	// Per-row max correlation and argmax over active peers, maintained
	// incrementally: recomputed only for rows whose argmax was removed.
	// argRev is the reverse index — argRev[j] holds every row that ever set
	// rowArg = j since argRev[j] was last consumed — so the repair step
	// touches only candidate rows instead of scanning all R. Entries go
	// stale when a later recompute moves the row's argmax elsewhere; the
	// consumer filters on the live rowArg.
	rowMax := make([]float32, nr)
	rowArg := make([]int, nr)
	argRev := make([][]int32, nr)
	recompute := func(i int) {
		best := float32(math.Inf(-1))
		arg := -1
		base := i * nr
		for j := 0; j < nr; j++ {
			if j == i || !active[j] {
				continue
			}
			if v := gm[base+j]; v > best {
				best = v
				arg = j
			}
		}
		rowMax[i] = best
		rowArg[i] = arg
		if arg >= 0 {
			argRev[arg] = append(argRev[arg], int32(i))
		}
	}
	for i := 0; i < nr; i++ {
		recompute(i)
	}

	// Heap over the row maxima (unless the ablation rescan is requested).
	// Invariant: every active row has an entry carrying its current rowMax;
	// entries invalidated by removals or recomputes are skipped at pop time.
	var heap *rowMaxHeap
	if !g.Rescan {
		heap = &rowMaxHeap{val: make([]float32, 0, nr), row: make([]int32, 0, nr)}
		for i := 0; i < nr; i++ {
			heap.push(rowMax[i], i)
		}
	}

	checkBelow := g.RankCheckBelow
	if checkBelow <= 0 {
		checkBelow = 4 * k
		if in.M+k > checkBelow {
			checkBelow = in.M + k
		}
	}

	survivors := func() []int {
		out := make([]int, 0, remaining)
		for r, on := range active {
			if on {
				out = append(out, rows[r])
			}
		}
		sort.Ints(out)
		return out
	}

	for remaining > in.M {
		// Row participating in the globally strongest correlation.
		victim := -1
		if g.Rescan {
			best := float32(math.Inf(-1))
			for i := 0; i < nr; i++ {
				if !active[i] {
					continue
				}
				if rowMax[i] > best {
					best = rowMax[i]
					victim = i
				}
			}
		} else {
			for {
				v, r, ok := heap.pop()
				if !ok {
					break
				}
				if active[r] && v == rowMax[r] {
					victim = r
					break
				}
			}
		}
		if victim < 0 {
			break // single row left or no correlations
		}
		// The max pair is (victim, rowArg[victim]); both see the same value.
		// Remove the endpoint with the larger aggregate correlation — the
		// more redundant of the two.
		if j := rowArg[victim]; j >= 0 && rowMax[j] == rowMax[victim] {
			if g.aggregate(gm, nr, active, j) > g.aggregate(gm, nr, active, victim) {
				victim = j
			}
		}

		active[victim] = false
		remaining--

		if g.CheckEveryStep || remaining <= checkBelow {
			sub := in.Psi.SelectRows(survivors())
			if mat.NewQR(sub).Rank() < k {
				// Restore and break (Algorithm 1 step 3(d)).
				active[victim] = true
				remaining++
				return survivors(), nil
			}
		}

		// Repair row maxima that pointed at the removed row, via the reverse
		// index (stale entries — rows whose argmax has since moved on, or a
		// duplicate of an already-repaired row — filter out on the live
		// rowArg). In heap mode each repaired row gets a fresh entry; its
		// old one (possibly just popped when the tie-break redirected the
		// removal) goes stale. The victim's list is consumed for good: an
		// inactive row is never an argmax again.
		for _, i32 := range argRev[victim] {
			i := int(i32)
			if active[i] && rowArg[i] == victim {
				recompute(i)
				if heap != nil {
					heap.push(rowMax[i], i)
				}
			}
		}
		argRev[victim] = nil
	}
	return survivors(), nil
}

// aggregate sums row i's correlations with the active peers (tie-break
// criterion: "the row that shows the highest correlation with the other
// ones").
func (g *Greedy) aggregate(gm []float32, nr int, active []bool, i int) float64 {
	var s float64
	base := i * nr
	for j := 0; j < nr; j++ {
		if j == i || !active[j] {
			continue
		}
		v := float64(gm[base+j])
		if g.SignedMax {
			// Aggregate redundancy is directionless even in signed mode.
			v = math.Abs(v)
		}
		s += v
	}
	return s
}
