package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// DOptimal is a forward greedy allocator: starting from an empty set, it
// repeatedly adds the row of Ψ_K that maximizes the log-determinant gain of
// the information matrix Ψ̃ᵀΨ̃ (classical D-optimal experiment design with
// Sherman–Morrison updates). It is the natural forward counterpart to the
// paper's backward elimination (Algorithm 1) and serves as the repository's
// allocation ablation: both chase well-conditioned sensing matrices from
// opposite directions.
type DOptimal struct {
	// Ridge regularizes the initially singular information matrix;
	// default 1e-8.
	Ridge float64
}

// Name implements Allocator.
func (d *DOptimal) Name() string { return "d-optimal" }

// Allocate implements Allocator.
func (d *DOptimal) Allocate(in Input) ([]int, error) {
	if in.Psi == nil {
		return nil, fmt.Errorf("%w: d-optimal needs Psi", ErrBadInput)
	}
	n, k := in.Psi.Dims()
	cells, err := allowedCells(n, in.Mask)
	if err != nil {
		return nil, err
	}
	if err := validateCount(in.M, len(cells)); err != nil {
		return nil, err
	}
	if in.M < k {
		return nil, fmt.Errorf("%w: M=%d < K=%d", ErrBadInput, in.M, k)
	}
	ridge := d.Ridge
	if ridge <= 0 {
		ridge = 1e-8
	}

	// inv = (ridge·I)⁻¹ to start.
	inv := mat.Identity(k).Scale(1 / ridge)
	taken := make(map[int]bool, in.M)
	out := make([]int, 0, in.M)

	for len(out) < in.M {
		best, bestGain := -1, math.Inf(-1)
		for _, c := range cells {
			if taken[c] {
				continue
			}
			v := in.Psi.Row(c)
			// gain = log(1 + vᵀ inv v); monotone in the quadratic form.
			q := quadForm(inv, v)
			if q > bestGain {
				bestGain = q
				best = c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: candidates exhausted at %d of %d", ErrTooFewCells, len(out), in.M)
		}
		taken[best] = true
		out = append(out, best)
		shermanMorrisonUpdate(inv, in.Psi.Row(best))
	}
	sort.Ints(out)
	return out, nil
}

// quadForm returns vᵀ·A·v for symmetric A.
func quadForm(a *mat.Matrix, v []float64) float64 {
	var s float64
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := a.Row(i)
		var t float64
		for j, vj := range v {
			t += row[j] * vj
		}
		s += vi * t
	}
	return s
}

// shermanMorrisonUpdate replaces inv ← (A + vvᵀ)⁻¹ given inv = A⁻¹:
// inv -= (inv·v)(inv·v)ᵀ / (1 + vᵀ·inv·v).
func shermanMorrisonUpdate(inv *mat.Matrix, v []float64) {
	u := mat.MulVec(inv, v)
	den := 1 + mat.Dot(v, u)
	k := inv.Rows()
	for i := 0; i < k; i++ {
		row := inv.Row(i)
		ui := u[i] / den
		for j := 0; j < k; j++ {
			row[j] -= ui * u[j]
		}
	}
}
