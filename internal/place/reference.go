package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// Random places M sensors uniformly at random over the allowed cells —
// the weakest sensible reference.
type Random struct {
	Seed int64
}

// Name implements Allocator.
func (r *Random) Name() string { return "random" }

// Allocate implements Allocator.
func (r *Random) Allocate(in Input) ([]int, error) {
	n := in.Grid.N()
	if n == 0 && in.Psi != nil {
		n = in.Psi.Rows()
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: random needs Grid or Psi", ErrBadInput)
	}
	cells, err := allowedCells(n, in.Mask)
	if err != nil {
		return nil, err
	}
	if err := validateCount(in.M, len(cells)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(len(cells))
	out := make([]int, in.M)
	for i := range out {
		out[i] = cells[perm[i]]
	}
	sort.Ints(out)
	return out, nil
}

// Uniform lays sensors on a near-square lattice over the die (the grid-based
// placement of Long et al. [9]), snapping each lattice point to the nearest
// allowed cell.
type Uniform struct{}

// Name implements Allocator.
func (u *Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (u *Uniform) Allocate(in Input) ([]int, error) {
	g := in.Grid
	if g.N() == 0 {
		return nil, fmt.Errorf("%w: uniform needs Grid", ErrBadInput)
	}
	cells, err := allowedCells(g.N(), in.Mask)
	if err != nil {
		return nil, err
	}
	if err := validateCount(in.M, len(cells)); err != nil {
		return nil, err
	}
	// Choose lattice dimensions rows×cols ≥ M as square as possible.
	rows := int(math.Sqrt(float64(in.M)))
	for rows > 1 && in.M%rows != 0 {
		rows--
	}
	cols := (in.M + rows - 1) / rows

	taken := make(map[int]bool, in.M)
	var out []int
	for r := 0; r < rows && len(out) < in.M; r++ {
		for c := 0; c < cols && len(out) < in.M; c++ {
			// Lattice point at the center of its tile.
			pr := (float64(r) + 0.5) / float64(rows) * float64(g.H)
			pc := (float64(c) + 0.5) / float64(cols) * float64(g.W)
			best, bestD := -1, 0.0
			for _, idx := range cells {
				if taken[idx] {
					continue
				}
				rr, cc := g.RowCol(idx)
				dr, dc := float64(rr)+0.5-pr, float64(cc)+0.5-pc
				d := dr*dr + dc*dc
				if best < 0 || d < bestD {
					best, bestD = idx, d
				}
			}
			if best >= 0 {
				taken[best] = true
				out = append(out, best)
			}
		}
	}
	if len(out) != in.M {
		return nil, fmt.Errorf("%w: placed %d of %d", ErrTooFewCells, len(out), in.M)
	}
	sort.Ints(out)
	return out, nil
}

// Exhaustive finds the condition-number-optimal sensor set by enumerating
// every M-subset of the allowed cells — the paper's "computationally
// impossible" reference, feasible only for tiny instances and used to
// certify the greedy algorithm's near-optimality in tests.
type Exhaustive struct {
	// Limit aborts if the number of subsets would exceed this bound
	// (default 2,000,000).
	Limit int
}

// Name implements Allocator.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Allocate implements Allocator.
func (e *Exhaustive) Allocate(in Input) ([]int, error) {
	if in.Psi == nil {
		return nil, fmt.Errorf("%w: exhaustive needs Psi", ErrBadInput)
	}
	n, k := in.Psi.Dims()
	cells, err := allowedCells(n, in.Mask)
	if err != nil {
		return nil, err
	}
	if err := validateCount(in.M, len(cells)); err != nil {
		return nil, err
	}
	if in.M < k {
		return nil, fmt.Errorf("%w: M=%d < K=%d", ErrBadInput, in.M, k)
	}
	limit := e.Limit
	if limit <= 0 {
		limit = 2_000_000
	}
	if c := binomial(len(cells), in.M); c < 0 || c > limit {
		return nil, fmt.Errorf("%w: C(%d,%d) exceeds limit %d", ErrBadInput, len(cells), in.M, limit)
	}

	var best []int
	bestCond := math.Inf(1)
	subset := make([]int, in.M)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == in.M {
			idx := make([]int, in.M)
			for i, c := range subset {
				idx[i] = cells[c]
			}
			cond, err := mat.Cond(in.Psi.SelectRows(idx))
			if err != nil || math.IsInf(cond, 1) {
				return
			}
			if cond < bestCond {
				bestCond = cond
				best = idx
			}
			return
		}
		for c := start; c <= len(cells)-(in.M-depth); c++ {
			subset[depth] = c
			walk(c+1, depth+1)
		}
	}
	walk(0, 0)
	if best == nil {
		return nil, fmt.Errorf("%w: no full-rank subset found", ErrBadInput)
	}
	sort.Ints(best)
	return best, nil
}

// binomial returns C(n, m), or -1 on overflow.
func binomial(n, m int) int {
	if m < 0 || m > n {
		return 0
	}
	if m > n-m {
		m = n - m
	}
	c := 1
	for i := 0; i < m; i++ {
		if c > (1<<62)/(n-i) {
			return -1
		}
		c = c * (n - i) / (i + 1)
	}
	return c
}
