package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Binary format: magic, version, W, H, T as uint32 little-endian, followed by
// T·N float64 map values in row (snapshot) order.
const (
	magic   = "EMDS"
	version = uint32(1)
)

// Save writes the dataset in the compact binary format.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	for _, v := range []uint32{version, uint32(d.Grid.W), uint32(d.Grid.H), uint32(d.T())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, d.Maps.Data()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", head)
	}
	var ver, w, h, t uint32
	for _, p := range []*uint32{&ver, &w, &h, &t} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("dataset: reading header: %w", err)
		}
	}
	if ver != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", ver)
	}
	const maxDim = 1 << 20
	if w == 0 || h == 0 || w > maxDim || h > maxDim || uint64(t)*uint64(w)*uint64(h) > 1<<32 {
		return nil, fmt.Errorf("dataset: implausible header W=%d H=%d T=%d", w, h, t)
	}
	grid := floorplan.Grid{W: int(w), H: int(h)}
	data := make([]float64, int(t)*grid.N())
	if err := binary.Read(br, binary.LittleEndian, data); err != nil {
		return nil, fmt.Errorf("dataset: reading maps: %w", err)
	}
	return &Dataset{Grid: grid, Maps: mat.NewFromData(int(t), grid.N(), data)}, nil
}

// SaveFile writes the dataset to path (creating or truncating it).
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
