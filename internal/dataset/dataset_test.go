package dataset

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// tinyConfig keeps Generate fast in tests.
func tinyConfig(snaps int, seed int64) GenConfig {
	return GenConfig{
		Grid:      floorplan.Grid{W: 12, H: 10},
		Snapshots: snaps,
		Seed:      seed,
	}
}

func genTiny(t *testing.T, snaps int, seed int64) *Dataset {
	t.Helper()
	d, err := Generate(floorplan.UltraSparcT1(), tinyConfig(snaps, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShapes(t *testing.T) {
	d := genTiny(t, 40, 1)
	if d.T() != 40 || d.N() != 120 {
		t.Fatalf("shape (%d,%d), want (40,120)", d.T(), d.N())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := genTiny(t, 24, 5)
	d2 := genTiny(t, 24, 5)
	if !d1.Maps.Equal(d2.Maps, 0) {
		t.Fatal("same seed produced different datasets")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	d1 := genTiny(t, 24, 5)
	d2 := genTiny(t, 24, 6)
	if d1.Maps.Equal(d2.Maps, 1e-12) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateTemperaturesPlausible(t *testing.T) {
	d := genTiny(t, 60, 2)
	s := d.Stats()
	// With a 45 °C ambient, die temperatures must sit above ambient and
	// below silicon limits.
	if s.MinC < 45-1e-6 {
		t.Fatalf("min %v below ambient", s.MinC)
	}
	if s.MaxC > 150 {
		t.Fatalf("max %v implausibly hot", s.MaxC)
	}
	if s.MaxC-s.MinC < 0.5 {
		t.Fatalf("ensemble range %v too flat for PCA to be meaningful", s.MaxC-s.MinC)
	}
}

func TestGenerateSpatialStructure(t *testing.T) {
	// Core cells must on average run hotter than cache cells: power density
	// in cores is several times higher.
	fp := floorplan.UltraSparcT1()
	cfg := tinyConfig(60, 3)
	cfg.Scenarios = []power.Scenario{power.ScenarioCompute}
	d, err := Generate(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := fp.Rasterize(cfg.Grid)
	mean := d.Mean()
	kindMean := func(k floorplan.Kind) float64 {
		var s float64
		var c int
		for _, b := range fp.KindBlocks(k) {
			for _, i := range r.CellsOf(b) {
				s += mean[i]
				c++
			}
		}
		return s / float64(c)
	}
	if core, cache := kindMean(floorplan.KindCore), kindMean(floorplan.KindCache); core <= cache {
		t.Fatalf("core mean %v not hotter than cache mean %v", core, cache)
	}
}

func TestMeanAndCentered(t *testing.T) {
	d := genTiny(t, 30, 4)
	x, mean := d.Centered()
	if len(mean) != d.N() {
		t.Fatalf("mean length %d", len(mean))
	}
	// Column means of centered data must vanish.
	for i := 0; i < x.Cols(); i += 7 {
		var s float64
		for j := 0; j < x.Rows(); j++ {
			s += x.At(j, i)
		}
		if math.Abs(s/float64(x.Rows())) > 1e-10 {
			t.Fatalf("centered column %d has mean %v", i, s/float64(x.Rows()))
		}
	}
	// Centered + mean reproduces the original.
	for j := 0; j < 3; j++ {
		rec := mat.AddVec(x.Row(j), mean)
		orig := d.Map(j)
		for i := range rec {
			if math.Abs(rec[i]-orig[i]) > 1e-12 {
				t.Fatal("centered+mean != original")
			}
		}
	}
}

func TestSplit(t *testing.T) {
	d := genTiny(t, 40, 7)
	train, eval := d.Split(0.25)
	if train.T()+eval.T() != d.T() {
		t.Fatalf("split sizes %d+%d != %d", train.T(), eval.T(), d.T())
	}
	if eval.T() != 10 {
		t.Fatalf("eval size %d, want 10", eval.T())
	}
	if train.N() != d.N() || eval.N() != d.N() {
		t.Fatal("split changed N")
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	d := genTiny(t, 10, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(1.5)
}

func TestStatsEmpty(t *testing.T) {
	d := &Dataset{Grid: floorplan.Grid{W: 2, H: 2}, Maps: mat.New(0, 4)}
	s := d.Stats()
	if s.T != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := genTiny(t, 16, 9)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != d.Grid {
		t.Fatalf("grid %v != %v", got.Grid, d.Grid)
	}
	if !got.Maps.Equal(d.Maps, 0) {
		t.Fatal("maps not bit-identical after round trip")
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	d := genTiny(t, 8, 10)
	path := filepath.Join(t.TempDir(), "maps.emds")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Maps.Equal(d.Maps, 0) {
		t.Fatal("file round trip mismatch")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	d := genTiny(t, 4, 11)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	// version 1, then absurd dimensions.
	for _, v := range []uint32{1, 1 << 24, 1 << 24, 1 << 24} {
		b := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
		buf.Write(b)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("expected header sanity error")
	}
}

func TestGenerateRemainderAbsorbed(t *testing.T) {
	// Snapshots not divisible by #scenarios must still produce exactly T maps.
	cfg := tinyConfig(41, 12) // 41 % 4 != 0
	d, err := Generate(floorplan.UltraSparcT1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.T() != 41 {
		t.Fatalf("T = %d, want 41", d.T())
	}
}

func TestGenerateStepsPerSnapshot(t *testing.T) {
	cfg := tinyConfig(10, 13)
	cfg.StepsPerSnapshot = 3
	d, err := Generate(floorplan.UltraSparcT1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.T() != 10 {
		t.Fatalf("T = %d, want 10", d.T())
	}
}

func TestGenerateRejectsInvalidFloorplan(t *testing.T) {
	bad := &floorplan.Floorplan{Name: "bad", Blocks: []floorplan.Block{
		{Name: "a", X: 0, Y: 0, W: 2, H: 1},
	}}
	if _, err := Generate(bad, tinyConfig(4, 1)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestValidateAcceptsGoodDataset(t *testing.T) {
	d := genTiny(t, 6, 14)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	d := genTiny(t, 6, 15)
	d.Maps.Set(2, 7, math.NaN())
	if err := d.Validate(); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestValidateRejectsInf(t *testing.T) {
	d := genTiny(t, 6, 16)
	d.Maps.Set(1, 3, math.Inf(1))
	if err := d.Validate(); err == nil {
		t.Fatal("expected Inf error")
	}
}

func TestValidateRejectsGridMismatch(t *testing.T) {
	d := genTiny(t, 6, 17)
	d.Grid = floorplan.Grid{W: 3, H: 3}
	if err := d.Validate(); err == nil {
		t.Fatal("expected grid mismatch error")
	}
}

func TestGenerateWorkersBitIdentical(t *testing.T) {
	// The tentpole parallelism pin: every worker count must produce the
	// same bytes, because segments are fully independent.
	base := tinyConfig(30, 21)
	base.Workers = 1
	want, err := Generate(floorplan.UltraSparcT1(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		cfg := tinyConfig(30, 21)
		cfg.Workers = workers
		got, err := Generate(floorplan.UltraSparcT1(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Maps.Equal(want.Maps, 0) {
			t.Fatalf("workers=%d produced different bytes than workers=1", workers)
		}
	}
}

func TestGenerateSolverAgreement(t *testing.T) {
	// Direct vs CG die temperatures agree to < 1e-6 °C across scenarios,
	// leakage on/off, and both bundled floorplans (the tentpole agreement
	// criterion at the dataset level).
	plans := map[string]*floorplan.Floorplan{
		"t1":     floorplan.UltraSparcT1(),
		"athlon": floorplan.AthlonDualCore(),
	}
	for name, fp := range plans {
		for _, leak := range []bool{false, true} {
			cfg := tinyConfig(24, 33)
			if leak {
				cfg.Thermal.Leakage = &thermal.LeakageModel{BaseWPerCell: 0.002, TRefC: 45, TSlopeC: 30}
			}
			cfg.Solver = thermal.SolverDirect
			direct, err := Generate(fp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Solver = thermal.SolverCG
			cg, err := Generate(fp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < direct.T(); j++ {
				dj, cj := direct.Map(j), cg.Map(j)
				for i := range dj {
					if d := math.Abs(dj[i] - cj[i]); d > 1e-6 {
						t.Fatalf("%s leakage=%v map %d cell %d: |direct−cg| = %g °C", name, leak, j, i, d)
					}
				}
			}
		}
	}
}

func TestGenerateRejectsTooFewSnapshots(t *testing.T) {
	cfg := tinyConfig(3, 1) // 3 snapshots over 4 default scenarios
	_, err := Generate(floorplan.UltraSparcT1(), cfg)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Option != "Snapshots" {
		t.Fatalf("err = %v, want ConfigError{Option: Snapshots}", err)
	}
}

func TestGenerateRejectsNegativeWorkers(t *testing.T) {
	cfg := tinyConfig(8, 1)
	cfg.Workers = -2
	_, err := Generate(floorplan.UltraSparcT1(), cfg)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Option != "Workers" {
		t.Fatalf("err = %v, want ConfigError{Option: Workers}", err)
	}
}

func TestGenerateRejectsUnknownSolver(t *testing.T) {
	cfg := tinyConfig(8, 1)
	cfg.Solver = thermal.Solver(42)
	_, err := Generate(floorplan.UltraSparcT1(), cfg)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Option != "Solver" {
		t.Fatalf("err = %v, want ConfigError{Option: Solver}", err)
	}
	cfg = tinyConfig(8, 1)
	cfg.Thermal.Solver = thermal.Solver(42)
	if _, err := Generate(floorplan.UltraSparcT1(), cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig for Thermal.Solver", err)
	}
}

func TestGenerateSolverArmsBothWork(t *testing.T) {
	// Smoke: both arms produce plausible ensembles through the public path.
	for _, s := range []thermal.Solver{thermal.SolverCG, thermal.SolverDirect} {
		cfg := tinyConfig(8, 2)
		cfg.Solver = s
		d, err := Generate(floorplan.UltraSparcT1(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if st := d.Stats(); st.MinC < 44 || st.MaxC > 150 {
			t.Fatalf("%v: implausible range %v..%v", s, st.MinC, st.MaxC)
		}
	}
}

func TestGenerateSpecsMatchEnumScenarios(t *testing.T) {
	// Registry preset specs must reproduce the enum-scenario ensemble
	// bit-for-bit: the spec migration cannot change any existing dataset.
	fp := floorplan.UltraSparcT1()
	base := GenConfig{
		Grid: floorplan.Grid{W: 12, H: 10}, Snapshots: 40, Seed: 99,
		Scenarios: []power.Scenario{power.ScenarioWeb, power.ScenarioMixed},
	}
	enum, err := Generate(fp, base)
	if err != nil {
		t.Fatal(err)
	}
	specCfg := base
	specCfg.Scenarios = nil
	for _, name := range []string{"web", "mixed"} {
		s, err := workload.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		specCfg.Specs = append(specCfg.Specs, s)
	}
	spec, err := Generate(fp, specCfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < enum.T(); j++ {
		a, b := enum.Map(j), spec.Map(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("map %d cell %d: enum %v != spec %v", j, i, a[i], b[i])
			}
		}
	}
}

func TestGenerateRejectsSpecsPlusScenarios(t *testing.T) {
	s, _ := workload.Parse("web")
	_, err := Generate(floorplan.UltraSparcT1(), GenConfig{
		Grid: floorplan.Grid{W: 8, H: 8}, Snapshots: 8,
		Scenarios: []power.Scenario{power.ScenarioWeb},
		Specs:     []*workload.Spec{s},
	})
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Option != "Specs" {
		t.Fatalf("Specs+Scenarios err = %v", err)
	}
}

func TestGenerateRejectsNilAndInvalidSpecs(t *testing.T) {
	cfg := GenConfig{Grid: floorplan.Grid{W: 8, H: 8}, Snapshots: 8,
		Specs: []*workload.Spec{nil}}
	if _, err := Generate(floorplan.UltraSparcT1(), cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil spec err = %v", err)
	}
	cfg.Specs = []*workload.Spec{{Name: "empty"}}
	if _, err := Generate(floorplan.UltraSparcT1(), cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid spec err = %v", err)
	}
}

func TestGenerateManycoreWithCatalogSpecs(t *testing.T) {
	// A generated 64-core die driven by catalog specs end to end.
	fp, err := floorplan.Manycore(64, 16, floorplan.Grid{W: 8, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	var specs []*workload.Spec
	for _, name := range []string{"bursty", "dvfs"} {
		s, err := workload.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	ds, err := Generate(fp, GenConfig{
		Grid: floorplan.Grid{W: 16, H: 16}, Snapshots: 24, Seed: 4, Specs: specs,
		Power: power.ManycoreConfig(64, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.MeanC < 20 || st.MeanC > 150 {
		t.Fatalf("manycore ensemble mean %v °C implausible", st.MeanC)
	}
}
