// Package dataset produces and manages the ensembles of thermal snapshots
// that EigenMaps is trained and evaluated on: it drives the power → thermal
// simulation pipeline, vectorizes maps with the paper's column-stacking
// convention, handles mean removal, and (de)serializes datasets so the
// full-scale ensemble can be cached between runs.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/mat"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Dataset is an ensemble of T vectorized thermal maps on a common grid.
// Rows of Maps are snapshots (length N = W·H, in °C).
type Dataset struct {
	Grid floorplan.Grid
	Maps *mat.Matrix
}

// T returns the number of snapshots.
func (d *Dataset) T() int { return d.Maps.Rows() }

// N returns the number of cells per map.
func (d *Dataset) N() int { return d.Maps.Cols() }

// Map returns snapshot j as a view (do not mutate).
func (d *Dataset) Map(j int) []float64 { return d.Maps.Row(j) }

// Mean returns the per-cell ensemble mean map.
func (d *Dataset) Mean() []float64 {
	n := d.N()
	mean := make([]float64, n)
	for j := 0; j < d.T(); j++ {
		mat.AXPY(1, d.Map(j), mean)
	}
	mat.ScaleVec(1/float64(d.T()), mean)
	return mean
}

// Centered returns a centered copy of the snapshot matrix (each row minus the
// ensemble mean) together with the mean map. The paper assumes zero-mean
// vectors throughout Sec. 3; this is the "subtract the mean" footnote made
// explicit.
func (d *Dataset) Centered() (*mat.Matrix, []float64) {
	mean := d.Mean()
	x := d.Maps.Clone()
	for j := 0; j < x.Rows(); j++ {
		row := x.Row(j)
		for i := range row {
			row[i] -= mean[i]
		}
	}
	return x, mean
}

// Split partitions the dataset into train/eval subsets by interleaving
// (every k-th snapshot goes to eval, k chosen from evalFrac), preserving
// temporal diversity in both halves. evalFrac must lie in (0, 1).
func (d *Dataset) Split(evalFrac float64) (train, eval *Dataset) {
	if evalFrac <= 0 || evalFrac >= 1 {
		panic(fmt.Sprintf("dataset: evalFrac %v outside (0,1)", evalFrac))
	}
	k := int(1 / evalFrac)
	if k < 2 {
		k = 2
	}
	var trIdx, evIdx []int
	for j := 0; j < d.T(); j++ {
		if j%k == k-1 {
			evIdx = append(evIdx, j)
		} else {
			trIdx = append(trIdx, j)
		}
	}
	return &Dataset{Grid: d.Grid, Maps: d.Maps.SelectRows(trIdx)},
		&Dataset{Grid: d.Grid, Maps: d.Maps.SelectRows(evIdx)}
}

// Validate checks the dataset for non-finite values and inconsistent
// dimensions, returning a descriptive error for the first problem found.
// Training rejects invalid datasets up front rather than producing NaN
// bases.
func (d *Dataset) Validate() error {
	if d.Grid.N() != d.N() {
		return fmt.Errorf("dataset: grid %dx%d (N=%d) does not match map length %d",
			d.Grid.H, d.Grid.W, d.Grid.N(), d.N())
	}
	for j := 0; j < d.T(); j++ {
		for i, v := range d.Map(j) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: map %d cell %d is %v", j, i, v)
			}
		}
	}
	return nil
}

// Stats summarizes a dataset for reporting.
type Stats struct {
	T, N       int
	MinC, MaxC float64
	MeanC      float64
}

// Stats computes ensemble statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{T: d.T(), N: d.N()}
	if s.T == 0 || s.N == 0 {
		return s
	}
	lo, hi := mat.MinMax(d.Map(0))
	var sum float64
	for j := 0; j < s.T; j++ {
		row := d.Map(j)
		l, h := mat.MinMax(row)
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
		sum += mat.Mean(row)
	}
	s.MinC, s.MaxC = lo, hi
	s.MeanC = sum / float64(s.T)
	return s
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	Grid      floorplan.Grid
	Snapshots int // total maps to produce; default 2652 (the paper's T)

	// Scenarios are run back-to-back, splitting Snapshots equally; the
	// resulting ensemble mixes workload regimes like the paper's trace set.
	// Default: web, compute, mixed, idle. Mutually exclusive with Specs.
	Scenarios []power.Scenario

	// Specs are declarative workload scenarios run back-to-back like
	// Scenarios. When set, Scenarios must be empty — the two spellings of
	// the same knob cannot be mixed. Preset specs from the workload
	// registry produce ensembles bit-identical to their Scenario enums.
	Specs []*workload.Spec

	// StepsPerSnapshot inserts extra un-recorded simulation steps between
	// snapshots (decorrelates consecutive maps). Default 1 (record every
	// step, like 3D-ICE's per-interval output).
	StepsPerSnapshot int

	Seed    int64
	Thermal thermal.Config
	Power   power.Config // Scenario and Seed fields are overridden per segment

	// Solver overrides Thermal.Solver when non-auto: the linear-solver arm
	// of the transient simulation (auto/cg/direct; see thermal.Solver).
	Solver thermal.Solver

	// Workers caps the goroutines generating scenario segments concurrently
	// (0 = all CPUs, 1 = sequential). Segments are fully independent — each
	// owns its seeded workload generator and its Transient over the shared
	// read-only thermal model — so the output is bit-identical for every
	// worker count.
	Workers int
}

// ConfigError reports a GenConfig field that would silently produce a
// degenerate ensemble. Match with errors.As, or errors.Is against
// ErrInvalidConfig. It mirrors core.OptionError (which dataset cannot
// import without a cycle).
type ConfigError struct {
	Option string // offending field, e.g. "Snapshots"
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("dataset: invalid %s: %s", e.Option, e.Reason)
}

// Is makes every ConfigError match ErrInvalidConfig.
func (e *ConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// ErrInvalidConfig is the errors.Is target for all ConfigError values.
var ErrInvalidConfig = errors.New("dataset: invalid generation config")

func (c *GenConfig) defaults() {
	if c.Grid.W == 0 || c.Grid.H == 0 {
		c.Grid = floorplan.Grid{W: 60, H: 56}
	}
	if c.Snapshots == 0 {
		c.Snapshots = 2652
	}
	if len(c.Scenarios) == 0 && len(c.Specs) == 0 {
		c.Scenarios = []power.Scenario{
			power.ScenarioWeb, power.ScenarioCompute, power.ScenarioMixed, power.ScenarioIdle,
		}
	}
	if c.StepsPerSnapshot <= 0 {
		c.StepsPerSnapshot = 1
	}
}

// validate rejects configurations that used to fail silently: fewer
// snapshots than scenarios gave the early scenarios zero snapshots and the
// last one everything, a negative worker cap is always a caller bug, and an
// out-of-range solver would panic deep inside thermal.NewModel.
func (c *GenConfig) validate() error {
	if len(c.Scenarios) > 0 && len(c.Specs) > 0 {
		return &ConfigError{Option: "Specs", Reason: fmt.Sprintf(
			"%d Specs and %d Scenarios both set; use exactly one spelling (registry presets cover the enum scenarios)",
			len(c.Specs), len(c.Scenarios))}
	}
	for i, s := range c.Specs {
		if s == nil {
			return &ConfigError{Option: "Specs", Reason: fmt.Sprintf("spec %d is nil", i)}
		}
		if err := s.Validate(); err != nil {
			return &ConfigError{Option: "Specs", Reason: err.Error()}
		}
	}
	if c.Snapshots < c.segments() {
		return &ConfigError{Option: "Snapshots", Reason: fmt.Sprintf(
			"%d snapshots cannot cover %d scenarios (each scenario segment needs at least one snapshot)",
			c.Snapshots, c.segments())}
	}
	if c.Workers < 0 {
		return &ConfigError{Option: "Workers", Reason: fmt.Sprintf(
			"%d is negative (0 = all CPUs, 1 = sequential)", c.Workers)}
	}
	if !thermal.ValidSolver(c.Solver) {
		return &ConfigError{Option: "Solver", Reason: fmt.Sprintf("unknown solver %v", c.Solver)}
	}
	if !thermal.ValidSolver(c.Thermal.Solver) {
		return &ConfigError{Option: "Thermal.Solver", Reason: fmt.Sprintf("unknown solver %v", c.Thermal.Solver)}
	}
	return nil
}

// segments returns the number of workload segments the ensemble is split
// into (specs when given, legacy enum scenarios otherwise).
func (c *GenConfig) segments() int {
	if len(c.Specs) > 0 {
		return len(c.Specs)
	}
	return len(c.Scenarios)
}

// Generate runs the full design-time pipeline: for each scenario segment it
// builds a workload generator, starts the thermal model at the steady state
// of the first power map, and records the die temperature after every
// StepsPerSnapshot transient steps.
//
// Scenario segments are generated concurrently across cfg.Workers
// goroutines. Each segment owns its seeded power generator and Transient
// and writes to its own row range, while all of them share the model's
// factored system matrix read-only, so the result is bit-identical to a
// sequential run (pinned by the determinism tests).
func Generate(fp *floorplan.Floorplan, cfg GenConfig) (*Dataset, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	raster := fp.Rasterize(cfg.Grid)
	tcfg := cfg.Thermal
	if cfg.Solver != thermal.SolverAuto {
		tcfg.Solver = cfg.Solver
	}
	model := thermal.NewModel(cfg.Grid, tcfg)

	maps := mat.New(cfg.Snapshots, cfg.Grid.N())
	// Segment si covers rows [starts[si], starts[si+1]); the last segment
	// absorbs the division remainder.
	nseg := cfg.segments()
	perSeg := cfg.Snapshots / nseg
	starts := make([]int, nseg+1)
	for si := 0; si < nseg; si++ {
		starts[si] = si * perSeg
	}
	starts[nseg] = cfg.Snapshots

	errs := make([]error, nseg)
	mat.ParallelChunks(nseg, cfg.Workers, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			errs[si] = generateSegment(fp, raster, model, &cfg, si, starts[si], starts[si+1], maps)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{Grid: cfg.Grid, Maps: maps}, nil
}

// generateSegment simulates scenario segment si, writing snapshots into
// rows [start, end) of maps. The transient inner loop is allocation-free:
// power is spread into a reused cell buffer and temperatures are written
// straight into the dataset rows (intermediate un-recorded steps land in a
// scratch row).
func generateSegment(fp *floorplan.Floorplan, raster *floorplan.Raster, model *thermal.Model,
	cfg *GenConfig, si, start, end int, maps *mat.Matrix) error {
	pcfg := cfg.Power
	pcfg.Seed = cfg.Seed + int64(si)*7919
	var gen *power.Generator
	var sc string // segment name for error reporting
	if len(cfg.Specs) > 0 {
		spec := cfg.Specs[si]
		sc = spec.Name
		if sc == "" {
			sc = fmt.Sprintf("spec[%d]", si)
		}
		var err error
		gen, err = power.NewSpecGenerator(fp, spec, pcfg)
		if err != nil {
			return fmt.Errorf("dataset: scenario %s: %w", sc, err)
		}
	} else {
		pcfg.Scenario = cfg.Scenarios[si]
		sc = pcfg.Scenario.String()
		gen = power.NewGenerator(fp, pcfg)
	}

	tr := model.NewTransient()
	cellP := make([]float64, cfg.Grid.N())
	scratch := make([]float64, cfg.Grid.N())
	power.SpreadToCellsInto(cellP, raster, gen.Step())
	if err := tr.SetSteadyState(cellP); err != nil {
		return fmt.Errorf("dataset: scenario %v warm start: %w", sc, err)
	}
	for row := start; row < end; row++ {
		for k := 0; k < cfg.StepsPerSnapshot; k++ {
			power.SpreadToCellsInto(cellP, raster, gen.Step())
			dst := scratch
			if k == cfg.StepsPerSnapshot-1 {
				dst = maps.Row(row)
			}
			if err := tr.StepInto(dst, cellP); err != nil {
				return fmt.Errorf("dataset: scenario %v step: %w", sc, err)
			}
		}
	}
	return nil
}
