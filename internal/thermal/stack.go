package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// Layer is one bulk layer of a package stack (a die, an interposer, a
// spreader...). Layers are ordered from the top of the stack (furthest from
// the heat sink) downward.
type Layer struct {
	Name       string
	ThicknessM float64
	Material   Material
}

// Interface is the thermal joint between two adjacent layers (TIM, bonding
// glue, micro-bump field). The vertical conductance per cell is
// Conductivity·cellArea/ThicknessM.
type Interface struct {
	Conductivity float64 // W/(m·K)
	ThicknessM   float64
}

// StackConfig describes an arbitrary vertical stack — the generalization of
// Config that matches 3D-ICE's core capability, including 3D ICs with
// multiple active (power-dissipating) dies.
type StackConfig struct {
	DieWidthM  float64
	DieHeightM float64

	// Layers from top to bottom; at least one.
	Layers []Layer
	// Interfaces joins layer i to layer i+1; must have len(Layers)-1
	// entries.
	Interfaces []Interface

	// SinkResistanceKPerW grounds the bottom layer to ambient.
	SinkResistanceKPerW float64
	AmbientC            float64

	DtSeconds float64
	CGTol     float64
	CGMaxIter int
}

func (c *StackConfig) defaults() error {
	if c.DieWidthM == 0 {
		c.DieWidthM = 12e-3
	}
	if c.DieHeightM == 0 {
		c.DieHeightM = 11.2e-3
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("thermal: stack needs at least one layer")
	}
	if len(c.Interfaces) != len(c.Layers)-1 {
		return fmt.Errorf("thermal: %d interfaces for %d layers (need %d)",
			len(c.Interfaces), len(c.Layers), len(c.Layers)-1)
	}
	for i, l := range c.Layers {
		if l.ThicknessM <= 0 || l.Material.Conductivity <= 0 || l.Material.VolumetricC <= 0 {
			return fmt.Errorf("thermal: layer %d (%s) has non-positive properties", i, l.Name)
		}
	}
	for i, f := range c.Interfaces {
		if f.Conductivity <= 0 || f.ThicknessM <= 0 {
			return fmt.Errorf("thermal: interface %d has non-positive properties", i)
		}
	}
	if c.SinkResistanceKPerW == 0 {
		c.SinkResistanceKPerW = 0.35
	}
	if c.AmbientC == 0 {
		c.AmbientC = 45
	}
	if c.DtSeconds == 0 {
		c.DtSeconds = 10e-3
	}
	if c.CGTol == 0 {
		c.CGTol = 1e-8
	}
	if c.CGMaxIter == 0 {
		c.CGMaxIter = 2000
	}
	return nil
}

// DefaultStack returns the two-layer stack equivalent to Config's defaults:
// a silicon die over a copper spreader joined by TIM.
func DefaultStack() StackConfig {
	return StackConfig{
		Layers: []Layer{
			{Name: "die", ThicknessM: 0.35e-3, Material: Silicon},
			{Name: "spreader", ThicknessM: 2e-3, Material: Copper},
		},
		Interfaces: []Interface{{Conductivity: 4, ThicknessM: 40e-6}},
	}
}

// StackModel is the assembled RC network of an N-layer stack. The unknown
// vector stacks each layer's cell temperature rises: layer l occupies
// indices [l·n, (l+1)·n).
type StackModel struct {
	Grid floorplan.Grid
	Cfg  StackConfig

	n      int       // cells per layer
	layers int       // L
	gx, gy []float64 // per layer lateral conductances [W/K]
	gv     []float64 // per interface vertical conductance [W/K per cell]
	gSink  float64   // bottom layer to ambient [W/K per cell]
	cap    []float64 // per layer cell capacitance [J/K]

	diag []float64 // diag(G), length L·n
}

// NewStackModel assembles the network. It returns an error for inconsistent
// configurations (unlike NewModel, which has a fully defaulted safe space).
func NewStackModel(g floorplan.Grid, cfg StackConfig) (*StackModel, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if g.W <= 0 || g.H <= 0 {
		return nil, fmt.Errorf("thermal: invalid grid %dx%d", g.H, g.W)
	}
	dx := cfg.DieWidthM / float64(g.W)
	dy := cfg.DieHeightM / float64(g.H)
	area := dx * dy
	m := &StackModel{
		Grid:   g,
		Cfg:    cfg,
		n:      g.N(),
		layers: len(cfg.Layers),
		gSink:  area / (cfg.SinkResistanceKPerW * cfg.DieWidthM * cfg.DieHeightM),
	}
	for _, l := range cfg.Layers {
		m.gx = append(m.gx, l.Material.Conductivity*dy*l.ThicknessM/dx)
		m.gy = append(m.gy, l.Material.Conductivity*dx*l.ThicknessM/dy)
		m.cap = append(m.cap, l.Material.VolumetricC*area*l.ThicknessM)
	}
	for _, f := range cfg.Interfaces {
		m.gv = append(m.gv, f.Conductivity*area/f.ThicknessM)
	}
	m.diag = m.conductanceDiagonal()
	return m, nil
}

// Layers returns the number of layers.
func (m *StackModel) Layers() int { return m.layers }

// NumUnknowns returns L·N.
func (m *StackModel) NumUnknowns() int { return m.layers * m.n }

func (m *StackModel) conductanceDiagonal() []float64 {
	g := m.Grid
	d := make([]float64, m.layers*m.n)
	for l := 0; l < m.layers; l++ {
		base := l * m.n
		for row := 0; row < g.H; row++ {
			for col := 0; col < g.W; col++ {
				i := g.Index(row, col)
				var lat float64
				if col > 0 {
					lat += m.gx[l]
				}
				if col < g.W-1 {
					lat += m.gx[l]
				}
				if row > 0 {
					lat += m.gy[l]
				}
				if row < g.H-1 {
					lat += m.gy[l]
				}
				v := lat
				if l > 0 {
					v += m.gv[l-1]
				}
				if l < m.layers-1 {
					v += m.gv[l]
				} else {
					v += m.gSink
				}
				d[base+i] = v
			}
		}
	}
	return d
}

// ApplyG computes y = G·x for the stack conductance matrix.
func (m *StackModel) ApplyG(x, y []float64) {
	if len(x) != m.NumUnknowns() || len(y) != m.NumUnknowns() {
		panic("thermal: stack ApplyG length mismatch")
	}
	g := m.Grid
	for i := range y {
		y[i] = m.diag[i] * x[i]
	}
	for l := 0; l < m.layers; l++ {
		base := l * m.n
		for row := 0; row < g.H; row++ {
			for col := 0; col < g.W; col++ {
				i := base + g.Index(row, col)
				if col > 0 {
					y[i] -= m.gx[l] * x[i-g.H]
				}
				if col < g.W-1 {
					y[i] -= m.gx[l] * x[i+g.H]
				}
				if row > 0 {
					y[i] -= m.gy[l] * x[i-1]
				}
				if row < g.H-1 {
					y[i] -= m.gy[l] * x[i+1]
				}
				if l > 0 {
					y[i] -= m.gv[l-1] * x[i-m.n]
				}
				if l < m.layers-1 {
					y[i] -= m.gv[l] * x[i+m.n]
				}
			}
		}
	}
}

func (m *StackModel) applyA(x, y []float64) {
	m.ApplyG(x, y)
	for l := 0; l < m.layers; l++ {
		c := m.cap[l] / m.Cfg.DtSeconds
		base := l * m.n
		for i := 0; i < m.n; i++ {
			y[base+i] += c * x[base+i]
		}
	}
}

// cg mirrors Model.cg for the stack (kept separate to avoid entangling the
// two models' configs).
func (m *StackModel) cg(apply func(x, y []float64), b, x, diag []float64) error {
	n := len(b)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	var bnorm float64
	for _, v := range b {
		bnorm += v * v
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return nil
	}
	tol := m.Cfg.CGTol * bnorm
	var rz float64
	for i := range r {
		z[i] = r[i] / diag[i]
		rz += r[i] * z[i]
	}
	copy(p, z)
	for iter := 0; iter < m.Cfg.CGMaxIter; iter++ {
		var rnorm float64
		for _, v := range r {
			rnorm += v * v
		}
		if math.Sqrt(rnorm) <= tol {
			return nil
		}
		apply(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return fmt.Errorf("thermal: stack CG breakdown (pᵀAp = %g)", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		var rzNew float64
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return fmt.Errorf("thermal: stack CG did not converge in %d iterations", m.Cfg.CGMaxIter)
}

// buildRHS assembles the power vector: powerByLayer[l] is the per-cell watts
// injected in layer l (nil slices mean no power in that layer).
func (m *StackModel) buildRHS(powerByLayer [][]float64) ([]float64, error) {
	if len(powerByLayer) != m.layers {
		return nil, fmt.Errorf("thermal: power for %d layers, stack has %d", len(powerByLayer), m.layers)
	}
	b := make([]float64, m.NumUnknowns())
	for l, p := range powerByLayer {
		if p == nil {
			continue
		}
		if len(p) != m.n {
			return nil, fmt.Errorf("thermal: layer %d power length %d, want %d", l, len(p), m.n)
		}
		copy(b[l*m.n:(l+1)*m.n], p)
	}
	return b, nil
}

// SteadyState solves the equilibrium for the given per-layer power maps and
// returns per-layer temperatures in °C (layer-major, same indexing as the
// unknown vector).
func (m *StackModel) SteadyState(powerByLayer [][]float64) ([]float64, error) {
	b, err := m.buildRHS(powerByLayer)
	if err != nil {
		return nil, err
	}
	x := make([]float64, m.NumUnknowns())
	if err := m.cg(m.ApplyG, b, x, m.diag); err != nil {
		return nil, err
	}
	for i := range x {
		x[i] += m.Cfg.AmbientC
	}
	return x, nil
}

// StackTransient integrates the stack in time.
type StackTransient struct {
	m     *StackModel
	t     []float64 // rises above ambient
	b     []float64
	diagA []float64
}

// NewTransient starts at ambient equilibrium.
func (m *StackModel) NewTransient() *StackTransient {
	tr := &StackTransient{
		m:     m,
		t:     make([]float64, m.NumUnknowns()),
		b:     make([]float64, m.NumUnknowns()),
		diagA: make([]float64, m.NumUnknowns()),
	}
	for l := 0; l < m.layers; l++ {
		c := m.cap[l] / m.Cfg.DtSeconds
		base := l * m.n
		for i := 0; i < m.n; i++ {
			tr.diagA[base+i] = m.diag[base+i] + c
		}
	}
	return tr
}

// Step advances one backward-Euler step under the per-layer power maps and
// returns the temperatures (°C) of the requested layer.
func (tr *StackTransient) Step(powerByLayer [][]float64, layer int) ([]float64, error) {
	m := tr.m
	if layer < 0 || layer >= m.layers {
		return nil, fmt.Errorf("thermal: layer %d outside [0,%d)", layer, m.layers)
	}
	rhs, err := m.buildRHS(powerByLayer)
	if err != nil {
		return nil, err
	}
	for l := 0; l < m.layers; l++ {
		c := m.cap[l] / m.Cfg.DtSeconds
		base := l * m.n
		for i := 0; i < m.n; i++ {
			rhs[base+i] += c * tr.t[base+i]
		}
	}
	copy(tr.b, rhs)
	if err := m.cg(m.applyA, tr.b, tr.t, tr.diagA); err != nil {
		return nil, err
	}
	return tr.LayerTemperatures(layer), nil
}

// LayerTemperatures returns layer l's current temperatures in °C.
func (tr *StackTransient) LayerTemperatures(l int) []float64 {
	out := make([]float64, tr.m.n)
	base := l * tr.m.n
	for i := range out {
		out[i] = tr.t[base+i] + tr.m.Cfg.AmbientC
	}
	return out
}
