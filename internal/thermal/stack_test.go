package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func TestStackConfigValidation(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 4}
	if _, err := NewStackModel(g, StackConfig{}); err == nil {
		t.Fatal("no layers should fail")
	}
	bad := DefaultStack()
	bad.Interfaces = nil
	if _, err := NewStackModel(g, bad); err == nil {
		t.Fatal("interface count mismatch should fail")
	}
	bad = DefaultStack()
	bad.Layers[0].ThicknessM = 0
	if _, err := NewStackModel(g, bad); err == nil {
		t.Fatal("zero thickness should fail")
	}
	bad = DefaultStack()
	bad.Interfaces[0].Conductivity = 0
	if _, err := NewStackModel(g, bad); err == nil {
		t.Fatal("zero interface conductivity should fail")
	}
	if _, err := NewStackModel(floorplan.Grid{}, DefaultStack()); err == nil {
		t.Fatal("empty grid should fail")
	}
}

// TestStackMatchesLegacyTwoLayerModel: the default 2-layer stack must be the
// exact same network as the original Model.
func TestStackMatchesLegacyTwoLayerModel(t *testing.T) {
	g := floorplan.Grid{W: 10, H: 8}
	legacy := NewModel(g, Config{})
	stack, err := NewStackModel(g, DefaultStack())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, g.N())
	for i := range p {
		p[i] = 0.005 + 0.002*float64(i%11)
	}
	want, err := legacy.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stack.SteadyState([][]float64{p, nil})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("cell %d: stack %v vs legacy %v", i, got[i], want[i])
		}
	}
}

func TestStackTransientMatchesLegacy(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 6}
	legacy := NewModel(g, Config{})
	stack, err := NewStackModel(g, DefaultStack())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, g.N())
	p[g.Index(3, 3)] = 0.8
	trL := legacy.NewTransient()
	trS := stack.NewTransient()
	for step := 0; step < 30; step++ {
		want, err := trL.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trS.Step([][]float64{p, nil}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("step %d cell %d: %v vs %v", step, i, got[i], want[i])
			}
		}
	}
}

func TestStackEnergyBalance(t *testing.T) {
	// Equilibrium: everything injected anywhere in the stack leaves through
	// the sink.
	g := floorplan.Grid{W: 6, H: 5}
	cfg := StackConfig{
		Layers: []Layer{
			{Name: "die1", ThicknessM: 0.3e-3, Material: Silicon},
			{Name: "die0", ThicknessM: 0.3e-3, Material: Silicon},
			{Name: "spreader", ThicknessM: 2e-3, Material: Copper},
		},
		Interfaces: []Interface{
			{Conductivity: 1.5, ThicknessM: 20e-6}, // die-to-die bond
			{Conductivity: 4, ThicknessM: 40e-6},   // TIM
		},
	}
	m, err := NewStackModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, g.N())
	p1 := make([]float64, g.N())
	var total float64
	for i := range p0 {
		p0[i] = 0.01
		p1[i] = 0.02
		total += p0[i] + p1[i]
	}
	rhs, err := m.buildRHS([][]float64{p0, p1, nil})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.NumUnknowns())
	if err := m.cg(m.ApplyG, rhs, x, m.diag); err != nil {
		t.Fatal(err)
	}
	var out float64
	bottom := (m.layers - 1) * m.n
	for i := 0; i < m.n; i++ {
		out += m.gSink * x[bottom+i]
	}
	if math.Abs(out-total) > 1e-6*total {
		t.Fatalf("sink heat %v, injected %v", out, total)
	}
}

func TestStack3DUpperDieRunsHotter(t *testing.T) {
	// A 3D stack with equal power in both dies: the die further from the
	// sink must run hotter — the classic 3D-IC thermal problem.
	g := floorplan.Grid{W: 8, H: 8}
	cfg := StackConfig{
		Layers: []Layer{
			{Name: "topdie", ThicknessM: 0.3e-3, Material: Silicon},
			{Name: "botdie", ThicknessM: 0.3e-3, Material: Silicon},
			{Name: "spreader", ThicknessM: 2e-3, Material: Copper},
		},
		Interfaces: []Interface{
			{Conductivity: 1.5, ThicknessM: 20e-6},
			{Conductivity: 4, ThicknessM: 40e-6},
		},
	}
	m, err := NewStackModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, g.N())
	for i := range p {
		p[i] = 0.05
	}
	temps, err := m.SteadyState([][]float64{p, p, nil})
	if err != nil {
		t.Fatal(err)
	}
	var top, bot float64
	for i := 0; i < g.N(); i++ {
		top += temps[i]
		bot += temps[g.N()+i]
	}
	if top <= bot {
		t.Fatalf("top die (%v) not hotter than bottom die (%v)", top/64, bot/64)
	}
}

func TestStackSingleLayer(t *testing.T) {
	g := floorplan.Grid{W: 5, H: 5}
	m, err := NewStackModel(g, StackConfig{
		Layers: []Layer{{Name: "die", ThicknessM: 0.4e-3, Material: Silicon}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, g.N())
	p[12] = 1
	temps, err := m.SteadyState([][]float64{p})
	if err != nil {
		t.Fatal(err)
	}
	maxI := 0
	for i, v := range temps {
		if v < m.Cfg.AmbientC-1e-9 {
			t.Fatalf("below ambient at %d", i)
		}
		if v > temps[maxI] {
			maxI = i
		}
	}
	if maxI != 12 {
		t.Fatalf("hottest cell %d, want 12", maxI)
	}
}

func TestStackApplyGSymmetric(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 5}
	m, err := NewStackModel(g, DefaultStack())
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumUnknowns()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(2*i + 1))
		y[i] = math.Cos(float64(5*i + 3))
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	m.ApplyG(x, gx)
	m.ApplyG(y, gy)
	var a, b float64
	for i := range x {
		a += gx[i] * y[i]
		b += x[i] * gy[i]
	}
	if math.Abs(a-b) > 1e-9*(math.Abs(a)+1) {
		t.Fatalf("stack G not symmetric: %v vs %v", a, b)
	}
}

func TestStackStepValidation(t *testing.T) {
	g := floorplan.Grid{W: 4, H: 4}
	m, err := NewStackModel(g, DefaultStack())
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTransient()
	if _, err := tr.Step([][]float64{nil, nil}, 5); err == nil {
		t.Fatal("bad layer index should fail")
	}
	if _, err := tr.Step([][]float64{nil}, 0); err == nil {
		t.Fatal("wrong power layer count should fail")
	}
	if _, err := tr.Step([][]float64{{1, 2}, nil}, 0); err == nil {
		t.Fatal("wrong power length should fail")
	}
}
