package thermal

// Transient integrates the RC model in time with backward Euler.
type Transient struct {
	m *Model
	// t holds temperature *rise above ambient* for all 2n unknowns; the
	// exported accessors convert to °C.
	t []float64

	// scratch
	b     []float64
	diagA []float64
}

// NewTransient starts a transient run from thermal equilibrium at ambient
// (zero rise everywhere).
func (m *Model) NewTransient() *Transient {
	tr := &Transient{
		m:     m,
		t:     make([]float64, 2*m.n),
		b:     make([]float64, 2*m.n),
		diagA: make([]float64, 2*m.n),
	}
	cd := m.cDie / m.Cfg.DtSeconds
	cs := m.cSpr / m.Cfg.DtSeconds
	for i := 0; i < m.n; i++ {
		tr.diagA[i] = m.diag[i] + cd
		tr.diagA[m.n+i] = m.diag[m.n+i] + cs
	}
	return tr
}

// SetSteadyState initializes the run at the equilibrium for the given power
// map, avoiding a long warm-up transient.
func (tr *Transient) SetSteadyState(cellPowerW []float64) error {
	m := tr.m
	b := make([]float64, 2*m.n)
	copy(b, cellPowerW)
	for i := range tr.t {
		tr.t[i] = 0
	}
	return m.cg(m.ApplyG, b, tr.t, m.diag)
}

// Step advances one time step under the per-die-cell power vector (length n)
// and returns the die-layer temperatures in °C (a fresh slice).
//
// If the model has a leakage configuration, leakage power computed from the
// *current* (pre-step) die temperatures is added to the injected power —
// the standard explicit electro-thermal coupling.
func (tr *Transient) Step(cellPowerW []float64) ([]float64, error) {
	m := tr.m
	if len(cellPowerW) != m.n {
		panic("thermal: Step power length mismatch")
	}
	cd := m.cDie / m.Cfg.DtSeconds
	cs := m.cSpr / m.Cfg.DtSeconds
	for i := 0; i < m.n; i++ {
		p := cellPowerW[i]
		if lk := m.Cfg.Leakage; lk != nil {
			p += lk.Power(tr.t[i] + m.Cfg.AmbientC)
		}
		tr.b[i] = cd*tr.t[i] + p
		tr.b[m.n+i] = cs * tr.t[m.n+i]
	}
	// Warm start from the previous temperatures (already in tr.t).
	if err := m.cg(m.applyA, tr.b, tr.t, tr.diagA); err != nil {
		return nil, err
	}
	return tr.DieTemperatures(), nil
}

// DieTemperatures returns the current die-layer temperatures in °C.
func (tr *Transient) DieTemperatures() []float64 {
	out := make([]float64, tr.m.n)
	for i := range out {
		out[i] = tr.t[i] + tr.m.Cfg.AmbientC
	}
	return out
}

// SpreaderTemperatures returns the current spreader-layer temperatures in °C.
func (tr *Transient) SpreaderTemperatures() []float64 {
	out := make([]float64, tr.m.n)
	for i := range out {
		out[i] = tr.t[tr.m.n+i] + tr.m.Cfg.AmbientC
	}
	return out
}
