package thermal

// Transient integrates the RC model in time with backward Euler.
//
// Each step solves A·t⁺ = C/dt·t + p with A = C/dt + G constant, so under
// SolverDirect the step is two banded triangular substitutions against the
// model's factor-once Cholesky (exact, allocation-free, per-step cost
// independent of the power map); under SolverCG it is the original
// warm-started Jacobi-preconditioned CG iteration. Multiple Transients may
// run concurrently over one shared Model: the model's factors and
// conductances are read-only after first use.
type Transient struct {
	m *Model
	// t holds temperature *rise above ambient* for all 2n unknowns; the
	// exported accessors convert to °C.
	t []float64

	// scratch
	b     []float64  // right-hand side, layer-major
	z     []float64  // interleaved permutation buffer (direct arm)
	diagA []float64  // Jacobi preconditioner of A (CG arm)
	cgs   *cgScratch // CG work vectors (CG arm)
}

// NewTransient starts a transient run from thermal equilibrium at ambient
// (zero rise everywhere).
func (m *Model) NewTransient() *Transient {
	tr := &Transient{
		m: m,
		t: make([]float64, 2*m.n),
		b: make([]float64, 2*m.n),
	}
	if m.solver == SolverDirect {
		tr.z = make([]float64, 2*m.n)
	} else {
		tr.diagA = make([]float64, 2*m.n)
		tr.cgs = newCGScratch(2 * m.n)
		cd := m.cDie / m.Cfg.DtSeconds
		cs := m.cSpr / m.Cfg.DtSeconds
		for i := 0; i < m.n; i++ {
			tr.diagA[i] = m.diag[i] + cd
			tr.diagA[m.n+i] = m.diag[m.n+i] + cs
		}
	}
	return tr
}

// SetSteadyState initializes the run at the equilibrium for the given power
// map (length n), avoiding a long warm-up transient. It reuses the
// transient's scratch, so repeated calls allocate nothing.
func (tr *Transient) SetSteadyState(cellPowerW []float64) error {
	m := tr.m
	if len(cellPowerW) != m.n {
		panic("thermal: SetSteadyState power length mismatch")
	}
	copy(tr.b, cellPowerW)
	for i := m.n; i < 2*m.n; i++ {
		tr.b[i] = 0
	}
	if m.solver == SolverDirect {
		fac, err := m.factorG()
		if err != nil {
			return err
		}
		m.interleave(tr.z, tr.b)
		fac.SolveInto(tr.z, tr.z)
		m.deinterleave(tr.t, tr.z)
		return nil
	}
	for i := range tr.t {
		tr.t[i] = 0
	}
	return m.cg(m.ApplyG, tr.b, tr.t, m.diag, tr.cgs)
}

// Step advances one time step under the per-die-cell power vector (length n)
// and returns the die-layer temperatures in °C (a fresh slice). See StepInto
// for the allocation-free form.
func (tr *Transient) Step(cellPowerW []float64) ([]float64, error) {
	dst := make([]float64, tr.m.n)
	if err := tr.StepInto(dst, cellPowerW); err != nil {
		return nil, err
	}
	return dst, nil
}

// StepInto advances one time step under the per-die-cell power vector
// (length n) and writes the die-layer temperatures in °C into dst (length
// n). It allocates nothing, making it the inner loop of dataset generation.
//
// If the model has a leakage configuration, leakage power computed from the
// *current* (pre-step) die temperatures is added to the injected power —
// the standard explicit electro-thermal coupling.
func (tr *Transient) StepInto(dst, cellPowerW []float64) error {
	m := tr.m
	if len(cellPowerW) != m.n {
		panic("thermal: Step power length mismatch")
	}
	if len(dst) != m.n {
		panic("thermal: Step dst length mismatch")
	}
	cd := m.cDie / m.Cfg.DtSeconds
	cs := m.cSpr / m.Cfg.DtSeconds
	if m.solver == SolverDirect {
		fac, err := m.factorA()
		if err != nil {
			return err
		}
		// Build the RHS directly in interleaved order, fusing the
		// permutation into the assembly pass.
		for i, oi := range m.ord {
			p := cellPowerW[i]
			if lk := m.Cfg.Leakage; lk != nil {
				p += lk.Power(tr.t[i] + m.Cfg.AmbientC)
			}
			tr.z[2*oi] = cd*tr.t[i] + p
			tr.z[2*oi+1] = cs * tr.t[m.n+i]
		}
		fac.SolveInto(tr.z, tr.z)
		for i, oi := range m.ord {
			tr.t[i] = tr.z[2*oi]
			tr.t[m.n+i] = tr.z[2*oi+1]
			dst[i] = tr.z[2*oi] + m.Cfg.AmbientC
		}
		return nil
	}
	for i := 0; i < m.n; i++ {
		p := cellPowerW[i]
		if lk := m.Cfg.Leakage; lk != nil {
			p += lk.Power(tr.t[i] + m.Cfg.AmbientC)
		}
		tr.b[i] = cd*tr.t[i] + p
		tr.b[m.n+i] = cs * tr.t[m.n+i]
	}
	// Warm start from the previous temperatures (already in tr.t).
	if err := m.cg(m.applyA, tr.b, tr.t, tr.diagA, tr.cgs); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = tr.t[i] + m.Cfg.AmbientC
	}
	return nil
}

// DieTemperatures returns the current die-layer temperatures in °C.
func (tr *Transient) DieTemperatures() []float64 {
	out := make([]float64, tr.m.n)
	tr.DieTemperaturesInto(out)
	return out
}

// DieTemperaturesInto writes the current die-layer temperatures in °C into
// dst (length n) without allocating.
func (tr *Transient) DieTemperaturesInto(dst []float64) {
	if len(dst) != tr.m.n {
		panic("thermal: DieTemperaturesInto length mismatch")
	}
	for i := range dst {
		dst[i] = tr.t[i] + tr.m.Cfg.AmbientC
	}
}

// SpreaderTemperatures returns the current spreader-layer temperatures in °C.
func (tr *Transient) SpreaderTemperatures() []float64 {
	out := make([]float64, tr.m.n)
	for i := range out {
		out[i] = tr.t[tr.m.n+i] + tr.m.Cfg.AmbientC
	}
	return out
}
