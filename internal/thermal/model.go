// Package thermal implements a compact transient RC thermal model of a
// packaged die, standing in for the 3D-ICE simulator used by the paper.
//
// The model is the same discretization class as 3D-ICE: the die and the heat
// spreader are each divided into the same W×H grid of cells; every cell gets
// a lumped thermal capacitance; neighbouring cells in a layer are joined by
// lateral conductances; die cells connect vertically through the thermal
// interface material (TIM) to spreader cells; spreader cells connect through
// the per-area share of the heat-sink resistance to ambient. Power is
// injected in the die layer. Time integration is backward Euler (always
// stable).
//
// The backward-Euler system matrix A = C/dt + G is constant across all
// steps, so the default solver factors it once as a banded Cholesky under an
// interleaved die/spreader ordering (bandwidth 2·min(W,H) instead of n under
// the layer-major ordering) and advances every step with two O(n·bw) triangular
// substitutions — exact and with deterministic per-step cost. The original
// Jacobi-preconditioned conjugate-gradient arm remains available behind
// Config.Solver for ablation and for cross-checking; see DESIGN.md.
package thermal

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/mat"
)

// Solver selects how the SPD linear systems of the model are solved.
type Solver int

// Solver arms.
const (
	// SolverAuto picks the best solver for the grid; it currently always
	// resolves to SolverDirect (see ResolveSolver).
	SolverAuto Solver = iota
	// SolverCG is Jacobi-preconditioned conjugate gradients, warm-started
	// from the previous step (the original iterative arm; per-step cost
	// depends on the power map through the iteration count).
	SolverCG
	// SolverDirect factors A (and G) once as banded Choleskys and solves
	// each step by two triangular substitutions.
	SolverDirect
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverCG:
		return "cg"
	case SolverDirect:
		return "direct"
	}
	return fmt.Sprintf("Solver(%d)", int(s))
}

// ParseSolver converts a flag/JSON spelling into a Solver. The empty string
// means auto.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "auto":
		return SolverAuto, nil
	case "cg":
		return SolverCG, nil
	case "direct":
		return SolverDirect, nil
	}
	return 0, fmt.Errorf("thermal: unknown solver %q (want auto, cg or direct)", s)
}

// ValidSolver reports whether s is one of the defined solver arms (config
// validators use this to reject garbage values with a typed error instead
// of panicking deep in the simulator).
func ValidSolver(s Solver) bool {
	return s == SolverAuto || s == SolverCG || s == SolverDirect
}

// ResolveSolver maps SolverAuto to the concrete arm NewModel will use.
// The banded factor wins at every grid shape this repository simulates: its
// O(n·bw) per-step cost beats CG's many stencil sweeps per step even at
// the paper's full 60×56 grid, and the one-time O(n·bw²) factor amortizes
// over the thousands of steps of a dataset run, so auto always resolves to
// SolverDirect. The explicit arms are returned unchanged.
func ResolveSolver(s Solver) Solver {
	if s == SolverAuto {
		return SolverDirect
	}
	return s
}

// Material bundles the two bulk properties the RC model needs.
type Material struct {
	Conductivity float64 // W/(m·K)
	VolumetricC  float64 // J/(m³·K)
}

// Standard materials.
var (
	Silicon = Material{Conductivity: 120, VolumetricC: 1.63e6} // hot silicon
	Copper  = Material{Conductivity: 390, VolumetricC: 3.40e6}
)

// Config describes the package stack. The zero value is completed by
// defaults() to a T1-class 12 mm × 11.2 mm die with a copper spreader and a
// forced-air sink.
type Config struct {
	DieWidthM  float64 // die extent along the grid's W axis [m]
	DieHeightM float64 // die extent along the grid's H axis [m]

	DieThicknessM      float64
	SpreaderThicknessM float64

	Die      Material
	Spreader Material

	TIMConductivity float64 // W/(m·K)
	TIMThicknessM   float64

	SinkResistanceKPerW float64 // junction-to-ambient tail below the spreader
	AmbientC            float64

	DtSeconds float64 // transient time step

	// Leakage, if non-nil, adds temperature-dependent leakage power to every
	// die cell, closing the electro-thermal feedback loop.
	Leakage *LeakageModel

	// Solver selects the linear-solver arm (auto/cg/direct). The zero value
	// (auto) resolves via ResolveSolver.
	Solver Solver

	// CG controls for the iterative arm (ignored by SolverDirect).
	CGTol     float64 // relative residual; default 1e-8
	CGMaxIter int     // default 2000
}

// LeakageModel is a standard exponential leakage fit:
// P_leak(T) = BaseWPerCell · exp((T − TRefC)/TSlopeC) per die cell.
type LeakageModel struct {
	BaseWPerCell float64
	TRefC        float64
	TSlopeC      float64
}

// Power returns the leakage power of one cell at temperature tC (°C).
func (l *LeakageModel) Power(tC float64) float64 {
	return l.BaseWPerCell * math.Exp((tC-l.TRefC)/l.TSlopeC)
}

func (c *Config) defaults() {
	if c.DieWidthM == 0 {
		c.DieWidthM = 12e-3
	}
	if c.DieHeightM == 0 {
		c.DieHeightM = 11.2e-3
	}
	if c.DieThicknessM == 0 {
		c.DieThicknessM = 0.35e-3
	}
	if c.SpreaderThicknessM == 0 {
		c.SpreaderThicknessM = 2e-3
	}
	if c.Die == (Material{}) {
		c.Die = Silicon
	}
	if c.Spreader == (Material{}) {
		c.Spreader = Copper
	}
	if c.TIMConductivity == 0 {
		c.TIMConductivity = 4
	}
	if c.TIMThicknessM == 0 {
		c.TIMThicknessM = 40e-6
	}
	if c.SinkResistanceKPerW == 0 {
		c.SinkResistanceKPerW = 0.35
	}
	if c.AmbientC == 0 {
		c.AmbientC = 45
	}
	if c.DtSeconds == 0 {
		c.DtSeconds = 10e-3
	}
	if c.CGTol == 0 {
		c.CGTol = 1e-8
	}
	if c.CGMaxIter == 0 {
		c.CGMaxIter = 2000
	}
}

// Model is an assembled RC network for one grid. The unknown vector stacks
// die-cell temperature rises (indices [0,n)) above spreader-cell rises
// (indices [n,2n)), both relative to ambient.
type Model struct {
	Grid floorplan.Grid
	Cfg  Config

	n int // cells per layer

	// Conductances [W/K].
	gxDie, gyDie float64 // lateral, die layer
	gxSpr, gySpr float64 // lateral, spreader layer
	gTIM         float64 // die cell ↔ spreader cell
	gSink        float64 // spreader cell ↔ ambient

	// Capacitances [J/K].
	cDie, cSpr float64

	diag []float64 // diagonal of G (conductance matrix), length 2n

	solver Solver // resolved arm (never SolverAuto)
	ord    []int  // banded-system cell permutation (see cellOrder)

	// Banded Cholesky factors of A = C/dt + G (transient steps) and G
	// (steady states), assembled under the interleaved die/spreader
	// ordering. Factored lazily exactly once and then shared read-only by
	// every Transient of this model — concurrent dataset-generation workers
	// all solve against the same factor.
	onceA, onceG sync.Once
	facA, facG   *mat.BandCholesky
	errA, errG   error
}

// NewModel assembles the RC network for grid g under cfg (zero fields take
// defaults).
func NewModel(g floorplan.Grid, cfg Config) *Model {
	cfg.defaults()
	if g.W <= 0 || g.H <= 0 {
		panic(fmt.Sprintf("thermal: invalid grid %dx%d", g.H, g.W))
	}
	dx := cfg.DieWidthM / float64(g.W)
	dy := cfg.DieHeightM / float64(g.H)
	area := dx * dy
	m := &Model{
		Grid:  g,
		Cfg:   cfg,
		n:     g.N(),
		gxDie: cfg.Die.Conductivity * dy * cfg.DieThicknessM / dx,
		gyDie: cfg.Die.Conductivity * dx * cfg.DieThicknessM / dy,
		gxSpr: cfg.Spreader.Conductivity * dy * cfg.SpreaderThicknessM / dx,
		gySpr: cfg.Spreader.Conductivity * dx * cfg.SpreaderThicknessM / dy,
		gTIM:  cfg.TIMConductivity * area / cfg.TIMThicknessM,
		gSink: area / (cfg.SinkResistanceKPerW * cfg.DieWidthM * cfg.DieHeightM),
		cDie:  cfg.Die.VolumetricC * area * cfg.DieThicknessM,
		cSpr:  cfg.Spreader.VolumetricC * area * cfg.SpreaderThicknessM,
	}
	if !ValidSolver(cfg.Solver) {
		panic(fmt.Sprintf("thermal: invalid solver %v", cfg.Solver))
	}
	m.solver = ResolveSolver(cfg.Solver)
	m.diag = m.conductanceDiagonal()
	m.ord = m.cellOrder()
	return m
}

// NumUnknowns returns the total unknown count (2 layers × N cells).
func (m *Model) NumUnknowns() int { return 2 * m.n }

// conductanceDiagonal precomputes diag(G).
func (m *Model) conductanceDiagonal() []float64 {
	g := m.Grid
	d := make([]float64, 2*m.n)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			var latDie, latSpr float64
			if col > 0 {
				latDie += m.gxDie
				latSpr += m.gxSpr
			}
			if col < g.W-1 {
				latDie += m.gxDie
				latSpr += m.gxSpr
			}
			if row > 0 {
				latDie += m.gyDie
				latSpr += m.gySpr
			}
			if row < g.H-1 {
				latDie += m.gyDie
				latSpr += m.gySpr
			}
			d[i] = latDie + m.gTIM
			d[m.n+i] = latSpr + m.gTIM + m.gSink
		}
	}
	return d
}

// ApplyG computes y = G·x for the conductance matrix (the negated graph
// Laplacian plus grounding terms); x and y have length 2n.
func (m *Model) ApplyG(x, y []float64) {
	if len(x) != 2*m.n || len(y) != 2*m.n {
		panic("thermal: ApplyG length mismatch")
	}
	g := m.Grid
	n := m.n
	for i := range y {
		y[i] = m.diag[i] * x[i]
	}
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			xd := x[i]
			xs := x[n+i]
			// Lateral couplings: accumulate -g·x_neighbor.
			if col > 0 {
				j := i - g.H // column stacking: left neighbor is H back
				y[i] -= m.gxDie * x[j]
				y[n+i] -= m.gxSpr * x[n+j]
			}
			if col < g.W-1 {
				j := i + g.H
				y[i] -= m.gxDie * x[j]
				y[n+i] -= m.gxSpr * x[n+j]
			}
			if row > 0 {
				j := i - 1
				y[i] -= m.gyDie * x[j]
				y[n+i] -= m.gySpr * x[n+j]
			}
			if row < g.H-1 {
				j := i + 1
				y[i] -= m.gyDie * x[j]
				y[n+i] -= m.gySpr * x[n+j]
			}
			// Vertical coupling through the TIM.
			y[i] -= m.gTIM * xs
			y[n+i] -= m.gTIM * xd
		}
	}
}

// applyA computes y = (C/dt + G)·x, the backward-Euler system matrix.
func (m *Model) applyA(x, y []float64) {
	m.ApplyG(x, y)
	cd := m.cDie / m.Cfg.DtSeconds
	cs := m.cSpr / m.Cfg.DtSeconds
	for i := 0; i < m.n; i++ {
		y[i] += cd * x[i]
		y[m.n+i] += cs * x[m.n+i]
	}
}

// cellOrder returns the permutation placing cell i's unknowns at
// 2·ord[i] (die) and 2·ord[i]+1 (spreader) in the banded system, chosen so
// adjacent-in-order cells are neighbours along the grid's *minor*
// dimension: the identity (column-stacked) order when H ≤ W, the row-major
// transpose when H > W. Either way the widest coupling — the lateral hop
// along the major dimension — sits 2·min(W,H) unknowns away, so the
// bandwidth is 2·min(W,H) regardless of the grid's orientation (the TIM
// coupling sits at 1 and the minor-dimension hop at 2). Compare n = W·H
// under the layer-major ordering.
func (m *Model) cellOrder() []int {
	g := m.Grid
	ord := make([]int, m.n)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			if g.H > g.W {
				ord[i] = row*g.W + col
			} else {
				ord[i] = i
			}
		}
	}
	return ord
}

// bandwidth returns the number of sub-diagonals of A (and G) under the
// cellOrder interleaving (clamped by NewSymBand for degenerate grids).
func (m *Model) bandwidth() int {
	minor := m.Grid.H
	if m.Grid.W < minor {
		minor = m.Grid.W
	}
	return 2 * minor
}

// assembleBand builds the conductance matrix G — plus the C/dt mass terms
// when withMass is set, giving the backward-Euler matrix A — in symmetric
// band form under the cellOrder interleaving.
func (m *Model) assembleBand(withMass bool) *mat.SymBand {
	g := m.Grid
	n := m.n
	a := mat.NewSymBand(2*n, m.bandwidth())
	var cd, cs float64
	if withMass {
		cd = m.cDie / m.Cfg.DtSeconds
		cs = m.cSpr / m.Cfg.DtSeconds
	}
	ord := m.ord
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			oi := ord[i]
			a.Set(2*oi, 2*oi, m.diag[i]+cd)
			a.Set(2*oi+1, 2*oi+1, m.diag[n+i]+cs)
			a.Set(2*oi+1, 2*oi, -m.gTIM)
			if row > 0 {
				oj := ord[i-1]
				a.Set(2*oi, 2*oj, -m.gyDie)
				a.Set(2*oi+1, 2*oj+1, -m.gySpr)
			}
			if col > 0 {
				oj := ord[i-g.H]
				a.Set(2*oi, 2*oj, -m.gxDie)
				a.Set(2*oi+1, 2*oj+1, -m.gxSpr)
			}
		}
	}
	return a
}

// factorA returns the banded Cholesky factor of A = C/dt + G, computing it
// exactly once per model. Safe for concurrent use.
func (m *Model) factorA() (*mat.BandCholesky, error) {
	m.onceA.Do(func() {
		m.facA, m.errA = mat.NewBandCholesky(m.assembleBand(true))
	})
	return m.facA, m.errA
}

// factorG returns the banded Cholesky factor of G, computing it exactly
// once per model. Safe for concurrent use.
func (m *Model) factorG() (*mat.BandCholesky, error) {
	m.onceG.Do(func() {
		m.facG, m.errG = mat.NewBandCholesky(m.assembleBand(false))
	})
	return m.facG, m.errG
}

// interleave packs the layer-major vector x (die rises in [0,n), spreader
// rises in [n,2n)) into z with cell i's unknowns at 2·ord[i] and 2·ord[i]+1.
func (m *Model) interleave(z, x []float64) {
	for i, oi := range m.ord {
		z[2*oi] = x[i]
		z[2*oi+1] = x[m.n+i]
	}
}

// deinterleave is the inverse permutation of interleave.
func (m *Model) deinterleave(x, z []float64) {
	for i, oi := range m.ord {
		x[i] = z[2*oi]
		x[m.n+i] = z[2*oi+1]
	}
}

// SteadyState solves G·T = P for the equilibrium temperature rise under the
// per-die-cell power vector (length n) and returns die temperatures in °C.
func (m *Model) SteadyState(cellPowerW []float64) ([]float64, error) {
	if len(cellPowerW) != m.n {
		panic("thermal: SteadyState power length mismatch")
	}
	tr := m.NewTransient()
	if err := tr.SetSteadyState(cellPowerW); err != nil {
		return nil, err
	}
	return tr.DieTemperatures(), nil
}

// cgScratch holds the four work vectors of the CG iteration so the hot path
// allocates nothing per solve.
type cgScratch struct {
	r, z, p, ap []float64
}

func newCGScratch(n int) *cgScratch {
	return &cgScratch{
		r:  make([]float64, n),
		z:  make([]float64, n),
		p:  make([]float64, n),
		ap: make([]float64, n),
	}
}

// cg solves apply(x) = b by preconditioned conjugate gradients with the
// Jacobi preconditioner diag. x holds the warm start on entry and the
// solution on exit. Work vectors come from s (length 2n each).
func (m *Model) cg(apply func(x, y []float64), b, x, diag []float64, s *cgScratch) error {
	r, z, p, ap := s.r, s.z, s.p, s.ap

	apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	var bnorm float64
	for _, v := range b {
		bnorm += v * v
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return nil
	}
	tol := m.Cfg.CGTol * bnorm

	var rz float64
	for i := range r {
		z[i] = r[i] / diag[i]
		rz += r[i] * z[i]
	}
	copy(p, z)
	for iter := 0; iter < m.Cfg.CGMaxIter; iter++ {
		var rnorm float64
		for _, v := range r {
			rnorm += v * v
		}
		if math.Sqrt(rnorm) <= tol {
			return nil
		}
		apply(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return fmt.Errorf("thermal: CG breakdown (pᵀAp = %g); matrix not SPD?", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		var rzNew float64
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return fmt.Errorf("thermal: CG did not converge in %d iterations", m.Cfg.CGMaxIter)
}
