// Package thermal implements a compact transient RC thermal model of a
// packaged die, standing in for the 3D-ICE simulator used by the paper.
//
// The model is the same discretization class as 3D-ICE: the die and the heat
// spreader are each divided into the same W×H grid of cells; every cell gets
// a lumped thermal capacitance; neighbouring cells in a layer are joined by
// lateral conductances; die cells connect vertically through the thermal
// interface material (TIM) to spreader cells; spreader cells connect through
// the per-area share of the heat-sink resistance to ambient. Power is
// injected in the die layer. Time integration is backward Euler (always
// stable), with the SPD linear system solved by Jacobi-preconditioned
// conjugate gradients, warm-started from the previous step.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// Material bundles the two bulk properties the RC model needs.
type Material struct {
	Conductivity float64 // W/(m·K)
	VolumetricC  float64 // J/(m³·K)
}

// Standard materials.
var (
	Silicon = Material{Conductivity: 120, VolumetricC: 1.63e6} // hot silicon
	Copper  = Material{Conductivity: 390, VolumetricC: 3.40e6}
)

// Config describes the package stack. The zero value is completed by
// defaults() to a T1-class 12 mm × 11.2 mm die with a copper spreader and a
// forced-air sink.
type Config struct {
	DieWidthM  float64 // die extent along the grid's W axis [m]
	DieHeightM float64 // die extent along the grid's H axis [m]

	DieThicknessM      float64
	SpreaderThicknessM float64

	Die      Material
	Spreader Material

	TIMConductivity float64 // W/(m·K)
	TIMThicknessM   float64

	SinkResistanceKPerW float64 // junction-to-ambient tail below the spreader
	AmbientC            float64

	DtSeconds float64 // transient time step

	// Leakage, if non-nil, adds temperature-dependent leakage power to every
	// die cell, closing the electro-thermal feedback loop.
	Leakage *LeakageModel

	// CG controls for the inner solver.
	CGTol     float64 // relative residual; default 1e-8
	CGMaxIter int     // default 2000
}

// LeakageModel is a standard exponential leakage fit:
// P_leak(T) = BaseWPerCell · exp((T − TRefC)/TSlopeC) per die cell.
type LeakageModel struct {
	BaseWPerCell float64
	TRefC        float64
	TSlopeC      float64
}

// Power returns the leakage power of one cell at temperature tC (°C).
func (l *LeakageModel) Power(tC float64) float64 {
	return l.BaseWPerCell * math.Exp((tC-l.TRefC)/l.TSlopeC)
}

func (c *Config) defaults() {
	if c.DieWidthM == 0 {
		c.DieWidthM = 12e-3
	}
	if c.DieHeightM == 0 {
		c.DieHeightM = 11.2e-3
	}
	if c.DieThicknessM == 0 {
		c.DieThicknessM = 0.35e-3
	}
	if c.SpreaderThicknessM == 0 {
		c.SpreaderThicknessM = 2e-3
	}
	if c.Die == (Material{}) {
		c.Die = Silicon
	}
	if c.Spreader == (Material{}) {
		c.Spreader = Copper
	}
	if c.TIMConductivity == 0 {
		c.TIMConductivity = 4
	}
	if c.TIMThicknessM == 0 {
		c.TIMThicknessM = 40e-6
	}
	if c.SinkResistanceKPerW == 0 {
		c.SinkResistanceKPerW = 0.35
	}
	if c.AmbientC == 0 {
		c.AmbientC = 45
	}
	if c.DtSeconds == 0 {
		c.DtSeconds = 10e-3
	}
	if c.CGTol == 0 {
		c.CGTol = 1e-8
	}
	if c.CGMaxIter == 0 {
		c.CGMaxIter = 2000
	}
}

// Model is an assembled RC network for one grid. The unknown vector stacks
// die-cell temperature rises (indices [0,n)) above spreader-cell rises
// (indices [n,2n)), both relative to ambient.
type Model struct {
	Grid floorplan.Grid
	Cfg  Config

	n int // cells per layer

	// Conductances [W/K].
	gxDie, gyDie float64 // lateral, die layer
	gxSpr, gySpr float64 // lateral, spreader layer
	gTIM         float64 // die cell ↔ spreader cell
	gSink        float64 // spreader cell ↔ ambient

	// Capacitances [J/K].
	cDie, cSpr float64

	diag []float64 // diagonal of G (conductance matrix), length 2n
}

// NewModel assembles the RC network for grid g under cfg (zero fields take
// defaults).
func NewModel(g floorplan.Grid, cfg Config) *Model {
	cfg.defaults()
	if g.W <= 0 || g.H <= 0 {
		panic(fmt.Sprintf("thermal: invalid grid %dx%d", g.H, g.W))
	}
	dx := cfg.DieWidthM / float64(g.W)
	dy := cfg.DieHeightM / float64(g.H)
	area := dx * dy
	m := &Model{
		Grid:  g,
		Cfg:   cfg,
		n:     g.N(),
		gxDie: cfg.Die.Conductivity * dy * cfg.DieThicknessM / dx,
		gyDie: cfg.Die.Conductivity * dx * cfg.DieThicknessM / dy,
		gxSpr: cfg.Spreader.Conductivity * dy * cfg.SpreaderThicknessM / dx,
		gySpr: cfg.Spreader.Conductivity * dx * cfg.SpreaderThicknessM / dy,
		gTIM:  cfg.TIMConductivity * area / cfg.TIMThicknessM,
		gSink: area / (cfg.SinkResistanceKPerW * cfg.DieWidthM * cfg.DieHeightM),
		cDie:  cfg.Die.VolumetricC * area * cfg.DieThicknessM,
		cSpr:  cfg.Spreader.VolumetricC * area * cfg.SpreaderThicknessM,
	}
	m.diag = m.conductanceDiagonal()
	return m
}

// NumUnknowns returns the total unknown count (2 layers × N cells).
func (m *Model) NumUnknowns() int { return 2 * m.n }

// conductanceDiagonal precomputes diag(G).
func (m *Model) conductanceDiagonal() []float64 {
	g := m.Grid
	d := make([]float64, 2*m.n)
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			var latDie, latSpr float64
			if col > 0 {
				latDie += m.gxDie
				latSpr += m.gxSpr
			}
			if col < g.W-1 {
				latDie += m.gxDie
				latSpr += m.gxSpr
			}
			if row > 0 {
				latDie += m.gyDie
				latSpr += m.gySpr
			}
			if row < g.H-1 {
				latDie += m.gyDie
				latSpr += m.gySpr
			}
			d[i] = latDie + m.gTIM
			d[m.n+i] = latSpr + m.gTIM + m.gSink
		}
	}
	return d
}

// ApplyG computes y = G·x for the conductance matrix (the negated graph
// Laplacian plus grounding terms); x and y have length 2n.
func (m *Model) ApplyG(x, y []float64) {
	if len(x) != 2*m.n || len(y) != 2*m.n {
		panic("thermal: ApplyG length mismatch")
	}
	g := m.Grid
	n := m.n
	for i := range y {
		y[i] = m.diag[i] * x[i]
	}
	for row := 0; row < g.H; row++ {
		for col := 0; col < g.W; col++ {
			i := g.Index(row, col)
			xd := x[i]
			xs := x[n+i]
			// Lateral couplings: accumulate -g·x_neighbor.
			if col > 0 {
				j := i - g.H // column stacking: left neighbor is H back
				y[i] -= m.gxDie * x[j]
				y[n+i] -= m.gxSpr * x[n+j]
			}
			if col < g.W-1 {
				j := i + g.H
				y[i] -= m.gxDie * x[j]
				y[n+i] -= m.gxSpr * x[n+j]
			}
			if row > 0 {
				j := i - 1
				y[i] -= m.gyDie * x[j]
				y[n+i] -= m.gySpr * x[n+j]
			}
			if row < g.H-1 {
				j := i + 1
				y[i] -= m.gyDie * x[j]
				y[n+i] -= m.gySpr * x[n+j]
			}
			// Vertical coupling through the TIM.
			y[i] -= m.gTIM * xs
			y[n+i] -= m.gTIM * xd
		}
	}
}

// applyA computes y = (C/dt + G)·x, the backward-Euler system matrix.
func (m *Model) applyA(x, y []float64) {
	m.ApplyG(x, y)
	cd := m.cDie / m.Cfg.DtSeconds
	cs := m.cSpr / m.Cfg.DtSeconds
	for i := 0; i < m.n; i++ {
		y[i] += cd * x[i]
		y[m.n+i] += cs * x[m.n+i]
	}
}

// SteadyState solves G·T = P for the equilibrium temperature rise under the
// per-die-cell power vector (length n) and returns die temperatures in °C.
func (m *Model) SteadyState(cellPowerW []float64) ([]float64, error) {
	if len(cellPowerW) != m.n {
		panic("thermal: SteadyState power length mismatch")
	}
	b := make([]float64, 2*m.n)
	copy(b, cellPowerW)
	x := make([]float64, 2*m.n)
	precond := m.diag
	if err := m.cg(m.ApplyG, b, x, precond); err != nil {
		return nil, err
	}
	out := make([]float64, m.n)
	for i := range out {
		out[i] = x[i] + m.Cfg.AmbientC
	}
	return out, nil
}

// cg solves apply(x) = b by preconditioned conjugate gradients with the
// Jacobi preconditioner diag. x holds the warm start on entry and the
// solution on exit.
func (m *Model) cg(apply func(x, y []float64), b, x, diag []float64) error {
	n := len(b)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	var bnorm float64
	for _, v := range b {
		bnorm += v * v
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return nil
	}
	tol := m.Cfg.CGTol * bnorm

	var rz float64
	for i := range r {
		z[i] = r[i] / diag[i]
		rz += r[i] * z[i]
	}
	copy(p, z)
	for iter := 0; iter < m.Cfg.CGMaxIter; iter++ {
		var rnorm float64
		for _, v := range r {
			rnorm += v * v
		}
		if math.Sqrt(rnorm) <= tol {
			return nil
		}
		apply(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return fmt.Errorf("thermal: CG breakdown (pᵀAp = %g); matrix not SPD?", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		var rzNew float64
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return fmt.Errorf("thermal: CG did not converge in %d iterations", m.Cfg.CGMaxIter)
}
