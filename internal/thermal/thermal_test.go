package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func smallModel() *Model {
	return NewModel(floorplan.Grid{W: 12, H: 10}, Config{})
}

func TestDefaultsApplied(t *testing.T) {
	m := smallModel()
	if m.Cfg.AmbientC != 45 || m.Cfg.DtSeconds != 10e-3 {
		t.Fatalf("defaults not applied: %+v", m.Cfg)
	}
	if m.gTIM <= 0 || m.gSink <= 0 || m.gxDie <= 0 {
		t.Fatal("non-positive conductances")
	}
}

func TestSteadyStateZeroPowerIsAmbient(t *testing.T) {
	m := smallModel()
	temps, err := m.SteadyState(make([]float64, m.Grid.N()))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range temps {
		if math.Abs(v-m.Cfg.AmbientC) > 1e-9 {
			t.Fatalf("zero-power steady state %v, want ambient %v", v, m.Cfg.AmbientC)
		}
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	// In equilibrium all injected power must leave through the sink:
	// Σ gSink·(T_spreader − T_amb) == Σ P.
	m := smallModel()
	p := make([]float64, m.Grid.N())
	var total float64
	for i := range p {
		p[i] = 0.02
		total += p[i]
	}
	b := make([]float64, 2*m.Grid.N())
	copy(b, p)
	x := make([]float64, 2*m.Grid.N())
	if err := m.cg(m.ApplyG, b, x, m.diag, newCGScratch(len(b))); err != nil {
		t.Fatal(err)
	}
	var out float64
	for i := 0; i < m.Grid.N(); i++ {
		out += m.gSink * x[m.Grid.N()+i]
	}
	if math.Abs(out-total) > 1e-6*total {
		t.Fatalf("sink heat %v W != injected %v W", out, total)
	}
}

func TestSteadyStateAboveAmbientAndHotterAtSource(t *testing.T) {
	m := smallModel()
	p := make([]float64, m.Grid.N())
	hot := m.Grid.Index(5, 6)
	p[hot] = 2.0
	temps, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	maxI := 0
	for i, v := range temps {
		if v < m.Cfg.AmbientC-1e-9 {
			t.Fatalf("cell %d below ambient: %v", i, v)
		}
		if v > temps[maxI] {
			maxI = i
		}
	}
	if maxI != hot {
		t.Fatalf("hottest cell %d, want source %d", maxI, hot)
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	// Doubling power doubles the rise (model is linear).
	m := smallModel()
	p := make([]float64, m.Grid.N())
	for i := range p {
		p[i] = 0.01 * float64(i%7)
	}
	t1, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		p[i] *= 2
	}
	t2, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	amb := m.Cfg.AmbientC
	for i := range t1 {
		r1, r2 := t1[i]-amb, t2[i]-amb
		if math.Abs(r2-2*r1) > 1e-6*(r1+1) {
			t.Fatalf("linearity violated at %d: %v vs 2·%v", i, r2, r1)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := NewModel(floorplan.Grid{W: 8, H: 8}, Config{DtSeconds: 50e-3})
	p := make([]float64, m.Grid.N())
	for i := range p {
		p[i] = 0.03
	}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTransient()
	var got []float64
	for step := 0; step < 400; step++ {
		got, err = tr.Step(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("transient cell %d = %v, steady %v", i, got[i], want[i])
		}
	}
}

func TestTransientMonotoneHeatUp(t *testing.T) {
	m := NewModel(floorplan.Grid{W: 6, H: 6}, Config{})
	p := make([]float64, m.Grid.N())
	p[m.Grid.Index(3, 3)] = 1
	tr := m.NewTransient()
	prev := -math.MaxFloat64
	for step := 0; step < 50; step++ {
		temps, err := tr.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		cur := temps[m.Grid.Index(3, 3)]
		if cur < prev-1e-9 {
			t.Fatalf("step %d: source cooled from %v to %v under constant power", step, prev, cur)
		}
		prev = cur
	}
}

func TestTransientCoolsAfterPowerOff(t *testing.T) {
	m := NewModel(floorplan.Grid{W: 6, H: 6}, Config{})
	p := make([]float64, m.Grid.N())
	for i := range p {
		p[i] = 0.05
	}
	tr := m.NewTransient()
	if err := tr.SetSteadyState(p); err != nil {
		t.Fatal(err)
	}
	hot := tr.DieTemperatures()
	zero := make([]float64, m.Grid.N())
	var cooled []float64
	var err error
	for step := 0; step < 200; step++ {
		cooled, err = tr.Step(zero)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range hot {
		if cooled[i] > hot[i]+1e-9 {
			t.Fatalf("cell %d heated after power-off", i)
		}
		if cooled[i] > m.Cfg.AmbientC+1 {
			t.Fatalf("cell %d did not cool toward ambient: %v", i, cooled[i])
		}
	}
}

func TestSetSteadyStateMatchesSteadyState(t *testing.T) {
	m := smallModel()
	p := make([]float64, m.Grid.N())
	for i := range p {
		p[i] = 0.01 + 0.001*float64(i%13)
	}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTransient()
	if err := tr.SetSteadyState(p); err != nil {
		t.Fatal(err)
	}
	got := tr.DieTemperatures()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("cell %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMaximumPrinciple(t *testing.T) {
	// With a single heat source, temperature decreases with graph distance
	// from the source along a straight line.
	m := NewModel(floorplan.Grid{W: 16, H: 4}, Config{})
	p := make([]float64, m.Grid.N())
	src := m.Grid.Index(2, 0)
	p[src] = 1.5
	temps, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col < 16; col++ {
		a := temps[m.Grid.Index(2, col-1)]
		b := temps[m.Grid.Index(2, col)]
		if b > a+1e-9 {
			t.Fatalf("temperature rose away from source at col %d: %v > %v", col, b, a)
		}
	}
}

func TestSpreaderCoolerThanDie(t *testing.T) {
	m := smallModel()
	p := make([]float64, m.Grid.N())
	for i := range p {
		p[i] = 0.03
	}
	tr := m.NewTransient()
	if err := tr.SetSteadyState(p); err != nil {
		t.Fatal(err)
	}
	die := tr.DieTemperatures()
	spr := tr.SpreaderTemperatures()
	var dieMean, sprMean float64
	for i := range die {
		dieMean += die[i]
		sprMean += spr[i]
	}
	if sprMean >= dieMean {
		t.Fatalf("spreader (%v) not cooler than die (%v)", sprMean, dieMean)
	}
}

func TestLeakageIncreasesTemperature(t *testing.T) {
	g := floorplan.Grid{W: 8, H: 8}
	p := make([]float64, g.N())
	for i := range p {
		p[i] = 0.02
	}
	run := func(lk *LeakageModel) float64 {
		m := NewModel(g, Config{Leakage: lk})
		tr := m.NewTransient()
		var temps []float64
		var err error
		for step := 0; step < 100; step++ {
			temps, err = tr.Step(p)
			if err != nil {
				t.Fatal(err)
			}
		}
		var mean float64
		for _, v := range temps {
			mean += v
		}
		return mean / float64(len(temps))
	}
	base := run(nil)
	leaky := run(&LeakageModel{BaseWPerCell: 0.005, TRefC: 45, TSlopeC: 30})
	if leaky <= base {
		t.Fatalf("leakage run (%v) not hotter than baseline (%v)", leaky, base)
	}
}

func TestApplyGSymmetric(t *testing.T) {
	// ⟨Gx, y⟩ == ⟨x, Gy⟩ for random-ish vectors: G must be symmetric.
	m := NewModel(floorplan.Grid{W: 5, H: 7}, Config{})
	n := 2 * m.Grid.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
		y[i] = math.Cos(float64(7*i + 2))
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	m.ApplyG(x, gx)
	m.ApplyG(y, gy)
	var a, b float64
	for i := range x {
		a += gx[i] * y[i]
		b += x[i] * gy[i]
	}
	if math.Abs(a-b) > 1e-9*(math.Abs(a)+1) {
		t.Fatalf("G not symmetric: %v vs %v", a, b)
	}
}

func TestApplyGPositiveDefinite(t *testing.T) {
	// xᵀGx > 0 for non-zero x (grounded Laplacian).
	m := NewModel(floorplan.Grid{W: 4, H: 4}, Config{})
	n := 2 * m.Grid.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 // worst case for a pure Laplacian: constant vector
	}
	gx := make([]float64, n)
	m.ApplyG(x, gx)
	var q float64
	for i := range x {
		q += x[i] * gx[i]
	}
	if q <= 0 {
		t.Fatalf("xᵀGx = %v for constant x; grounding terms missing", q)
	}
}

func TestLeakageModelMonotone(t *testing.T) {
	lk := &LeakageModel{BaseWPerCell: 0.01, TRefC: 45, TSlopeC: 30}
	if !(lk.Power(55) > lk.Power(45) && lk.Power(45) > lk.Power(35)) {
		t.Fatal("leakage not monotone in temperature")
	}
	if math.Abs(lk.Power(45)-0.01) > 1e-12 {
		t.Fatalf("leakage at TRef = %v, want base", lk.Power(45))
	}
}
