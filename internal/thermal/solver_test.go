package thermal

import (
	"math"
	"sync"
	"testing"

	"repro/internal/floorplan"
)

func TestSolverString(t *testing.T) {
	cases := map[Solver]string{
		SolverAuto: "auto", SolverCG: "cg", SolverDirect: "direct", Solver(9): "Solver(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestParseSolver(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Solver
	}{{"", SolverAuto}, {"auto", SolverAuto}, {"cg", SolverCG}, {"direct", SolverDirect}} {
		got, err := ParseSolver(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSolver("jacobi"); err == nil {
		t.Fatal("expected error for unknown solver name")
	}
}

func TestResolveSolver(t *testing.T) {
	if ResolveSolver(SolverAuto) != SolverDirect {
		t.Fatal("auto must resolve to direct")
	}
	if ResolveSolver(SolverCG) != SolverCG || ResolveSolver(SolverDirect) != SolverDirect {
		t.Fatal("explicit arms must pass through unchanged")
	}
}

func TestNewModelRejectsUnknownSolver(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(floorplan.Grid{W: 4, H: 4}, Config{Solver: Solver(42)})
}

// stepPowers builds a deterministic sequence of spatially-structured power
// maps that moves enough between steps to exercise both solver arms.
func stepPowers(n, steps int) [][]float64 {
	out := make([][]float64, steps)
	for s := range out {
		p := make([]float64, n)
		for i := range p {
			p[i] = 0.01 + 0.02*math.Abs(math.Sin(float64(i*(s+3)+7)))
		}
		out[s] = p
	}
	return out
}

// TestDirectMatchesCGTransient pins the tentpole agreement criterion at the
// thermal level: stepping the same trace through both arms, with and
// without leakage, die temperatures stay within 1e-6 °C.
func TestDirectMatchesCGTransient(t *testing.T) {
	for _, lk := range []*LeakageModel{nil, {BaseWPerCell: 0.004, TRefC: 45, TSlopeC: 30}} {
		g := floorplan.Grid{W: 14, H: 11}
		powers := stepPowers(g.N(), 60)
		run := func(s Solver) [][]float64 {
			m := NewModel(g, Config{Solver: s, Leakage: lk})
			tr := m.NewTransient()
			if err := tr.SetSteadyState(powers[0]); err != nil {
				t.Fatal(err)
			}
			var outs [][]float64
			for _, p := range powers {
				temps, err := tr.Step(p)
				if err != nil {
					t.Fatal(err)
				}
				outs = append(outs, temps)
			}
			return outs
		}
		direct := run(SolverDirect)
		cg := run(SolverCG)
		for s := range direct {
			for i := range direct[s] {
				if d := math.Abs(direct[s][i] - cg[s][i]); d > 1e-6 {
					t.Fatalf("leakage=%v step %d cell %d: |direct−cg| = %g °C", lk != nil, s, i, d)
				}
			}
		}
	}
}

func TestDirectMatchesCGSteadyState(t *testing.T) {
	g := floorplan.Grid{W: 12, H: 10}
	p := stepPowers(g.N(), 1)[0]
	direct, err := NewModel(g, Config{Solver: SolverDirect}).SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := NewModel(g, Config{Solver: SolverCG}).SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if d := math.Abs(direct[i] - cg[i]); d > 1e-6 {
			t.Fatalf("cell %d: |direct−cg| = %g °C", i, d)
		}
	}
}

func TestStepIntoMatchesStep(t *testing.T) {
	for _, s := range []Solver{SolverDirect, SolverCG} {
		g := floorplan.Grid{W: 9, H: 7}
		powers := stepPowers(g.N(), 10)
		m := NewModel(g, Config{Solver: s})
		trA, trB := m.NewTransient(), m.NewTransient()
		dst := make([]float64, g.N())
		for _, p := range powers {
			want, err := trA.Step(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := trB.StepInto(dst, p); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("%v: StepInto diverged from Step at cell %d", s, i)
				}
			}
		}
	}
}

// TestStepIntoZeroAlloc pins the hot path of dataset generation at zero
// allocations per step for both solver arms (the CG arm's work vectors live
// on the Transient, the direct arm solves in place against the shared
// factor).
func TestStepIntoZeroAlloc(t *testing.T) {
	for _, s := range []Solver{SolverDirect, SolverCG} {
		g := floorplan.Grid{W: 12, H: 10}
		p := stepPowers(g.N(), 1)[0]
		m := NewModel(g, Config{Solver: s})
		tr := m.NewTransient()
		if err := tr.SetSteadyState(p); err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.N())
		allocs := testing.AllocsPerRun(20, func() {
			if err := tr.StepInto(dst, p); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v: StepInto allocated %v times per step", s, allocs)
		}
	}
}

func TestSetSteadyStateZeroAllocAfterFirst(t *testing.T) {
	g := floorplan.Grid{W: 10, H: 8}
	p := stepPowers(g.N(), 1)[0]
	m := NewModel(g, Config{})
	tr := m.NewTransient()
	if err := tr.SetSteadyState(p); err != nil { // first call factors G
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := tr.SetSteadyState(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SetSteadyState allocated %v times per call", allocs)
	}
}

func TestDieTemperaturesInto(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 5}
	m := NewModel(g, Config{})
	tr := m.NewTransient()
	if err := tr.SetSteadyState(stepPowers(g.N(), 1)[0]); err != nil {
		t.Fatal(err)
	}
	want := tr.DieTemperatures()
	got := make([]float64, g.N())
	tr.DieTemperaturesInto(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("DieTemperaturesInto mismatch")
		}
	}
}

// TestSharedFactorConcurrentTransients runs several Transients over one
// Model from separate goroutines (the parallel dataset-generation shape);
// under -race this pins that the lazily-computed factor is safely shared.
func TestSharedFactorConcurrentTransients(t *testing.T) {
	g := floorplan.Grid{W: 10, H: 9}
	m := NewModel(g, Config{})
	powers := stepPowers(g.N(), 8)
	want := func() []float64 {
		tr := m.NewTransient()
		var last []float64
		for _, p := range powers {
			var err error
			if last, err = tr.Step(p); err != nil {
				t.Fatal(err)
			}
		}
		return last
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := m.NewTransient()
			var last []float64
			for _, p := range powers {
				var err error
				if last, err = tr.Step(p); err != nil {
					t.Error(err)
					return
				}
			}
			for i := range want {
				if last[i] != want[i] {
					t.Errorf("concurrent transient diverged at cell %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTallGridAgreement pins the minor-dimension ordering: a grid with
// H > W must produce the same physics (direct vs CG < 1e-6 °C) while the
// band stays at 2·min(W,H) wide rather than 2·H.
func TestTallGridAgreement(t *testing.T) {
	g := floorplan.Grid{W: 6, H: 20}
	powers := stepPowers(g.N(), 30)
	run := func(s Solver) []float64 {
		m := NewModel(g, Config{Solver: s})
		if bw := m.bandwidth(); bw != 12 {
			t.Fatalf("bandwidth %d for 6×20 grid, want 2·min(W,H) = 12", bw)
		}
		tr := m.NewTransient()
		var last []float64
		for _, p := range powers {
			var err error
			if last, err = tr.Step(p); err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	direct, cg := run(SolverDirect), run(SolverCG)
	for i := range direct {
		if d := math.Abs(direct[i] - cg[i]); d > 1e-6 {
			t.Fatalf("cell %d: |direct−cg| = %g °C", i, d)
		}
	}
}
