package eigenmaps

import "testing"

// TestT1GovernorCapsHotCores drives the facade governor with a map that
// heats one core past the ceiling and checks the cap lands on that core
// only, then releases after the map cools below the clear point.
func TestT1GovernorCapsHotCores(t *testing.T) {
	grid := Grid{W: 30, H: 28}
	gov, err := NewT1Governor(grid, GovernorOptions{CeilingC: 75})
	if err != nil {
		t.Fatal(err)
	}
	if gov.Cores() != 8 {
		t.Fatalf("T1 governor has %d cores, want 8", gov.Cores())
	}
	if gov.Policy() != "hysteresis" {
		t.Fatalf("default policy %q, want hysteresis", gov.Policy())
	}
	top := len(gov.Ladder()) - 1
	for _, l := range gov.Levels() {
		if l != top {
			t.Fatalf("fresh governor starts at level %d, want ladder top %d", l, top)
		}
	}

	cool := make([]float64, grid.N())
	for i := range cool {
		cool[i] = 50
	}
	levels := gov.Step(cool)
	if gov.Throttled() != 0 {
		t.Fatalf("%d cores throttled on a 50 °C map", gov.Throttled())
	}

	// Heat the top-left region (core rows of the T1 plan) past the ceiling.
	hot := make([]float64, grid.N())
	for i := range hot {
		hot[i] = 50
	}
	for x := 0; x < grid.W; x++ {
		hot[x] = 90 // top row crosses every core column
	}
	levels = gov.Step(hot)
	if gov.Throttled() == 0 {
		t.Fatal("no core throttled with 90 °C core cells and a 75 °C ceiling")
	}
	for _, l := range levels {
		if l < 0 || l > top {
			t.Fatalf("level %d outside ladder", l)
		}
	}

	// Hysteresis: 3 °C under the set point is inside the band — holds.
	for i := range hot {
		if hot[i] > 50 {
			hot[i] = 72
		}
	}
	gov.Step(hot)
	if gov.Throttled() == 0 {
		t.Fatal("hysteresis released inside the band")
	}
	// Well below the clear point — releases.
	gov.Step(cool)
	if gov.Throttled() != 0 {
		t.Fatalf("%d cores still throttled after cooling to 50 °C", gov.Throttled())
	}
}

// TestT1GovernorValidates covers the facade's error surface.
func TestT1GovernorValidates(t *testing.T) {
	grid := Grid{W: 30, H: 28}
	if _, err := NewT1Governor(grid, GovernorOptions{Policy: "nope", CeilingC: 75}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewT1Governor(grid, GovernorOptions{CeilingC: -4}); err == nil {
		t.Fatal("negative ceiling accepted")
	}
	if _, err := NewT1Governor(grid, GovernorOptions{CeilingC: 75, Ladder: []float64{1.0, 0.5}}); err == nil {
		t.Fatal("descending ladder accepted")
	}
	names := GovernorPolicies()
	want := map[string]bool{"threshold": true, "hysteresis": true, "pi": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("policy registry %v missing %v", names, want)
	}
}
