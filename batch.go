package eigenmaps

import "runtime"

// defaultWorkers sizes a worker pool when BatchOptions.Workers is zero.
func defaultWorkers() int { return runtime.NumCPU() }

// This file is the concurrent batched monitoring engine: Monitor gains
// batch and streaming estimation entry points that fan snapshots out over a
// worker pool while sharing the one cached least-squares factorization.
// A Monitor is safe for concurrent use — the factorization is precomputed
// and read-only, and per-snapshot scratch comes from an internal pool, so
// the steady-state hot path allocates nothing per snapshot.

// BatchOptions tune the batched/streaming estimation paths.
//
// Superseded by EstimateOptions, which adds reconstruction-arm selection;
// prefer the ...With entry points. BatchOptions and the methods taking it
// are kept as thin wrappers over the operator-arm defaults.
type BatchOptions struct {
	// Workers caps the goroutines reconstructing concurrently.
	// 0 (the default) means one per CPU.
	Workers int
}

// N returns the number of cells per estimated map — the length EstimateInto
// expects dst to have.
func (mn *Monitor) N() int { return mn.mon.N() }

// EstimateInto is the allocation-free form of Estimate: the reconstructed
// map is written into dst (length N). After a warm-up call the steady state
// performs zero heap allocations, which keeps a high-rate monitoring loop
// free of GC pressure.
func (mn *Monitor) EstimateInto(dst, readings []float64) error {
	return mn.mon.EstimateInto(dst, readings)
}

// EstimateBatch reconstructs one full map per reading vector, fanning the
// batch out across a worker pool; each worker's share runs as one blocked
// GEMM against the precomputed operator. Order is preserved: out[i] is the
// estimate for readings[i]. A non-finite reading or a wrong-length vector
// fails the batch with an error identifying the offending snapshot.
//
// Prefer EstimateBatchWith, which also selects the arm; this wrapper is kept
// for compatibility.
func (mn *Monitor) EstimateBatch(readings [][]float64, opt BatchOptions) ([][]float64, error) {
	return mn.mon.EstimateBatch(readings, opt.Workers)
}

// EstimateBatchInto is the allocation-free batch form: dst[i] (each length N)
// receives the estimate for readings[i]. Reusing dst across calls keeps the
// steady state allocation-free per snapshot.
//
// Prefer EstimateBatchIntoWith, which also selects the arm; this wrapper is
// kept for compatibility.
func (mn *Monitor) EstimateBatchInto(dst, readings [][]float64, opt BatchOptions) error {
	return mn.mon.EstimateBatchInto(dst, readings, opt.Workers)
}

// StreamResult is one snapshot's outcome on the streaming path.
type StreamResult struct {
	// Index is the snapshot's arrival position (0-based) — results are NOT
	// reordered across workers, so consumers needing order should use it.
	Index int
	// Map is the reconstructed thermal map (length N); nil if Err != nil.
	Map []float64
	// Err reports a rejected snapshot (e.g. NaN readings). The stream keeps
	// going: one bad snapshot does not poison the rest.
	Err error
}

// EstimateStream spawns a worker pool that reconstructs reading vectors as
// they arrive on in, and returns the results channel. The channel is closed
// once in is closed and all pending snapshots are done. Unlike a failed
// batch, a rejected snapshot is reported in its StreamResult and the stream
// continues — a daemon serving many clients must not let one bad request
// stall the rest.
//
// The consumer MUST drain the returned channel until it is closed:
// abandoning it mid-stream blocks the workers (and whoever feeds in)
// forever. To stop early, close or stop feeding in, then keep receiving
// until the channel closes.
//
// Prefer EstimateStreamWith, which also selects the arm; this wrapper is
// kept for compatibility.
func (mn *Monitor) EstimateStream(in <-chan []float64, opt BatchOptions) <-chan StreamResult {
	return streamEstimates(in, opt, mn.N(), mn.mon.EstimateInto)
}

// streamEstimates runs the shared worker-pool loop over estimate, which must
// be safe for concurrent calls (Monitor.EstimateInto is).
func streamEstimates(in <-chan []float64, opt BatchOptions, n int, estimate func(dst, readings []float64) error) <-chan StreamResult {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	out := make(chan StreamResult, workers)
	// A single dispatcher assigns arrival indices, then workers race on the
	// shared task channel.
	type task struct {
		idx      int
		readings []float64
	}
	tasks := make(chan task, workers)
	go func() {
		idx := 0
		for readings := range in {
			tasks <- task{idx: idx, readings: readings}
			idx++
		}
		close(tasks)
	}()
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for t := range tasks {
				dst := make([]float64, n)
				if err := estimate(dst, t.readings); err != nil {
					out <- StreamResult{Index: t.idx, Err: err}
					continue
				}
				out <- StreamResult{Index: t.idx, Map: dst}
			}
		}()
	}
	go func() {
		for w := 0; w < workers; w++ {
			<-done
		}
		close(out)
	}()
	return out
}
