package eigenmaps_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	eigenmaps "repro"
)

// Shared tiny fixture: simulate + train once per binary.
var (
	fixOnce  sync.Once
	fixEns   *eigenmaps.Ensemble
	fixModel *eigenmaps.Model
	fixErr   error
)

func fixture(t *testing.T) (*eigenmaps.Ensemble, *eigenmaps.Model) {
	t.Helper()
	fixOnce.Do(func() {
		fixEns, fixErr = eigenmaps.SimulateT1(eigenmaps.SimOptions{
			Grid:      eigenmaps.Grid{W: 16, H: 14},
			Snapshots: 160,
			Seed:      5,
		})
		if fixErr != nil {
			return
		}
		fixModel, fixErr = eigenmaps.Train(fixEns, eigenmaps.TrainOptions{KMax: 12, Seed: 5})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixEns, fixModel
}

func TestSimulateT1Defaults(t *testing.T) {
	ens, _ := fixture(t)
	if ens.T() != 160 || ens.N() != 224 {
		t.Fatalf("ensemble (%d,%d)", ens.T(), ens.N())
	}
	g := ens.Grid()
	if g.W != 16 || g.H != 14 || g.N() != 224 {
		t.Fatalf("grid %+v", g)
	}
}

func TestSimulateT1UnknownWorkload(t *testing.T) {
	_, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: eigenmaps.Grid{W: 8, H: 8}, Snapshots: 8,
		Workloads: []eigenmaps.Workload{"cryptomining"},
	})
	if err == nil {
		t.Fatal("expected unknown-workload error")
	}
}

func TestTrainRejectsUnknownBasis(t *testing.T) {
	ens, _ := fixture(t)
	if _, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{Basis: "wavelets"}); err == nil {
		t.Fatal("expected unknown-basis error")
	}
}

func TestTrainMethodFacade(t *testing.T) {
	ens, auto := fixture(t)
	// Unknown method strings are rejected up front with the same typed
	// error as every other invalid option.
	if _, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 4, Method: "qr"}); !errors.Is(err, eigenmaps.ErrInvalidOptions) {
		t.Fatalf("unknown method: got %v, want ErrInvalidOptions", err)
	}
	// Both eigensolver sides are selectable and train the same subspace the
	// auto default does (up to numerical tolerance).
	for _, method := range []eigenmaps.TrainMethod{eigenmaps.AutoMethod, eigenmaps.CovarianceMethod, eigenmaps.GramMethod} {
		m, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 12, Seed: 5, Method: method, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if m.KMax() != auto.KMax() {
			t.Fatalf("%s: KMax %d != %d", method, m.KMax(), auto.KMax())
		}
		for k := 0; k < 4; k++ {
			want, err := auto.EigenMap(k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.EigenMap(k)
			if err != nil {
				t.Fatal(err)
			}
			var dot float64
			for i := range want {
				dot += want[i] * got[i]
			}
			if math.Abs(dot) < 1-1e-6 {
				t.Fatalf("%s: eigenmap %d misaligned with default training: |dot| = %v", method, k, math.Abs(dot))
			}
		}
	}
}

func TestTrainRejectsDegenerateOptionsFacade(t *testing.T) {
	ens, _ := fixture(t)
	_, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 4, Workers: -2})
	if err == nil {
		t.Fatal("negative Workers should fail")
	}
	if !errors.Is(err, eigenmaps.ErrInvalidOptions) {
		t.Fatalf("error %v does not match ErrInvalidOptions", err)
	}
	var oe *eigenmaps.OptionError
	if !errors.As(err, &oe) || oe.Option != "Workers" {
		t.Fatalf("error %v is not the Workers OptionError", err)
	}
}

func TestModelAccessors(t *testing.T) {
	_, model := fixture(t)
	if model.KMax() != 12 {
		t.Fatalf("KMax = %d", model.KMax())
	}
	spec := model.Spectrum()
	if len(spec) != 12 || spec[0] <= 0 {
		t.Fatalf("spectrum %v", spec)
	}
	for i := 1; i < len(spec); i++ {
		if spec[i] > spec[i-1]+1e-12 {
			t.Fatal("spectrum not descending")
		}
	}
	em, err := model.EigenMap(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(em) != 224 {
		t.Fatalf("eigenmap length %d", len(em))
	}
	if _, err := model.EigenMap(12); err == nil {
		t.Fatal("expected range error")
	}
	if mse := model.ExpectedApproxMSE(6); mse < 0 {
		t.Fatalf("expected approx MSE %v", mse)
	}
	if model.ExpectedApproxMSE(12) != 0 {
		t.Fatal("tail at KMax should be 0")
	}
}

func TestPlaceSensorsStrategies(t *testing.T) {
	ens, model := fixture(t)
	for _, strat := range []eigenmaps.Allocation{
		eigenmaps.GreedyAllocation, eigenmaps.EnergyAllocation,
		eigenmaps.RandomAllocation, eigenmaps.UniformAllocation, eigenmaps.DOptimalAllocation,
	} {
		sensors, err := model.PlaceSensors(6, eigenmaps.PlaceOptions{Strategy: strat, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(sensors) < 6 {
			t.Fatalf("%s returned %d sensors", strat, len(sensors))
		}
		for _, s := range sensors {
			if s < 0 || s >= ens.N() {
				t.Fatalf("%s sensor %d out of range", strat, s)
			}
		}
	}
	if _, err := model.PlaceSensors(4, eigenmaps.PlaceOptions{Strategy: "psychic"}); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
}

func TestMonitorRoundTrip(t *testing.T) {
	ens, model := fixture(t)
	sensors, err := model.PlaceSensors(6, eigenmaps.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(6, sensors[:6])
	if err != nil {
		t.Fatal(err)
	}
	if mon.K() != 6 || len(mon.Sensors()) != 6 {
		t.Fatal("monitor accessors wrong")
	}
	kappa, err := mon.ConditionNumber()
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 1 {
		t.Fatalf("kappa = %v", kappa)
	}
	truth := ens.Map(10)
	est, err := mon.Estimate(mon.Sample(truth))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != ens.N() {
		t.Fatalf("estimate length %d", len(est))
	}
	// The estimate must be a plausible thermal map, close to truth in bulk.
	var mse float64
	for i := range truth {
		d := truth[i] - est[i]
		mse += d * d
	}
	mse /= float64(len(truth))
	if mse > 25 {
		t.Fatalf("single-map MSE %v implausibly large", mse)
	}
}

func TestEvaluateNoiseOrdering(t *testing.T) {
	ens, model := fixture(t)
	sensors, err := model.PlaceSensors(8, eigenmaps.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(6, sensors[:8])
	if err != nil {
		t.Fatal(err)
	}
	clean, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := mon.Evaluate(ens, eigenmaps.EvalOptions{SNRdB: 15, Noisy: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MSE <= clean.MSE {
		t.Fatalf("noisy MSE %v not above clean %v", noisy.MSE, clean.MSE)
	}
	inf, err := mon.Evaluate(ens, eigenmaps.EvalOptions{SNRdB: math.Inf(1), Noisy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inf.MSE-clean.MSE) > 1e-12 {
		t.Fatal("infinite SNR must equal noiseless")
	}
}

func TestBestKFacade(t *testing.T) {
	ens, model := fixture(t)
	sensors, err := model.PlaceSensors(8, eigenmaps.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, ev, err := model.BestK(ens, sensors[:8], eigenmaps.EvalOptions{SNRdB: 20, Noisy: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 8 {
		t.Fatalf("BestK = %d", k)
	}
	if ev.MSE <= 0 {
		t.Fatal("evaluation empty")
	}
}

func TestMaskFacade(t *testing.T) {
	ens, model := fixture(t)
	mask, err := eigenmaps.T1SensorMask(ens.Grid(), "cache")
	if err != nil {
		t.Fatal(err)
	}
	if len(mask) != ens.N() {
		t.Fatalf("mask length %d", len(mask))
	}
	sensors, err := model.PlaceSensors(6, eigenmaps.PlaceOptions{Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sensors {
		if !mask[s] {
			t.Fatalf("sensor %d on forbidden cell", s)
		}
	}
	if _, err := eigenmaps.T1SensorMask(ens.Grid(), "bathtub"); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestEnsembleSaveLoadFacade(t *testing.T) {
	ens, _ := fixture(t)
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := eigenmaps.LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != ens.T() || got.N() != ens.N() {
		t.Fatal("round trip changed shape")
	}
	for i, v := range got.Map(3) {
		if v != ens.Map(3)[i] {
			t.Fatal("round trip changed data")
		}
	}
}

func TestEnsembleSplitFacade(t *testing.T) {
	ens, _ := fixture(t)
	train, eval := ens.Split(0.25)
	if train.T()+eval.T() != ens.T() {
		t.Fatal("split lost maps")
	}
	if eval.T() == 0 || train.T() == 0 {
		t.Fatal("degenerate split")
	}
}

func TestTrainOnSplitGeneralizes(t *testing.T) {
	ens, _ := fixture(t)
	train, eval := ens.Split(0.25)
	model, err := eigenmaps.Train(train, eigenmaps.TrainOptions{KMax: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := model.PlaceSensors(8, eigenmaps.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := model.NewMonitor(8, sensors[:8])
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mon.Evaluate(eval, eigenmaps.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Held-out maps from the same workload family must reconstruct well.
	if ev.MSE > 5 {
		t.Fatalf("held-out MSE %v — model does not generalize", ev.MSE)
	}
}

func TestDCTBaselineFacade(t *testing.T) {
	ens, _ := fixture(t)
	for _, fam := range []eigenmaps.BasisFamily{eigenmaps.DCTBasis, eigenmaps.DCTZigZagBasis} {
		model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 10, Basis: fam})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		sensors, err := model.PlaceSensors(10, eigenmaps.PlaceOptions{Strategy: eigenmaps.EnergyAllocation})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(sensors) != 10 {
			t.Fatalf("%s: %d sensors", fam, len(sensors))
		}
	}
}

func TestRenderFacade(t *testing.T) {
	ens, _ := fixture(t)
	g := ens.Grid()
	s := eigenmaps.RenderASCII(g, ens.Map(0), []int{0, 5})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != g.H || len(lines[0]) != g.W {
		t.Fatalf("ASCII render %dx%d, want %dx%d", len(lines), len(lines[0]), g.H, g.W)
	}
	if !strings.Contains(s, "S") {
		t.Fatal("sensor marker missing")
	}
	img := eigenmaps.RenderPGM(g, ens.Map(0), nil)
	if !bytes.HasPrefix(img, []byte("P5\n")) {
		t.Fatal("PGM header missing")
	}
	if len(img) < g.N() {
		t.Fatal("PGM payload too short")
	}
}

func TestSimulateT1SolverAndWorkersFacade(t *testing.T) {
	opts := func(solver eigenmaps.Solver, workers int) eigenmaps.SimOptions {
		return eigenmaps.SimOptions{
			Grid: eigenmaps.Grid{W: 12, H: 10}, Snapshots: 16, Seed: 9,
			Solver: solver, Workers: workers,
		}
	}
	want, err := eigenmaps.SimulateT1(opts(eigenmaps.SolverDirect, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Auto resolves to direct, and the worker count never changes bytes.
	for _, o := range []eigenmaps.SimOptions{opts("", 4), opts(eigenmaps.SolverAuto, 0), opts(eigenmaps.SolverDirect, 3)} {
		got, err := eigenmaps.SimulateT1(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < want.T(); j++ {
			wj, gj := want.Map(j), got.Map(j)
			for i := range wj {
				if wj[i] != gj[i] {
					t.Fatalf("opts %+v: map %d differs from direct/1-worker run", o, j)
				}
			}
		}
	}
	// The CG arm agrees to the pinned tolerance.
	cg, err := eigenmaps.SimulateT1(opts(eigenmaps.SolverCG, 1))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < want.T(); j++ {
		wj, cj := want.Map(j), cg.Map(j)
		for i := range wj {
			if d := math.Abs(wj[i] - cj[i]); d > 1e-6 {
				t.Fatalf("map %d cell %d: |direct−cg| = %g °C", j, i, d)
			}
		}
	}
	if _, err := eigenmaps.SimulateT1(opts("multigrid", 0)); err == nil {
		t.Fatal("expected unknown-solver error")
	}
	if _, err := eigenmaps.SimulateT1(opts("", -1)); err == nil {
		t.Fatal("expected negative-workers error")
	}
}

func TestWorkloadSpecFacade(t *testing.T) {
	names := eigenmaps.WorkloadNames()
	if len(names) < 6 {
		t.Fatalf("workload catalog has only %d entries: %v", len(names), names)
	}
	for _, want := range []string{"web", "compute", "mixed", "idle", "bursty"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("catalog %v missing %q", names, want)
		}
	}
	ws, err := eigenmaps.NamedWorkload("bursty")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Name() != "bursty" {
		t.Fatalf("Name = %q", ws.Name())
	}
	if _, err := eigenmaps.NamedWorkload("cryptomining"); err == nil {
		t.Fatal("unknown name accepted")
	}

	// JSON round trip through the public type.
	data, err := ws.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := eigenmaps.ParseWorkloadSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "bursty" {
		t.Fatalf("round-tripped name %q", back.Name())
	}
	if _, err := eigenmaps.ParseWorkloadSpec([]byte(`{"phases":[]}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := eigenmaps.ParseWorkloadSpec([]byte(`{"phases":[{"rates":{}}],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSimulateT1SpecsMatchWorkloads(t *testing.T) {
	// The same presets spelled as Workload names or as WorkloadSpecs must
	// produce bit-identical ensembles.
	opt := eigenmaps.SimOptions{Grid: eigenmaps.Grid{W: 10, H: 8}, Snapshots: 24, Seed: 9}
	byName := opt
	byName.Workloads = []eigenmaps.Workload{"web", "idle"}
	a, err := eigenmaps.SimulateT1(byName)
	if err != nil {
		t.Fatal(err)
	}
	bySpec := opt
	for _, n := range []string{"web", "idle"} {
		ws, err := eigenmaps.NamedWorkload(n)
		if err != nil {
			t.Fatal(err)
		}
		bySpec.Specs = append(bySpec.Specs, ws)
	}
	b, err := eigenmaps.SimulateT1(bySpec)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < a.T(); j++ {
		am, bm := a.Map(j), b.Map(j)
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("map %d cell %d differs: %v vs %v", j, i, am[i], bm[i])
			}
		}
	}
}

func TestSimulateT1RejectsNilSpec(t *testing.T) {
	_, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: eigenmaps.Grid{W: 8, H: 8}, Snapshots: 8,
		Specs: []*eigenmaps.WorkloadSpec{nil},
	})
	if err == nil {
		t.Fatal("nil spec accepted")
	}
}
