package eigenmaps

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/store"
)

// Monitor persistence: the expensive design-time pipeline (ensemble
// simulation, PCA training, greedy placement, the least-squares
// factorization) runs once; Save captures its full product — basis, sensor
// placement and the cached QR factorization — in a versioned, checksummed
// binary format, and LoadMonitor rebuilds a monitor whose EstimateInto
// output is bit-identical to the saving monitor's (the solve runs over the
// exact same float64 values in the same order). Loading is orders of
// magnitude faster than retraining — see BenchmarkMonitorSave/Load and the
// DESIGN.md "Monitor store format" section.

// StoreError is the typed error every monitor load failure unwraps to.
// Inspect the category with errors.Is against the sentinels below, or
// errors.As for the Kind and detail.
type StoreError = store.Error

// Sentinels (errors.Is targets) for the monitor store failure categories.
var (
	// ErrStoreBadMagic: the bytes are not a monitor store file.
	ErrStoreBadMagic = store.ErrBadMagic
	// ErrStoreVersion: the file was written by a future format version —
	// the file is fine, this build is too old to read it.
	ErrStoreVersion = store.ErrUnknownVersion
	// ErrStoreTruncated: the file ends before its declared length.
	ErrStoreTruncated = store.ErrTruncated
	// ErrStoreChecksum: the envelope is intact but the payload bits are
	// damaged.
	ErrStoreChecksum = store.ErrChecksum
	// ErrStoreInvalid: the payload parses but describes an impossible
	// monitor (e.g. a sensor outside the basis grid, or metadata claiming a
	// different grid than the basis carries — a cross-floorplan record).
	ErrStoreInvalid = store.ErrInvalid
)

// storeRecord bundles the monitor's full serving state for the codec,
// including the folded reconstruction operator (a v2 section) so a loaded
// monitor skips even the deterministic re-fold.
func (mn *Monitor) storeRecord() *store.Record {
	rec := mn.mon.Reconstructor()
	op, opBias := rec.Operator()
	return &store.Record{
		Meta:    store.Meta{GridW: mn.grid.W, GridH: mn.grid.H},
		Basis:   rec.Basis(),
		Sensors: rec.Sensors(),
		K:       rec.K(),
		QR:      rec.QR(),
		Op:      op,
		OpBias:  opBias,
	}
}

// Save writes the monitor in the library's versioned binary store format.
func (mn *Monitor) Save(w io.Writer) error {
	return store.Encode(w, mn.storeRecord())
}

// SaveFile writes the monitor to path atomically (temporary file + rename),
// so a crash mid-save cannot leave a torn file behind.
func (mn *Monitor) SaveFile(path string) error {
	return store.SaveFile(path, mn.storeRecord())
}

// LoadMonitor reads a monitor written by Save. The loaded monitor serves
// estimates bit-identical to the monitor that was saved, with none of the
// training pipeline re-run. Failures are *StoreError values (see the
// sentinels above); corrupt or hostile bytes never panic.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	rec, err := store.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("eigenmaps: %w", err)
	}
	return monitorFromRecord(rec)
}

// LoadMonitorFile reads a monitor from path.
func LoadMonitorFile(path string) (*Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMonitor(f)
}

func monitorFromRecord(rec *store.Record) (*Monitor, error) {
	if !rec.HasMonitor() {
		return nil, fmt.Errorf("eigenmaps: %w", &store.Error{
			Kind: store.KindInvalid, Detail: "record has no monitor section (model-only store file)"})
	}
	// v2 records carry the folded operator; v1 records re-fold it from the
	// QR factors, which is deterministic and therefore bit-identical.
	var mon *core.Monitor
	var err error
	if rec.Op != nil {
		mon, err = core.RestoreMonitorWithOperator(rec.Basis, rec.K, rec.Sensors, rec.QR, rec.Op, rec.OpBias)
	} else {
		mon, err = core.RestoreMonitor(rec.Basis, rec.K, rec.Sensors, rec.QR)
	}
	if err != nil {
		return nil, fmt.Errorf("eigenmaps: %w", err)
	}
	return &Monitor{mon: mon, grid: Grid{W: rec.Basis.Grid.W, H: rec.Basis.Grid.H}}, nil
}
