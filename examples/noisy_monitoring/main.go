// Noisy monitoring: the paper's second headline scenario.
//
// Real temperature sensors are corrupted by thermal noise, quantization and
// calibration error. This example reproduces Sec. 5.1's noise experiment:
// with measurements at 15 dB SNR, 16 well-placed sensors and a subspace
// dimension chosen for the ε/ε_r trade-off still recover the full thermal
// map accurately — and degrade gracefully as the noise grows.
//
// Run with: go run ./examples/noisy_monitoring
package main

import (
	"fmt"
	"log"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)

	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid:      eigenmaps.Grid{W: 30, H: 28},
		Snapshots: 600,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 24, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	const numSensors = 16
	sensors, err := model.PlaceSensors(numSensors, eigenmaps.PlaceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Under noise, using K = M amplifies measurement error through the
	// conditioning of the inverse problem (Theorem 1). BestK finds the
	// sweet spot between approximation error (wants large K) and noise
	// amplification (wants small K).
	bestK, ev, err := model.BestK(ens, sensors, eigenmaps.EvalOptions{SNRdB: 15, Noisy: true, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("15 dB SNR, %d sensors: best K=%d -> MSE=%.4g C^2, worst error %.2f C (kappa=%.2f)\n",
		numSensors, bestK, ev.MSE, ev.MaxAbsC, ev.Cond)

	mon, err := model.NewMonitor(bestK, sensors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnoise sweep at fixed K:")
	fmt.Println("SNR[dB]    MSE[C^2]     worst[C]")
	for _, snr := range []float64{40, 30, 25, 20, 15, 10} {
		ev, err := mon.Evaluate(ens, eigenmaps.EvalOptions{SNRdB: snr, Noisy: true, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0f %-12.4g %-8.2f\n", snr, ev.MSE, ev.MaxAbsC)
	}

	clean, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnoiseless floor:     %-12.4g %-8.2f\n", clean.MSE, clean.MaxAbsC)
	fmt.Println("note how the error approaches the noiseless floor as SNR rises —")
	fmt.Println("the reconstruction never amplifies the measurement noise (stability claim).")
}
