// Runtime tracking: deploy-time behaviour on unseen workloads.
//
// The basis and the sensor layout are fixed at design time, from simulated
// traces. At run time the chip executes workloads that were never part of
// the training set. This example trains on one trace ensemble, then tracks a
// *different* ensemble (new seed => new task arrivals and migrations) map by
// map, the way a dynamic thermal manager would consume the estimates:
//
//   - per-step full-map estimate from 8 sensor readings,
//   - hot-spot localization (does the estimated hottest cell match reality?),
//   - worst tracking error over the run.
//
// Run with: go run ./examples/runtime_tracking
package main

import (
	"fmt"
	"log"
	"math"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)

	grid := eigenmaps.Grid{W: 30, H: 28}

	// Design time: train on seed 10.
	train, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{Grid: grid, Snapshots: 600, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	model, err := eigenmaps.Train(train, eigenmaps.TrainOptions{KMax: 24, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	const numSensors = 8
	sensors, err := model.PlaceSensors(numSensors, eigenmaps.PlaceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := model.NewMonitor(numSensors, sensors)
	if err != nil {
		log.Fatal(err)
	}

	// Run time: an unseen trace (different seed, compute-heavy mix).
	live, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: grid, Snapshots: 400, Seed: 77,
		Workloads: []eigenmaps.Workload{eigenmaps.WorkloadCompute, eigenmaps.WorkloadWeb},
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		worstErr    float64
		sumSq       float64
		hotHits     int
		hotDistSum  float64
		cells       = float64(live.N())
		stepsLogged = 0
	)
	for j := 0; j < live.T(); j++ {
		truth := live.Map(j)
		estimate, err := mon.Estimate(mon.Sample(truth))
		if err != nil {
			log.Fatal(err)
		}
		stepErr := 0.0
		for i := range truth {
			d := truth[i] - estimate[i]
			sumSq += d * d
			if d < 0 {
				d = -d
			}
			if d > stepErr {
				stepErr = d
			}
		}
		if stepErr > worstErr {
			worstErr = stepErr
		}
		// Hot-spot localization.
		ti, ei := argmax(truth), argmax(estimate)
		if ti == ei {
			hotHits++
		}
		hotDistSum += cellDistance(grid, ti, ei)
		if j%100 == 0 {
			fmt.Printf("step %-4d truth max %.2f C at cell %-5d estimate max %.2f C at cell %-5d (step worst err %.2f C)\n",
				j, truth[ti], ti, estimate[ei], ei, stepErr)
			stepsLogged++
		}
	}
	t := float64(live.T())
	fmt.Printf("\ntracked %d unseen maps with %d sensors:\n", live.T(), numSensors)
	fmt.Printf("  tracking MSE:            %.4g C^2\n", sumSq/(t*cells))
	fmt.Printf("  worst cell error:        %.2f C\n", worstErr)
	fmt.Printf("  hottest cell exact hits: %d/%d\n", hotHits, live.T())
	fmt.Printf("  mean hot-spot distance:  %.2f cells\n", hotDistSum/t)
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// cellDistance is the Euclidean distance between two cells in grid units.
func cellDistance(g eigenmaps.Grid, a, b int) float64 {
	ra, ca := a%g.H, a/g.H
	rb, cb := b%g.H, b/g.H
	dr, dc := float64(ra-rb), float64(ca-cb)
	return math.Sqrt(dr*dr + dc*dc)
}
