// Constrained placement: the paper's Fig. 6 scenario.
//
// Sensors cannot be dropped into arbitrary silicon: regular structures such
// as L2 cache arrays are off limits. This example places sensors with and
// without the cache mask and shows that the reconstruction degrades only
// slightly — the greedy allocator simply picks the next-best allowed cells.
//
// Run with: go run ./examples/constrained_placement
package main

import (
	"fmt"
	"log"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)

	grid := eigenmaps.Grid{W: 30, H: 28}
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{Grid: grid, Snapshots: 600, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 24, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// The Fig. 6 constraint: no sensors over the L2 caches.
	mask, err := eigenmaps.T1SensorMask(grid, "cache")
	if err != nil {
		log.Fatal(err)
	}
	allowed := 0
	for _, ok := range mask {
		if ok {
			allowed++
		}
	}
	fmt.Printf("placement mask: %d of %d cells allowed (caches excluded)\n", allowed, grid.N())

	fmt.Println("\nM      free MSE       constrained MSE   ratio")
	for _, m := range []int{8, 12, 16} {
		free, err := evaluate(model, ens, m, nil)
		if err != nil {
			log.Fatal(err)
		}
		cons, err := evaluate(model, ens, m, mask)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-14.4g %-17.4g %.2fx\n", m, free, cons, cons/free)
	}

	// Show the constrained layout: sensors avoid the cache bands.
	const showM = 16
	sensors, err := model.PlaceSensors(showM, eigenmaps.PlaceOptions{Mask: mask})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sensors {
		if !mask[s] {
			log.Fatalf("constraint violated at cell %d", s)
		}
	}
	fmt.Printf("\nconstrained layout with %d sensors (S), over the mean thermal map:\n", showM)
	mean := make([]float64, ens.N())
	for j := 0; j < ens.T(); j++ {
		m := ens.Map(j)
		for i := range mean {
			mean[i] += m[i] / float64(ens.T())
		}
	}
	fmt.Println(eigenmaps.RenderASCII(grid, mean, sensors))
}

func evaluate(model *eigenmaps.Model, ens *eigenmaps.Ensemble, m int, mask []bool) (float64, error) {
	sensors, err := model.PlaceSensors(m, eigenmaps.PlaceOptions{Mask: mask})
	if err != nil {
		return 0, err
	}
	mon, err := model.NewMonitor(m, sensors)
	if err != nil {
		return 0, err
	}
	ev, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
	if err != nil {
		return 0, err
	}
	return ev.MSE, nil
}
