// Custom-workload example: define a scenario the built-in catalog does not
// ship — bursty ML inference serving with periodic recompilation phases, a
// DVFS governor and FPU duty cycling — as a declarative JSON spec, simulate
// it next to the classic "web" preset, and measure how well a monitor
// trained on one workload reconstructs the other (the cross-scenario
// robustness question, served here through the public API).
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)

	// Load the spec shipped next to this file (see spec.workload.json; any
	// JSON document in the same schema works).
	_, self, _, _ := runtime.Caller(0)
	data, err := os.ReadFile(filepath.Join(filepath.Dir(self), "spec.workload.json"))
	if err != nil {
		log.Fatal(err)
	}
	custom, err := eigenmaps.ParseWorkloadSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded custom workload %q (registry has: %v)\n\n",
		custom.Name(), eigenmaps.WorkloadNames())

	// Two single-scenario ensembles on the same grid and seed.
	simulate := func(opt eigenmaps.SimOptions) *eigenmaps.Ensemble {
		opt.Grid = eigenmaps.Grid{W: 20, H: 18}
		opt.Snapshots = 240
		opt.Seed = 7
		ens, err := eigenmaps.SimulateT1(opt)
		if err != nil {
			log.Fatal(err)
		}
		return ens
	}
	customEns := simulate(eigenmaps.SimOptions{Specs: []*eigenmaps.WorkloadSpec{custom}})
	webEns := simulate(eigenmaps.SimOptions{Workloads: []eigenmaps.Workload{eigenmaps.WorkloadWeb}})

	// Train a model + sensor layout per ensemble, evaluate both ways.
	build := func(ens *eigenmaps.Ensemble) (*eigenmaps.Model, *eigenmaps.Monitor) {
		model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 12, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		sensors, err := model.PlaceSensors(10, eigenmaps.PlaceOptions{K: 6})
		if err != nil {
			log.Fatal(err)
		}
		mon, err := model.NewMonitor(6, sensors[:10])
		if err != nil {
			log.Fatal(err)
		}
		return model, mon
	}
	_, customMon := build(customEns)
	_, webMon := build(webEns)

	eval := func(mon *eigenmaps.Monitor, ens *eigenmaps.Ensemble) float64 {
		res, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.MSE
	}
	fmt.Println("reconstruction MSE [°C²] (rows: training workload, cols: evaluated workload)")
	fmt.Printf("%-18s %12s %12s\n", "train\\eval", custom.Name(), "web")
	fmt.Printf("%-18s %12.4g %12.4g\n", custom.Name(),
		eval(customMon, customEns), eval(customMon, webEns))
	fmt.Printf("%-18s %12.4g %12.4g\n", "web",
		eval(webMon, customEns), eval(webMon, webEns))
	fmt.Println("\noff-diagonal growth = the price of deploying a basis on traffic it never saw")
}
