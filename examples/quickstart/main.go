// Quickstart: the paper's headline scenario end to end.
//
// Simulate the UltraSPARC T1 at design time, learn the EigenMaps basis,
// place four sensors with the greedy algorithm, and reconstruct full thermal
// maps from just those four readings — within about a degree of the truth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Design-time simulation. A reduced grid keeps the example snappy;
	//    drop the Grid/Snapshots overrides to run the paper's full 60×56,
	//    T=2652 setup.
	fmt.Println("simulating design-time thermal maps...")
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid:      eigenmaps.Grid{W: 30, H: 28},
		Snapshots: 600,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d maps of %d cells\n", ens.T(), ens.N())

	// 2. Learn the EigenMaps basis (PCA of the snapshot ensemble).
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 24, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	spec := model.Spectrum()
	fmt.Printf("trained basis: lambda_1=%.3g, lambda_8=%.3g (fast decay => few sensors suffice)\n",
		spec[0], spec[7])

	// 3. Place M=4 sensors with the paper's greedy Algorithm 1.
	const numSensors = 4
	sensors, err := model.PlaceSensors(numSensors, eigenmaps.PlaceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy sensor cells: %v\n", sensors)

	// 4. Build the run-time monitor (K = M = 4) and check the layout quality.
	mon, err := model.NewMonitor(numSensors, sensors)
	if err != nil {
		log.Fatal(err)
	}
	if kappa, err := mon.ConditionNumber(); err == nil {
		fmt.Printf("layout condition number kappa = %.2f (1 is perfect)\n", kappa)
	}

	// 5. Reconstruct one thermal map from its four sensor readings.
	truth := ens.Map(ens.T() / 2)
	readings := mon.Sample(truth) // in deployment these come from the sensors
	estimate, err := mon.Estimate(readings)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range truth {
		if d := abs(truth[i] - estimate[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("single-map worst-cell error from %d readings: %.2f C\n", numSensors, worst)

	// 6. Evaluate over the whole ensemble — the paper's MSE / MAX metrics.
	ev, err := mon.Evaluate(ens, eigenmaps.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble: MSE=%.4g C^2, worst error %.2f C over %d maps\n", ev.MSE, ev.MaxAbsC, ens.T())

	fmt.Println("\nreconstruction vs truth (ASCII, S = sensor):")
	fmt.Println(eigenmaps.RenderASCII(ens.Grid(), estimate, sensors))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
