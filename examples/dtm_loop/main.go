// DTM loop: the full deployment story, extensions included.
//
// A dynamic thermal manager consumes EigenMaps estimates in a closed loop:
// imperfect sensors (calibration error + quantization + read noise) feed a
// Kalman tracker over the subspace coefficients; each filtered map is
// analyzed for hot spots, worst gradients and over-temperature blocks; a
// hysteresis alarm drives the (simulated) throttling decision.
//
// Run with: go run ./examples/dtm_loop
package main

import (
	"fmt"
	"log"
	"strings"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)
	grid := eigenmaps.Grid{W: 30, H: 28}

	// Design time.
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: grid, Snapshots: 600, Seed: 42, LoadCoupling: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 24, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	const numSensors = 12
	sensors, err := model.PlaceSensors(numSensors, eigenmaps.PlaceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Deployment: imperfect sensors + temporal tracking.
	bank := eigenmaps.TypicalSensorModel().Manufacture(numSensors, 7)
	tracker, err := model.NewTracker(8, sensors, eigenmaps.TrackerOptions{
		ProcessScale:     0.1,
		MeasurementVarC2: 1.2, // read noise + quantization + calibration slack
	})
	if err != nil {
		log.Fatal(err)
	}
	alarm := eigenmaps.NewThermalAlarm(74, 72)

	// "Live" trace the training never saw.
	live, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: grid, Snapshots: 300, Seed: 1234,
		Workloads:    []eigenmaps.Workload{eigenmaps.WorkloadCompute},
		LoadCoupling: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	var worstTracking float64
	var alarmSteps int
	for step := 0; step < live.T(); step++ {
		truth := live.Map(step)
		// Sensors observe the real die; the tracker sees only their output.
		readings := bank.Read(tracker.Sample(truth))
		estimate, err := tracker.Step(readings)
		if err != nil {
			log.Fatal(err)
		}

		report := eigenmaps.AnalyzeT1(grid, estimate, 73)
		throttled := alarm.Update(report.MaxC)
		if throttled {
			alarmSteps++
		}

		// Track estimate quality against the hidden truth.
		for i := range truth {
			if d := abs(truth[i] - estimate[i]); d > worstTracking {
				worstTracking = d
			}
		}
		if step%60 == 0 {
			state := "nominal"
			if throttled {
				state = "THROTTLE"
			}
			fmt.Printf("step %-4d est max %.1f C at cell %-4d grad %.2f C/cell  hot blocks: %-28s [%s]\n",
				step, report.MaxC, report.MaxCell, report.MaxGradC,
				strings.Join(report.HotBlocks, ","), state)
		}
	}

	fmt.Printf("\nran %d DTM steps with %d imperfect sensors:\n", live.T(), numSensors)
	fmt.Printf("  worst instantaneous tracking error: %.2f C\n", worstTracking)
	fmt.Printf("  residual filter uncertainty tr(P):  %.4f\n", tracker.Uncertainty())
	fmt.Printf("  alarm trips: %d (active %d of %d steps)\n", alarm.Trips(), alarmSteps, live.T())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
