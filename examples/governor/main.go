// Governor: closing the loop — from M sensor readings to DVFS caps.
//
// The paper's pitch is that a handful of well-placed sensors recover the
// full thermal map. This example shows what the recovered map buys you: a
// closed-loop thermal governor caps per-core frequency from the EigenMaps
// ESTIMATE, and the cap schedule it produces is compared step by step
// against an oracle governor that reads the hidden ground truth. The closer
// the two schedules, the less control authority the sensor budget cost.
//
// Run with: go run ./examples/governor
package main

import (
	"fmt"
	"log"

	eigenmaps "repro"
)

func main() {
	log.SetFlags(0)
	grid := eigenmaps.Grid{W: 30, H: 28}

	// Design time: simulate, train, place 8 sensors.
	ens, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: grid, Snapshots: 600, Seed: 42, LoadCoupling: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := eigenmaps.Train(ens, eigenmaps.TrainOptions{KMax: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := model.PlaceSensors(8, eigenmaps.PlaceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := model.NewMonitor(6, sensors)
	if err != nil {
		log.Fatal(err)
	}

	// Two identical governors: one sees estimates, the oracle sees truth.
	opt := eigenmaps.GovernorOptions{Policy: "hysteresis", CeilingC: 72}
	gov, err := eigenmaps.NewT1Governor(grid, opt)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := eigenmaps.NewT1Governor(grid, opt)
	if err != nil {
		log.Fatal(err)
	}

	// A "live" compute-heavy trace the training never saw.
	live, err := eigenmaps.SimulateT1(eigenmaps.SimOptions{
		Grid: grid, Snapshots: 300, Seed: 1234,
		Workloads:    []eigenmaps.Workload{eigenmaps.WorkloadCompute},
		LoadCoupling: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	var agree, throttledSteps int
	for step := 0; step < live.T(); step++ {
		truth := live.Map(step)
		estimate, err := monitor.Estimate(monitor.Sample(truth))
		if err != nil {
			log.Fatal(err)
		}
		levels := gov.Step(estimate)
		want := oracle.Step(truth)

		same := true
		for c := range levels {
			if levels[c] != want[c] {
				same = false
				break
			}
		}
		if same {
			agree++
		}
		if gov.Throttled() > 0 {
			throttledSteps++
		}
		if step%60 == 0 {
			fmt.Printf("step %-4d levels %v  freq[core0] %.2f  throttled %d/%d  oracle-match %v\n",
				step, levels, gov.Freq(levels[0]), gov.Throttled(), gov.Cores(), same)
		}
	}

	fmt.Printf("\ngoverned %d steps from %d sensors (policy %s, ceiling %.0f C):\n",
		live.T(), len(sensors), gov.Policy(), opt.CeilingC)
	fmt.Printf("  cap schedule matched the ground-truth oracle on %d/%d steps (%.1f%%)\n",
		agree, live.T(), 100*float64(agree)/float64(live.T()))
	fmt.Printf("  throttling active on %d steps\n", throttledSteps)
}
