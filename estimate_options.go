package eigenmaps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recon"
)

// Arm selects which of the two mathematically equivalent reconstruction
// implementations serves an estimate. Both realize the paper's Theorem 1
// least-squares recovery; they differ only in how the work is staged, and
// they agree to accumulation-order rounding (< 1e-12 relative — pinned by
// the library's agreement tests).
type Arm string

const (
	// ArmOperator (the default, also selected by the empty string) applies
	// the reconstruction operator R = Ψ_K(Ψ̃_K)⁺ precomputed at monitor
	// creation: one N×M matvec per snapshot, batches as one blocked GEMM.
	ArmOperator Arm = "operator"
	// ArmQR runs the original two-stage path — QR back-substitution for the
	// subspace coefficients, then the basis lift — kept as the reference
	// ablation the operator arm is validated against.
	ArmQR Arm = "qr"
)

// ParseArm maps an arm name ("", "operator", "qr") to the internal arm
// selector. Unknown names error.
func ParseArm(s string) (recon.Arm, error) {
	switch Arm(s) {
	case "", ArmOperator:
		return recon.ArmOperator, nil
	case ArmQR:
		return recon.ArmQR, nil
	}
	// An OptionError keeps errors.Is(err, ErrInvalidOptions) matching while
	// naming the actual offending field instead of "training options".
	return 0, fmt.Errorf("eigenmaps: %w", &core.OptionError{
		Option: "EstimateOptions.Arm",
		Reason: fmt.Sprintf("%q (want %q or %q)", s, ArmOperator, ArmQR),
	})
}

// EstimateOptions is the one option set threaded through every estimation
// entry point — EstimateWith, EstimateIntoWith, EstimateBatchWith,
// EstimateBatchIntoWith and EstimateStreamWith. The zero value is the
// default serving configuration: operator arm, one worker per CPU.
type EstimateOptions struct {
	// Arm selects the reconstruction implementation; empty means ArmOperator.
	Arm Arm
	// Workers caps the goroutines reconstructing a batch or stream
	// concurrently. 0 (the default) means one per CPU. Single-snapshot calls
	// ignore it.
	Workers int
}

func (opt EstimateOptions) arm() (recon.Arm, error) { return ParseArm(string(opt.Arm)) }

// EstimateWith is Estimate with explicit options.
func (mn *Monitor) EstimateWith(readings []float64, opt EstimateOptions) ([]float64, error) {
	dst := make([]float64, mn.N())
	if err := mn.EstimateIntoWith(dst, readings, opt); err != nil {
		return nil, err
	}
	return dst, nil
}

// EstimateIntoWith is EstimateInto with explicit options.
func (mn *Monitor) EstimateIntoWith(dst, readings []float64, opt EstimateOptions) error {
	arm, err := opt.arm()
	if err != nil {
		return err
	}
	return mn.mon.EstimateArmInto(dst, readings, arm)
}

// EstimateBatchWith is EstimateBatch with explicit options.
func (mn *Monitor) EstimateBatchWith(readings [][]float64, opt EstimateOptions) ([][]float64, error) {
	arm, err := opt.arm()
	if err != nil {
		return nil, err
	}
	return mn.mon.EstimateBatchArm(readings, opt.Workers, arm)
}

// EstimateBatchIntoWith is EstimateBatchInto with explicit options.
func (mn *Monitor) EstimateBatchIntoWith(dst, readings [][]float64, opt EstimateOptions) error {
	arm, err := opt.arm()
	if err != nil {
		return err
	}
	return mn.mon.EstimateBatchArmInto(dst, readings, opt.Workers, arm)
}

// EstimateStreamWith is EstimateStream with explicit options. An invalid arm
// fails every snapshot's StreamResult rather than the call: the stream
// contract has no error return.
func (mn *Monitor) EstimateStreamWith(in <-chan []float64, opt EstimateOptions) <-chan StreamResult {
	arm, err := opt.arm()
	estimate := func(dst, readings []float64) error {
		if err != nil {
			return err
		}
		return mn.mon.EstimateArmInto(dst, readings, arm)
	}
	return streamEstimates(in, BatchOptions{Workers: opt.Workers}, mn.N(), estimate)
}
