// Command emapsload is the serving layer's load generator: it hammers a
// running emapsd daemon's estimate, track or simulate endpoint from a
// configurable number of concurrent clients for a fixed duration (or
// request budget) and reports throughput and latency percentiles as JSON —
// the end-to-end number the serving path is optimized against.
//
//	emapsload -addr 127.0.0.1:8760 -concurrency 8 -duration 10s
//
// By default it creates its own small monitor (deleted again afterwards
// unless -keep is set); point it at an existing monitor with -monitor. The
// report goes to stdout or -out, in one of three formats (-format):
//
//   - json (default) — the Report structure below
//
//   - prom — Prometheus text exposition (emapsload_* metrics), for pushing
//     into a scrape pipeline
//
//   - bench — a cmd/bench2json-compatible benchmark document carrying
//     snapshots/s, requests/s and latency percentiles, so cmd/benchdiff can
//     gate serving throughput exactly like the microbenchmarks
//
//     {
//     "endpoint": "estimate", "concurrency": 8, "batch": 16,
//     "requests": 5231, "errors": 0, "snapshots": 83696,
//     "requests_per_s": 523.0, "snapshots_per_s": 8369.4,
//     "latency_ms": {"mean": 15.2, "p50": 14.1, "p90": 21.0, "p99": 38.7, "max": 55.2}
//     }
//
// Latency is measured per request (client-observed, including JSON
// encode/decode on the daemon side); percentiles use the nearest-rank
// method over every completed request. Non-2xx responses count as errors
// and are excluded from the latency population; a run with any errors
// exits 1 (after writing its report), so CI load gates fail loudly instead
// of gating on a partially failed run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchjson"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:8760", "daemon address (host:port)")
	flag.StringVar(&cfg.Monitor, "monitor", "", "existing monitor id to load (default: create one)")
	flag.StringVar(&cfg.CreateBody, "create-body", defaultCreateBody, "JSON body used to create the monitor when -monitor is empty")
	flag.StringVar(&cfg.Endpoint, "endpoint", "estimate", "endpoint to load: estimate, track or simulate")
	flag.IntVar(&cfg.Batch, "batch", 16, "snapshots per request (readings per batch, or simulate count)")
	flag.IntVar(&cfg.Concurrency, "concurrency", 4, "concurrent client goroutines")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to generate load")
	flag.IntVar(&cfg.Requests, "requests", 0, "stop after this many requests instead of -duration (0 = use -duration)")
	flag.Float64Var(&cfg.SNRdB, "snr-db", 20, "sensor SNR for the simulate endpoint")
	flag.BoolVar(&cfg.Keep, "keep", false, "keep the created monitor instead of deleting it")
	format := flag.String("format", "json", "report format: json, prom or bench")
	out := flag.String("out", "", "write the report here instead of stdout")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emapsload: %v\n", err)
		os.Exit(1)
	}
	blob, err := renderReport(rep, *format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emapsload: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "emapsload: %v\n", err)
		os.Exit(1)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "emapsload: %d of %d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
}

// renderReport serializes rep in the requested format. Unknown formats are
// an error, not a silent JSON fallback — a typo'd -format in a CI gate must
// fail the gate, not feed benchdiff the wrong schema.
func renderReport(rep *Report, format string) ([]byte, error) {
	switch format {
	case "json":
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("encoding report: %w", err)
		}
		return append(blob, '\n'), nil
	case "prom":
		var buf bytes.Buffer
		counter := func(name, help string, v float64) {
			fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
		}
		gauge := func(name, help string, v float64) {
			fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
		}
		counter("emapsload_requests_total", "Requests issued by the load run.", float64(rep.Requests))
		counter("emapsload_errors_total", "Requests that failed (non-2xx or transport error).", float64(rep.Errors))
		counter("emapsload_snapshots_total", "Snapshots served across all successful requests.", float64(rep.Snapshots))
		gauge("emapsload_requests_per_second", "Successful requests per second.", rep.RequestsPerS)
		gauge("emapsload_snapshots_per_second", "Snapshots per second — the serving throughput headline.", rep.SnapshotsPS)
		gauge("emapsload_duration_seconds", "Wall-clock duration of the load phase.", rep.DurationS)
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", rep.LatencyMS.P50}, {"0.9", rep.LatencyMS.P90}, {"0.99", rep.LatencyMS.P99}} {
			fmt.Fprintf(&buf, "emapsload_latency_ms{quantile=%q} %g\n", q.label, q.v)
		}
		gauge("emapsload_latency_ms_mean", "Mean per-request latency in milliseconds.", rep.LatencyMS.Mean)
		gauge("emapsload_latency_ms_max", "Worst per-request latency in milliseconds.", rep.LatencyMS.Max)
		return buf.Bytes(), nil
	case "bench":
		doc := benchjson.Doc{
			Goos:   runtime.GOOS,
			Goarch: runtime.GOARCH,
			Results: []benchjson.Result{{
				// A stable benchmark-style name so cmd/benchdiff keys the
				// serving gate the same way it keys microbenchmarks.
				Name:    "BenchmarkServingLoad/endpoint=" + rep.Endpoint,
				Package: "cmd/emapsload",
				Iters:   rep.Requests,
				Metrics: map[string]float64{
					"snapshots/s": rep.SnapshotsPS,
					"requests/s":  rep.RequestsPerS,
					"p50_ms":      rep.LatencyMS.P50,
					"p99_ms":      rep.LatencyMS.P99,
				},
			}},
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("encoding bench document: %w", err)
		}
		return append(blob, '\n'), nil
	}
	return nil, fmt.Errorf("unknown format %q (want json, prom or bench)", format)
}

// defaultCreateBody trains a small monitor quickly (~1 s): the load test
// measures the serving path, not training. Tracking is enabled so the same
// monitor serves -endpoint track runs too.
const defaultCreateBody = `{"floorplan":"t1","grid_w":12,"grid_h":10,"snapshots":80,"seed":1,"kmax":8,"k":4,"m":8,"tracking":true}`

type config struct {
	Addr        string
	Monitor     string
	CreateBody  string
	Endpoint    string
	Batch       int
	Concurrency int
	Duration    time.Duration
	Requests    int
	SNRdB       float64
	Keep        bool
}

// Report is the machine-readable result. CI archives it as the serving
// baseline; later perf PRs diff against it.
type Report struct {
	Addr         string    `json:"addr"`
	Endpoint     string    `json:"endpoint"`
	Monitor      string    `json:"monitor"`
	Concurrency  int       `json:"concurrency"`
	Batch        int       `json:"batch"`
	DurationS    float64   `json:"duration_s"`
	Requests     int64     `json:"requests"`
	Errors       int64     `json:"errors"`
	Snapshots    int64     `json:"snapshots"`
	RequestsPerS float64   `json:"requests_per_s"`
	SnapshotsPS  float64   `json:"snapshots_per_s"`
	LatencyMS    Latencies `json:"latency_ms"`
}

// Latencies summarizes the per-request latency population in milliseconds.
type Latencies struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// run drives the whole load test against a live daemon.
func run(cfg config) (*Report, error) {
	if cfg.Concurrency < 1 {
		return nil, fmt.Errorf("concurrency %d < 1", cfg.Concurrency)
	}
	if cfg.Batch < 1 {
		return nil, fmt.Errorf("batch %d < 1", cfg.Batch)
	}
	switch cfg.Endpoint {
	case "estimate", "track", "simulate":
	default:
		return nil, fmt.Errorf("unknown endpoint %q (want estimate, track or simulate)", cfg.Endpoint)
	}
	base := "http://" + cfg.Addr
	if strings.HasPrefix(cfg.Addr, "http://") || strings.HasPrefix(cfg.Addr, "https://") {
		base = cfg.Addr
	}
	client := &http.Client{Timeout: 60 * time.Second}

	if err := checkHealth(client, base); err != nil {
		return nil, err
	}
	id, m, created, err := resolveMonitor(client, base, cfg)
	if err != nil {
		return nil, err
	}
	if created && !cfg.Keep {
		defer func() {
			req, _ := http.NewRequest(http.MethodDelete, base+"/v1/monitors/"+id, nil)
			if resp, err := client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	body, perReq, err := requestBody(cfg, m)
	if err != nil {
		return nil, err
	}
	url := base + "/v1/monitors/" + id + "/" + cfg.Endpoint

	var (
		wg        sync.WaitGroup
		issued    atomic.Int64 // request-budget ticket counter
		errs      atomic.Int64
		snapshots atomic.Int64
		lats      = make([][]float64, cfg.Concurrency)
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if cfg.Requests > 0 {
					if issued.Add(1) > int64(cfg.Requests) {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					errs.Add(1)
					continue
				}
				lats[w] = append(lats[w], time.Since(t0).Seconds())
				snapshots.Add(int64(perReq))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	rep := &Report{
		Addr: cfg.Addr, Endpoint: cfg.Endpoint, Monitor: id,
		Concurrency: cfg.Concurrency, Batch: cfg.Batch,
		DurationS: elapsed,
		Requests:  int64(len(all)) + errs.Load(),
		Errors:    errs.Load(),
		Snapshots: snapshots.Load(),
		LatencyMS: summarizeLatencies(all),
	}
	if elapsed > 0 {
		rep.RequestsPerS = float64(len(all)) / elapsed
		rep.SnapshotsPS = float64(snapshots.Load()) / elapsed
	}
	return rep, nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// resolveMonitor returns the target monitor's id and sensor count, creating
// a monitor when cfg.Monitor is empty.
func resolveMonitor(client *http.Client, base string, cfg config) (id string, m int, created bool, err error) {
	if cfg.Monitor != "" {
		resp, err := client.Get(base + "/v1/monitors")
		if err != nil {
			return "", 0, false, err
		}
		defer resp.Body.Close()
		var list struct {
			Monitors []struct {
				ID string `json:"id"`
				M  int    `json:"m"`
			} `json:"monitors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			return "", 0, false, fmt.Errorf("listing monitors: %w", err)
		}
		for _, mi := range list.Monitors {
			if mi.ID == cfg.Monitor {
				return mi.ID, mi.M, false, nil
			}
		}
		return "", 0, false, fmt.Errorf("no monitor %q on the daemon", cfg.Monitor)
	}
	resp, err := client.Post(base+"/v1/monitors", "application/json", strings.NewReader(cfg.CreateBody))
	if err != nil {
		return "", 0, false, err
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", 0, false, fmt.Errorf("create monitor: status %d: %s", resp.StatusCode, blob)
	}
	var cr struct {
		ID      string `json:"id"`
		Sensors []int  `json:"sensors"`
	}
	if err := json.Unmarshal(blob, &cr); err != nil {
		return "", 0, false, fmt.Errorf("create monitor: %w", err)
	}
	return cr.ID, len(cr.Sensors), true, nil
}

// requestBody builds the (fixed) request payload and reports how many
// snapshots one request asks for. Readings are synthetic but finite and
// plausible (°C around a warm die); every request carries the same body so
// the measured variance is the serving path's, not the workload's.
func requestBody(cfg config, m int) ([]byte, int, error) {
	switch cfg.Endpoint {
	case "simulate":
		body, err := json.Marshal(map[string]any{
			"count": cfg.Batch, "snr_db": cfg.SNRdB, "seed": int64(1),
		})
		return body, cfg.Batch, err
	default: // estimate, track
		if m < 1 {
			return nil, 0, fmt.Errorf("monitor reports %d sensors", m)
		}
		readings := make([][]float64, cfg.Batch)
		for i := range readings {
			row := make([]float64, m)
			for j := range row {
				row[j] = 55 + 8*math.Sin(0.3*float64(i)+0.7*float64(j))
			}
			readings[i] = row
		}
		body, err := json.Marshal(map[string]any{"readings": readings})
		return body, cfg.Batch, err
	}
}

// summarizeLatencies reduces the latency population (seconds) to
// milliseconds percentiles via the nearest-rank method.
func summarizeLatencies(secs []float64) Latencies {
	if len(secs) == 0 {
		return Latencies{}
	}
	sorted := append([]float64(nil), secs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	ms := func(s float64) float64 { return s * 1000 }
	return Latencies{
		Mean: ms(sum / float64(len(sorted))),
		P50:  ms(percentile(sorted, 50)),
		P90:  ms(percentile(sorted, 90)),
		P99:  ms(percentile(sorted, 99)),
		Max:  ms(sorted[len(sorted)-1]),
	}
}

// percentile returns the nearest-rank p-th percentile of sorted (ascending)
// values: the smallest value with at least p% of the population at or below
// it.
func percentile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
